module Engine = Statsched_des.Engine

exception Violation of { invariant : string; message : string }

let () =
  Printexc.register_printer (function
    | Violation { invariant; message } ->
      Some (Printf.sprintf "Sanitize.Violation(%s): %s" invariant message)
    | _ -> None)

let fail invariant fmt =
  Printf.ksprintf (fun message -> raise (Violation { invariant; message })) fmt

let enabled_from_env () =
  match Sys.getenv_opt "STATSCHED_SANITIZE" with
  | None -> false
  | Some v -> (
    match String.lowercase_ascii v with
    | "" | "0" | "false" | "no" | "off" -> false
    | _ -> true)

type t = {
  mutable last_time : float;
  mutable arrived : int;
  mutable completed : int;
  mutable dropped : int;
}

let create () = { last_time = neg_infinity; arrived = 0; completed = 0; dropped = 0 }

let check_time t ~now =
  if Float.is_nan now then fail "clock-monotonicity" "simulation clock is NaN";
  if now < t.last_time then
    fail "clock-monotonicity" "clock moved backwards: %.17g after %.17g" now t.last_time;
  t.last_time <- now

let check_engine t engine =
  check_time t ~now:(Engine.now engine);
  if not (Engine.heap_ordered engine) then
    fail "event-heap-order"
      "future-event list violates its heap property (%d events pending at t=%.17g)"
      (Engine.pending_events engine) (Engine.now engine)

let on_arrival t = t.arrived <- t.arrived + 1
let on_completion t = t.completed <- t.completed + 1
let on_drop t = t.dropped <- t.dropped + 1

let check_conservation t ~in_system =
  if in_system < 0 then
    fail "job-conservation" "negative in-system count (%d)" in_system;
  let accounted = t.completed + in_system + t.dropped in
  if t.arrived <> accounted then
    fail "job-conservation"
      "arrived (%d) <> completed (%d) + in-system (%d) + dropped (%d) = %d"
      t.arrived t.completed in_system t.dropped accounted

let check_allocation ?(label = "allocation") ?(saturation = true) ~rho ~speeds alloc =
  let n = Array.length speeds in
  if Array.length alloc <> n then
    fail "allocation-feasibility" "%s: %d fractions for %d computers" label
      (Array.length alloc) n;
  let total = Array.fold_left ( +. ) 0.0 speeds in
  let lambda = rho *. total in
  let sum = ref 0.0 in
  Array.iteri
    (fun i a ->
      if not (Float.is_finite a) then
        fail "allocation-feasibility" "%s: alpha(%d) = %g is not finite" label i a;
      if a < -1e-12 then
        fail "allocation-feasibility" "%s: alpha(%d) = %g is negative" label i a;
      sum := !sum +. a;
      (* Theorem 1's stability condition, mu = 1: alpha_i * lambda < s_i.
         Skipped when the caller deliberately runs a mis-estimated
         allocation (the Figure 6 sensitivity experiments). *)
      if saturation && a *. lambda >= speeds.(i) then
        fail "allocation-feasibility"
          "%s: computer %d saturated: alpha*lambda = %.6g >= speed %.6g (Theorem 1)"
          label i (a *. lambda) speeds.(i))
    alloc;
  if abs_float (!sum -. 1.0) > 1e-6 then
    fail "allocation-feasibility" "%s: fractions sum to %.9g, not 1" label !sum
