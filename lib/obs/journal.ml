type kind = Dispatch | Queue | Completion | Drop | Rate

let kinds = 5

let kind_index = function
  | Dispatch -> 0
  | Queue -> 1
  | Completion -> 2
  | Drop -> 3
  | Rate -> 4

let kind_tag = [| 'D'; 'Q'; 'C'; 'X'; 'R' |]
let kind_name = [| "dispatch"; "queue"; "completion"; "drop"; "rate" |]

(* Record storage: one 8-double-wide slot per record in a single
   floatarray (64 bytes, about one cache line — recording a sample
   touches one line where per-field columns would touch five or six).
   Integer fields ride in doubles; every value stored is far below
   2^53, so the round-trip through [float_of_int]/[int_of_float] is
   exact.  Field use per kind (unused fields are never read back):

     kind        +0 (i0)  +1 (i1)   +2 (f0)  +3 (f1)  +4 (f2)     +5 (f3)
     Dispatch    id       computer  time
     Queue       depth    computer  time
     Completion  id       computer  arrival  start    completion  size
     Drop        id       computer  time
     Rate        0        computer  time     rate                          *)
let slot_width = 8

type t = {
  capacity : int;
  kind : Bytes.t;
  slots : floatarray;
  mutable len : int;
  mutable stride : int;
  seen : int array;  (* per kind: events offered, sampled or not *)
  (* Next ordinal of each stream that will be sampled — the smallest
     multiple of [stride] not yet seen.  Lets [claim] decide with one
     compare instead of [seen mod stride] (an integer division) on
     every event. *)
  next_due : int array;
}

let create ?(capacity = 4096) ?(sample_every = 1) () =
  if capacity < 16 then invalid_arg "Journal.create: capacity < 16";
  if sample_every < 1 then invalid_arg "Journal.create: sample_every < 1";
  {
    capacity;
    kind = Bytes.make capacity '\000';
    slots = Float.Array.make (capacity * slot_width) 0.0;
    len = 0;
    stride = sample_every;
    seen = Array.make kinds 0;
    next_due = Array.make kinds 0;
  }

(* Overflow: keep every other retained record of each stream (so kept
   ordinals 0, k, 2k, … become 0, 2k, 4k, …) and double the stride; the
   predicate [seen mod stride = 0] then continues the same systematic
   grid.  In place, amortised over capacity/2 subsequent records. *)
let[@schedsim.cold] compact t =
  let parity = Array.make kinds 0 in
  let w = ref 0 in
  for r = 0 to t.len - 1 do
    let k = Char.code (Bytes.unsafe_get t.kind r) in
    let p = Array.unsafe_get parity k in
    Array.unsafe_set parity k (p + 1);
    if p land 1 = 0 then begin
      let d = !w in
      if d <> r then begin
        Bytes.unsafe_set t.kind d (Bytes.unsafe_get t.kind r);
        let src = r * slot_width and dst = d * slot_width in
        Float.Array.unsafe_set t.slots dst (Float.Array.unsafe_get t.slots src);
        Float.Array.unsafe_set t.slots (dst + 1)
          (Float.Array.unsafe_get t.slots (src + 1));
        Float.Array.unsafe_set t.slots (dst + 2)
          (Float.Array.unsafe_get t.slots (src + 2));
        (* Only completion (2) and rate (4) records use the last three. *)
        if k = 2 || k = 4 then begin
          Float.Array.unsafe_set t.slots (dst + 3)
            (Float.Array.unsafe_get t.slots (src + 3));
          Float.Array.unsafe_set t.slots (dst + 4)
            (Float.Array.unsafe_get t.slots (src + 4));
          Float.Array.unsafe_set t.slots (dst + 5)
            (Float.Array.unsafe_get t.slots (src + 5))
        end
      end;
      incr w
    end
  done;
  t.len <- !w;
  t.stride <- t.stride * 2;
  (* Re-aim every stream at the smallest multiple of the doubled stride
     it has not yet reached. *)
  let s = t.stride in
  for k = 0 to kinds - 1 do
    t.next_due.(k) <- (t.seen.(k) + s - 1) / s * s
  done

(* Slow path of [claim], taken once per [stride] events: the current
   ordinal [c] is due, so allocate its slot and schedule the next one. *)
let claim_due t k c =
  if t.len = t.capacity then compact t;
  (* After a compact the stride has doubled and [next_due] was re-aimed
     from [seen] (= c + 1); without one, the next due ordinal is simply
     one stride ahead.  Both equal this expression. *)
  let s = t.stride in
  Array.unsafe_set t.next_due k (((c / s) + 1) * s);
  let slot = t.len in
  t.len <- slot + 1;
  Bytes.unsafe_set t.kind slot (Char.unsafe_chr k);
  slot

(* Returns the slot index to fill, or -1 when this event is not sampled.
   Bumps the stream's seen counter either way. *)
let[@inline] [@schedsim.hot] claim t k =
  let c = Array.unsafe_get t.seen k in
  Array.unsafe_set t.seen k (c + 1);
  if c <> Array.unsafe_get t.next_due k then -1 else claim_due t k c

let[@inline] [@schedsim.hot] record_dispatch t ~id ~computer ~time =
  let slot = claim t 0 in
  if slot >= 0 then begin
    let b = slot * slot_width in
    Float.Array.unsafe_set t.slots b (float_of_int id);
    Float.Array.unsafe_set t.slots (b + 1) (float_of_int computer);
    Float.Array.unsafe_set t.slots (b + 2) time
    (* Fields +3..+5 are never read for this kind: [record_at] and the
       writer only consult them for completion and rate records. *)
  end

let[@inline] [@schedsim.hot] record_queue t ~depth ~computer ~time =
  let slot = claim t 1 in
  if slot >= 0 then begin
    let b = slot * slot_width in
    Float.Array.unsafe_set t.slots b (float_of_int depth);
    Float.Array.unsafe_set t.slots (b + 1) (float_of_int computer);
    Float.Array.unsafe_set t.slots (b + 2) time
  end

let[@inline] [@schedsim.hot] record_completion t ~id ~computer ~arrival ~start ~completion
    ~size =
  let slot = claim t 2 in
  if slot >= 0 then begin
    let b = slot * slot_width in
    Float.Array.unsafe_set t.slots b (float_of_int id);
    Float.Array.unsafe_set t.slots (b + 1) (float_of_int computer);
    Float.Array.unsafe_set t.slots (b + 2) arrival;
    Float.Array.unsafe_set t.slots (b + 3) start;
    Float.Array.unsafe_set t.slots (b + 4) completion;
    Float.Array.unsafe_set t.slots (b + 5) size
  end

let[@inline] [@schedsim.hot] record_drop t ~id ~computer ~time =
  let slot = claim t 3 in
  if slot >= 0 then begin
    let b = slot * slot_width in
    Float.Array.unsafe_set t.slots b (float_of_int id);
    Float.Array.unsafe_set t.slots (b + 1) (float_of_int computer);
    Float.Array.unsafe_set t.slots (b + 2) time
  end

let[@inline] [@schedsim.hot] record_rate t ~computer ~time ~rate =
  let slot = claim t 4 in
  if slot >= 0 then begin
    let b = slot * slot_width in
    Float.Array.unsafe_set t.slots b 0.0;
    Float.Array.unsafe_set t.slots (b + 1) (float_of_int computer);
    Float.Array.unsafe_set t.slots (b + 2) time;
    Float.Array.unsafe_set t.slots (b + 3) rate
  end

let length t = t.len
let capacity t = t.capacity
let stride t = t.stride
let seen t k = t.seen.(kind_index k)

let kept t k =
  let ki = kind_index k in
  let n = ref 0 in
  for r = 0 to t.len - 1 do
    if Char.code (Bytes.get t.kind r) = ki then incr n
  done;
  !n

type record =
  | Dispatch_r of { id : int; computer : int; time : float }
  | Queue_r of { depth : int; computer : int; time : float }
  | Completion_r of {
      id : int;
      computer : int;
      arrival : float;
      start : float;
      completion : float;
      size : float;
    }
  | Drop_r of { id : int; computer : int; time : float }
  | Rate_r of { computer : int; time : float; rate : float }

let record_at t r =
  if r < 0 || r >= t.len then invalid_arg "Journal.record_at: index";
  let b = r * slot_width in
  let i0 = int_of_float (Float.Array.get t.slots b)
  and i1 = int_of_float (Float.Array.get t.slots (b + 1)) in
  let f0 = Float.Array.get t.slots (b + 2)
  and f1 = Float.Array.get t.slots (b + 3)
  and f2 = Float.Array.get t.slots (b + 4)
  and f3 = Float.Array.get t.slots (b + 5) in
  match Char.code (Bytes.get t.kind r) with
  | 0 -> Dispatch_r { id = i0; computer = i1; time = f0 }
  | 1 -> Queue_r { depth = i0; computer = i1; time = f0 }
  | 2 ->
    Completion_r
      { id = i0; computer = i1; arrival = f0; start = f1; completion = f2;
        size = f3 }
  | 3 -> Drop_r { id = i0; computer = i1; time = f0 }
  | _ -> Rate_r { computer = i1; time = f0; rate = f1 }

let iter t f =
  for r = 0 to t.len - 1 do
    f (record_at t r)
  done

(* ------------------------------------------------------------------ *)
(* Serialisation                                                       *)

let fnv1a64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

(* Round-trippable float text: shortest form that parses back exactly. *)
let fmt_float x =
  let s = Printf.sprintf "%.12g" x in
  if Float.equal (float_of_string s) x then s else Printf.sprintf "%.17g" x

let check_key k =
  if
    k = ""
    || String.exists (function ' ' | '\n' | '\t' | '\r' -> true | _ -> false) k
  then invalid_arg (Printf.sprintf "Journal: malformed key %S" k)

let to_string ?(meta = []) ?(summary = []) t =
  let buf = Buffer.create (4096 + (t.len * 48)) in
  Buffer.add_string buf "statsched-journal v1\n";
  List.iter
    (fun (k, v) ->
      check_key k;
      Buffer.add_string buf (Printf.sprintf "meta %s %s\n" k v))
    meta;
  Buffer.add_string buf (Printf.sprintf "stride %d\n" t.stride);
  Array.iteri
    (fun k c -> Buffer.add_string buf (Printf.sprintf "seen %s %d\n" kind_name.(k) c))
    t.seen;
  List.iter
    (fun (k, v) ->
      check_key k;
      Buffer.add_string buf (Printf.sprintf "summary %s %s\n" k v))
    summary;
  Buffer.add_string buf (Printf.sprintf "records %d\n" t.len);
  for r = 0 to t.len - 1 do
    let k = Char.code (Bytes.get t.kind r) in
    let b = r * slot_width in
    Buffer.add_char buf kind_tag.(k);
    Buffer.add_char buf ' ';
    Buffer.add_string buf (string_of_int (int_of_float (Float.Array.get t.slots b)));
    Buffer.add_char buf ' ';
    Buffer.add_string buf
      (string_of_int (int_of_float (Float.Array.get t.slots (b + 1))));
    Buffer.add_char buf ' ';
    Buffer.add_string buf (fmt_float (Float.Array.get t.slots (b + 2)));
    (match k with
    | 2 ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (fmt_float (Float.Array.get t.slots (b + 3)));
      Buffer.add_char buf ' ';
      Buffer.add_string buf (fmt_float (Float.Array.get t.slots (b + 4)));
      Buffer.add_char buf ' ';
      Buffer.add_string buf (fmt_float (Float.Array.get t.slots (b + 5)))
    | 4 ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (fmt_float (Float.Array.get t.slots (b + 3)))
    | _ -> ());
    Buffer.add_char buf '\n'
  done;
  let body = Buffer.contents buf in
  Printf.sprintf "%schecksum fnv1a64 %016Lx\n" body (fnv1a64 body)

let write ?meta ?summary t path =
  let text = to_string ?meta ?summary t in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc text);
  Sys.rename tmp path
