(** Quantum-based preemptive round-robin server.

    The literal reading of the paper's "preemptive round-robin processor
    scheduling": jobs take turns receiving a fixed service quantum.  As the
    quantum shrinks this converges to {!Ps_server}; a test drives both with
    identical traces and checks the agreement.  Because every quantum is a
    simulation event, this server is orders of magnitude slower than the PS
    model and is used for validation and ablation, not for the headline
    experiments. *)

type t

val create :
  engine:Statsched_des.Engine.t ->
  speed:float ->
  quantum:float ->
  on_departure:(Job.t -> unit) ->
  unit ->
  t
(** [quantum] is the slice of work (in speed-1 seconds) a job receives per
    turn; it lasts [quantum/speed] real seconds on this server.

    @raise Invalid_argument if [speed <= 0] or [quantum <= 0]. *)

val submit : t -> Job.t -> unit
val in_system : t -> int
val mean_in_system : t -> float
val utilization : t -> float
val completed : t -> int
val work_done : t -> float
val reset_stats : t -> unit

val set_rate : t -> float -> unit
(** Fault hook: scale the service rate by the given factor from now on
    ([0] suspends the server mid-quantum; a fresh slice starts on
    resume).  See {!Server_intf.t.set_rate}.

    @raise Invalid_argument if the rate is negative. *)

val drain : t -> Job.t list
(** Fault hook: remove all jobs without completing them (partial service
    is discarded).  See {!Server_intf.t.drain}. *)

val to_server : t -> Server_intf.t
