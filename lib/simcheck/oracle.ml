module Core = Statsched_core
module Cluster = Statsched_cluster
module Dist = Statsched_dist
module E = Statsched_experiments
module Theory = Statsched_queueing.Theory

let default_scale = { E.Config.horizon = 6.0e4; warmup = 1.5e4; reps = 5 }

(* ------------------------------------------------------------------ *)
(* Per-replication metric extraction                                   *)

let resp (r : Cluster.Simulation.result) =
  r.Cluster.Simulation.metrics.Core.Metrics.mean_response_time

let ratio (r : Cluster.Simulation.result) =
  r.Cluster.Simulation.metrics.Core.Metrics.mean_response_ratio

let total_l (r : Cluster.Simulation.result) =
  Array.fold_left
    (fun acc pc -> acc +. pc.Cluster.Simulation.mean_jobs)
    0.0 r.Cluster.Simulation.per_computer

let samples f results = Array.of_list (List.map f results)

(* Append the replayable command so a CI failure is reproducible at the
   shell without any simcheck machinery. *)
let band_check sc band =
  let c = Band.to_check band in
  if c.Check.ok then c
  else
    { c with Check.detail = c.Check.detail ^ " | replay: " ^ Scenario.to_run_command sc }

let replicate ~scale ~seed ~jobs sc =
  E.Runner.replicate ~seed ?jobs ~scale (Scenario.spec sc)

(* ------------------------------------------------------------------ *)
(* Differential cases                                                  *)

(* Every case uses Poisson arrivals and either a single server or a
   static *random* dispatcher: splitting a Poisson stream at random
   yields independent per-computer Poisson streams, so the single-server
   closed forms apply exactly.  (Round-robin dispatch de-randomises the
   per-computer arrival process — deliberately — so it has no exact
   M/G/1 oracle; the metamorphic relations cover it instead.) *)

let single_server ~scale ~seed ~jobs =
  let speed = 1.0 and rho = 0.7 and mean_size = 1.0 in
  let lambda = rho *. speed /. mean_size in
  let ps_resp = Theory.mg1_ps_response ~lambda ~mean_size ~speed in
  let ps_slow = Theory.mg1_ps_mean_slowdown ~lambda ~mean_size ~speed in
  let ps_l = Theory.mm1_number_in_system ~lambda ~mean_size ~speed in
  (* M/M/1-PS: response, slowdown and Little's L at once. *)
  let mm1_ps =
    let sc = Scenario.v ~speeds:[| speed |] ~rho ~policy:"orr" ~seed () in
    let rs = replicate ~scale ~seed ~jobs sc in
    [
      band_check sc
        (Band.of_samples ~name:"mm1-ps/response" ~theory:ps_resp (samples resp rs));
      band_check sc
        (Band.of_samples ~name:"mm1-ps/slowdown" ~theory:ps_slow (samples ratio rs));
      band_check sc
        (Band.of_samples ~name:"mm1-ps/number-in-system" ~theory:ps_l
           (samples total_l rs));
    ]
  in
  (* M/G/1-PS insensitivity: same mean, wildly different shapes — the
     property the paper's whole M/M/1-derived allocation leans on. *)
  let insensitivity =
    List.concat_map
      (fun size ->
        let tag = Scenario.size_dist_to_string size in
        let sc =
          Scenario.v ~speeds:[| speed |] ~rho ~policy:"orr" ~size
            ~seed:(Int64.add seed 17L) ()
        in
        let rs = replicate ~scale ~seed ~jobs sc in
        [
          band_check sc
            (Band.of_samples
               ~name:(Printf.sprintf "mg1-ps-insensitivity/%s/response" tag)
               ~theory:ps_resp (samples resp rs));
          band_check sc
            (Band.of_samples
               ~name:(Printf.sprintf "mg1-ps-insensitivity/%s/slowdown" tag)
               ~theory:ps_slow (samples ratio rs));
        ])
      [ Scenario.Det; Scenario.Weibull 0.5; Scenario.Hyperexp 2.0 ]
  in
  (* M/M/1-FCFS and the Pollaczek–Khinchine formula: FCFS *is* sensitive
     to the size variability, in exactly the P-K amount. *)
  let fcfs =
    List.concat_map
      (fun size ->
        let dist = Scenario.size_distribution ~mean:mean_size size in
        let scv = Dist.Distribution.scv dist in
        let theory = Theory.mg1_fcfs_response ~lambda ~mean_size ~scv ~speed in
        let tag = Scenario.size_dist_to_string size in
        let sc =
          Scenario.v ~speeds:[| speed |] ~rho ~policy:"orr"
            ~discipline:Cluster.Simulation.Fcfs ~size
            ~seed:(Int64.add seed 29L) ()
        in
        let rs = replicate ~scale ~seed ~jobs sc in
        [
          band_check sc
            (Band.of_samples
               ~name:(Printf.sprintf "mg1-fcfs-pk/%s/response" tag)
               ~theory (samples resp rs));
          band_check sc
            (Band.of_samples
               ~name:(Printf.sprintf "mg1-fcfs-pk/%s/number-in-system" tag)
               ~theory:(lambda *. theory) (samples total_l rs));
        ])
      [ Scenario.Exp; Scenario.Erlang 4; Scenario.Hyperexp 2.0 ]
  in
  mm1_ps @ insensitivity @ fcfs

(* Heterogeneous cluster under static *random* dispatch: Poisson
   splitting makes each computer an independent M/M/1-PS at its
   allocated fraction, so equation (3)'s system prediction is exact. *)
let splitting ~scale ~seed ~jobs =
  let speeds = [| 1.0; 1.0; 2.0 |] and rho = 0.7 in
  let mu = 1.0 in
  let lambda = Core.Mm1.lambda_of_utilization ~mu ~rho ~speeds in
  List.concat_map
    (fun (policy, alloc) ->
      let t_theory = Core.Mm1.mean_response_time ~mu ~lambda ~speeds ~alloc in
      let r_theory = Core.Mm1.mean_response_ratio ~mu ~lambda ~speeds ~alloc in
      let sc =
        Scenario.v ~speeds ~rho ~policy ~seed:(Int64.add seed 43L) ()
      in
      let rs = replicate ~scale ~seed ~jobs sc in
      let base =
        [
          band_check sc
            (Band.of_samples
               ~name:(Printf.sprintf "splitting/%s/response" policy)
               ~theory:t_theory (samples resp rs));
          band_check sc
            (Band.of_samples
               ~name:(Printf.sprintf "splitting/%s/slowdown" policy)
               ~theory:r_theory (samples ratio rs));
          band_check sc
            (Band.of_samples
               ~name:(Printf.sprintf "splitting/%s/number-in-system" policy)
               ~theory:(lambda *. t_theory) (samples total_l rs));
        ]
      in
      let per_computer =
        List.init (Array.length speeds) (fun i ->
            let theory =
              Core.Mm1.server_utilization ~mu ~lambda ~speed:speeds.(i)
                ~alpha:alloc.(i)
            in
            let util (r : Cluster.Simulation.result) =
              r.Cluster.Simulation.per_computer.(i).Cluster.Simulation.utilization
            in
            band_check sc
              (Band.of_samples
                 ~name:(Printf.sprintf "splitting/%s/utilization-%d" policy i)
                 ~bias:0.02 ~theory (samples util rs)))
      in
      base @ per_computer)
    [
      ("oran", Core.Allocation.optimized ~rho speeds);
      ("wran", Core.Allocation.weighted speeds);
    ]

(* Server breakdowns with preempt-resume repair: Avi-Itzhak & Naor's
   Model A closed form, exercising the fault injector end to end. *)
let breakdown ~scale ~seed ~jobs =
  let mtbf = 200.0 and mttr = 10.0 and rho = 0.5 in
  let theory =
    Theory.mm1_breakdown_response ~lambda:rho ~mean_size:1.0 ~speed:1.0 ~mtbf
      ~mttr
  in
  let sc =
    Scenario.v ~speeds:[| 1.0 |] ~rho ~policy:"orr"
      ~discipline:Cluster.Simulation.Fcfs
      ~faults:{ Scenario.mtbf; mttr; on_failure = Cluster.Fault.Resume }
      ~seed:(Int64.add seed 71L) ()
  in
  let rs = replicate ~scale ~seed ~jobs sc in
  [
    band_check sc
      (Band.of_samples ~name:"breakdown/resume/response" ~bias:0.05 ~theory
         (samples resp rs));
  ]

let run ?(scale = default_scale) ?(seed = 20260806L) ?jobs () =
  single_server ~scale ~seed ~jobs
  @ splitting ~scale ~seed ~jobs
  @ breakdown ~scale ~seed ~jobs
