(** Future-event list: a binary min-heap with a calendar-style overflow
    band, keyed by timestamp.

    Ties are broken by insertion order (FIFO), which makes simulations
    deterministic: two events scheduled for the same instant fire in the
    order they were scheduled.  Cancellation is supported through handles
    with lazy deletion, so cancelling is O(1) and the cost is absorbed at
    pop time.

    While the pending-event count stays under [ladder_threshold] this is
    a plain binary heap.  Past the threshold (many-server runs: at
    n = 10^4 computers the pending count tracks the cluster size) a far
    band activates automatically: events beyond an adaptive time boundary
    are appended unsorted in O(1) and heapified in slices of ~threshold
    when the near heap drains.  The banding is invisible through this
    interface — pop order depends only on [(time, insertion order)].

    Handles are slot-table based: memory for cancellation bookkeeping is
    O(maximum concurrently pending), independent of the total number of
    events ever scheduled. *)

type 'a t
(** A queue of events carrying payloads of type ['a]. *)

type handle
(** Identifies a scheduled event for cancellation. *)

val no_handle : handle
(** A sentinel never returned by {!add}: [cancel q no_handle] is [false]
    and allocates nothing.  Lets callers store "no pending event" in a
    plain mutable field instead of a [handle option] (an allocation per
    reschedule on hot paths). *)

val is_handle : handle -> bool
(** [is_handle h] is [false] exactly for {!no_handle}. *)

val create : ?initial_capacity:int -> ?ladder_threshold:int -> unit -> 'a t
(** An empty queue.  [ladder_threshold] (default 4096) is the heap size
    past which the far band activates; tests force small values to
    exercise the banding, the engine keeps the default.

    @raise Invalid_argument if [ladder_threshold < 1]. *)

val is_empty : 'a t -> bool

val size : 'a t -> int
(** Number of live (non-cancelled) events. *)

val add : 'a t -> time:float -> 'a -> handle
(** [add q ~time x] schedules [x] at [time] and returns a cancellation
    handle.  Times may be in any order but must be finite.

    @raise Invalid_argument if [time] is NaN or infinite. *)

val cancel : 'a t -> handle -> bool
(** [cancel q h] removes the event identified by [h] if it is still
    pending; returns [false] if it already fired or was already
    cancelled. *)

val peek_time : 'a t -> float option
(** Timestamp of the earliest live event. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest live event as [(time, payload)]. *)

(** {2 Allocation-free hot path}

    The engine's event loop runs millions of events per simulated run, so
    the queue also exposes an interface that never allocates: [next_time]
    returns a plain float ([nan] encodes "empty"), and [pop_step] removes
    the earliest live event and parks it in a scratch slot read back with
    [last_time]/[last_payload]. *)

val next_time : 'a t -> float
(** Timestamp of the earliest live event, or [Float.nan] when the queue
    is empty — an allocation-free {!peek_time}. *)

val pop_step : 'a t -> bool
(** Remove the earliest live event without allocating; returns [false]
    when the queue is empty.  On [true], the event is available through
    {!last_time} and {!last_payload} until the next queue operation. *)

val last_time : 'a t -> float
(** Time of the event removed by the last successful {!pop_step}
    ([Float.nan] before the first one). *)

val last_payload : 'a t -> 'a
(** Payload of the event removed by the last successful {!pop_step}.
    Only meaningful immediately after [pop_step] returned [true]; raises
    [Invalid_argument] if the queue never held an event. *)

val clear : 'a t -> unit
(** Drop all events and release the backing storage, so queued payloads
    become collectable immediately. *)

val high_water : 'a t -> int
(** Largest number of live events ever pending simultaneously over the
    queue's lifetime (not reset by {!clear}) — the simulator's
    memory-pressure proxy. *)

val heap_ordered : 'a t -> bool
(** Audit the internal invariants: the heap property (every parent
    precedes its children) and the band split (near-band times not
    beyond the boundary, far-band times not before it).  Always [true]
    unless the queue's internals have been corrupted; O(n), intended for
    runtime sanitizers and tests. *)

(**/**)

module Testing : sig
  val corrupt : 'a t -> unit
  (** Deliberately break the heap order of a queue holding at least two
      entries (moves the root after the last entry, bypassing sifting).
      Exists only so tests can prove {!heap_ordered} and the sanitizers
      actually fire; never call it elsewhere. *)

  val stored : 'a t -> int
  (** Entries physically stored across both bands, including
      lazily-cancelled ones — the compaction tests bound this by a
      multiple of {!size}. *)

  val far_size : 'a t -> int
  (** Entries currently in the far band. *)

  val band_active : 'a t -> bool
  (** Whether the far band is currently enabled (boundary finite). *)

  val slot_capacity : 'a t -> int
  (** Capacity of the cancellation slot table — the memory-regression
      test bounds this by a multiple of {!high_water}, independent of
      the total event count. *)
end
