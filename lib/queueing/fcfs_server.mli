(** First-come-first-served server.

    Not used by the paper's experiments (its machines time-share), but
    valuable as a contrast workload: under heavy-tailed sizes FCFS lets
    huge jobs block small ones, which magnifies the response-ratio metric
    and motivates the PS assumption.  Also the natural model for batch
    nodes in the examples. *)

type t

val create :
  engine:Statsched_des.Engine.t ->
  speed:float ->
  on_departure:(Job.t -> unit) ->
  unit ->
  t
(** @raise Invalid_argument if [speed <= 0]. *)

val submit : t -> Job.t -> unit
val in_system : t -> int
val mean_in_system : t -> float
val utilization : t -> float
val completed : t -> int
val work_done : t -> float
val reset_stats : t -> unit
val to_server : t -> Server_intf.t
