(** Metric collection for a simulation run.

    Accumulates the paper's three job metrics over completions whose
    arrival falls inside the measurement window (jobs arriving during
    warm-up are excluded even if they complete later, matching
    Section 4.1), in O(1) space via {!Statsched_stats.Welford} and
    {!Statsched_stats.P2_quantile}, plus bounded-size
    {!Statsched_obs.Hdr_histogram} tail distributions. *)

type t

val create :
  ?rt_hist:Statsched_obs.Hdr_histogram.t ->
  ?rr_hist:Statsched_obs.Hdr_histogram.t ->
  warmup:float ->
  unit ->
  t
(** Count only jobs with [arrival >= warmup].

    [rt_hist]/[rr_hist] supply existing histograms for the collector to
    accumulate into instead of creating its own — {!Telemetry} passes
    its registered exporter histograms here so live scrapes read the
    very objects the run metrics derive from, without a second
    per-completion update.  They must use the canonical layouts
    (response time [1e-3, 1e7), ratio [1e-3, 1e5), default sub_count).

    @raise Invalid_argument if a supplied histogram's layout differs. *)

val on_departure : t -> Statsched_queueing.Job.t -> unit
(** Feed a completed job. *)

val jobs_measured : t -> int

val metrics :
  ?availability:float ->
  ?goodput:float ->
  ?lost_jobs:int ->
  t ->
  (Statsched_core.Metrics.t, [ `No_jobs_measured ]) result
(** Snapshot of the accumulated metrics.  The reliability fields default
    to a fault-free run ([availability = 1], [lost_jobs = 0], goodput
    unknown); {!Simulation} overrides them from its fault bookkeeping.

    Returns [Error `No_jobs_measured] when no completion fell inside the
    measurement window (e.g. the warm-up swallowed the whole horizon) —
    callers should surface a clear message rather than divide by zero. *)

val response_time_stats : t -> Statsched_stats.Welford.t
val response_ratio_stats : t -> Statsched_stats.Welford.t

val median_ratio : t -> float
(** P² estimate of the median response ratio. *)

val p99_ratio : t -> float
(** P² estimate of the 99th-percentile response ratio. *)

val response_time_histogram : t -> Statsched_obs.Hdr_histogram.t
(** Log-linear histogram of measured response times (seconds). *)

val response_ratio_histogram : t -> Statsched_obs.Hdr_histogram.t
(** Log-linear histogram of measured response ratios. *)
