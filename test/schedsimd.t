The scheduler-as-a-service daemon, exercised endpoint by endpoint over
real HTTP.  The virtual clock runs at 1e-6 wall speed, so every
submission lands at (virtual) time ~0, nothing completes before the
drain, and the dispatch sequence is deterministic; volatile numbers in
responses are normalized away.

  $ schedsimd -s 1,1,2,12 -p orr --time-scale 0.000001 --backlog-limit 3 \
  >   --port 0 --journal run.journal --metrics-out final.prom --seed 5 \
  >   > server.log 2>&1 &
  $ for i in $(seq 1 100); do grep -q listening server.log 2>/dev/null && break; sleep 0.1; done
  $ PORT=$(sed -n 's/.*127\.0\.0\.1:\([0-9]*\).*/\1/p' server.log | head -1)

Liveness, initial policy, live state and metrics:

  $ curl -s http://127.0.0.1:$PORT/healthz
  ok
  $ curl -s http://127.0.0.1:$PORT/policy
  ORR
  $ curl -s http://127.0.0.1:$PORT/state | tr ',' '\n' | grep -c queue_depth
  4
  $ curl -s http://127.0.0.1:$PORT/metrics | grep -m1 '^# TYPE statsched_jobs_dispatched_total'
  # TYPE statsched_jobs_dispatched_total counter

Admission: accepted jobs answer 202 with the dispatch decision; a
malformed body is a 400; the fourth concurrent job exceeds the backlog
limit of 3 and is refused with 429:

  $ submit() { curl -s -w '|%{http_code}\n' -d "$1" http://127.0.0.1:$PORT/jobs \
  >   | sed -E 's/"time":[0-9.e+-]+/"time":T/'; }
  $ submit 2.5
  {"id":1,"computer":3,"time":T}|202
  $ submit junk
  body must be one positive number: the job's service demand in seconds on a speed-1 computer
  |400
  $ submit -1.0
  body must be one positive number: the job's service demand in seconds on a speed-1 computer
  |400
  $ submit 1.25
  {"id":2,"computer":3,"time":T}|202
  $ submit 0.75
  {"id":3,"computer":3,"time":T}|202
  $ submit 1.0
  backlog full (3 jobs in system, limit 3)
  |429

Policy hot-swap (and its error path):

  $ curl -s -X PUT -d jsq-d:4 http://127.0.0.1:$PORT/policy
  JSQ(d=4)
  $ curl -s -w '%{http_code}\n' -X PUT -d bogus http://127.0.0.1:$PORT/policy
  unknown policy "bogus" (known: wran, oran, wrr, orr, least-load, two-choices, jsq-d, jsq-d-uniform, jiq)
  400

Routing errors — wrong method on a known path is 405, unknown path 404:

  $ curl -s -o /dev/null -w '%{http_code}\n' http://127.0.0.1:$PORT/jobs
  405
  $ curl -s -o /dev/null -w '%{http_code}\n' -X DELETE http://127.0.0.1:$PORT/state
  405
  $ curl -s -o /dev/null -w '%{http_code}\n' http://127.0.0.1:$PORT/missing
  404

Drain runs the three in-flight jobs to completion, finalizes the run and
shuts the process down; the journal cross-validates cleanly:

  $ curl -s -X POST http://127.0.0.1:$PORT/drain | sed -E 's/[0-9][0-9.e+-]*/N/g'
  {"drained":true,"sim_time":N,"arrivals":N,"completions":N,"jobs_measured":N}
  $ wait
  $ grep -o 'drained at' server.log
  drained at
  $ tracestat check run.journal > /dev/null && echo cross-validated
  cross-validated
  $ grep -m1 '^# HELP' final.prom > /dev/null && echo metrics written
  metrics written
