module Cluster = Statsched_cluster
module Core = Statsched_core
module Dist = Statsched_dist

type row = {
  label : string;
  size_cv : float;
  points : (string * Runner.point) list;
}

let target_mean = 76.8

(* Find the lower bound k giving a Bounded-Pareto of the requested mean for
   fixed p and alpha (the mean is increasing in k). *)
let bp_with_mean ~p ~alpha ~mean =
  let mean_of k = Dist.Bounded_pareto.raw_moment { Dist.Bounded_pareto.k; p; alpha } 1 in
  let lo = ref 1e-6 and hi = ref p in
  for _ = 1 to 200 do
    let mid = 0.5 *. (!lo +. !hi) in
    if mean_of mid < mean then lo := mid else hi := mid
  done;
  Dist.Bounded_pareto.create { Dist.Bounded_pareto.k = !lo; p; alpha }

let default_sizes () =
  [
    ("deterministic", Dist.Deterministic.create target_mean);
    ("erlang-4", Dist.Erlang.of_mean_cv ~mean:target_mean ~cv:0.5);
    ("exponential", Dist.Exponential.of_mean target_mean);
    ("lognormal cv=2", Dist.Lognormal.of_mean_cv ~mean:target_mean ~cv:2.0);
    ("weibull k=0.5", Dist.Weibull.create ~shape:0.5 ~scale:(target_mean /. 2.0));
    ("BP alpha=1.5", bp_with_mean ~p:21600.0 ~alpha:1.5 ~mean:target_mean);
    ("BP paper", Dist.Bounded_pareto.create_paper_default ());
  ]

let default_schedulers =
  [
    ("ORR", Cluster.Scheduler.Static Core.Policy.orr);
    ("WRR", Cluster.Scheduler.Static Core.Policy.wrr);
  ]

let run ?(scale = Config.default_scale) ?seed ?jobs ?(speeds = Core.Speeds.table3)
    ?(sizes = default_sizes ()) ?(schedulers = default_schedulers) () =
  List.map
    (fun (label, size) ->
      let workload =
        Cluster.Workload.with_size ~rho:Config.base_utilization ~size speeds
      in
      {
        label;
        size_cv = Dist.Distribution.cv size;
        points = Sweep.over_schedulers ?seed ?jobs ~scale ~schedulers ~speeds ~workload ();
      })
    sizes

let to_report rows =
  let open Report in
  let scheduler_names =
    match rows with [] -> [] | r :: _ -> List.map fst r.points
  in
  let header =
    "size distribution" :: "size CV"
    :: List.concat_map
         (fun s -> [ s ^ " resp. time"; s ^ " resp. ratio" ])
         scheduler_names
  in
  let body =
    List.map
      (fun r ->
        Text r.label
        :: Float r.size_cv
        :: List.concat_map
             (fun (_, p) ->
               [
                 Interval p.Runner.mean_response_time;
                 Interval p.Runner.mean_response_ratio;
               ])
             r.points)
      rows
  in
  "Extension: job-size distribution sensitivity (same mean 76.8 s)\n"
  ^ render ~header ~rows:body
