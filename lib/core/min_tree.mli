(** Flat tournament tree: O(log n) updates, O(1) minimum, and an
    allocation-free ascending enumeration of the tied-minimum leaves.

    The index the many-server dispatchers lean on: {!Least_load} keeps
    one leaf per computer (normalised load, [+inf] when unavailable) so
    a dispatch decision is a root read plus a tie walk instead of an
    O(n) scan, and the lazy round-robin dispatcher keeps the virtual
    next-arrival credits of started computers in one.

    Internal nodes store {e exact copies} of leaf values (no arithmetic),
    so [Float.equal] against the root minimum is an exact membership
    test — tie enumeration is bit-faithful to a linear scan.

    Each node also carries the number of leaves in its subtree tied with
    that subtree's minimum, so the tied-set size is an O(1) read
    ({!min_count}) and its k-th member an O(log n) counted descent
    ({!nth_tied}) — a uniform tie-break costs one RNG draw total instead
    of one per tied leaf. *)

type t

val create : int -> t
(** [create n] builds a tree over [n] leaves, all at [+infinity].

    @raise Invalid_argument if [n < 1]. *)

val length : t -> int
(** Number of leaves. *)

val set : t -> int -> float -> unit
(** [set t i v] overwrites leaf [i]; O(log n). *)

(** {1 Raw leaf access}

    The allocation-free update path.  [set]'s float parameter is boxed
    at every call in dev builds ([-opaque] disables cross-module
    inlining), which would put an allocation on every dispatch
    decision.  Hot callers store the new value directly —
    [Float.Array.unsafe_set (leaves t) (leaf_pos t i) v] compiles to a
    raw store — then call {!refresh}.  Only slots [leaf_pos t i] for
    [0 <= i < length t] may be written; everything else in {!leaves}
    is the tree's internal state. *)

val leaves : t -> Float.Array.t
(** Backing store; leaf [i] lives at [leaf_pos t i]. *)

val leaf_pos : t -> int -> int

val refresh : t -> int -> unit
(** [refresh t i] recomputes the spine above leaf [i] after a direct
    write to {!leaves}; O(log n).  [set t i v] = store + [refresh]. *)

val get : t -> int -> float
(** Current value of leaf [i]. *)

val fill : t -> float -> unit
(** Set every leaf to the same value and rebuild in O(n). *)

val min_value : t -> float
(** Minimum over all leaves ([+infinity] when all leaves are). *)

val min_count : t -> int
(** Number of leaves [Float.equal] to {!min_value}; O(1).

    Caveat: when {!min_value} is [+infinity] the count includes the
    internal padding leaves (indices [>= length]), so it is only
    meaningful while at least one leaf is finite. *)

val nth_tied : t -> k:int -> int
(** [nth_tied t ~k] is the [k]-th (0-indexed, ascending) leaf index
    tied with {!min_value}; a single O(log n) counted descent, no
    allocation.  Requires a finite {!min_value} to be meaningful (see
    the {!min_count} padding caveat).

    @raise Invalid_argument unless [0 <= k < min_count t]. *)

val first_tied : t -> int
(** Smallest leaf index attaining {!min_value}; [-1] only if the tree
    has no leaves below [+infinity] and [n = 0] (never for a created
    tree: padding never wins against real leaves unless all real leaves
    are [+infinity], in which case the first leaf index is returned). *)

val next_tied : t -> from:int -> int
(** Smallest leaf index [>= from] whose value is [Float.equal] to
    {!min_value}, or [-1] when none remains.  O(log n) per step, so
    walking all [t] ties costs O(t log n); no allocation. *)
