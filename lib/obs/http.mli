(** Minimal dependency-free HTTP/1.1 server for live telemetry and the
    [schedsimd] daemon.

    A {!t} owns a loopback TCP listening socket and a background
    systhread that accepts one connection at a time, parses the request
    line and headers (plus a [Content-Length] body, if any), and answers
    from a user handler.  It is deliberately tiny: [Connection: close]
    on every response, no keep-alive, no TLS, no chunked encoding — just
    enough to let Prometheus or [curl] scrape a running simulation and
    to drive the daemon's control endpoints.

    Every read on an accepted connection is bounded by a per-connection
    deadline ([?read_timeout], default 5 s): a client that connects and
    then stalls gets a 408 and is disconnected, so it cannot head-of-
    line-block other callers behind the sequential accept loop.
    Header blocks are capped at 16 KiB and bodies at 1 MiB (413 beyond).

    Because OCaml systhreads share one domain and the accept/read/write
    syscalls release the runtime lock, serving never runs concurrently
    with simulation code at the machine level: the handler observes a
    consistent heap and cannot perturb the run (it must not mutate
    simulation state or draw random numbers — daemon handlers that do
    mutate must synchronise with their driver explicitly). *)

type t

type response = {
  status : int;  (** e.g. [200], [404] *)
  content_type : string;  (** e.g. ["text/plain; version=0.0.4"] *)
  body : string;
}

type request = {
  meth : string;  (** ["GET"], ["POST"], ["PUT"], ... verbatim *)
  path : string;  (** request target with any query string stripped *)
  body : string;  (** ["" ] when the request carried no body *)
}

val text : ?status:int -> string -> response
(** [text body] is a [text/plain; charset=utf-8] response (default 200). *)

val json : ?status:int -> string -> response
(** [json body] is an [application/json] response (default 200). *)

val serve_requests :
  ?addr:string -> ?read_timeout:float -> port:int -> (request -> response) -> t
(** [serve_requests ~port handler] binds [addr] (default ["127.0.0.1"])
    : [port] ([port = 0] picks an ephemeral port — see {!port}), starts
    the accept thread, and answers each request with [handler req].
    Method dispatch (including 404/405 semantics) is the handler's job.
    Malformed requests get a 400, requests whose headers or body exceed
    the caps a 413, and connections idle past [read_timeout] seconds a
    408, all without invoking [handler].  A handler that raises yields a
    500 to the client and keeps the server alive.

    @raise Unix.Unix_error if the address can't be bound (e.g. port in
    use).
    @raise Invalid_argument if [read_timeout <= 0]. *)

val serve :
  ?addr:string ->
  ?read_timeout:float ->
  port:int ->
  (string -> response option) ->
  t
(** [serve ~port routes] is {!serve_requests} specialised to read-only
    scraping: each [GET path] request is answered with [routes path]
    ([None] becomes a 404) and non-GET methods get a 405. *)

val port : t -> int
(** The bound port — the actual one when [serve] was given port 0. *)

val stop : t -> unit
(** Close the listening socket and join the accept thread.  In-flight
    responses finish; subsequent connections are refused.  Idempotent. *)

(** Internals exposed for white-box tests only — not a stable API. *)
module Testing : sig
  val find_headers_end : bytes -> len:int -> from:int -> int
  (** Index of the ['\r'] opening the ["\r\n\r\n"] header terminator in
      the first [len] bytes, scanning from [max 0 from]; [-1] if absent.
      Incremental callers resume at [prev_len - 3] so the terminator is
      found even when it straddles a chunk boundary. *)

  val read_request :
    read_timeout:float -> Unix.file_descr -> (request, response) result
  (** Read one request off a connected socket; [Error resp] is the
      error response (400/408/413) that would be sent to the client. *)

  val content_length : string -> (int, response) result
  (** Parse the [Content-Length] header out of a raw header block
      (case-insensitive); [Ok 0] when absent. *)
end
