module Cluster = Statsched_cluster
module Core = Statsched_core

let default_horizons = [ 5.0e4; 1.0e5; 2.0e5; 4.0e5; 8.0e5 ]

type t = (float * (string * Runner.point) list) list

let run ?seed ?jobs ?(speeds = Core.Speeds.table3) ?(rho = 0.9) ?(reps = 5)
    ?(horizons = default_horizons) () =
  let workload = Cluster.Workload.paper_default ~rho ~speeds in
  let schedulers =
    [
      ("ORR", Cluster.Scheduler.Static Core.Policy.orr);
      ("WRR", Cluster.Scheduler.Static Core.Policy.wrr);
      ("LeastLoad", Cluster.Scheduler.least_load_paper);
    ]
  in
  List.map
    (fun horizon ->
      let scale = { Config.horizon; warmup = horizon /. 4.0; reps } in
      (horizon, Sweep.over_schedulers ?seed ?jobs ~scale ~schedulers ~speeds ~workload ()))
    horizons

let to_report t =
  Report.render_sweep
    (Sweep.sweep_of_rows
       ~title:
         "Extension: convergence with run length (Table 3, rho=0.9, warm-up = horizon/4)"
       ~xlabel:"horizon (s)" ~metric:`Ratio t)
