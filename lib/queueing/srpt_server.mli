(** Preemptive Shortest-Remaining-Processing-Time server.

    The optimal single-server discipline for mean response time, and the
    natural size-{e aware} counterpart to PS at the host level (as SITA-E
    is at the dispatching level).  A new arrival preempts the running job
    when its size is below the runner's remaining work.  Included to let
    the discipline-comparison benches span size-blind (FCFS, PS/RR) and
    size-aware (SRPT) hosts; the paper's setting corresponds to PS. *)

type t

val create :
  engine:Statsched_des.Engine.t ->
  speed:float ->
  on_departure:(Job.t -> unit) ->
  unit ->
  t
(** @raise Invalid_argument if [speed <= 0]. *)

val submit : t -> Job.t -> unit
val in_system : t -> int
val mean_in_system : t -> float
val utilization : t -> float
val completed : t -> int
val work_done : t -> float
val reset_stats : t -> unit

val set_rate : t -> float -> unit
(** Fault hook: scale the service rate by the given factor from now on
    ([0] suspends the server, freezing the runner's progress).  See
    {!Server_intf.t.set_rate}.

    @raise Invalid_argument if the rate is negative. *)

val drain : t -> Job.t list
(** Fault hook: remove all jobs without completing them (partial service
    is discarded).  See {!Server_intf.t.drain}. *)

val to_server : t -> Server_intf.t
