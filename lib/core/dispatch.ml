module Rng = Statsched_prng.Rng

type t = {
  name : string;
  fractions : float array;
  select_fn : unit -> int;
  reset_fn : unit -> unit;
}

let select t = t.select_fn ()
let name t = t.name
let fractions t = Array.copy t.fractions
let reset t = t.reset_fn ()

let validate_fractions alpha =
  let n = Array.length alpha in
  if n = 0 then invalid_arg "Dispatch: empty fractions";
  let sum = ref 0.0 in
  Array.iter
    (fun a ->
      if not (Float.is_finite a) || a < 0.0 then
        invalid_arg "Dispatch: fractions must be non-negative and finite";
      sum := !sum +. a)
    alpha;
  if abs_float (!sum -. 1.0) > 1e-9 then
    invalid_arg "Dispatch: fractions must sum to 1"

let random ~rng alpha =
  validate_fractions alpha;
  let alpha = Array.copy alpha in
  let n = Array.length alpha in
  let cum = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. alpha.(i);
    cum.(i) <- !acc
  done;
  cum.(n - 1) <- 1.0;
  let select_fn () =
    let u = Rng.float rng in
    (* Binary search for the first cumulative value strictly above u. *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if u < cum.(mid) then hi := mid else lo := mid + 1
    done;
    !lo
  in
  { name = "random"; fractions = alpha; select_fn; reset_fn = (fun () -> ()) }

(* Walker's alias method: split each probability cell into at most two
   donors so that a uniform cell index plus one biased coin reproduces the
   target distribution exactly. *)
let random_alias ~rng alpha =
  validate_fractions alpha;
  let alpha = Array.copy alpha in
  let n = Array.length alpha in
  let prob = Array.make n 1.0 in
  let alias = Array.make n 0 in
  let scaled = Array.map (fun a -> a *. float_of_int n) alpha in
  let small = ref [] and large = ref [] in
  Array.iteri
    (fun i p -> if p < 1.0 then small := i :: !small else large := i :: !large)
    scaled;
  let rec pair () =
    match (!small, !large) with
    | s :: srest, l :: lrest ->
      prob.(s) <- scaled.(s);
      alias.(s) <- l;
      scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.0;
      small := srest;
      if scaled.(l) < 1.0 then begin
        large := lrest;
        small := l :: !small
      end;
      pair ()
    | s :: rest, [] ->
      (* numerical leftovers: cell keeps itself *)
      prob.(s) <- 1.0;
      small := rest;
      pair ()
    | [], l :: rest ->
      prob.(l) <- 1.0;
      large := rest;
      pair ()
    | [], [] -> ()
  in
  pair ();
  let select_fn () =
    let i = Rng.int rng n in
    if Rng.float rng < prob.(i) then i else alias.(i)
  in
  { name = "random-alias"; fractions = alpha; select_fn; reset_fn = (fun () -> ()) }

(* Algorithm 2, parameterised for the ablation variants. *)
let round_robin_impl ~variant_name ~guard ~tie_by_norassign alpha =
  validate_fractions alpha;
  let alpha = Array.copy alpha in
  let n = Array.length alpha in
  let assign = Array.make n 0 in
  let next = Array.make n (if guard then 1.0 else 0.0) in
  let reset_fn () =
    Array.fill assign 0 n 0;
    Array.fill next 0 n (if guard then 1.0 else 0.0)
  in
  let select_fn () =
    let sel = ref (-1) in
    let minnext = ref infinity in
    let norassign = ref infinity in
    for i = 0 to n - 1 do
      if alpha.(i) > 0.0 then begin
        let candidate_nor = float_of_int (assign.(i) + 1) /. alpha.(i) in
        if !sel = -1 || next.(i) < !minnext then begin
          sel := i;
          minnext := next.(i);
          norassign := candidate_nor
        end
        else if Float.equal next.(i) !minnext && tie_by_norassign && candidate_nor < !norassign
        then begin
          sel := i;
          norassign := candidate_nor
        end
      end
    done;
    let s = !sel in
    assert (s >= 0);
    if guard && assign.(s) = 0 then next.(s) <- 0.0;
    next.(s) <- next.(s) +. (1.0 /. alpha.(s));
    assign.(s) <- assign.(s) + 1;
    for i = 0 to n - 1 do
      if assign.(i) <> 0 then next.(i) <- next.(i) -. 1.0
    done;
    s
  in
  { name = variant_name; fractions = alpha; select_fn; reset_fn }

let round_robin alpha =
  round_robin_impl ~variant_name:"round-robin" ~guard:true ~tie_by_norassign:true alpha

let round_robin_no_guard alpha =
  round_robin_impl ~variant_name:"round-robin/no-guard" ~guard:false
    ~tie_by_norassign:true alpha

let round_robin_index_ties alpha =
  round_robin_impl ~variant_name:"round-robin/index-ties" ~guard:true
    ~tie_by_norassign:false alpha

(* Algorithm 2 in offset form, O(log n) per decision.

   The eager loop above subtracts 1.0 from every started computer's
   [next] after each select — O(n) per arrival, prohibitive at n = 10^4
   over 10^7 jobs.  Store instead [stored_i = next_i + A] where [A]
   counts selects so far: the global decrement becomes "A += 1" and a
   select only touches the chosen computer, so a tournament tree over
   the stored values yields the argmin in O(log n).

   Unstarted computers all sit at the guard value [next = 1.0] with
   tie-break key [(assign+1)/alpha = 1/alpha], so their priority order
   is static: a queue sorted by (1/alpha, index), consumed from the
   head.  A select therefore compares the best started candidate
   against the unstarted head under the same [(next, norassign, index)]
   order as the scan.  The started candidate comes from a lexicographic
   tournament tree keyed by [(stored, norassign)] with index ties going
   left, so it is an O(1) root read — a plain min-tree would need a
   walk over the credit-tied cohort, which on a large homogeneous
   cohort (thousands of equal-alpha computers at n = 10^4) degenerates
   to O(ties log n) per decision.

   Arithmetic caveat: [stored - A] reassociates the eager version's
   interleaved +/-1.0 updates, so with arbitrary fractions the two
   variants can round ties differently.  When every fraction is a power
   of two all values are dyadic and exact, and the decision sequences
   are bit-identical — the equivalence test pins exactly that.  [A]
   reaches 10^7 in the scale sweeps, where a double still resolves
   2e-9 — far below the ~[1/alpha] spacing of the credits. *)
let round_robin_lazy alpha =
  validate_fractions alpha;
  let alpha = Array.copy alpha in
  let n = Array.length alpha in
  let assign = Array.make n 0 in
  let tree = Lex_tree.create n in
  let a = Float.Array.make 1 0.0 in  (* A: selects so far, unboxed *)
  let order =
    (* Unstarted priority: (1/alpha asc, index asc); alpha = 0 excluded. *)
    let idx = ref [] in
    for i = n - 1 downto 0 do
      if alpha.(i) > 0.0 then idx := i :: !idx
    done;
    let arr = Array.of_list !idx in
    Array.sort
      (fun i j ->
        let c = Float.compare (1.0 /. alpha.(i)) (1.0 /. alpha.(j)) in
        if c <> 0 then c else Int.compare i j)
      arr;
    arr
  in
  let n_order = Array.length order in
  let head = ref 0 in
  let reset_fn () =
    Array.fill assign 0 n 0;
    Lex_tree.fill tree ~prim:infinity ~sec:infinity;
    Float.Array.set a 0 0.0;
    head := 0
  in
  let select_fn () =
    let a_now = Float.Array.get a 0 in
    let stored_min = Lex_tree.min_prim tree in
    let eff = stored_min -. a_now in  (* +inf when nothing started *)
    let have_unstarted = !head < n_order in
    (* Best started candidate: the tree's secondary key is exactly the
       scan's tie-break [(assign+1)/alpha] (maintained on every set),
       so the lexicographic root IS the winner — no tie walk. *)
    let s =
      if not have_unstarted then Lex_tree.argmin tree
      else if eff < 1.0 then Lex_tree.argmin tree
      else if Float.equal eff 1.0 then begin
        (* Guard-row tie: the unstarted head competes on the same
           (norassign, index) key. *)
        let s = Lex_tree.argmin tree in
        let nor_s = Lex_tree.min_sec tree in
        let u = order.(!head) in
        let nor_u = 1.0 /. alpha.(u) in
        if nor_u < nor_s || (Float.equal nor_u nor_s && u < s) then u else s
      end
      else order.(!head)
    in
    (* After this select [assign s] becomes assign+1, so the leaf's
       tie-break key for future comparisons is [(assign+2)/alpha].
       Direct leaf stores + refresh (the {!Lex_tree} raw-access
       contract) keep the decision free of boxed floats in dev
       builds. *)
    let pos = Lex_tree.leaf_pos tree s in
    let prim_leaves = Lex_tree.prim_leaves tree in
    if assign.(s) = 0 then begin
      (* First selection.  An unstarted winner is always the queue head
         (the tree only holds started computers), and the eager version
         resets the guard to 0 before crediting, so
         stored = 1/alpha + A(before this select). *)
      incr head;
      Float.Array.unsafe_set prim_leaves pos ((1.0 /. alpha.(s)) +. a_now)
    end
    else
      Float.Array.unsafe_set prim_leaves pos
        (Float.Array.unsafe_get prim_leaves pos +. (1.0 /. alpha.(s)));
    Float.Array.unsafe_set (Lex_tree.sec_leaves tree) pos
      (float_of_int (assign.(s) + 2) /. alpha.(s));
    Lex_tree.refresh tree s;
    assign.(s) <- assign.(s) + 1;
    Float.Array.set a 0 (a_now +. 1.0);
    s
  in
  { name = "round-robin/lazy"; fractions = alpha; select_fn; reset_fn }

let smooth_weighted alpha =
  validate_fractions alpha;
  let alpha = Array.copy alpha in
  let n = Array.length alpha in
  let current = Array.make n 0.0 in
  let select_fn () =
    let best = ref 0 in
    for i = 0 to n - 1 do
      current.(i) <- current.(i) +. alpha.(i);
      if current.(i) > current.(!best) then best := i
    done;
    current.(!best) <- current.(!best) -. 1.0;
    !best
  in
  {
    name = "smooth-wrr";
    fractions = alpha;
    select_fn;
    reset_fn = (fun () -> Array.fill current 0 n 0.0);
  }

let golden_ratio alpha =
  validate_fractions alpha;
  let alpha = Array.copy alpha in
  let n = Array.length alpha in
  let cum = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. alpha.(i);
    cum.(i) <- !acc
  done;
  cum.(n - 1) <- 1.0;
  let inv_phi = 2.0 /. (1.0 +. sqrt 5.0) in
  let u = ref 0.0 in
  let select_fn () =
    u := !u +. inv_phi;
    if !u >= 1.0 then u := !u -. 1.0;
    let x = !u in
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if x < cum.(mid) then hi := mid else lo := mid + 1
    done;
    !lo
  in
  {
    name = "golden-ratio";
    fractions = alpha;
    select_fn;
    reset_fn = (fun () -> u := 0.0);
  }

let strict_cycle n =
  if n <= 0 then invalid_arg "Dispatch.strict_cycle: n <= 0";
  let pos = ref 0 in
  let select_fn () =
    let s = !pos in
    pos := (!pos + 1) mod n;
    s
  in
  {
    name = "cycle";
    fractions = Array.make n (1.0 /. float_of_int n);
    select_fn;
    reset_fn = (fun () -> pos := 0);
  }
