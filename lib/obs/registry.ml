(* A counter/gauge is a single-field all-float record: OCaml stores it
   flat, so [inc]/[set] write a raw double in place.  A [float ref]
   (the polymorphic [ref] record) would box a fresh float and pay the
   write barrier on every increment — measurable on per-event hooks. *)
type cell = { mutable v : float }

type counter = cell
type gauge = cell
type histogram = Hdr_histogram.t

type data =
  | Counter_v of counter
  | Gauge_v of gauge
  | Histogram_v of histogram

type metric = {
  name : string;
  help : string;
  labels : (string * string) list;
  data : data;
}

type t = { mutable metrics : metric list (* newest first *) }

let create () = { metrics = [] }

(* ------------------------------------------------------------------ *)
(* Registration                                                        *)

let valid_name n =
  String.length n > 0
  && (match n.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       n

let valid_label_name n =
  String.length n > 0
  && (match n.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       n

let kind_name = function
  | Counter_v _ -> "counter"
  | Gauge_v _ -> "gauge"
  | Histogram_v _ -> "histogram"

(* Exposition-format suffixes a histogram family [X] claims for its own
   series; no other metric may occupy them, and a histogram may not be
   registered under a name another metric already shadows. *)
let histogram_suffixes = [ "_bucket"; "_sum"; "_count" ]

let strip_suffix name suffix =
  let ln = String.length name and ls = String.length suffix in
  if ln > ls && String.equal (String.sub name (ln - ls) ls) suffix then
    Some (String.sub name 0 (ln - ls))
  else None

let check_reserved t ~name ~kind =
  if kind = "histogram" then begin
    (* [le] is the bucket label the exposition writer appends. *)
    List.iter
      (fun suffix ->
        let series = name ^ suffix in
        if List.exists (fun m -> m.name = series) t.metrics then
          invalid_arg
            (Printf.sprintf
               "Registry: histogram %s would shadow existing metric %s" name
               series))
      histogram_suffixes
  end;
  List.iter
    (fun suffix ->
      match strip_suffix name suffix with
      | None -> ()
      | Some base ->
        if
          List.exists
            (fun m ->
              m.name = base && match m.data with Histogram_v _ -> true | _ -> false)
            t.metrics
        then
          invalid_arg
            (Printf.sprintf
               "Registry: %s collides with the %s series of histogram %s" name
               suffix base))
    histogram_suffixes

let register t ~help ~labels ~name ~make ~extract ~kind =
  if not (valid_name name) then invalid_arg ("Registry: invalid metric name " ^ name);
  List.iter
    (fun (k, _) ->
      if not (valid_label_name k) then invalid_arg ("Registry: invalid label name " ^ k);
      if kind = "histogram" && k = "le" then
        invalid_arg "Registry: label name le is reserved on histograms")
    labels;
  match List.find_opt (fun m -> m.name = name && m.labels = labels) t.metrics with
  | Some m -> (
    match extract m.data with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "Registry: %s already registered as a %s, requested as a %s"
           name (kind_name m.data) kind))
  | None ->
    (match List.find_opt (fun m -> m.name = name) t.metrics with
    | Some m when kind <> kind_name m.data ->
      invalid_arg
        (Printf.sprintf "Registry: family %s mixes kinds (%s vs %s)" name
           (kind_name m.data) kind)
    | Some _ -> ()
    | None -> check_reserved t ~name ~kind);
    let v, data = make () in
    t.metrics <- { name; help; labels; data } :: t.metrics;
    v

let counter t ?(help = "") ?(labels = []) name =
  register t ~help ~labels ~name ~kind:"counter"
    ~make:(fun () ->
      let r = { v = 0.0 } in
      (r, Counter_v r))
    ~extract:(function Counter_v r -> Some r | _ -> None)

let gauge t ?(help = "") ?(labels = []) name =
  register t ~help ~labels ~name ~kind:"gauge"
    ~make:(fun () ->
      let r = { v = 0.0 } in
      (r, Gauge_v r))
    ~extract:(function Gauge_v r -> Some r | _ -> None)

let histogram t ?(help = "") ?(labels = []) ?sub_count ~lo ~hi name =
  register t ~help ~labels ~name ~kind:"histogram"
    ~make:(fun () ->
      let h = Hdr_histogram.create ?sub_count ~lo ~hi () in
      (h, Histogram_v h))
    ~extract:(function Histogram_v h -> Some h | _ -> None)

let[@inline] inc_by c x =
  if Float.is_nan x || x < 0.0 then invalid_arg "Registry.inc_by: negative increment";
  c.v <- c.v +. x

let[@inline] inc c = c.v <- c.v +. 1.0
let[@inline] counter_value c = c.v

let[@inline] set (g : gauge) x = g.v <- x
let[@inline] gauge_value (g : gauge) = g.v

let metric_count t = List.length t.metrics

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition (format 0.0.4)                           *)

let fmt_float x =
  if Float.is_nan x then "NaN"
  else if Float.equal x infinity then "+Inf"
  else if Float.equal x neg_infinity then "-Inf"
  else if Float.is_integer x && abs_float x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.12g" x

let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let escape_help v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels buf labels =
  match labels with
  | [] -> ()
  | _ ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        Buffer.add_string buf (escape_label_value v);
        Buffer.add_char buf '"')
      labels;
    Buffer.add_char buf '}'

let sample buf name labels value =
  Buffer.add_string buf name;
  render_labels buf labels;
  Buffer.add_char buf ' ';
  Buffer.add_string buf (fmt_float value);
  Buffer.add_char buf '\n'

let render_metric buf m =
  match m.data with
  | Counter_v r -> sample buf m.name m.labels r.v
  | Gauge_v r -> sample buf m.name m.labels r.v
  | Histogram_v h ->
    let cumulative = ref 0 in
    Hdr_histogram.iter_nonempty h (fun ~upper ~count ->
        cumulative := !cumulative + count;
        sample buf (m.name ^ "_bucket")
          (m.labels @ [ ("le", fmt_float upper) ])
          (float_of_int !cumulative));
    sample buf (m.name ^ "_bucket")
      (m.labels @ [ ("le", "+Inf") ])
      (float_of_int (Hdr_histogram.count h));
    sample buf (m.name ^ "_sum") m.labels (Hdr_histogram.sum h);
    sample buf (m.name ^ "_count") m.labels (float_of_int (Hdr_histogram.count h))

let to_prometheus t =
  let buf = Buffer.create 4096 in
  let in_order = List.rev t.metrics in
  let emitted = Hashtbl.create 16 in
  List.iter
    (fun m ->
      if not (Hashtbl.mem emitted m.name) then begin
        Hashtbl.add emitted m.name ();
        if m.help <> "" then
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s %s\n" m.name (escape_help m.help));
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" m.name (kind_name m.data));
        List.iter
          (fun m' -> if m'.name = m.name then render_metric buf m')
          in_order
      end)
    in_order;
  Buffer.contents buf

let write_prometheus t path =
  (* Write-then-rename so a scraper reading [path] never sees a torn
     half-written exposition. *)
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_prometheus t));
  Sys.rename tmp path
