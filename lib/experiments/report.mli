(** Plain-text rendering of experiment results.

    Produces aligned tables resembling the paper's tables and one-series-
    per-column listings of its figures, suitable for terminal output and
    for diffing across runs. *)

type cell =
  | Text of string
  | Int of int
  | Float of float  (** rendered with 4 significant digits *)
  | Percent of float  (** fraction rendered as a percentage *)
  | Interval of Statsched_stats.Confidence.interval  (** mean ± half-width *)

val render : header:string list -> rows:cell list list -> string
(** Aligned table with a rule under the header.

    @raise Invalid_argument if a row width differs from the header. *)

val pp : Format.formatter -> header:string list -> rows:cell list list -> unit

val print_section : string -> unit
(** Banner for an experiment section on stdout. *)

type sweep = {
  title : string;
  xlabel : string;
  columns : string list;  (** algorithm names *)
  rows : (float * cell list) list;  (** x value and one cell per column *)
}

val render_sweep : sweep -> string

val pp_sweep : Format.formatter -> sweep -> unit

val ascii_chart :
  ?width:int ->
  ?height:int ->
  title:string ->
  xlabel:string ->
  (string * (float * float) list) list ->
  string
(** [ascii_chart ~title ~xlabel series] renders an ASCII scatter/line plot
    of the given [(name, points)] series on shared axes — a terminal
    rendition of a paper figure.  Each series is drawn with its own marker
    character (a, b, c, …) listed in the legend; collisions show the later
    series.  Default canvas 72×20.  Non-finite points are skipped; an
    empty plot renders a note instead.

    @raise Invalid_argument if [width < 20] or [height < 5]. *)

val chart_of_sweep : ?width:int -> ?height:int -> sweep -> string
(** Render a {!sweep}'s interval means as an {!ascii_chart}. *)

val render_csv : header:string list -> rows:cell list list -> string
(** The same table as {!render} in RFC-4180-ish CSV: header line, one line
    per row, commas and double quotes in text cells escaped by quoting.
    Intervals emit ["mean±half"] collapsed to just the mean (use
    {!sweep_to_csv} when the half-widths matter).

    @raise Invalid_argument on ragged rows. *)

val sweep_to_csv : sweep -> string
(** A sweep as CSV with explicit error columns: for each series [S] the
    columns [S] and [S_halfwidth] (empty for non-interval cells). *)
