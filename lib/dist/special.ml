(* Lanczos approximation (g = 7, 9 terms) evaluated in log space.

   The direct product form [sqrt(2π) · t^(z+0.5) · e^(−t) · series]
   overflows in the [t^(z+0.5)] factor long before Γ itself leaves the
   double range: [t = z + 6.5] and [(z+0.5)·ln t] passes [ln max_float ≈
   709] near [z ≈ 141], while Γ stays finite up to [z ≈ 171.62].  Working
   with [ln Γ] and exponentiating once keeps the full representable
   range and the same ~1e-13 relative accuracy. *)

let coeffs =
  [|
    676.5203681218851; -1259.1392167224028; 771.32342877765313;
    -176.61502916214059; 12.507343278686905; -0.13857109526572012;
    9.9843695780195716e-6; 1.5056327351493116e-7;
  |]

let half_log_two_pi = 0.5 *. log (2.0 *. Float.pi)

let rec log_gamma z =
  if not (z > 0.0) then nan
  else if z < 0.5 then
    (* Reflection: Γ(z)·Γ(1−z) = π / sin(πz); for 0 < z < 0.5 both
       factors are positive so the logarithm is safe. *)
    log (Float.pi /. sin (Float.pi *. z)) -. log_gamma (1.0 -. z)
  else begin
    let z = z -. 1.0 in
    let x = ref 0.99999999999980993 in
    Array.iteri (fun i c -> x := !x +. (c /. (z +. float_of_int i +. 1.0))) coeffs;
    let t = z +. float_of_int (Array.length coeffs) -. 0.5 in
    half_log_two_pi +. ((z +. 0.5) *. log t) -. t +. log !x
  end

let gamma z = if not (z > 0.0) then nan else exp (log_gamma z)
