let gradient ~rho ~speeds ~alloc =
  Speeds.validate speeds;
  if not (0.0 < rho && rho < 1.0) then
    invalid_arg "Optimality.gradient: rho outside (0,1)";
  if Array.length alloc <> Array.length speeds then
    invalid_arg "Optimality.gradient: length mismatch";
  let lambda = rho *. Speeds.total speeds in
  Array.mapi
    (fun i si ->
      let denom = si -. (alloc.(i) *. lambda) in
      if denom <= 0.0 then infinity else lambda *. si /. (denom *. denom))
    speeds

type verdict = {
  optimal : bool;
  stationarity_residual : float;
  dual_residual : float;
  feasibility_residual : float;
  multiplier : float;
}

let check ?(tol = 1e-6) ~rho ~speeds alloc =
  let n = Array.length speeds in
  let grad = gradient ~rho ~speeds ~alloc in
  let lambda = rho *. Speeds.total speeds in
  (* Feasibility. *)
  let sum = Array.fold_left ( +. ) 0.0 alloc in
  let feas = ref (abs_float (sum -. 1.0)) in
  for i = 0 to n - 1 do
    if alloc.(i) < 0.0 then feas := max !feas (-.alloc.(i));
    let slack = speeds.(i) -. (alloc.(i) *. lambda) in
    if slack <= 0.0 then feas := max !feas (-.slack)
  done;
  (* Stationarity over the active set (alpha_i > 0). *)
  let active = ref [] in
  Array.iteri (fun i a -> if a > tol then active := grad.(i) :: !active) alloc;
  let multiplier, stationarity =
    match !active with
    | [] -> (nan, infinity)
    | gs ->
      let lo = List.fold_left min infinity gs in
      let hi = List.fold_left max neg_infinity gs in
      let mid = (lo +. hi) /. 2.0 in
      (mid, (hi -. lo) /. (abs_float mid +. 1e-300))
  in
  (* Dual feasibility on the parked set: gradient must be >= multiplier. *)
  let dual = ref 0.0 in
  Array.iteri
    (fun i a ->
      if a <= tol && Float.is_finite multiplier then begin
        let deficit = (multiplier -. grad.(i)) /. (abs_float multiplier +. 1e-300) in
        if deficit > !dual then dual := deficit
      end)
    alloc;
  {
    optimal = !feas <= tol && stationarity <= tol && !dual <= tol;
    stationarity_residual = stationarity;
    dual_residual = !dual;
    feasibility_residual = !feas;
    multiplier;
  }

let brute_force_two ?(grid = 1_000_000) ~rho speeds =
  if Array.length speeds <> 2 then
    invalid_arg "Optimality.brute_force_two: need exactly two computers";
  Speeds.validate speeds;
  let lambda = rho *. Speeds.total speeds in
  let best = ref [| 0.5; 0.5 |] in
  let best_f = ref infinity in
  for k = 0 to grid do
    let a0 = float_of_int k /. float_of_int grid in
    let a1 = 1.0 -. a0 in
    if a0 *. lambda < speeds.(0) && a1 *. lambda < speeds.(1) then begin
      let f =
        (speeds.(0) /. (speeds.(0) -. (a0 *. lambda)))
        +. (speeds.(1) /. (speeds.(1) -. (a1 *. lambda)))
      in
      if f < !best_f then begin
        best_f := f;
        best := [| a0; a1 |]
      end
    end
  done;
  !best
