type t = {
  mutable id : int;
  mutable size : float;
  mutable arrival : float;
  mutable computer : int;
  mutable start : float;
  mutable completion : float;
}

let create ~id ~size ~arrival =
  if size <= 0.0 then invalid_arg "Job.create: size <= 0";
  if arrival < 0.0 then invalid_arg "Job.create: arrival < 0";
  { id; size; arrival; computer = -1; start = -1.0; completion = -1.0 }

(* Free-list of retired job records backed by a plain array stack (no
   list cells, so pooling itself never allocates per job).  Re-initialising
   a recycled record stores already-boxed floats into the mutable fields —
   no fresh boxes — which makes the dispatch→completion cycle
   allocation-free once the pool has warmed up to the in-flight
   high-water mark. *)
type pool = { mutable free : t array; mutable top : int }

let pool () = { free = [||]; top = 0 }

let pooled p = p.top

let acquire p ~id ~size ~arrival =
  if p.top = 0 then create ~id ~size ~arrival
  else begin
    if size <= 0.0 then invalid_arg "Job.create: size <= 0";
    if arrival < 0.0 then invalid_arg "Job.create: arrival < 0";
    p.top <- p.top - 1;
    let j = p.free.(p.top) in
    j.id <- id;
    j.size <- size;
    j.arrival <- arrival;
    j.computer <- -1;
    j.start <- -1.0;
    j.completion <- -1.0;
    j
  end

let release p j =
  let cap = Array.length p.free in
  if p.top = cap then begin
    let nf = Array.make (max 64 (2 * cap)) j in
    Array.blit p.free 0 nf 0 cap;
    p.free <- nf
  end;
  p.free.(p.top) <- j;
  p.top <- p.top + 1

let is_completed j = j.completion >= 0.0

(* [@inline] lets callers keep the float result unboxed: these run on
   per-completion hot paths (telemetry hooks, collectors). *)
let[@inline] response_time j =
  if not (is_completed j) then invalid_arg "Job.response_time: not completed";
  j.completion -. j.arrival

let[@inline] response_ratio j = response_time j /. j.size

let pp fmt j =
  Format.fprintf fmt "job#%d size=%.4g arr=%.4g comp=%.4g on=%d" j.id j.size
    j.arrival j.completion j.computer
