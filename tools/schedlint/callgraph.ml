(* Whole-program model: definitions, module aliases, type declarations
   and the call graph.

   A "definition" is a value binding at module level (including nested
   [module ... = struct ... end] blocks).  Each definition records its
   attributes (the [@schedsim.hot] / [@schedsim.cold] contract lives
   there), its syntactic arity and every identifier it references, so
   the interprocedural rules (R7 determinism taint, R8 static
   zero-alloc) can walk caller -> callee chains across compilation
   units. *)

open Typedtree

type def = {
  canon : string;  (* "Statsched_des.Engine.step" *)
  src : string;
  loc : Location.t;
  attrs : string list;
  arity : int;  (* leading fun-parameters of the bound expression *)
  body : Typedtree.expression;
  mutable refs : (string * Location.t) list;  (* referenced idents, first loc *)
}

type unit_ctx = {
  info : Loader.unit_info;
  aliases : Canon.aliases;
  allow : Source.t;
  stamps : (string, def) Hashtbl.t;  (* Ident.unique_name -> local def *)
}

type t = {
  units : unit_ctx list;
  defs : (string, def) Hashtbl.t;  (* canonical name -> def *)
  decls : (string, Types.type_declaration * (Path.t -> string)) Hashtbl.t;
  mutable callers : (string, (def * Location.t) list) Hashtbl.t;
      (* callee canonical name -> callers (reverse edges) *)
}

let attr_names attrs =
  List.map (fun (a : Parsetree.attribute) -> a.attr_name.txt) attrs

let has_attr name def = List.mem name def.attrs

let rec arity_of (e : expression) =
  match e.exp_desc with
  | Texp_function { cases = [ { c_rhs; _ } ]; _ } -> 1 + arity_of c_rhs
  | Texp_function _ -> 1
  | _ -> 0

(* ------------------------------------------------------------------ *)
(* Pass 1: definitions, aliases, type declarations *)

let collect_unit decls (u : Loader.unit_info) =
  let aliases : Canon.aliases = Hashtbl.create 16 in
  let stamps = Hashtbl.create 64 in
  let unit_name = u.Loader.unit_name in
  let canonizer p = Canon.path ~aliases ~unit_name p in
  let out = ref [] in
  let rec unwrap (me : module_expr) =
    match me.mod_desc with
    | Tmod_constraint (inner, _, _, _) -> unwrap inner
    | _ -> me
  in
  let rec items prefix str = List.iter (item prefix) str.str_items
  and item prefix (si : structure_item) =
    match si.str_desc with
    | Tstr_value (_, vbs) ->
      List.iter
        (fun (vb : value_binding) ->
          match vb.vb_pat.pat_desc with
          | Tpat_var (id, _) ->
            let def =
              {
                canon = prefix ^ "." ^ Ident.name id;
                src = u.Loader.src;
                loc = vb.vb_loc;
                attrs = attr_names vb.vb_attributes;
                arity = arity_of vb.vb_expr;
                body = vb.vb_expr;
                refs = [];
              }
            in
            Hashtbl.replace stamps (Ident.unique_name id) def;
            out := def :: !out
          | _ -> ())
        vbs
    | Tstr_type (_, tds) ->
      List.iter
        (fun (td : type_declaration) ->
          Hashtbl.replace decls
            (prefix ^ "." ^ Ident.name td.typ_id)
            (td.typ_type, canonizer))
        tds
    | Tstr_module mb -> module_binding prefix mb
    | Tstr_recmodule mbs -> List.iter (module_binding prefix) mbs
    | Tstr_include incl -> (
      (* [include struct ... end] keeps its definitions visible at the
         enclosing level. *)
      match (unwrap incl.incl_mod).mod_desc with
      | Tmod_structure str -> items prefix str
      | _ -> ())
    | _ -> ()
  and module_binding prefix (mb : module_binding) =
    match mb.mb_id with
    | None -> ()
    | Some id -> (
      match (unwrap mb.mb_expr).mod_desc with
      | Tmod_ident (p, _) ->
        Hashtbl.replace aliases (Ident.unique_name id) (canonizer p)
      | Tmod_structure str -> items (prefix ^ "." ^ Ident.name id) str
      | _ -> ())
  in
  items unit_name u.Loader.structure;
  let ctx =
    {
      info = u;
      aliases;
      allow = Source.load u.Loader.src;
      stamps;
    }
  in
  (ctx, List.rev !out)

(* ------------------------------------------------------------------ *)
(* Pass 2: references *)

(* Resolve an identifier occurrence to a canonical name.  Local idents
   (function parameters, let-locals) resolve to [None]. *)
let resolve_ident ctx p =
  match p with
  | Path.Pident id when not (Ident.global id) && not (Ident.is_predef id) -> (
    match Hashtbl.find_opt ctx.stamps (Ident.unique_name id) with
    | Some def -> Some def.canon
    | None -> None)
  | _ ->
    Some
      (Canon.path ~aliases:ctx.aliases ~unit_name:ctx.info.Loader.unit_name p)

let collect_refs ctx def =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let expr sub (e : expression) =
    (match e.exp_desc with
    | Texp_ident (p, _, _) -> (
      match resolve_ident ctx p with
      | Some canon when not (Hashtbl.mem seen canon) ->
        Hashtbl.add seen canon ();
        acc := (canon, e.exp_loc) :: !acc
      | _ -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let iterator = { Tast_iterator.default_iterator with expr } in
  iterator.expr iterator def.body;
  def.refs <- List.rev !acc

(* ------------------------------------------------------------------ *)

let build (units : Loader.unit_info list) =
  let decls = Hashtbl.create 256 in
  let collected = List.map (collect_unit decls) units in
  let defs = Hashtbl.create 1024 in
  List.iter
    (fun (_, ds) -> List.iter (fun d -> Hashtbl.replace defs d.canon d) ds)
    collected;
  List.iter
    (fun (ctx, ds) -> List.iter (fun d -> collect_refs ctx d) ds)
    collected;
  let callers = Hashtbl.create 1024 in
  List.iter
    (fun (_, ds) ->
      List.iter
        (fun d ->
          List.iter
            (fun (callee, loc) ->
              if Hashtbl.mem defs callee then
                let prev =
                  Option.value ~default:[] (Hashtbl.find_opt callers callee)
                in
                Hashtbl.replace callers callee ((d, loc) :: prev))
            d.refs)
        ds)
    collected;
  { units = List.map fst collected; defs; decls; callers }

let find_decl t name = Hashtbl.find_opt t.decls name

let find_def t name = Hashtbl.find_opt t.defs name

let iter_defs t f =
  (* Deterministic order: sort by canonical name. *)
  Hashtbl.fold (fun _ d acc -> d :: acc) t.defs []
  |> List.sort (fun a b -> String.compare a.canon b.canon)
  |> List.iter f

let callers_of t canon =
  Option.value ~default:[] (Hashtbl.find_opt t.callers canon)
