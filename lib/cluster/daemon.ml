module Core = Statsched_core
module Clock = Statsched_obs.Clock
module Http = Statsched_obs.Http
type t = {
  driver : Simulation.Driver.t;
  telemetry : Telemetry.t;
  clock : unit -> float;
  backlog_limit : int;
  (* Serialises every request handler (and {!drain}) against the
     driver: the HTTP accept loop runs on a systhread, SIGTERM-driven
     drains on the main one. *)
  mutex : Mutex.t;
  mutable draining : bool;
  mutable drained : bool;
  mutable outcome : Simulation.result option;
  (* Virtual time at which the drain completed — the run's true end. *)
  mutable end_time : float;
}

(* The daemon accepts the policy vocabulary of the [schedsim] CLI and
   simcheck scenarios, plus an optional [:d] probe-count suffix for the
   sampling dispatchers (e.g. ["jsq-d:4"]). *)
let policy_names =
  [ "wran"; "oran"; "wrr"; "orr"; "least-load"; "two-choices"; "jsq-d";
    "jsq-d-uniform"; "jiq" ]

let scheduler_of_name name =
  let base, d =
    match String.index_opt name ':' with
    | None -> (name, Ok 2)
    | Some i ->
      let suffix = String.sub name (i + 1) (String.length name - i - 1) in
      ( String.sub name 0 i,
        match int_of_string_opt suffix with
        | Some d when d >= 1 -> Ok d
        | Some _ | None ->
          Error (Printf.sprintf "bad probe count %S (want a positive int)" suffix)
      )
  in
  match d with
  | Error _ as e -> e
  | Ok d -> (
    match base with
    | "wran" -> Ok (Scheduler.static Core.Policy.wran)
    | "oran" -> Ok (Scheduler.static Core.Policy.oran)
    | "wrr" -> Ok (Scheduler.static Core.Policy.wrr)
    | "orr" -> Ok (Scheduler.static Core.Policy.orr)
    | "least-load" -> Ok Scheduler.least_load_paper
    | "two-choices" -> Ok (Scheduler.two_choices ~d ())
    | "jsq-d" -> Ok (Scheduler.jsq ~d ())
    | "jsq-d-uniform" -> Ok (Scheduler.jsq ~d ~weighted:false ())
    | "jiq" -> Ok Scheduler.jiq
    | s ->
      Error
        (Printf.sprintf "unknown policy %S (known: %s)" s
           (String.concat ", " policy_names)))

let create ?journal ?(time_scale = 1.0) ?(backlog_limit = 1000) ?clock cfg =
  if not (time_scale > 0.0) then invalid_arg "Daemon.create: time_scale <= 0";
  if backlog_limit < 1 then invalid_arg "Daemon.create: backlog_limit < 1";
  let telemetry = Telemetry.create ?journal cfg in
  (* Telemetry hooks copy job fields out synchronously, so record
     recycling stays on and the steady-state dispatch path allocates
     nothing. *)
  let driver =
    Simulation.Driver.create ~hooks_retain_jobs:false
      ~metric_histograms:(Telemetry.histograms telemetry)
      ~on_engine:(Telemetry.set_engine telemetry)
      ~on_dispatch:(Telemetry.on_dispatch telemetry)
      ~on_completion:(Telemetry.on_completion telemetry)
      ~arrivals:`External cfg
  in
  let clock =
    match clock with
    | Some f -> f
    | None ->
      (* Virtual time = scaled wall time since start-up; the only
         wall-clock read goes through {!Statsched_obs.Clock}. *)
      let start = Clock.now () in
      fun () -> (Clock.now () -. start) *. time_scale
  in
  {
    driver;
    telemetry;
    clock;
    backlog_limit;
    mutex = Mutex.create ();
    draining = false;
    drained = false;
    outcome = None;
    end_time = 0.0;
  }

let telemetry t = t.telemetry
let driver t = t.driver
let virtual_now t = t.clock ()
let backlog t = Simulation.Driver.in_system t.driver
let is_drained t = t.drained
let result t = t.outcome

(* Catch the event sequence up with the virtual clock.  Monotone, so
   calling it on every request is safe whatever order requests land. *)
let advance_locked t = Simulation.Driver.advance t.driver ~to_:(t.clock ())

let drain_locked t =
  if not t.drained then begin
    advance_locked t;
    t.draining <- true;
    Simulation.Driver.drain t.driver;
    t.end_time <- Simulation.Driver.now t.driver;
    (* An empty run has nothing to summarise — [finalize] would refuse —
       so it just ends; the journal then carries no summary lines. *)
    if Simulation.Driver.measured t.driver > 0 then begin
      let r = Simulation.Driver.finalize t.driver in
      Telemetry.finalize ~horizon:t.end_time t.telemetry r;
      t.outcome <- Some r
    end;
    t.drained <- true
  end;
  Http.json ~status:200
    (Printf.sprintf
       "{\"drained\":true,\"sim_time\":%.17g,\"arrivals\":%d,\"completions\":%d,\"jobs_measured\":%d}"
       (Simulation.Driver.now t.driver)
       (Simulation.Driver.arrivals t.driver)
       (Simulation.Driver.completions t.driver)
       (Simulation.Driver.measured t.driver))

let prometheus_content_type = "text/plain; version=0.0.4; charset=utf-8"

let submit_locked t body =
  if t.draining then Http.text ~status:503 "draining, not accepting jobs\n"
  else if backlog t >= t.backlog_limit then
    Http.text ~status:429
      (Printf.sprintf "backlog full (%d jobs in system, limit %d)\n"
         (backlog t) t.backlog_limit)
  else
    match float_of_string_opt (String.trim body) with
    | Some size when size > 0.0 && Float.is_finite size ->
      advance_locked t;
      let computer = Simulation.Driver.submit t.driver ~size in
      Http.json ~status:202
        (Printf.sprintf "{\"id\":%d,\"computer\":%d,\"time\":%.17g}"
           (Simulation.Driver.arrivals t.driver)
           computer
           (Simulation.Driver.now t.driver))
    | Some _ | None ->
      Http.text ~status:400
        "body must be one positive number: the job's service demand in \
         seconds on a speed-1 computer\n"

let set_policy_locked t body =
  if t.draining then Http.text ~status:503 "draining, policy frozen\n"
  else
    match scheduler_of_name (String.trim body) with
    | Error msg -> Http.text ~status:400 (msg ^ "\n")
    | Ok kind -> (
      advance_locked t;
      (* A policy whose construction fails — e.g. an infeasible static
         allocation under sanitizers — leaves the old one installed. *)
      match Simulation.Driver.set_scheduler t.driver kind with
      | () -> Http.text (Scheduler.name kind ^ "\n")
      | exception Invalid_argument msg -> Http.text ~status:400 (msg ^ "\n"))

let handle_locked t (req : Http.request) =
  match (req.Http.meth, req.Http.path) with
  | "GET", "/healthz" -> Http.text "ok\n"
  | "GET", "/metrics" ->
    {
      Http.status = 200;
      content_type = prometheus_content_type;
      body = Telemetry.metrics_exposition t.telemetry;
    }
  | "GET", "/state" ->
    advance_locked t;
    Http.json (Telemetry.state_json t.telemetry)
  | "GET", "/policy" ->
    Http.text (Scheduler.name (Simulation.Driver.scheduler t.driver) ^ "\n")
  | "POST", "/jobs" -> submit_locked t req.Http.body
  | "PUT", "/policy" -> set_policy_locked t req.Http.body
  | "POST", "/drain" -> drain_locked t
  | _, ("/healthz" | "/metrics" | "/state" | "/policy" | "/jobs" | "/drain") ->
    Http.text ~status:405 "method not allowed\n"
  | _, _ -> Http.text ~status:404 "not found\n"

let handle_request t req =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () -> handle_locked t req)

let drain t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () -> ignore (drain_locked t))

let write_journal t path =
  match t.outcome with
  | Some r ->
    Telemetry.write_journal ~horizon:t.end_time t.telemetry r path;
    true
  | None -> false

let serve ?addr ?read_timeout t ~port =
  Http.serve_requests ?addr ?read_timeout ~port (handle_request t)
