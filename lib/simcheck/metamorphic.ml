module Core = Statsched_core
module Cluster = Statsched_cluster
module Dist = Statsched_dist
module E = Statsched_experiments

let default_scale = { E.Config.horizon = 4.0e4; warmup = 1.0e4; reps = 3 }

(* ------------------------------------------------------------------ *)
(* Time-scale invariance                                               *)

(* Scaling every input time by a constant c — interarrival gaps, job
   sizes, horizon, warmup — must scale every output *time* by exactly c
   and leave every dimensionless output (response ratios, utilisations,
   mean number-in-system, per-computer job counts) untouched.  With c a
   power of two the homogeneity is exact in IEEE arithmetic (a pure
   exponent shift commutes with rounding), so the comparison is
   bit-for-bit equality, not a tolerance: any absolute time constant
   accidentally baked into the simulator's path shows up immediately.
   Restricted to static schedulers without faults — Least-Load's update
   delays and a fault plan's MTBF/MTTR are absolute times by design. *)
let time_scale ~scale ~seed =
  let c = 4.0 in
  let scale_workload (w : Cluster.Workload.t) =
    {
      w with
      Cluster.Workload.interarrival = Dist.Distribution.scaled w.Cluster.Workload.interarrival c;
      size = Dist.Distribution.scaled w.Cluster.Workload.size c;
    }
  in
  let speeds = [| 1.0; 2.0; 4.0 |] and rho = 0.7 in
  List.concat_map
    (fun (policy, discipline) ->
      let sc =
        Scenario.v ~speeds ~rho ~policy ~discipline ~size:Scenario.Bp_paper
          ~arrival_cv:3.0 ~seed ()
      in
      let run workload horizon warmup =
        Cluster.Simulation.run
          (Cluster.Simulation.default_config ~discipline ~horizon ~warmup ~seed
             ~speeds ~workload ~scheduler:(Scenario.scheduler_of_name policy) ())
      in
      let base =
        run (Scenario.workload sc) scale.E.Config.horizon scale.E.Config.warmup
      in
      let scaled =
        run
          (scale_workload (Scenario.workload sc))
          (c *. scale.E.Config.horizon)
          (c *. scale.E.Config.warmup)
      in
      let label what =
        Printf.sprintf "time-scale/%s-%s/%s" policy
          (Scenario.discipline_to_string discipline)
          what
      in
      let bm = base.Cluster.Simulation.metrics
      and sm = scaled.Cluster.Simulation.metrics in
      let exact what got want =
        Check.v ~label:(label what) ~ok:(Float.equal got want)
          ~detail:
            (Printf.sprintf "scaled run: %.17g, expected exactly %.17g%s" got
               want
               (if Float.equal got want then ""
                else " | replay: " ^ Scenario.to_run_command sc))
      in
      [
        Check.v ~label:(label "jobs")
          ~ok:(bm.Core.Metrics.jobs = sm.Core.Metrics.jobs)
          ~detail:
            (Printf.sprintf "measured %d jobs vs %d after x%g scaling"
               sm.Core.Metrics.jobs bm.Core.Metrics.jobs c);
        exact "response-time" sm.Core.Metrics.mean_response_time
          (c *. bm.Core.Metrics.mean_response_time);
        exact "response-ratio" sm.Core.Metrics.mean_response_ratio
          bm.Core.Metrics.mean_response_ratio;
        exact "fairness" sm.Core.Metrics.fairness bm.Core.Metrics.fairness;
        exact "median-ratio" scaled.Cluster.Simulation.median_response_ratio
          base.Cluster.Simulation.median_response_ratio;
        Check.v ~label:(label "per-computer")
          ~ok:
            (Array.for_all2
               (fun (b : Cluster.Simulation.per_computer)
                    (s : Cluster.Simulation.per_computer) ->
                 b.Cluster.Simulation.dispatched = s.Cluster.Simulation.dispatched
                 && b.Cluster.Simulation.completed = s.Cluster.Simulation.completed
                 && Float.equal b.Cluster.Simulation.utilization
                      s.Cluster.Simulation.utilization
                 && Float.equal b.Cluster.Simulation.mean_jobs
                      s.Cluster.Simulation.mean_jobs)
               base.Cluster.Simulation.per_computer
               scaled.Cluster.Simulation.per_computer)
          ~detail:
            "per-computer dispatch counts, utilisations and L bit-identical \
             under time scaling";
      ])
    [ ("orr", Cluster.Simulation.Ps); ("wran", Cluster.Simulation.Fcfs) ]

(* ------------------------------------------------------------------ *)
(* Speed-relabeling permutation invariance of Algorithm 1              *)

(* Permuting the speed vector must permute the optimized allocation the
   same way: Algorithm 1 may sort internally, but its answer is a
   property of the multiset of speeds.  Checked exactly (the algorithm
   computes over the sorted order, so the arithmetic per computer is
   identical on both sides). *)
let permutation () =
  let cases =
    [
      ([| 1.0; 1.5; 2.0; 12.0 |], 0.6);
      ([| 5.0; 1.0; 1.0; 1.0; 3.0 |], 0.3);
      ([| 2.0; 2.0; 2.0 |], 0.8);
      ([| 0.5; 4.0 |], 0.45);
    ]
  in
  let permutations = [ Array.of_list; fun l -> Array.of_list (List.rev l) ] in
  let rotate l = match l with [] -> [||] | x :: rest -> Array.of_list (rest @ [ x ]) in
  let permutations = permutations @ [ rotate ] in
  List.concat_map
    (fun (speeds, rho) ->
      let reference = Core.Allocation.optimized ~rho speeds in
      List.mapi
        (fun pi perm ->
          let order = perm (List.init (Array.length speeds) Fun.id) in
          let permuted_speeds = Array.map (fun i -> speeds.(i)) order in
          let permuted_alloc = Core.Allocation.optimized ~rho permuted_speeds in
          (* Undo the permutation on the result and compare slot-wise.
             Equal speeds are interchangeable, so compare the values. *)
          let unpermuted = Array.make (Array.length speeds) 0.0 in
          Array.iteri (fun k i -> unpermuted.(i) <- permuted_alloc.(k)) order;
          let ok = Array.for_all2 Float.equal reference unpermuted in
          Check.v
            ~label:
              (Printf.sprintf "permutation/%s-rho%g/#%d"
                 (Core.Speeds.to_string speeds) rho pi)
            ~ok
            ~detail:
              (if ok then "optimized allocation commutes with relabeling"
               else
                 Printf.sprintf "alloc %s vs unpermuted %s"
                   (String.concat ","
                      (List.map (Printf.sprintf "%.17g") (Array.to_list reference)))
                   (String.concat ","
                      (List.map (Printf.sprintf "%.17g") (Array.to_list unpermuted)))))
        permutations)
    cases

(* ------------------------------------------------------------------ *)
(* Stochastic monotonicity in rho                                      *)

(* More offered load can only hurt: under common random numbers (same
   seed, so the same job-size sequence) the replication-averaged mean
   response time must be non-decreasing along a rho grid.  CRN removes
   almost all of the noise, but the arrival *gaps* do change with rho,
   so adjacent grid points get the combined confidence slack. *)
let rho_monotone ~scale ~seed ~jobs =
  let grid = [ 0.3; 0.5; 0.7; 0.85 ] in
  let speeds = [| 1.0; 2.0 |] in
  let points =
    List.map
      (fun rho ->
        let sc = Scenario.v ~speeds ~rho ~policy:"orr" ~seed () in
        let rs = E.Runner.replicate ~seed ?jobs ~scale (Scenario.spec sc) in
        let samples =
          Array.of_list
            (List.map
               (fun (r : Cluster.Simulation.result) ->
                 r.Cluster.Simulation.metrics.Core.Metrics.mean_response_time)
               rs)
        in
        (rho, Statsched_stats.Confidence.of_samples ~confidence:0.999 samples, sc))
      grid
  in
  let rec pairs = function
    | (r1, c1, _) :: ((r2, c2, sc2) :: _ as rest) ->
      let module C = Statsched_stats.Confidence in
      let slack = c1.C.half_width +. c2.C.half_width in
      let ok = c2.C.mean >= c1.C.mean -. slack in
      Check.v
        ~label:(Printf.sprintf "rho-monotone/%g->%g" r1 r2)
        ~ok
        ~detail:
          (Printf.sprintf "T(%g) = %.4f, T(%g) = %.4f (slack %.4f)%s" r1
             c1.C.mean r2 c2.C.mean slack
             (if ok then "" else " | replay: " ^ Scenario.to_run_command sc2))
      :: pairs rest
    | _ -> []
  in
  pairs points

(* ------------------------------------------------------------------ *)
(* Local optimality of the optimized allocation                        *)

(* Algorithm 1 claims a minimiser: shifting a small slice of load
   between any pair of computers must not lower the objective F — and,
   simulated end to end with a custom random dispatcher, must not lower
   the measured mean response ratio beyond the paired-CRN noise. *)
let local_optimality ~scale ~seed ~jobs =
  let speeds = [| 1.0; 1.5; 2.0; 12.0 |] and rho = 0.6 in
  let alloc = Core.Allocation.optimized ~rho speeds in
  let lambda = rho *. Array.fold_left ( +. ) 0.0 speeds in
  let n = Array.length speeds in
  let delta = 0.02 in
  let perturbations =
    List.concat_map
      (fun i ->
        List.filter_map
          (fun j ->
            if i = j then None
            else begin
              (* Move delta of the workload from i to j, staying feasible
                 and unsaturated. *)
              let moved = Array.copy alloc in
              moved.(i) <- moved.(i) -. delta;
              moved.(j) <- moved.(j) +. delta;
              if moved.(i) < 0.0 || moved.(j) *. lambda >= speeds.(j) then None
              else Some (i, j, moved)
            end)
          (List.init n Fun.id))
      (List.init n Fun.id)
  in
  let f = Core.Allocation.objective ~rho ~speeds in
  let f_star = f ~alloc in
  let exact_checks =
    List.map
      (fun (i, j, moved) ->
        let fv = f ~alloc:moved in
        Check.v
          ~label:(Printf.sprintf "local-optimality/objective/%d->%d" i j)
          ~ok:(fv >= f_star -. 1e-9)
          ~detail:(Printf.sprintf "F(moved) = %.9f vs F* = %.9f" fv f_star))
      perturbations
  in
  (* End-to-end: simulate the optimized fractions and one perturbed
     variant under identical random numbers. *)
  let simulated_check =
    match perturbations with
    | [] -> []
    | (i, j, moved) :: _ ->
      let custom label fractions =
        Cluster.Scheduler.Static_custom
          {
            label;
            make =
              (fun ~rho:_ ~speeds:_ ~rng -> Core.Dispatch.random ~rng fractions);
          }
      in
      let workload =
        Cluster.Workload.poisson_exponential ~rho ~mean_size:1.0 ~speeds
      in
      let measure scheduler =
        E.Runner.replicate ~seed ?jobs ~scale
          (E.Runner.make_spec ~speeds ~workload ~scheduler ())
      in
      let ratios rs =
        Array.of_list
          (List.map
             (fun (r : Cluster.Simulation.result) ->
               r.Cluster.Simulation.metrics.Core.Metrics.mean_response_ratio)
             rs)
      in
      let star = ratios (measure (custom "alpha*" alloc)) in
      let pert = ratios (measure (custom "alpha-perturbed" moved)) in
      (* Paired differences: CRN gives both schedulers the same arrival
         and size streams in replication k. *)
      let diffs = Array.map2 (fun p s -> p -. s) pert star in
      let module C = Statsched_stats.Confidence in
      let ci = C.of_samples ~confidence:0.999 diffs in
      let ok = ci.C.mean >= -.ci.C.half_width in
      [
        Check.v
          ~label:(Printf.sprintf "local-optimality/simulated/%d->%d" i j)
          ~ok
          ~detail:
            (Printf.sprintf
               "paired slowdown difference (perturbed - optimized): %.5f ± %.5f"
               ci.C.mean ci.C.half_width);
      ]
  in
  exact_checks @ simulated_check

(* ------------------------------------------------------------------ *)
(* Random and round-robin dispatch share long-run fractions            *)

(* Algorithm 2's round-robin sequence and plain random dispatch are two
   implementations of the same allocation: both must land each
   computer's long-run dispatch fraction inside a z=4 binomial bound of
   the intended alpha (round-robin is far tighter; the binomial bound
   covers both). *)
let dispatch_fractions ~scale ~seed =
  let speeds = [| 1.0; 1.5; 2.0; 12.0 |] and rho = 0.6 in
  List.concat_map
    (fun policy ->
      let sc = Scenario.v ~speeds ~rho ~policy ~seed () in
      let result =
        Cluster.Simulation.run
          (Cluster.Simulation.default_config ~horizon:scale.E.Config.horizon
             ~warmup:scale.E.Config.warmup ~seed ~speeds
             ~workload:(Scenario.workload sc)
             ~scheduler:(Scenario.scheduler_of_name policy) ())
      in
      match result.Cluster.Simulation.intended_fractions with
      | None ->
        [
          Check.v
            ~label:(Printf.sprintf "dispatch-fractions/%s" policy)
            ~ok:false ~detail:"static policy reported no intended fractions";
        ]
      | Some intended ->
        let total =
          Array.fold_left
            (fun acc (pc : Cluster.Simulation.per_computer) ->
              acc + pc.Cluster.Simulation.dispatched)
            0 result.Cluster.Simulation.per_computer
        in
        let nf = float_of_int total in
        List.init (Array.length speeds) (fun i ->
            let p = intended.(i) in
            let actual = result.Cluster.Simulation.dispatch_fractions.(i) in
            let bound = (4.0 *. sqrt (p *. (1.0 -. p) /. nf)) +. (2.0 /. nf) in
            let ok = abs_float (actual -. p) <= bound in
            Check.v
              ~label:(Printf.sprintf "dispatch-fractions/%s/computer-%d" policy i)
              ~ok
              ~detail:
                (Printf.sprintf
                   "intended %.5f, dispatched %.5f over %d jobs (bound %.5f)%s"
                   p actual total bound
                   (if ok then ""
                    else " | replay: " ^ Scenario.to_run_command sc))))
    [ "oran"; "orr" ]

(* ------------------------------------------------------------------ *)
(* Dispatcher equivalences                                             *)

(* Pairs of schedulers that are different implementations of the same
   decision procedure, so their runs must agree bit-for-bit — whole
   trajectories, not averages:

   - JSQ(d) with d >= n probes every computer, which is exactly
     idealised Least-Load (zero-delay updates, random tie-breaks).
     Both paths draw exactly one tie-break from the ties stream when
     two or more computers share the minimum and none otherwise — a
     pure function of the tied set — so identical queue states force
     identical draws and the decision sequences coincide.
   - On a single-computer cluster every dispatcher sends every job to
     computer 0.  JIQ and static ORR consume different (independent)
     random streams to make that forced choice, so their arrival and
     size streams — and hence every output — must be bit-identical. *)
let dispatcher_equivalence ~scale ~seed =
  let horizon = scale.E.Config.horizon and warmup = scale.E.Config.warmup in
  let pair ~name ~sc scheduler_b =
    let run scheduler =
      Cluster.Simulation.run
        (Cluster.Simulation.default_config ~horizon ~warmup ~seed
           ~speeds:sc.Scenario.speeds ~workload:(Scenario.workload sc)
           ~scheduler ())
    in
    let ra = run (Scenario.scheduler_of_name ~d:sc.Scenario.d sc.Scenario.policy) in
    let rb = run scheduler_b in
    let am = ra.Cluster.Simulation.metrics
    and bm = rb.Cluster.Simulation.metrics in
    let label what = Printf.sprintf "dispatcher-equivalence/%s/%s" name what in
    let exact what got want =
      Check.v ~label:(label what) ~ok:(Float.equal got want)
        ~detail:
          (Printf.sprintf "%.17g vs %.17g%s" got want
             (if Float.equal got want then ""
              else " | replay: " ^ Scenario.to_run_command sc))
    in
    [
      Check.v ~label:(label "jobs")
        ~ok:(am.Core.Metrics.jobs = bm.Core.Metrics.jobs)
        ~detail:
          (Printf.sprintf "%d jobs vs %d" am.Core.Metrics.jobs
             bm.Core.Metrics.jobs);
      exact "response-time" am.Core.Metrics.mean_response_time
        bm.Core.Metrics.mean_response_time;
      exact "response-ratio" am.Core.Metrics.mean_response_ratio
        bm.Core.Metrics.mean_response_ratio;
      exact "fairness" am.Core.Metrics.fairness bm.Core.Metrics.fairness;
      exact "median-ratio" ra.Cluster.Simulation.median_response_ratio
        rb.Cluster.Simulation.median_response_ratio;
      Check.v ~label:(label "per-computer")
        ~ok:
          (Array.for_all2
             (fun (a : Cluster.Simulation.per_computer)
                  (b : Cluster.Simulation.per_computer) ->
               a.Cluster.Simulation.dispatched = b.Cluster.Simulation.dispatched
               && a.Cluster.Simulation.completed = b.Cluster.Simulation.completed
               && Float.equal a.Cluster.Simulation.utilization
                    b.Cluster.Simulation.utilization
               && Float.equal a.Cluster.Simulation.mean_jobs
                    b.Cluster.Simulation.mean_jobs)
             ra.Cluster.Simulation.per_computer
             rb.Cluster.Simulation.per_computer)
        ~detail:
          "per-computer dispatch counts, utilisations and L bit-identical \
           across equivalent dispatchers";
    ]
  in
  let speeds = [| 1.0; 1.0; 2.0; 3.0 |] in
  (* The JSQ(d=n) ≡ Least-Load relation is probe-mode-independent: with
     d >= n both the weighted and the uniform sampler degenerate to the
     tournament-tree full-information select, so each is pinned against
     idealised Least-Load separately. *)
  pair ~name:"jsq-full-vs-least-load"
    ~sc:
      (Scenario.v ~speeds ~rho:0.7 ~policy:"jsq-d" ~d:(Array.length speeds)
         ~seed ())
    Cluster.Scheduler.least_load_instant
  @ pair ~name:"jsq-full-uniform-vs-least-load"
      ~sc:
        (Scenario.v ~speeds ~rho:0.7 ~policy:"jsq-d-uniform"
           ~d:(Array.length speeds) ~seed ())
      Cluster.Scheduler.least_load_instant
  @ pair ~name:"jiq-single-vs-orr"
      ~sc:(Scenario.v ~speeds:[| 2.0 |] ~rho:0.7 ~policy:"jiq" ~seed ())
      (Scenario.scheduler_of_name "orr")

(* ------------------------------------------------------------------ *)
(* Driver ≡ run, daemon ≡ batch                                        *)

(* Exact whole-result comparison shared by the two driver differentials
   below: measured job count, every summary metric, and the per-computer
   dispatch/completion/utilisation/L vectors, all bit-for-bit. *)
let result_checks ~label ~context (ra : Cluster.Simulation.result)
    (rb : Cluster.Simulation.result) =
  let am = ra.Cluster.Simulation.metrics
  and bm = rb.Cluster.Simulation.metrics in
  let exact what got want =
    Check.v
      ~label:(Printf.sprintf "%s/%s" label what)
      ~ok:(Float.equal got want)
      ~detail:
        (Printf.sprintf "%.17g vs %.17g%s" got want
           (if Float.equal got want then "" else " | " ^ context))
  in
  [
    Check.v
      ~label:(Printf.sprintf "%s/jobs" label)
      ~ok:(am.Core.Metrics.jobs = bm.Core.Metrics.jobs)
      ~detail:
        (Printf.sprintf "%d jobs vs %d" am.Core.Metrics.jobs
           bm.Core.Metrics.jobs);
    exact "response-time" am.Core.Metrics.mean_response_time
      bm.Core.Metrics.mean_response_time;
    exact "response-ratio" am.Core.Metrics.mean_response_ratio
      bm.Core.Metrics.mean_response_ratio;
    exact "fairness" am.Core.Metrics.fairness bm.Core.Metrics.fairness;
    exact "median-ratio" ra.Cluster.Simulation.median_response_ratio
      rb.Cluster.Simulation.median_response_ratio;
    Check.v
      ~label:(Printf.sprintf "%s/per-computer" label)
      ~ok:
        (Array.for_all2
           (fun (a : Cluster.Simulation.per_computer)
                (b : Cluster.Simulation.per_computer) ->
             a.Cluster.Simulation.dispatched = b.Cluster.Simulation.dispatched
             && a.Cluster.Simulation.completed = b.Cluster.Simulation.completed
             && Float.equal a.Cluster.Simulation.utilization
                  b.Cluster.Simulation.utilization
             && Float.equal a.Cluster.Simulation.mean_jobs
                  b.Cluster.Simulation.mean_jobs)
           ra.Cluster.Simulation.per_computer rb.Cluster.Simulation.per_computer)
      ~detail:"per-computer dispatch counts, utilisations and L bit-identical";
  ]

(* The resumable driver claims [run cfg] is literally
   create → advance to the horizon → finalize.  Advancing in any number
   of monotone steps must partition the identical event sequence —
   [Engine.run ~until] executes nothing extra and draws nothing at a
   step boundary — so a chunked drive is bit-for-bit the one-shot run,
   whatever the chunking.  Least-Load covers the self-rescheduling
   periodic probe machinery crossing step boundaries. *)
let driver_chunked ~scale ~seed =
  let speeds = [| 1.0; 1.5; 2.0; 12.0 |] and rho = 0.6 in
  let horizon = scale.E.Config.horizon in
  List.concat_map
    (fun (policy, chunks) ->
      let sc = Scenario.v ~speeds ~rho ~policy ~seed () in
      let cfg =
        Cluster.Simulation.default_config ~horizon
          ~warmup:scale.E.Config.warmup ~seed ~speeds
          ~workload:(Scenario.workload sc)
          ~scheduler:(Scenario.scheduler_of_name policy) ()
      in
      let batch = Cluster.Simulation.run cfg in
      let d = Cluster.Simulation.Driver.create cfg in
      for k = 1 to chunks do
        Cluster.Simulation.Driver.advance d
          ~to_:(horizon *. float_of_int k /. float_of_int chunks)
      done;
      (* Land exactly on the horizon whatever rounding the stepping did
         (advance is monotone, so this is at worst a no-op). *)
      Cluster.Simulation.Driver.advance d ~to_:horizon;
      let stepped = Cluster.Simulation.Driver.finalize d in
      result_checks
        ~label:(Printf.sprintf "driver-chunked/%s-x%d" policy chunks)
        ~context:("replay: " ^ Scenario.to_run_command sc)
        batch stepped)
    [ ("orr", 7); ("least-load", 3); ("jsq-d", 64) ]

(* Recording a batch run's arrival trace and replaying it through an
   [`External] driver — the daemon's mode: advance the virtual clock to
   the arrival time, submit the size — must reproduce every dispatch
   decision, and hence the whole run, bit-for-bit.  The arrival and
   size streams go undrawn in the replay, but every stream is an
   independent substream whose draw sequence depends only on its own
   draw count, so the dispatch and tie-break streams see identical
   sequences against identical queue states. *)
let daemon_replay ~scale ~seed =
  let speeds = [| 1.0; 1.5; 2.0; 12.0 |] and rho = 0.6 in
  let horizon = scale.E.Config.horizon in
  List.concat_map
    (fun policy ->
      let sc = Scenario.v ~speeds ~rho ~policy ~seed () in
      let cfg =
        Cluster.Simulation.default_config ~horizon
          ~warmup:scale.E.Config.warmup ~seed ~speeds
          ~workload:(Scenario.workload sc)
          ~scheduler:(Scenario.scheduler_of_name policy) ()
      in
      let trace = ref [] in
      let batch =
        Cluster.Simulation.run ~hooks_retain_jobs:false
          ~on_dispatch:(fun j ->
            trace :=
              ( j.Statsched_queueing.Job.arrival,
                j.Statsched_queueing.Job.size,
                j.Statsched_queueing.Job.computer )
              :: !trace)
          cfg
      in
      let d = Cluster.Simulation.Driver.create ~arrivals:`External cfg in
      let mismatches = ref 0 and total = ref 0 in
      List.iter
        (fun (t, size, computer) ->
          Cluster.Simulation.Driver.advance d ~to_:t;
          incr total;
          if Cluster.Simulation.Driver.submit d ~size <> computer then
            incr mismatches)
        (List.rev !trace);
      Cluster.Simulation.Driver.advance d ~to_:horizon;
      let replayed = Cluster.Simulation.Driver.finalize d in
      Check.v
        ~label:(Printf.sprintf "daemon-replay/%s/decisions" policy)
        ~ok:(!mismatches = 0)
        ~detail:
          (Printf.sprintf "%d of %d replayed dispatch decisions diverge%s"
             !mismatches !total
             (if !mismatches = 0 then ""
              else " | replay: " ^ Scenario.to_run_command sc))
      :: result_checks
           ~label:(Printf.sprintf "daemon-replay/%s" policy)
           ~context:("replay: " ^ Scenario.to_run_command sc)
           batch replayed)
    [ "orr"; "jsq-d"; "jiq" ]

let run ?(scale = default_scale) ?(seed = 20260806L) ?jobs () =
  time_scale ~scale ~seed
  @ permutation ()
  @ rho_monotone ~scale ~seed ~jobs
  @ local_optimality ~scale ~seed ~jobs
  @ dispatch_fractions ~scale ~seed
  @ dispatcher_equivalence ~scale ~seed
  @ driver_chunked ~scale ~seed
  @ daemon_replay ~scale ~seed
