module Rng = Statsched_prng.Rng

let[@inline] [@schedsim.hot] sample ~rate g =
  (* Inverse transform; 1 - U avoids log 0 since U < 1. *)
  -.log (1.0 -. Rng.float g) /. rate

let create ~rate =
  if rate <= 0.0 then invalid_arg "Exponential.create: rate <= 0";
  Distribution.make
    ~name:(Printf.sprintf "Exp(%g)" rate)
    ~mean:(1.0 /. rate)
    ~variance:(1.0 /. (rate *. rate))
    (fun g -> sample ~rate g)

let of_mean m =
  if m <= 0.0 then invalid_arg "Exponential.of_mean: mean <= 0";
  create ~rate:(1.0 /. m)
