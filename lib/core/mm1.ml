let check_pos name v = if v <= 0.0 then invalid_arg ("Mm1: non-positive " ^ name)

let server_mean_response_time ~mu ~lambda ~speed ~alpha =
  check_pos "mu" mu;
  let denom = (speed *. mu) -. (alpha *. lambda) in
  if denom <= 0.0 then infinity else 1.0 /. denom

let server_mean_response_ratio ~mu ~lambda ~speed ~alpha =
  mu *. server_mean_response_time ~mu ~lambda ~speed ~alpha

let server_utilization ~mu ~lambda ~speed ~alpha = alpha *. lambda /. (speed *. mu)

let mean_response_time ~mu ~lambda ~speeds ~alloc =
  Speeds.validate speeds;
  if Array.length alloc <> Array.length speeds then
    invalid_arg "Mm1.mean_response_time: length mismatch";
  let t = ref 0.0 in
  Array.iteri
    (fun i si ->
      if alloc.(i) > 0.0 then
        t := !t +. (alloc.(i) *. server_mean_response_time ~mu ~lambda ~speed:si ~alpha:alloc.(i)))
    speeds;
  !t

let mean_response_ratio ~mu ~lambda ~speeds ~alloc =
  mu *. mean_response_time ~mu ~lambda ~speeds ~alloc

let system_utilization ~mu ~lambda ~speeds =
  check_pos "mu" mu;
  lambda /. (mu *. Speeds.total speeds)

let lambda_of_utilization ~mu ~rho ~speeds =
  check_pos "mu" mu;
  check_pos "rho" rho;
  rho *. mu *. Speeds.total speeds

let theorem1_alloc ~mu ~lambda ~speeds =
  Speeds.validate speeds;
  check_pos "mu" mu;
  check_pos "lambda" lambda;
  let sum_smu = mu *. Speeds.total speeds in
  let sum_sqrt = Array.fold_left (fun acc s -> acc +. sqrt (s *. mu)) 0.0 speeds in
  let scale = (sum_smu -. lambda) /. sum_sqrt in
  Array.map (fun si -> ((si *. mu) -. (sqrt (si *. mu) *. scale)) /. lambda) speeds

let predicted ~mu ~rho ~speeds ~alloc metric =
  let lambda = lambda_of_utilization ~mu ~rho ~speeds in
  match metric with
  | `Mean_response_time -> mean_response_time ~mu ~lambda ~speeds ~alloc
  | `Mean_response_ratio -> mean_response_ratio ~mu ~lambda ~speeds ~alloc
