(** Special functions needed for analytic distribution moments.

    A single log-space Lanczos implementation serves every caller
    ({!Weibull}'s Γ-moments today); computing [ln Γ] first and
    exponentiating once avoids the premature overflow of the product
    form, which loses Γ(z) to [infinity] from [z ≈ 141] although Γ is
    representable up to [z ≈ 171.62]. *)

val log_gamma : float -> float
(** [log_gamma z] is [ln Γ(z)] for [z > 0], accurate to ~1e-13 relative;
    [nan] for [z <= 0] or [nan] (the real-axis poles and the
    negative-axis sign flips are outside this module's domain). *)

val gamma : float -> float
(** [exp (log_gamma z)]: Γ(z) for [z > 0], [infinity] once Γ(z) exceeds
    the double range ([z > 171.62…]), [nan] for [z <= 0]. *)
