open Test_util
module Core = Statsched_core
module Cluster = Statsched_cluster
module Simulation = Cluster.Simulation
module Driver = Simulation.Driver
module Daemon = Cluster.Daemon
module Scheduler = Cluster.Scheduler
module Http = Statsched_obs.Http

let scheduler name =
  match Daemon.scheduler_of_name name with
  | Ok k -> k
  | Error msg -> Alcotest.fail msg

let config ?(policy = "orr") ?(horizon = 2000.0) ?(warmup = 500.0)
    ?(seed = 11L) () =
  let speeds = [| 1.0; 1.5; 2.0; 12.0 |] in
  let rho = 0.6 in
  let workload = Cluster.Workload.paper_default ~rho ~speeds in
  Simulation.default_config ~horizon ~warmup ~seed ~speeds ~workload
    ~scheduler:(scheduler policy) ()

(* ------------------------------------------------------------------ *)
(* Driver ≡ run                                                        *)

let check_same_result what (a : Simulation.result) (b : Simulation.result) =
  let am = a.Simulation.metrics and bm = b.Simulation.metrics in
  Alcotest.(check int) (what ^ ": jobs") am.Core.Metrics.jobs bm.Core.Metrics.jobs;
  let exact label x y =
    Alcotest.(check bool)
      (Printf.sprintf "%s: %s %.17g vs %.17g" what label x y)
      true (Float.equal x y)
  in
  exact "mean response time" am.Core.Metrics.mean_response_time
    bm.Core.Metrics.mean_response_time;
  exact "mean response ratio" am.Core.Metrics.mean_response_ratio
    bm.Core.Metrics.mean_response_ratio;
  exact "fairness" am.Core.Metrics.fairness bm.Core.Metrics.fairness;
  exact "median ratio" a.Simulation.median_response_ratio
    b.Simulation.median_response_ratio;
  Array.iteri
    (fun i (pa : Simulation.per_computer) ->
      let pb = b.Simulation.per_computer.(i) in
      Alcotest.(check int)
        (Printf.sprintf "%s: dispatched[%d]" what i)
        pa.Simulation.dispatched pb.Simulation.dispatched;
      Alcotest.(check int)
        (Printf.sprintf "%s: completed[%d]" what i)
        pa.Simulation.completed pb.Simulation.completed;
      exact (Printf.sprintf "utilization[%d]" i) pa.Simulation.utilization
        pb.Simulation.utilization;
      exact (Printf.sprintf "mean jobs[%d]" i) pa.Simulation.mean_jobs
        pb.Simulation.mean_jobs)
    a.Simulation.per_computer

(* A one-shot [run] and a driver advanced in many small steps must be
   bit-identical: [Engine.run ~until] partitions the same event sequence
   whatever the step boundaries. *)
let driver_matches_run () =
  List.iter
    (fun policy ->
      let cfg = config ~policy () in
      let batch = Simulation.run cfg in
      let d = Driver.create cfg in
      Alcotest.(check (float 0.0)) "driver starts at time 0" 0.0 (Driver.now d);
      Alcotest.(check int) "no arrivals yet" 0 (Driver.arrivals d);
      let horizon = cfg.Simulation.horizon in
      let chunks = 13 in
      for k = 1 to chunks do
        Driver.advance d ~to_:(horizon *. float_of_int k /. float_of_int chunks)
      done;
      Driver.advance d ~to_:horizon;
      (* Monotone: stepping backwards is a no-op, not an error. *)
      Driver.advance d ~to_:(horizon /. 2.0);
      Alcotest.(check (float 0.0)) "clock pinned at horizon" horizon (Driver.now d);
      let stepped = Driver.finalize d in
      check_same_result (policy ^ " chunked") batch stepped)
    [ "orr"; "jsq-d"; "jiq" ]

(* Replaying a batch run's recorded arrival trace through an [`External]
   driver — the daemon's mode — reproduces every dispatch decision and
   the whole result bit-for-bit. *)
let external_replay_matches_batch () =
  let cfg = config ~policy:"jsq-d" () in
  let trace = ref [] in
  let batch =
    Simulation.run ~hooks_retain_jobs:false
      ~on_dispatch:(fun j ->
        trace :=
          ( j.Statsched_queueing.Job.arrival,
            j.Statsched_queueing.Job.size,
            j.Statsched_queueing.Job.computer )
          :: !trace)
      cfg
  in
  let d = Driver.create ~arrivals:`External cfg in
  let mismatches = ref 0 in
  List.iter
    (fun (t, size, computer) ->
      Driver.advance d ~to_:t;
      if Driver.submit d ~size <> computer then incr mismatches)
    (List.rev !trace);
  Alcotest.(check int) "every replayed dispatch decision identical" 0 !mismatches;
  Driver.advance d ~to_:cfg.Simulation.horizon;
  let replayed = Driver.finalize d in
  check_same_result "external replay" batch replayed

let driver_lifecycle_errors () =
  let cfg = config ~warmup:0.0 () in
  let d = Driver.create ~arrivals:`External cfg in
  Alcotest.check_raises "NaN advance rejected"
    (Invalid_argument "Simulation.Driver.advance: NaN time") (fun () ->
      Driver.advance d ~to_:Float.nan);
  Alcotest.check_raises "non-positive size rejected"
    (Invalid_argument "Simulation.Driver.submit: size <= 0") (fun () ->
      ignore (Driver.submit d ~size:0.0));
  ignore (Driver.submit d ~size:1.0);
  Alcotest.(check int) "one job in system" 1 (Driver.in_system d);
  Driver.drain d;
  Alcotest.(check int) "drained empty" 0 (Driver.in_system d);
  Alcotest.(check bool) "drain moved the clock" true (Driver.now d > 0.0);
  ignore (Driver.finalize d);
  Alcotest.check_raises "dead after finalize: advance"
    (Invalid_argument "Simulation.Driver.advance: already finalized") (fun () ->
      Driver.advance d ~to_:1.0);
  Alcotest.check_raises "dead after finalize: submit"
    (Invalid_argument "Simulation.Driver.submit: already finalized") (fun () ->
      ignore (Driver.submit d ~size:1.0))

(* ------------------------------------------------------------------ *)
(* Daemon endpoints (no sockets: handle_request + injected clock)      *)

let req ?(body = "") meth path = { Http.meth; path; body }

let daemon_endpoints () =
  let now = ref 0.0 in
  let cfg = config ~policy:"jsq-d" ~warmup:0.0 ~horizon:1.0e9 () in
  let daemon =
    Daemon.create ~clock:(fun () -> !now) ~backlog_limit:3 cfg
  in
  let h r = Daemon.handle_request daemon r in
  let status r = r.Http.status in
  (* Liveness, metrics, state. *)
  let r = h (req "GET" "/healthz") in
  Alcotest.(check int) "healthz 200" 200 (status r);
  Alcotest.(check string) "healthz body" "ok\n" r.Http.body;
  let r = h (req "GET" "/metrics") in
  Alcotest.(check int) "metrics 200" 200 (status r);
  Alcotest.(check string) "prometheus content type"
    "text/plain; version=0.0.4; charset=utf-8" r.Http.content_type;
  Alcotest.(check bool) "metrics exposition non-empty" true
    (String.length r.Http.body > 0);
  let r = h (req "GET" "/state") in
  Alcotest.(check int) "state 200" 200 (status r);
  Alcotest.(check bool) "state is a JSON object" true (r.Http.body.[0] = '{');
  (* Policy read and hot swap. *)
  let r = h (req "GET" "/policy") in
  Alcotest.(check string) "initial policy"
    (Scheduler.name (scheduler "jsq-d") ^ "\n")
    r.Http.body;
  let r = h (req ~body:"bogus" "PUT" "/policy") in
  Alcotest.(check int) "unknown policy 400" 400 (status r);
  let r = h (req ~body:"jsq-d:0" "PUT" "/policy") in
  Alcotest.(check int) "bad probe count 400" 400 (status r);
  let r = h (req ~body:"jiq" "PUT" "/policy") in
  Alcotest.(check int) "policy swap 200" 200 (status r);
  Alcotest.(check string) "swap reports new policy"
    (Scheduler.name (scheduler "jiq") ^ "\n")
    r.Http.body;
  (* Routing errors. *)
  Alcotest.(check int) "unknown path 404" 404 (status (h (req "GET" "/nope")));
  Alcotest.(check int) "wrong method 405" 405 (status (h (req "GET" "/jobs")));
  Alcotest.(check int) "wrong method on state 405" 405
    (status (h (req "POST" "/state")));
  (* Admission: parse errors, then the backlog limit. *)
  Alcotest.(check int) "garbage body 400" 400
    (status (h (req ~body:"three" "POST" "/jobs")));
  Alcotest.(check int) "negative size 400" 400
    (status (h (req ~body:"-2" "POST" "/jobs")));
  Alcotest.(check int) "empty body 400" 400 (status (h (req "POST" "/jobs")));
  let r = h (req ~body:" 2.5 \n" "POST" "/jobs") in
  Alcotest.(check int) "first job accepted 202" 202 (status r);
  Alcotest.(check bool) "submit response carries the id" true
    (String.length r.Http.body >= 8 && String.sub r.Http.body 0 8 = "{\"id\":1,");
  Alcotest.(check int) "second job accepted" 202
    (status (h (req ~body:"1.0" "POST" "/jobs")));
  Alcotest.(check int) "third job accepted" 202
    (status (h (req ~body:"1.0" "POST" "/jobs")));
  Alcotest.(check int) "backlog full 429" 429
    (status (h (req ~body:"1.0" "POST" "/jobs")));
  Alcotest.(check int) "three jobs in system" 3 (Daemon.backlog daemon);
  (* Virtual time passes; the backlog drains and admission reopens. *)
  now := 1.0e4;
  Alcotest.(check int) "state read advances the clock" 200
    (status (h (req "GET" "/state")));
  Alcotest.(check int) "backlog drained by virtual time" 0
    (Daemon.backlog daemon);
  Alcotest.(check int) "admission reopens" 202
    (status (h (req ~body:"0.5" "POST" "/jobs")));
  (* Drain: idempotent, then everything mutating is refused. *)
  now := 2.0e4;
  let r = h (req "POST" "/drain") in
  Alcotest.(check int) "drain 200" 200 (status r);
  Alcotest.(check bool) "drain response says drained" true
    (String.length r.Http.body >= 16
    && String.sub r.Http.body 0 16 = "{\"drained\":true,");
  Alcotest.(check bool) "daemon is drained" true (Daemon.is_drained daemon);
  Alcotest.(check int) "drain idempotent" 200 (status (h (req "POST" "/drain")));
  Alcotest.(check int) "submit after drain 503" 503
    (status (h (req ~body:"1.0" "POST" "/jobs")));
  Alcotest.(check int) "swap after drain 503" 503
    (status (h (req ~body:"orr" "PUT" "/policy")));
  (match Daemon.result daemon with
  | None -> Alcotest.fail "drained daemon has no result"
  | Some r ->
    Alcotest.(check int) "all four accepted jobs measured" 4
      r.Simulation.metrics.Core.Metrics.jobs);
  (* With a finalized outcome write_journal reports success (the write
     itself is a no-op here — no journal was configured). *)
  let tmp = Filename.temp_file "schedsimd" ".journal" in
  Alcotest.(check bool) "write_journal after drain" true
    (Daemon.write_journal daemon tmp);
  Sys.remove tmp

let daemon_validation () =
  Alcotest.check_raises "time_scale <= 0"
    (Invalid_argument "Daemon.create: time_scale <= 0") (fun () ->
      ignore (Daemon.create ~time_scale:0.0 (config ())));
  Alcotest.check_raises "backlog_limit < 1"
    (Invalid_argument "Daemon.create: backlog_limit < 1") (fun () ->
      ignore (Daemon.create ~backlog_limit:0 (config ())));
  let d = Daemon.create ~clock:(fun () -> 0.0) (config ()) in
  Alcotest.(check bool) "no journal before drain" false
    (Daemon.write_journal d "/nonexistent/never-touched");
  (match Daemon.scheduler_of_name "jsq-d:4" with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  (match Daemon.scheduler_of_name "jsq-d:x" with
  | Ok _ -> Alcotest.fail "bad probe suffix accepted"
  | Error _ -> ());
  match Daemon.scheduler_of_name "fifo" with
  | Ok _ -> Alcotest.fail "unknown policy accepted"
  | Error msg ->
    Alcotest.(check bool) "error lists the vocabulary" true
      (String.length msg > 0)

(* ------------------------------------------------------------------ *)
(* The daemon dispatch path stays allocation-free                      *)

(* Steady-state [Driver.submit] must not churn the heap per job: job
   records are pool-recycled, the engine's event queue reuses its
   buffers, and the JSQ(d) decision path is integer-only.  What remains
   is calling-convention float boxing across the non-inlined call
   boundaries (advance/now/submit/Tally each box a handful of floats
   without flambda) — a fixed few dozen words per job, measured at ~60.
   The bound of 80 is far under the batch-path acceptance bound of 120
   (test_journal) and tight enough that reintroducing a per-job record,
   closure or list cell on the dispatch path fails it. *)
let daemon_submit_zero_alloc () =
  let cfg = config ~policy:"jsq-d" ~warmup:0.0 ~horizon:1.0e12 () in
  (* The suite runs sanitized; the invariant checkers allocate per
     event by design, so this measurement turns them off (bit-identity
     of sanitized runs is pinned separately in test_sanitize.ml). *)
  let d = Driver.create ~sanitize:false ~arrivals:`External cfg in
  let jobs = 1000 in
  let t = [| 0.0 |] in
  let cycle () =
    for _ = 1 to jobs do
      t.(0) <- t.(0) +. 0.25;
      Driver.advance d ~to_:t.(0);
      ignore (Driver.submit d ~size:1.0)
    done
  in
  (* Warm the job pool, event queue and per-policy scratch. *)
  cycle ();
  cycle ();
  let before = Gc.minor_words () in
  cycle ();
  let delta = Gc.minor_words () -. before in
  let per_job = delta /. float_of_int jobs in
  Alcotest.(check bool)
    (Printf.sprintf "daemon dispatch allocated %.0f minor words over %d jobs \
                     (%.2f/job)" delta jobs per_job)
    true (per_job <= 80.0);
  Driver.drain d;
  ignore (Driver.finalize d)

let suite =
  [
    test "driver: chunked advance bit-identical to one-shot run"
      driver_matches_run;
    test "driver: external replay reproduces batch decisions"
      external_replay_matches_batch;
    test "driver: lifecycle validation and post-finalize death"
      driver_lifecycle_errors;
    test "daemon: every endpoint and error path" daemon_endpoints;
    test "daemon: constructor and policy-name validation" daemon_validation;
    test "daemon: dispatch path allocation bound" daemon_submit_zero_alloc;
  ]
