type layout = Linear | Log

type t = {
  layout : layout;
  lo : float;
  hi : float;
  bins : int array;
  mutable under : int;
  mutable over : int;
  mutable total : int;
}

let create_linear ~lo ~hi ~bins =
  if lo >= hi then invalid_arg "Histogram.create_linear: lo >= hi";
  if bins <= 0 then invalid_arg "Histogram.create_linear: bins <= 0";
  { layout = Linear; lo; hi; bins = Array.make bins 0; under = 0; over = 0; total = 0 }

let create_log ~lo ~hi ~bins =
  if lo <= 0.0 then invalid_arg "Histogram.create_log: lo <= 0";
  if lo >= hi then invalid_arg "Histogram.create_log: lo >= hi";
  if bins <= 0 then invalid_arg "Histogram.create_log: bins <= 0";
  { layout = Log; lo; hi; bins = Array.make bins 0; under = 0; over = 0; total = 0 }

let bin_count h = Array.length h.bins

let index_of h x =
  let n = float_of_int (bin_count h) in
  match h.layout with
  | Linear -> int_of_float (n *. (x -. h.lo) /. (h.hi -. h.lo))
  | Log -> int_of_float (n *. log (x /. h.lo) /. log (h.hi /. h.lo))

let add h x =
  h.total <- h.total + 1;
  if x < h.lo then h.under <- h.under + 1
  else if x >= h.hi then h.over <- h.over + 1
  else begin
    let i = min (bin_count h - 1) (max 0 (index_of h x)) in
    h.bins.(i) <- h.bins.(i) + 1
  end

let count h = h.total
let underflow h = h.under
let overflow h = h.over

let bin_range h i =
  let n = float_of_int (bin_count h) in
  let fi = float_of_int i in
  match h.layout with
  | Linear ->
    let w = (h.hi -. h.lo) /. n in
    (h.lo +. (fi *. w), h.lo +. ((fi +. 1.0) *. w))
  | Log ->
    let r = (h.hi /. h.lo) ** (1.0 /. n) in
    (h.lo *. (r ** fi), h.lo *. (r ** (fi +. 1.0)))

let bin_value h i = h.bins.(i)

let quantile h q =
  if not (0.0 < q && q < 1.0) then invalid_arg "Histogram.quantile: q outside (0,1)";
  if h.total = 0 then nan
  else begin
    let target = q *. float_of_int h.total in
    if target <= float_of_int h.under then h.lo
    else begin
      let acc = ref (float_of_int h.under) in
      let result = ref h.hi in
      (try
         for i = 0 to bin_count h - 1 do
           let c = float_of_int h.bins.(i) in
           if !acc +. c >= target && c > 0.0 then begin
             let lo, hi = bin_range h i in
             let frac = (target -. !acc) /. c in
             result := lo +. (frac *. (hi -. lo));
             raise Exit
           end;
           acc := !acc +. c
         done
       with Exit -> ());
      !result
    end
  end

let to_list h = List.init (bin_count h) (fun i -> (bin_range h i, h.bins.(i)))
