(** Critical values of Student's t distribution.

    Two-sided critical values t{_ν,1−γ/2} for confidence intervals over a
    small number of simulation replications (the paper uses 10 independent
    runs per data point). *)

val critical : df:int -> confidence:float -> float
(** [critical ~df ~confidence] is the two-sided critical value for [df]
    degrees of freedom at the given confidence level.  Supported levels:
    0.90, 0.95, 0.99; other levels are interpolated between the neighbouring
    table columns and clamped to \[0.90, 0.99\].  [df >= 1]; values above
    120 use the normal limit.

    @raise Invalid_argument if [df < 1] or [confidence] outside (0, 1). *)
