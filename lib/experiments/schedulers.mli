(** The scheduler roster used across experiments (Section 4.2). *)

val static_four : (string * Statsched_cluster.Scheduler.kind) list
(** WRAN, ORAN, WRR, ORR — the Table 2 matrix. *)

val with_least_load : (string * Statsched_cluster.Scheduler.kind) list
(** The four static policies plus the Dynamic Least-Load yardstick. *)

val dispatch_ablations : (string * Statsched_cluster.Scheduler.kind) list
(** ORR against its dispatching ablations: no-guard round-robin,
    index-tie round-robin and smooth WRR, all over the optimized
    allocation. *)

val allocation_ablations : (string * Statsched_cluster.Scheduler.kind) list
(** ORR against the naive-clamp allocation ablation (Theorem 2 skipped)
    and WRR, all with round-robin dispatching. *)
