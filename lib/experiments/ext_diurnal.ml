module Cluster = Statsched_cluster
module Core = Statsched_core

let default_amplitudes = [ 0.0; 0.1; 0.2; 0.3 ]

type t = (float * (string * Runner.point) list) list

let run ?(scale = Config.default_scale) ?seed ?jobs ?(speeds = Core.Speeds.table3)
    ?(rho = Config.base_utilization) ?(day_length = 86_400.0)
    ?(amplitudes = default_amplitudes) () =
  List.map
    (fun amplitude ->
      let workload = Cluster.Workload.diurnal ~rho ~amplitude ~day_length ~speeds in
      (* Track roughly a tenth of a day per estimation window. *)
      let window_period = day_length /. 10.0 in
      let schedulers =
        [
          ("ORR@mean", Cluster.Scheduler.Static Core.Policy.orr);
          ("AdaptORR", Cluster.Scheduler.adaptive_orr ());
          ( "AdaptORR/win",
            Cluster.Scheduler.adaptive_orr ~period:window_period ~windowed:true () );
          ("WRR", Cluster.Scheduler.Static Core.Policy.wrr);
          ("LeastLoad", Cluster.Scheduler.least_load_paper);
        ]
      in
      (amplitude, Sweep.over_schedulers ?seed ?jobs ~scale ~schedulers ~speeds ~workload ()))
    amplitudes

let to_report t =
  Report.render_sweep
    (Sweep.sweep_of_rows
       ~title:"Extension: diurnal load swings around the mean utilisation"
       ~xlabel:"amplitude" ~metric:`Ratio t)
