module Metrics = Statsched_core.Metrics

type t = {
  expected : float array;
  start : float;
  interval : float;
  counts : int array array;
}

let create ~expected ~start ~interval ~n_intervals =
  if interval <= 0.0 then invalid_arg "Interval_stats.create: interval <= 0";
  if n_intervals <= 0 then invalid_arg "Interval_stats.create: n_intervals <= 0";
  {
    expected = Array.copy expected;
    start;
    interval;
    counts = Array.init n_intervals (fun _ -> Array.make (Array.length expected) 0);
  }

let record t ~time ~computer =
  let offset = time -. t.start in
  if offset >= 0.0 then begin
    let k = int_of_float (offset /. t.interval) in
    if k < Array.length t.counts then
      t.counts.(k).(computer) <- t.counts.(k).(computer) + 1
  end

let deviations t =
  Array.map (fun counts -> Metrics.deviation ~expected:t.expected ~counts) t.counts

let counts t = Array.map Array.copy t.counts
