type t = {
  mutable times : float array;
  mutable queues : int array array;  (* per sample *)
  mutable len : int;
}

let create () = { times = [||]; queues = [||]; len = 0 }

let push t time qs =
  let cap = Array.length t.times in
  if t.len = cap then begin
    let ncap = max 256 (2 * cap) in
    let ntimes = Array.make ncap 0.0 in
    let nqueues = Array.make ncap [||] in
    Array.blit t.times 0 ntimes 0 t.len;
    Array.blit t.queues 0 nqueues 0 t.len;
    t.times <- ntimes;
    t.queues <- nqueues
  end;
  t.times.(t.len) <- time;
  t.queues.(t.len) <- qs;
  t.len <- t.len + 1

let on_tick t ~time ~queues = push t time (Array.copy queues)

let sample_count t = t.len

let times t = Array.sub t.times 0 t.len

let check_nonempty t =
  if t.len = 0 then invalid_arg "Probe: no samples recorded"

let series t i =
  check_nonempty t;
  if i < 0 || i >= Array.length t.queues.(0) then
    invalid_arg "Probe.series: computer index out of range";
  Array.init t.len (fun k -> t.queues.(k).(i))

let total_series t =
  check_nonempty t;
  Array.init t.len (fun k -> Array.fold_left ( + ) 0 t.queues.(k))

let peak t =
  let worst = ref 0 in
  for k = 0 to t.len - 1 do
    Array.iter (fun q -> if q > !worst then worst := q) t.queues.(k)
  done;
  !worst

let mean_queue t i =
  let s = series t i in
  float_of_int (Array.fold_left ( + ) 0 s) /. float_of_int (Array.length s)

let write_csv t path =
  check_nonempty t;
  let n = Array.length t.queues.(0) in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "time";
      for i = 0 to n - 1 do
        Printf.fprintf oc ",c%d" i
      done;
      output_char oc '\n';
      for k = 0 to t.len - 1 do
        Printf.fprintf oc "%.6f" t.times.(k);
        Array.iter (fun q -> Printf.fprintf oc ",%d" q) t.queues.(k);
        output_char oc '\n'
      done)
