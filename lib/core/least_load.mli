(** Dynamic Least-Load scheduling state (Sections 2.2 and 4.2).

    The dynamic yardstick against which the static policies are measured.
    The central scheduler tracks a load index per computer — its run-queue
    length as last known — and sends each arrival to the computer with the
    least {e normalised} load [(q_i + 1) / s_i].  The index is incremented
    immediately when a job is sent (no rescheduling, so the scheduler
    knows); a departure is only reflected after the executing computer
    detects it (U(0,1) s polling) and its update message crosses the
    network (exponential delay, mean 0.05 s) — that wiring lives in the
    cluster model; this module is the scheduler-side state machine. *)

type t

val create : float array -> t
(** [create speeds] starts with all load indices at 0.

    @raise Invalid_argument on an invalid speed vector. *)

val select : ?rng:Statsched_prng.Rng.t -> t -> int
(** Index of the computer with minimal [(q_i + 1)/s_i] among those
    currently {!is_available}.  Ties break uniformly at random when [rng]
    is given, otherwise toward the smallest index.  If {e every} computer
    is marked unavailable all of them are considered (the scheduler must
    send the job somewhere).  Does {e not} modify the state.

    O(log n) regardless of how many computers tie, via a tournament-tree
    index that carries per-subtree tie counts.  Draw order is part of
    the contract: exactly one [Rng.int ties] draw when two or more
    computers tie at the minimum, none when the minimum is unique — a
    pure function of the tied-minimum set, which is what makes a sampled
    probe with [d >= n] bit-identical to this function. *)

val set_available : t -> int -> bool -> unit
(** Mark computer [i] up ([true]) or down ([false]) for selection.
    Least-Load handles failures naturally: a crashed computer simply
    stops being a candidate, no reallocation is needed.  All computers
    start available. *)

val is_available : t -> int -> bool

val select_sampled : rng:Statsched_prng.Rng.t -> t -> d:int -> int
(** Power-of-d-choices (Mitzenmacher): probe [d] distinct {e available}
    computers chosen uniformly at random and pick the one with minimal
    normalised load.
    With [d >= n] this degenerates to {!select}.  A cheaper dynamic
    baseline than full Least-Load — the scheduler only needs [d] load
    values per decision — included to price how much of Least-Load's
    advantage survives partial information.

    O(d) and allocation-free: the probe runs a partial Fisher-Yates over
    a persistent index pool and un-swaps the prefix afterwards, so the
    draw sequence matches a shuffle of a fresh pool without creating
    one.

    @raise Invalid_argument if [d < 1]. *)

val select_weighted : rng:Statsched_prng.Rng.t -> t -> d:int -> int
(** Speed-aware power-of-d-choices: probe [d] distinct available
    computers drawn from Walker's alias table over the speed vector
    (probability proportional to speed) and pick the one with minimal
    normalised load, breaking exact load ties toward the faster
    computer.  On a heterogeneous cluster this is the fix for uniform
    probing's blind spot: with a few fast and many slow computers a
    uniform [d]-sample rarely contains a fast one, so JSQ(d) piles work
    on the slow majority however idle the fast minority is.

    With [d >= n] this degenerates to {!select}, exactly like
    {!select_sampled} — the [JSQ(d=n) ≡ Least-Load] equivalence is
    probe-mode-independent.  Distinctness is enforced by generation
    stamps with a bounded rejection loop ([16 d] draws); if rejection
    cannot place all [d] probes (tiny available fraction, extreme
    skew), the remainder fall back to the uniform Fisher-Yates sampler,
    so the decision is O(d) and allocation-free in every case.

    Consumes a variable number of RNG draws (two per alias try, one per
    fallback fill), unlike {!select_sampled}'s fixed [d] — replayable,
    but not draw-count-compatible with the uniform sampler, which is
    why the uniform path stays reachable for old replays.

    @raise Invalid_argument if [d < 1]. *)

val job_sent : t -> int -> unit
(** Record the dispatch of a job to computer [i]: [q_i <- q_i + 1]. *)

val departure_recorded : t -> int -> unit
(** Apply a (possibly delayed) departure notification: [q_i <- q_i − 1].
    Clamped at 0 so a late duplicate cannot drive the index negative. *)

val load_index : t -> int -> int
(** Current believed run-queue length of computer [i]. *)

val set_load_index : t -> int -> int -> unit
(** [set_load_index t i q] overwrites the believed run-queue length of
    computer [i] — used by the stale-information scheduler variant that
    refreshes its view from periodic polls instead of per-event updates.

    @raise Invalid_argument if [q < 0]. *)

val normalized_load : t -> int -> float
(** [(q_i + 1) /. s_i]. *)

val reset : t -> unit
(** All indices back to 0. *)
