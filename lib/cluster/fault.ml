module Dist = Statsched_dist
module Distribution = Dist.Distribution

type on_failure = Drop | Requeue | Resume

type reaction = Oblivious | Blacklist

type process = {
  computers : int list option;
  uptime : Distribution.t;
  downtime : Distribution.t;
  degrade : float;
}

type plan = {
  processes : process list;
  on_failure : on_failure;
  reaction : reaction;
}

type summary = {
  availability : float;
  failures : int;
  lost_jobs : int;
  downtime : float array;
}

let process ?computers ?(degrade = 0.0) ~uptime ~downtime () =
  if not (0.0 <= degrade && degrade < 1.0) then
    invalid_arg "Fault.process: degrade outside [0,1)";
  if Distribution.mean uptime <= 0.0 then
    invalid_arg "Fault.process: uptime mean <= 0";
  if Distribution.mean downtime <= 0.0 then
    invalid_arg "Fault.process: downtime mean <= 0";
  (match computers with
  | Some [] -> invalid_arg "Fault.process: empty computer list"
  | Some l ->
    List.iter (fun i -> if i < 0 then invalid_arg "Fault.process: negative computer index") l
  | None -> ());
  { computers; uptime; downtime; degrade }

let crashes ?computers ~mtbf ~mttr () =
  if mtbf <= 0.0 then invalid_arg "Fault.crashes: mtbf <= 0";
  if mttr <= 0.0 then invalid_arg "Fault.crashes: mttr <= 0";
  process ?computers
    ~uptime:(Dist.Exponential.of_mean mtbf)
    ~downtime:(Dist.Exponential.of_mean mttr)
    ()

let slowdowns ?computers ~mtbf ~mttr ~factor () =
  if mtbf <= 0.0 then invalid_arg "Fault.slowdowns: mtbf <= 0";
  if mttr <= 0.0 then invalid_arg "Fault.slowdowns: mttr <= 0";
  process ?computers ~degrade:factor
    ~uptime:(Dist.Exponential.of_mean mtbf)
    ~downtime:(Dist.Exponential.of_mean mttr)
    ()

let periodic ?computers ?degrade ~every ~duration () =
  if every <= 0.0 then invalid_arg "Fault.periodic: every <= 0";
  if duration <= 0.0 then invalid_arg "Fault.periodic: duration <= 0";
  process ?computers ?degrade
    ~uptime:(Dist.Deterministic.create every)
    ~downtime:(Dist.Deterministic.create duration)
    ()

let plan ?(on_failure = Requeue) ?(reaction = Blacklist) processes =
  { processes; on_failure; reaction }

let none = { processes = []; on_failure = Resume; reaction = Oblivious }

let exponential ?computers ?on_failure ?reaction ~mtbf ~mttr () =
  plan ?on_failure ?reaction [ crashes ?computers ~mtbf ~mttr () ]

let is_none p = match p.processes with [] -> true | _ :: _ -> false

let validate ~n p =
  List.iter
    (fun proc ->
      match proc.computers with
      | None -> ()
      | Some l ->
        List.iter
          (fun i ->
            if i < 0 || i >= n then
              invalid_arg
                (Printf.sprintf "Fault.validate: computer %d outside [0,%d)" i n))
          l)
    p.processes

let on_failure_name = function
  | Drop -> "drop"
  | Requeue -> "requeue"
  | Resume -> "resume"

let on_failure_of_string = function
  | "drop" -> Some Drop
  | "requeue" -> Some Requeue
  | "resume" -> Some Resume
  | _ -> None

let reaction_name = function Oblivious -> "oblivious" | Blacklist -> "blacklist"

let pp_summary fmt s =
  Format.fprintf fmt "availability=%.4f failures=%d lost=%d" s.availability
    s.failures s.lost_jobs
