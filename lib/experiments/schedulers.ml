module Cluster = Statsched_cluster
module Core = Statsched_core

let static_four =
  List.map
    (fun (name, p) -> (name, Cluster.Scheduler.Static p))
    Core.Policy.all_static

let with_least_load = static_four @ [ ("LeastLoad", Cluster.Scheduler.least_load_paper) ]

let custom label make = (label, Cluster.Scheduler.Static_custom { label; make })

let dispatch_ablations =
  [
    ("ORR", Cluster.Scheduler.Static Core.Policy.orr);
    custom "ORR/no-guard" (fun ~rho ~speeds ~rng:_ ->
        Core.Dispatch.round_robin_no_guard (Core.Allocation.optimized ~rho speeds));
    custom "ORR/index-ties" (fun ~rho ~speeds ~rng:_ ->
        Core.Dispatch.round_robin_index_ties (Core.Allocation.optimized ~rho speeds));
    custom "O-smoothWRR" (fun ~rho ~speeds ~rng:_ ->
        Core.Dispatch.smooth_weighted (Core.Allocation.optimized ~rho speeds));
  ]

let allocation_ablations =
  [
    ("ORR", Cluster.Scheduler.Static Core.Policy.orr);
    custom "ORR/naive-clamp" (fun ~rho ~speeds ~rng:_ ->
        Core.Dispatch.round_robin (Core.Allocation.optimized_naive_clamp ~rho speeds));
    ("WRR", Cluster.Scheduler.Static Core.Policy.wrr);
  ]
