(** Jobs flowing through the simulated system.

    A job's [size] is defined exactly as in the paper (Section 2.3): its
    completion time when executed alone on an idle machine of relative
    speed 1.  On a machine of speed [s] the job therefore needs [size/s]
    seconds of dedicated service. *)

type t = {
  mutable id : int;
  mutable size : float;  (** service demand in speed-1 seconds; [> 0] *)
  mutable arrival : float;  (** arrival time at the central scheduler *)
  mutable computer : int;  (** index of the computer it was dispatched to; −1 before dispatch *)
  mutable start : float;  (** first instant it received service; −1 until then *)
  mutable completion : float;  (** departure time; −1 until completed *)
}
(** [id], [size] and [arrival] are mutable only so retired records can be
    recycled through a {!pool}; simulation code treats them as
    set-at-birth. *)

val create : id:int -> size:float -> arrival:float -> t
(** @raise Invalid_argument if [size <= 0] or [arrival < 0]. *)

(** {2 Record recycling}

    Hot simulation loops churn through millions of short-lived jobs; a
    pool recycles retired records so the dispatch→completion cycle
    allocates nothing once warmed up.  Only safe when no observer
    retains jobs past their departure — callers with job-observing
    hooks must bypass the pool. *)

type pool

val pool : unit -> pool
(** An empty free-list. *)

val acquire : pool -> id:int -> size:float -> arrival:float -> t
(** A record initialised exactly as by {!create}, reusing a released
    one when available.

    @raise Invalid_argument if [size <= 0] or [arrival < 0]. *)

val release : pool -> t -> unit
(** Return a retired record for reuse.  The caller must not touch [t]
    afterwards. *)

val pooled : pool -> int
(** Number of records currently parked in the free-list. *)

val is_completed : t -> bool

val response_time : t -> float
(** [completion − arrival].

    @raise Invalid_argument if the job has not completed. *)

val response_ratio : t -> float
(** Response time divided by size — the paper's per-job slowdown metric.

    @raise Invalid_argument if the job has not completed. *)

val pp : Format.formatter -> t -> unit
