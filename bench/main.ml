(* Benchmark harness.

   Two halves:

   1. Bechamel micro-benchmarks — one [Test.make] per paper artefact
      (Table 1, Figures 2-6), measuring the cost of the core operation
      that artefact exercises, plus the simulator substrate.

   2. The reproduction harness — regenerates every table and figure of
      Tang & Chanson (ICPP 2000) and prints the paper-claim checks
      (who wins, by what factor).  Scale comes from the environment:
      QUICK=1 for a smoke run, FULL=1 for the paper's exact methodology
      (4e6 simulated seconds x 10 replications per point; slow).

   Usage: main.exe [micro|macro|figures|ablations|extensions|all]
   (default: all).  micro/macro write BENCH_<BENCH_REV>.json; "macro"
   alone runs just the whole-run DES-throughput measurement. *)

open Bechamel
open Toolkit
module Core = Statsched_core
module Cluster = Statsched_cluster
module Dist = Statsched_dist
module Des = Statsched_des
module E = Statsched_experiments
module Rng = Statsched_prng.Rng

(* ------------------------------------------------------------------ *)
(* Part 1: micro-benchmarks                                            *)

let test_table1_least_load_decision =
  let state = Core.Least_load.create Core.Speeds.table1 in
  let g = Rng.create ~seed:1L () in
  Test.make ~name:"table1/least-load decision (7 computers)"
    (Staged.stage (fun () ->
         let i = Core.Least_load.select ~rng:g state in
         Core.Least_load.job_sent state i;
         Core.Least_load.departure_recorded state i))

let test_fig2_algorithm2_dispatch =
  let d = Core.Dispatch.round_robin E.Fig2.fractions in
  Test.make ~name:"fig2/algorithm 2 dispatch (8 computers)"
    (Staged.stage (fun () -> ignore (Core.Dispatch.select d)))

let test_fig2_random_dispatch =
  let d = Core.Dispatch.random ~rng:(Rng.create ~seed:2L ()) E.Fig2.fractions in
  Test.make ~name:"fig2/random dispatch (8 computers)"
    (Staged.stage (fun () -> ignore (Core.Dispatch.select d)))

let test_fig2_alias_dispatch =
  let d = Core.Dispatch.random_alias ~rng:(Rng.create ~seed:21L ()) E.Fig2.fractions in
  Test.make ~name:"fig2/random dispatch via alias method"
    (Staged.stage (fun () -> ignore (Core.Dispatch.select d)))

let test_scaling_allocation =
  (* Allocation cost vs cluster size: 512 computers. *)
  let speeds = Array.init 512 (fun i -> 1.0 +. float_of_int (i mod 16)) in
  Test.make ~name:"scaling/optimized allocation (512 computers)"
    (Staged.stage (fun () -> ignore (Core.Allocation.optimized ~rho:0.7 speeds)))

let test_scaling_dispatch =
  let alpha = Array.make 512 (1.0 /. 512.0) in
  let total = Array.fold_left ( +. ) 0.0 alpha in
  alpha.(0) <- alpha.(0) +. (1.0 -. total);
  let d = Core.Dispatch.round_robin alpha in
  (* Round-robin select is an O(n) argmin scan per arrival — acceptable at
     n <= 512, but this benchmark keeps the cost visible so a regression
     (or a future cluster-size bump) shows up in BENCH_<rev>.json. *)
  Test.make ~name:"scaling/round-robin dispatch (512 computers)"
    (Staged.stage (fun () -> ignore (Core.Dispatch.select d)))

let test_fig3_allocation =
  let speeds = Core.Speeds.two_class ~n_fast:2 ~fast:20.0 ~n_slow:16 ~slow:1.0 in
  Test.make ~name:"fig3/optimized allocation (18 computers)"
    (Staged.stage (fun () -> ignore (Core.Allocation.optimized ~rho:0.7 speeds)))

let test_fig4_allocation =
  let speeds = Core.Speeds.two_class ~n_fast:10 ~fast:10.0 ~n_slow:10 ~slow:1.0 in
  Test.make ~name:"fig4/optimized allocation (20 computers)"
    (Staged.stage (fun () -> ignore (Core.Allocation.optimized ~rho:0.7 speeds)))

let test_fig5_allocation_table3 =
  Test.make ~name:"fig5/optimized allocation (table 3)"
    (Staged.stage (fun () -> ignore (Core.Allocation.optimized ~rho:0.7 Core.Speeds.table3)))

let test_fig6_estimated_allocation =
  Test.make ~name:"fig6/allocation with load estimate"
    (Staged.stage (fun () ->
         ignore
           (Core.Policy.allocation_of (Core.Policy.orr_estimated 0.77) ~rho:0.7
              Core.Speeds.table3)))

let test_event_queue =
  let q = Des.Event_queue.create () in
  let g = Rng.create ~seed:3L () in
  Test.make ~name:"substrate/event queue add+pop"
    (Staged.stage (fun () ->
         ignore (Des.Event_queue.add q ~time:(Rng.float g) ());
         ignore (Des.Event_queue.pop q)))

let test_hyperexp_sample =
  let d = Dist.Hyperexponential.fit_cv ~mean:2.2 ~cv:3.0 in
  let g = Rng.create ~seed:4L () in
  Test.make ~name:"substrate/hyperexponential sample"
    (Staged.stage (fun () -> ignore (Dist.Distribution.sample d g)))

let test_bounded_pareto_sample =
  let prm = Dist.Bounded_pareto.paper_default in
  let g = Rng.create ~seed:5L () in
  Test.make ~name:"substrate/bounded pareto sample"
    (Staged.stage (fun () -> ignore (Dist.Bounded_pareto.sample prm g)))

let test_end_to_end_second =
  (* One simulated kilo-second of the Table 3 cluster under ORR. *)
  let speeds = Core.Speeds.table3 in
  let workload = Cluster.Workload.paper_default ~rho:0.7 ~speeds in
  let counter = ref 0 in
  Test.make ~name:"end-to-end/1000 simulated seconds (table 3, ORR)"
    (Staged.stage (fun () ->
         incr counter;
         let cfg =
           Cluster.Simulation.default_config ~horizon:1000.0 ~warmup:0.0
             ~replication:!counter ~speeds ~workload
             ~scheduler:(Cluster.Scheduler.static Core.Policy.orr) ()
         in
         ignore (Cluster.Simulation.run cfg)))

let micro_tests =
  [
    test_table1_least_load_decision;
    test_fig2_algorithm2_dispatch;
    test_fig2_random_dispatch;
    test_fig2_alias_dispatch;
    test_fig3_allocation;
    test_fig4_allocation;
    test_fig5_allocation_table3;
    test_fig6_estimated_allocation;
    test_event_queue;
    test_hyperexp_sample;
    test_bounded_pareto_sample;
    test_scaling_allocation;
    test_scaling_dispatch;
    test_end_to_end_second;
  ]

(* Machine-readable results: BENCH_<rev>.json, one object per micro test
   with the OLS ns/run estimate, plus a "macros" section of whole-run
   measurements (DES events per wall-clock second and friends).  The
   revision label comes from BENCH_REV (e.g. a commit hash set by CI) and
   defaults to "dev", so successive runs can be diffed or tracked without
   scraping the human output. *)
let write_bench_json ~micro ~macros =
  let rev = Option.value ~default:"dev" (Sys.getenv_opt "BENCH_REV") in
  let path = Printf.sprintf "BENCH_%s.json" rev in
  let json_string s =
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (function
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "{\n  \"revision\": %s,\n  \"unit\": \"ns/run\",\n  \"results\": [\n"
        (json_string rev);
      List.iteri
        (fun i (name, ns, r2) ->
          Printf.fprintf oc "    {\"name\": %s, \"ns_per_run\": %.3f%s}%s\n"
            (json_string name) ns
            (match r2 with
            | Some r -> Printf.sprintf ", \"r_square\": %.6f" r
            | None -> "")
            (if i = List.length micro - 1 then "" else ","))
        (List.rev micro);
      output_string oc "  ],\n  \"macros\": [\n";
      List.iteri
        (fun i (name, value) ->
          Printf.fprintf oc "    {\"name\": %s, \"value\": %.3f}%s\n"
            (json_string name) value
            (if i = List.length macros - 1 then "" else ","))
        macros;
      output_string oc "  ]\n}\n");
  Printf.printf "wrote %s (%d micro, %d macro)\n%!" path (List.length micro)
    (List.length macros)

(* Median of an odd number of wall-clock samples: robust against a
   one-off GC pause or scheduler hiccup polluting a single run. *)
let median samples =
  let s = Array.copy samples in
  Array.sort Float.compare s;
  s.(Array.length s / 2)

(* Macro benchmark: seeded quick-scale runs of the Table 3 cluster under
   ORR, reporting the engine's wall-clock throughput from the
   self-profiling counters.  The workload is fixed, so des_events_per_sec
   tracks simulator speed across revisions.  Every wall-clock figure is a
   median of [alternations] repetitions, and the serial/parallel
   replication batches are interleaved A/B/A/B… in one process — timing
   them back-to-back let GC and cache warm-up bias whichever half ran
   second (the original "speedup 0.78" report was largely that bias on a
   single-core runner). *)
let run_macro ~jobs () =
  E.Report.print_section "Macro benchmark: DES engine throughput";
  let alternations = 3 in
  let speeds = Core.Speeds.table3 in
  let workload = Cluster.Workload.paper_default ~rho:0.7 ~speeds in
  let cfg =
    Cluster.Simulation.default_config ~horizon:2.0e5 ~warmup:5.0e4 ~seed:42L
      ~speeds ~workload ~scheduler:(Cluster.Scheduler.static Core.Policy.orr) ()
  in
  let last_result = ref None in
  let walls = Array.make alternations 0.0 in
  for k = 0 to alternations - 1 do
    let start = Statsched_obs.Clock.now () in
    let result = Cluster.Simulation.run cfg in
    walls.(k) <- Statsched_obs.Clock.elapsed ~since:start;
    last_result := Some result
  done;
  let result = Option.get !last_result in
  let wall = median walls in
  let events = float_of_int result.Cluster.Simulation.events_executed in
  let per_sec = if wall > 0.0 then events /. wall else 0.0 in
  Printf.printf
    "%d events in %.3f s wall (median of %d) = %.0f events/s (heap high-water %d)\n%!"
    result.Cluster.Simulation.events_executed wall alternations per_sec
    result.Cluster.Simulation.heap_high_water;
  (* Observability overhead: bare vs fully-instrumented (metrics +
     bounded journal, both at their defaults) runs, interleaved A/B per
     alternation for the same reason the seq/par batches below are:
     timing the halves back-to-back hands whichever ran second the
     warmed GC and caches.  A longer horizon than the throughput run
     above, so the journal's sampling stride reaches steady state
     instead of charging the whole fill phase to a short window. *)
  let obs_alternations = 15 in
  let obs_cfg =
    Cluster.Simulation.default_config ~horizon:1.0e6 ~warmup:2.5e5 ~seed:42L
      ~speeds ~workload ~scheduler:(Cluster.Scheduler.static Core.Policy.orr) ()
  in
  let obs_bare_walls = Array.make obs_alternations 0.0 in
  let obs_walls = Array.make obs_alternations 0.0 in
  let obs_identical = ref true in
  (* The bare arm gets the same telemetry + journal allocations as the
     instrumented arm (unused), so the two timed regions see the same
     heap shape and GC pacing and differ only in the recording work. *)
  (* Process CPU time, not wall clock: the overhead gate measures extra
     work done per run, and CPU time is immune to the co-tenant steal
     that dominates wall-clock variance on shared machines.  [Clock.cpu]
     granularity (~10 ms) is ~2% of one run; the median over the pairs
     absorbs the quantization. *)
  let run_bare () =
    let ballast =
      Cluster.Telemetry.create ~journal:(Statsched_obs.Journal.create ()) obs_cfg
    in
    let start = Statsched_obs.Clock.cpu () in
    let result = Cluster.Simulation.run obs_cfg in
    let dt = Statsched_obs.Clock.cpu () -. start in
    ignore (Sys.opaque_identity (Cluster.Telemetry.metric_count ballast));
    (dt, result)
  in
  let run_instrumented () =
    let t =
      Cluster.Telemetry.create ~journal:(Statsched_obs.Journal.create ()) obs_cfg
    in
    let start = Statsched_obs.Clock.cpu () in
    let instrumented =
      Cluster.Simulation.run ~hooks_retain_jobs:false
        ~metric_histograms:(Cluster.Telemetry.histograms t)
        ~on_dispatch:(Cluster.Telemetry.on_dispatch t)
        ~on_completion:(Cluster.Telemetry.on_completion t)
        ~on_drop:(Cluster.Telemetry.on_drop t)
        ~on_rate_change:(Cluster.Telemetry.on_rate_change t)
        obs_cfg
    in
    let dt = Statsched_obs.Clock.cpu () -. start in
    Cluster.Telemetry.finalize t instrumented;
    (dt, instrumented)
  in
  for k = 0 to obs_alternations - 1 do
    (* Alternate which arm runs first within the pair, so whatever bias
       the second run inherits (warmed caches, GC phase) cancels across
       pairs instead of loading one arm. *)
    let (bare_dt, result), (instr_dt, instrumented) =
      if k land 1 = 0 then begin
        let b = run_bare () in
        (b, run_instrumented ())
      end
      else begin
        let i = run_instrumented () in
        (run_bare (), i)
      end
    in
    obs_bare_walls.(k) <- bare_dt;
    obs_walls.(k) <- instr_dt;
    obs_identical :=
      !obs_identical
      && Float.equal
           result.Cluster.Simulation.metrics.Core.Metrics.mean_response_time
           instrumented.Cluster.Simulation.metrics.Core.Metrics
             .mean_response_time
      && result.Cluster.Simulation.events_executed
         = instrumented.Cluster.Simulation.events_executed
  done;
  (* Paired per-alternation ratios: each instrumented run is divided by
     the bare run next to it in time, so slow drift of the machine
     (thermal, co-tenancy) cancels before the median is taken. *)
  let obs_ratio =
    median
      (Array.init obs_alternations (fun k ->
           if obs_bare_walls.(k) > 0.0 then obs_walls.(k) /. obs_bare_walls.(k)
           else 0.0))
  in
  Printf.printf
    "instrumented (metrics + journal): %.3f s vs %.3f s bare (medians of %d \
     pairs) = overhead ratio %.3f (results identical: %b)\n%!"
    (median obs_walls) (median obs_bare_walls) obs_alternations obs_ratio
    !obs_identical;
  if not !obs_identical then
    failwith "macro benchmark: instrumented run diverged from bare run";
  (* Replication-harness throughput: the same cluster as a replication
     batch, sequentially and fanned out over [jobs] domains, interleaved
     seq/par per alternation.  Replication k always draws from RNG
     substream k, so all batches must agree bit-for-bit — checked here on
     every benchmark run. *)
  let spec =
    E.Runner.make_spec ~speeds ~workload
      ~scheduler:(Cluster.Scheduler.static Core.Policy.orr) ()
  in
  let batch = { E.Config.horizon = 5.0e4; warmup = 1.25e4; reps = 8 } in
  let seq_walls = Array.make alternations 0.0 in
  let par_walls = Array.make alternations 0.0 in
  let identical = ref true in
  let mean p = p.E.Runner.mean_response_ratio.Statsched_stats.Confidence.mean in
  for k = 0 to alternations - 1 do
    let p_seq, wall_seq = E.Runner.measure_wall ~seed:42L ~jobs:1 ~scale:batch spec in
    let p_par, wall_par = E.Runner.measure_wall ~seed:42L ~jobs ~scale:batch spec in
    seq_walls.(k) <- wall_seq;
    par_walls.(k) <- wall_par;
    identical :=
      !identical
      && Float.equal (mean p_seq) (mean p_par)
      && Float.equal p_seq.E.Runner.jobs_per_rep p_par.E.Runner.jobs_per_rep
      && Float.equal p_seq.E.Runner.pooled_p99_ratio p_par.E.Runner.pooled_p99_ratio
  done;
  let identical = !identical in
  let wall_seq = median seq_walls in
  let wall_par = median par_walls in
  let reps = float_of_int batch.E.Config.reps in
  let reps_per_sec = if wall_par > 0.0 then reps /. wall_par else 0.0 in
  let reps_per_sec_serial = if wall_seq > 0.0 then reps /. wall_seq else 0.0 in
  let speedup = if wall_par > 0.0 then wall_seq /. wall_par else 0.0 in
  let cores = Statsched_par.Par.available_parallelism () in
  Printf.printf
    "%d replications x%d interleaved: %.3f s sequential, %.3f s on %d domain(s) \
     = %.2f reps/s (speedup %.2fx, %d core(s) available, results identical: %b)\n%!"
    batch.E.Config.reps alternations wall_seq wall_par jobs reps_per_sec speedup
    cores identical;
  if not identical then
    failwith "macro benchmark: parallel replication results diverged from sequential";
  (* Many-server regime: one n = 10^4 cell of the scale sweep's
     two-class cluster under the full-information tree dispatcher
     (JSQ with d = n).  This is the configuration the scale sweep's
     acceptance bound watches — enough pending events that the event
     queue's far band is active — so its throughput is tracked as its
     own pair of macros rather than inferred from the six-computer
     figures above. *)
  let n10k = 10_000 in
  let n10k_speeds = E.Ext_scale.speeds_for n10k in
  let n10k_workload = Cluster.Workload.paper_default ~rho:0.7 ~speeds:n10k_speeds in
  let n10k_jobs = 3.0e5 in
  let n10k_horizon = n10k_jobs /. Cluster.Workload.arrival_rate n10k_workload in
  let n10k_cfg =
    Cluster.Simulation.default_config ~horizon:n10k_horizon
      ~warmup:(0.1 *. n10k_horizon) ~seed:42L ~speeds:n10k_speeds
      ~workload:n10k_workload
      ~scheduler:(Cluster.Scheduler.jsq ~d:n10k ())
      ()
  in
  let n10k_last = ref None in
  let n10k_walls = Array.make alternations 0.0 in
  for k = 0 to alternations - 1 do
    let start = Statsched_obs.Clock.now () in
    let result = Cluster.Simulation.run n10k_cfg in
    n10k_walls.(k) <- Statsched_obs.Clock.elapsed ~since:start;
    n10k_last := Some result
  done;
  let n10k_result = Option.get !n10k_last in
  let n10k_wall = median n10k_walls in
  let n10k_events = float_of_int n10k_result.Cluster.Simulation.events_executed in
  let n10k_jobs_done =
    float_of_int n10k_result.Cluster.Simulation.metrics.Core.Metrics.jobs
  in
  let n10k_events_per_sec = if n10k_wall > 0.0 then n10k_events /. n10k_wall else 0.0 in
  let n10k_jobs_per_sec = if n10k_wall > 0.0 then n10k_jobs_done /. n10k_wall else 0.0 in
  Printf.printf
    "n=10^4 least-load: %d events in %.3f s wall (median of %d) = %.0f events/s, \
     %.0f jobs/s (heap high-water %d)\n%!"
    n10k_result.Cluster.Simulation.events_executed n10k_wall alternations
    n10k_events_per_sec n10k_jobs_per_sec
    n10k_result.Cluster.Simulation.heap_high_water;
  (* Per-decision dispatch cost at n = 10^4, isolated from the engine:
     a full-information select plus the two index updates a dispatch
     implies (send + detected departure on the chosen computer, so the
     load state is stationary across the loop).  Mostly-idle queue
     levels keep thousands of computers tied at the minimum — the
     regime where tie-breaking cost is the whole story. *)
  let decisions = 300_000 in
  let dispatch_walls = Array.make alternations 0.0 in
  for k = 0 to alternations - 1 do
    let ll = Core.Least_load.create n10k_speeds in
    let g = Rng.create ~seed:(Int64.of_int (100 + k)) () in
    for i = 0 to n10k - 1 do
      Core.Least_load.set_load_index ll i (Rng.int g 3)
    done;
    let start = Statsched_obs.Clock.now () in
    let sink = ref 0 in
    for _ = 1 to decisions do
      let s = Core.Least_load.select ~rng:g ll in
      Core.Least_load.job_sent ll s;
      Core.Least_load.departure_recorded ll s;
      sink := !sink + s
    done;
    dispatch_walls.(k) <- Statsched_obs.Clock.elapsed ~since:start;
    ignore (Sys.opaque_identity !sink)
  done;
  let dispatch_ns =
    median dispatch_walls *. 1.0e9 /. float_of_int decisions
  in
  Printf.printf
    "least-load dispatch at n=10^4: %.0f ns/decision (median of %d runs of %d)\n%!"
    dispatch_ns alternations decisions;
  [
    ("des_events_per_sec", per_sec);
    ("des_events_per_sec_n10k", n10k_events_per_sec);
    ("jobs_per_sec_n10k", n10k_jobs_per_sec);
    ("dispatch_ns_per_decision", dispatch_ns);
    ("des_events_total", events);
    ("des_heap_high_water", float_of_int result.Cluster.Simulation.heap_high_water);
    ("macro_wall_seconds", wall);
    ("obs_overhead_ratio", obs_ratio);
    ("reps_per_sec", reps_per_sec);
    ("reps_per_sec_serial", reps_per_sec_serial);
    ("parallel_speedup", speedup);
    ("parallel_jobs", float_of_int jobs);
    ("parallel_available_cores", float_of_int cores);
  ]

let run_micro () =
  E.Report.print_section "Bechamel micro-benchmarks";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let collected = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analysed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) ->
            let r2 = Analyze.OLS.r_square ols_result in
            collected := (name, est, r2) :: !collected;
            Printf.printf "%-55s %12.1f ns/run%s\n%!" name est
              (match r2 with
              | Some r -> Printf.sprintf " (r²=%.4f)" r
              | None -> "")
          | _ -> Printf.printf "%-55s (no estimate)\n%!" name)
        analysed)
    micro_tests;
  !collected

(* ------------------------------------------------------------------ *)
(* Part 2: table and figure reproduction                               *)

let improvement ~better ~worse = 100.0 *. (1.0 -. (better /. worse))

let ratio_of points name =
  (List.assoc name points).E.Runner.mean_response_ratio.Statsched_stats.Confidence.mean

let print_table2 () =
  E.Report.print_section "Table 2: policy matrix (definitional)";
  print_string
    (E.Report.render
       ~header:[ "dispatching \\ allocation"; "weighted"; "optimized" ]
       ~rows:
         [
           [ E.Report.Text "random"; E.Report.Text "WRAN"; E.Report.Text "ORAN" ];
           [ E.Report.Text "round-robin"; E.Report.Text "WRR"; E.Report.Text "ORR" ];
         ])

let print_table3 () =
  E.Report.print_section "Table 3: base system configuration";
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun s -> Hashtbl.replace tbl s (1 + Option.value ~default:0 (Hashtbl.find_opt tbl s)))
    Core.Speeds.table3;
  let rows =
    Hashtbl.fold (fun s c acc -> (s, c) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> Float.compare a b)
    |> List.map (fun (s, c) -> [ E.Report.Float s; E.Report.Int c ])
  in
  print_string (E.Report.render ~header:[ "speed"; "number" ] ~rows);
  Printf.printf "aggregate speed: %g\n" (Core.Speeds.total Core.Speeds.table3)

let run_table1 r =
  E.Report.print_section "Table 1: workload split under Dynamic Least-Load (rho=0.7)";
  print_string (E.Table1.to_report r)

let run_fig2 r =
  E.Report.print_section "Figure 2: allocation deviation, round-robin vs random dispatch";
  print_string (E.Fig2.to_report r);
  Printf.printf "deviation ratio (random/round-robin means): %.1fx\n"
    (r.E.Fig2.random_summary.Statsched_stats.Summary.mean
    /. r.E.Fig2.round_robin_summary.Statsched_stats.Summary.mean)

let run_fig3 rows =
  E.Report.print_section "Figure 3: effect of speed skewness (2 fast + 16 slow, rho=0.7)";
  print_string (E.Fig3.to_report rows);
  print_newline ();
  print_string
    (E.Report.chart_of_sweep
       (E.Sweep.sweep_of_rows ~title:"Figure 3(b) as a chart" ~xlabel:"fast speed"
          ~metric:`Ratio rows));
  (* paper claims at 20:1 *)
  match
    List.find_opt (fun (x, _) -> Float.equal x 20.0) rows
    |> Option.map snd
  with
  | None -> ()
  | Some points ->
    Printf.printf
      "\npaper-claim check at 20:1 speed ratio (paper: ORR 42%% under WRR, ORAN 49%% under WRAN):\n";
    Printf.printf "  ORR vs WRR  mean-response-ratio reduction: %.0f%%\n"
      (improvement ~better:(ratio_of points "ORR") ~worse:(ratio_of points "WRR"));
    Printf.printf "  ORAN vs WRAN mean-response-ratio reduction: %.0f%%\n"
      (improvement ~better:(ratio_of points "ORAN") ~worse:(ratio_of points "WRAN"))

let run_fig4 rows =
  E.Report.print_section "Figure 4: effect of system size (half speed 10, half speed 1)";
  print_string (E.Fig4.to_report rows);
  Printf.printf
    "\npaper-claim check (paper: ORR 35-40%% under WRAN beyond 6 computers):\n";
  List.iter
    (fun (n, points) ->
      if n >= 8.0 then
        Printf.printf "  n=%2.0f  ORR vs WRAN reduction: %.0f%%\n" n
          (improvement ~better:(ratio_of points "ORR") ~worse:(ratio_of points "WRAN")))
    rows

let run_fig5 rows =
  E.Report.print_section "Figure 5: effect of system load (Table 3 configuration)";
  print_string (E.Fig5.to_report rows);
  print_newline ();
  print_string
    (E.Report.chart_of_sweep
       (E.Sweep.sweep_of_rows ~title:"Figure 5(a) as a chart" ~xlabel:"utilization"
          ~metric:`Ratio rows));
  match
    List.find_opt (fun (x, _) -> Float.equal x 0.9) rows
    |> Option.map snd
  with
  | None -> ()
  | Some points ->
    Printf.printf
      "\npaper-claim check at rho=0.9 (paper: ORR 24%% under WRR, 34%% under WRAN):\n";
    Printf.printf "  ORR vs WRR:  %.0f%%\n"
      (improvement ~better:(ratio_of points "ORR") ~worse:(ratio_of points "WRR"));
    Printf.printf "  ORR vs WRAN: %.0f%%\n"
      (improvement ~better:(ratio_of points "ORR") ~worse:(ratio_of points "WRAN"))

let run_fig6 ~under ~over =
  E.Report.print_section "Figure 6: sensitivity of ORR to load-estimation error";
  print_string (E.Fig6.to_report ~under ~over)

(* ------------------------------------------------------------------ *)
(* Ablation benches (DESIGN.md section 5)                              *)

let ablation_scale () =
  (* Ablations always run at a reduced scale; they compare variants of our
     own implementation, not paper claims. *)
  let s = E.Config.of_env () in
  if E.Config.equal_scale s E.Config.paper then E.Config.default_scale else E.Config.quick

let run_ablation_dispatch () =
  E.Report.print_section "Ablation: Algorithm 2 design choices (dispatch smoothness)";
  print_string (E.Ablations.dispatch_smoothness_report (E.Ablations.dispatch_smoothness ()))

let run_ablation_schedulers ~scale =
  E.Report.print_section
    "Ablation: end-to-end variants on Table 3 at rho=0.7 (mean response ratio)";
  print_string (E.Ablations.end_to_end_report (E.Ablations.end_to_end ~scale ()))

let run_ablation_discipline ~scale =
  E.Report.print_section "Ablation: service disciplines (PS model validation + contrast)";
  print_string (E.Ablations.disciplines_report (E.Ablations.disciplines ~scale ()));
  print_string
    ("PS and small-quantum RR agree (the paper's model is faithful); FCFS pays\n"
    ^ "for size-blind queueing; SRPT bounds what size knowledge could buy.\n")

let run_ablation_interval_length () =
  E.Report.print_section "Ablation: deviation metric vs interval length (Figure 2 stream)";
  print_string (E.Ablations.interval_lengths_report (E.Ablations.interval_lengths ()))

(* ------------------------------------------------------------------ *)
(* Extension experiments (beyond the paper)                            *)

let run_ext_burstiness ~scale =
  E.Report.print_section "Extension: arrival burstiness sweep (Table 3, rho=0.7)";
  let rows = E.Ext_burstiness.run ~scale () in
  print_string (E.Ext_burstiness.to_report rows)

let run_ext_sizes ~scale =
  E.Report.print_section
    "Extension: size-distribution sensitivity (PS insensitivity check)";
  let rows = E.Ext_sizes.run ~scale () in
  print_string (E.Ext_sizes.to_report rows)

let run_ext_partial_information ~scale =
  E.Report.print_section
    "Extension: partial-information dynamic baselines (Table 3, rho=0.7)";
  let speeds = Core.Speeds.table3 in
  let workload = Cluster.Workload.paper_default ~rho:0.7 ~speeds in
  let schedulers =
    [
      ("ORR", Cluster.Scheduler.Static Core.Policy.orr);
      ("LeastLoad(d=2)", Cluster.Scheduler.two_choices ~d:2 ());
      ("LeastLoad(d=4)", Cluster.Scheduler.two_choices ~d:4 ());
      ("LeastLoad", Cluster.Scheduler.least_load_paper);
    ]
  in
  let points = E.Sweep.over_schedulers ~scale ~schedulers ~speeds ~workload () in
  print_string
    (E.Report.render
       ~header:[ "scheduler"; "mean response ratio"; "fairness" ]
       ~rows:
         (List.map
            (fun (name, p) ->
              [
                E.Report.Text name;
                E.Report.Interval p.E.Runner.mean_response_ratio;
                E.Report.Interval p.E.Runner.fairness;
              ])
            points));
  print_string
    "Note: JSQ(d) probes d random computers per decision; with heterogeneous\n\
     speeds it can probe only slow machines, so it needs d well above 2 to\n\
     approach full Least-Load — ORR gets most of the way with zero probes.\n"

let run_ext_adaptive ~scale =
  E.Report.print_section
    "Extension: self-tuning ORR (online load estimation, Table 3)";
  let speeds = Core.Speeds.table3 in
  let rows =
    List.map
      (fun rho ->
        let workload = Cluster.Workload.paper_default ~rho ~speeds in
        let schedulers =
          [
            ("ORR (oracle rho)", Cluster.Scheduler.Static Core.Policy.orr);
            ("AdaptiveORR", Cluster.Scheduler.adaptive_orr ());
            ("WRR", Cluster.Scheduler.Static Core.Policy.wrr);
          ]
        in
        (rho, E.Sweep.over_schedulers ~scale ~schedulers ~speeds ~workload ()))
      [ 0.3; 0.5; 0.7; 0.9 ]
  in
  print_string
    (E.Report.render_sweep
       (E.Sweep.sweep_of_rows ~title:"AdaptiveORR vs oracle ORR"
          ~xlabel:"utilization" ~metric:`Ratio rows))

(* ------------------------------------------------------------------ *)

let () =
  (* Usage: main.exe [mode] [--jobs N].  Mode defaults to "all"; --jobs
     sets the replication fan-out for the macro benchmark (default:
     STATSCHED_JOBS or the recommended domain count). *)
  let mode = ref "all" in
  let jobs = ref None in
  let argc = Array.length Sys.argv in
  let i = ref 1 in
  while !i < argc do
    (match Sys.argv.(!i) with
    | "--jobs" | "-j" when !i + 1 < argc ->
      incr i;
      jobs := Some Sys.argv.(!i)
    | arg when String.length arg > 7 && String.sub arg 0 7 = "--jobs=" ->
      jobs := Some (String.sub arg 7 (String.length arg - 7))
    | arg -> mode := arg);
    incr i
  done;
  let mode = !mode in
  let jobs =
    match !jobs with
    | None -> Statsched_par.Par.default_jobs ()
    | Some s -> (
      match int_of_string_opt s with
      | Some j when j >= 1 -> j
      | Some _ | None ->
        Printf.eprintf "bench: --jobs expects a positive integer (got %S)\n" s;
        exit 2)
  in
  let scale = E.Config.of_env () in
  Printf.printf "statsched bench harness — scale: %s (horizon %g s, %d replications)\n"
    (E.Config.scale_name scale) scale.E.Config.horizon scale.E.Config.reps;
  let do_micro = mode = "all" || mode = "micro" in
  let do_macro = mode = "all" || mode = "micro" || mode = "macro" in
  let do_figures = mode = "all" || mode = "figures" in
  let do_ablations = mode = "all" || mode = "ablations" in
  let micro = if do_micro then run_micro () else [] in
  let macros = if do_macro then run_macro ~jobs () else [] in
  if do_micro || do_macro then write_bench_json ~micro ~macros;
  if do_figures then begin
    print_table2 ();
    print_table3 ();
    let inputs = E.Paper_claims.gather ~scale () in
    run_table1 inputs.E.Paper_claims.table1;
    run_fig2 inputs.E.Paper_claims.fig2;
    run_fig3 inputs.E.Paper_claims.fig3;
    run_fig4 inputs.E.Paper_claims.fig4;
    run_fig5 inputs.E.Paper_claims.fig5;
    run_fig6 ~under:inputs.E.Paper_claims.fig6_under ~over:inputs.E.Paper_claims.fig6_over;
    E.Report.print_section "Paper-claims scoreboard";
    print_string (E.Paper_claims.to_report (E.Paper_claims.evaluate inputs))
  end;
  if do_ablations then begin
    let scale = ablation_scale () in
    run_ablation_dispatch ();
    run_ablation_schedulers ~scale;
    run_ablation_discipline ~scale;
    run_ablation_interval_length ()
  end;
  if mode = "all" || mode = "extensions" then begin
    let scale = ablation_scale () in
    run_ext_burstiness ~scale;
    run_ext_sizes ~scale;
    run_ext_partial_information ~scale;
    run_ext_adaptive ~scale;
    E.Report.print_section
      "Extension: load-information staleness (when does ORR beat polling?)";
    print_string (E.Ext_staleness.to_report (E.Ext_staleness.run ~scale ()));
    E.Report.print_section "Extension: diurnal (non-stationary) load";
    print_string (E.Ext_diurnal.to_report (E.Ext_diurnal.run ~scale ()));
    E.Report.print_section "Extension: size-aware SITA-E vs size-blind policies";
    print_string (E.Ext_sita.to_report (E.Ext_sita.run ~scale ()));
    E.Report.print_section "Extension: convergence with run length";
    print_string
      (E.Ext_convergence.to_report (E.Ext_convergence.run ~reps:scale.E.Config.reps ()))
  end
