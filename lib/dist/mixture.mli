(** Finite mixtures of arbitrary distributions.

    Generalises {!Hyperexponential} (a mixture of exponentials) to any
    component family: bimodal job-size models ("interactive vs batch"),
    contaminated workloads, or spliced bodies and tails.  Moments come
    from the laws of total expectation and total variance. *)

val create : (float * Distribution.t) list -> Distribution.t
(** [create [(w₁, d₁); …]] samples from [dᵢ] with probability
    [wᵢ / Σw].  Weights must be non-negative with a positive sum.

    Mean: [Σ pᵢ·μᵢ].  Variance: [Σ pᵢ·(σᵢ² + μᵢ²) − (Σ pᵢ·μᵢ)²].

    @raise Invalid_argument on an empty list or invalid weights. *)

val bimodal :
  p_small:float ->
  small:Distribution.t ->
  large:Distribution.t ->
  Distribution.t
(** Convenience two-point mixture: with probability [p_small] draw from
    [small], otherwise from [large].

    @raise Invalid_argument unless [0 <= p_small <= 1]. *)
