(** Autocorrelation estimation for simulation output analysis.

    Within-run observations (successive response times) are serially
    correlated, which is precisely why {!Batch_means} exists.  This module
    quantifies the correlation so batch sizes can be chosen instead of
    guessed: batches should be long enough that adjacent batch means are
    nearly uncorrelated. *)

val lag : float array -> int -> float
(** [lag xs k] is the lag-[k] sample autocorrelation coefficient
    [ρ̂_k ∈ [−1, 1]] of the series.  [lag xs 0 = 1].

    @raise Invalid_argument if [k < 0], [k >= length xs], or the series
    has fewer than 2 points or zero variance. *)

val first_insignificant_lag : ?threshold:float -> float array -> int
(** Smallest [k >= 1] with [|ρ̂_k| < threshold] (default [2/√n], the usual
    white-noise band).  Returns [length xs - 1] if none qualifies. *)

val suggest_batch_size : ?threshold:float -> float array -> int
(** A batch size for {!Batch_means}: a safety factor of 10× the
    {!first_insignificant_lag}, at least 2 — the rule-of-thumb that makes
    adjacent batch means effectively independent. *)
