module Rng = Statsched_prng.Rng

type params = { k : float; p : float; alpha : float }

let validate { k; p; alpha } =
  if not (0.0 < k && k < p) then invalid_arg "Bounded_pareto: need 0 < k < p";
  if alpha <= 0.0 then invalid_arg "Bounded_pareto: need alpha > 0"

let paper_default = { k = 10.0; p = 21600.0; alpha = 1.0 }

(* E[X^j] = alpha k^alpha (p^{j-alpha} - k^{j-alpha}) / ((j-alpha)(1-(k/p)^alpha))
   with the limit alpha k^alpha ln(p/k) / (1-(k/p)^alpha) when alpha = j. *)
let raw_moment ({ k; p; alpha } as prm) j =
  validate prm;
  if j < 0 then invalid_arg "Bounded_pareto.raw_moment: negative order";
  let j = float_of_int j in
  let trunc = 1.0 -. ((k /. p) ** alpha) in
  if abs_float (alpha -. j) < 1e-12 then
    alpha *. (k ** alpha) *. log (p /. k) /. trunc
    /. (k ** (alpha -. j))
  else
    alpha *. (k ** alpha) *. ((p ** (j -. alpha)) -. (k ** (j -. alpha)))
    /. ((j -. alpha) *. trunc)

let quantile ({ k; p; alpha } as prm) u =
  validate prm;
  if not (0.0 <= u && u < 1.0) then invalid_arg "Bounded_pareto.quantile: u outside [0,1)";
  let trunc = 1.0 -. ((k /. p) ** alpha) in
  k /. ((1.0 -. (u *. trunc)) ** (1.0 /. alpha))

let cdf ({ k; p; alpha } as prm) x =
  validate prm;
  if x <= k then 0.0
  else if x >= p then 1.0
  else begin
    let trunc = 1.0 -. ((k /. p) ** alpha) in
    (1.0 -. ((k /. x) ** alpha)) /. trunc
  end

(* ∫_lo^hi x·f(x) dx with f the bounded-Pareto density; the antiderivative
   of x·f is α k^α/(1-(k/p)^α) · x^(1-α)/(1-α), with a log at α = 1. *)
let partial_mean ({ k; p; alpha } as prm) ~lo ~hi =
  validate prm;
  if lo > hi then invalid_arg "Bounded_pareto.partial_mean: lo > hi";
  let lo = max k lo and hi = min p hi in
  if lo >= hi then 0.0
  else begin
    let trunc = 1.0 -. ((k /. p) ** alpha) in
    let c = alpha *. (k ** alpha) /. trunc in
    if abs_float (alpha -. 1.0) < 1e-12 then c *. log (hi /. lo)
    else c /. (1.0 -. alpha) *. ((hi ** (1.0 -. alpha)) -. (lo ** (1.0 -. alpha)))
  end

let sample prm g = quantile prm (Rng.float g)

let create ({ k; p; alpha } as prm) =
  validate prm;
  let mean = raw_moment prm 1 in
  let second = raw_moment prm 2 in
  Distribution.make
    ~name:(Printf.sprintf "BP(%g,%g,%g)" k p alpha)
    ~mean
    ~variance:(second -. (mean *. mean))
    (fun g -> sample prm g)

let create_paper_default () = create paper_default
