(** Extension experiment: sensitivity to arrival burstiness.

    Not in the paper, but implied by its Section 5.3 observation that the
    round-robin dispatching gain "is higher under heavy load...  system
    performance becomes more sensitive to job arrival pattern".  This
    sweep varies the arrival coefficient of variation from sub-Poisson
    (Erlang) through Poisson to strongly bursty hyperexponential on the
    Table 3 configuration at 70 % utilisation, and reports how the
    advantage of round-robin over random dispatching — and of everything
    over Least-Load — moves with burstiness. *)

val default_cvs : float list
(** [0.5; 1; 2; 3; 4; 5] (3 is the paper's default). *)

type t = (float * (string * Runner.point) list) list

val run :
  ?scale:Config.scale ->
  ?seed:int64 ->
  ?jobs:int ->
  ?speeds:float array ->
  ?cvs:float list ->
  ?schedulers:(string * Statsched_cluster.Scheduler.kind) list ->
  unit ->
  t

val sweeps : t -> Report.sweep list

val to_report : t -> string
