(* Standard two-sided critical values. Rows: df 1..30, then 40, 60, 120, inf. *)
let table_90 =
  [|
    6.314; 2.920; 2.353; 2.132; 2.015; 1.943; 1.895; 1.860; 1.833; 1.812;
    1.796; 1.782; 1.771; 1.761; 1.753; 1.746; 1.740; 1.734; 1.729; 1.725;
    1.721; 1.717; 1.714; 1.711; 1.708; 1.706; 1.703; 1.701; 1.699; 1.697;
  |]

let table_95 =
  [|
    12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
    2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
    2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042;
  |]

let table_99 =
  [|
    63.657; 9.925; 5.841; 4.604; 4.032; 3.707; 3.499; 3.355; 3.250; 3.169;
    3.106; 3.055; 3.012; 2.977; 2.947; 2.921; 2.898; 2.878; 2.861; 2.845;
    2.831; 2.819; 2.807; 2.797; 2.787; 2.779; 2.771; 2.763; 2.756; 2.750;
  |]

(* (df, t90, t95, t99) for large df. *)
let large = [| (40, 1.684, 2.021, 2.704); (60, 1.671, 2.000, 2.660); (120, 1.658, 1.980, 2.617) |]

let limits = (1.645, 1.960, 2.576)

let lookup df =
  if df <= 30 then (table_90.(df - 1), table_95.(df - 1), table_99.(df - 1))
  else begin
    let l90, l95, l99 = limits in
    let best = ref (l90, l95, l99) in
    (try
       Array.iter
         (fun (d, a, b, c) -> if df <= d then begin best := (a, b, c); raise Exit end)
         large
     with Exit -> ());
    !best
  end

let critical ~df ~confidence =
  if df < 1 then invalid_arg "Student_t.critical: df < 1";
  if not (0.0 < confidence && confidence < 1.0) then
    invalid_arg "Student_t.critical: confidence outside (0,1)";
  let t90, t95, t99 = lookup df in
  let c = max 0.90 (min 0.99 confidence) in
  if c <= 0.95 then t90 +. ((c -. 0.90) /. 0.05 *. (t95 -. t90))
  else t95 +. ((c -. 0.95) /. 0.04 *. (t99 -. t95))
