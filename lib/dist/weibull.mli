(** Weibull distribution.

    Shape < 1 gives a sub-exponential tail between exponential and Pareto;
    used as a third job-size model in sensitivity experiments. *)

val create : shape:float -> scale:float -> Distribution.t
(** [create ~shape ~scale] with density
    [(shape/scale)·(x/scale)^(shape−1)·exp(−(x/scale)^shape)].

    @raise Invalid_argument if [shape <= 0] or [scale <= 0]. *)
