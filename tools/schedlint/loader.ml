(* Analysis-unit loading.

   The primary source of typedtrees is the `.cmt` files dune emits under
   `_build/default` (dune passes -bin-annot by default).  Every .ml file
   under the requested roots is matched to its .cmt through the
   `cmt_sourcefile` field; files with no .cmt — standalone fixtures in
   cram sandboxes, ad-hoc checks — are parsed and typechecked on the fly
   against the stdlib (plus the unix directory, for wall-clock
   fixtures), so the typed rules work on self-contained files too. *)

type unit_info = {
  src : string;  (* path used in diagnostics and scoping *)
  unit_name : string;  (* canonical module name, "__" -> "." *)
  structure : Typedtree.structure;
}

exception Error of string  (* IO / parse / type error: exit code 2 *)

(* ------------------------------------------------------------------ *)
(* File collection *)

let normalize path =
  if Canon.starts_with ~prefix:"./" path then
    String.sub path 2 (String.length path - 2)
  else path

let rec collect_ml_files acc path =
  if Sys.is_directory path then begin
    let entries = Sys.readdir path in
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc entry ->
        if entry = "" || Char.equal entry.[0] '.' || String.equal entry "_build"
        then acc
        else collect_ml_files acc (Filename.concat path entry))
      acc entries
  end
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

(* ------------------------------------------------------------------ *)
(* cmt index: source path -> typedtree *)

let rec collect_cmt_files acc path =
  match Sys.is_directory path with
  | true ->
    let entries = Sys.readdir path in
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc entry ->
        if entry = "" then acc
        else collect_cmt_files acc (Filename.concat path entry))
      acc entries
  | false -> if Filename.check_suffix path ".cmt" then path :: acc else acc
  | exception _ -> acc

let build_cmt_index build_dir =
  let index = Hashtbl.create 64 in
  if Sys.file_exists build_dir && Sys.is_directory build_dir then
    List.iter
      (fun cmt_path ->
        match Cmt_format.read_cmt cmt_path with
        | cmt -> (
          match (cmt.Cmt_format.cmt_sourcefile, cmt.Cmt_format.cmt_annots) with
          | Some src, Cmt_format.Implementation structure ->
            let src = normalize src in
            if Filename.check_suffix src ".ml" && not (Hashtbl.mem index src)
            then
              Hashtbl.add index src
                (Canon.normalize_unit cmt.Cmt_format.cmt_modname, structure)
          | _ -> ())
        | exception _ -> ())
      (List.rev (collect_cmt_files [] build_dir));
  index

let default_build_dir () =
  let d = Filename.concat "_build" "default" in
  if Sys.file_exists d && Sys.is_directory d then d else "."

(* ------------------------------------------------------------------ *)
(* On-the-fly typechecking for files without a .cmt *)

let typecheck_env =
  lazy
    (let stdlib = Config.standard_library in
     (* unix/threads live in subdirectories of the stdlib since OCaml 5;
        having them on the load path lets standalone fixtures exercise
        the wall-clock rules. *)
     let extra =
       List.filter
         (fun d -> Sys.file_exists d && Sys.is_directory d)
         [ Filename.concat stdlib "unix"; Filename.concat stdlib "threads" ]
     in
     Clflags.include_dirs := extra @ !Clflags.include_dirs;
     Compmisc.init_path ();
     Compmisc.initial_env ())

let module_name_of_file file =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename file))

let typecheck_file file =
  let env = Lazy.force typecheck_env in
  let source = Source.read_file file in
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  let parsetree = Parse.implementation lexbuf in
  let structure, _sig, _names, _shape, _env =
    Typemod.type_structure env parsetree
  in
  structure

(* ------------------------------------------------------------------ *)
(* Entry point *)

type result = {
  units : unit_info list;
  errors : int;  (* files that failed to parse / typecheck *)
}

let report_exn file exn =
  try Location.report_exception Format.err_formatter exn
  with _ ->
    Printf.eprintf "schedlint: %s: %s\n" file (Printexc.to_string exn)

let load_roots ?build_dir roots =
  let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
  if missing <> [] then
    raise
      (Error
         (String.concat "\n"
            (List.map
               (fun r -> "schedlint: no such file or directory: " ^ r)
               missing)));
  let build_dir =
    match build_dir with Some d -> d | None -> default_build_dir ()
  in
  let index = build_cmt_index build_dir in
  let files =
    List.concat_map
      (fun root -> List.rev (collect_ml_files [] root))
      roots
  in
  let errors = ref 0 in
  let units =
    List.filter_map
      (fun file ->
        let src = normalize file in
        match Hashtbl.find_opt index src with
        | Some (unit_name, structure) -> Some { src; unit_name; structure }
        | None -> (
          match typecheck_file file with
          | structure ->
            Some { src; unit_name = module_name_of_file file; structure }
          | exception exn ->
            incr errors;
            report_exn file exn;
            None))
      files
  in
  { units; errors = !errors }
