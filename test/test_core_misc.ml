open Test_util
module Core = Statsched_core
module Speeds = Core.Speeds
module Mm1 = Core.Mm1
module Least_load = Core.Least_load
module Metrics = Core.Metrics
module Policy = Core.Policy

(* ------------------------------------------------------------------ *)
(* Speeds                                                              *)

let speeds_table3 () =
  Alcotest.(check int) "15 computers" 15 (Array.length Speeds.table3);
  check_float ~eps:1e-12 "aggregate 44" 44.0 (Speeds.total Speeds.table3)

let speeds_two_class () =
  let s = Speeds.two_class ~n_fast:2 ~fast:10.0 ~n_slow:3 ~slow:1.0 in
  check_array ~eps:0.0 "layout" [| 10.0; 10.0; 1.0; 1.0; 1.0 |] s;
  Alcotest.check_raises "empty cluster" (Invalid_argument "Speeds.two_class: empty cluster")
    (fun () -> ignore (Speeds.two_class ~n_fast:0 ~fast:1.0 ~n_slow:0 ~slow:1.0))

let speeds_of_counts () =
  let s = Speeds.of_counts [ (2.0, 2); (1.0, 1) ] in
  check_array ~eps:0.0 "expansion" [| 2.0; 2.0; 1.0 |] s

let speeds_sort_permutation () =
  let s = [| 3.0; 1.0; 2.0 |] in
  let sorted, perm = Speeds.sort_with_permutation s in
  check_array ~eps:0.0 "sorted" [| 1.0; 2.0; 3.0 |] sorted;
  Alcotest.(check (array int)) "permutation" [| 1; 2; 0 |] perm;
  Array.iteri (fun k orig -> check_float "roundtrip" sorted.(k) s.(orig)) perm

let speeds_sort_stable () =
  let s = [| 2.0; 1.0; 2.0; 1.0 |] in
  let _, perm = Speeds.sort_with_permutation s in
  Alcotest.(check (array int)) "stable for equal speeds" [| 1; 3; 0; 2 |] perm

let speeds_of_string () =
  check_array ~eps:0.0 "groups" [| 10.0; 10.0; 1.0; 1.0; 1.0 |]
    (Speeds.of_string "2x10,3x1");
  check_array ~eps:0.0 "plain list" [| 1.0; 2.5 |] (Speeds.of_string "1, 2.5");
  check_array ~eps:0.0 "table 3 notation" Speeds.table3
    (Speeds.of_string "5x1.0,4x1.5,3x2.0,5.0,10,12");
  Alcotest.check_raises "garbage"
    (Invalid_argument "Speeds.of_string: cannot parse \"abc\"") (fun () ->
      ignore (Speeds.of_string "abc"));
  Alcotest.check_raises "negative count"
    (Invalid_argument "Speeds.of_string: cannot parse \"-2x1\"") (fun () ->
      ignore (Speeds.of_string "-2x1"))

let speeds_to_string_roundtrip () =
  Alcotest.(check string) "grouping" "2x10,16x1"
    (Speeds.to_string (Speeds.two_class ~n_fast:2 ~fast:10.0 ~n_slow:16 ~slow:1.0));
  Alcotest.(check string) "singleton" "3.5" (Speeds.to_string [| 3.5 |]);
  List.iter
    (fun s ->
      check_array ~eps:0.0 "roundtrip" s (Speeds.of_string (Speeds.to_string s)))
    [ Speeds.table1; Speeds.table3; [| 2.0; 1.0; 2.0 |] ]

let speeds_validation () =
  Alcotest.check_raises "zero speed"
    (Invalid_argument "Speeds.validate: speeds must be positive and finite") (fun () ->
      Speeds.validate [| 1.0; 0.0 |]);
  Alcotest.check_raises "nan speed"
    (Invalid_argument "Speeds.validate: speeds must be positive and finite") (fun () ->
      Speeds.validate [| Float.nan |])

(* ------------------------------------------------------------------ *)
(* Mm1                                                                 *)

let mm1_single_server () =
  (* Classic M/M/1: T = 1/(mu - lambda). *)
  check_float ~eps:1e-12 "T" (1.0 /. 0.3)
    (Mm1.server_mean_response_time ~mu:1.0 ~lambda:0.7 ~speed:1.0 ~alpha:1.0);
  check_float "saturated T infinite" infinity
    (Mm1.server_mean_response_time ~mu:1.0 ~lambda:1.0 ~speed:1.0 ~alpha:1.0);
  check_float ~eps:1e-12 "utilization" 0.7
    (Mm1.server_utilization ~mu:1.0 ~lambda:0.7 ~speed:1.0 ~alpha:1.0)

let mm1_speed_scales_service () =
  (* A speed-2 computer at the same load has half the response time of a
     speed-1 computer at half the arrival rate... directly: T = 1/(2mu -
     alpha lambda). *)
  check_float ~eps:1e-12 "T for s=2" (1.0 /. (2.0 -. 0.7))
    (Mm1.server_mean_response_time ~mu:1.0 ~lambda:0.7 ~speed:2.0 ~alpha:1.0)

let mm1_ratio_is_mu_times_time () =
  let mu = 0.013 and lambda = 0.3 in
  let speeds = Speeds.table1 in
  let alloc = Core.Allocation.weighted speeds in
  let t = Mm1.mean_response_time ~mu ~lambda ~speeds ~alloc in
  let r = Mm1.mean_response_ratio ~mu ~lambda ~speeds ~alloc in
  check_float ~eps:1e-12 "R = mu T" (mu *. t) r

let mm1_lambda_roundtrip () =
  let speeds = Speeds.table3 in
  let mu = 1.0 /. 76.8 in
  let lambda = Mm1.lambda_of_utilization ~mu ~rho:0.7 ~speeds in
  check_float ~eps:1e-12 "utilization roundtrip" 0.7
    (Mm1.system_utilization ~mu ~lambda ~speeds)

let mm1_equation3_manual () =
  (* T = sum alpha_i / (s_i mu - alpha_i lambda), computed by hand for a
     2-computer system. *)
  let speeds = [| 1.0; 2.0 |] in
  let alloc = [| 0.25; 0.75 |] in
  let mu = 1.0 and lambda = 1.5 in
  let expected =
    (0.25 /. (1.0 -. (0.25 *. 1.5))) +. (0.75 /. (2.0 -. (0.75 *. 1.5)))
  in
  check_float ~eps:1e-12 "equation (3)" expected
    (Mm1.mean_response_time ~mu ~lambda ~speeds ~alloc)

let mm1_predicted_wrapper () =
  let speeds = Speeds.table3 in
  let mu = 1.0 /. 76.8 in
  let alloc = Core.Allocation.weighted speeds in
  let lambda = Mm1.lambda_of_utilization ~mu ~rho:0.7 ~speeds in
  check_float ~eps:1e-12 "wrapper consistency"
    (Mm1.mean_response_time ~mu ~lambda ~speeds ~alloc)
    (Mm1.predicted ~mu ~rho:0.7 ~speeds ~alloc `Mean_response_time)

let mm1_weighted_equalizes_ratios () =
  (* Under weighted allocation every computer has the same utilisation, so
     per-server response *ratios* R_i = mu/(s_i mu - alpha_i lambda) *
     ... equal utilisation makes R_i = 1/(s_i(1-rho)) * s_i = mu/(s_i mu(1-rho)) —
     the response ratio contribution mu/(s_i mu - alpha_i lambda) equals
     1/(s_i (1 - rho)) ... check numerically that utilisations match. *)
  let speeds = Speeds.table1 in
  let mu = 0.5 in
  let lambda = Mm1.lambda_of_utilization ~mu ~rho:0.6 ~speeds in
  let alloc = Core.Allocation.weighted speeds in
  Array.iteri
    (fun i s ->
      check_float ~eps:1e-12
        (Printf.sprintf "rho_%d" i)
        0.6
        (Mm1.server_utilization ~mu ~lambda ~speed:s ~alpha:alloc.(i)))
    speeds

(* ------------------------------------------------------------------ *)
(* Least_load                                                          *)

let ll_selects_fastest_when_empty () =
  let t = Least_load.create Speeds.table1 in
  (* all queues 0: min (0+1)/s is the fastest computer (index 6, speed 10) *)
  Alcotest.(check int) "fastest picked first" 6 (Least_load.select t)

let ll_updates_shift_selection () =
  let t = Least_load.create [| 1.0; 10.0 |] in
  Alcotest.(check int) "fast first" 1 (Least_load.select t);
  (* Send 9 jobs to the fast machine: (9+1)/10 = 1 = (0+1)/1 tie; index
     order breaks to 0. *)
  for _ = 1 to 9 do
    Least_load.job_sent t 1
  done;
  Alcotest.(check int) "slow machine now tied, chosen by index" 0 (Least_load.select t);
  Least_load.job_sent t 1;
  Alcotest.(check int) "slow machine strictly better" 0 (Least_load.select t)

let ll_departures_rebalance () =
  let t = Least_load.create [| 1.0; 1.0 |] in
  Least_load.job_sent t 0;
  Alcotest.(check int) "other machine now emptier" 1 (Least_load.select t);
  Least_load.departure_recorded t 0;
  Alcotest.(check int) "tie again after departure" 0 (Least_load.select t)

let ll_availability_mask () =
  let t = Least_load.create [| 1.0; 1.0; 1.0 |] in
  Least_load.job_sent t 0;
  (* Computer 0 carries a job, so 1 and 2 tie for least load... *)
  Alcotest.(check int) "least loaded by index" 1 (Least_load.select t);
  (* ...but marking them down forces the choice onto the loaded one. *)
  Least_load.set_available t 1 false;
  Least_load.set_available t 2 false;
  Alcotest.(check bool) "mask readable" false (Least_load.is_available t 1);
  Alcotest.(check int) "only available computer chosen" 0 (Least_load.select t);
  Least_load.set_available t 2 true;
  Alcotest.(check int) "recovered computer wins again" 2 (Least_load.select t);
  (* With every computer down the scheduler must still pick someone. *)
  Least_load.set_available t 0 false;
  Least_load.set_available t 2 false;
  Alcotest.(check int) "all-down falls back to all" 1 (Least_load.select t);
  (* Sampling only probes available computers. *)
  let g = rng () in
  Least_load.set_available t 0 true;
  for _ = 1 to 50 do
    Alcotest.(check int) "sampled selection respects the mask" 0
      (Least_load.select_sampled ~rng:g t ~d:2)
  done

let ll_rng_threading_changes_ties_only () =
  (* Regression for the tie-breaking fix: an rng must only matter when
     there is an actual tie — and without one, selection stays at the
     lowest index regardless of how often it is called. *)
  let g = rng () in
  let t = Least_load.create [| 2.0; 1.0; 1.0 |] in
  for _ = 1 to 20 do
    Alcotest.(check int) "unique minimum ignores the rng" 0
      (Least_load.select ~rng:g t)
  done;
  let tie = Least_load.create [| 1.0; 1.0 |] in
  let seen = Array.make 2 0 in
  for _ = 1 to 200 do
    let i = Least_load.select ~rng:g tie in
    seen.(i) <- seen.(i) + 1
  done;
  Alcotest.(check bool) "both tied computers get picked" true
    (seen.(0) > 0 && seen.(1) > 0);
  for _ = 1 to 20 do
    Alcotest.(check int) "no rng pins the lowest index" 0
      (Least_load.select tie)
  done

let ll_no_negative_queue () =
  let t = Least_load.create [| 1.0 |] in
  Least_load.departure_recorded t 0;
  Least_load.departure_recorded t 0;
  Alcotest.(check int) "clamped at zero" 0 (Least_load.load_index t 0)

let ll_normalized_load () =
  let t = Least_load.create [| 4.0 |] in
  Least_load.job_sent t 0;
  check_float ~eps:1e-12 "(q+1)/s" 0.5 (Least_load.normalized_load t 0)

let ll_random_ties_uniform () =
  let t = Least_load.create [| 1.0; 1.0; 1.0 |] in
  let g = rng () in
  let c = Array.make 3 0 in
  for _ = 1 to 30_000 do
    let i = Least_load.select ~rng:g t in
    c.(i) <- c.(i) + 1
  done;
  Array.iteri
    (fun i count ->
      Alcotest.(check bool)
        (Printf.sprintf "tie %d roughly uniform (%d)" i count)
        true
        (abs (count - 10_000) < 1_000))
    c

let ll_reset () =
  let t = Least_load.create [| 1.0; 2.0 |] in
  Least_load.job_sent t 0;
  Least_load.job_sent t 1;
  Least_load.reset t;
  Alcotest.(check int) "queues cleared" 0 (Least_load.load_index t 0);
  Alcotest.(check int) "queues cleared" 0 (Least_load.load_index t 1)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let metrics_deviation_zero_when_exact () =
  check_float "exact split" 0.0
    (Metrics.deviation ~expected:[| 0.5; 0.25; 0.25 |] ~counts:[| 2; 1; 1 |])

let metrics_deviation_known () =
  (* expected (0.5, 0.5), actual (1, 0): (0.5)^2 + (0.5)^2 = 0.5 *)
  check_float ~eps:1e-12 "known deviation" 0.5
    (Metrics.deviation ~expected:[| 0.5; 0.5 |] ~counts:[| 4; 0 |])

let metrics_deviation_empty_interval () =
  check_float ~eps:1e-12 "no dispatches" 0.5
    (Metrics.deviation ~expected:[| 0.5; 0.5 |] ~counts:[| 0; 0 |])

let metrics_deviation_mismatch () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Metrics.deviation: length mismatch") (fun () ->
      ignore (Metrics.deviation ~expected:[| 1.0 |] ~counts:[| 1; 2 |]))

let metrics_actual_fractions () =
  check_array ~eps:1e-12 "fractions" [| 0.25; 0.75 |]
    (Metrics.actual_fractions [| 1; 3 |]);
  check_array ~eps:0.0 "all zeros when empty" [| 0.0; 0.0 |]
    (Metrics.actual_fractions [| 0; 0 |])

(* ------------------------------------------------------------------ *)
(* Policy                                                              *)

let policy_names () =
  Alcotest.(check string) "WRAN" "WRAN" (Policy.name Policy.wran);
  Alcotest.(check string) "ORAN" "ORAN" (Policy.name Policy.oran);
  Alcotest.(check string) "WRR" "WRR" (Policy.name Policy.wrr);
  Alcotest.(check string) "ORR" "ORR" (Policy.name Policy.orr);
  Alcotest.(check string) "estimated" "ORR@0.77" (Policy.name (Policy.orr_estimated 0.77))

let policy_matrix_complete () =
  Alcotest.(check int) "four static policies" 4 (List.length Policy.all_static);
  let names = List.map fst Policy.all_static in
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " present") true (List.mem n names))
    [ "WRAN"; "ORAN"; "WRR"; "ORR" ]

let policy_allocation_dispatch () =
  let s = Speeds.table1 in
  let weighted = Policy.allocation_of Policy.wrr ~rho:0.7 s in
  check_array ~eps:1e-12 "weighted policy allocation" (Core.Allocation.weighted s) weighted;
  let opt = Policy.allocation_of Policy.orr ~rho:0.7 s in
  check_array ~eps:1e-12 "optimized policy allocation"
    (Core.Allocation.optimized ~rho:0.7 s)
    opt

let policy_estimated_clamps () =
  let s = Speeds.table1 in
  (* rho_hat >= 1 degrades to weighted (paper: ORR converges to WRR). *)
  let alloc = Policy.allocation_of (Policy.orr_estimated 1.05) ~rho:0.9 s in
  check_array ~eps:1e-12 "degenerates to weighted" (Core.Allocation.weighted s) alloc

let policy_dispatcher_kinds () =
  let s = [| 0.5; 0.5 |] in
  let rr = Policy.dispatcher_of Policy.orr ~rng:(rng ()) s in
  Alcotest.(check string) "round robin dispatcher" "round-robin" (Core.Dispatch.name rr);
  let rand = Policy.dispatcher_of Policy.oran ~rng:(rng ()) s in
  Alcotest.(check string) "random dispatcher" "random" (Core.Dispatch.name rand)

let suite =
  [
    test "speeds: table 3 configuration" speeds_table3;
    test "speeds: two-class constructor" speeds_two_class;
    test "speeds: of_counts" speeds_of_counts;
    test "speeds: sort with permutation" speeds_sort_permutation;
    test "speeds: stable sort" speeds_sort_stable;
    test "speeds: of_string parser" speeds_of_string;
    test "speeds: to_string roundtrip" speeds_to_string_roundtrip;
    test "speeds: validation" speeds_validation;
    test "mm1: single server closed form" mm1_single_server;
    test "mm1: speed scales service rate" mm1_speed_scales_service;
    test "mm1: R = mu*T" mm1_ratio_is_mu_times_time;
    test "mm1: lambda/utilization roundtrip" mm1_lambda_roundtrip;
    test "mm1: equation (3) by hand" mm1_equation3_manual;
    test "mm1: predicted wrapper" mm1_predicted_wrapper;
    test "mm1: weighted allocation equalises utilisations" mm1_weighted_equalizes_ratios;
    test "least-load: fastest first on empty system" ll_selects_fastest_when_empty;
    test "least-load: queue growth shifts selection" ll_updates_shift_selection;
    test "least-load: departures rebalance" ll_departures_rebalance;
    test "least-load: queue never negative" ll_no_negative_queue;
    test "least-load: normalized load" ll_normalized_load;
    test "least-load: random tie-breaking uniform" ll_random_ties_uniform;
    test "least-load: availability mask" ll_availability_mask;
    test "least-load: rng affects ties only" ll_rng_threading_changes_ties_only;
    test "least-load: reset" ll_reset;
    test "metrics: deviation zero for exact split" metrics_deviation_zero_when_exact;
    test "metrics: deviation known value" metrics_deviation_known;
    test "metrics: deviation of empty interval" metrics_deviation_empty_interval;
    test "metrics: deviation length mismatch" metrics_deviation_mismatch;
    test "metrics: actual fractions" metrics_actual_fractions;
    test "policy: canonical names" policy_names;
    test "policy: Table 2 matrix complete" policy_matrix_complete;
    test "policy: allocation delegation" policy_allocation_dispatch;
    test "policy: estimated rho >= 1 degrades to weighted" policy_estimated_clamps;
    test "policy: dispatcher kinds" policy_dispatcher_kinds;
  ]
