(** Continuous uniform distribution U(a, b).

    Used by the Dynamic Least-Load baseline: a computer detects a job
    departure after U(0, 1) seconds (Section 4.2). *)

val sample : a:float -> b:float -> Statsched_prng.Rng.t -> float
(** One variate of U([a], [b]).  Requires [a <= b]. *)

val create : a:float -> b:float -> Distribution.t
(** U([a], [b]): mean [(a+b)/2], variance [(b−a)²/12].

    @raise Invalid_argument if [a > b]. *)
