(* Source-level concerns: path scoping of rules and the
   "(* schedlint: allow Rn *)" escape-hatch markers.

   A marker on line L suppresses matching diagnostics on L and L+1.
   Several markers on the same line merge their rule lists (a
   Hashtbl.replace in the original implementation dropped all but the
   last marker).  Marker use is tracked so R10 can report markers that
   suppress nothing. *)

(* ------------------------------------------------------------------ *)
(* Path scoping *)

let components path =
  List.filter (fun c -> c <> "" && c <> ".") (String.split_on_char '/' path)

let in_lib file = List.mem "lib" (components file)

let under2 a b file =
  let rec scan = function
    | x :: y :: _ when String.equal x a && String.equal y b -> true
    | _ :: rest -> scan rest
    | [] -> false
  in
  scan (components file)

let in_prng file = under2 "lib" "prng" file
let in_par file = under2 "lib" "par" file

(* Obs.Clock is the single sanctioned wall-clock module. *)
let is_clock file =
  match List.rev (components file) with
  | "clock.ml" :: "obs" :: _ -> true
  | _ -> false

(* Modules whose functions never carry determinism taint (R7): the
   seeded RNG layer, the domain pool, and the sanctioned clock. *)
let taint_sanctioned file = in_prng file || in_par file || is_clock file

(* ------------------------------------------------------------------ *)
(* Allow markers *)

let marker = "schedlint: allow"

let contains_at haystack needle i =
  let n = String.length needle in
  i + n <= String.length haystack && String.equal (String.sub haystack i n) needle

let find_substring_from haystack needle start =
  let n = String.length haystack in
  let rec go i =
    if i >= n then None
    else if contains_at haystack needle i then Some i
    else go (i + 1)
  in
  go start

type t = {
  file : string;
  by_line : (int, string list) Hashtbl.t;  (* 1-based line -> allowed rules *)
  used : (int * string, unit) Hashtbl.t;  (* (marker line, rule word) *)
}

let rule_words =
  "all" :: List.map String.lowercase_ascii Diag.rule_ids

let words_of rest =
  String.split_on_char ' '
    (String.map
       (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9') as c -> c | _ -> ' ')
       rest)

(* Rules named by one marker comment starting at [j] in [line]. *)
let marker_rules line j =
  let after = j + String.length marker in
  let rest = String.sub line after (String.length line - after) in
  (* Stop at the end of the enclosing comment so a second marker on the
     same line is parsed separately. *)
  let rest =
    match find_substring_from rest "*)" 0 with
    | Some k -> String.sub rest 0 k
    | None -> rest
  in
  List.filter_map
    (fun w ->
      let w = String.lowercase_ascii w in
      if List.mem w rule_words then Some w else None)
    (words_of rest)

let scan_line tbl lineno line =
  let rec go start =
    match find_substring_from line marker start with
    | None -> ()
    | Some j ->
      let rules = marker_rules line j in
      if rules <> [] then begin
        (* Merge with any marker already seen on this line. *)
        let prev = Option.value ~default:[] (Hashtbl.find_opt tbl lineno) in
        let merged =
          prev @ List.filter (fun r -> not (List.mem r prev)) rules
        in
        Hashtbl.replace tbl lineno merged
      end;
      go (j + String.length marker)
  in
  go 0

(* Extract the comments (text, start line) with the real lexer, so the
   marker syntax quoted inside a string literal — schedlint's own help
   text, test fixtures — is not mistaken for a live marker.  Falls back
   to whole-source scanning when the file does not lex. *)
let comments_of ~file source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  Lexer.init ();
  (try
     while
       match Lexer.token lexbuf with Parser.EOF -> false | _ -> true
     do
       ()
     done
   with _ -> ());
  List.map
    (fun (text, (loc : Location.t)) ->
      (text, loc.loc_start.Lexing.pos_lnum))
    (Lexer.comments ())

let of_string ~file source =
  let by_line = Hashtbl.create 8 in
  (* A file that fails to lex also fails to typecheck, so losing its
     markers is moot — no rule ever runs on it. *)
  List.iter
    (fun (text, start_line) ->
      List.iteri
        (fun i line -> scan_line by_line (start_line + i) line)
        (String.split_on_char '\n' text))
    (comments_of ~file source);
  { file; by_line; used = Hashtbl.create 8 }

let read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load file =
  match read_file file with
  | source -> of_string ~file source
  | exception _ -> of_string ~file ""

(* Does a marker at [mline] cover [rule]?  Marks the entry used. *)
let covers t mline rule =
  match Hashtbl.find_opt t.by_line mline with
  | None -> false
  | Some rules ->
    let r = String.lowercase_ascii rule in
    if List.mem r rules then begin
      Hashtbl.replace t.used (mline, r) ();
      true
    end
    else if List.mem "all" rules then begin
      Hashtbl.replace t.used (mline, "all") ();
      true
    end
    else false

let allowed t ~line rule = covers t line rule || covers t (line - 1) rule

(* Marker entries that never suppressed anything: (line, rule word). *)
let stale t =
  Hashtbl.fold
    (fun line rules acc ->
      List.fold_left
        (fun acc r ->
          if Hashtbl.mem t.used (line, r) then acc else (line, r) :: acc)
        acc rules)
    t.by_line []
  |> List.sort (fun (a, x) (b, y) ->
         match Int.compare a b with 0 -> String.compare x y | c -> c)
