(* Multicore experiment sweep.

   Reproduces the Figure 5 load sweep using the OCaml 5 domain-parallel
   replication runner: each data point's independent replications run on
   separate cores, with results bitwise identical to the sequential
   runner (the RNG substreams don't care which domain draws them).

   Run with:  dune exec examples/parallel_sweep.exe *)

module Core = Statsched_core
module Cluster = Statsched_cluster
module E = Statsched_experiments

let () =
  let speeds = Core.Speeds.table3 in
  let scale = { E.Config.horizon = 200_000.0; warmup = 50_000.0; reps = 6 } in
  Printf.printf
    "Figure 5 sweep on %d domains (%d replications per point, %g s each)\n\n"
    (Domain.recommended_domain_count ())
    scale.E.Config.reps scale.E.Config.horizon;
  let t0 = Unix.gettimeofday () in
  let rows =
    List.map
      (fun rho ->
        let workload = Cluster.Workload.paper_default ~rho ~speeds in
        let point policy =
          E.Runner.measure_parallel ~scale
            (E.Runner.make_spec ~speeds ~workload
               ~scheduler:(Cluster.Scheduler.static policy) ())
        in
        (rho, point Core.Policy.orr, point Core.Policy.wrr))
      [ 0.3; 0.5; 0.7; 0.9 ]
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  print_string
    (E.Report.render
       ~header:[ "utilization"; "ORR resp. ratio"; "WRR resp. ratio"; "ORR gain" ]
       ~rows:
         (List.map
            (fun (rho, orr, wrr) ->
              let m p =
                p.E.Runner.mean_response_ratio.Statsched_stats.Confidence.mean
              in
              [
                E.Report.Percent rho;
                E.Report.Interval orr.E.Runner.mean_response_ratio;
                E.Report.Interval wrr.E.Runner.mean_response_ratio;
                E.Report.Percent (1.0 -. (m orr /. m wrr));
              ])
            rows));
  Printf.printf "\nwall time: %.1f s\n" elapsed
