(* Replicated heterogeneous web-server selection.

   The paper's conclusion points at exactly this application: a DNS or
   HTTP front end spreading requests over replicated servers of different
   capacities (their refs [4] and [6] use simple weighted allocation).
   This example models a web farm of three server generations serving a
   bursty request stream with heavy-tailed response sizes, and compares
   the simple weighted scheme against the optimized one at several load
   levels — including the low-load regime where the optimization is most
   valuable (old machines are parked entirely).

   Run with:  dune exec examples/web_cluster.exe *)

module Core = Statsched_core
module Cluster = Statsched_cluster
module Dist = Statsched_dist
module E = Statsched_experiments

let () =
  (* 12 servers across three hardware generations.  Speeds are relative:
     the newest boxes serve 6x faster than the oldest. *)
  let speeds = Core.Speeds.of_counts [ (1.0, 6); (3.0, 4); (6.0, 2) ] in
  Printf.printf
    "Web farm: 6 old (1x), 4 mid (3x), 2 new (6x) servers; aggregate %g\n\n"
    (Core.Speeds.total speeds);

  (* Request service demand: heavy-tailed (most pages are cheap, a few
     search/report requests are enormous).  Mean ~0.13 s of speed-1 work. *)
  let size =
    Dist.Bounded_pareto.create
      { Dist.Bounded_pareto.k = 0.02; p = 100.0; alpha = 1.1 }
  in
  Printf.printf "request size: %s, mean %.3f s\n" (Dist.Distribution.name size)
    (Dist.Distribution.mean size);

  let header = [ "load"; "scheme"; "mean resp. ratio"; "fairness"; "old boxes used?" ] in
  let rows = ref [] in
  List.iter
    (fun rho ->
      let mean_size = Dist.Distribution.mean size in
      let lambda = rho *. Core.Speeds.total speeds /. mean_size in
      let interarrival = Dist.Hyperexponential.fit_cv ~mean:(1.0 /. lambda) ~cv:3.0 in
      let workload = Cluster.Workload.create ~interarrival ~size () in
      let simulate policy =
        let cfg =
          Cluster.Simulation.default_config ~horizon:100_000.0 ~speeds ~workload
            ~scheduler:(Cluster.Scheduler.static policy) ()
        in
        Cluster.Simulation.run cfg
      in
      List.iter
        (fun (label, policy) ->
          let r = simulate policy in
          let old_used =
            r.Cluster.Simulation.dispatch_fractions.(0) > 0.001
          in
          rows :=
            [
              E.Report.Percent rho;
              E.Report.Text label;
              E.Report.Float
                r.Cluster.Simulation.metrics.Core.Metrics.mean_response_ratio;
              E.Report.Float r.Cluster.Simulation.metrics.Core.Metrics.fairness;
              E.Report.Text (if old_used then "yes" else "no (parked)");
            ]
            :: !rows)
        [ ("weighted RR", Core.Policy.wrr); ("optimized RR", Core.Policy.orr) ])
    [ 0.2; 0.5; 0.8 ];
  print_string (E.Report.render ~header ~rows:(List.rev !rows));
  print_newline ();
  Printf.printf
    "At 20%% load the optimizer parks the six old servers entirely and still\n\
     wins on both latency and fairness; by 80%% load every box is needed and\n\
     the two schemes converge — exactly the behaviour Section 2.3 predicts.\n"
