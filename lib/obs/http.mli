(** Minimal dependency-free HTTP/1.1 server for live telemetry.

    A {!t} owns a loopback TCP listening socket and a background
    systhread that accepts one connection at a time, parses the request
    line, and answers from a user routing callback.  It is deliberately
    tiny: [GET] only, [Connection: close] on every response, no keep-
    alive, no TLS — just enough to let Prometheus or [curl] scrape a
    running simulation.

    Because OCaml systhreads share one domain and the accept/read/write
    syscalls release the runtime lock, serving never runs concurrently
    with simulation code at the machine level: the routing callback
    observes a consistent heap and cannot perturb the run (it must not
    mutate simulation state or draw random numbers). *)

type t

type response = {
  status : int;  (** e.g. [200], [404] *)
  content_type : string;  (** e.g. ["text/plain; version=0.0.4"] *)
  body : string;
}

val text : ?status:int -> string -> response
(** [text body] is a [text/plain; charset=utf-8] response (default 200). *)

val json : ?status:int -> string -> response
(** [json body] is an [application/json] response (default 200). *)

val serve : ?addr:string -> port:int -> (string -> response option) -> t
(** [serve ~port routes] binds [addr] (default ["127.0.0.1"]) : [port]
    ([port = 0] picks an ephemeral port — see {!port}), starts the
    accept thread, and answers each [GET path] request with
    [routes path]; [None] becomes a 404.  Non-GET methods get a 405 and
    malformed requests a 400.  A routing callback that raises yields a
    500 to the client and keeps the server alive.

    @raise Unix.Unix_error if the address can't be bound (e.g. port in
    use). *)

val port : t -> int
(** The bound port — the actual one when [serve] was given port 0. *)

val stop : t -> unit
(** Close the listening socket and join the accept thread.  In-flight
    responses finish; subsequent connections are refused.  Idempotent. *)
