(* Join-Idle-Queue state, laid out as flat arrays indexed by computer.

   The idle stacks are intrusive: one segment of [stacks] per speed
   class (classes sorted by decreasing speed, so "fastest idle
   computer" is the first non-empty segment), with [pos.(i)] giving
   computer [i]'s slot in its segment or -1 when it is not idle.
   Push/pop/remove are all O(1) swap-and-update operations — no list
   cells, no allocation.

   The no-idle fallback is Walker's alias table over the speed vector:
   a speed-weighted random destination in O(1), so a burst that drains
   the idle stacks degrades to weighted-random dispatching rather than
   to a scan. *)
type t = {
  speeds : float array;
  queue : int array;  (* believed jobs at each computer *)
  available : bool array;
  class_of : int array;  (* computer -> speed class, fastest class 0 *)
  class_start : int array;  (* segment offsets into [stacks], n_classes + 1 *)
  stack_len : int array;  (* live idle entries per class segment *)
  stacks : int array;  (* segmented idle stacks (computer indices) *)
  pos : int array;  (* computer -> offset within its segment, -1 = not idle *)
  mutable idle_total : int;
  alias : Walker_alias.t;  (* speed-weighted fallback sampler *)
  n_classes : int;
}

let[@inline] push_idle t i =
  if t.pos.(i) < 0 then begin
    let c = t.class_of.(i) in
    let slot = t.stack_len.(c) in
    t.stacks.(t.class_start.(c) + slot) <- i;
    t.pos.(i) <- slot;
    t.stack_len.(c) <- slot + 1;
    t.idle_total <- t.idle_total + 1
  end

let[@inline] remove_idle t i =
  let slot = t.pos.(i) in
  if slot >= 0 then begin
    let c = t.class_of.(i) in
    let last = t.stack_len.(c) - 1 in
    let base = t.class_start.(c) in
    let moved = t.stacks.(base + last) in
    t.stacks.(base + slot) <- moved;
    t.pos.(moved) <- slot;
    t.stack_len.(c) <- last;
    t.pos.(i) <- -1;
    t.idle_total <- t.idle_total - 1
  end

let create speeds =
  Speeds.validate speeds;
  let n = Array.length speeds in
  let speeds = Array.copy speeds in
  (* Distinct speeds, fastest first: class 0 is the preferred pool. *)
  let distinct =
    Array.to_list speeds |> List.sort_uniq Float.compare |> List.rev
    |> Array.of_list
  in
  let n_classes = Array.length distinct in
  let class_of =
    Array.map
      (fun s ->
        let c = ref 0 in
        Array.iteri (fun k d -> if Float.equal d s then c := k) distinct;
        !c)
      speeds
  in
  let sizes = Array.make n_classes 0 in
  Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) class_of;
  let class_start = Array.make (n_classes + 1) 0 in
  for c = 0 to n_classes - 1 do
    class_start.(c + 1) <- class_start.(c) + sizes.(c)
  done;
  let alias = Walker_alias.create speeds in
  let t =
    {
      speeds;
      queue = Array.make n 0;
      available = Array.make n true;
      class_of;
      class_start;
      stack_len = Array.make n_classes 0;
      stacks = Array.make n 0;
      pos = Array.make n (-1);
      idle_total = 0;
      alias;
      n_classes;
    }
  in
  (* Everything starts empty, hence idle: push in ascending index order
     so the initial stacks are deterministic. *)
  for i = 0 to n - 1 do
    push_idle t i
  done;
  t

(* Fastest non-empty idle stack, top entry (most recently idled — the
   classic JIQ choice, and the cache-warm one).  When no computer is
   idle, fall back to a speed-weighted random destination via the alias
   table; a handful of redraws skips unavailable computers without
   turning the fallback into a scan. *)
let[@schedsim.hot] select ~rng t =
  if t.idle_total > 0 then begin
    let c = ref 0 in
    while t.stack_len.(!c) = 0 do
      incr c
    done;
    t.stacks.(t.class_start.(!c) + t.stack_len.(!c) - 1)
  end
  else begin
    let n = Array.length t.speeds in
    let chosen = ref (-1) in
    let tries = ref 0 in
    let drawing = ref true in
    while !drawing do
      let c = Walker_alias.draw t.alias rng in
      chosen := c;
      incr tries;
      if t.available.(c) || !tries >= 16 then drawing := false
    done;
    if t.available.(!chosen) then !chosen
    else begin
      (* Rare: persistent bad luck or everything down — first available
         computer, or the last draw when none is. *)
      let found = ref (-1) in
      let i = ref 0 in
      while !found < 0 && !i < n do
        if t.available.(!i) then found := !i;
        incr i
      done;
      if !found >= 0 then !found else !chosen
    end
  end

let job_sent t i =
  remove_idle t i;
  t.queue.(i) <- t.queue.(i) + 1

let departure_recorded t i =
  if t.queue.(i) > 0 then begin
    t.queue.(i) <- t.queue.(i) - 1;
    if t.queue.(i) = 0 && t.available.(i) then push_idle t i
  end

let set_available t i up =
  if t.available.(i) <> up then begin
    t.available.(i) <- up;
    if not up then remove_idle t i
    else if t.queue.(i) = 0 then push_idle t i
  end

let is_available t i = t.available.(i)

let load_index t i = t.queue.(i)

let idle_count t = t.idle_total

let reset t =
  let n = Array.length t.speeds in
  Array.fill t.queue 0 n 0;
  Array.fill t.pos 0 n (-1);
  Array.fill t.stack_len 0 t.n_classes 0;
  t.idle_total <- 0;
  for i = 0 to n - 1 do
    if t.available.(i) then push_idle t i
  done
