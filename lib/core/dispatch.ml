module Rng = Statsched_prng.Rng

type t = {
  name : string;
  fractions : float array;
  select_fn : unit -> int;
  reset_fn : unit -> unit;
}

let select t = t.select_fn ()
let name t = t.name
let fractions t = Array.copy t.fractions
let reset t = t.reset_fn ()

let validate_fractions alpha =
  let n = Array.length alpha in
  if n = 0 then invalid_arg "Dispatch: empty fractions";
  let sum = ref 0.0 in
  Array.iter
    (fun a ->
      if not (Float.is_finite a) || a < 0.0 then
        invalid_arg "Dispatch: fractions must be non-negative and finite";
      sum := !sum +. a)
    alpha;
  if abs_float (!sum -. 1.0) > 1e-9 then
    invalid_arg "Dispatch: fractions must sum to 1"

let random ~rng alpha =
  validate_fractions alpha;
  let alpha = Array.copy alpha in
  let n = Array.length alpha in
  let cum = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. alpha.(i);
    cum.(i) <- !acc
  done;
  cum.(n - 1) <- 1.0;
  let select_fn () =
    let u = Rng.float rng in
    (* Binary search for the first cumulative value strictly above u. *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if u < cum.(mid) then hi := mid else lo := mid + 1
    done;
    !lo
  in
  { name = "random"; fractions = alpha; select_fn; reset_fn = (fun () -> ()) }

(* Walker's alias method: split each probability cell into at most two
   donors so that a uniform cell index plus one biased coin reproduces the
   target distribution exactly. *)
let random_alias ~rng alpha =
  validate_fractions alpha;
  let alpha = Array.copy alpha in
  let n = Array.length alpha in
  let prob = Array.make n 1.0 in
  let alias = Array.make n 0 in
  let scaled = Array.map (fun a -> a *. float_of_int n) alpha in
  let small = ref [] and large = ref [] in
  Array.iteri
    (fun i p -> if p < 1.0 then small := i :: !small else large := i :: !large)
    scaled;
  let rec pair () =
    match (!small, !large) with
    | s :: srest, l :: lrest ->
      prob.(s) <- scaled.(s);
      alias.(s) <- l;
      scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.0;
      small := srest;
      if scaled.(l) < 1.0 then begin
        large := lrest;
        small := l :: !small
      end;
      pair ()
    | s :: rest, [] ->
      (* numerical leftovers: cell keeps itself *)
      prob.(s) <- 1.0;
      small := rest;
      pair ()
    | [], l :: rest ->
      prob.(l) <- 1.0;
      large := rest;
      pair ()
    | [], [] -> ()
  in
  pair ();
  let select_fn () =
    let i = Rng.int rng n in
    if Rng.float rng < prob.(i) then i else alias.(i)
  in
  { name = "random-alias"; fractions = alpha; select_fn; reset_fn = (fun () -> ()) }

(* Algorithm 2, parameterised for the ablation variants. *)
let round_robin_impl ~variant_name ~guard ~tie_by_norassign alpha =
  validate_fractions alpha;
  let alpha = Array.copy alpha in
  let n = Array.length alpha in
  let assign = Array.make n 0 in
  let next = Array.make n (if guard then 1.0 else 0.0) in
  let reset_fn () =
    Array.fill assign 0 n 0;
    Array.fill next 0 n (if guard then 1.0 else 0.0)
  in
  let select_fn () =
    let sel = ref (-1) in
    let minnext = ref infinity in
    let norassign = ref infinity in
    for i = 0 to n - 1 do
      if alpha.(i) > 0.0 then begin
        let candidate_nor = float_of_int (assign.(i) + 1) /. alpha.(i) in
        if !sel = -1 || next.(i) < !minnext then begin
          sel := i;
          minnext := next.(i);
          norassign := candidate_nor
        end
        else if Float.equal next.(i) !minnext && tie_by_norassign && candidate_nor < !norassign
        then begin
          sel := i;
          norassign := candidate_nor
        end
      end
    done;
    let s = !sel in
    assert (s >= 0);
    if guard && assign.(s) = 0 then next.(s) <- 0.0;
    next.(s) <- next.(s) +. (1.0 /. alpha.(s));
    assign.(s) <- assign.(s) + 1;
    for i = 0 to n - 1 do
      if assign.(i) <> 0 then next.(i) <- next.(i) -. 1.0
    done;
    s
  in
  { name = variant_name; fractions = alpha; select_fn; reset_fn }

let round_robin alpha =
  round_robin_impl ~variant_name:"round-robin" ~guard:true ~tie_by_norassign:true alpha

let round_robin_no_guard alpha =
  round_robin_impl ~variant_name:"round-robin/no-guard" ~guard:false
    ~tie_by_norassign:true alpha

let round_robin_index_ties alpha =
  round_robin_impl ~variant_name:"round-robin/index-ties" ~guard:true
    ~tie_by_norassign:false alpha

let smooth_weighted alpha =
  validate_fractions alpha;
  let alpha = Array.copy alpha in
  let n = Array.length alpha in
  let current = Array.make n 0.0 in
  let select_fn () =
    let best = ref 0 in
    for i = 0 to n - 1 do
      current.(i) <- current.(i) +. alpha.(i);
      if current.(i) > current.(!best) then best := i
    done;
    current.(!best) <- current.(!best) -. 1.0;
    !best
  in
  {
    name = "smooth-wrr";
    fractions = alpha;
    select_fn;
    reset_fn = (fun () -> Array.fill current 0 n 0.0);
  }

let golden_ratio alpha =
  validate_fractions alpha;
  let alpha = Array.copy alpha in
  let n = Array.length alpha in
  let cum = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. alpha.(i);
    cum.(i) <- !acc
  done;
  cum.(n - 1) <- 1.0;
  let inv_phi = 2.0 /. (1.0 +. sqrt 5.0) in
  let u = ref 0.0 in
  let select_fn () =
    u := !u +. inv_phi;
    if !u >= 1.0 then u := !u -. 1.0;
    let x = !u in
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if x < cum.(mid) then hi := mid else lo := mid + 1
    done;
    !lo
  in
  {
    name = "golden-ratio";
    fractions = alpha;
    select_fn;
    reset_fn = (fun () -> u := 0.0);
  }

let strict_cycle n =
  if n <= 0 then invalid_arg "Dispatch.strict_cycle: n <= 0";
  let pos = ref 0 in
  let select_fn () =
    let s = !pos in
    pos := (!pos + 1) mod n;
    s
  in
  {
    name = "cycle";
    fractions = Array.make n (1.0 /. float_of_int n);
    select_fn;
    reset_fn = (fun () -> pos := 0);
  }
