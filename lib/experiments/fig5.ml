module Cluster = Statsched_cluster
module Core = Statsched_core

let default_utilizations = [ 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9 ]

type t = (float * (string * Runner.point) list) list

let run ?(scale = Config.default_scale) ?seed ?jobs ?(speeds = Core.Speeds.table3)
    ?(utilizations = default_utilizations)
    ?(schedulers = Schedulers.with_least_load) () =
  List.map
    (fun rho ->
      let workload = Cluster.Workload.paper_default ~rho ~speeds in
      (rho, Sweep.over_schedulers ?seed ?jobs ~scale ~schedulers ~speeds ~workload ()))
    utilizations

let sweeps t =
  List.map
    (fun metric ->
      Sweep.sweep_of_rows ~title:"Figure 5: effect of system load"
        ~xlabel:"utilization" ~metric t)
    [ `Ratio; `Fairness ]

let to_report t = String.concat "\n" (List.map Report.render_sweep (sweeps t))
