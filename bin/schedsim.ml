(* schedsim — command-line front end for the statsched library.

   Sub-commands:
     alloc      compute workload allocations for a speed vector
     dispatch   show a dispatch sequence for given fractions
     run        simulate one cluster/scheduler combination
     compare    simulate all five schedulers on one configuration
     experiment regenerate a paper table/figure (table1 fig2 ... all) *)

open Cmdliner
module Core = Statsched_core
module Cluster = Statsched_cluster
module E = Statsched_experiments
module Rng = Statsched_prng.Rng
module Scenario = Statsched_simcheck.Scenario

(* Surface a malformed STATSCHED_JOBS before any section banner is
   printed, so the multi-minute commands fail with a single clean line. *)
let validate_jobs () = ignore (Statsched_par.Par.default_jobs ())

(* ------------------------------------------------------------------ *)
(* Shared argument definitions                                         *)

let speeds_arg =
  let parse s =
    try Ok (Core.Speeds.of_string s)
    with Invalid_argument _ -> Error (`Msg (Printf.sprintf "invalid speed list %S" s))
  in
  let print fmt s = Format.fprintf fmt "%s" (Core.Speeds.to_string s) in
  Arg.conv (parse, print)

let speeds_t =
  Arg.(
    value
    & opt speeds_arg Core.Speeds.table3
    & info [ "s"; "speeds" ] ~docv:"SPEEDS"
        ~doc:
          "Comma-separated computer speeds, with NxS groups allowed (e.g. \
           '1,1,2,10' or '5x1.0,4x1.5,1x12').  Default: the paper's Table 3 \
           configuration.")

let rho_t =
  Arg.(
    value
    & opt float 0.7
    & info [ "u"; "utilization" ] ~docv:"RHO" ~doc:"Target system utilization in (0,1).")

let seed_t =
  Arg.(
    value
    & opt int64 (Int64.of_int 20260705)
    & info [ "seed" ] ~docv:"SEED" ~doc:"Root random seed.")

let jobs_t =
  let jobs_conv =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | Some _ | None ->
        Error (`Msg (Printf.sprintf "JOBS must be a positive integer (got %S)" s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(
    value
    & opt (some jobs_conv) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Fan replications out over $(docv) OCaml domains (default: the \
           $(b,STATSCHED_JOBS) environment variable, else the machine's \
           recommended domain count; 1 = fully sequential). Replication $(i,k) \
           always draws from RNG substream $(i,k), so the output is \
           bit-identical for every $(docv).")

let scale_t =
  let scale_conv =
    let parse = function
      | "quick" -> Ok E.Config.quick
      | "default" -> Ok E.Config.default_scale
      | "paper" -> Ok E.Config.paper
      | s -> Error (`Msg (Printf.sprintf "unknown scale %S (quick|default|paper)" s))
    in
    Arg.conv (parse, fun fmt s -> Format.fprintf fmt "%s" (E.Config.scale_name s))
  in
  Arg.(
    value
    & opt scale_conv E.Config.default_scale
    & info [ "scale" ] ~docv:"SCALE"
        ~doc:"Experiment scale: quick, default, or paper (4e6 s x 10 reps).")

(* The scheduler/discipline/size-distribution name tables live in
   Statsched_simcheck.Scenario, shared with the verification subsystem so
   its counterexamples replay through this exact CLI. *)

let scheduler_t =
  Arg.(
    value
    & opt (enum (List.map (fun n -> (n, n)) Scenario.scheduler_names)) "orr"
    & info [ "p"; "policy" ] ~docv:"POLICY"
        ~doc:
          "Scheduler: wran, oran, wrr, orr, least-load, two-choices, \
           adaptive-orr, sita, jsq-d, jsq-d-uniform or jiq.  jsq-d probes \
           speed-weighted; jsq-d-uniform is the pre-weighting sampler kept \
           for replaying old runs.")

let computers_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "computers" ] ~docv:"N"
        ~doc:
          "Simulate a synthetic two-class cluster of $(docv) computers (10% \
           at speed 10, 90% at speed 1) — the many-server scaling \
           configuration.  Overrides $(b,--speeds).")

let d_t =
  (* Declared as the short option [-d]; [main] rewrites a literal [--d]
     to [-d] before parsing (cmdliner reserves double-dash names for
     multi-character options, and [--d] would otherwise prefix-match
     [--discipline]). *)
  Arg.(
    value
    & opt (some int) None
    & info [ "d" ] ~docv:"D"
        ~doc:
          "Sample size for the jsq-d and two-choices policies (default 2); \
           must satisfy 1 <= $(docv) <= cluster size.  [--d $(docv)] is \
           accepted as a synonym.")

let verbose_t =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ] ~doc:"Log simulation diagnostics to stderr.")

let setup_logging verbose =
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Debug)
  end

(* ------------------------------------------------------------------ *)
(* alloc                                                               *)

let alloc_cmd =
  let run speeds rho =
    if not (0.0 < rho && rho < 1.0) then `Error (false, "utilization must be in (0,1)")
    else begin
      let weighted = Core.Allocation.weighted speeds in
      let optimized = Core.Allocation.optimized ~rho speeds in
      let rows =
        List.init (Array.length speeds) (fun i ->
            [
              E.Report.Int i;
              E.Report.Float speeds.(i);
              E.Report.Percent weighted.(i);
              E.Report.Percent optimized.(i);
            ])
      in
      print_string
        (E.Report.render
           ~header:[ "computer"; "speed"; "weighted"; "optimized" ]
           ~rows);
      let f alloc = Core.Allocation.objective ~rho ~speeds ~alloc in
      Printf.printf
        "\nobjective F (lower is better): weighted %.6f, optimized %.6f\n\
         predicted mean-response-ratio improvement: %.1f%%\n"
        (f weighted) (f optimized)
        (let mu = 1.0 in
         let lambda = Core.Mm1.lambda_of_utilization ~mu ~rho ~speeds in
         let r alloc = Core.Mm1.mean_response_ratio ~mu ~lambda ~speeds ~alloc in
         100.0 *. (1.0 -. (r optimized /. r weighted)));
      `Ok ()
    end
  in
  let term = Term.(ret (const run $ speeds_t $ rho_t)) in
  Cmd.v
    (Cmd.info "alloc" ~doc:"Compute weighted and optimized workload allocations.")
    term

(* ------------------------------------------------------------------ *)
(* dispatch                                                            *)

let dispatch_cmd =
  let fractions_t =
    let fractions_conv =
      let parse s =
        try
          let fs =
            Array.of_list
              (List.map float_of_string (String.split_on_char ',' (String.trim s)))
          in
          Ok fs
        with _ -> Error (`Msg "invalid fraction list")
      in
      Arg.conv (parse, fun fmt _ -> Format.fprintf fmt "<fractions>")
    in
    Arg.(
      value
      & opt fractions_conv [| 0.125; 0.125; 0.25; 0.5 |]
      & info [ "f"; "fractions" ] ~docv:"FRACTIONS"
          ~doc:"Comma-separated workload fractions summing to 1.")
  in
  let count_t =
    Arg.(value & opt int 32 & info [ "n" ] ~docv:"N" ~doc:"Number of dispatch decisions.")
  in
  let run fractions n seed =
    try
      let rr = Core.Dispatch.round_robin fractions in
      let rand = Core.Dispatch.random ~rng:(Rng.create ~seed ()) fractions in
      let seq d = String.concat " " (List.init n (fun _ -> string_of_int (Core.Dispatch.select d + 1))) in
      Printf.printf "round-robin: %s\n" (seq rr);
      Printf.printf "random:      %s\n" (seq rand);
      `Ok ()
    with Invalid_argument m -> `Error (false, m)
  in
  let term = Term.(ret (const run $ fractions_t $ count_t $ seed_t)) in
  Cmd.v
    (Cmd.info "dispatch"
       ~doc:"Show the dispatch sequences produced for given workload fractions.")
    term

(* ------------------------------------------------------------------ *)
(* run / compare                                                       *)

let discipline_t =
  let discipline_conv =
    let parse s =
      match Scenario.discipline_of_string s with
      | Some d -> Ok d
      | None ->
        Error
          (`Msg
             (Printf.sprintf
                "unknown discipline %S (ps, fcfs, srpt or rr:QUANTUM)" s))
    in
    Arg.conv (parse, fun fmt d ->
        Format.pp_print_string fmt (Scenario.discipline_to_string d))
  in
  Arg.(
    value
    & opt discipline_conv Cluster.Simulation.Ps
    & info [ "discipline" ] ~docv:"DISCIPLINE"
        ~doc:
          "Per-computer service discipline: ps (processor sharing, the \
           paper's model), fcfs, srpt, or rr:QUANTUM (quantum round-robin).")

let arrival_cv_t =
  Arg.(
    value
    & opt float 3.0
    & info [ "arrival-cv" ] ~docv:"CV"
        ~doc:
          "Coefficient of variation of the inter-arrival times: 1 = Poisson, \
           >1 hyperexponential, <1 Erlang.  Default: the paper's bursty 3.")

let size_dist_t =
  let size_dist_conv =
    let parse s =
      match Scenario.size_dist_of_string s with
      | Some d -> Ok d
      | None ->
        Error
          (`Msg
             (Printf.sprintf
                "unknown size distribution %S (exp, bp, det, weibull:K, \
                 lognormal:CV, erlang:K or hyperexp:CV)" s))
    in
    Arg.conv (parse, fun fmt d ->
        Format.pp_print_string fmt (Scenario.size_dist_to_string d))
  in
  Arg.(
    value
    & opt size_dist_conv Scenario.Bp_paper
    & info [ "size-dist" ] ~docv:"DIST"
        ~doc:
          "Job-size distribution: bp (the paper's Bounded Pareto, mean \
           76.8 s), exp, det, weibull:K, lognormal:CV, erlang:K or \
           hyperexp:CV — all scaled to $(b,--mean-size) except bp.")

let mean_size_t =
  Arg.(
    value
    & opt float 76.8
    & info [ "mean-size" ] ~docv:"SECONDS"
        ~doc:
          "Mean job size in speed-1 seconds for $(b,--size-dist) (ignored by \
           bp, which keeps its own 76.8 s mean).")

let horizon_t =
  Arg.(
    value
    & opt (some float) None
    & info [ "horizon" ] ~docv:"SECONDS"
        ~doc:"Override the $(b,--scale) horizon (simulated seconds).")

let warmup_t =
  Arg.(
    value
    & opt (some float) None
    & info [ "warmup" ] ~docv:"SECONDS"
        ~doc:"Override the $(b,--scale) warm-up period (simulated seconds).")

let mtbf_t =
  Arg.(
    value
    & opt (some float) None
    & info [ "mtbf" ] ~docv:"SECONDS"
        ~doc:
          "Inject exponential crash/repair faults with this mean time \
           between failures per computer.  Omitted: a reliable cluster.")

let mttr_t =
  Arg.(
    value
    & opt float 50.0
    & info [ "mttr" ] ~docv:"SECONDS"
        ~doc:"Mean time to repair a crashed computer (with $(b,--mtbf)).")

let on_failure_t =
  let names = [ "drop"; "requeue"; "resume" ] in
  Arg.(
    value
    & opt (enum (List.map (fun n -> (n, n)) names)) "requeue"
    & info [ "on-failure" ] ~docv:"POLICY"
        ~doc:
          "What happens to jobs on a crashed computer: drop (lost), \
           requeue (re-dispatched, restart from scratch) or resume \
           (wait out the repair).")

let fault_oblivious_t =
  Arg.(
    value & flag
    & info [ "fault-oblivious" ]
        ~doc:
          "Do not tell the scheduler about failures (no blacklist / \
           Algorithm 1 re-run on the surviving speed vector).")

let sanitize_t =
  Arg.(
    value & flag
    & info [ "sanitize" ]
        ~doc:
          "Enable the runtime invariant sanitizers (clock monotonicity, \
           event-heap order, job conservation, allocation feasibility).  \
           Sanitized runs are bit-identical to unsanitized ones; a violated \
           invariant aborts with a diagnostic.  Also enabled by setting \
           $(b,STATSCHED_SANITIZE=1) in the environment.")

let fault_plan ~mtbf ~mttr ~on_failure ~oblivious =
  Option.map
    (fun mtbf ->
      let on_failure =
        match Cluster.Fault.on_failure_of_string on_failure with
        | Some p -> p
        | None -> invalid_arg ("unknown on-failure policy " ^ on_failure)
      in
      let reaction =
        if oblivious then Cluster.Fault.Oblivious else Cluster.Fault.Blacklist
      in
      Cluster.Fault.exponential ~on_failure ~reaction ~mtbf ~mttr ())
    mtbf

let print_result (r : Cluster.Simulation.result) =
  let m = r.Cluster.Simulation.metrics in
  Printf.printf "scheduler: %s\n" r.Cluster.Simulation.scheduler_name;
  Printf.printf "jobs measured: %d (total arrivals %d)\n" m.Core.Metrics.jobs
    r.Cluster.Simulation.total_arrivals;
  Printf.printf "mean response time:  %.4f s\n" m.Core.Metrics.mean_response_time;
  Printf.printf "mean response ratio: %.4f\n" m.Core.Metrics.mean_response_ratio;
  Printf.printf "fairness (std of ratio): %.4f\n" m.Core.Metrics.fairness;
  Printf.printf "median / p99 response ratio: %.4f / %.4f\n"
    r.Cluster.Simulation.median_response_ratio r.Cluster.Simulation.p99_response_ratio;
  print_string
    (E.Report.render
       ~header:
         [ "computer"; "speed"; "dispatched"; "completed"; "utilization";
           "mean jobs (L)" ]
       ~rows:
         (List.init
            (Array.length r.Cluster.Simulation.per_computer)
            (fun i ->
              let pc = r.Cluster.Simulation.per_computer.(i) in
              [
                E.Report.Int i;
                E.Report.Float pc.Cluster.Simulation.speed;
                E.Report.Int pc.Cluster.Simulation.dispatched;
                E.Report.Int pc.Cluster.Simulation.completed;
                E.Report.Percent pc.Cluster.Simulation.utilization;
                E.Report.Float pc.Cluster.Simulation.mean_jobs;
              ])));
  match r.Cluster.Simulation.fault_summary with
  | None -> ()
  | Some s ->
    Printf.printf "faults: %d failures, %d jobs lost, availability %.4f\n"
      s.Cluster.Fault.failures s.Cluster.Fault.lost_jobs
      s.Cluster.Fault.availability;
    Array.iteri
      (fun i d ->
        if d > 0.0 then
          Printf.printf "  computer %d: %.1f s of lost capacity\n" i d)
      s.Cluster.Fault.downtime

let run_cmd =
  let trace_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write a per-job dispatch/completion trace to $(docv) as CSV.")
  in
  let probe_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "probe" ] ~docv:"FILE"
          ~doc:
            "Sample every computer's queue length each 10 simulated seconds \
             and write the time series to $(docv) as CSV.")
  in
  let metrics_out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write end-of-run metrics (per-computer utilisation and dispatch \
             drift, response-time/-ratio histograms, fault accounting, DES \
             self-profiling) to $(docv) in the Prometheus text exposition \
             format.")
  in
  let trace_out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write per-job spans and computer up/down intervals to $(docv) \
             as Chrome trace-event JSON (open in ui.perfetto.dev).")
  in
  let stats_interval_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "stats-interval" ] ~docv:"SECONDS"
          ~doc:
            "Print a progress line to stderr every $(docv) simulated seconds \
             (sim-time, arrivals, completions, events, wall-clock events/s).")
  in
  let serve_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "serve" ] ~docv:"PORT"
          ~doc:
            "Serve live telemetry over HTTP on 127.0.0.1:$(docv) while the \
             simulation runs: GET /metrics (Prometheus text exposition), \
             /healthz, and /state (JSON per-computer gauges).  Port 0 picks \
             an ephemeral port (printed to stderr).  Serving is passive — \
             the run is bit-identical to the same seed without it.")
  in
  let journal_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Record a bounded structured run journal (sampled dispatch/\
             queue-depth/completion/drop/rate records plus collector \
             summary) and write it to $(docv); cross-validate with \
             tracestat.")
  in
  let journal_capacity_t =
    Arg.(
      value
      & opt int 4096
      & info [ "journal-capacity" ] ~docv:"N"
          ~doc:
            "Maximum records the journal retains (memory stays O($(docv)); \
             on overflow the sampling stride doubles).")
  in
  let journal_sample_t =
    Arg.(
      value
      & opt int 1
      & info [ "journal-sample" ] ~docv:"K"
          ~doc:"Initial systematic sampling stride: record every K-th event.")
  in
  let run speeds rho policy seed scale discipline arrival_cv size_dist mean_size
      horizon warmup trace_file probe_file metrics_out trace_out stats_interval
      serve_port journal_file journal_capacity journal_sample mtbf mttr
      on_failure oblivious computers d sanitize verbose =
    setup_logging verbose;
    try
      (match mtbf with
      | Some m when m <= 0.0 || Float.is_nan m ->
        invalid_arg (Printf.sprintf "--mtbf must be positive (got %g)" m)
      | Some _ when mttr <= 0.0 || Float.is_nan mttr ->
        invalid_arg (Printf.sprintf "--mttr must be positive (got %g)" mttr)
      | _ -> ());
      (match computers with
      | Some n when n < 1 ->
        invalid_arg (Printf.sprintf "--computers must be at least 1 (got %d)" n)
      | _ -> ());
      let speeds =
        match computers with
        | Some n -> E.Ext_scale.speeds_for n
        | None -> speeds
      in
      (match d with
      | Some d when d < 1 ->
        invalid_arg (Printf.sprintf "--d must be at least 1 (got %d)" d)
      | Some d when d > Array.length speeds ->
        invalid_arg
          (Printf.sprintf "--d must not exceed the cluster size %d (got %d)"
             (Array.length speeds) d)
      | _ -> ());
      let horizon = Option.value horizon ~default:scale.E.Config.horizon in
      let warmup = Option.value warmup ~default:scale.E.Config.warmup in
      if not (horizon > 0.0) then
        invalid_arg (Printf.sprintf "--horizon must be positive (got %g)" horizon);
      if not (0.0 <= warmup && warmup < horizon) then
        invalid_arg
          (Printf.sprintf "--warmup must lie in [0, horizon) (got %g)" warmup);
      if not (mean_size > 0.0) then
        invalid_arg
          (Printf.sprintf "--mean-size must be positive (got %g)" mean_size);
      let scenario =
        Scenario.v ~discipline ~arrival_cv ~size:size_dist ~mean_size ~seed ?d
          ~speeds ~rho ~policy ()
      in
      let workload = Scenario.workload scenario in
      let faults = fault_plan ~mtbf ~mttr ~on_failure ~oblivious in
      let cfg =
        Cluster.Simulation.default_config ?faults ~discipline ~horizon ~warmup
          ~seed ~speeds ~workload
          ~scheduler:(Scenario.scheduler_of_name ~d:scenario.Scenario.d policy) ()
      in
      let trace = Option.map (fun _ -> Cluster.Trace.create ()) trace_file in
      let probe = Option.map (fun _ -> Cluster.Probe.create ()) probe_file in
      let journal =
        Option.map
          (fun _ ->
            Statsched_obs.Journal.create ~capacity:journal_capacity
              ~sample_every:journal_sample ())
          journal_file
      in
      let telemetry =
        match (metrics_out, trace_out, journal, serve_port) with
        | None, None, None, None -> None
        | _ -> Some (Cluster.Telemetry.create ~trace:(trace_out <> None) ?journal cfg)
      in
      let server =
        match (serve_port, telemetry) with
        | Some port, Some t ->
          let srv = Cluster.Telemetry.serve t ~port in
          Printf.eprintf
            "serving telemetry on http://127.0.0.1:%d (/metrics /healthz \
             /state)\n\
             %!"
            (Statsched_obs.Http.port srv);
          Some srv
        | _ -> None
      in
      (* Run both observers when a CSV trace and telemetry are requested
         together; neither perturbs the simulation. *)
      let chain f g =
        match (f, g) with
        | None, h | h, None -> h
        | Some f, Some g -> Some (fun job -> f job; g job)
      in
      let wall_start = Statsched_obs.Clock.now () in
      let progress =
        Option.map
          (fun period ->
            ( period,
              fun (p : Cluster.Simulation.progress) ->
                let wall = Statsched_obs.Clock.elapsed ~since:wall_start in
                let rate =
                  if wall > 0.0 then float_of_int p.Cluster.Simulation.events /. wall
                  else 0.0
                in
                Printf.eprintf
                  "progress: t=%.0f arrivals=%d completions=%d events=%d \
                   (%.0f events/s wall)\n\
                   %!"
                  p.Cluster.Simulation.sim_time p.Cluster.Simulation.arrivals
                  p.Cluster.Simulation.completions p.Cluster.Simulation.events
                  rate ))
          stats_interval
      in
      let result =
        Cluster.Simulation.run
          ?sanitize:(if sanitize then Some true else None)
          (* Every CLI observer (Trace, Probe, Telemetry, the journal)
             copies job fields out synchronously, so job-record recycling
             can stay on. *)
          ~hooks_retain_jobs:false
          ?metric_histograms:(Option.map Cluster.Telemetry.histograms telemetry)
          ?on_engine:
            (Option.map (fun t e -> Cluster.Telemetry.set_engine t e) telemetry)
          ?on_dispatch:
            (chain
               (Option.map Cluster.Trace.on_dispatch trace)
               (Option.map (fun t job -> Cluster.Telemetry.on_dispatch t job) telemetry))
          ?on_completion:
            (chain
               (Option.map Cluster.Trace.on_completion trace)
               (Option.map
                  (fun t job -> Cluster.Telemetry.on_completion t job)
                  telemetry))
          ?on_tick:(Option.map (fun p -> (10.0, Cluster.Probe.on_tick p)) probe)
          ?on_drop:(Option.map (fun t job -> Cluster.Telemetry.on_drop t job) telemetry)
          ?on_rate_change:
            (Option.map
               (fun t ~time ~computer ~rate ->
                 Cluster.Telemetry.on_rate_change t ~time ~computer ~rate)
               telemetry)
          ?on_progress:progress cfg
      in
      (match (trace, trace_file) with
      | Some t, Some path ->
        Cluster.Trace.write_csv t path;
        Printf.printf "trace: %d dispatches, %d completions -> %s\n"
          (Cluster.Trace.dispatch_count t)
          (Cluster.Trace.completion_count t)
          path
      | _ -> ());
      (match (probe, probe_file) with
      | Some p, Some path ->
        Cluster.Probe.write_csv p path;
        Printf.printf "probe: %d samples (peak queue %d) -> %s\n"
          (Cluster.Probe.sample_count p) (Cluster.Probe.peak p) path
      | _ -> ());
      (match telemetry with
      | None -> ()
      | Some t ->
        Cluster.Telemetry.finalize t result;
        (match metrics_out with
        | Some path ->
          Cluster.Telemetry.write_metrics t path;
          Printf.printf "metrics: %d series -> %s\n"
            (Cluster.Telemetry.metric_count t) path
        | None -> ());
        (match journal_file with
        | Some path ->
          Cluster.Telemetry.write_journal t result path;
          (match Cluster.Telemetry.journal t with
          | Some j ->
            Printf.printf "journal: %d records (stride %d) -> %s\n"
              (Statsched_obs.Journal.length j)
              (Statsched_obs.Journal.stride j)
              path
          | None -> ())
        | None -> ());
        match trace_out with
        | Some path ->
          Cluster.Telemetry.write_trace t path;
          Printf.printf "trace-events: %d -> %s\n"
            (Cluster.Telemetry.trace_event_count t) path
        | None -> ());
      Option.iter Statsched_obs.Http.stop server;
      print_result result;
      `Ok ()
    with
    | Invalid_argument m -> `Error (false, m)
    | Cluster.Sanitize.Violation { invariant; message } ->
      `Error (false, Printf.sprintf "sanitizer (%s): %s" invariant message)
  in
  let term =
    Term.(
      ret
        (const run $ speeds_t $ rho_t $ scheduler_t $ seed_t $ scale_t
       $ discipline_t $ arrival_cv_t $ size_dist_t $ mean_size_t $ horizon_t
       $ warmup_t $ trace_t $ probe_t $ metrics_out_t $ trace_out_t
       $ stats_interval_t $ serve_t $ journal_t $ journal_capacity_t
       $ journal_sample_t $ mtbf_t $ mttr_t $ on_failure_t $ fault_oblivious_t
       $ computers_t $ d_t $ sanitize_t $ verbose_t))
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Simulate one scheduler on a cluster with the paper's workload \
          (Bounded-Pareto sizes, bursty arrivals).")
    term

let compare_cmd =
  let run speeds rho seed scale jobs =
    try
      let workload = Cluster.Workload.paper_default ~rho ~speeds in
      let points =
        E.Sweep.over_schedulers ~seed ?jobs ~scale
          ~schedulers:E.Schedulers.with_least_load ~speeds ~workload ()
      in
      print_string
        (E.Report.render
           ~header:
             [ "scheduler"; "mean resp. time"; "mean resp. ratio"; "fairness";
               "median ratio"; "p99 ratio" ]
           ~rows:
             (List.map
                (fun (name, p) ->
                  [
                    E.Report.Text name;
                    E.Report.Interval p.E.Runner.mean_response_time;
                    E.Report.Interval p.E.Runner.mean_response_ratio;
                    E.Report.Interval p.E.Runner.fairness;
                    E.Report.Float p.E.Runner.median_ratio;
                    E.Report.Float p.E.Runner.p99_ratio;
                  ])
                points));
      `Ok ()
    with Invalid_argument m -> `Error (false, m)
  in
  let term = Term.(ret (const run $ speeds_t $ rho_t $ seed_t $ scale_t $ jobs_t)) in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Simulate all five schedulers (WRAN/ORAN/WRR/ORR/Least-Load) on one cluster.")
    term

(* ------------------------------------------------------------------ *)
(* experiment                                                          *)

let experiment_cmd =
  let which_t =
    let names =
      [ "table1"; "fig2"; "fig3"; "fig4"; "fig5"; "fig6"; "ext-burstiness";
        "ext-sizes"; "ext-faults"; "scale-sweep"; "all" ]
    in
    Arg.(
      required
      & pos 0 (some (enum (List.map (fun n -> (n, n)) names))) None
      & info [] ~docv:"EXPERIMENT"
          ~doc:
            "One of table1, fig2..fig6, ext-burstiness, ext-sizes, \
             ext-faults, scale-sweep, all.")
  in
  let csv_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"DIR"
          ~doc:
            "Also write each figure's series (with half-width columns) as \
             CSV files into $(docv).")
  in
  let run which scale seed jobs csv_dir =
    let write_sweeps name sweeps =
      match csv_dir with
      | None -> ()
      | Some dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        List.iteri
          (fun i sweep ->
            let path = Filename.concat dir (Printf.sprintf "%s-%d.csv" name i) in
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () -> output_string oc (E.Report.sweep_to_csv sweep));
            Printf.printf "wrote %s\n" path)
          sweeps
    in
    let table1 () =
      E.Report.print_section "Table 1";
      print_string (E.Table1.to_report (E.Table1.run ~scale ~seed ?jobs ()))
    in
    let fig2 () =
      E.Report.print_section "Figure 2";
      print_string (E.Fig2.to_report (E.Fig2.run ~seed ?jobs ()))
    in
    let fig3 () =
      E.Report.print_section "Figure 3";
      let rows = E.Fig3.run ~scale ~seed ?jobs () in
      print_string (E.Fig3.to_report rows);
      write_sweeps "fig3" (E.Fig3.sweeps rows)
    in
    let fig4 () =
      E.Report.print_section "Figure 4";
      let rows = E.Fig4.run ~scale ~seed ?jobs () in
      print_string (E.Fig4.to_report rows);
      write_sweeps "fig4" (E.Fig4.sweeps rows)
    in
    let fig5 () =
      E.Report.print_section "Figure 5";
      let rows = E.Fig5.run ~scale ~seed ?jobs () in
      print_string (E.Fig5.to_report rows);
      write_sweeps "fig5" (E.Fig5.sweeps rows)
    in
    let fig6 () =
      E.Report.print_section "Figure 6";
      let under = E.Fig6.run ~scale ~seed ?jobs ~errors:E.Fig6.default_errors_under () in
      let over = E.Fig6.run ~scale ~seed ?jobs ~errors:E.Fig6.default_errors_over () in
      print_string (E.Fig6.to_report ~under ~over);
      write_sweeps "fig6" (E.Fig6.sweeps ~under ~over)
    in
    let ext_burstiness () =
      E.Report.print_section "Extension: arrival burstiness";
      let rows = E.Ext_burstiness.run ~scale ~seed ?jobs () in
      print_string (E.Ext_burstiness.to_report rows);
      write_sweeps "ext-burstiness" (E.Ext_burstiness.sweeps rows)
    in
    let ext_sizes () =
      E.Report.print_section "Extension: size-distribution sensitivity";
      print_string (E.Ext_sizes.to_report (E.Ext_sizes.run ~scale ~seed ?jobs ()))
    in
    let ext_faults () =
      E.Report.print_section "Extension: fault injection";
      print_string (E.Ext_faults.to_report (E.Ext_faults.run ~scale ~seed ?jobs ()))
    in
    let scale_sweep () =
      E.Report.print_section "Extension: many-server scale sweep";
      (* The time knob here is jobs per cell, not simulated seconds:
         quick = n <= 10^3 smoke (CI), default = the full grid at 10^6
         jobs, paper = the 10^7-job headline runs. *)
      let ns, jobs_target =
        if E.Config.equal_scale scale E.Config.paper then
          (E.Ext_scale.default_ns, E.Ext_scale.default_jobs_target)
        else if E.Config.equal_scale scale E.Config.quick then
          ([ 100; 1_000 ], 5.0e4)
        else (E.Ext_scale.default_ns, 1.0e6)
      in
      let t = E.Ext_scale.run ~seed ?jobs ~ns ~jobs_target () in
      print_string (E.Ext_scale.to_report t);
      match csv_dir with
      | None -> ()
      | Some dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        let path = Filename.concat dir "scale-sweep.csv" in
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (E.Ext_scale.to_csv t));
        Printf.printf "wrote %s\n" path
    in
    try
      validate_jobs ();
      (match which with
      | "table1" -> table1 ()
      | "fig2" -> fig2 ()
      | "fig3" -> fig3 ()
      | "fig4" -> fig4 ()
      | "fig5" -> fig5 ()
      | "fig6" -> fig6 ()
      | "ext-burstiness" -> ext_burstiness ()
      | "ext-sizes" -> ext_sizes ()
      | "ext-faults" -> ext_faults ()
      | "scale-sweep" -> scale_sweep ()
      | _ ->
        table1 ();
        fig2 ();
        fig3 ();
        fig4 ();
        fig5 ();
        fig6 ();
        ext_burstiness ();
        ext_sizes ();
        ext_faults ());
      `Ok ()
    with Invalid_argument m | Sys_error m -> `Error (false, m)
  in
  let term = Term.(ret (const run $ which_t $ scale_t $ seed_t $ jobs_t $ csv_t)) in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate a table or figure from the paper.")
    term

(* ------------------------------------------------------------------ *)
(* theory                                                              *)

let theory_cmd =
  let mean_size_t =
    Arg.(
      value
      & opt float 76.8
      & info [ "mean-size" ] ~docv:"SECONDS"
          ~doc:"Mean job size in speed-1 seconds (default: the paper's 76.8).")
  in
  let run speeds rho mean_size =
    if not (0.0 < rho && rho < 1.0) then `Error (false, "utilization must be in (0,1)")
    else if mean_size <= 0.0 then `Error (false, "mean size must be positive")
    else begin
      let mu = 1.0 /. mean_size in
      let lambda = Core.Mm1.lambda_of_utilization ~mu ~rho ~speeds in
      let weighted = Core.Allocation.weighted speeds in
      let optimized = Core.Allocation.optimized ~rho speeds in
      Printf.printf
        "M/M/1-PS predictions: lambda = %.5g jobs/s, mu = %.5g, aggregate speed %g\n\n"
        lambda mu (Core.Speeds.total speeds);
      let per_computer alloc =
        List.init (Array.length speeds) (fun i ->
            let speed = speeds.(i) in
            let alpha = alloc.(i) in
            [
              E.Report.Int i;
              E.Report.Float speed;
              E.Report.Percent alpha;
              E.Report.Percent (Core.Mm1.server_utilization ~mu ~lambda ~speed ~alpha);
              E.Report.Float
                (Core.Mm1.server_mean_response_time ~mu ~lambda ~speed ~alpha);
            ])
      in
      let header = [ "computer"; "speed"; "share"; "utilization"; "mean resp. time" ] in
      print_endline "weighted allocation:";
      print_string (E.Report.render ~header ~rows:(per_computer weighted));
      print_endline "\noptimized allocation (Algorithm 1):";
      print_string (E.Report.render ~header ~rows:(per_computer optimized));
      let t alloc = Core.Mm1.mean_response_time ~mu ~lambda ~speeds ~alloc in
      let r alloc = Core.Mm1.mean_response_ratio ~mu ~lambda ~speeds ~alloc in
      Printf.printf
        "\nsystem:   weighted  T=%.4g R=%.4g   |   optimized  T=%.4g R=%.4g   \
         (%.1f%% better)\n"
        (t weighted) (r weighted) (t optimized) (r optimized)
        (100.0 *. (1.0 -. (t optimized /. t weighted)));
      Printf.printf
        "parked computers under optimized allocation: %d (Theorem 2 cutoff)\n"
        (Core.Allocation.optimized_cutoff ~rho speeds);
      `Ok ()
    end
  in
  let term = Term.(ret (const run $ speeds_t $ rho_t $ mean_size_t)) in
  Cmd.v
    (Cmd.info "theory"
       ~doc:
         "Print the analytical M/M/1-PS predictions (per-computer utilisation \
          and response times) for a configuration, without simulating.")
    term

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* ablation                                                            *)

let ablation_cmd =
  let which_t =
    let names = [ "dispatch"; "end-to-end"; "disciplines"; "intervals"; "all" ] in
    Arg.(
      required
      & pos 0 (some (enum (List.map (fun n -> (n, n)) names))) None
      & info [] ~docv:"ABLATION"
          ~doc:"One of dispatch, end-to-end, disciplines, intervals, all.")
  in
  let run which scale seed =
    let dispatch () =
      E.Report.print_section "Ablation: Algorithm 2 design choices";
      print_string
        (E.Ablations.dispatch_smoothness_report
           (E.Ablations.dispatch_smoothness ~seed ()))
    in
    let end_to_end () =
      E.Report.print_section "Ablation: end-to-end scheduler variants";
      print_string (E.Ablations.end_to_end_report (E.Ablations.end_to_end ~seed ~scale ()))
    in
    let disciplines () =
      E.Report.print_section "Ablation: service disciplines";
      print_string
        (E.Ablations.disciplines_report (E.Ablations.disciplines ~seed ~scale ()))
    in
    let intervals () =
      E.Report.print_section "Ablation: deviation metric vs interval length";
      print_string
        (E.Ablations.interval_lengths_report (E.Ablations.interval_lengths ~seed ()))
    in
    try
      validate_jobs ();
      (match which with
      | "dispatch" -> dispatch ()
      | "end-to-end" -> end_to_end ()
      | "disciplines" -> disciplines ()
      | "intervals" -> intervals ()
      | _ ->
        dispatch ();
        end_to_end ();
        disciplines ();
        intervals ());
      `Ok ()
    with Invalid_argument m -> `Error (false, m)
  in
  let term = Term.(ret (const run $ which_t $ scale_t $ seed_t)) in
  Cmd.v
    (Cmd.info "ablation" ~doc:"Run an ablation study of the design choices.")
    term

(* ------------------------------------------------------------------ *)
(* report / claims / table                                             *)

let report_cmd =
  let out_t =
    Arg.(
      value
      & opt string "statsched-report.md"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output Markdown file.")
  in
  let run scale seed jobs out =
    try
      validate_jobs ();
      Printf.printf "running all experiments at scale %s (this may take a while)...\n%!"
        (E.Config.scale_name scale);
      let doc = E.Md_report.generate_fresh ~scale ~seed ?jobs () in
      E.Md_report.write ~path:out doc;
      Printf.printf "wrote %s (%d bytes)\n" out (String.length doc);
      `Ok ()
    with Invalid_argument m | Sys_error m -> `Error (false, m)
  in
  let term = Term.(ret (const run $ scale_t $ seed_t $ jobs_t $ out_t)) in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Regenerate every table and figure and write a self-contained \
          Markdown reproduction report with the paper-claims scoreboard.")
    term

let claims_cmd =
  let run scale seed jobs =
    try
      validate_jobs ();
      let inputs = E.Paper_claims.gather ~scale ~seed ?jobs () in
      print_string (E.Paper_claims.to_report (E.Paper_claims.evaluate inputs));
      `Ok ()
    with Invalid_argument m -> `Error (false, m)
  in
  let term = Term.(ret (const run $ scale_t $ seed_t $ jobs_t)) in
  Cmd.v
    (Cmd.info "claims"
       ~doc:"Evaluate the 18 executable paper claims and print the scoreboard.")
    term

let table_cmd =
  let grid_t =
    Arg.(value & opt int 99 & info [ "grid" ] ~docv:"N" ~doc:"Grid points in (0,1).")
  in
  let at_t =
    Arg.(
      value
      & opt (list float) [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9 ]
      & info [ "at" ] ~docv:"RHOS" ~doc:"Utilisations to print rows for.")
  in
  let run speeds grid at =
    try
      let t = Core.Alloc_table.build ~grid speeds in
      let rows =
        List.map
          (fun (rho, alloc) ->
            E.Report.Percent rho
            :: Array.to_list (Array.map (fun a -> E.Report.Percent a) alloc))
          (Core.Alloc_table.to_report_rows t ~at)
      in
      let header =
        "rho"
        :: List.init (Array.length speeds) (fun i ->
               Printf.sprintf "c%d (s=%g)" i speeds.(i))
      in
      print_string (E.Report.render ~header ~rows);
      Printf.printf
        "\nmax interpolation error vs exact Algorithm 1 (mid-range): %.2e\n"
        (Core.Alloc_table.max_interpolation_error ~lo:0.2 ~hi:0.95 t ~samples:200);
      `Ok ()
    with Invalid_argument m -> `Error (false, m)
  in
  let term = Term.(ret (const run $ speeds_t $ grid_t $ at_t)) in
  Cmd.v
    (Cmd.info "table"
       ~doc:
         "Precompute the optimized-allocation lookup table over a utilisation \
          grid and print selected rows.")
    term

let () =
  let doc =
    "Static job scheduling in a network of heterogeneous computers (Tang & \
     Chanson, ICPP 2000)"
  in
  let info = Cmd.info "schedsim" ~version:"0.1.0" ~doc in
  (* Accept [--d K] as a synonym of [-d K]: cmdliner reserves [--name]
     for multi-character names and would otherwise prefix-match [--d]
     onto [--discipline]. *)
  let argv =
    Sys.argv |> Array.to_list
    |> List.concat_map (fun a ->
           if String.equal a "--d" then [ "-d" ]
           else if String.length a > 4 && String.equal (String.sub a 0 4) "--d="
           then [ "-d"; String.sub a 4 (String.length a - 4) ]
           else [ a ])
    |> Array.of_list
  in
  exit
    (Cmd.eval ~argv
       (Cmd.group info [ alloc_cmd; dispatch_cmd; run_cmd; compare_cmd; experiment_cmd;
           theory_cmd; report_cmd; claims_cmd; table_cmd; ablation_cmd ]))
