(** Metamorphic verification: relations between *pairs or families* of
    simulator runs that must hold whatever the (unknown) true output is.

    - {e Time-scale invariance}: scaling all input times by a power of
      two scales output times exactly and leaves dimensionless outputs
      bit-identical (IEEE exponent shifts commute with rounding), so any
      absolute time constant accidentally baked into the simulation path
      is caught bit-for-bit.  Static schedulers, no faults — those carry
      absolute times by design.
    - {e Permutation invariance}: Algorithm 1 commutes with relabeling
      the speed vector (exact, no simulation).
    - {e Stochastic monotonicity}: mean response time is non-decreasing
      along a rho grid under common random numbers, up to combined
      confidence slack.
    - {e Local optimality}: shifting load between any pair of computers
      away from the optimized allocation never lowers the objective F
      (exact) nor the simulated mean slowdown (paired CRN replications).
    - {e Dispatch-fraction agreement}: random and round-robin dispatch of
      the same allocation land every computer's long-run dispatch
      fraction within a binomial bound of the intended alpha.
    - {e Dispatcher equivalence}: JSQ(d = n) is bit-identical to
      idealised Least-Load on the same trace (both probe everything and
      share the single-draw tie-break contract), and on a one-computer
      cluster JIQ matches static ORR bit-for-bit (every dispatcher is
      forced to computer 0; the streams they consume are independent).
    - {e Driver chunking}: {!Statsched_cluster.Simulation.Driver}
      advanced to the horizon in any number of monotone steps is
      bit-identical to the one-shot {!Statsched_cluster.Simulation.run}
      — the step boundaries partition the same event sequence.
    - {e Daemon replay}: replaying a batch run's recorded arrival trace
      through an [`External] driver (the [schedsimd] mode: advance to
      the arrival time, submit the size) reproduces every dispatch
      decision and the whole result bit-for-bit. *)

val default_scale : Statsched_experiments.Config.scale
(** 4·10⁴ s horizon, 3 replications — the relations need far less
    resolution than the differential oracles. *)

val run :
  ?scale:Statsched_experiments.Config.scale ->
  ?seed:int64 ->
  ?jobs:int ->
  unit ->
  Check.t list
(** Run every metamorphic relation; failing checks carry a replayable
    [schedsim run] command where one exists. *)
