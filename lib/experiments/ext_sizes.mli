(** Extension experiment: job-size distribution sensitivity (PS
    insensitivity check).

    The paper derives its allocation from an M/M/1 model but evaluates on
    Bounded-Pareto sizes, implicitly leaning on the M/G/1-PS insensitivity
    property (mean response time depends on the size distribution only
    through its mean).  This experiment makes that lean explicit: the
    Table 3 cluster at 70 % utilisation under ORR and WRR with seven size
    distributions of identical mean (76.8 s) and wildly different
    variability, from deterministic to the paper's Bounded Pareto.  The
    mean response {e time} columns should stay nearly flat; the mean
    response {e ratio} and fairness columns move because they reweight by
    job size. *)

type row = {
  label : string;
  size_cv : float;
  points : (string * Runner.point) list;
}

val default_sizes : unit -> (string * Statsched_dist.Distribution.t) list
(** Deterministic, Erlang-4, exponential, lognormal (CV 2), Weibull
    (shape 0.5), Bounded Pareto α=1.5, Bounded Pareto paper default —
    all with mean 76.8 s. *)

val run :
  ?scale:Config.scale ->
  ?seed:int64 ->
  ?jobs:int ->
  ?speeds:float array ->
  ?sizes:(string * Statsched_dist.Distribution.t) list ->
  ?schedulers:(string * Statsched_cluster.Scheduler.kind) list ->
  unit ->
  row list

val to_report : row list -> string
