(** Method of batch means for single long runs.

    Groups a stream of correlated within-run observations into fixed-size
    batches whose means are approximately independent, enabling a
    confidence interval from one long simulation instead of many
    replications.  Complements {!Confidence} (which the headline
    experiments use, matching the paper's 10-replication methodology). *)

type t

val create : batch_size:int -> t
(** @raise Invalid_argument if [batch_size <= 0]. *)

val add : t -> float -> unit

val completed_batches : t -> int

val pending : t -> int
(** Observations accumulated in the trailing, not-yet-complete batch
    ([0 <= pending < batch_size]).  They are excluded from
    {!batch_means} and {!interval} but included, weighted, in
    {!grand_mean}. *)

val count : t -> int
(** Total observations fed to {!add}:
    [completed_batches * batch_size + pending]. *)

val batch_means : t -> float array
(** Means of all completed batches, oldest first. *)

val grand_mean : t -> float
(** Exact sample mean of {e every} observation, the trailing partial
    batch included with its natural weight [pending / count]; [nan] if
    nothing was added.  Note the asymmetry with {!interval}: dropping the
    partial batch (as this function once did) biases the estimate toward
    the start of the run whenever [batch_size] does not divide the
    observation count. *)

val interval : ?confidence:float -> t -> Confidence.interval
(** Confidence interval treating the {e completed} batch means as i.i.d.
    The trailing partial batch is excluded — its mean has a different
    variance than a full batch's, so mixing it in would break the
    equal-variance assumption behind the Student-t interval; with
    [batch_size] observations per batch the resulting mean shift is at
    most [pending/count] of the batch-to-batch spread (see
    {!grand_mean} for the exact mean).

    @raise Invalid_argument if no batch has completed. *)
