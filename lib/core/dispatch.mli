(** Job dispatching strategies (Section 3).

    A dispatcher realises a workload allocation job-by-job: every arrival
    calls {!select} and the returned computer index receives the job.
    Dispatchers are deliberately oblivious to job sizes and computer
    states — that is what makes the resulting policies static. *)

type t
(** A mutable dispatcher. *)

val select : t -> int
(** Decide the destination of the next arriving job. *)

val name : t -> string

val fractions : t -> float array
(** The allocation the dispatcher was built with (copy). *)

val reset : t -> unit
(** Return to the initial state (counters cleared, RNG state untouched). *)

val random : rng:Statsched_prng.Rng.t -> float array -> t
(** Random based dispatching (Section 3.1): send to computer [i] with
    probability [α_i].  O(log n) per decision via a cumulative table.

    @raise Invalid_argument unless fractions are non-negative and sum
    to 1 (within 1e-9). *)

val random_alias : rng:Statsched_prng.Rng.t -> float array -> t
(** {!random} with Walker's alias method: O(1) per decision after O(n)
    setup, at the price of one extra uniform draw.  Statistically
    identical to {!random} (same marginal probabilities, different
    stream consumption); the micro-bench compares the two.

    @raise Invalid_argument as for {!random}. *)

val round_robin : float array -> t
(** Round-robin based dispatching — the paper's Algorithm 2.  Each
    computer carries [assign] (jobs sent so far) and [next] (expected
    number of system arrivals before its next job).  The arrival goes to
    the live computer with minimal [next]; ties break toward the smallest
    normalised assignment count [(assign+1)/α].  Afterwards the chosen
    computer's [next] grows by [1/α] and every computer that has already
    started receiving jobs has [next] decremented.  [next] starts at the
    guard value 1 and is reset to 0 at a computer's first selection, which
    staggers the first jobs of small-fraction computers (Section 3.2).
    Deterministic: no randomness at all.

    @raise Invalid_argument as for {!random}. *)

val round_robin_lazy : float array -> t
(** {!round_robin} in offset form for many-server runs: O(log n) per
    decision instead of O(n).  Stores [next_i + A] (where [A] counts
    selects so far) in a tournament tree, so the global "everyone
    started gets −1" update is a single counter increment; unstarted
    computers wait in a static priority queue ordered by
    [(1/α, index)].  Decision-for-decision identical to {!round_robin}
    whenever every fraction is a power of two (all arithmetic is then
    exact); with arbitrary fractions the reassociated arithmetic can
    round guard-row ties differently, so treat it as a distinct
    dispatcher, not a drop-in replica — the scale sweeps use it as the
    ORR dispatcher at n >= 10^3.

    @raise Invalid_argument as for {!random}. *)

val round_robin_no_guard : float array -> t
(** Ablation: Algorithm 2 with the first-assignment guard removed
    ([next] initialised to 0, no reset on first selection).  Small-fraction
    computers then receive their first jobs back-to-back at the start of
    the cycle — measurably burstier (see the ablation bench). *)

val round_robin_index_ties : float array -> t
(** Ablation: Algorithm 2 with ties on [next] broken by smallest index
    instead of the normalised assignment count. *)

val smooth_weighted : float array -> t
(** Classic smooth weighted round-robin (the algorithm popularised by
    Nginx): each computer carries a current weight increased by [α_i] per
    arrival; the maximal one is chosen and decreased by 1.  Included as an
    independent deterministic comparator for the dispatching bench. *)

val strict_cycle : int -> t
(** Traditional round-robin over [n] computers (uniform fractions);
    Algorithm 2 degenerates to this when all [α_i] are equal — a property
    the tests verify. *)

val golden_ratio : float array -> t
(** Quasi-random dispatching: like {!random} but driven by the Weyl
    sequence [u_t = frac(t·φ⁻¹)] instead of a PRNG.  The sequence is
    low-discrepancy, so per-computer counts stay within O(log t) of
    [t·α_i] — deterministic and smoother than random, but without
    Algorithm 2's per-computer spacing guarantee.  Included as a third
    point between random and round-robin in the dispatching ablation. *)
