(** Dependency-free fork/join pool over stdlib [Domain].

    This is the only module allowed to call [Domain.spawn] (schedlint R6):
    keeping domain management in one place is what lets the rest of the
    tree stay deterministic — callers express {e what} runs in parallel
    ([map] over an index range) and determinism falls out of the fact that
    each index computes an independent result written back to its own slot,
    so the output never depends on which domain ran which index.

    The intended use is the replication harness: replication [k] draws from
    [Rng.substream k] regardless of scheduling, so [map ~jobs:n] is
    byte-for-byte identical to [map ~jobs:1]. *)

val available_parallelism : unit -> int
(** [Domain.recommended_domain_count ()] — an upper bound on useful jobs. *)

val default_jobs : unit -> int
(** Number of jobs used when [?jobs] is omitted: the [STATSCHED_JOBS]
    environment variable when set to a positive integer, otherwise
    [available_parallelism ()]. Raises [Invalid_argument] if
    [STATSCHED_JOBS] is set but not a positive integer. *)

val spawn_count : unit -> int
(** Total number of domains ever spawned by this module in this process.
    Monotonic; [map ~jobs:1] never increments it — the regression tests
    pin that the sequential path is pool-free. *)

val map : ?jobs:int -> int -> (int -> 'a) -> 'a list
(** [map ?jobs n f] computes [[f 0; f 1; ...; f (n-1)]], evaluating the
    calls on up to [jobs] domains (default {!default_jobs}; clamped to
    [n]). Work is handed out dynamically — an idle domain takes the next
    unstarted index — but results are returned in index order, so the
    output is independent of [jobs] and of scheduling.

    [~jobs:1] runs everything in the calling domain with no spawns, no
    atomics and no result array — a plain sequential build.  With
    [jobs >= 2], [f 0] runs eagerly in the caller (seeding the slot
    array, so slots are plain values, flat when ['a] is [float]) and at
    most [min (jobs - 1) (n - 1)] helper domains are spawned.  If any
    [f k] raises, the first exception observed is re-raised in the
    caller after all domains have been joined; remaining unstarted
    indices are abandoned.

    Raises [Invalid_argument] if [n < 0] or [jobs < 1]. *)

val map_array : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** Same as {!map} but returns the results as an array. *)
