open Test_util
module S = Statsched_stats
module Welford = S.Welford
module Tally = S.Tally
module Histogram = S.Histogram
module P2 = S.P2_quantile
module Student_t = S.Student_t
module Confidence = S.Confidence
module Batch_means = S.Batch_means
module Summary = S.Summary

let welford_known_values () =
  let w = Welford.create () in
  List.iter (Welford.add w) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_float ~eps:1e-12 "mean" 5.0 (Welford.mean w);
  check_float ~eps:1e-12 "population variance" 4.0 (Welford.population_variance w);
  check_float ~eps:1e-12 "sample variance" (32.0 /. 7.0) (Welford.variance w);
  check_float ~eps:1e-12 "population std" 2.0 (Welford.population_std w);
  check_float "min" 2.0 (Welford.min_value w);
  check_float "max" 9.0 (Welford.max_value w);
  Alcotest.(check int) "count" 8 (Welford.count w)

let welford_empty_and_single () =
  let w = Welford.create () in
  Alcotest.(check bool) "empty mean nan" true (Float.is_nan (Welford.mean w));
  Welford.add w 3.0;
  check_float "single mean" 3.0 (Welford.mean w);
  Alcotest.(check bool) "single variance nan" true (Float.is_nan (Welford.variance w));
  check_float "single population variance" 0.0 (Welford.population_variance w)

let welford_merge () =
  let a = Welford.create () and b = Welford.create () and whole = Welford.create () in
  let xs = [ 1.0; 5.0; 2.0; 8.0; 3.0; 9.0; 4.0 ] in
  List.iteri (fun i x ->
      Welford.add whole x;
      if i mod 2 = 0 then Welford.add a x else Welford.add b x)
    xs;
  let merged = Welford.merge a b in
  check_float ~eps:1e-12 "merged mean" (Welford.mean whole) (Welford.mean merged);
  check_float ~eps:1e-9 "merged variance" (Welford.variance whole) (Welford.variance merged);
  Alcotest.(check int) "merged count" (Welford.count whole) (Welford.count merged);
  check_float "merged min" (Welford.min_value whole) (Welford.min_value merged);
  check_float "merged max" (Welford.max_value whole) (Welford.max_value merged)

let welford_merge_empty () =
  let a = Welford.create () in
  Welford.add a 2.0;
  let empty = Welford.create () in
  let m1 = Welford.merge a empty and m2 = Welford.merge empty a in
  check_float "merge with empty (left)" 2.0 (Welford.mean m1);
  check_float "merge with empty (right)" 2.0 (Welford.mean m2)

let welford_reset_copy () =
  let w = Welford.create () in
  Welford.add w 1.0;
  let c = Welford.copy w in
  Welford.reset w;
  Alcotest.(check int) "reset clears" 0 (Welford.count w);
  Alcotest.(check int) "copy unaffected" 1 (Welford.count c)

let welford_numerical_stability () =
  (* Large offset: naive sum-of-squares would lose everything. *)
  let w = Welford.create () in
  let offset = 1.0e9 in
  List.iter (fun x -> Welford.add w (offset +. x)) [ 1.0; 2.0; 3.0 ];
  check_float ~eps:1e-6 "variance near offset" 1.0 (Welford.variance w)

let prop_welford_matches_naive =
  qcheck ~count:200 "welford equals two-pass computation"
    QCheck2.Gen.(list_size (int_range 2 100) (float_bound_inclusive 1000.0))
    (fun xs ->
      let w = Welford.create () in
      List.iter (Welford.add w) xs;
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0.0 xs /. n in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs /. (n -. 1.0)
      in
      abs_float (Welford.mean w -. mean) < 1e-6
      && abs_float (Welford.variance w -. var) < 1e-5 *. (1.0 +. var))

let tally_time_average () =
  let t = Tally.create () in
  Tally.update t ~time:0.0 ~value:1.0;
  Tally.update t ~time:10.0 ~value:3.0;
  Tally.advance t ~time:20.0;
  (* value 0 for [0,0), 1 for [0,10), 3 for [10,20) starting at initial 0 *)
  check_float ~eps:1e-12 "time average" 2.0 (Tally.time_average t);
  check_float "current value" 3.0 (Tally.current_value t)

let tally_initial_value () =
  let t = Tally.create ~initial_value:5.0 () in
  Tally.advance t ~time:4.0;
  check_float "constant signal" 5.0 (Tally.time_average t)

let tally_reset () =
  let t = Tally.create () in
  Tally.update t ~time:0.0 ~value:10.0;
  Tally.advance t ~time:5.0;
  Tally.reset_at t ~time:5.0;
  Tally.advance t ~time:10.0;
  check_float "only post-reset area" 10.0 (Tally.time_average t)

let tally_backwards_time () =
  let t = Tally.create () in
  Tally.advance t ~time:5.0;
  Alcotest.check_raises "backwards" (Invalid_argument "Tally.advance: time moved backwards")
    (fun () -> Tally.advance t ~time:4.0)

let tally_empty_nan () =
  let t = Tally.create () in
  Alcotest.(check bool) "no elapsed time -> nan" true (Float.is_nan (Tally.time_average t))

let histogram_linear () =
  let h = Histogram.create_linear ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 1.6; 9.9; -1.0; 10.0; 25.0 ];
  Alcotest.(check int) "count includes overflow" 7 (Histogram.count h);
  Alcotest.(check int) "underflow" 1 (Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (Histogram.overflow h);
  Alcotest.(check int) "bin 0" 1 (Histogram.bin_value h 0);
  Alcotest.(check int) "bin 1" 2 (Histogram.bin_value h 1);
  Alcotest.(check int) "bin 9" 1 (Histogram.bin_value h 9)

let histogram_log () =
  let h = Histogram.create_log ~lo:1.0 ~hi:1000.0 ~bins:3 in
  List.iter (Histogram.add h) [ 2.0; 15.0; 150.0 ];
  Alcotest.(check int) "bin 0 [1,10)" 1 (Histogram.bin_value h 0);
  Alcotest.(check int) "bin 1 [10,100)" 1 (Histogram.bin_value h 1);
  Alcotest.(check int) "bin 2 [100,1000)" 1 (Histogram.bin_value h 2);
  let lo, hi = Histogram.bin_range h 1 in
  check_float ~eps:1e-9 "log bin lower" 10.0 lo;
  check_float ~eps:1e-9 "log bin upper" 100.0 hi

let histogram_quantile () =
  let h = Histogram.create_linear ~lo:0.0 ~hi:100.0 ~bins:100 in
  for i = 0 to 999 do
    Histogram.add h (float_of_int (i mod 100) +. 0.5)
  done;
  check_close ~rel:0.05 "median" 50.0 (Histogram.quantile h 0.5);
  check_close ~rel:0.05 "p90" 90.0 (Histogram.quantile h 0.9)

let histogram_errors () =
  Alcotest.check_raises "lo >= hi" (Invalid_argument "Histogram.create_linear: lo >= hi")
    (fun () -> ignore (Histogram.create_linear ~lo:1.0 ~hi:1.0 ~bins:5));
  Alcotest.check_raises "log lo <= 0" (Invalid_argument "Histogram.create_log: lo <= 0")
    (fun () -> ignore (Histogram.create_log ~lo:0.0 ~hi:10.0 ~bins:5))

let p2_exact_small () =
  let p = P2.create 0.5 in
  List.iter (P2.add p) [ 5.0; 1.0; 3.0 ];
  check_float "exact median of 3" 3.0 (P2.estimate p)

let p2_uniform_median () =
  let p = P2.create 0.5 in
  let g = rng () in
  for _ = 1 to 100_000 do
    P2.add p (Statsched_prng.Rng.float g)
  done;
  check_close ~rel:0.02 "median of U(0,1)" 0.5 (P2.estimate p)

let p2_exponential_p99 () =
  let p = P2.create 0.99 in
  let g = rng () in
  for _ = 1 to 200_000 do
    P2.add p (Statsched_dist.Exponential.sample ~rate:1.0 g)
  done;
  (* p99 of Exp(1) = ln 100 ≈ 4.605 *)
  check_close ~rel:0.05 "p99 of Exp(1)" (log 100.0) (P2.estimate p)

let p2_empty_nan () =
  let p = P2.create 0.5 in
  Alcotest.(check bool) "empty" true (Float.is_nan (P2.estimate p));
  Alcotest.check_raises "q out of range" (Invalid_argument "P2_quantile.create: q outside (0,1)")
    (fun () -> ignore (P2.create 1.0))

(* Regression: before five observations the estimate must use the
   nearest-rank quantile of the sorted sample, not a truncated index. *)
let p2_small_sample_nearest_rank () =
  let estimate_of q xs =
    let p = P2.create q in
    List.iter (P2.add p) xs;
    P2.estimate p
  in
  check_float "single observation, extreme q" 42.0 (estimate_of 0.99 [ 42.0 ]);
  check_float "single observation, low q" 42.0 (estimate_of 0.01 [ 42.0 ]);
  (* n=2: rank ceil(0.5*2)=1 -> the lower value *)
  check_float "median of two is the lower" 1.0 (estimate_of 0.5 [ 2.0; 1.0 ]);
  check_float "p90 of two is the upper" 2.0 (estimate_of 0.9 [ 2.0; 1.0 ]);
  (* n=4: rank ceil(0.1*4)=1 -> minimum; ceil(0.9*4)=4 -> maximum *)
  check_float "p10 of four" 3.0 (estimate_of 0.1 [ 5.0; 4.0; 6.0; 3.0 ]);
  check_float "p90 of four" 6.0 (estimate_of 0.9 [ 5.0; 4.0; 6.0; 3.0 ]);
  check_float "median of four" 4.0 (estimate_of 0.5 [ 5.0; 4.0; 6.0; 3.0 ])

let student_t_table () =
  check_float ~eps:1e-9 "df=9, 95%" 2.262 (Student_t.critical ~df:9 ~confidence:0.95);
  check_float ~eps:1e-9 "df=1, 99%" 63.657 (Student_t.critical ~df:1 ~confidence:0.99);
  check_float ~eps:1e-9 "df=30, 90%" 1.697 (Student_t.critical ~df:30 ~confidence:0.90);
  check_float ~eps:1e-9 "df=1000 uses normal limit" 1.960
    (Student_t.critical ~df:1000 ~confidence:0.95)

let student_t_monotone () =
  (* Critical value decreases with df, increases with confidence. *)
  for df = 1 to 29 do
    Alcotest.(check bool) "decreasing in df" true
      (Student_t.critical ~df ~confidence:0.95
      >= Student_t.critical ~df:(df + 1) ~confidence:0.95)
  done;
  Alcotest.(check bool) "increasing in confidence" true
    (Student_t.critical ~df:10 ~confidence:0.99 > Student_t.critical ~df:10 ~confidence:0.90)

let student_t_errors () =
  Alcotest.check_raises "df < 1" (Invalid_argument "Student_t.critical: df < 1")
    (fun () -> ignore (Student_t.critical ~df:0 ~confidence:0.95))

let confidence_known () =
  (* 10 samples with known mean/std. *)
  let xs = [| 10.0; 12.0; 9.0; 11.0; 10.5; 9.5; 10.2; 11.3; 9.8; 10.7 |] in
  let i = Confidence.of_samples xs in
  check_close ~rel:1e-9 "mean" 10.4 i.Confidence.mean;
  Alcotest.(check int) "replications" 10 i.Confidence.replications;
  Alcotest.(check bool) "half-width positive" true (i.Confidence.half_width > 0.0);
  Alcotest.(check bool) "mean inside own interval" true
    (Confidence.lower i < 10.4 && 10.4 < Confidence.upper i)

let confidence_single_sample () =
  let i = Confidence.of_samples [| 5.0 |] in
  check_float "mean" 5.0 i.Confidence.mean;
  Alcotest.(check bool) "nan half width" true (Float.is_nan i.Confidence.half_width)

let confidence_coverage () =
  (* Frequentist check: the 95% CI over 10 normal-ish samples should
     contain the true mean in roughly 95% of trials. *)
  let g = rng () in
  let trials = 400 in
  let covered = ref 0 in
  for _ = 1 to trials do
    (* sum of 12 uniforms - 6 approximates N(0,1) *)
    let normal () =
      let s = ref 0.0 in
      for _ = 1 to 12 do
        s := !s +. Statsched_prng.Rng.float g
      done;
      !s -. 6.0
    in
    let xs = Array.init 10 (fun _ -> 3.0 +. normal ()) in
    let i = Confidence.of_samples xs in
    if Confidence.lower i <= 3.0 && 3.0 <= Confidence.upper i then incr covered
  done;
  let coverage = float_of_int !covered /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "coverage %.3f within [0.90, 0.99]" coverage)
    true
    (0.90 <= coverage && coverage <= 0.99)

(* Regression: a nan half-width (single replication, or batch-means
   fairness) must render as a bare mean, never as "m ± nan". *)
let confidence_pp_nan () =
  let render i = Format.asprintf "%a" Confidence.pp i in
  let nan_interval =
    { Confidence.mean = 1.5; half_width = Float.nan; confidence = 0.95;
      replications = 1 }
  in
  Alcotest.(check string) "nan half-width omits the ± term" "1.5"
    (render nan_interval);
  let normal =
    { Confidence.mean = 1.5; half_width = 0.25; confidence = 0.95;
      replications = 5 }
  in
  Alcotest.(check string) "finite half-width keeps the ± term" "1.5 ± 0.25"
    (render normal)

let batch_means_basic () =
  let b = Batch_means.create ~batch_size:3 in
  List.iter (Batch_means.add b) [ 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0 ];
  Alcotest.(check int) "two complete batches" 2 (Batch_means.completed_batches b);
  Alcotest.(check int) "one pending observation" 1 (Batch_means.pending b);
  Alcotest.(check int) "seven observations" 7 (Batch_means.count b);
  check_array ~eps:1e-12 "batch means" [| 2.0; 5.0 |] (Batch_means.batch_means b);
  (* Regression: the grand mean is the exact sample mean 28/7 = 4.0; the
     pre-fix code discarded the trailing partial batch (the 7.0) and
     returned (2+5)/2 = 3.5. *)
  check_float ~eps:1e-12 "grand mean includes the partial batch" 4.0
    (Batch_means.grand_mean b)

let batch_means_partial_batch () =
  (* batch_size dividing n: pending = 0 and the weighted grand mean
     coincides with the unweighted mean of the batch means. *)
  let b = Batch_means.create ~batch_size:2 in
  List.iter (Batch_means.add b) [ 1.0; 3.0; 5.0; 7.0 ];
  Alcotest.(check int) "no pending" 0 (Batch_means.pending b);
  check_float ~eps:1e-12 "exact division" 4.0 (Batch_means.grand_mean b);
  (* Only a partial batch: no interval possible, but the grand mean is
     already the sample mean. *)
  let p = Batch_means.create ~batch_size:10 in
  List.iter (Batch_means.add p) [ 2.0; 4.0 ];
  Alcotest.(check int) "all pending" 2 (Batch_means.pending p);
  Alcotest.(check int) "no completed batch" 0 (Batch_means.completed_batches p);
  check_float ~eps:1e-12 "partial-only grand mean" 3.0 (Batch_means.grand_mean p);
  Alcotest.(check bool) "empty grand mean is nan" true
    (Float.is_nan (Batch_means.grand_mean (Batch_means.create ~batch_size:4)))

let prop_batch_means_grand_mean_exact =
  qcheck ~count:200 "batch means: grand mean = sample mean for any batch_size"
    QCheck2.Gen.(
      pair (int_range 1 17)
        (list_size (int_range 1 100) (float_bound_inclusive 50.0)))
    (fun (batch_size, xs) ->
      let b = Batch_means.create ~batch_size in
      List.iter (Batch_means.add b) xs;
      let n = List.length xs in
      let exact = List.fold_left ( +. ) 0.0 xs /. float_of_int n in
      Alcotest.(check int) "count" n (Batch_means.count b);
      Alcotest.(check int) "pending"
        (n - (Batch_means.completed_batches b * batch_size))
        (Batch_means.pending b);
      abs_float (Batch_means.grand_mean b -. exact)
      <= 1e-9 *. (1.0 +. abs_float exact))

let batch_means_interval () =
  let b = Batch_means.create ~batch_size:2 in
  List.iter (Batch_means.add b) [ 1.0; 3.0; 2.0; 4.0; 3.0; 5.0 ];
  let i = Batch_means.interval b in
  check_float ~eps:1e-12 "interval mean" 3.0 i.Confidence.mean;
  Alcotest.check_raises "no batch" (Invalid_argument "Batch_means.interval: no completed batch")
    (fun () -> ignore (Batch_means.interval (Batch_means.create ~batch_size:5)))

let summary_known () =
  let s = Summary.of_array [| 4.0; 1.0; 3.0; 2.0; 5.0 |] in
  check_float "mean" 3.0 s.Summary.mean;
  check_float "median" 3.0 s.Summary.median;
  check_float "min" 1.0 s.Summary.min;
  check_float "max" 5.0 s.Summary.max;
  Alcotest.(check int) "count" 5 s.Summary.count;
  check_float ~eps:1e-12 "std" (sqrt 2.5) s.Summary.std

let summary_quantile_interpolation () =
  check_float ~eps:1e-12 "q0.25 of [0..4]" 1.0
    (Summary.quantile_of_sorted [| 0.0; 1.0; 2.0; 3.0; 4.0 |] 0.25);
  check_float ~eps:1e-12 "interpolated" 0.5
    (Summary.quantile_of_sorted [| 0.0; 1.0 |] 0.5);
  Alcotest.check_raises "empty" (Invalid_argument "Summary.quantile_of_sorted: empty")
    (fun () -> ignore (Summary.quantile_of_sorted [||] 0.5))

let prop_p2_between_min_max =
  qcheck ~count:100 "P2 estimate within sample range"
    QCheck2.Gen.(list_size (int_range 5 500) (float_bound_inclusive 100.0))
    (fun xs ->
      let p = P2.create 0.9 in
      List.iter (P2.add p) xs;
      let mn = List.fold_left min infinity xs in
      let mx = List.fold_left max neg_infinity xs in
      let e = P2.estimate p in
      mn -. 1e-9 <= e && e <= mx +. 1e-9)

let prop_summary_ordered =
  qcheck ~count:100 "summary quantiles are ordered"
    QCheck2.Gen.(list_size (int_range 1 200) (float_bound_inclusive 1000.0))
    (fun xs ->
      let s = Summary.of_array (Array.of_list xs) in
      s.Summary.min <= s.Summary.median
      && s.Summary.median <= s.Summary.p90
      && s.Summary.p90 <= s.Summary.p99
      && s.Summary.p99 <= s.Summary.max)

let suite =
  [
    test "welford: textbook values" welford_known_values;
    test "welford: empty and singleton" welford_empty_and_single;
    test "welford: merge equals pooled" welford_merge;
    test "welford: merge with empty" welford_merge_empty;
    test "welford: reset and copy" welford_reset_copy;
    test "welford: catastrophic-cancellation resistance" welford_numerical_stability;
    prop_welford_matches_naive;
    test "tally: piecewise time average" tally_time_average;
    test "tally: initial value" tally_initial_value;
    test "tally: warm-up reset" tally_reset;
    test "tally: time monotonicity enforced" tally_backwards_time;
    test "tally: empty is nan" tally_empty_nan;
    test "histogram: linear bins with under/overflow" histogram_linear;
    test "histogram: log bins" histogram_log;
    test "histogram: quantile estimation" histogram_quantile;
    test "histogram: parameter validation" histogram_errors;
    test "p2: exact before 5 samples" p2_exact_small;
    slow_test "p2: median of uniform" p2_uniform_median;
    slow_test "p2: p99 of exponential" p2_exponential_p99;
    test "p2: empty and invalid q" p2_empty_nan;
    test "p2: nearest-rank for small samples" p2_small_sample_nearest_rank;
    test "confidence: nan half-width rendering" confidence_pp_nan;
    test "student-t: table values" student_t_table;
    test "student-t: monotonicity" student_t_monotone;
    test "student-t: df validation" student_t_errors;
    test "confidence: known sample" confidence_known;
    test "confidence: single sample" confidence_single_sample;
    slow_test "confidence: empirical coverage" confidence_coverage;
    test "batch means: batching" batch_means_basic;
    test "batch means: partial batches" batch_means_partial_batch;
    test "batch means: interval" batch_means_interval;
    prop_batch_means_grand_mean_exact;
    test "summary: known values" summary_known;
    test "summary: quantile interpolation" summary_quantile_interpolation;
    prop_p2_between_min_max;
    prop_summary_ordered;
  ]
