(** Walker's alias method: O(1) sampling from a fixed discrete
    distribution.

    Construction is O(n) over a non-negative weight vector; each draw
    costs one uniform integer, one uniform float, and two array reads —
    no allocation, no rejection loop.  Used wherever a dispatcher needs
    a speed-weighted random computer (the JIQ no-idle fallback, the
    speed-aware JSQ(d) probe) without an O(n) prefix-sum scan.

    Draw order is part of the contract: {!draw} consumes exactly one
    [Rng.int] then one more draw (the stream position [Rng.float]
    would use — the comparison is done on [Rng.bits53] against an
    integer threshold, which decides identically and keeps the draw
    allocation-free), regardless of whether the column or its alias
    wins.  Replays depend on it. *)

type t

val create : float array -> t
(** [create weights] builds the alias table.  Weights need not be
    normalised.

    @raise Invalid_argument on an empty vector, a negative or NaN
    weight, or a non-positive total. *)

val length : t -> int
(** Number of categories. *)

val draw : t -> Statsched_prng.Rng.t -> int
(** Sample a category index with probability proportional to its
    weight. *)
