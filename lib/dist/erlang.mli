(** Erlang-k distribution (sum of k exponentials).

    The low-variability counterpart of the hyperexponential: CV = 1/√k < 1.
    Used in sensitivity studies of the dispatching strategy to arrival
    burstiness below Poisson. *)

val create : k:int -> rate:float -> Distribution.t
(** [create ~k ~rate] is the sum of [k] independent Exp([rate]) variates:
    mean [k/rate], variance [k/rate²].

    @raise Invalid_argument if [k <= 0] or [rate <= 0]. *)

val of_mean_cv : mean:float -> cv:float -> Distribution.t
(** [of_mean_cv ~mean ~cv] picks [k = round (1/cv²)] (at least 1) and the
    matching rate; the realised CV is [1/√k], the closest Erlang can get.

    @raise Invalid_argument if [mean <= 0], [cv <= 0] or [cv > 1]. *)
