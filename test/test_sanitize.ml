open Test_util
module Engine = Statsched_des.Engine
module Event_queue = Statsched_des.Event_queue
module Core = Statsched_core
module Cluster = Statsched_cluster
module Workload = Cluster.Workload
module Simulation = Cluster.Simulation
module Scheduler = Cluster.Scheduler
module Fault = Cluster.Fault
module Sanitize = Cluster.Sanitize

let violation_fires msg f =
  match f () with
  | exception Sanitize.Violation _ -> ()
  | _ -> Alcotest.fail (msg ^ ": expected Sanitize.Violation, none raised")

(* ------------------------------------------------------------------ *)
(* Each invariant checker actually fires                               *)

let clock_monotonicity_fires () =
  let s = Sanitize.create () in
  Sanitize.check_time s ~now:5.0;
  Sanitize.check_time s ~now:5.0;
  (* equal times are fine *)
  Sanitize.check_time s ~now:7.5;
  violation_fires "clock regression" (fun () -> Sanitize.check_time s ~now:3.0);
  violation_fires "NaN clock" (fun () -> Sanitize.check_time (Sanitize.create ()) ~now:nan)

let heap_order_fires () =
  let q = Event_queue.create () in
  ignore (Event_queue.add q ~time:3.0 "c");
  ignore (Event_queue.add q ~time:1.0 "a");
  ignore (Event_queue.add q ~time:2.0 "b");
  Alcotest.(check bool) "fresh queue is heap-ordered" true (Event_queue.heap_ordered q);
  Event_queue.Testing.corrupt q;
  Alcotest.(check bool) "corrupted queue detected" false (Event_queue.heap_ordered q)

let engine_heap_check_fires () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:1.0 (fun _ -> ()));
  ignore (Engine.schedule e ~delay:2.0 (fun _ -> ()));
  ignore (Engine.schedule e ~delay:3.0 (fun _ -> ()));
  let s = Sanitize.create () in
  Sanitize.check_engine s e;
  (* healthy engine passes *)
  Engine.Testing.corrupt_heap e;
  violation_fires "corrupted engine heap" (fun () -> Sanitize.check_engine s e)

let job_conservation_fires () =
  let s = Sanitize.create () in
  Sanitize.on_arrival s;
  Sanitize.on_arrival s;
  Sanitize.on_arrival s;
  Sanitize.on_completion s;
  Sanitize.check_conservation s ~in_system:2;
  (* balanced *)
  violation_fires "leaked job" (fun () -> Sanitize.check_conservation s ~in_system:1);
  violation_fires "phantom job" (fun () -> Sanitize.check_conservation s ~in_system:3);
  violation_fires "negative in-system" (fun () ->
      Sanitize.check_conservation s ~in_system:(-1));
  (* a dropped job balances the books again *)
  Sanitize.on_drop s;
  Sanitize.check_conservation s ~in_system:1

let allocation_feasibility_fires () =
  let speeds = [| 1.0; 1.0 |] in
  Sanitize.check_allocation ~rho:0.7 ~speeds [| 0.5; 0.5 |];
  (* feasible *)
  Sanitize.check_allocation ~rho:0.7 ~speeds (Core.Allocation.optimized ~rho:0.7 speeds);
  violation_fires "saturated computer (alpha*lambda >= s)" (fun () ->
      (* lambda = 0.9 * 2 = 1.8; alpha_0*lambda = 1.62 >= 1 *)
      Sanitize.check_allocation ~rho:0.9 ~speeds [| 0.9; 0.1 |]);
  violation_fires "fractions not summing to 1" (fun () ->
      Sanitize.check_allocation ~rho:0.1 ~speeds [| 0.3; 0.3 |]);
  violation_fires "negative fraction" (fun () ->
      Sanitize.check_allocation ~rho:0.1 ~speeds [| 1.2; -0.2 |]);
  violation_fires "non-finite fraction" (fun () ->
      Sanitize.check_allocation ~rho:0.1 ~speeds [| nan; 1.0 |]);
  violation_fires "length mismatch" (fun () ->
      Sanitize.check_allocation ~rho:0.1 ~speeds [| 1.0 |]);
  (* ~saturation:false tolerates a deliberately overloaded computer
     (Figure 6's mis-estimation study) but still checks the vector. *)
  Sanitize.check_allocation ~saturation:false ~rho:0.9 ~speeds [| 0.9; 0.1 |];
  violation_fires "saturation off still checks sum" (fun () ->
      Sanitize.check_allocation ~saturation:false ~rho:0.9 ~speeds [| 0.9; 0.3 |])

let env_toggle () =
  (* The variable is not set under dune's test runner unless test/dune
     sets it; exercise the documented parsing via the typed API only. *)
  Alcotest.(check bool) "create starts balanced" true
    (match Sanitize.check_conservation (Sanitize.create ()) ~in_system:0 with
    | () -> true)

(* ------------------------------------------------------------------ *)
(* Sanitized runs are bit-identical to unsanitized runs                *)

let run_table3 ?faults ~sanitize ~scheduler () =
  let speeds = Core.Speeds.table3 in
  let workload = Workload.paper_default ~rho:0.7 ~speeds in
  let cfg =
    Simulation.default_config ?faults ~horizon:40_000.0 ~warmup:10_000.0 ~speeds
      ~workload ~scheduler ()
  in
  Simulation.run ~sanitize cfg

let sanitize_bit_identity () =
  List.iter
    (fun (name, faults, scheduler) ->
      let plain = run_table3 ?faults ~sanitize:false ~scheduler () in
      let sanitized = run_table3 ?faults ~sanitize:true ~scheduler () in
      check_float ~eps:0.0
        (name ^ ": mean response time bit-identical")
        plain.Simulation.metrics.Core.Metrics.mean_response_time
        sanitized.Simulation.metrics.Core.Metrics.mean_response_time;
      check_float ~eps:0.0
        (name ^ ": fairness bit-identical")
        plain.Simulation.metrics.Core.Metrics.fairness
        sanitized.Simulation.metrics.Core.Metrics.fairness;
      Alcotest.(check int)
        (name ^ ": same event count")
        plain.Simulation.events_executed sanitized.Simulation.events_executed;
      Alcotest.(check int)
        (name ^ ": same arrivals")
        plain.Simulation.total_arrivals sanitized.Simulation.total_arrivals;
      check_array ~eps:0.0
        (name ^ ": dispatch fractions bit-identical")
        plain.Simulation.dispatch_fractions sanitized.Simulation.dispatch_fractions;
      Alcotest.(check bool)
        (name ^ ": per-computer stats identical")
        true
        (plain.Simulation.per_computer = sanitized.Simulation.per_computer))
    [
      ("ORR", None, Scheduler.static Core.Policy.orr);
      ("WRR", None, Scheduler.static Core.Policy.wrr);
      ("LeastLoad", None, Scheduler.least_load_paper);
      ("AdaptiveORR", None, Scheduler.adaptive_orr ());
      ("SITA", None, Scheduler.sita_paper ());
      ( "ORR+drop-faults",
        Some (Fault.exponential ~on_failure:Fault.Drop ~mtbf:2000.0 ~mttr:50.0 ()),
        Scheduler.static Core.Policy.orr );
      ( "ORR+requeue-faults",
        Some (Fault.exponential ~on_failure:Fault.Requeue ~mtbf:2000.0 ~mttr:50.0 ()),
        Scheduler.static Core.Policy.orr );
      ( "LeastLoad+resume-faults",
        Some (Fault.exponential ~on_failure:Fault.Resume ~mtbf:2000.0 ~mttr:50.0 ()),
        Scheduler.least_load_paper );
    ]

(* A healthy fault-injected run satisfies conservation end to end for
   every discipline (drain/requeue/drop paths all exercised). *)
let sanitized_disciplines_pass () =
  List.iter
    (fun discipline ->
      let speeds = [| 1.0; 2.0; 4.0 |] in
      let workload = Workload.paper_default ~rho:0.6 ~speeds in
      let cfg =
        Simulation.default_config ~discipline
          ~faults:(Fault.exponential ~on_failure:Fault.Drop ~mtbf:3000.0 ~mttr:80.0 ())
          ~horizon:20_000.0 ~warmup:5_000.0 ~speeds ~workload
          ~scheduler:(Scheduler.static Core.Policy.orr) ()
      in
      ignore (Simulation.run ~sanitize:true cfg))
    [ Simulation.Ps; Simulation.Rr 0.5; Simulation.Fcfs; Simulation.Srpt ]

let suite =
  [
    test "sanitize: clock monotonicity fires" clock_monotonicity_fires;
    test "sanitize: event-queue heap audit fires" heap_order_fires;
    test "sanitize: engine heap check fires" engine_heap_check_fires;
    test "sanitize: job conservation fires" job_conservation_fires;
    test "sanitize: allocation feasibility fires" allocation_feasibility_fires;
    test "sanitize: fresh state is balanced" env_toggle;
    slow_test "sanitize: sanitized runs bit-identical" sanitize_bit_identity;
    slow_test "sanitize: all disciplines pass under faults" sanitized_disciplines_pass;
  ]
