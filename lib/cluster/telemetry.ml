module Job = Statsched_queueing.Job
module Registry = Statsched_obs.Registry
module Trace_event = Statsched_obs.Trace_event
module Hdr = Statsched_obs.Hdr_histogram
module Clock = Statsched_obs.Clock

(* Trace lane layout: pid 0 holds one thread per computer carrying job
   spans (ts = arrival, dur = response time); pid 1 mirrors the
   computers with down/degraded capacity spans and drop markers. *)
let jobs_pid = 0
let computers_pid = 1

type t = {
  config : Simulation.config;
  registry : Registry.t;
  tracer : Trace_event.t option;
  wall_start : float;
  dispatches : Registry.counter array;
  completions : Registry.counter array;
  drops : Registry.counter array;
  rate_changes : Registry.counter;
  rt_hist : Registry.histogram;
  rr_hist : Registry.histogram;
  (* Current effective rate of each computer and when it last changed;
     integrates into capacity-weighted down-seconds. *)
  rate : float array;
  rate_since : float array;
  down_seconds : float array;
}

let per_computer_family registry ~help name n =
  Array.init n (fun i ->
      Registry.counter registry ~help ~labels:[ ("computer", string_of_int i) ] name)

let create ?(trace = false) (config : Simulation.config) =
  let n = Array.length config.Simulation.speeds in
  let registry = Registry.create () in
  let tracer =
    if not trace then None
    else begin
      let tr = Trace_event.create () in
      Trace_event.process_name tr ~pid:jobs_pid "jobs";
      Trace_event.process_name tr ~pid:computers_pid "computers";
      Array.iteri
        (fun i speed ->
          let label = Printf.sprintf "computer %d (speed %g)" i speed in
          Trace_event.thread_name tr ~pid:jobs_pid ~tid:i label;
          Trace_event.thread_name tr ~pid:computers_pid ~tid:i label)
        config.Simulation.speeds;
      Some tr
    end
  in
  {
    config;
    registry;
    tracer;
    wall_start = Clock.now ();
    dispatches =
      per_computer_family registry "statsched_jobs_dispatched_total" n
        ~help:"Jobs the scheduler sent to this computer (warm-up included)";
    completions =
      per_computer_family registry "statsched_jobs_completed_total" n
        ~help:"Jobs that finished on this computer (warm-up included)";
    drops =
      per_computer_family registry "statsched_jobs_dropped_total" n
        ~help:"In-flight jobs lost to a crash of this computer";
    rate_changes =
      Registry.counter registry "statsched_fault_rate_changes_total"
        ~help:"Effective-speed changes applied by the fault plan";
    (* Same layouts as Collector's tail histograms so either source can
       be merged into these on export. *)
    rt_hist =
      Registry.histogram registry "statsched_response_time_seconds" ~lo:1e-3 ~hi:1e7
        ~help:"Response time of measured jobs (simulated seconds)";
    rr_hist =
      Registry.histogram registry "statsched_response_ratio" ~lo:1e-3 ~hi:1e5
        ~help:"Response ratio (response time / service demand) of measured jobs";
    rate = Array.make n 1.0;
    rate_since = Array.make n 0.0;
    down_seconds = Array.make n 0.0;
  }

let registry t = t.registry
let metric_count t = Registry.metric_count t.registry
let trace_event_count t =
  match t.tracer with None -> 0 | Some tr -> Trace_event.event_count tr

let on_dispatch t job =
  let i = job.Job.computer in
  if i >= 0 && i < Array.length t.dispatches then Registry.inc t.dispatches.(i)

let on_completion t job =
  let i = job.Job.computer in
  if i >= 0 && i < Array.length t.completions then Registry.inc t.completions.(i);
  let measured = job.Job.arrival >= t.config.Simulation.warmup in
  if measured then begin
    Hdr.add t.rt_hist (Job.response_time job);
    Hdr.add t.rr_hist (Job.response_ratio job)
  end;
  match t.tracer with
  | None -> ()
  | Some tr ->
    let rt = Job.response_time job in
    let wait = if job.Job.start >= 0.0 then job.Job.start -. job.Job.arrival else 0.0 in
    Trace_event.complete tr ~cat:"job" ~name:"job" ~ts:job.Job.arrival ~dur:rt
      ~pid:jobs_pid ~tid:i
      ~args:
        [
          ("id", Trace_event.Int job.Job.id);
          ("size", Trace_event.Num job.Job.size);
          ("wait", Trace_event.Num wait);
          ("measured", Trace_event.Str (if measured then "yes" else "no"));
        ]
      ()

let on_drop t job =
  let i = job.Job.computer in
  if i >= 0 && i < Array.length t.drops then begin
    Registry.inc t.drops.(i);
    match t.tracer with
    | None -> ()
    | Some tr ->
      (* A drop is triggered by the rate change being applied right now,
         so the computer's last-change instant is the current sim time. *)
      Trace_event.instant tr ~cat:"fault" ~name:"drop" ~ts:t.rate_since.(i)
        ~pid:computers_pid ~tid:i
        ~args:[ ("id", Trace_event.Int job.Job.id) ]
        ()
  end

(* Close the capacity span that ran at [prev] since [since]. *)
let close_capacity_span t ~computer ~since ~until ~prev =
  if prev < 1.0 && until > since then begin
    t.down_seconds.(computer) <-
      t.down_seconds.(computer) +. ((until -. since) *. (1.0 -. prev));
    match t.tracer with
    | None -> ()
    | Some tr ->
      Trace_event.complete tr ~cat:"fault"
        ~name:(if prev <= 0.0 then "down" else "degraded")
        ~ts:since ~dur:(until -. since) ~pid:computers_pid ~tid:computer
        ~args:[ ("rate", Trace_event.Num prev) ]
        ()
  end

let on_rate_change t ~time ~computer ~rate =
  Registry.inc t.rate_changes;
  close_capacity_span t ~computer ~since:t.rate_since.(computer) ~until:time
    ~prev:t.rate.(computer);
  t.rate.(computer) <- rate;
  t.rate_since.(computer) <- time

let finalize t (result : Simulation.result) =
  let cfg = t.config in
  let n = Array.length cfg.Simulation.speeds in
  let horizon = cfg.Simulation.horizon in
  Array.iteri
    (fun i prev ->
      close_capacity_span t ~computer:i ~since:t.rate_since.(i) ~until:horizon
        ~prev;
      t.rate_since.(i) <- horizon)
    (Array.copy t.rate);
  let gauge ?labels ~help name v =
    Registry.set (Registry.gauge t.registry ~help ?labels name) v
  in
  let per_computer i = [ ("computer", string_of_int i) ] in
  let window = horizon -. cfg.Simulation.warmup in
  for i = 0 to n - 1 do
    let pc = result.Simulation.per_computer.(i) in
    gauge ~labels:(per_computer i) "statsched_computer_speed"
      ~help:"Nominal relative speed" pc.Simulation.speed;
    gauge ~labels:(per_computer i) "statsched_computer_utilization"
      ~help:"Busy fraction over the measurement window" pc.Simulation.utilization;
    gauge ~labels:(per_computer i) "statsched_computer_busy_seconds"
      ~help:"Busy simulated seconds over the measurement window"
      (pc.Simulation.utilization *. window);
    gauge ~labels:(per_computer i) "statsched_computer_down_seconds"
      ~help:"Capacity-weighted seconds of degraded or lost capacity over the run"
      t.down_seconds.(i);
    gauge ~labels:(per_computer i) "statsched_dispatch_fraction"
      ~help:"Share of post-warm-up dispatches this computer received"
      result.Simulation.dispatch_fractions.(i);
    match result.Simulation.intended_fractions with
    | None -> ()
    | Some intended ->
      gauge ~labels:(per_computer i) "statsched_intended_fraction"
        ~help:"Allocation fraction the policy aimed for" intended.(i);
      gauge ~labels:(per_computer i) "statsched_dispatch_drift"
        ~help:"Actual minus intended dispatch fraction"
        (result.Simulation.dispatch_fractions.(i) -. intended.(i))
  done;
  let m = result.Simulation.metrics in
  gauge "statsched_mean_response_time_seconds"
    ~help:"Mean response time over measured jobs"
    m.Statsched_core.Metrics.mean_response_time;
  gauge "statsched_mean_response_ratio" ~help:"Mean response ratio over measured jobs"
    m.Statsched_core.Metrics.mean_response_ratio;
  gauge "statsched_availability"
    ~help:"Capacity-weighted availability over the measurement window"
    m.Statsched_core.Metrics.availability;
  gauge "statsched_jobs_lost" ~help:"Measured jobs lost to failures"
    (float_of_int m.Statsched_core.Metrics.lost_jobs);
  gauge "statsched_jobs_measured" ~help:"Completions inside the measurement window"
    (float_of_int m.Statsched_core.Metrics.jobs);
  gauge "statsched_sim_time_seconds" ~help:"Simulated horizon" horizon;
  gauge "statsched_des_events_total" ~help:"Events the DES engine executed"
    (float_of_int result.Simulation.events_executed);
  gauge "statsched_des_heap_high_water"
    ~help:"Largest number of simultaneously pending events"
    (float_of_int result.Simulation.heap_high_water);
  let wall = Clock.elapsed ~since:t.wall_start in
  gauge "statsched_wall_seconds" ~help:"Wall-clock seconds the run took" wall;
  gauge "statsched_des_events_per_second"
    ~help:"DES engine throughput in events per wall-clock second"
    (if wall > 0.0 then float_of_int result.Simulation.events_executed /. wall
     else 0.0)

let write_metrics t path = Registry.write_prometheus t.registry path

let write_trace t path =
  match t.tracer with
  | None -> ()
  | Some tr -> Trace_event.write_json tr path
