(** QCheck-driven configuration fuzzer.

    Draws random but plausible simulator configurations — speeds,
    utilisations, schedulers, service disciplines, arrival burstiness,
    size distributions, fault plans — runs each at a tiny horizon with
    the runtime sanitizers on, and checks structural invariants no
    configuration may violate: finite non-negative metrics, utilisations
    in [0,1], dispatch fractions summing to 1, conservation between
    arrivals and completions, and (for static policies on a reliable
    cluster) long-run dispatch fractions within a binomial bound of the
    intended allocation.

    Failing configurations are shrunk by QCheck2's integrated shrinking
    and reported as a replayable [schedsim run] command with explicit
    [--horizon]/[--warmup] overrides, so the counterexample reproduces
    at the shell bit for bit. *)

val scenario_gen : Scenario.t QCheck2.Gen.t

val default_horizon : float
(** 8000 simulated seconds. *)

val default_warmup : float
(** 2000 simulated seconds. *)

val check : horizon:float -> warmup:float -> Scenario.t -> (unit, string) result
(** Run one configuration and evaluate the invariants; [Error] carries
    the violation description (including sanitizer reports and uncaught
    exceptions). *)

val property : horizon:float -> warmup:float -> Scenario.t -> bool
(** {!check} as a QCheck2 property; failures report the violation plus
    the replay command via [fail_reportf]. *)

val test : ?count:int -> ?horizon:float -> ?warmup:float -> unit -> QCheck2.Test.t
(** The property packaged as a QCheck2 test (default [count = 30]) — the
    unit-test suite registers this via [QCheck_alcotest]. *)

val run :
  ?count:int -> ?seed:int -> ?horizon:float -> ?warmup:float -> unit -> Check.t list
(** Run the fuzzer standalone (the [simcheck] tool's entry point): a
    single summary check, carrying the shrunk counterexample and replay
    command on failure. *)
