(** Figure 5 — effect of system load.

    The Table 3 base configuration (15 computers, aggregate speed 44)
    under system utilisations from 30 % to 90 %.  Panels: (a) mean
    response ratio, (b) fairness.

    Expected shape: ORR best among statics everywhere; ORR/ORAN close to
    Least-Load at low load; at ρ = 0.9 ORR's mean response ratio ≈ 24 %
    below WRR and ≈ 34 % below WRAN; the Least-Load advantage and the
    round-robin dispatching gain both grow with load. *)

val default_utilizations : float list
(** [0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9]. *)

type t = (float * (string * Runner.point) list) list

val run :
  ?scale:Config.scale ->
  ?seed:int64 ->
  ?jobs:int ->
  ?speeds:float array ->
  ?utilizations:float list ->
  ?schedulers:(string * Statsched_cluster.Scheduler.kind) list ->
  unit ->
  t

val sweeps : t -> Report.sweep list

val to_report : t -> string
