(** Figure 3 — effect of speed skewness.

    18 computers: 2 fast and 16 slow.  Slow speed fixed at 1; fast speed
    swept from 1 (homogeneous) to 20 (highly skewed); system utilisation
    70 %.  Panels: (a) mean response time, (b) mean response ratio,
    (c) fairness, for WRAN/ORAN/WRR/ORR and Dynamic Least-Load.

    Expected shape: optimized allocation wins once speeds differ and its
    margin grows with the ratio (paper: ORR 42 % under WRR and ORAN 49 %
    under WRAN at 20:1); ORR approaches Least-Load at high skew; WRR beats
    ORAN near homogeneity but loses to it at high skew. *)

val default_fast_speeds : float list
(** [1; 2; 4; 6; 8; 10; 12; 16; 20]. *)

type t = (float * (string * Runner.point) list) list
(** One row per fast-computer speed. *)

val run :
  ?scale:Config.scale ->
  ?seed:int64 ->
  ?jobs:int ->
  ?fast_speeds:float list ->
  ?schedulers:(string * Statsched_cluster.Scheduler.kind) list ->
  unit ->
  t

val sweeps : t -> Report.sweep list
(** Panels (a), (b), (c). *)

val to_report : t -> string
