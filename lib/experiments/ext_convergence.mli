(** Extension experiment: how long must a run be?

    The paper runs 4·10⁶ simulated seconds per replication; our default
    scale uses a tenth of that.  This methodological experiment measures
    the drift: the same policies at ρ = 0.9 (where heavy tails converge
    slowest) over a geometric ladder of horizons, with the first quarter
    of each run always discarded.  Read it to choose a horizon: when two
    adjacent rows agree within their confidence intervals, the shorter
    horizon is already adequate for the comparison at hand. *)

val default_horizons : float list
(** [5·10⁴; 10⁵; 2·10⁵; 4·10⁵; 8·10⁵]. *)

type t = (float * (string * Runner.point) list) list

val run :
  ?seed:int64 ->
  ?jobs:int ->
  ?speeds:float array ->
  ?rho:float ->
  ?reps:int ->
  ?horizons:float list ->
  unit ->
  t

val to_report : t -> string
