(** Numerical verification of the optimality theory (Theorems 1–3).

    The paper proves optimality of Algorithm 1 through the Lagrange
    multiplier theorem; this module makes those conditions executable so
    tests (and sceptical users) can check any allocation against the
    Karush–Kuhn–Tucker conditions of

    minimise  F(α) = Σ s_i/(s_i − α_i·λ)        (μ = 1)
    s.t.      Σ α_i = 1,   α_i ≥ 0,   α_i·λ < s_i.

    At an optimum there is a multiplier ν with, for every computer,
    - ∂F/∂α_i = λ·s_i/(s_i − α_i λ)² = ν   if α_i > 0  (stationarity)
    - ∂F/∂α_i ≥ ν                          if α_i = 0  (dual feasibility)

    which is exactly the Theorem 2 cutoff: a computer is parked iff its
    idle-state gradient λ/s_i already exceeds the common ν. *)

val gradient : rho:float -> speeds:float array -> alloc:float array -> float array
(** [∂F/∂α_i] at [alloc].  Saturated components yield [infinity]. *)

type verdict = {
  optimal : bool;  (** all conditions hold within [tol] *)
  stationarity_residual : float;
      (** max relative spread of the gradient over the active set *)
  dual_residual : float;
      (** how much any parked computer's gradient falls below the active
          gradient (0 when none does) *)
  feasibility_residual : float;
      (** max violation of Σα = 1 / non-negativity / non-saturation *)
  multiplier : float;  (** the common gradient ν over the active set *)
}

val check : ?tol:float -> rho:float -> speeds:float array -> float array -> verdict
(** [check ~rho ~speeds alloc] evaluates the KKT conditions at [alloc].
    Default [tol] 1e-6 (relative).

    @raise Invalid_argument on malformed inputs. *)

val brute_force_two : ?grid:int -> rho:float -> float array -> float array
(** [brute_force_two ~rho speeds] for a {e two}-computer system: grid
    search of the feasible [α₁] (default 10⁶ points) — an
    implementation-independent reference optimiser the tests compare
    Algorithm 1 against.

    @raise Invalid_argument unless exactly two speeds are given. *)
