schedlint is a typed whole-program lint: it typechecks each fixture (or
loads dune's .cmt typedtrees when available), builds a call graph, and
runs rules R1-R10 with file:line:col diagnostics and exit code 1.

R1: Stdlib.Random is banned outside lib/prng/ (determinism).  In lib/,
the interprocedural R7 additionally reports every function whose call
chain reaches the sink:

  $ mkdir -p lib/prng bin
  $ cat > lib/r1.ml <<'EOF'
  > let roll () = Random.int 6
  > let qualified () = Stdlib.Random.float 1.0
  > EOF
  $ schedlint lib/r1.ml
  lib/r1.ml:1:0: [R7] R1.roll reaches Stdlib.Random via R1.roll -> Random.int; deterministic replay breaks (route through lib/prng, lib/par or Obs.Clock)
  lib/r1.ml:1:14: [R1] Stdlib.Random is non-deterministic here; draw from Statsched_prng.Rng
  lib/r1.ml:2:0: [R7] R1.qualified reaches Stdlib.Random via R1.qualified -> Random.float; deterministic replay breaks (route through lib/prng, lib/par or Obs.Clock)
  lib/r1.ml:2:19: [R1] Stdlib.Random is non-deterministic here; draw from Statsched_prng.Rng
  schedlint: 4 violations in 1 file scanned
  [1]

Module aliasing does not launder the reference (the old syntactic lint
missed this):

  $ cat > bin/alias.ml <<'EOF'
  > module R = Random
  > let roll () = R.int 6
  > EOF
  $ schedlint bin/alias.ml
  bin/alias.ml:2:14: [R1] Stdlib.Random is non-deterministic here; draw from Statsched_prng.Rng
  schedlint: 1 violation in 1 file scanned
  [1]

...but Random is allowed inside lib/prng/ (the seeded RNG layer itself):

  $ cp lib/r1.ml lib/prng/r1.ml
  $ schedlint lib/prng/r1.ml
  schedlint: 0 violations in 1 file scanned

R2: wall-clock reads are banned (simulated time comes from the engine):

  $ cat > bin/r2.ml <<'EOF'
  > let now () = Unix.gettimeofday ()
  > let t0 = Unix.time
  > let cpu () = Sys.time ()
  > EOF
  $ schedlint bin/r2.ml
  bin/r2.ml:1:13: [R2] Unix.gettimeofday reads the wall clock; simulated time comes from Engine.now
  bin/r2.ml:2:9: [R2] Unix.time reads the wall clock; simulated time comes from Engine.now
  bin/r2.ml:3:13: [R2] Sys.time reads the wall clock; simulated time comes from Engine.now
  schedlint: 3 violations in 1 file scanned
  [1]

R3: no polymorphic equality on floats (now through type inference, so an
unannotated parameter that unifies with float is caught), and no
physical equality at all:

  $ cat > lib/r3.ml <<'EOF'
  > let is_zero x = x = 0.0
  > let inferred a b = a = b +. 1.0
  > let physical a b = a == b || a != b
  > let fine x = x < 0.5 && Float.equal x x
  > EOF
  $ schedlint lib/r3.ml
  lib/r3.ml:1:18: [R3] polymorphic = on a float; compare with a tolerance or Float.equal
  lib/r3.ml:2:21: [R3] polymorphic = on a float; compare with a tolerance or Float.equal
  lib/r3.ml:3:21: [R3] physical equality (==) outside physical-identity idioms
  lib/r3.ml:3:31: [R3] physical equality (!=) outside physical-identity idioms
  schedlint: 4 violations in 1 file scanned
  [1]

R4: partial functions are banned in lib/ (but tolerated in bin/):

  $ cat > lib/r4.ml <<'EOF'
  > let first xs = List.hd xs
  > let force o = Option.get o
  > EOF
  $ schedlint lib/r4.ml
  lib/r4.ml:1:15: [R4] List.hd is partial; match explicitly or keep the invariant in the type
  lib/r4.ml:2:14: [R4] Option.get is partial; match explicitly or keep the invariant in the type
  schedlint: 2 violations in 1 file scanned
  [1]
  $ cp lib/r4.ml bin/r4.ml
  $ schedlint bin/r4.ml
  schedlint: 0 violations in 1 file scanned

R5: top-level mutable state is banned in lib/, including the container
constructors (Array.make, Bytes.create, Buffer.create, Atomic.make)
that the first version of this rule missed; nested modules count,
function-local state is fine:

  $ cat > lib/r5.ml <<'EOF'
  > let counter = ref 0
  > let cache = Hashtbl.create 16
  > let scratch = Array.make 8 0.0
  > let buf = Buffer.create 256
  > let bytes = Bytes.create 32
  > let flag = Atomic.make false
  > module Nested = struct
  >   let hidden = ref []
  > end
  > let local () = let r = ref 0 in incr r; !r
  > EOF
  $ schedlint lib/r5.ml
  lib/r5.ml:1:0: [R5] top-level mutable state (ref) in lib/; thread state through a record
  lib/r5.ml:2:0: [R5] top-level mutable state (Hashtbl) in lib/; thread state through a record
  lib/r5.ml:3:0: [R5] top-level mutable state (Array.make) in lib/; thread state through a record
  lib/r5.ml:4:0: [R5] top-level mutable state (Buffer) in lib/; thread state through a record
  lib/r5.ml:5:0: [R5] top-level mutable state (Bytes) in lib/; thread state through a record
  lib/r5.ml:6:0: [R5] top-level mutable state (Atomic) in lib/; thread state through a record
  lib/r5.ml:8:2: [R5] top-level mutable state (ref) in lib/; thread state through a record
  schedlint: 7 violations in 1 file scanned
  [1]

R6: Domain.spawn is confined to lib/par/ (Domain.join and the rest of
the Domain API stay available to the pool's callers):

  $ cat > lib/r6.ml <<'EOF'
  > let go f = Domain.spawn f
  > let join d = Domain.join d
  > EOF
  $ schedlint lib/r6.ml
  lib/r6.ml:1:0: [R7] R6.go reaches Domain.spawn via R6.go -> Domain.spawn; deterministic replay breaks (route through lib/prng, lib/par or Obs.Clock)
  lib/r6.ml:1:11: [R6] Domain.spawn outside lib/par; fan out through Statsched_par.Par.map
  schedlint: 2 violations in 1 file scanned
  [1]
  $ mkdir -p lib/par
  $ cp lib/r6.ml lib/par/r6.ml
  $ schedlint lib/par/r6.ml
  schedlint: 0 violations in 1 file scanned

R7: determinism taint is interprocedural — a lib/ function that only
reaches the sink through two intermediate helpers is still reported,
with the full call path:

  $ cat > lib/r7chain.ml <<'EOF'
  > let draw () = Random.int 100 (* schedlint: allow R1 *)
  > let jitter () = 1 + draw ()
  > let delay () = 2 * jitter ()
  > let plan () = delay () + 1
  > EOF
  $ schedlint lib/r7chain.ml
  lib/r7chain.ml:1:0: [R7] R7chain.draw reaches Stdlib.Random via R7chain.draw -> Random.int; deterministic replay breaks (route through lib/prng, lib/par or Obs.Clock)
  lib/r7chain.ml:2:0: [R7] R7chain.jitter reaches Stdlib.Random via R7chain.jitter -> R7chain.draw -> Random.int; deterministic replay breaks (route through lib/prng, lib/par or Obs.Clock)
  lib/r7chain.ml:3:0: [R7] R7chain.delay reaches Stdlib.Random via R7chain.delay -> R7chain.jitter -> R7chain.draw -> Random.int; deterministic replay breaks (route through lib/prng, lib/par or Obs.Clock)
  lib/r7chain.ml:4:0: [R7] R7chain.plan reaches Stdlib.Random via R7chain.plan -> R7chain.delay -> R7chain.jitter -> R7chain.draw -> Random.int; deterministic replay breaks (route through lib/prng, lib/par or Obs.Clock)
  schedlint: 4 violations in 1 file scanned
  [1]

An explicit `allow R7` on the sink line sanctions the whole chain
(unlike `allow R1`, which only silences the use-site diagnostic):

  $ cat > lib/r7ok.ml <<'EOF'
  > let draw () = Random.int 100 (* schedlint: allow R1 R7 *)
  > let jitter () = 1 + draw ()
  > EOF
  $ schedlint lib/r7ok.ml
  schedlint: 0 violations in 1 file scanned

R8: [@schedsim.hot] functions must not allocate — in their own body or
in any analysed callee, even when the allocation hides behind a helper.
A non-escaping local ref is fine (the compiler unboxes it):

  $ cat > lib/r8.ml <<'EOF'
  > let pair x = (x, x)
  > let[@schedsim.hot] hot x = fst (pair x)
  > let[@schedsim.hot] direct x = Some x
  > let[@schedsim.hot] fine q x =
  >   let acc = ref x in
  >   for i = 0 to 9 do acc := !acc + (i * q) done;
  >   !acc
  > EOF
  $ schedlint lib/r8.ml
  lib/r8.ml:1:13: [R8] tuple allocation on hot path R8.hot -> R8.pair; [@schedsim.hot] code must not allocate
  lib/r8.ml:3:30: [R8] constructor Some allocation on hot path R8.direct; [@schedsim.hot] code must not allocate
  schedlint: 2 violations in 1 file scanned
  [1]

[@schedsim.cold] stops the traversal at amortized growth paths:

  $ cat > lib/r8cold.ml <<'EOF'
  > let[@schedsim.cold] grow n = Array.make (2 * n) 0
  > let[@schedsim.hot] hot n = if n > 0 then ignore (grow n)
  > EOF
  $ schedlint lib/r8cold.ml
  schedlint: 0 violations in 1 file scanned

R9: polymorphic comparison at any type *containing* floats, resolved
through the typedtree — records, tuples, options; the old source-level
heuristic could not see any of these:

  $ cat > lib/r9.ml <<'EOF'
  > type point = { x : float; y : float }
  > let same (a : point) b = a = b
  > let position xs (p : point) = List.mem p xs
  > let tied (a : float option) b = compare a b
  > let ints (a : int list) b = a = b
  > EOF
  $ schedlint lib/r9.ml
  lib/r9.ml:2:27: [R9] polymorphic = at a type containing floats (point); compare the float components with Float.compare/Float.equal
  lib/r9.ml:3:30: [R9] polymorphic List.mem at a type containing floats (point); compare the float components with Float.compare/Float.equal
  lib/r9.ml:4:32: [R9] polymorphic compare at a type containing floats (float option); compare the float components with Float.compare/Float.equal
  schedlint: 3 violations in 1 file scanned
  [1]

R10: an allow marker that suppresses nothing is itself a violation, so
escape hatches cannot rot in place:

  $ cat > bin/r10.ml <<'EOF'
  > (* schedlint: allow R2 *)
  > let fine = 42
  > EOF
  $ schedlint bin/r10.ml
  bin/r10.ml:1:0: [R10] stale marker: `schedlint: allow R2` suppresses nothing; delete it
  schedlint: 1 violation in 1 file scanned
  [1]

Marker syntax quoted inside a string literal is not a marker (and hence
not a stale marker either):

  $ cat > bin/quoted.ml <<'EOF'
  > let doc = "suppress with (* schedlint: allow R2 *) on the line"
  > EOF
  $ schedlint bin/quoted.ml
  schedlint: 0 violations in 1 file scanned

Escape hatch: a marker covers its own line and the next; two markers on
one line merge their rule lists (an earlier version dropped the first):

  $ cat > bin/allow.ml <<'EOF'
  > let a () = Unix.time () (* schedlint: allow R2 *)
  > (* schedlint: allow R2 *)
  > let b () = Unix.time ()
  > let c = (1.0 = 2.0) (* schedlint: allow R3 *) && Sys.time () > 0.0 (* schedlint: allow R2 *)
  > let d () = Unix.time () (* schedlint: allow all *)
  > EOF
  $ schedlint bin/allow.ml
  schedlint: 0 violations in 1 file scanned

The baseline workflow: --write-baseline records the current diagnostics,
--baseline suppresses exactly those (count-based), and entries that no
longer match anything are reported so the file shrinks over time:

  $ schedlint --write-baseline base.txt lib/r5.ml
  schedlint: wrote 7 entries to base.txt
  $ schedlint --baseline base.txt lib/r5.ml
  schedlint: 7 baselined violations suppressed
  schedlint: 0 violations in 1 file scanned
  $ cat > lib/r5.ml <<'EOF'
  > let counter = ref 0
  > EOF
  $ schedlint --baseline base.txt lib/r5.ml
  schedlint: warning: unused baseline entry: R5 lib/r5.ml: top-level mutable state (ref) in lib/; thread state through a record
  schedlint: warning: unused baseline entry: R5 lib/r5.ml: top-level mutable state (Hashtbl) in lib/; thread state through a record
  schedlint: warning: unused baseline entry: R5 lib/r5.ml: top-level mutable state (Array.make) in lib/; thread state through a record
  schedlint: warning: unused baseline entry: R5 lib/r5.ml: top-level mutable state (Buffer) in lib/; thread state through a record
  schedlint: warning: unused baseline entry: R5 lib/r5.ml: top-level mutable state (Bytes) in lib/; thread state through a record
  schedlint: warning: unused baseline entry: R5 lib/r5.ml: top-level mutable state (Atomic) in lib/; thread state through a record
  schedlint: 1 baselined violation suppressed
  schedlint: 0 violations in 1 file scanned

Machine-readable output: --format json and --format sarif for tooling,
--format github for inline PR annotations:

  $ schedlint --format json lib/r6.ml
  [
    { "file": "lib/r6.ml", "line": 1, "col": 0, "rule": "R7", "message": "R6.go reaches Domain.spawn via R6.go -> Domain.spawn; deterministic replay breaks (route through lib/prng, lib/par or Obs.Clock)" },
    { "file": "lib/r6.ml", "line": 1, "col": 11, "rule": "R6", "message": "Domain.spawn outside lib/par; fan out through Statsched_par.Par.map" }
  ]
  schedlint: 2 violations in 1 file scanned
  [1]
  $ schedlint --format sarif lib/r6.ml 2>/dev/null | grep -c '"ruleId"'
  2
  $ schedlint --format github lib/r6.ml
  ::error file=lib/r6.ml,line=1,col=1,title=schedlint R7::R6.go reaches Domain.spawn via R6.go -> Domain.spawn; deterministic replay breaks (route through lib/prng, lib/par or Obs.Clock)
  ::error file=lib/r6.ml,line=1,col=12,title=schedlint R6::Domain.spawn outside lib/par; fan out through Statsched_par.Par.map
  schedlint: 2 violations in 1 file scanned
  [1]

Unparseable input is a distinct failure (exit 2):

  $ cat > bin/broken.ml <<'EOF'
  > let oops =
  > EOF
  $ schedlint bin/broken.ml 2>/dev/null
  [2]

Unknown options are rejected:

  $ schedlint --no-such-option 2>&1 | head -n 1
  schedlint: unknown option: --no-such-option

Missing roots are a usage error:

  $ schedlint no/such/dir
  schedlint: no such file or directory: no/such/dir
  [2]
