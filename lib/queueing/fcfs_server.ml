module Engine = Statsched_des.Engine
module Tally = Statsched_stats.Tally

(* The in-service job.  [remaining] is the work left at [slice_start];
   [event] is the scheduled completion, absent while the server is
   suspended (rate 0). *)
type current = {
  job : Job.t;
  mutable remaining : float;
  mutable slice_start : float;
  mutable event : Engine.event_handle option;
}

type t = {
  engine : Engine.t;
  speed : float;
  on_departure : Job.t -> unit;
  queue : Job.t Queue.t;
  mutable current : current option;
  mutable rate : float;  (* fault multiplier on speed; 0 = suspended *)
  busy : Tally.t;
  occupancy : Tally.t;
  mutable completed : int;
  mutable work : float;
  mutable n : int;
}

let create ~engine ~speed ~on_departure () =
  if speed <= 0.0 then invalid_arg "Fcfs_server.create: speed <= 0";
  {
    engine;
    speed;
    on_departure;
    queue = Queue.create ();
    current = None;
    rate = 1.0;
    busy = Tally.create ~start_time:(Engine.now engine) ();
    occupancy = Tally.create ~start_time:(Engine.now engine) ();
    completed = 0;
    work = 0.0;
    n = 0;
  }

let in_system t = t.n

let note_occupancy t =
  Tally.update t.occupancy ~time:(Engine.now t.engine) ~value:(float_of_int t.n)

let rec start_slice t c =
  let eff = t.speed *. t.rate in
  if eff > 0.0 then begin
    c.slice_start <- Engine.now t.engine;
    c.event <-
      Some
        (Engine.schedule t.engine ~delay:(c.remaining /. eff) (fun _ ->
             c.event <- None;
             t.work <- t.work +. c.remaining;
             let job = c.job in
             job.Job.completion <- Engine.now t.engine;
             t.completed <- t.completed + 1;
             t.n <- t.n - 1;
             t.current <- None;
             note_occupancy t;
             t.on_departure job;
             start_next t))
  end
  else c.event <- None

and start_next t =
  if Queue.is_empty t.queue then begin
    t.current <- None;
    Tally.update t.busy ~time:(Engine.now t.engine) ~value:0.0
  end
  else begin
    Tally.update t.busy ~time:(Engine.now t.engine)
      ~value:(if t.rate > 0.0 then 1.0 else 0.0);
    let job = Queue.pop t.queue in
    if job.Job.start < 0.0 then job.Job.start <- Engine.now t.engine;
    let c =
      { job; remaining = job.Job.size; slice_start = Engine.now t.engine; event = None }
    in
    t.current <- Some c;
    start_slice t c
  end

let submit t job =
  Queue.push job t.queue;
  t.n <- t.n + 1;
  note_occupancy t;
  if Option.is_none t.current then start_next t

(* Bank the in-service job's progress at the current rate and cancel its
   completion event. *)
let interrupt t =
  match t.current with
  | None -> ()
  | Some c ->
    (match c.event with
    | Some h ->
      ignore (Engine.cancel t.engine h);
      c.event <- None;
      let eff = t.speed *. t.rate in
      let served = min c.remaining ((Engine.now t.engine -. c.slice_start) *. eff) in
      c.remaining <- c.remaining -. served;
      t.work <- t.work +. served
    | None -> ())

let set_rate t r =
  if r < 0.0 then invalid_arg "Fcfs_server.set_rate: rate < 0";
  interrupt t;
  t.rate <- r;
  match t.current with
  | None -> ()
  | Some c ->
    Tally.update t.busy ~time:(Engine.now t.engine) ~value:(if r > 0.0 then 1.0 else 0.0);
    start_slice t c

let drain t =
  interrupt t;
  let jobs =
    match t.current with
    | Some c ->
      t.current <- None;
      c.job :: List.of_seq (Queue.to_seq t.queue)
    | None -> List.of_seq (Queue.to_seq t.queue)
  in
  Queue.clear t.queue;
  t.n <- 0;
  note_occupancy t;
  Tally.update t.busy ~time:(Engine.now t.engine) ~value:0.0;
  jobs

let utilization t =
  Tally.advance t.busy ~time:(Engine.now t.engine);
  let u = Tally.time_average t.busy in
  if Float.is_nan u then 0.0 else u

let mean_in_system t =
  Tally.advance t.occupancy ~time:(Engine.now t.engine);
  let l = Tally.time_average t.occupancy in
  if Float.is_nan l then 0.0 else l

let completed t = t.completed

let work_done t =
  match t.current with
  | None -> t.work
  | Some c ->
    (match c.event with
    | None -> t.work
    | Some _ ->
      let eff = t.speed *. t.rate in
      t.work +. min c.remaining ((Engine.now t.engine -. c.slice_start) *. eff))

let reset_stats t =
  Tally.reset_at t.busy ~time:(Engine.now t.engine);
  note_occupancy t;
  Tally.reset_at t.occupancy ~time:(Engine.now t.engine);
  t.completed <- 0;
  t.work <- 0.0

let to_server t =
  {
    Server_intf.speed = t.speed;
    submit = submit t;
    in_system = (fun () -> in_system t);
    mean_in_system = (fun () -> mean_in_system t);
    utilization = (fun () -> utilization t);
    completed = (fun () -> completed t);
    work_done = (fun () -> work_done t);
    reset_stats = (fun () -> reset_stats t);
    set_rate = set_rate t;
    drain = (fun () -> drain t);
    discipline = "FCFS";
  }
