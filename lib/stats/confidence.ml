type interval = {
  mean : float;
  half_width : float;
  confidence : float;
  replications : int;
}

let of_samples ?(confidence = 0.95) xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Confidence.of_samples: empty";
  let w = Welford.create () in
  Array.iter (Welford.add w) xs;
  let mean = Welford.mean w in
  let half_width =
    if n < 2 then nan
    else begin
      let t = Student_t.critical ~df:(n - 1) ~confidence in
      t *. Welford.std w /. sqrt (float_of_int n)
    end
  in
  { mean; half_width; confidence; replications = n }

let lower i = i.mean -. i.half_width

let upper i = i.mean +. i.half_width

let relative_half_width i =
  (* An exact [= 0.0] test misses means that are merely negligible
     (e.g. 1e-300, or noise many orders below the half-width), where the
     ratio is just as meaningless; guard on near-zero instead, both
     absolutely and relative to the interval's own width. *)
  let m = abs_float i.mean in
  if m < 1e-12 *. (1.0 +. abs_float i.half_width) then nan else i.half_width /. m

let pp fmt i =
  (* A single replication has no width estimate ([half_width = nan]);
     print the point estimate alone rather than "m ± nan". *)
  if Float.is_nan i.half_width then Format.fprintf fmt "%.6g" i.mean
  else Format.fprintf fmt "%.6g ± %.2g" i.mean i.half_width
