(* The paper's base configuration, end to end.

   Simulates the Table 3 compute farm (15 machines, six speed classes,
   aggregate speed 44) under all five schedulers with the Section 4.1
   workload — Bounded-Pareto job sizes, hyperexponential arrivals with
   CV 3, 70% utilisation — and prints the full comparison, including
   per-machine utilisation under ORR so the "disproportionately high
   share to fast machines" effect is visible directly.

   Run with:  dune exec examples/compute_farm.exe *)

module Core = Statsched_core
module Cluster = Statsched_cluster
module E = Statsched_experiments

let () =
  let speeds = Core.Speeds.table3 in
  let rho = 0.7 in
  let workload = Cluster.Workload.paper_default ~rho ~speeds in
  Printf.printf "Table 3 farm: %d machines, aggregate speed %g, target load %.0f%%\n"
    (Array.length speeds) (Core.Speeds.total speeds) (100.0 *. rho);
  Printf.printf "job sizes %s (mean %.1f s), arrivals CV %.1f\n\n"
    (Statsched_dist.Distribution.name workload.Cluster.Workload.size)
    (Statsched_dist.Distribution.mean workload.Cluster.Workload.size)
    (Statsched_dist.Distribution.cv workload.Cluster.Workload.interarrival);

  (* Five schedulers, three replications each. *)
  let scale = { E.Config.horizon = 400_000.0; warmup = 100_000.0; reps = 3 } in
  let points =
    E.Sweep.over_schedulers ~scale ~schedulers:E.Schedulers.with_least_load ~speeds
      ~workload ()
  in
  print_string
    (E.Report.render
       ~header:[ "scheduler"; "mean resp. time (s)"; "mean resp. ratio"; "fairness" ]
       ~rows:
         (List.map
            (fun (name, p) ->
              [
                E.Report.Text name;
                E.Report.Interval p.E.Runner.mean_response_time;
                E.Report.Interval p.E.Runner.mean_response_ratio;
                E.Report.Interval p.E.Runner.fairness;
              ])
            points));

  (* One detailed ORR run: per-machine picture. *)
  let cfg =
    Cluster.Simulation.default_config ~horizon:400_000.0 ~warmup:100_000.0 ~speeds
      ~workload ~scheduler:(Cluster.Scheduler.static Core.Policy.orr) ()
  in
  let r = Cluster.Simulation.run cfg in
  Printf.printf "\nPer-machine view under ORR (fast machines run hotter by design):\n";
  print_string
    (E.Report.render
       ~header:[ "machine"; "speed"; "share of jobs"; "utilization" ]
       ~rows:
         (List.init (Array.length speeds) (fun i ->
              let pc = r.Cluster.Simulation.per_computer.(i) in
              [
                E.Report.Int i;
                E.Report.Float pc.Cluster.Simulation.speed;
                E.Report.Percent r.Cluster.Simulation.dispatch_fractions.(i);
                E.Report.Percent pc.Cluster.Simulation.utilization;
              ])))
