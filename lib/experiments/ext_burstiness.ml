module Cluster = Statsched_cluster
module Core = Statsched_core

let default_cvs = [ 0.5; 1.0; 2.0; 3.0; 4.0; 5.0 ]

type t = (float * (string * Runner.point) list) list

let run ?(scale = Config.default_scale) ?seed ?jobs ?(speeds = Core.Speeds.table3)
    ?(cvs = default_cvs) ?(schedulers = Schedulers.with_least_load) () =
  List.map
    (fun cv ->
      let workload =
        Cluster.Workload.with_cv ~rho:Config.base_utilization ~arrival_cv:cv ~speeds
      in
      (cv, Sweep.over_schedulers ?seed ?jobs ~scale ~schedulers ~speeds ~workload ()))
    cvs

let sweeps t =
  List.map
    (fun metric ->
      Sweep.sweep_of_rows ~title:"Extension: arrival burstiness sensitivity"
        ~xlabel:"arrival CV" ~metric t)
    [ `Ratio; `Fairness ]

let to_report t = String.concat "\n" (List.map Report.render_sweep (sweeps t))
