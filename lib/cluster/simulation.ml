module Rng = Statsched_prng.Rng
module Distribution = Statsched_dist.Distribution
module Engine = Statsched_des.Engine
module Q = Statsched_queueing
module Core = Statsched_core

type discipline = Ps | Rr of float | Fcfs | Srpt

type config = {
  speeds : float array;
  workload : Workload.t;
  scheduler : Scheduler.kind;
  discipline : discipline;
  horizon : float;
  warmup : float;
  seed : int64;
  replication : int;
}

let paper_horizon = 4.0e6
let paper_warmup = 1.0e6

let default_config ?(discipline = Ps) ?(horizon = 4.0e5) ?warmup ?(seed = 42L)
    ?(replication = 0) ~speeds ~workload ~scheduler () =
  let warmup = match warmup with Some w -> w | None -> horizon /. 4.0 in
  { speeds; workload; scheduler; discipline; horizon; warmup; seed; replication }

type per_computer = {
  speed : float;
  dispatched : int;
  completed : int;
  utilization : float;
  mean_jobs : float;
}

type result = {
  scheduler_name : string;
  metrics : Core.Metrics.t;
  median_response_ratio : float;
  p99_response_ratio : float;
  per_computer : per_computer array;
  dispatch_fractions : float array;
  intended_fractions : float array option;
  offered_utilization : float;
  total_arrivals : int;
  events_executed : int;
}

let make_server ~discipline ~engine ~speed ~on_departure =
  match discipline with
  | Ps -> Q.Ps_server.to_server (Q.Ps_server.create ~engine ~speed ~on_departure ())
  | Rr quantum ->
    Q.Rr_server.to_server (Q.Rr_server.create ~engine ~speed ~quantum ~on_departure ())
  | Fcfs -> Q.Fcfs_server.to_server (Q.Fcfs_server.create ~engine ~speed ~on_departure ())
  | Srpt -> Q.Srpt_server.to_server (Q.Srpt_server.create ~engine ~speed ~on_departure ())

let run ?on_dispatch ?on_completion ?on_tick cfg =
  Core.Speeds.validate cfg.speeds;
  if cfg.horizon <= 0.0 then invalid_arg "Simulation.run: horizon <= 0";
  if cfg.warmup < 0.0 || cfg.warmup >= cfg.horizon then
    invalid_arg "Simulation.run: warmup outside [0, horizon)";
  let n = Array.length cfg.speeds in
  let rho = Workload.utilization cfg.workload ~speeds:cfg.speeds in
  (* One base stream per (seed, replication); components get independent
     splits in a fixed documented order: arrivals, sizes, dispatch,
     scheduler ties, detection, message delay. *)
  let base = Rng.substream (Rng.create ~seed:cfg.seed ()) cfg.replication in
  let arrivals_rng = Rng.split base in
  let sizes_rng = Rng.split base in
  let dispatch_rng = Rng.split base in
  let ties_rng = Rng.split base in
  let detect_rng = Rng.split base in
  let delay_rng = Rng.split base in

  let engine = Engine.create () in
  let collector = Collector.create ~warmup:cfg.warmup () in
  let dispatched = Array.make n 0 in
  let completed = Array.make n 0 in
  let total_arrivals = ref 0 in
  let job_counter = ref 0 in

  (* Scheduler-side decision function and departure hook.  [servers_ref]
     is filled right after server creation; only poll events executed
     during the run dereference it. *)
  let least_load_state = ref None in
  let servers_ref = ref [||] in
  let select_computer, intended_fractions, on_job_departure =
    match cfg.scheduler with
    | Scheduler.Static policy ->
      let alloc = Core.Policy.allocation_of policy ~rho cfg.speeds in
      let dispatcher = Core.Policy.dispatcher_of policy ~rng:dispatch_rng alloc in
      ( (fun _job -> Core.Dispatch.select dispatcher),
        (fun () -> Some alloc),
        fun _job -> () )
    | Scheduler.Static_custom { label = _; make } ->
      let dispatcher = make ~rho ~speeds:cfg.speeds ~rng:dispatch_rng in
      ( (fun _job -> Core.Dispatch.select dispatcher),
        (fun () -> Some (Core.Dispatch.fractions dispatcher)),
        fun _job -> () )
    | Scheduler.Sita { params; small_to } ->
      let sita = Core.Sita.build_bounded_pareto params ~speeds:cfg.speeds ~small_to in
      ( (fun job -> Core.Sita.select sita ~size:job.Q.Job.size),
        (fun () -> None),
        fun _job -> () )
    | Scheduler.Stale_least_load { poll_period; count_in_flight } ->
      let state = Core.Least_load.create cfg.speeds in
      least_load_state := Some state;
      Engine.every engine ~period:poll_period (fun _ ->
          Array.iteri
            (fun i server ->
              Core.Least_load.set_load_index state i
                (server.Q.Server_intf.in_system ()))
            !servers_ref);
      let select _job =
        let i = Core.Least_load.select ~rng:ties_rng state in
        if count_in_flight then Core.Least_load.job_sent state i;
        i
      in
      (select, (fun () -> None), fun _job -> ())
    | Scheduler.Adaptive { period; initial_rho; safety; windowed; dispatching } ->
      (* Self-tuning ORR/ORAN: λ̂ from the arrival count, the mean job
         size from completed jobs (what a real scheduler can observe),
         ρ̂ = λ̂·E[S]/Σs inflated by the safety factor, allocation
         recomputed every [period] seconds. *)
      let total_speed = Core.Speeds.total cfg.speeds in
      let seen_completions = ref 0 in
      let size_sum = ref 0.0 in
      let make_dispatcher rho_hat =
        let rho_hat = min 0.999 (max 1e-6 (rho_hat *. safety)) in
        let alloc = Core.Allocation.optimized ~rho:rho_hat cfg.speeds in
        match dispatching with
        | Core.Policy.Random -> Core.Dispatch.random ~rng:dispatch_rng alloc
        | Core.Policy.Round_robin -> Core.Dispatch.round_robin alloc
      in
      let dispatcher = ref (make_dispatcher initial_rho) in
      (* Window snapshots: counters at the previous recompute instant. *)
      let last_time = ref 0.0 in
      let last_arrivals = ref 0 in
      let last_completions = ref 0 in
      let last_size_sum = ref 0.0 in
      let recompute () =
        let now = Engine.now engine in
        let arrivals, completions, sizes, elapsed =
          if windowed then
            ( !total_arrivals - !last_arrivals,
              !seen_completions - !last_completions,
              !size_sum -. !last_size_sum,
              now -. !last_time )
          else (!total_arrivals, !seen_completions, !size_sum, now)
        in
        last_time := now;
        last_arrivals := !total_arrivals;
        last_completions := !seen_completions;
        last_size_sum := !size_sum;
        if completions > 0 && elapsed > 0.0 && arrivals > 0 then begin
          let lambda_hat = float_of_int arrivals /. elapsed in
          let mean_size_hat = sizes /. float_of_int completions in
          let rho_hat = lambda_hat *. mean_size_hat /. total_speed in
          Log.Log.debug (fun m ->
              m "adaptive recompute at t=%.0f: lambda=%.5g E[S]=%.4g rho=%.4f"
                now lambda_hat mean_size_hat rho_hat);
          dispatcher := make_dispatcher rho_hat
        end
      in
      Engine.every engine ~period (fun _ -> recompute ());
      ( (fun _job -> Core.Dispatch.select !dispatcher),
        (fun () -> Some (Core.Dispatch.fractions !dispatcher)),
        fun job ->
          incr seen_completions;
          size_sum := !size_sum +. job.Q.Job.size )
    | Scheduler.Least_load { detection; message_delay; random_ties; probe } ->
      let state = Core.Least_load.create cfg.speeds in
      least_load_state := Some state;
      let select _job =
        let i =
          match probe with
          | Some d -> Core.Least_load.select_sampled ~rng:ties_rng state ~d
          | None ->
            let rng = if random_ties then Some ties_rng else None in
            Core.Least_load.select ?rng state
        in
        Core.Least_load.job_sent state i;
        i
      in
      let on_departure job =
        (* The executing computer notices the departure after a polling
           delay, then its update message crosses the network. *)
        let lag =
          Distribution.sample detection detect_rng
          +. Distribution.sample message_delay delay_rng
        in
        let computer = job.Q.Job.computer in
        ignore
          (Engine.schedule engine ~delay:lag (fun _ ->
               Core.Least_load.departure_recorded state computer))
      in
      (select, (fun () -> None), on_departure)
  in

  let servers =
    Array.init n (fun i ->
        make_server ~discipline:cfg.discipline ~engine ~speed:cfg.speeds.(i)
          ~on_departure:(fun job ->
            Collector.on_departure collector job;
            if job.Q.Job.arrival >= cfg.warmup then
              completed.(i) <- completed.(i) + 1;
            (match on_completion with Some f -> f job | None -> ());
            on_job_departure job))
  in
  servers_ref := servers;
  (match on_tick with
  | None -> ()
  | Some (period, f) ->
    if period <= 0.0 then invalid_arg "Simulation.run: on_tick period <= 0";
    Engine.every engine ~period (fun e ->
        let queues =
          Array.map (fun s -> s.Q.Server_intf.in_system ()) servers
        in
        f ~time:(Engine.now e) ~queues));

  (* Warm-up boundary: reset the per-server busy statistics. *)
  if cfg.warmup > 0.0 then
    ignore
      (Engine.schedule engine ~delay:cfg.warmup (fun _ ->
           Log.Log.debug (fun m ->
               m "warm-up boundary at t=%.0f: resetting server statistics"
                 cfg.warmup);
           Array.iter (fun s -> s.Q.Server_intf.reset_stats ()) servers));

  (* Arrival process.  A rate modulation scales the sampled gap down when
     the instantaneous rate is high (time-rescaled renewal process). *)
  let rec schedule_next_arrival () =
    let base_gap = Distribution.sample cfg.workload.Workload.interarrival arrivals_rng in
    let gap =
      match cfg.workload.Workload.modulation with
      | None -> base_gap
      | Some f -> base_gap /. max 0.05 (f (Engine.now engine))
    in
    ignore
      (Engine.schedule engine ~delay:gap (fun _ ->
           let now = Engine.now engine in
           incr total_arrivals;
           incr job_counter;
           let size = Distribution.sample cfg.workload.Workload.size sizes_rng in
           let job = Q.Job.create ~id:!job_counter ~size ~arrival:now in
           let target = select_computer job in
           job.Q.Job.computer <- target;
           if now >= cfg.warmup then dispatched.(target) <- dispatched.(target) + 1;
           (match on_dispatch with Some f -> f job | None -> ());
           servers.(target).Q.Server_intf.submit job;
           schedule_next_arrival ()))
  in
  schedule_next_arrival ();
  Engine.run ~until:cfg.horizon engine;

  if Collector.jobs_measured collector = 0 then
    invalid_arg "Simulation.run: no job completed within the horizon";
  Log.Log.info (fun m ->
      m "%s: %d arrivals, %d measured jobs, %d events in %.0f simulated s"
        (Scheduler.name cfg.scheduler)
        !total_arrivals
        (Collector.jobs_measured collector)
        (Engine.events_executed engine)
        cfg.horizon);
  let per_computer =
    Array.init n (fun i ->
        {
          speed = cfg.speeds.(i);
          dispatched = dispatched.(i);
          completed = completed.(i);
          utilization = servers.(i).Q.Server_intf.utilization ();
          mean_jobs = servers.(i).Q.Server_intf.mean_in_system ();
        })
  in
  {
    scheduler_name = Scheduler.name cfg.scheduler;
    metrics = Collector.metrics collector;
    median_response_ratio = Collector.median_ratio collector;
    p99_response_ratio = Collector.p99_ratio collector;
    per_computer;
    dispatch_fractions = Core.Metrics.actual_fractions dispatched;
    intended_fractions = intended_fractions ();
    offered_utilization = rho;
    total_arrivals = !total_arrivals;
    events_executed = Engine.events_executed engine;
  }
