type response = { status : int; content_type : string; body : string }

let text ?(status = 200) body =
  { status; content_type = "text/plain; charset=utf-8"; body }

let json ?(status = 200) body =
  { status; content_type = "application/json"; body }

type request = { meth : string; path : string; body : string }

type t = {
  listen_fd : Unix.file_descr;
  bound_port : int;
  thread : Thread.t;
  stopping : bool Atomic.t;
}

let reason = function
  | 200 -> "OK"
  | 202 -> "Accepted"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Payload Too Large"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Status"

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    match Unix.write_substring fd s !off (n - !off) with
    | written -> off := !off + written
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let send fd { status; content_type; body } =
  let head =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\n\
       Content-Type: %s\r\n\
       Content-Length: %d\r\n\
       Connection: close\r\n\
       \r\n"
      status (reason status) content_type (String.length body)
  in
  write_all fd (head ^ body)

let max_head_bytes = 16384
let max_body_bytes = 1 lsl 20

(* Index of the '\r' opening the "\r\n\r\n" header terminator in
   [data.[0..len)], or -1.  [from] is where the scan resumes: a caller
   that already scanned a prefix restarts at [prev_len - 3] (the
   terminator may straddle the chunk boundary), so feeding a request
   byte by byte costs O(n) total instead of O(n^2) whole-buffer
   rescans. *)
let find_headers_end data ~len ~from =
  let i = ref (max 0 from) in
  let found = ref (-1) in
  while !found < 0 && !i + 3 < len do
    let j = !i in
    if
      Char.equal (Bytes.unsafe_get data j) '\r'
      && Char.equal (Bytes.unsafe_get data (j + 1)) '\n'
      && Char.equal (Bytes.unsafe_get data (j + 2)) '\r'
      && Char.equal (Bytes.unsafe_get data (j + 3)) '\n'
    then found := j
    else incr i
  done;
  !found

(* Wait until [fd] is readable or the deadline passes; [false] on
   timeout.  One slow (or silent) client must not be able to park the
   sequential accept loop forever — that would head-of-line-block
   /metrics, /healthz and every daemon endpoint for all other callers —
   so every read on a client connection goes through this bounded
   wait. *)
let wait_readable fd ~deadline =
  let rec wait () =
    let remaining = deadline -. Clock.now () in
    if remaining <= 0.0 then false
    else
      match Unix.select [ fd ] [] [] remaining with
      | [], _, _ -> false
      | _ :: _, _, _ -> true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
  in
  wait ()

(* Case-insensitive "content-length" lookup over the raw header block
   (request line included; it contains no ':' before its spaces end, so
   it can never match). *)
let content_length head =
  let lower = String.lowercase_ascii head in
  let target = "content-length:" in
  let rec scan from =
    match String.index_from_opt lower from '\n' with
    | None -> Ok 0
    | Some eol ->
      let line_start = eol + 1 in
      if
        line_start + String.length target <= String.length lower
        && String.equal
             (String.sub lower line_start (String.length target))
             target
      then
        let value_start = line_start + String.length target in
        let value_end =
          match String.index_from_opt lower value_start '\r' with
          | Some e -> e
          | None -> String.length lower
        in
        let v =
          String.trim (String.sub head value_start (value_end - value_start))
        in
        match int_of_string_opt v with
        | Some n when n >= 0 -> Ok n
        | Some _ | None -> Error (text ~status:400 "bad content-length\n")
      else scan line_start
  in
  scan 0

let parse_request_line raw =
  match String.index_opt raw '\n' with
  | None -> None
  | Some eol ->
    let line = String.trim (String.sub raw 0 eol) in
    (match String.split_on_char ' ' line with
    | [ meth; target; _version ] ->
      (* Strip any query string: routes key on the path alone. *)
      let path =
        match String.index_opt target '?' with
        | None -> target
        | Some q -> String.sub target 0 q
      in
      Some (meth, path)
    | _ -> None)

(* Read one request — header block plus any Content-Length body — off
   [fd], with every blocking read bounded by [read_timeout] seconds
   from the first byte of the connection.  [Error resp] carries the
   error response to send (400/408/413). *)
let read_request ~read_timeout fd =
  let deadline = Clock.now () +. read_timeout in
  let data = ref (Bytes.create 1024) in
  let len = ref 0 in
  let eof = ref false in
  let fill () =
    if Bytes.length !data - !len < 512 then begin
      let grown = Bytes.create (2 * Bytes.length !data) in
      Bytes.blit !data 0 grown 0 !len;
      data := grown
    end;
    if not (wait_readable fd ~deadline) then `Timeout
    else
      match Unix.read fd !data !len (Bytes.length !data - !len) with
      | 0 ->
        eof := true;
        `Eof
      | n ->
        len := !len + n;
        `Read
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Read
  in
  (* Headers: scan incrementally, resuming where the last scan left
     off (minus 3 bytes for a terminator split across chunks). *)
  let head_end = ref (find_headers_end !data ~len:!len ~from:0) in
  let error = ref None in
  while !head_end < 0 && !error = None do
    if !len > max_head_bytes then
      error := Some (text ~status:413 "headers too large\n")
    else begin
      let prev_len = !len in
      match fill () with
      | `Timeout -> error := Some (text ~status:408 "request timeout\n")
      | `Eof -> error := Some (text ~status:400 "bad request\n")
      | `Read ->
        head_end := find_headers_end !data ~len:!len ~from:(prev_len - 3)
    end
  done;
  match !error with
  | Some resp -> Error resp
  | None ->
    let head = Bytes.sub_string !data 0 !head_end in
    (match parse_request_line head with
    | None -> Error (text ~status:400 "bad request\n")
    | Some (meth, path) -> (
      match content_length head with
      | Error resp -> Error resp
      | Ok body_len ->
        if body_len > max_body_bytes then
          Error (text ~status:413 "body too large\n")
        else begin
          let body_start = !head_end + 4 in
          let body_error = ref None in
          while !len < body_start + body_len && !body_error = None do
            match fill () with
            | `Timeout -> body_error := Some (text ~status:408 "request timeout\n")
            | `Eof -> body_error := Some (text ~status:400 "truncated body\n")
            | `Read -> ()
          done;
          match !body_error with
          | Some resp -> Error resp
          | None ->
            Ok { meth; path; body = Bytes.sub_string !data body_start body_len }
        end))

let handle ~read_timeout handler fd =
  let resp =
    match read_request ~read_timeout fd with
    | Error resp -> resp
    | Ok req -> (
      match handler req with
      | resp -> resp
      | exception _ -> text ~status:500 "internal error\n")
  in
  try send fd resp with Unix.Unix_error (_, _, _) -> ()

(* The loop polls a stop flag between short [select] waits rather than
   blocking in [accept]: closing a file descriptor does not wake a
   thread already blocked in accept(2), so a pure accept loop could
   never be joined. *)
let accept_loop (listen_fd, stopping, handler, read_timeout) =
  let continue = ref true in
  while !continue && not (Atomic.get stopping) do
    match Unix.select [ listen_fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
      match Unix.accept ~cloexec:true listen_fd with
      | client, _ ->
        Fun.protect
          ~finally:(fun () ->
            try Unix.close client with Unix.Unix_error _ -> ())
          (fun () -> handle ~read_timeout handler client)
      | exception
          Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
        ->
        ()
      | exception Unix.Unix_error (_, _, _) -> continue := false)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> continue := false
  done

let default_read_timeout = 5.0

let serve_requests ?(addr = "127.0.0.1") ?(read_timeout = default_read_timeout)
    ~port handler =
  if read_timeout <= 0.0 then invalid_arg "Http.serve_requests: read_timeout <= 0";
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd
       (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
     Unix.listen listen_fd 16
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let stopping = Atomic.make false in
  let thread =
    Thread.create accept_loop (listen_fd, stopping, handler, read_timeout)
  in
  { listen_fd; bound_port; thread; stopping }

let serve ?addr ?read_timeout ~port routes =
  serve_requests ?addr ?read_timeout ~port (fun req ->
      if String.equal req.meth "GET" then
        match routes req.path with
        | Some r -> r
        | None -> text ~status:404 "not found\n"
      else text ~status:405 "method not allowed\n")

let port t = t.bound_port

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    Thread.join t.thread;
    try Unix.close t.listen_fd with Unix.Unix_error _ -> ()
  end

module Testing = struct
  let find_headers_end = find_headers_end
  let read_request = read_request
  let content_length = content_length
end
