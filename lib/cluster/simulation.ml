module Rng = Statsched_prng.Rng
module Distribution = Statsched_dist.Distribution
module Engine = Statsched_des.Engine
module Q = Statsched_queueing
module Core = Statsched_core

type discipline = Ps | Rr of float | Fcfs | Srpt

type config = {
  speeds : float array;
  workload : Workload.t;
  scheduler : Scheduler.kind;
  discipline : discipline;
  horizon : float;
  warmup : float;
  seed : int64;
  replication : int;
  faults : Fault.plan option;
}

let paper_horizon = 4.0e6
let paper_warmup = 1.0e6

let default_config ?(discipline = Ps) ?(horizon = 4.0e5) ?warmup ?(seed = 42L)
    ?(replication = 0) ?faults ~speeds ~workload ~scheduler () =
  let warmup = match warmup with Some w -> w | None -> horizon /. 4.0 in
  { speeds; workload; scheduler; discipline; horizon; warmup; seed; replication; faults }

type per_computer = {
  speed : float;
  dispatched : int;
  completed : int;
  utilization : float;
  mean_jobs : float;
}

type result = {
  scheduler_name : string;
  metrics : Core.Metrics.t;
  median_response_ratio : float;
  p99_response_ratio : float;
  response_time_histogram : Statsched_obs.Hdr_histogram.t;
  response_ratio_histogram : Statsched_obs.Hdr_histogram.t;
  per_computer : per_computer array;
  dispatch_fractions : float array;
  intended_fractions : float array option;
  offered_utilization : float;
  total_arrivals : int;
  events_executed : int;
  heap_high_water : int;
  fault_summary : Fault.summary option;
}

type progress = {
  sim_time : float;
  arrivals : int;
  completions : int;
  measured : int;
  events : int;
}

let make_server ~discipline ~engine ~speed ~on_departure =
  match discipline with
  | Ps -> Q.Ps_server.to_server (Q.Ps_server.create ~engine ~speed ~on_departure ())
  | Rr quantum ->
    Q.Rr_server.to_server (Q.Rr_server.create ~engine ~speed ~quantum ~on_departure ())
  | Fcfs -> Q.Fcfs_server.to_server (Q.Fcfs_server.create ~engine ~speed ~on_departure ())
  | Srpt -> Q.Srpt_server.to_server (Q.Srpt_server.create ~engine ~speed ~on_departure ())

(* Exact comparison of speed vectors (same length by construction);
   polymorphic [=] on float arrays is banned by schedlint rule R3. *)
let same_speeds a b = Array.for_all2 Float.equal a b

(* Indices with positive effective speed, in order. *)
let up_indices eff =
  let up = ref [] in
  for i = Array.length eff - 1 downto 0 do
    if eff.(i) > 0.0 then up := i :: !up
  done;
  Array.of_list !up

(* The scheduler-side callbacks of one policy instance, bundled so a
   live driver can hot-swap the whole set atomically: the decision
   function, the intended-fraction reporter, the departure hook and the
   capacity-change hook (the latter fires only under a [Blacklist]
   fault plan, with the current effective speed vector). *)
type sched_fns = {
  sf_select : Q.Job.t -> int;
  sf_intended : unit -> float array option;
  sf_on_departure : Q.Job.t -> unit;
  sf_on_capacity : float array -> unit;
}

(* A paused, resumable simulation: {!run} unrolled into
   create / advance / finalize so a daemon can drive the virtual clock
   and inject externally arriving jobs.  All behaviour lives in the
   closures built by {!create}; the record just carries them plus the
   counters the accessors read. *)
type driver = {
  d_engine : Engine.t;
  d_cfg : config;
  d_kind : Scheduler.kind ref;
  d_inject : size:float -> int;
  d_set_scheduler : Scheduler.kind -> unit;
  d_finalize : unit -> result;
  d_arrivals : int ref;
  d_completions : int ref;
  d_measured : unit -> int;
  d_in_system : unit -> int;
  mutable d_done : bool;
}

let create ?sanitize ?(hooks_retain_jobs = true) ?metric_histograms ?on_engine
    ?on_dispatch ?on_completion ?on_tick ?on_drop ?on_rate_change ?on_progress
    ?(arrivals = `Workload) cfg =
  Core.Speeds.validate cfg.speeds;
  if cfg.horizon <= 0.0 then invalid_arg "Simulation.run: horizon <= 0";
  if cfg.warmup < 0.0 || cfg.warmup >= cfg.horizon then
    invalid_arg "Simulation.run: warmup outside [0, horizon)";
  let n = Array.length cfg.speeds in
  let rho = Workload.utilization cfg.workload ~speeds:cfg.speeds in
  (* Sanitizers observe the run through the hooks below but never draw
     random numbers or schedule events, so they cannot perturb it. *)
  let san =
    let enabled =
      match sanitize with Some b -> b | None -> Sanitize.enabled_from_env ()
    in
    if enabled then Some (Sanitize.create ()) else None
  in
  let check_alloc ?saturation ~label ~rho ~speeds alloc =
    match san with
    | Some _ -> Sanitize.check_allocation ~label ?saturation ~rho ~speeds alloc
    | None -> ()
  in
  (* One base stream per (seed, replication); components get independent
     splits in a fixed documented order: arrivals, sizes, dispatch,
     scheduler ties, detection, message delay, faults.  The fault stream
     is split last (and always) so a zero-fault run draws exactly the
     same six streams as before the reliability extension. *)
  let base = Rng.substream (Rng.create ~seed:cfg.seed ()) cfg.replication in
  let arrivals_rng = Rng.split base in
  let sizes_rng = Rng.split base in
  let dispatch_rng = Rng.split base in
  let ties_rng = Rng.split base in
  (* Pre-allocated option for the per-decision [?rng] argument of
     [Least_load.select]: passing [~rng:ties_rng] at the call site
     would build a fresh [Some] on every dispatch. *)
  let some_ties_rng = Some ties_rng in
  let detect_rng = Rng.split base in
  let delay_rng = Rng.split base in
  let fault_rng = Rng.split base in

  let engine = Engine.create () in
  (match on_engine with Some f -> f engine | None -> ());
  let collector =
    match metric_histograms with
    | None -> Collector.create ~warmup:cfg.warmup ()
    | Some (rt_hist, rr_hist) ->
      Collector.create ~rt_hist ~rr_hist ~warmup:cfg.warmup ()
  in
  let dispatched = Array.make n 0 in
  let completed = Array.make n 0 in
  let total_arrivals = ref 0 in
  let total_completions = ref 0 in
  let job_counter = ref 0 in
  let total_speed = Core.Speeds.total cfg.speeds in
  (* Renormalised load for a surviving effective-speed sub-vector: the
     same absolute work rate spread over less capacity.  Clamped below
     saturation so Algorithm 1 stays well-defined even when the survivors
     cannot actually carry the load. *)
  let scaled_rho sub = min 0.999 (rho *. total_speed /. Core.Speeds.total sub) in

  (* [servers_ref] is filled right after server creation; only events
     executed during the run (and policy swaps, which seed the fresh
     scheduler state from the live queues) dereference it. *)
  let least_load_state = ref None in
  let jiq_state = ref None in
  let servers_ref = ref [||] in
  (* Build one policy's callback bundle.  Called once at creation and
     again on every {!Driver.set_scheduler}: the RNG streams are shared
     across builds (the streams simply continue), and a swap seeds the
     new scheduler state from the servers' live queue lengths so the
     estimates stay exact for the jobs already in flight.  At creation
     [!servers_ref] is empty, so the seeding loops are no-ops and the
     one-shot path is untouched. *)
  let make_sched kind =
    least_load_state := None;
    jiq_state := None;
    match kind with
    | Scheduler.Static policy ->
      let alloc = Core.Policy.allocation_of policy ~rho cfg.speeds in
      (* [Optimized_at] deliberately mis-estimates the load (Figure 6);
         saturating a computer is then the phenomenon under study, not a
         corrupted allocation. *)
      let saturation =
        match policy.Core.Policy.allocation with
        | Core.Policy.Optimized_at _ -> false
        | Core.Policy.Weighted | Core.Policy.Optimized -> true
      in
      check_alloc ~saturation ~label:"static" ~rho ~speeds:cfg.speeds alloc;
      let base_dispatcher = Core.Policy.dispatcher_of policy ~rng:dispatch_rng alloc in
      let dispatcher = ref base_dispatcher in
      let map = ref None in
      let select _job =
        let i = Core.Dispatch.select !dispatcher in
        match !map with None -> i | Some m -> m.(i)
      in
      let on_capacity eff =
        if same_speeds eff cfg.speeds then begin
          dispatcher := base_dispatcher;
          map := None
        end
        else begin
          let up = up_indices eff in
          if Array.length up = 0 then begin
            dispatcher := base_dispatcher;
            map := None
          end
          else begin
            let sub = Array.map (fun i -> eff.(i)) up in
            let alloc' = Core.Policy.allocation_of policy ~rho:(scaled_rho sub) sub in
            check_alloc ~saturation ~label:"static-refit" ~rho:(scaled_rho sub)
              ~speeds:sub alloc';
            dispatcher := Core.Policy.dispatcher_of policy ~rng:dispatch_rng alloc';
            map := Some up
          end
        end
      in
      {
        sf_select = select;
        sf_intended = (fun () -> Some alloc);
        sf_on_departure = (fun _job -> ());
        sf_on_capacity = on_capacity;
      }
    | Scheduler.Static_custom { label = _; make } ->
      let base_dispatcher = make ~rho ~speeds:cfg.speeds ~rng:dispatch_rng in
      let dispatcher = ref base_dispatcher in
      let map = ref None in
      let select _job =
        let i = Core.Dispatch.select !dispatcher in
        match !map with None -> i | Some m -> m.(i)
      in
      let on_capacity eff =
        if same_speeds eff cfg.speeds then begin
          dispatcher := base_dispatcher;
          map := None
        end
        else begin
          let up = up_indices eff in
          if Array.length up = 0 then begin
            dispatcher := base_dispatcher;
            map := None
          end
          else begin
            let sub = Array.map (fun i -> eff.(i)) up in
            dispatcher := make ~rho:(scaled_rho sub) ~speeds:sub ~rng:dispatch_rng;
            map := Some up
          end
        end
      in
      {
        sf_select = select;
        sf_intended = (fun () -> Some (Core.Dispatch.fractions base_dispatcher));
        sf_on_departure = (fun _job -> ());
        sf_on_capacity = on_capacity;
      }
    | Scheduler.Sita { params; small_to } ->
      let base_sita = Core.Sita.build_bounded_pareto params ~speeds:cfg.speeds ~small_to in
      let sita = ref base_sita in
      let map = ref None in
      let select job =
        let i = Core.Sita.select !sita ~size:job.Q.Job.size in
        match !map with None -> i | Some m -> m.(i)
      in
      let on_capacity eff =
        if same_speeds eff cfg.speeds then begin
          sita := base_sita;
          map := None
        end
        else begin
          let up = up_indices eff in
          if Array.length up = 0 then begin
            sita := base_sita;
            map := None
          end
          else begin
            let sub = Array.map (fun i -> eff.(i)) up in
            sita := Core.Sita.build_bounded_pareto params ~speeds:sub ~small_to;
            map := Some up
          end
        end
      in
      {
        sf_select = select;
        sf_intended = (fun () -> None);
        sf_on_departure = (fun _job -> ());
        sf_on_capacity = on_capacity;
      }
    | Scheduler.Stale_least_load { poll_period; count_in_flight } ->
      let state = Core.Least_load.create cfg.speeds in
      least_load_state := Some state;
      Array.iteri
        (fun i server ->
          Core.Least_load.set_load_index state i
            (server.Q.Server_intf.in_system ()))
        !servers_ref;
      Engine.every engine ~period:poll_period (fun _ ->
          Array.iteri
            (fun i server ->
              Core.Least_load.set_load_index state i
                (server.Q.Server_intf.in_system ()))
            !servers_ref);
      let select _job =
        let i = Core.Least_load.select ?rng:some_ties_rng state in
        if count_in_flight then Core.Least_load.job_sent state i;
        i
      in
      let on_capacity eff =
        Array.iteri (fun i e -> Core.Least_load.set_available state i (e > 0.0)) eff
      in
      {
        sf_select = select;
        sf_intended = (fun () -> None);
        sf_on_departure = (fun _job -> ());
        sf_on_capacity = on_capacity;
      }
    | Scheduler.Adaptive { period; initial_rho; safety; windowed; dispatching } ->
      (* Self-tuning ORR/ORAN: λ̂ from the arrival count, the mean job
         size from completed jobs (what a real scheduler can observe),
         ρ̂ = λ̂·E[S]/Σs inflated by the safety factor, allocation
         recomputed every [period] seconds. *)
      let seen_completions = ref 0 in
      let size_sum = ref 0.0 in
      (* Under a blacklist plan this holds the surviving sub-vector and
         the sub-to-global index map; [None] means all computers nominal. *)
      let sub_state = ref None in
      let last_rho_hat = ref initial_rho in
      let make_dispatcher rho_hat =
        last_rho_hat := rho_hat;
        let speeds_vec, scale =
          match !sub_state with
          | None -> (cfg.speeds, 1.0)
          | Some (sub, _) -> (sub, total_speed /. Core.Speeds.total sub)
        in
        let rho_hat = min 0.999 (max 1e-6 (rho_hat *. safety *. scale)) in
        let alloc = Core.Allocation.optimized ~rho:rho_hat speeds_vec in
        check_alloc ~label:"adaptive" ~rho:rho_hat ~speeds:speeds_vec alloc;
        match dispatching with
        | Core.Policy.Random -> Core.Dispatch.random ~rng:dispatch_rng alloc
        | Core.Policy.Round_robin -> Core.Dispatch.round_robin alloc
      in
      let dispatcher = ref (make_dispatcher initial_rho) in
      (* Window snapshots: counters at the previous recompute instant. *)
      let last_time = ref 0.0 in
      let last_arrivals = ref 0 in
      let last_completions = ref 0 in
      let last_size_sum = ref 0.0 in
      let recompute () =
        let now = Engine.now engine in
        let arrivals, completions, sizes, elapsed =
          if windowed then
            ( !total_arrivals - !last_arrivals,
              !seen_completions - !last_completions,
              !size_sum -. !last_size_sum,
              now -. !last_time )
          else (!total_arrivals, !seen_completions, !size_sum, now)
        in
        last_time := now;
        last_arrivals := !total_arrivals;
        last_completions := !seen_completions;
        last_size_sum := !size_sum;
        if completions > 0 && elapsed > 0.0 && arrivals > 0 then begin
          let lambda_hat = float_of_int arrivals /. elapsed in
          let mean_size_hat = sizes /. float_of_int completions in
          let rho_hat = lambda_hat *. mean_size_hat /. total_speed in
          Log.Log.debug (fun m ->
              m "adaptive recompute at t=%.0f: lambda=%.5g E[S]=%.4g rho=%.4f"
                now lambda_hat mean_size_hat rho_hat);
          dispatcher := make_dispatcher rho_hat
        end
      in
      Engine.every engine ~period (fun _ -> recompute ());
      let select _job =
        let i = Core.Dispatch.select !dispatcher in
        match !sub_state with None -> i | Some (_, m) -> m.(i)
      in
      let intended () =
        let fr = Core.Dispatch.fractions !dispatcher in
        match !sub_state with
        | None -> Some fr
        | Some (_, m) ->
          let full = Array.make n 0.0 in
          Array.iteri (fun k f -> full.(m.(k)) <- f) fr;
          Some full
      in
      let on_capacity eff =
        (if same_speeds eff cfg.speeds then sub_state := None
         else begin
           let up = up_indices eff in
           if Array.length up = 0 then sub_state := None
           else sub_state := Some (Array.map (fun i -> eff.(i)) up, up)
         end);
        dispatcher := make_dispatcher !last_rho_hat
      in
      {
        sf_select = select;
        sf_intended = intended;
        sf_on_departure =
          (fun job ->
            incr seen_completions;
            size_sum := !size_sum +. job.Q.Job.size);
        sf_on_capacity = on_capacity;
      }
    | Scheduler.Jsq { d; weighted } ->
      (* Power-of-d-choices with synchronous exact queue information:
         the departure updates the scheduler's view immediately, so no
         lag events are scheduled — the per-job event count stays
         independent of n.  [d >= n] is the tournament-tree
         full-information case (and bit-identical to Least-Load on the
         same trace whatever the probe mode, which simcheck pins). *)
      let state = Core.Least_load.create cfg.speeds in
      least_load_state := Some state;
      Array.iteri
        (fun i server ->
          Core.Least_load.set_load_index state i
            (server.Q.Server_intf.in_system ()))
        !servers_ref;
      let select _job =
        let i =
          if d >= n then Core.Least_load.select ?rng:some_ties_rng state
          else if weighted then
            Core.Least_load.select_weighted ~rng:ties_rng state ~d
          else Core.Least_load.select_sampled ~rng:ties_rng state ~d
        in
        Core.Least_load.job_sent state i;
        i
      in
      let on_departure job =
        Core.Least_load.departure_recorded state job.Q.Job.computer
      in
      let on_capacity eff =
        Array.iteri (fun i e -> Core.Least_load.set_available state i (e > 0.0)) eff
      in
      {
        sf_select = select;
        sf_intended = (fun () -> None);
        sf_on_departure = on_departure;
        sf_on_capacity = on_capacity;
      }
    | Scheduler.Jiq ->
      let state = Core.Jiq.create cfg.speeds in
      jiq_state := Some state;
      Array.iteri
        (fun i server ->
          for _ = 1 to server.Q.Server_intf.in_system () do
            Core.Jiq.job_sent state i
          done)
        !servers_ref;
      let select _job =
        let i = Core.Jiq.select ~rng:dispatch_rng state in
        Core.Jiq.job_sent state i;
        i
      in
      let on_departure job =
        Core.Jiq.departure_recorded state job.Q.Job.computer
      in
      let on_capacity eff =
        Array.iteri (fun i e -> Core.Jiq.set_available state i (e > 0.0)) eff
      in
      {
        sf_select = select;
        sf_intended = (fun () -> None);
        sf_on_departure = on_departure;
        sf_on_capacity = on_capacity;
      }
    | Scheduler.Least_load { detection; message_delay; random_ties; probe } ->
      let state = Core.Least_load.create cfg.speeds in
      least_load_state := Some state;
      Array.iteri
        (fun i server ->
          Core.Least_load.set_load_index state i
            (server.Q.Server_intf.in_system ()))
        !servers_ref;
      let rng = if random_ties then some_ties_rng else None in
      let select _job =
        let i =
          match probe with
          | Some d -> Core.Least_load.select_sampled ~rng:ties_rng state ~d
          | None -> Core.Least_load.select ?rng state
        in
        Core.Least_load.job_sent state i;
        i
      in
      let on_departure job =
        (* The executing computer notices the departure after a polling
           delay, then its update message crosses the network. *)
        let lag =
          Distribution.sample detection detect_rng
          +. Distribution.sample message_delay delay_rng
        in
        let computer = job.Q.Job.computer in
        ignore
          (Engine.schedule engine ~delay:lag (fun _ ->
               Core.Least_load.departure_recorded state computer))
      in
      let on_capacity eff =
        Array.iteri (fun i e -> Core.Least_load.set_available state i (e > 0.0)) eff
      in
      {
        sf_select = select;
        sf_intended = (fun () -> None);
        sf_on_departure = on_departure;
        sf_on_capacity = on_capacity;
      }
  in
  let sched = ref (make_sched cfg.scheduler) in
  let current_kind = ref cfg.scheduler in
  (* Last effective speed vector a Blacklist plan announced; a policy
     swap replays it into the fresh scheduler state so the new policy
     inherits the blacklist. *)
  let current_eff = ref None in
  let notify_capacity eff =
    current_eff := Some eff;
    (!sched).sf_on_capacity eff
  in

  (* Job records are recycled through a free-list, but only when no
     caller-supplied hook can observe a job: a hook may legitimately
     retain the record past its departure, and a recycled record mutates
     under such a reference.  The scheduler-internal observers above
     (collector, adaptive size accounting, least-load lag) all read
     fields synchronously and never store the record.  Callers whose
     hooks also copy fields out synchronously (Trace, Telemetry, the
     journal) pass [~hooks_retain_jobs:false] to keep recycling on. *)
  let job_pool = Q.Job.pool () in
  let recycle =
    (not hooks_retain_jobs)
    || Option.is_none on_dispatch
       && Option.is_none on_completion
       && Option.is_none on_drop
  in
  let servers =
    Array.init n (fun i ->
        make_server ~discipline:cfg.discipline ~engine ~speed:cfg.speeds.(i)
          ~on_departure:(fun job ->
            incr total_completions;
            Collector.on_departure collector job;
            if job.Q.Job.arrival >= cfg.warmup then
              completed.(i) <- completed.(i) + 1;
            (match on_completion with Some f -> f job | None -> ());
            (!sched).sf_on_departure job;
            (match san with
            | Some s ->
              Sanitize.on_completion s;
              Sanitize.check_engine s engine;
              Sanitize.check_conservation s
                ~in_system:
                  (Array.fold_left
                     (fun acc srv -> acc + srv.Q.Server_intf.in_system ())
                     0 !servers_ref)
            | None -> ());
            if recycle then Q.Job.release job_pool job))
  in
  servers_ref := servers;
  (match on_tick with
  | None -> ()
  | Some (period, f) ->
    if period <= 0.0 then invalid_arg "Simulation.run: on_tick period <= 0";
    Engine.every engine ~period (fun e ->
        let queues =
          Array.map (fun s -> s.Q.Server_intf.in_system ()) servers
        in
        f ~time:(Engine.now e) ~queues));
  (* Progress reporting rides the same periodic-event mechanism as
     [on_tick]: it adds heartbeat events (so [events_executed] grows) but
     never draws randomness, so metrics and completion order are
     unchanged. *)
  (match on_progress with
  | None -> ()
  | Some (period, f) ->
    if period <= 0.0 then invalid_arg "Simulation.run: on_progress period <= 0";
    Engine.every engine ~period (fun e ->
        f
          {
            sim_time = Engine.now e;
            arrivals = !total_arrivals;
            completions = !total_completions;
            measured = Collector.jobs_measured collector;
            events = Engine.events_executed e;
          }));

  (* Fault engine: per-computer alternating up/down renewal processes.
     Each (process, target) pair runs its own cycle off the dedicated
     fault stream; overlapping events compose by multiplying degrade
     factors.  Nothing here executes — or is even scheduled — for a
     zero-fault plan, so such runs are bit-identical to the plain
     simulator. *)
  let fault_finalize =
    match cfg.faults with
    | None -> None
    | Some plan when Fault.is_none plan -> None
    | Some plan ->
      Fault.validate plan ~n;
      let rate = Array.make n 1.0 in
      let factors = Array.make n [] in
      let failures = ref 0 in
      let lost = ref 0 in
      let last_change = Array.make n 0.0 in
      let lost_capacity = Array.make n 0.0 in
      (* Accrue capacity lost since the last rate change, clipped to the
         measurement window. *)
      let flush i =
        let now = Engine.now engine in
        let from = max last_change.(i) cfg.warmup in
        if now > from then
          lost_capacity.(i) <- lost_capacity.(i) +. ((now -. from) *. (1.0 -. rate.(i)));
        last_change.(i) <- now
      in
      let effective () = Array.mapi (fun i s -> s *. rate.(i)) cfg.speeds in
      let handle_drained job =
        (match !least_load_state with
        | Some st -> Core.Least_load.departure_recorded st job.Q.Job.computer
        | None -> ());
        (match !jiq_state with
        | Some st -> Core.Jiq.departure_recorded st job.Q.Job.computer
        | None -> ());
        match plan.Fault.on_failure with
        | Fault.Drop ->
          (match san with Some s -> Sanitize.on_drop s | None -> ());
          (match on_drop with Some f -> f job | None -> ());
          if job.Q.Job.arrival >= cfg.warmup then incr lost;
          if recycle then Q.Job.release job_pool job
        | Fault.Requeue ->
          (* Re-dispatched like a fresh arrival (after the blacklist
             update, so it avoids the failed computer) but not counted
             as one: dispatch fractions keep original-dispatch
             semantics.  The job restarts from scratch — no
             checkpointing. *)
          let target = (!sched).sf_select job in
          job.Q.Job.computer <- target;
          servers.(target).Q.Server_intf.submit job
        | Fault.Resume -> ()
      in
      let apply_change i new_rate =
        if not (Float.equal new_rate rate.(i)) then begin
          let was_up = rate.(i) > 0.0 in
          flush i;
          rate.(i) <- new_rate;
          servers.(i).Q.Server_intf.set_rate new_rate;
          (match on_rate_change with
          | Some f -> f ~time:(Engine.now engine) ~computer:i ~rate:new_rate
          | None -> ());
          let crashed = was_up && new_rate <= 0.0 in
          if crashed then incr failures;
          if plan.Fault.reaction = Fault.Blacklist then notify_capacity (effective ());
          if crashed && plan.Fault.on_failure <> Fault.Resume then
            List.iter handle_drained (servers.(i).Q.Server_intf.drain ())
        end
      in
      let recompute_rate i =
        List.fold_left (fun acc f -> acc *. f) 1.0 factors.(i)
      in
      let rec remove_first x = function
        | [] -> []
        | y :: rest -> if Float.equal y x then rest else y :: remove_first x rest
      in
      List.iter
        (fun (p : Fault.process) ->
          let targets =
            match p.Fault.computers with
            | Some l -> l
            | None -> List.init n (fun i -> i)
          in
          List.iter
            (fun i ->
              let rec up () =
                let dt = Distribution.sample p.Fault.uptime fault_rng in
                ignore (Engine.schedule engine ~delay:dt (fun _ -> down ()))
              and down () =
                factors.(i) <- p.Fault.degrade :: factors.(i);
                apply_change i (recompute_rate i);
                let dt = Distribution.sample p.Fault.downtime fault_rng in
                ignore (Engine.schedule engine ~delay:dt (fun _ -> recover ()))
              and recover () =
                factors.(i) <- remove_first p.Fault.degrade factors.(i);
                apply_change i (recompute_rate i);
                up ()
              in
              up ())
            targets)
        plan.Fault.processes;
      Some
        (fun () ->
          Array.iteri (fun i _ -> flush i) rate;
          (* Window end = the clock, which one-shot runs have advanced
             exactly to the horizon by finalize time. *)
          let window = Engine.now engine -. cfg.warmup in
          let weighted = ref 0.0 in
          Array.iteri
            (fun i l -> weighted := !weighted +. (cfg.speeds.(i) *. l))
            lost_capacity;
          {
            Fault.availability = 1.0 -. (!weighted /. (window *. total_speed));
            failures = !failures;
            lost_jobs = !lost;
            downtime = Array.copy lost_capacity;
          })
  in

  (* Warm-up boundary: reset the per-server busy statistics. *)
  if cfg.warmup > 0.0 then
    ignore
      (Engine.schedule engine ~delay:cfg.warmup (fun _ ->
           Log.Log.debug (fun m ->
               m "warm-up boundary at t=%.0f: resetting server statistics"
                 cfg.warmup);
           Array.iter (fun s -> s.Q.Server_intf.reset_stats ()) servers));

  (* One arriving job, at the engine's current time: count it, draw the
     dispatch decision, hand it to the chosen computer.  Shared verbatim
     between the internal arrival process and {!Driver.submit}, so
     daemon-injected jobs take exactly the batch-mode dispatch path. *)
  let inject ~size =
    let now = Engine.now engine in
    incr total_arrivals;
    incr job_counter;
    let job =
      if recycle then Q.Job.acquire job_pool ~id:!job_counter ~size ~arrival:now
      else Q.Job.create ~id:!job_counter ~size ~arrival:now
    in
    let target = (!sched).sf_select job in
    job.Q.Job.computer <- target;
    if now >= cfg.warmup then dispatched.(target) <- dispatched.(target) + 1;
    (match on_dispatch with Some f -> f job | None -> ());
    servers.(target).Q.Server_intf.submit job;
    (match san with
    | Some s ->
      Sanitize.on_arrival s;
      Sanitize.check_engine s engine
    | None -> ());
    target
  in

  (* Arrival process (internal [`Workload] mode only).  A rate modulation
     scales the sampled gap down when the instantaneous rate is high
     (time-rescaled renewal process).  Base gaps come pre-sampled in
     batches from the dedicated arrivals stream ([Workload.gap_source] —
     bit-identical draw order), and the handler/scheduler pair is a
     single mutually-recursive closure pair created once: the
     per-arrival path allocates no closures. *)
  (match arrivals with
  | `External -> ()
  | `Workload ->
    let gaps = Workload.gap_source cfg.workload ~rng:arrivals_rng in
    let rec on_arrival _ =
      let size = Distribution.sample cfg.workload.Workload.size sizes_rng in
      ignore (inject ~size);
      schedule_next_arrival ()
    and schedule_next_arrival () =
      let base_gap = Workload.next_gap gaps in
      let gap =
        match cfg.workload.Workload.modulation with
        | None -> base_gap
        | Some f -> base_gap /. max 0.05 (f (Engine.now engine))
      in
      ignore (Engine.schedule engine ~delay:gap on_arrival)
    in
    schedule_next_arrival ());

  let finalize () =
    (match san with
    | Some s ->
      Sanitize.check_time s ~now:(Engine.now engine);
      Sanitize.check_conservation s
        ~in_system:
          (Array.fold_left (fun acc srv -> acc + srv.Q.Server_intf.in_system ()) 0 servers)
    | None -> ());
    Log.Log.info (fun m ->
        m "%s: %d arrivals, %d measured jobs, %d events in %.0f simulated s"
          (Scheduler.name !current_kind)
          !total_arrivals
          (Collector.jobs_measured collector)
          (Engine.events_executed engine)
          (Engine.now engine));
    let per_computer =
      Array.init n (fun i ->
          {
            speed = cfg.speeds.(i);
            dispatched = dispatched.(i);
            completed = completed.(i);
            utilization = servers.(i).Q.Server_intf.utilization ();
            mean_jobs = servers.(i).Q.Server_intf.mean_in_system ();
          })
    in
    let fault_summary = Option.map (fun f -> f ()) fault_finalize in
    (* Measurement window ends at the clock: one-shot runs are at the
       horizon here, a drained driver at its final virtual time. *)
    let window = Engine.now engine -. cfg.warmup in
    let goodput =
      if window > 0.0 then
        float_of_int (Collector.jobs_measured collector) /. window
      else 0.0
    in
    let availability, lost_jobs =
      match fault_summary with
      | None -> (1.0, 0)
      | Some s -> (s.Fault.availability, s.Fault.lost_jobs)
    in
    let metrics =
      match Collector.metrics ~availability ~goodput ~lost_jobs collector with
      | Ok m -> m
      | Error `No_jobs_measured ->
        invalid_arg
          "Simulation.run: no job completed within the measurement window; \
           lengthen the horizon or shorten the warm-up"
    in
    {
      scheduler_name = Scheduler.name !current_kind;
      metrics;
      median_response_ratio = Collector.median_ratio collector;
      p99_response_ratio = Collector.p99_ratio collector;
      response_time_histogram = Collector.response_time_histogram collector;
      response_ratio_histogram = Collector.response_ratio_histogram collector;
      per_computer;
      dispatch_fractions = Core.Metrics.actual_fractions dispatched;
      intended_fractions = (!sched).sf_intended ();
      offered_utilization = rho;
      total_arrivals = !total_arrivals;
      events_executed = Engine.events_executed engine;
      heap_high_water = Engine.heap_high_water engine;
      fault_summary;
    }
  in
  let set_scheduler kind =
    sched := make_sched kind;
    current_kind := kind;
    match !current_eff with
    | Some eff -> (!sched).sf_on_capacity eff
    | None -> ()
  in
  {
    d_engine = engine;
    d_cfg = cfg;
    d_kind = current_kind;
    d_inject = inject;
    d_set_scheduler = set_scheduler;
    d_finalize = finalize;
    d_arrivals = total_arrivals;
    d_completions = total_completions;
    d_measured = (fun () -> Collector.jobs_measured collector);
    d_in_system =
      (fun () ->
        Array.fold_left
          (fun acc srv -> acc + srv.Q.Server_intf.in_system ())
          0 servers);
    d_done = false;
  }

module Driver = struct
  type t = driver

  let create = create

  let check_live t what =
    if t.d_done then
      invalid_arg (Printf.sprintf "Simulation.Driver.%s: already finalized" what)

  let now t = Engine.now t.d_engine
  let config t = t.d_cfg
  let scheduler t = !(t.d_kind)
  let arrivals t = !(t.d_arrivals)
  let completions t = !(t.d_completions)
  let measured t = t.d_measured ()
  let in_system t = t.d_in_system ()

  let advance t ~to_ =
    check_live t "advance";
    if Float.is_nan to_ then invalid_arg "Simulation.Driver.advance: NaN time";
    if to_ > Engine.now t.d_engine then Engine.run ~until:to_ t.d_engine

  let submit t ~size =
    check_live t "submit";
    if not (size > 0.0) then invalid_arg "Simulation.Driver.submit: size <= 0";
    t.d_inject ~size

  let set_scheduler t kind =
    check_live t "set_scheduler";
    t.d_set_scheduler kind

  let drain t =
    check_live t "drain";
    (* Step (rather than run-to-empty): periodic activities such as a
       stale-least-load poller reschedule themselves forever, so the
       event queue never empties — but every in-flight job has a pending
       departure, so stepping until the system is empty terminates. *)
    while t.d_in_system () > 0 && Engine.step t.d_engine do
      ()
    done

  let finalize t =
    check_live t "finalize";
    t.d_done <- true;
    t.d_finalize ()
end

let run ?sanitize ?hooks_retain_jobs ?metric_histograms ?on_engine ?on_dispatch
    ?on_completion ?on_tick ?on_drop ?on_rate_change ?on_progress cfg =
  let d =
    create ?sanitize ?hooks_retain_jobs ?metric_histograms ?on_engine
      ?on_dispatch ?on_completion ?on_tick ?on_drop ?on_rate_change ?on_progress
      ~arrivals:`Workload cfg
  in
  Driver.advance d ~to_:cfg.horizon;
  Driver.finalize d
