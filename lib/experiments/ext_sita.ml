module Cluster = Statsched_cluster
module Core = Statsched_core

type t = {
  discipline : string;
  points : (string * Runner.point) list;
}

let schedulers =
  [
    ("WRAN", Cluster.Scheduler.Static Core.Policy.wran);
    ("ORR", Cluster.Scheduler.Static Core.Policy.orr);
    ("SITA-E/fast", Cluster.Scheduler.sita_paper ~small_to:`Fast ());
    ("SITA-E/slow", Cluster.Scheduler.sita_paper ~small_to:`Slow ());
    ("LeastLoad", Cluster.Scheduler.least_load_paper);
  ]

let run ?(scale = Config.default_scale) ?seed ?jobs ?(speeds = Core.Speeds.table3)
    ?(rho = Config.base_utilization) () =
  let workload = Cluster.Workload.paper_default ~rho ~speeds in
  List.map
    (fun (label, discipline) ->
      let points =
        List.map
          (fun (name, scheduler) ->
            let spec = Runner.make_spec ~discipline ~speeds ~workload ~scheduler () in
            (name, Runner.measure ?seed ?jobs ~scale spec))
          schedulers
      in
      { discipline = label; points })
    [ ("PS", Cluster.Simulation.Ps); ("FCFS", Cluster.Simulation.Fcfs) ]

let to_report rows =
  let open Report in
  let scheduler_names = List.map fst schedulers in
  let header = "discipline" :: scheduler_names in
  let body =
    List.map
      (fun r ->
        Text r.discipline
        :: List.map
             (fun name -> Interval (List.assoc name r.points).Runner.mean_response_ratio)
             scheduler_names)
      rows
  in
  "Extension: size-aware SITA-E vs size-blind policies (mean response ratio)\n"
  ^ render ~header ~rows:body
