(** Logging source for the cluster simulation.

    All simulation-side diagnostics go through the ["statsched.cluster"]
    {!Logs} source: warm-up boundaries at debug level, adaptive-scheduler
    re-estimations at debug, run completion at info.  Silent unless the
    application installs a reporter and raises the level (the CLI's
    [--verbose] flag does both). *)

val src : Logs.src

module Log : Logs.LOG
