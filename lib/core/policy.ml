type allocation_scheme = Weighted | Optimized | Optimized_at of float

type dispatch_strategy = Random | Round_robin

type t = { allocation : allocation_scheme; dispatching : dispatch_strategy }

let wran = { allocation = Weighted; dispatching = Random }
let oran = { allocation = Optimized; dispatching = Random }
let wrr = { allocation = Weighted; dispatching = Round_robin }
let orr = { allocation = Optimized; dispatching = Round_robin }

let orr_estimated rho_hat = { allocation = Optimized_at rho_hat; dispatching = Round_robin }

let all_static = [ ("WRAN", wran); ("ORAN", oran); ("WRR", wrr); ("ORR", orr) ]

let name t =
  match (t.allocation, t.dispatching) with
  | Weighted, Random -> "WRAN"
  | Weighted, Round_robin -> "WRR"
  | Optimized, Random -> "ORAN"
  | Optimized, Round_robin -> "ORR"
  | Optimized_at rho_hat, Random -> Printf.sprintf "ORAN@%.3g" rho_hat
  | Optimized_at rho_hat, Round_robin -> Printf.sprintf "ORR@%.3g" rho_hat

let allocation_of t ~rho s =
  match t.allocation with
  | Weighted -> Allocation.weighted s
  | Optimized -> Allocation.optimized ~rho s
  | Optimized_at rho_hat ->
    if rho_hat >= 1.0 then Allocation.weighted s
    else begin
      let rho_hat = max 1e-6 rho_hat in
      Allocation.optimized ~rho:rho_hat s
    end

let dispatcher_of t ~rng alloc =
  match t.dispatching with
  | Random -> Dispatch.random ~rng alloc
  | Round_robin -> Dispatch.round_robin alloc
