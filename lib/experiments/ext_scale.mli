(** Extension: the many-server scaling regime.

    The paper's cluster has six computers; this sweep grows it to
    n ∈ {10², 10³, 10⁴} (10 % fast computers at speed 10, 90 % at
    speed 1, ρ = 0.7) and compares the dispatchers whose per-decision
    cost survives that growth:

    - ORR — the paper's Algorithm 2 in lazy offset form, O(log n);
    - LeastLoad — full-information JSQ ([d = n]) on the tournament
      tree, O(log n);
    - JSQ(d) — power-of-d-choices over the same exact queue state, O(d);
    - JIQ — Join-Idle-Queue, O(1).

    Runs are sized in {e jobs}, not simulated seconds: the arrival rate
    grows with the cluster's total speed, so every cell completes the
    same number of jobs and per-policy wall-clock throughput is directly
    comparable across n. *)

type cell = {
  policy : string;
  n : int;
  mean_response_ratio : float;
  p99_response_ratio : float;
  jobs_completed : int;
  events_executed : int;
  wall_seconds : float;  (** wall-clock of this cell's single replication *)
  events_per_sec : float;
  jobs_per_sec : float;
  heap_high_water : int;
}

type t = {
  rho : float;
  jobs_target : float;
  ns : int list;
  d : int;
  cells : cell list;  (** grid order: for each n, each policy *)
}

val default_ns : int list
(** [[100; 1000; 10000]] *)

val default_jobs_target : float
(** 10⁷ jobs per cell. *)

val speeds_for : int -> float array
(** The sweep's two-class speed vector for a cluster of [n]. *)

val run :
  ?seed:int64 ->
  ?jobs:int ->
  ?ns:int list ->
  ?jobs_target:float ->
  ?d:int ->
  ?rho:float ->
  unit ->
  t
(** Run the grid.  [jobs] fans independent cells across domains (each
    cell is a pure function of its parameters, so results do not depend
    on it); [d] is the JSQ sample size (default 2).

    @raise Invalid_argument if [d < 1], any [n < 1] or
    [jobs_target < 1]. *)

val cells_at : t -> int -> cell list
(** The cells of one cluster size, in policy order. *)

val to_csv : t -> string
(** One row per cell; header
    [policy,n,mean_response_ratio,p99_response_ratio,jobs,events,wall_seconds,events_per_sec,jobs_per_sec,heap_high_water]. *)

val to_report : t -> string
(** Human-readable per-n response-ratio and throughput table. *)
