module Engine = Statsched_des.Engine
module Event_queue = Statsched_des.Event_queue
module Tally = Statsched_stats.Tally

(* Mutable float state lives in its own all-float record: OCaml stores
   such records flat, so the per-event updates in [advance]/[reschedule]
   write raw doubles instead of allocating a box per assignment (a mixed
   record would box every [<-] of a float field). *)
type hot = {
  mutable rate : float;  (* fault multiplier on speed; 0 = suspended *)
  mutable vclock : float;
  mutable last_update : float;
  mutable work : float;
}

type t = {
  engine : Engine.t;
  speed : float;
  on_departure : Job.t -> unit;
  active : Job.t Event_queue.t;  (* keyed by virtual finish time *)
  hot : hot;
  mutable completion_ev : Engine.event_handle;  (* [no_event] when unset *)
  mutable completion_fn : Engine.t -> unit;
      (* allocated once in [create]; rescheduling reuses it so the
         submit/complete cycle creates no closures *)
  busy : Tally.t;
  occupancy : Tally.t;
  mutable completed : int;
}

let no_event = Event_queue.no_handle

(* The helpers below are plain (non-recursive) definitions in dependency
   order so the compiler can inline the small ones into the submit /
   complete cycle; [create] comes last because it closes over
   [on_completion]. *)
let[@inline] in_system t = Event_queue.size t.active

(* Bring virtual time and work counters up to the current instant. *)
let[@inline] advance t =
  let now = Engine.now t.engine in
  let n = in_system t in
  if n > 0 then begin
    let eff = t.speed *. t.hot.rate in
    let elapsed = now -. t.hot.last_update in
    t.hot.vclock <- t.hot.vclock +. (elapsed *. eff /. float_of_int n);
    t.hot.work <- t.hot.work +. (elapsed *. eff)
  end;
  t.hot.last_update <- now

let[@inline] eps t = 1e-9 *. (1.0 +. abs_float t.hot.vclock)

let reschedule t =
  if Event_queue.is_handle t.completion_ev then begin
    ignore (Engine.cancel t.engine t.completion_ev);
    t.completion_ev <- no_event
  end;
  Tally.update t.occupancy ~time:(Engine.now t.engine)
    ~value:(float_of_int (in_system t));
  (* [next_time] is NaN when no job is active; NaN compares false below,
     so the empty case falls through without allocating an option. *)
  let v_min = Event_queue.next_time t.active in
  if Float.is_nan v_min then
    Tally.update t.busy ~time:(Engine.now t.engine) ~value:0.0
  else begin
    let eff = t.speed *. t.hot.rate in
    if eff > 0.0 then begin
      Tally.update t.busy ~time:(Engine.now t.engine) ~value:1.0;
      let n = float_of_int (in_system t) in
      let delay = max 0.0 ((v_min -. t.hot.vclock) *. n /. eff) in
      t.completion_ev <- Engine.schedule t.engine ~delay t.completion_fn
    end
    else
      (* Suspended: virtual time is frozen, no completion can occur. *)
      Tally.update t.busy ~time:(Engine.now t.engine) ~value:0.0
  end

(* Top-level rather than nested in [on_completion]: a [let rec] there
   would capture [t]/[tol] and allocate a closure per completion event. *)
let[@schedsim.hot] rec drain_due t tol forced =
  let v_min = Event_queue.next_time t.active in
  (* NaN (empty queue) fails the comparison; [pop_step] guards the
     forced case. *)
  if forced || v_min <= t.hot.vclock +. tol then
    if Event_queue.pop_step t.active then begin
      let job = Event_queue.last_payload t.active in
      job.Job.completion <- Engine.now t.engine;
      t.completed <- t.completed + 1;
      t.on_departure job;
      drain_due t tol false
    end

let on_completion t =
  t.completion_ev <- no_event;
  advance t;
  let tol = eps t in
  (* Float round-off can leave the head a hair beyond the virtual clock;
     force at least one departure so the simulation always progresses. *)
  let head_ready = Event_queue.next_time t.active <= t.hot.vclock +. tol in
  drain_due t tol (not head_ready);
  reschedule t

let create ~engine ~speed ~on_departure () =
  if speed <= 0.0 then invalid_arg "Ps_server.create: speed <= 0";
  let t =
    {
      engine;
      speed;
      on_departure;
      active = Event_queue.create ();
      hot = { rate = 1.0; vclock = 0.0; last_update = Engine.now engine; work = 0.0 };
      completion_ev = no_event;
      completion_fn = ignore;
      busy = Tally.create ~start_time:(Engine.now engine) ();
      occupancy = Tally.create ~start_time:(Engine.now engine) ();
      completed = 0;
    }
  in
  t.completion_fn <- (fun _ -> on_completion t);
  t

let submit t job =
  advance t;
  let now = Engine.now t.engine in
  if job.Job.start < 0.0 then job.Job.start <- now;
  ignore (Event_queue.add t.active ~time:(t.hot.vclock +. job.Job.size) job);
  Tally.update t.busy ~time:now ~value:1.0;
  reschedule t

let utilization t =
  Tally.advance t.busy ~time:(Engine.now t.engine);
  let u = Tally.time_average t.busy in
  if Float.is_nan u then 0.0 else u

let mean_in_system t =
  Tally.advance t.occupancy ~time:(Engine.now t.engine);
  let l = Tally.time_average t.occupancy in
  if Float.is_nan l then 0.0 else l

let completed t = t.completed

let work_done t =
  advance t;
  t.hot.work

let set_rate t r =
  if r < 0.0 then invalid_arg "Ps_server.set_rate: rate < 0";
  advance t;
  t.hot.rate <- r;
  reschedule t

let drain t =
  advance t;
  let rec take acc =
    match Event_queue.pop t.active with
    | Some (_, job) -> take (job :: acc)
    | None -> List.rev acc
  in
  let jobs = take [] in
  reschedule t;
  jobs

let reset_stats t =
  advance t;
  Tally.reset_at t.busy ~time:(Engine.now t.engine);
  Tally.update t.occupancy ~time:(Engine.now t.engine)
    ~value:(float_of_int (in_system t));
  Tally.reset_at t.occupancy ~time:(Engine.now t.engine);
  t.completed <- 0;
  t.hot.work <- 0.0

let to_server t =
  {
    Server_intf.speed = t.speed;
    submit = submit t;
    in_system = (fun () -> in_system t);
    mean_in_system = (fun () -> mean_in_system t);
    utilization = (fun () -> utilization t);
    completed = (fun () -> completed t);
    work_done = (fun () -> work_done t);
    reset_stats = (fun () -> reset_stats t);
    set_rate = set_rate t;
    drain = (fun () -> drain t);
    discipline = "PS";
  }
