(* Fork/join over stdlib Domain — the single Domain.spawn site in the
   tree (schedlint R6). Indices are handed out dynamically via an atomic
   counter, but every index writes its result into its own slot, so the
   returned list is always [f 0; ...; f (n-1)] no matter how the work was
   scheduled. *)

let available_parallelism () = Domain.recommended_domain_count ()

let default_jobs () =
  match Sys.getenv_opt "STATSCHED_JOBS" with
  | None -> available_parallelism ()
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> j
    | Some _ | None ->
      invalid_arg
        (Printf.sprintf
           "STATSCHED_JOBS must be a positive integer (got %S)" s))

(* Lifetime count of domains spawned by this module.  Monotonic telemetry
   only — never read back into control flow — so the global cannot make
   results depend on past calls; it exists so tests can pin the
   "jobs = 1 spawns nothing" contract. *)
(* schedlint: allow R5 *)
let spawned = Atomic.make 0

let spawn_count () = Atomic.get spawned

let resolve_jobs ?jobs n =
  let jobs =
    match jobs with
    | Some j -> if j < 1 then invalid_arg "Par.map: jobs < 1" else j
    | None -> default_jobs ()
  in
  max 1 (min jobs n)

(* Parallel fan-out, reached only with [jobs >= 2] (hence [n >= 2],
   since [resolve_jobs] clamps to [n]).  [f 0] runs eagerly in the
   caller: its result seeds the slot array, so slots hold plain values —
   no ['a option] boxing, and when ['a] is [float] the array is flat.
   The atomic hand-out therefore starts at index 1, and only
   [min (jobs - 1) (n - 1)] helper domains are spawned. *)
let map_parallel jobs n f =
  let r0 = f 0 in
  let results = Array.make n r0 in
  let next = Atomic.make 1 in
  let failed = Atomic.make None in
  (* Each worker (spawned domains plus the caller) pulls the next
     unstarted index; on the first exception everyone winds down. *)
  let worker () =
    let running = ref true in
    while !running do
      let k = Atomic.fetch_and_add next 1 in
      if k >= n || Atomic.get failed <> None then running := false
      else
        match f k with
        | v -> results.(k) <- v
        | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          ignore (Atomic.compare_and_set failed None (Some (e, bt)))
    done
  in
  let domains =
    List.init
      (min (jobs - 1) (n - 1))
      (fun _ ->
        Atomic.incr spawned;
        Domain.spawn worker)
  in
  worker ();
  List.iter Domain.join domains;
  (match Atomic.get failed with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  results

let map_array ?jobs n f =
  if n < 0 then invalid_arg "Par.map: negative length";
  let jobs = resolve_jobs ?jobs n in
  if jobs = 1 then Array.init n f else map_parallel jobs n f

let map ?jobs n f =
  if n < 0 then invalid_arg "Par.map: negative length";
  let jobs = resolve_jobs ?jobs n in
  (* [jobs = 1] is the provably pool-free path: no slot array, no
     atomics, no domains — just the plain sequential list build. *)
  if jobs = 1 then List.init n f else Array.to_list (map_parallel jobs n f)
