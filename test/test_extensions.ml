open Test_util
module Q = Statsched_queueing
module Theory = Q.Theory
module Core = Statsched_core
module Cluster = Statsched_cluster
module E = Statsched_experiments
module Rng = Statsched_prng.Rng
module Engine = Statsched_des.Engine
module Job = Q.Job

(* ------------------------------------------------------------------ *)
(* Queueing theory closed forms                                        *)

let theory_mm1_consistency () =
  (* For exponential sizes (scv = 1), P-K reduces to M/M/1-FCFS. *)
  let lambda = 0.6 and mean_size = 1.0 and speed = 1.0 in
  check_float ~eps:1e-12 "P-K at scv=1 equals M/M/1"
    (Theory.mm1_fcfs_response ~lambda ~mean_size ~speed)
    (Theory.mg1_fcfs_response ~lambda ~mean_size ~scv:1.0 ~speed)

let theory_ps_equals_mm1 () =
  (* PS mean response time = M/M/1 mean response time at the same load. *)
  let lambda = 0.4 and mean_size = 2.0 and speed = 2.0 in
  check_float ~eps:1e-12 "PS = M/M/1 mean"
    (Theory.mm1_fcfs_response ~lambda ~mean_size ~speed)
    (Theory.mg1_ps_response ~lambda ~mean_size ~speed)

let theory_saturation () =
  check_float "saturated fcfs" infinity
    (Theory.mm1_fcfs_response ~lambda:2.0 ~mean_size:1.0 ~speed:1.0);
  check_float "saturated ps" infinity
    (Theory.mg1_ps_response ~lambda:2.0 ~mean_size:1.0 ~speed:1.0)

let theory_variability_penalty () =
  (* FCFS response grows with scv; PS does not. *)
  let lambda = 0.5 and mean_size = 1.0 and speed = 1.0 in
  let fcfs scv = Theory.mg1_fcfs_response ~lambda ~mean_size ~scv ~speed in
  Alcotest.(check bool) "scv penalty" true (fcfs 10.0 > fcfs 1.0);
  check_float ~eps:1e-12 "known P-K value: 1 + 0.5*1*2/(2*0.5)" 2.0 (fcfs 1.0)

let theory_vs_fcfs_simulation () =
  (* Validate the FCFS server against Pollaczek-Khinchine with Erlang-2
     sizes (scv = 0.5). *)
  let engine = Engine.create () in
  let g = rng ~seed:4242L () in
  let size_dist = Statsched_dist.Erlang.create ~k:2 ~rate:2.0 in
  let mean_size = 1.0 in
  let lambda = 0.6 in
  let w = Statsched_stats.Welford.create () in
  let horizon = 200_000.0 in
  let warmup = horizon /. 5.0 in
  let server =
    Q.Fcfs_server.create ~engine ~speed:1.0
      ~on_departure:(fun j ->
        if j.Job.arrival >= warmup then
          Statsched_stats.Welford.add w (Job.response_time j))
      ()
  in
  let id = ref 0 in
  let rec arrive () =
    ignore
      (Engine.schedule engine
         ~delay:(Statsched_dist.Exponential.sample ~rate:lambda g)
         (fun e ->
           incr id;
           let size = Statsched_dist.Distribution.sample size_dist g in
           Q.Fcfs_server.submit server (Job.create ~id:!id ~size ~arrival:(Engine.now e));
           arrive ()))
  in
  arrive ();
  Engine.run ~until:horizon engine;
  let expected = Theory.mg1_fcfs_response ~lambda ~mean_size ~scv:0.5 ~speed:1.0 in
  check_close ~rel:0.05 "P-K matches FCFS simulation" expected
    (Statsched_stats.Welford.mean w)

let theory_slowdown () =
  (* speed 1, rho 0.6 -> slowdown 1/(1-0.6) = 2.5 *)
  check_float ~eps:1e-9 "PS slowdown" 2.5
    (Theory.mg1_ps_mean_slowdown ~lambda:0.6 ~mean_size:1.0 ~speed:1.0);
  (* doubling the speed halves both load and slowdown denominator terms *)
  check_float ~eps:1e-9 "PS slowdown at speed 2" (1.0 /. (2.0 *. 0.7))
    (Theory.mg1_ps_mean_slowdown ~lambda:0.6 ~mean_size:1.0 ~speed:2.0)

let theory_number_in_system () =
  check_float ~eps:1e-12 "L = rho/(1-rho)" (0.7 /. 0.3)
    (Theory.mm1_number_in_system ~lambda:0.7 ~mean_size:1.0 ~speed:1.0)

(* ------------------------------------------------------------------ *)
(* Golden ratio dispatcher                                             *)

let gr_longrun_fractions () =
  let alpha = [| 0.5; 0.3; 0.2 |] in
  let d = Core.Dispatch.golden_ratio alpha in
  let n = 100_000 in
  let c = Array.make 3 0 in
  for _ = 1 to n do
    let i = Core.Dispatch.select d in
    c.(i) <- c.(i) + 1
  done;
  Array.iteri
    (fun i count ->
      check_close ~rel:0.01
        (Printf.sprintf "golden ratio share %d" i)
        alpha.(i)
        (float_of_int count /. float_of_int n))
    c

let gr_deterministic_and_resettable () =
  let alpha = [| 0.6; 0.4 |] in
  let d = Core.Dispatch.golden_ratio alpha in
  let first = List.init 50 (fun _ -> Core.Dispatch.select d) in
  Core.Dispatch.reset d;
  let second = List.init 50 (fun _ -> Core.Dispatch.select d) in
  Alcotest.(check (list int)) "reset replays" first second

let gr_smoother_than_random () =
  let alpha = E.Fig2.fractions in
  let discrepancy d =
    let n = 20_000 in
    let c = Array.make (Array.length alpha) 0 in
    let worst = ref 0.0 in
    for t = 1 to n do
      let i = Core.Dispatch.select d in
      c.(i) <- c.(i) + 1;
      Array.iteri
        (fun j a ->
          let dev = abs_float (float_of_int c.(j) -. (float_of_int t *. a)) in
          if dev > !worst then worst := dev)
        alpha
    done;
    !worst
  in
  let gr = discrepancy (Core.Dispatch.golden_ratio alpha) in
  let rand = discrepancy (Core.Dispatch.random ~rng:(rng ()) alpha) in
  let rr = discrepancy (Core.Dispatch.round_robin alpha) in
  Alcotest.(check bool)
    (Printf.sprintf "rr %.1f <= gr %.1f < random %.1f" rr gr rand)
    true
    (gr < rand && rr <= gr +. 1.0)

(* ------------------------------------------------------------------ *)
(* Jain index                                                          *)

let jain_equal_is_one () =
  check_float ~eps:1e-12 "equal vector" 1.0 (Core.Metrics.jain_index [| 3.0; 3.0; 3.0 |])

let jain_single_carrier () =
  check_float ~eps:1e-12 "one carries all" 0.25
    (Core.Metrics.jain_index [| 8.0; 0.0; 0.0; 0.0 |])

let jain_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Metrics.jain_index: empty vector")
    (fun () -> ignore (Core.Metrics.jain_index [||]));
  Alcotest.check_raises "negative" (Invalid_argument "Metrics.jain_index: negative value")
    (fun () -> ignore (Core.Metrics.jain_index [| 1.0; -1.0 |]));
  Alcotest.(check bool) "all zero is nan" true
    (Float.is_nan (Core.Metrics.jain_index [| 0.0; 0.0 |]))

let jain_optimized_less_balanced () =
  (* The optimized allocation deliberately unbalances utilisations:
     its Jain index of per-computer utilisation is below weighted's 1. *)
  let speeds = Core.Speeds.table3 in
  let rho = 0.5 in
  let lambda = rho *. Core.Speeds.total speeds in
  let utils alloc =
    Array.mapi (fun i a -> a *. lambda /. speeds.(i)) alloc
  in
  let j_weighted = Core.Metrics.jain_index (utils (Core.Allocation.weighted speeds)) in
  let j_opt = Core.Metrics.jain_index (utils (Core.Allocation.optimized ~rho speeds)) in
  check_float ~eps:1e-9 "weighted perfectly balanced" 1.0 j_weighted;
  Alcotest.(check bool) "optimized unbalances" true (j_opt < 0.95)

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)

let trace_records_roundtrip () =
  let t = Cluster.Trace.create () in
  let speeds = [| 1.0; 2.0 |] in
  let workload = Cluster.Workload.poisson_exponential ~rho:0.5 ~mean_size:1.0 ~speeds in
  let cfg =
    Cluster.Simulation.default_config ~horizon:5_000.0 ~speeds ~workload
      ~scheduler:(Cluster.Scheduler.static Core.Policy.wrr) ()
  in
  let r =
    Cluster.Simulation.run
      ~on_dispatch:(Cluster.Trace.on_dispatch t)
      ~on_completion:(Cluster.Trace.on_completion t)
      cfg
  in
  Alcotest.(check int) "every arrival traced" r.Cluster.Simulation.total_arrivals
    (Cluster.Trace.dispatch_count t);
  Alcotest.(check bool) "completions traced" true (Cluster.Trace.completion_count t > 0);
  Alcotest.(check bool) "completions <= dispatches" true
    (Cluster.Trace.completion_count t <= Cluster.Trace.dispatch_count t);
  (* records are time-ordered *)
  let ds = Cluster.Trace.dispatches t in
  for i = 1 to Array.length ds - 1 do
    if ds.(i).Cluster.Trace.time < ds.(i - 1).Cluster.Trace.time then
      Alcotest.fail "dispatch trace out of order"
  done;
  (* completed_sizes reconstructs sizes *)
  let sizes = Cluster.Trace.completed_sizes t in
  Array.iter
    (fun s -> Alcotest.(check bool) "positive size" true (s > 0.0))
    sizes

let trace_csv_output () =
  let t = Cluster.Trace.create () in
  Cluster.Trace.record_dispatch t
    { Cluster.Trace.time = 1.0; job_id = 1; computer = 0; size = 2.0 };
  Cluster.Trace.record_completion t
    {
      Cluster.Trace.time = 3.0;
      job_id = 1;
      computer = 0;
      response_time = 2.0;
      response_ratio = 1.0;
    };
  let path = Filename.temp_file "statsched" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Cluster.Trace.write_csv t path;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      Alcotest.(check int) "header + 2 records" 3 (List.length lines);
      Alcotest.(check string) "header"
        "kind,time,job_id,computer,size,response_time,response_ratio"
        (List.hd lines))

(* ------------------------------------------------------------------ *)
(* Batch means runner                                                  *)

let single_run_point () =
  let speeds = [| 1.0 |] in
  let workload = Cluster.Workload.poisson_exponential ~rho:0.7 ~mean_size:1.0 ~speeds in
  let spec =
    E.Runner.make_spec ~speeds ~workload
      ~scheduler:(Cluster.Scheduler.static Core.Policy.wrr) ()
  in
  let point =
    E.Runner.measure_single_run ~batch_size:2_000 ~horizon:100_000.0 ~warmup:20_000.0
      spec
  in
  (* M/M/1-PS: T = 1/(1 - 0.7) *)
  check_close ~rel:0.1 "batch means point estimate" (1.0 /. 0.3)
    point.E.Runner.mean_response_time.Statsched_stats.Confidence.mean;
  Alcotest.(check bool) "CI present" true
    (point.E.Runner.mean_response_time.Statsched_stats.Confidence.half_width > 0.0);
  Alcotest.(check bool) "fairness half-width is nan (single run)" true
    (Float.is_nan point.E.Runner.fairness.Statsched_stats.Confidence.half_width)

let single_run_too_short () =
  let speeds = [| 1.0 |] in
  let workload = Cluster.Workload.poisson_exponential ~rho:0.5 ~mean_size:1.0 ~speeds in
  let spec =
    E.Runner.make_spec ~speeds ~workload
      ~scheduler:(Cluster.Scheduler.static Core.Policy.wrr) ()
  in
  try
    ignore
      (E.Runner.measure_single_run ~batch_size:1_000_000 ~horizon:5_000.0 ~warmup:1_000.0
         spec);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let suite =
  [
    test "theory: P-K reduces to M/M/1 at scv=1" theory_mm1_consistency;
    test "theory: PS equals M/M/1 mean" theory_ps_equals_mm1;
    test "theory: saturation" theory_saturation;
    test "theory: variability penalises FCFS only" theory_variability_penalty;
    slow_test "theory: P-K matches FCFS simulation" theory_vs_fcfs_simulation;
    test "theory: PS mean slowdown" theory_slowdown;
    test "theory: number in system" theory_number_in_system;
    test "golden ratio: long-run fractions" gr_longrun_fractions;
    test "golden ratio: deterministic + reset" gr_deterministic_and_resettable;
    test "golden ratio: between round-robin and random" gr_smoother_than_random;
    test "jain index: equal vector" jain_equal_is_one;
    test "jain index: single carrier" jain_single_carrier;
    test "jain index: validation" jain_validation;
    test "jain index: optimized allocation unbalances" jain_optimized_less_balanced;
    test "trace: records round-trip from simulation" trace_records_roundtrip;
    test "trace: CSV output" trace_csv_output;
    slow_test "batch means: single-run point" single_run_point;
    test "batch means: too-short run rejected" single_run_too_short;
  ]
