(** Flat tournament tree over lexicographic [(primary, secondary)]
    float pairs, breaking full ties toward the smallest leaf index.

    The argmin under the triple [(primary, secondary, index)] is an
    O(1) root read; a leaf update is O(log n) and allocation-free.
    Internal nodes store {e exact copies} of leaf pairs (no
    arithmetic), so selections are bit-faithful to a linear scan under
    the same order — the property the lazy round-robin dispatcher's
    eager-equivalence proof rests on.  Values must never be NaN. *)

type t

val create : int -> t
(** [create n] builds a tree over [n] leaves, all at
    [(+infinity, +infinity)].

    @raise Invalid_argument if [n < 1]. *)

val length : t -> int
(** Number of leaves. *)

val set : t -> int -> prim:float -> sec:float -> unit
(** Overwrite leaf [i]'s pair; O(log n). *)

(** {1 Raw leaf access}

    Allocation-free update path, as in {!Min_tree}: dev builds compile
    with [-opaque], so [set]'s float parameters are boxed at every
    cross-module call.  Hot callers store the pair directly into
    {!prim_leaves}/{!sec_leaves} at {!leaf_pos} and then call
    {!refresh}.  Only leaf slots may be written. *)

val prim_leaves : t -> Float.Array.t
val sec_leaves : t -> Float.Array.t
val leaf_pos : t -> int -> int

val refresh : t -> int -> unit
(** Recompute the spine above leaf [i] after direct writes; O(log n). *)

val get_prim : t -> int -> float
val get_sec : t -> int -> float

val fill : t -> prim:float -> sec:float -> unit
(** Set every leaf to the same pair and rebuild in O(n). *)

val min_prim : t -> float
(** Primary key of the winning leaf ([+infinity] when all are). *)

val min_sec : t -> float
(** Secondary key of the winning leaf. *)

val argmin : t -> int
(** Leaf index minimising [(primary, secondary, index)]. *)
