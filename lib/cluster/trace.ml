module Job = Statsched_queueing.Job

type dispatch_record = {
  time : float;
  job_id : int;
  computer : int;
  size : float;
}

type completion_record = {
  time : float;
  job_id : int;
  computer : int;
  response_time : float;
  response_ratio : float;
}

(* Minimal growable buffer; Buffer-style doubling. *)
type 'a vec = { mutable data : 'a array; mutable len : int }

let vec_create () = { data = [||]; len = 0 }

let vec_push v x =
  let cap = Array.length v.data in
  if v.len = cap then begin
    let ncap = max 256 (2 * cap) in
    let ndata = Array.make ncap x in
    Array.blit v.data 0 ndata 0 v.len;
    v.data <- ndata
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let vec_to_array v = Array.sub v.data 0 v.len

type t = {
  dispatch_log : dispatch_record vec;
  completion_log : completion_record vec;
}

let create ?capacity:_ () =
  { dispatch_log = vec_create (); completion_log = vec_create () }

let record_dispatch t r = vec_push t.dispatch_log r

let record_completion t r = vec_push t.completion_log r

let on_dispatch t job =
  record_dispatch t
    {
      time = job.Job.arrival;
      job_id = job.Job.id;
      computer = job.Job.computer;
      size = job.Job.size;
    }

let on_completion t job =
  record_completion t
    {
      time = job.Job.completion;
      job_id = job.Job.id;
      computer = job.Job.computer;
      response_time = Job.response_time job;
      response_ratio = Job.response_ratio job;
    }

let dispatches t = vec_to_array t.dispatch_log

let completions t = vec_to_array t.completion_log

let dispatch_count t = t.dispatch_log.len

let completion_count t = t.completion_log.len

let completed_sizes t =
  Array.init t.completion_log.len (fun i ->
      let c = t.completion_log.data.(i) in
      c.response_time /. c.response_ratio)

let write_csv t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "kind,time,job_id,computer,size,response_time,response_ratio\n";
      for i = 0 to t.dispatch_log.len - 1 do
        let d = t.dispatch_log.data.(i) in
        Printf.fprintf oc "dispatch,%.6f,%d,%d,%.6f,,\n" d.time d.job_id d.computer d.size
      done;
      for i = 0 to t.completion_log.len - 1 do
        let c = t.completion_log.data.(i) in
        Printf.fprintf oc "completion,%.6f,%d,%d,,%.6f,%.6f\n" c.time c.job_id
          c.computer c.response_time c.response_ratio
      done)
