(** Metric collection for a simulation run.

    Accumulates the paper's three job metrics over completions whose
    arrival falls inside the measurement window (jobs arriving during
    warm-up are excluded even if they complete later, matching
    Section 4.1), entirely in O(1) space via {!Statsched_stats.Welford}
    and {!Statsched_stats.P2_quantile}. *)

type t

val create : warmup:float -> unit -> t
(** Count only jobs with [arrival >= warmup]. *)

val on_departure : t -> Statsched_queueing.Job.t -> unit
(** Feed a completed job. *)

val jobs_measured : t -> int

val metrics :
  ?availability:float -> ?goodput:float -> ?lost_jobs:int -> t -> Statsched_core.Metrics.t
(** Snapshot of the accumulated metrics.  The reliability fields default
    to a fault-free run ([availability = 1], [lost_jobs = 0], goodput
    unknown); {!Simulation} overrides them from its fault bookkeeping.

    @raise Invalid_argument if no job has been measured. *)

val response_time_stats : t -> Statsched_stats.Welford.t
val response_ratio_stats : t -> Statsched_stats.Welford.t

val median_ratio : t -> float
(** P² estimate of the median response ratio. *)

val p99_ratio : t -> float
(** P² estimate of the 99th-percentile response ratio. *)
