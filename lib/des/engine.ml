type t = {
  clock : Float.Array.t;
      (* length 1.  A [mutable clock : float] field in this mixed record
         would box on every write — one allocation per event — whereas a
         flat float-array slot stores the raw double. *)
  queue : (t -> unit) Event_queue.t;
  mutable executed : int;
}

type event_handle = Event_queue.handle

exception Schedule_in_past of { now : float; requested : float }

let create ?(start_time = 0.0) () =
  { clock = Float.Array.make 1 start_time; queue = Event_queue.create (); executed = 0 }

let[@inline] now e = Float.Array.unsafe_get e.clock 0

let[@inline] schedule_at e ~time f =
  if time < now e then raise (Schedule_in_past { now = now e; requested = time });
  Event_queue.add e.queue ~time f

let[@inline] [@schedsim.hot] schedule e ~delay f =
  if delay < 0.0 then
    raise (Schedule_in_past { now = now e; requested = now e +. delay });
  schedule_at e ~time:(now e +. delay) f

let cancel e h = Event_queue.cancel e.queue h

let pending_events e = Event_queue.size e.queue

let[@schedsim.hot] step e =
  (* Allocation-free event dispatch: [pop_step] parks the event in the
     queue's scratch slot instead of returning a [(time, payload) option]. *)
  if Event_queue.pop_step e.queue then begin
    Float.Array.unsafe_set e.clock 0 (Event_queue.last_time e.queue);
    e.executed <- e.executed + 1;
    (Event_queue.last_payload e.queue) e;
    true
  end
  else false

let run ?until e =
  match until with
  | None -> while step e do () done
  | Some horizon ->
    let running = ref true in
    while !running do
      (* [next_time] is NaN when the queue is empty, and NaN <= horizon
         is false — one allocation-free comparison covers both exits. *)
      let t = Event_queue.next_time e.queue in
      if t <= horizon then begin
        if not (step e) then running := false
      end
      else running := false
    done;
    if now e < horizon then Float.Array.unsafe_set e.clock 0 horizon

let events_executed e = e.executed

type snapshot = {
  snap_now : float;
  snap_events_executed : int;
  snap_pending : int;
  snap_heap_high_water : int;
}

let snapshot e =
  {
    snap_now = now e;
    snap_events_executed = e.executed;
    snap_pending = Event_queue.size e.queue;
    snap_heap_high_water = Event_queue.high_water e.queue;
  }

let heap_ordered e = Event_queue.heap_ordered e.queue

let heap_high_water e = Event_queue.high_water e.queue

module Testing = struct
  let corrupt_heap e = Event_queue.Testing.corrupt e.queue
end

let every e ~period f =
  if period <= 0.0 then invalid_arg "Engine.every: period <= 0";
  (* One closure for the lifetime of the periodic task: re-scheduling the
     same handler value keeps the per-tick path allocation-free. *)
  let rec handler e =
    f e;
    ignore (schedule e ~delay:period handler)
  in
  ignore (schedule e ~delay:period handler)
