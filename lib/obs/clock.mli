(** The single sanctioned wall-clock read.

    Simulated time comes from {!Statsched_des.Engine.now}; nothing in the
    model layer may observe real time (schedlint rule R2 enforces this).
    Self-profiling — events per wall-clock second, progress heartbeats —
    legitimately needs the wall clock, and this module is the one place
    allowed to read it.  A cram fixture ([test/clock_guard.t]) pins that
    no other [allow R2] escape hatch exists in the tree, so telemetry
    code cannot silently grow hidden wall-time dependencies that would
    perturb reproducibility. *)

val now : unit -> float
(** Wall-clock seconds since the Unix epoch (sub-microsecond resolution
    where the OS provides it).  Use only for instrumentation — never to
    influence a simulation. *)

val elapsed : since:float -> float
(** [elapsed ~since] is [now () -. since], clamped to be non-negative
    (NTP steps can move the wall clock backwards). *)

val cpu : unit -> float
(** Processor time consumed by this process, in seconds.  Unlike
    {!now}, immune to co-tenant CPU steal — the benchmark harness uses
    it to measure instrumentation overhead as extra work done rather
    than extra wall time elapsed. *)
