tracestat cross-validates a run journal against the collector summary
recorded in the same file: mean response time/ratio and dispatch
fractions recomputed from the sampled records must land inside the
confidence bands around the collector's own numbers, and (when the
completion stream kept stride 1) the per-computer utilizations must
match to the band as well.

Combo 1: the paper's Table 3 cluster, ORR + processor sharing.

  $ schedsim run --horizon 20000 --warmup 5000 --seed 7 --journal j1.out > /dev/null
  $ tracestat check j1.out
  [PASS] mean_response_time: journal 37.7603 ± 22 vs collector 37.7574 (tolerance 23.2)
  [PASS] mean_response_ratio: journal 0.608558 ± 0.053 vs collector 0.626305 (tolerance 0.0653)
  [PASS] dispatch_fraction_0: journal 0.0148048 ± 0.015 vs collector 0.013966 (tolerance 0.0149)
  [PASS] dispatch_fraction_1: journal 0.0161507 ± 0.015 vs collector 0.0137977 (tolerance 0.0155)
  [PASS] dispatch_fraction_2: journal 0.0161507 ± 0.015 vs collector 0.0137977 (tolerance 0.0155)
  [PASS] dispatch_fraction_3: journal 0.0188425 ± 0.016 vs collector 0.0137977 (tolerance 0.0167)
  [PASS] dispatch_fraction_4: journal 0.013459 ± 0.014 vs collector 0.0137977 (tolerance 0.0142)
  [PASS] dispatch_fraction_5: journal 0.0296097 ± 0.02 vs collector 0.0259128 (tolerance 0.021)
  [PASS] dispatch_fraction_6: journal 0.0201884 ± 0.017 vs collector 0.0259128 (tolerance 0.0175)
  [PASS] dispatch_fraction_7: journal 0.0296097 ± 0.02 vs collector 0.0259128 (tolerance 0.021)
  [PASS] dispatch_fraction_8: journal 0.0296097 ± 0.02 vs collector 0.0259128 (tolerance 0.021)
  [PASS] dispatch_fraction_9: journal 0.039031 ± 0.023 vs collector 0.0385327 (tolerance 0.0241)
  [PASS] dispatch_fraction_10: journal 0.0336474 ± 0.022 vs collector 0.0385327 (tolerance 0.0225)
  [PASS] dispatch_fraction_11: journal 0.0296097 ± 0.02 vs collector 0.038701 (tolerance 0.0212)
  [PASS] dispatch_fraction_12: journal 0.119785 ± 0.039 vs collector 0.120646 (tolerance 0.0416)
  [PASS] dispatch_fraction_13: journal 0.258412 ± 0.053 vs collector 0.265691 (tolerance 0.0582)
  [PASS] dispatch_fraction_14: journal 0.33109 ± 0.057 vs collector 0.325088 (tolerance 0.0633)
  note: completion records are sampled (stride > 1); utilization cross-check skipped
  17 checks, 0 failed

Combo 2: least-load + FCFS on a two-class cluster.

  $ schedsim run --horizon 20000 --warmup 5000 --seed 7 -p least-load --discipline fcfs -s 4x1,2x4 --journal j2.out > /dev/null
  $ tracestat check j2.out
  [PASS] mean_response_time: journal 128.485 ± 22 vs collector 127.22 (tolerance 24.4)
  [PASS] mean_response_ratio: journal 5.4986 ± 1.1 vs collector 5.29108 (tolerance 1.23)
  [PASS] dispatch_fraction_0: journal 0.0366162 ± 0.022 vs collector 0.0366162 (tolerance 0.0227)
  [PASS] dispatch_fraction_1: journal 0.0505051 ± 0.026 vs collector 0.0505051 (tolerance 0.0266)
  [PASS] dispatch_fraction_2: journal 0.0820707 ± 0.032 vs collector 0.0833333 (tolerance 0.0338)
  [PASS] dispatch_fraction_3: journal 0.0782828 ± 0.031 vs collector 0.0719697 (tolerance 0.0328)
  [PASS] dispatch_fraction_4: journal 0.392677 ± 0.057 vs collector 0.381944 (tolerance 0.0647)
  [PASS] dispatch_fraction_5: journal 0.359848 ± 0.056 vs collector 0.375631 (tolerance 0.0636)
  note: completion records are sampled (stride > 1); utilization cross-check skipped
  8 checks, 0 failed

Combo 3: WRR under crash/repair faults with dropped jobs.

  $ schedsim run --horizon 20000 --warmup 5000 --seed 7 -p wrr --mtbf 4000 --on-failure drop -s 1,2,4,8 --journal j3.out > /dev/null
  $ tracestat check j3.out
  [PASS] mean_response_time: journal 37.3202 ± 11 vs collector 36.0924 (tolerance 11.8)
  [PASS] mean_response_ratio: journal 0.609854 ± 0.041 vs collector 0.633896 (tolerance 0.0538)
  [PASS] dispatch_fraction_0: journal 0.0660836 ± 0.025 vs collector 0.0651118 (tolerance 0.0268)
  [PASS] dispatch_fraction_1: journal 0.132167 ± 0.035 vs collector 0.132653 (tolerance 0.0374)
  [PASS] dispatch_fraction_2: journal 0.263362 ± 0.045 vs collector 0.263848 (tolerance 0.0505)
  [PASS] dispatch_fraction_3: journal 0.538387 ± 0.051 vs collector 0.538387 (tolerance 0.0619)
  note: run had fault activity; utilization cross-check skipped
  note: rate records are sampled (stride > 1); availability cross-check skipped
  6 checks, 0 failed

A run short enough that every stream kept stride 1: the journal holds
every completion, so the recomputed statistics match the collector
exactly and the utilization cross-check runs too.

  $ schedsim run --horizon 3000 --warmup 500 --seed 11 -s 2x1,1x3 --journal j4.out > /dev/null
  $ tracestat check j4.out
  [PASS] mean_response_time: journal 76.6173 ± 34 vs collector 76.6173 (tolerance 35.4)
  [PASS] mean_response_ratio: journal 1.70458 ± 0.22 vs collector 1.70458 (tolerance 0.258)
  [PASS] dispatch_fraction_0: journal 0.173077 ± 0.1 vs collector 0.173077 (tolerance 0.103)
  [PASS] dispatch_fraction_1: journal 0.173077 ± 0.1 vs collector 0.173077 (tolerance 0.103)
  [PASS] dispatch_fraction_2: journal 0.653846 ± 0.13 vs collector 0.653846 (tolerance 0.138)
  [PASS] utilization_0: journal 0.641817 ± 0 vs collector 0.641817 (tolerance 0.0321)
  [PASS] utilization_1: journal 0.343599 ± 0 vs collector 0.343599 (tolerance 0.0172)
  [PASS] utilization_2: journal 0.823625 ± 0 vs collector 0.823625 (tolerance 0.0412)
  8 checks, 0 failed

show prints the journal's meta lines, sampling state and summary.

  $ tracestat show j4.out
  meta scheduler = ORR
  meta speeds = 1,1,3
  meta horizon = 3000
  meta warmup = 500
  meta seed = 11
  meta replication = 0
  stride 1
  seen dispatch = 181
  seen queue = 181
  seen completion = 181
  seen drop = 0
  seen rate = 0
  records retained = 543
  summary mean_response_time = 76.617348604083332
  summary mean_response_ratio = 1.704575860652813
  summary jobs_measured = 156
  summary availability = 1
  summary lost_jobs = 0
  summary total_arrivals = 181
  summary events_executed = 363
  summary utilization_0 = 0.64181693398773065
  summary dispatch_fraction_0 = 0.17307692307692307
  summary utilization_1 = 0.34359900723022474
  summary dispatch_fraction_1 = 0.17307692307692307
  summary utilization_2 = 0.82362536876168746
  summary dispatch_fraction_2 = 0.65384615384615385

A corrupted journal is flagged (exit code 2), never silently
cross-validated: the FNV-1a checksum in the trailer no longer matches
the altered content.

  $ sed 's/completion/compXetion/' j1.out > jbad.out
  $ tracestat check jbad.out
  tracestat: jbad.out: CORRUPT journal (checksum mismatch: file says 91ccd6287c1392aa, content is 150a9391495fa17e)
  [2]
