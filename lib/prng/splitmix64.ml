type t = { mutable state : int64 }

let create seed = { state = seed }

let copy g = { state = g.state }

let golden_gamma = 0x9E3779B97F4A7C15L

(* The standard SplitMix64 finaliser (Stafford's Mix13 variant). *)
let next g =
  g.state <- Int64.add g.state golden_gamma;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let two_pow_53 = 9007199254740992.0 (* 2^53 *)

let next_float g =
  let bits53 = Int64.shift_right_logical (next g) 11 in
  Int64.to_float bits53 /. two_pow_53

let state g = g.state

let of_state s = { state = s }
