(* Capacity planning with the analytical model.

   The optimized-allocation formula is cheap enough to answer what-if
   questions without simulating: given a farm and a job stream, what does
   adding hardware buy?  This example compares upgrade options for a
   saturating cluster purely with the Mm1/Allocation closed forms, then
   validates the chosen option by simulation.

   Run with:  dune exec examples/capacity_planning.exe *)

module Core = Statsched_core
module Cluster = Statsched_cluster
module E = Statsched_experiments

(* Current farm: eight speed-1 machines at 85% load — response ratios are
   already painful. *)
let base = Array.make 8 1.0

let lambda = 0.85 *. 8.0 (* jobs of mean size 1 per second, mu = 1 *)

let predicted speeds =
  let rho = lambda /. Core.Speeds.total speeds in
  if rho >= 1.0 then None
  else begin
    let alloc = Core.Allocation.optimized ~rho speeds in
    Some
      ( rho,
        Core.Mm1.mean_response_ratio ~mu:1.0 ~lambda ~speeds ~alloc,
        Core.Allocation.optimized_cutoff ~rho speeds )
  end

let options =
  [
    ("status quo (8x1)", base);
    ("add 4 more 1x boxes", Array.append base (Array.make 4 1.0));
    ("add one 4x box", Array.append base [| 4.0 |]);
    ("replace 4 slow with one 8x", Array.append (Array.make 4 1.0) [| 8.0 |]);
  ]

let () =
  Printf.printf "Arrival rate %.2f jobs/s, mean job size 1 s (mu = 1).\n\n" lambda;
  print_string
    (E.Report.render
       ~header:
         [ "option"; "aggregate"; "load"; "predicted mean resp. ratio"; "machines parked" ]
       ~rows:
         (List.map
            (fun (label, speeds) ->
              match predicted speeds with
              | None ->
                [
                  E.Report.Text label;
                  E.Report.Float (Core.Speeds.total speeds);
                  E.Report.Text "-"; E.Report.Text "saturated"; E.Report.Text "-";
                ]
              | Some (rho, ratio, parked) ->
                [
                  E.Report.Text label;
                  E.Report.Float (Core.Speeds.total speeds);
                  E.Report.Percent rho;
                  E.Report.Float ratio;
                  E.Report.Int parked;
                ])
            options));

  (* Validate the most interesting option by simulation with the
     heavy-tailed workload (the analytic model assumes exponential sizes;
     PS insensitivity makes the prediction carry over). *)
  let speeds = List.assoc "add one 4x box" options in
  let rho = lambda /. Core.Speeds.total speeds in
  let workload = Cluster.Workload.paper_default ~rho ~speeds in
  let cfg =
    Cluster.Simulation.default_config ~horizon:300_000.0 ~speeds ~workload
      ~scheduler:(Cluster.Scheduler.static Core.Policy.orr) ()
  in
  let r = Cluster.Simulation.run cfg in
  match predicted speeds with
  | Some (_, predicted_ratio, _) ->
    Printf.printf
      "\nvalidation of 'add one 4x box' under ORR: predicted %.3f, simulated %.3f\n"
      predicted_ratio r.Cluster.Simulation.metrics.Core.Metrics.mean_response_ratio
  | None -> assert false
