module Job = Statsched_queueing.Job
module Registry = Statsched_obs.Registry
module Trace_event = Statsched_obs.Trace_event
module Hdr = Statsched_obs.Hdr_histogram
module Clock = Statsched_obs.Clock
module Journal = Statsched_obs.Journal
module Http = Statsched_obs.Http
module Engine = Statsched_des.Engine

(* Trace lane layout: pid 0 holds one thread per computer carrying job
   spans (ts = arrival, dur = response time); pid 1 mirrors the
   computers with down/degraded capacity spans and drop markers. *)
let jobs_pid = 0
let computers_pid = 1

type t = {
  config : Simulation.config;
  registry : Registry.t;
  tracer : Trace_event.t option;
  journal : Journal.t option;
  wall_start : float;
  dispatches : Registry.counter array;
  completions : Registry.counter array;
  drops : Registry.counter array;
  (* Integer shadows of the three per-computer counter families: the
     hot hooks read these for queue depth (and /state) instead of going
     through boxed [counter_value] reads. *)
  disp_n : int array;
  comp_n : int array;
  drop_n : int array;
  (* Copies of [config] fields the hooks touch per event, hoisted out of
     the nested record chain. *)
  n_computers : int;
  warmup : float;
  rate_changes : Registry.counter;
  rt_hist : Registry.histogram;
  rr_hist : Registry.histogram;
  (* Set once [histograms] hands rt/rr to a run's collector: the
     collector then feeds them and [on_completion] must not add a
     second copy of each observation. *)
  mutable hists_shared : bool;
  (* Current effective rate of each computer and when it last changed;
     integrates into capacity-weighted down-seconds. *)
  rate : float array;
  rate_since : float array;
  down_seconds : float array;
  (* Live-state support for the /state endpoint: completed work per
     computer (Σ job size, whole run) and the engine handle when the
     caller passed [Simulation.run ~on_engine:(Telemetry.set_engine t)]. *)
  work : floatarray;
  mutable engine : Engine.t option;
}

let per_computer_family registry ~help name n =
  Array.init n (fun i ->
      Registry.counter registry ~help ~labels:[ ("computer", string_of_int i) ] name)

let create ?(trace = false) ?journal (config : Simulation.config) =
  let n = Array.length config.Simulation.speeds in
  let registry = Registry.create () in
  let tracer =
    if not trace then None
    else begin
      let tr = Trace_event.create () in
      Trace_event.process_name tr ~pid:jobs_pid "jobs";
      Trace_event.process_name tr ~pid:computers_pid "computers";
      Array.iteri
        (fun i speed ->
          let label = Printf.sprintf "computer %d (speed %g)" i speed in
          Trace_event.thread_name tr ~pid:jobs_pid ~tid:i label;
          Trace_event.thread_name tr ~pid:computers_pid ~tid:i label)
        config.Simulation.speeds;
      Some tr
    end
  in
  {
    config;
    registry;
    tracer;
    journal;
    wall_start = Clock.now ();
    dispatches =
      per_computer_family registry "statsched_jobs_dispatched_total" n
        ~help:"Jobs the scheduler sent to this computer (warm-up included)";
    completions =
      per_computer_family registry "statsched_jobs_completed_total" n
        ~help:"Jobs that finished on this computer (warm-up included)";
    drops =
      per_computer_family registry "statsched_jobs_dropped_total" n
        ~help:"In-flight jobs lost to a crash of this computer";
    disp_n = Array.make n 0;
    comp_n = Array.make n 0;
    drop_n = Array.make n 0;
    n_computers = n;
    warmup = config.Simulation.warmup;
    rate_changes =
      Registry.counter registry "statsched_fault_rate_changes_total"
        ~help:"Effective-speed changes applied by the fault plan";
    (* Same layouts as Collector's tail histograms so either source can
       be merged into these on export. *)
    rt_hist =
      Registry.histogram registry "statsched_response_time_seconds" ~lo:1e-3 ~hi:1e7
        ~help:"Response time of measured jobs (simulated seconds)";
    rr_hist =
      Registry.histogram registry "statsched_response_ratio" ~lo:1e-3 ~hi:1e5
        ~help:"Response ratio (response time / service demand) of measured jobs";
    hists_shared = false;
    rate = Array.make n 1.0;
    rate_since = Array.make n 0.0;
    down_seconds = Array.make n 0.0;
    work = Float.Array.make n 0.0;
    engine = None;
  }

let registry t = t.registry
let metric_count t = Registry.metric_count t.registry

let histograms t =
  t.hists_shared <- true;
  (t.rt_hist, t.rr_hist)
let trace_event_count t =
  match t.tracer with None -> 0 | Some tr -> Trace_event.event_count tr

(* The hot hooks count dispatches/completions/drops only in the flat
   integer shadows; [sync_counters] brings the exported counter cells up
   to date on every read path (scrape, export, finalize), so the
   per-event hooks carry no registry writes at all. *)
let sync_counters t =
  for i = 0 to t.n_computers - 1 do
    let sync cells shadow =
      let c = Array.unsafe_get cells i in
      let v = float_of_int (Array.unsafe_get shadow i) in
      Registry.inc_by c (v -. Registry.counter_value c)
    in
    sync t.dispatches t.disp_n;
    sync t.completions t.comp_n;
    sync t.drops t.drop_n
  done

let on_dispatch t job =
  let i = job.Job.computer in
  if i >= 0 && i < t.n_computers then begin
    let d = Array.unsafe_get t.disp_n i + 1 in
    Array.unsafe_set t.disp_n i d;
    match t.journal with
    | None -> ()
    | Some j ->
      Journal.record_dispatch j ~id:job.Job.id ~computer:i ~time:job.Job.arrival;
      (* Instantaneous run-queue depth of the target, right after this
         dispatch: in-flight = dispatched − completed − dropped. *)
      let depth = d - Array.unsafe_get t.comp_n i - Array.unsafe_get t.drop_n i in
      Journal.record_queue j ~depth ~computer:i ~time:job.Job.arrival
  end

let on_completion t job =
  let i = job.Job.computer in
  if i >= 0 && i < t.n_computers then begin
    Array.unsafe_set t.comp_n i (Array.unsafe_get t.comp_n i + 1);
    Float.Array.unsafe_set t.work i (Float.Array.unsafe_get t.work i +. job.Job.size)
  end;
  let measured = job.Job.arrival >= t.warmup in
  (* When the run's collector owns the histograms it has already added
     this completion; the fallback below only covers hook-only use. *)
  if measured && not t.hists_shared then begin
    let rt = Job.response_time job in
    Hdr.add t.rt_hist rt;
    Hdr.add t.rr_hist (rt /. job.Job.size)
  end;
  (match t.journal with
  | Some j when i >= 0 && i < t.n_computers ->
    Journal.record_completion j ~id:job.Job.id ~computer:i
      ~arrival:job.Job.arrival ~start:job.Job.start
      ~completion:job.Job.completion ~size:job.Job.size
  | Some _ | None -> ());
  match t.tracer with
  | None -> ()
  | Some tr ->
    let rt = Job.response_time job in
    let wait = if job.Job.start >= 0.0 then job.Job.start -. job.Job.arrival else 0.0 in
    Trace_event.complete tr ~cat:"job" ~name:"job" ~ts:job.Job.arrival ~dur:rt
      ~pid:jobs_pid ~tid:i
      ~args:
        [
          ("id", Trace_event.Int job.Job.id);
          ("size", Trace_event.Num job.Job.size);
          ("wait", Trace_event.Num wait);
          ("measured", Trace_event.Str (if measured then "yes" else "no"));
        ]
      ()

let on_drop t job =
  let i = job.Job.computer in
  if i >= 0 && i < t.n_computers then begin
    Array.unsafe_set t.drop_n i (Array.unsafe_get t.drop_n i + 1);
    (match t.journal with
    | Some j ->
      (* Drops only happen while the triggering rate change is being
         applied, so the computer's last-change instant is "now". *)
      Journal.record_drop j ~id:job.Job.id ~computer:i ~time:t.rate_since.(i)
    | None -> ());
    match t.tracer with
    | None -> ()
    | Some tr ->
      (* A drop is triggered by the rate change being applied right now,
         so the computer's last-change instant is the current sim time. *)
      Trace_event.instant tr ~cat:"fault" ~name:"drop" ~ts:t.rate_since.(i)
        ~pid:computers_pid ~tid:i
        ~args:[ ("id", Trace_event.Int job.Job.id) ]
        ()
  end

(* Close the capacity span that ran at [prev] since [since]. *)
let close_capacity_span t ~computer ~since ~until ~prev =
  if prev < 1.0 && until > since then begin
    t.down_seconds.(computer) <-
      t.down_seconds.(computer) +. ((until -. since) *. (1.0 -. prev));
    match t.tracer with
    | None -> ()
    | Some tr ->
      Trace_event.complete tr ~cat:"fault"
        ~name:(if prev <= 0.0 then "down" else "degraded")
        ~ts:since ~dur:(until -. since) ~pid:computers_pid ~tid:computer
        ~args:[ ("rate", Trace_event.Num prev) ]
        ()
  end

let on_rate_change t ~time ~computer ~rate =
  Registry.inc t.rate_changes;
  (match t.journal with
  | Some j -> Journal.record_rate j ~computer ~time ~rate
  | None -> ());
  close_capacity_span t ~computer ~since:t.rate_since.(computer) ~until:time
    ~prev:t.rate.(computer);
  t.rate.(computer) <- rate;
  t.rate_since.(computer) <- time

let finalize ?horizon t (result : Simulation.result) =
  sync_counters t;
  let cfg = t.config in
  let n = Array.length cfg.Simulation.speeds in
  (* A daemon run ends wherever its virtual clock stopped, not at the
     configured horizon cap; it passes the real end time here. *)
  let horizon =
    match horizon with Some h -> h | None -> cfg.Simulation.horizon
  in
  Array.iteri
    (fun i prev ->
      close_capacity_span t ~computer:i ~since:t.rate_since.(i) ~until:horizon
        ~prev;
      t.rate_since.(i) <- horizon)
    (Array.copy t.rate);
  let gauge ?labels ~help name v =
    Registry.set (Registry.gauge t.registry ~help ?labels name) v
  in
  let per_computer i = [ ("computer", string_of_int i) ] in
  let window = horizon -. cfg.Simulation.warmup in
  for i = 0 to n - 1 do
    let pc = result.Simulation.per_computer.(i) in
    gauge ~labels:(per_computer i) "statsched_computer_speed"
      ~help:"Nominal relative speed" pc.Simulation.speed;
    gauge ~labels:(per_computer i) "statsched_computer_utilization"
      ~help:"Busy fraction over the measurement window" pc.Simulation.utilization;
    gauge ~labels:(per_computer i) "statsched_computer_busy_seconds"
      ~help:"Busy simulated seconds over the measurement window"
      (pc.Simulation.utilization *. window);
    gauge ~labels:(per_computer i) "statsched_computer_down_seconds"
      ~help:"Capacity-weighted seconds of degraded or lost capacity over the run"
      t.down_seconds.(i);
    gauge ~labels:(per_computer i) "statsched_dispatch_fraction"
      ~help:"Share of post-warm-up dispatches this computer received"
      result.Simulation.dispatch_fractions.(i);
    match result.Simulation.intended_fractions with
    | None -> ()
    | Some intended ->
      gauge ~labels:(per_computer i) "statsched_intended_fraction"
        ~help:"Allocation fraction the policy aimed for" intended.(i);
      gauge ~labels:(per_computer i) "statsched_dispatch_drift"
        ~help:"Actual minus intended dispatch fraction"
        (result.Simulation.dispatch_fractions.(i) -. intended.(i))
  done;
  let m = result.Simulation.metrics in
  gauge "statsched_mean_response_time_seconds"
    ~help:"Mean response time over measured jobs"
    m.Statsched_core.Metrics.mean_response_time;
  gauge "statsched_mean_response_ratio" ~help:"Mean response ratio over measured jobs"
    m.Statsched_core.Metrics.mean_response_ratio;
  gauge "statsched_availability"
    ~help:"Capacity-weighted availability over the measurement window"
    m.Statsched_core.Metrics.availability;
  gauge "statsched_jobs_lost" ~help:"Measured jobs lost to failures"
    (float_of_int m.Statsched_core.Metrics.lost_jobs);
  gauge "statsched_jobs_measured" ~help:"Completions inside the measurement window"
    (float_of_int m.Statsched_core.Metrics.jobs);
  gauge "statsched_sim_time_seconds" ~help:"Simulated horizon" horizon;
  gauge "statsched_des_events_total" ~help:"Events the DES engine executed"
    (float_of_int result.Simulation.events_executed);
  gauge "statsched_des_heap_high_water"
    ~help:"Largest number of simultaneously pending events"
    (float_of_int result.Simulation.heap_high_water);
  let wall = Clock.elapsed ~since:t.wall_start in
  gauge "statsched_wall_seconds" ~help:"Wall-clock seconds the run took" wall;
  gauge "statsched_des_events_per_second"
    ~help:"DES engine throughput in events per wall-clock second"
    (if wall > 0.0 then float_of_int result.Simulation.events_executed /. wall
     else 0.0)

let write_metrics t path =
  sync_counters t;
  Registry.write_prometheus t.registry path

let write_trace t path =
  match t.tracer with
  | None -> ()
  | Some tr -> Trace_event.write_json tr path

(* ------------------------------------------------------------------ *)
(* Live state and the in-process HTTP server                           *)

let set_engine t engine = t.engine <- Some engine
let journal t = t.journal

let json_num buf x =
  if Float.is_finite x then Buffer.add_string buf (Printf.sprintf "%.17g" x)
  else Buffer.add_string buf "null"

let state_json t =
  let cfg = t.config in
  let n = Array.length cfg.Simulation.speeds in
  let sim_time, events, pending =
    match t.engine with
    | Some e ->
      let s = Engine.snapshot e in
      (s.Engine.snap_now, s.Engine.snap_events_executed, s.Engine.snap_pending)
    | None -> (0.0, 0, 0)
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\"sim_time\":%s,\"events_executed\":%d,\"pending_events\":%d,\"computers\":["
       (if Float.is_finite sim_time then Printf.sprintf "%.17g" sim_time
        else "null")
       events pending);
  for i = 0 to n - 1 do
    if i > 0 then Buffer.add_char buf ',';
    let d = t.disp_n.(i) and c = t.comp_n.(i) and x = t.drop_n.(i) in
    let speed = cfg.Simulation.speeds.(i) in
    let busy = Float.Array.get t.work i /. speed in
    Buffer.add_string buf
      (Printf.sprintf
         "{\"computer\":%d,\"speed\":%g,\"rate\":%g,\"queue_depth\":%d,\"dispatched\":%d,\"completed\":%d,\"dropped\":%d,\"busy_seconds\":"
         i speed t.rate.(i) (d - c - x) d c x);
    json_num buf busy;
    Buffer.add_string buf ",\"utilization\":";
    json_num buf (if sim_time > 0.0 then busy /. sim_time else 0.0);
    Buffer.add_string buf ",\"down_seconds\":";
    json_num buf t.down_seconds.(i);
    Buffer.add_char buf '}'
  done;
  Buffer.add_string buf "],\"journal\":";
  (match t.journal with
  | None -> Buffer.add_string buf "null"
  | Some j ->
    Buffer.add_string buf
      (Printf.sprintf "{\"records\":%d,\"capacity\":%d,\"stride\":%d}"
         (Journal.length j) (Journal.capacity j) (Journal.stride j)));
  Buffer.add_char buf '}';
  Buffer.contents buf

let prometheus_content_type = "text/plain; version=0.0.4; charset=utf-8"

let metrics_exposition t =
  sync_counters t;
  Registry.to_prometheus t.registry

let serve ?addr t ~port =
  Http.serve ?addr ~port (fun path ->
      match path with
      | "/metrics" ->
        Some
          {
            Http.status = 200;
            content_type = prometheus_content_type;
            body = metrics_exposition t;
          }
      | "/healthz" -> Some (Http.text "ok\n")
      | "/state" -> Some (Http.json (state_json t))
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Journal persistence                                                 *)

let f17 = Printf.sprintf "%.17g"

let write_journal ?horizon t (result : Simulation.result) path =
  match t.journal with
  | None -> ()
  | Some j ->
    let cfg = t.config in
    let speeds = cfg.Simulation.speeds in
    (* As in [finalize]: a drained daemon run ends at its final virtual
       time, not at the configured cap, and the cross-validator derives
       utilizations from the window this meta line declares. *)
    let horizon =
      match horizon with Some h -> h | None -> cfg.Simulation.horizon
    in
    let meta =
      [
        ("scheduler", result.Simulation.scheduler_name);
        ( "speeds",
          String.concat ","
            (Array.to_list (Array.map (Printf.sprintf "%g") speeds)) );
        ("horizon", f17 horizon);
        ("warmup", f17 cfg.Simulation.warmup);
        ("seed", Int64.to_string cfg.Simulation.seed);
        ("replication", string_of_int cfg.Simulation.replication);
      ]
    in
    let m = result.Simulation.metrics in
    let per_computer =
      List.concat
        (List.init (Array.length speeds) (fun i ->
             let pc = result.Simulation.per_computer.(i) in
             [
               (Printf.sprintf "utilization_%d" i, f17 pc.Simulation.utilization);
               ( Printf.sprintf "dispatch_fraction_%d" i,
                 f17 result.Simulation.dispatch_fractions.(i) );
             ]))
    in
    let summary =
      [
        ("mean_response_time", f17 m.Statsched_core.Metrics.mean_response_time);
        ("mean_response_ratio", f17 m.Statsched_core.Metrics.mean_response_ratio);
        ("jobs_measured", string_of_int m.Statsched_core.Metrics.jobs);
        ("availability", f17 m.Statsched_core.Metrics.availability);
        ("lost_jobs", string_of_int m.Statsched_core.Metrics.lost_jobs);
        ("total_arrivals", string_of_int result.Simulation.total_arrivals);
        ("events_executed", string_of_int result.Simulation.events_executed);
      ]
      @ per_computer
    in
    Journal.write ~meta ~summary j path
