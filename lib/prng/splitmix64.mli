(** SplitMix64 pseudo-random number generator.

    A small, fast, splittable generator (Steele, Lea & Flood, OOPSLA 2014)
    with a 64-bit state and period 2{^64}.  Its statistical quality is good
    enough for seeding, stream splitting and light-duty simulation, and its
    one-word state makes it the natural bootstrap generator for
    {!Xoshiro256}. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator.  Distinct seeds give
    uncorrelated streams for all practical purposes. *)

val copy : t -> t
(** [copy g] is an independent snapshot of [g]'s current state: advancing
    one does not affect the other. *)

val next : t -> int64
(** [next g] advances [g] and returns 64 uniformly distributed bits. *)

val next_float : t -> float
(** [next_float g] is a uniform float in [\[0, 1)], using the top 53 bits
    of {!next}. *)

val state : t -> int64
(** [state g] exposes the current state (for checkpointing). *)

val of_state : int64 -> t
(** [of_state s] rebuilds a generator from a {!state} snapshot. *)
