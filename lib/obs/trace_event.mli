(** Chrome trace-event JSON recording.

    Produces the Trace Event Format understood by Perfetto
    ([ui.perfetto.dev]) and [chrome://tracing]: a flat list of events
    with microsecond timestamps, grouped visually by [(pid, tid)] lanes.
    Timestamps and durations are given to this module in {e simulated
    seconds}; the writer converts to microseconds, so one trace second
    equals one simulated second in the viewer.

    Recording is append-only and O(1) amortised; nothing here reads the
    clock or draws randomness. *)

type t

type arg =
  | Str of string
  | Num of float
  | Int of int

val create : unit -> t

val event_count : t -> int

val complete :
  t ->
  ?cat:string ->
  ?args:(string * arg) list ->
  name:string ->
  ts:float ->
  dur:float ->
  pid:int ->
  tid:int ->
  unit ->
  unit
(** A duration span ([ph = "X"]) from [ts] lasting [dur], both in
    simulated seconds. *)

val instant :
  t ->
  ?cat:string ->
  ?args:(string * arg) list ->
  name:string ->
  ts:float ->
  pid:int ->
  tid:int ->
  unit ->
  unit
(** A zero-duration marker ([ph = "i"], thread scope). *)

val counter :
  t -> ?cat:string -> name:string -> ts:float -> pid:int ->
  (string * float) list -> unit
(** A counter sample ([ph = "C"]); each pair becomes one series in the
    viewer's stacked counter track. *)

val process_name : t -> pid:int -> string -> unit
(** Metadata: label the [pid] lane group. *)

val thread_name : t -> pid:int -> tid:int -> string -> unit
(** Metadata: label one [tid] lane. *)

val to_string : t -> string
(** The complete JSON object ({["{\"traceEvents\": [...]}"]}) — valid
    JSON, events in recording order. *)

val write_json : t -> string -> unit
(** [write_json t path] writes {!to_string} to [path] atomically
    (temp file + rename). *)
