type t = {
  mean_response_time : float;
  mean_response_ratio : float;
  fairness : float;
  jobs : int;
  availability : float;
  goodput : float;
  lost_jobs : int;
}

let pp fmt m =
  Format.fprintf fmt "T=%.6g R=%.6g fairness=%.6g (n=%d)" m.mean_response_time
    m.mean_response_ratio m.fairness m.jobs;
  if m.availability < 1.0 || m.lost_jobs > 0 then
    Format.fprintf fmt " A=%.4f lost=%d" m.availability m.lost_jobs

let actual_fractions counts =
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then Array.make (Array.length counts) 0.0
  else Array.map (fun c -> float_of_int c /. float_of_int total) counts

let jain_index xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Metrics.jain_index: empty vector";
  let sum = ref 0.0 and sumsq = ref 0.0 in
  Array.iter
    (fun x ->
      if x < 0.0 then invalid_arg "Metrics.jain_index: negative value";
      sum := !sum +. x;
      sumsq := !sumsq +. (x *. x))
    xs;
  if !sumsq <= 0.0 then nan else !sum *. !sum /. (float_of_int n *. !sumsq)

let deviation ~expected ~counts =
  if Array.length expected <> Array.length counts then
    invalid_arg "Metrics.deviation: length mismatch";
  let actual = actual_fractions counts in
  let acc = ref 0.0 in
  Array.iteri
    (fun i a ->
      let d = a -. actual.(i) in
      acc := !acc +. (d *. d))
    expected;
  !acc
