module Rng = Statsched_prng.Rng

let sample ~a ~b g = Rng.uniform g a b

let create ~a ~b =
  if a > b then invalid_arg "Uniform_dist.create: a > b";
  Distribution.make
    ~name:(Printf.sprintf "U(%g,%g)" a b)
    ~mean:((a +. b) /. 2.0)
    ~variance:((b -. a) *. (b -. a) /. 12.0)
    (fun g -> sample ~a ~b g)
