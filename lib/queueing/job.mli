(** Jobs flowing through the simulated system.

    A job's [size] is defined exactly as in the paper (Section 2.3): its
    completion time when executed alone on an idle machine of relative
    speed 1.  On a machine of speed [s] the job therefore needs [size/s]
    seconds of dedicated service. *)

type t = {
  id : int;
  size : float;  (** service demand in speed-1 seconds; [> 0] *)
  arrival : float;  (** arrival time at the central scheduler *)
  mutable computer : int;  (** index of the computer it was dispatched to; −1 before dispatch *)
  mutable start : float;  (** first instant it received service; −1 until then *)
  mutable completion : float;  (** departure time; −1 until completed *)
}

val create : id:int -> size:float -> arrival:float -> t
(** @raise Invalid_argument if [size <= 0] or [arrival < 0]. *)

val is_completed : t -> bool

val response_time : t -> float
(** [completion − arrival].

    @raise Invalid_argument if the job has not completed. *)

val response_ratio : t -> float
(** Response time divided by size — the paper's per-job slowdown metric.

    @raise Invalid_argument if the job has not completed. *)

val pp : Format.formatter -> t -> unit
