(** Self-contained Markdown reproduction report.

    Runs (or takes) the full experiment inputs and renders one Markdown
    document with every table, every figure series, the ablation
    comparisons, and the paper-claims scoreboard — an auto-generated
    counterpart of the repository's hand-written EXPERIMENTS.md, stamped
    with the scale and seed so results can be regenerated exactly. *)

val generate :
  ?scale:Config.scale -> ?seed:int64 -> inputs:Paper_claims.inputs -> unit -> string
(** Render the Markdown document from precomputed experiment inputs.
    [scale]/[seed] appear in the header for provenance only. *)

val generate_fresh :
  ?scale:Config.scale -> ?seed:int64 -> ?jobs:int -> unit -> string
(** [Paper_claims.gather] then {!generate} — the expensive all-in-one. *)

val write : path:string -> string -> unit
(** Write the document to a file. *)
