(** Precomputed allocation tables.

    A deployed scheduler re-reads its utilisation estimate far more often
    than the speed vector changes, so it can precompute Algorithm 1 on a
    utilisation grid once and answer every lookup by interpolation —
    O(n) per lookup with no square roots, and the table doubles as a
    human-readable artifact of the policy (ops teams can review exactly
    what fraction each machine gets at each load).

    Interpolating between two optimized allocations is safe: feasibility
    (non-negativity, Σ = 1) is preserved by convexity, and the loss
    relative to the exact optimum is second-order in the grid spacing —
    {!max_interpolation_error} measures it. *)

type t

val build : ?grid:int -> float array -> t
(** [build speeds] precomputes Algorithm 1 on [grid] (default 99) evenly
    spaced utilisations 1/(grid+1) … grid/(grid+1).

    @raise Invalid_argument on an invalid speed vector or [grid < 2]. *)

val speeds : t -> float array

val grid_points : t -> float array
(** The utilisations the table was built at. *)

val lookup : t -> rho:float -> float array
(** Allocation at [rho] by linear interpolation between the two
    neighbouring grid rows; clamps to the first/last row outside the
    grid range.

    @raise Invalid_argument unless [0 < rho < 1]. *)

val max_interpolation_error : ?lo:float -> ?hi:float -> t -> samples:int -> float
(** Largest [|lookup − Allocation.optimized|]_∞ over [samples]
    deterministic low-discrepancy utilisations in [\[lo, hi\]] (default
    [\[0.01, 0.99\]]) — used in tests and for choosing the grid size.
    Note the allocation has kinks where the Theorem 2 cutoff changes, so
    the error is largest at very low utilisation; a 99-point grid keeps
    the error ≲1e-2 over [\[0.2, 0.95\]] but a finer grid (or exact
    computation) is advisable below ρ ≈ 0.1. *)

val to_report_rows : t -> at:float list -> (float * float array) list
(** Table rows (utilisation, allocation) for rendering. *)
