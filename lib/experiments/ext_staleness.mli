(** Extension experiment: how stale can dynamic load information get
    before static ORR wins?

    The paper prices Least-Load's advantage assuming near-real-time load
    updates (sub-second delays).  Real deployments often poll: this sweep
    drives Least-Load from fresh polls (1 s) to very stale ones (10⁴ s)
    on the Table 3 configuration and finds the crossover where ORR —
    which needs {e no} load information — overtakes it.  The [blind]
    variant (scheduler does not even count its own in-flight dispatches
    between polls) exhibits the classic herd pathology and collapses far
    earlier. *)

val default_poll_periods : float list
(** [1; 10; 100; 1000; 10000] seconds. *)

type t = (float * (string * Runner.point) list) list
(** Rows keyed by poll period; columns: StaleLeastLoad, blind variant,
    plus the static ORR and true Least-Load frames (constant across
    rows). *)

val run :
  ?scale:Config.scale ->
  ?seed:int64 ->
  ?jobs:int ->
  ?speeds:float array ->
  ?poll_periods:float list ->
  unit ->
  t

val to_report : t -> string
