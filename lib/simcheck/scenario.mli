(** A simulator configuration in serialisable form.

    Every simcheck component — differential oracles, metamorphic
    relations, the config fuzzer — describes the run it is about to make
    as a [Scenario.t], and every failure report prints the scenario back
    as a replayable [schedsim run] command line ({!to_run_command}), so a
    counterexample found in CI can be reproduced at the shell with no
    simcheck machinery at all.

    The string round-trips for schedulers, disciplines and size
    distributions here are the single source of truth shared with the
    [schedsim] CLI. *)

(** {1 Schedulers} *)

val scheduler_names : string list
(** CLI names, in menu order: wran, oran, wrr, orr, least-load,
    two-choices, adaptive-orr, sita, jsq-d, jiq. *)

val scheduler_of_name : ?d:int -> string -> Statsched_cluster.Scheduler.kind
(** [d] (default 2) is the sample size of [jsq-d] and [two-choices];
    ignored by every other scheduler.

    @raise Invalid_argument on a name outside {!scheduler_names} or
    [d < 1]. *)

(** {1 Disciplines} *)

val discipline_to_string : Statsched_cluster.Simulation.discipline -> string
(** ["ps"], ["fcfs"], ["srpt"] or ["rr:Q"]. *)

val discipline_of_string : string -> Statsched_cluster.Simulation.discipline option

(** {1 Size distributions} *)

type size_dist =
  | Exp
  | Bp_paper  (** the paper's BP(10, 21600, 1), mean 76.8 s — ignores [mean_size] *)
  | Weibull of float  (** shape [k > 0] *)
  | Lognormal of float  (** coefficient of variation *)
  | Erlang of int  (** stages [k >= 1] *)
  | Hyperexp of float  (** coefficient of variation [>= 1] *)
  | Det  (** deterministic *)

val size_dist_to_string : size_dist -> string
(** ["exp"], ["bp"], ["weibull:K"], ["lognormal:CV"], ["erlang:K"],
    ["hyperexp:CV"], ["det"]. *)

val size_dist_of_string : string -> size_dist option
(** Inverse of {!size_dist_to_string}; [None] on an unknown tag or an
    out-of-domain parameter. *)

val size_distribution : mean:float -> size_dist -> Statsched_dist.Distribution.t
(** Concrete distribution scaled to the requested mean ({!Bp_paper}
    keeps its own 76.8 s mean). *)

(** {1 Scenarios} *)

type faults = {
  mtbf : float;
  mttr : float;
  on_failure : Statsched_cluster.Fault.on_failure;
}

type t = {
  speeds : float array;
  rho : float;  (** target offered utilisation, in (0,1) *)
  policy : string;  (** a {!scheduler_names} entry *)
  d : int;  (** sample size for jsq-d / two-choices; ignored otherwise *)
  discipline : Statsched_cluster.Simulation.discipline;
  arrival_cv : float;  (** arrival-process CV; 1 = Poisson *)
  size : size_dist;
  mean_size : float;
  faults : faults option;
  seed : int64;
}

val v :
  ?discipline:Statsched_cluster.Simulation.discipline ->
  ?arrival_cv:float ->
  ?size:size_dist ->
  ?mean_size:float ->
  ?faults:faults ->
  ?seed:int64 ->
  ?d:int ->
  speeds:float array ->
  rho:float ->
  policy:string ->
  unit ->
  t
(** Defaults: [Ps], Poisson arrivals, Exp sizes of mean 1, no faults,
    seed 1, [d = 2] — the analytically tractable M/M baseline. *)

val workload : t -> Statsched_cluster.Workload.t

val fault_plan : t -> Statsched_cluster.Fault.plan option

val spec : t -> Statsched_experiments.Runner.spec
(** The {!Statsched_experiments.Runner} spec this scenario denotes.

    @raise Invalid_argument on an out-of-domain scenario (bad rho,
    speeds, policy name…). *)

val to_run_command :
  ?scale:Statsched_experiments.Config.scale ->
  ?horizon:float ->
  ?warmup:float ->
  t ->
  string
(** A [schedsim run] command line replaying this scenario (with
    [--sanitize] so the runtime invariant checkers watch the replay).
    [horizon]/[warmup] emit explicit [--horizon]/[--warmup] overrides —
    the fuzzer uses these so its tiny-horizon counterexamples replay
    exactly. *)

val pp : Format.formatter -> t -> unit
(** {!to_run_command} without a scale. *)
