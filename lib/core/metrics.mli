(** The paper's performance metrics (Sections 2.3 and 4.1).

    - {e mean response time}: average job completion time minus arrival time;
    - {e mean response ratio}: average of response time / job size;
    - {e fairness}: the standard deviation of the response ratio over all
      jobs — smaller is better (small jobs should not be starved by large
      ones);
    - {e workload allocation deviation} (Figure 2): Σ (α_i − α'_i)² between
      the intended fractions and the fractions actually dispatched in an
      interval. *)

type t = {
  mean_response_time : float;
  mean_response_ratio : float;
  fairness : float;  (** population std of the response ratio *)
  jobs : int;  (** number of completed jobs measured *)
  availability : float;
      (** capacity-weighted fraction of the measurement window during
          which the cluster's processing capacity was actually on line —
          [1.0] for a fault-free run *)
  goodput : float;
      (** completed jobs per unit time over the measurement window (jobs
          lost to crashes never complete, so goodput falls with them) *)
  lost_jobs : int;
      (** jobs permanently lost to computer crashes (only the [Drop]
          failure policy loses jobs; requeue/resume preserve them) *)
}

val pp : Format.formatter -> t -> unit
(** Prints the paper's three metrics; availability and lost-job counts
    are appended only when they carry information (a fault-free run
    prints exactly as before the reliability extension). *)

val deviation : expected:float array -> counts:int array -> float
(** [deviation ~expected ~counts] is Σ (α_i − c_i/Σc)².  An interval with
    no dispatched jobs ([Σc = 0]) has deviation Σ α_i² (everything
    deviates).

    @raise Invalid_argument on length mismatch. *)

val actual_fractions : int array -> float array
(** Per-computer dispatch counts normalised to fractions; all zeros if no
    jobs. *)

val jain_index : float array -> float
(** Jain's fairness index [(Σx)² / (n·Σx²)] of a non-negative vector —
    1 when perfectly equal, [1/n] when one element carries everything.
    Applied to per-computer utilisations it quantifies how strongly the
    optimized allocation {e un}balances the cluster (deliberately, per
    Section 2.2).

    @raise Invalid_argument on an empty or negative vector; returns [nan]
    for an all-zero vector. *)
