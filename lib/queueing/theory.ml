let utilization ~lambda ~mean_size ~speed = lambda *. mean_size /. speed

let guard rho value = if rho >= 1.0 then infinity else value

let mm1_fcfs_response ~lambda ~mean_size ~speed =
  let rho = utilization ~lambda ~mean_size ~speed in
  guard rho (mean_size /. speed /. (1.0 -. rho))

let mg1_fcfs_response ~lambda ~mean_size ~scv ~speed =
  let rho = utilization ~lambda ~mean_size ~speed in
  let x = mean_size /. speed in
  (* E[S^2] = x^2 (1 + scv); waiting time = lambda E[S^2] / (2(1-rho)). *)
  guard rho (x +. (lambda *. x *. x *. (1.0 +. scv) /. (2.0 *. (1.0 -. rho))))

let mg1_ps_response ~lambda ~mean_size ~speed =
  let rho = utilization ~lambda ~mean_size ~speed in
  guard rho (mean_size /. speed /. (1.0 -. rho))

let mg1_ps_mean_slowdown ~lambda ~mean_size ~speed =
  let rho = utilization ~lambda ~mean_size ~speed in
  guard rho (1.0 /. (speed *. (1.0 -. rho)))

let mm1_number_in_system ~lambda ~mean_size ~speed =
  let rho = utilization ~lambda ~mean_size ~speed in
  guard rho (rho /. (1.0 -. rho))

let mm1_breakdown_response ~lambda ~mean_size ~speed ~mtbf ~mttr =
  if mtbf <= 0.0 || mttr <= 0.0 then
    invalid_arg "Theory.mm1_breakdown_response: mtbf/mttr must be positive";
  let mu = speed /. mean_size in
  let f = 1.0 /. mtbf (* failure rate *) in
  let r = 1.0 /. mttr (* repair rate *) in
  let a = r /. (r +. f) (* steady-state availability *) in
  let rho_eff = lambda /. (mu *. a) in
  if rho_eff >= 1.0 then infinity
  else
    (* Avi-Itzhak & Naor (1963), Model A: breakdowns strike whether or
       not the server is busy, service is preempt-resume.  The three
       terms: the M/M/1 clock run at the availability-scaled rate, the
       queueing penalty of repair periods, and the residual repair time
       seen by a job arriving mid-breakdown. *)
    (1.0 /. ((mu *. a) -. lambda))
    +. (lambda *. f /. (mu *. r *. r *. (1.0 -. rho_eff)))
    +. (f /. (r *. (r +. f)))
