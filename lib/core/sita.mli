(** Size-Interval Task Assignment with Equal load (SITA-E).

    The size-aware baseline of Crovella, Harchol-Balter & Murta (the
    paper's reference [5]): partition the job-size range into contiguous
    bands and dedicate one computer to each band, choosing the cutoffs so
    that every computer carries a load share proportional to its speed.
    Unlike the paper's static policies this requires knowing each job's
    size at dispatch time — implementing it quantifies exactly what that
    extra knowledge buys (the paper's §1 points out its own schemes do
    not need it).

    Band-to-computer order is a policy choice: [`Small_to_fast] sends the
    smallest jobs to the fastest computers (best for the mean response
    {e ratio}, which weights small jobs heavily); [`Small_to_slow] is the
    classic arrangement for FCFS hosts (isolates the giant jobs on the
    fast machines). *)

type t

val build_bounded_pareto :
  Statsched_dist.Bounded_pareto.params ->
  speeds:float array ->
  small_to:[ `Fast | `Slow ] ->
  t
(** Cutoffs computed from the Bounded-Pareto closed-form partial means by
    bisection: band [i]'s expected work share equals its computer's speed
    share to within 1e-9.

    @raise Invalid_argument on invalid parameters or speeds. *)

val build_empirical :
  samples:float array -> speeds:float array -> small_to:[ `Fast | `Slow ] -> t
(** Same construction from an observed sample of job sizes (trace replay
    path): cutoffs chosen on the empirical work distribution.

    @raise Invalid_argument if [samples] is empty or contains
    non-positive sizes. *)

val select : t -> size:float -> int
(** Computer index for a job of the given size.  Sizes outside the band
    range clamp to the extreme bands. *)

val cutoffs : t -> float array
(** Interior cutoffs, ascending ([n − 1] values for [n] computers). *)

val assignment : t -> int array
(** [assignment t].(b) is the computer serving band [b] (bands ascend in
    size). *)

val expected_shares : t -> Statsched_dist.Bounded_pareto.params -> float array
(** Per-computer expected work share under the given size distribution —
    for verifying the equal-load property. *)
