open Test_util
module Obs = Statsched_obs
module Hdr = Obs.Hdr_histogram
module Registry = Obs.Registry
module Trace_event = Obs.Trace_event
module Clock = Obs.Clock
module Core = Statsched_core
module Cluster = Statsched_cluster
module Workload = Cluster.Workload
module Simulation = Cluster.Simulation
module Scheduler = Cluster.Scheduler
module Fault = Cluster.Fault
module Telemetry = Cluster.Telemetry
module Job = Statsched_queueing.Job

(* ------------------------------------------------------------------ *)
(* HDR histogram                                                       *)

let hdr_basic () =
  let h = Hdr.create ~sub_count:2 ~lo:1.0 ~hi:16.0 () in
  Alcotest.(check int) "8 bins (4 octaves x 2)" 8 (Hdr.bin_count h);
  Hdr.add h 1.2;
  Hdr.add h 3.0;
  Hdr.add h 0.5;
  (* underflow *)
  Hdr.add h 100.0;
  (* overflow *)
  Alcotest.(check int) "count includes out-of-range" 4 (Hdr.count h);
  Alcotest.(check int) "underflow" 1 (Hdr.underflow h);
  Alcotest.(check int) "overflow" 1 (Hdr.overflow h);
  check_float ~eps:1e-12 "sum" 104.7 (Hdr.sum h);
  check_float ~eps:1e-12 "mean" (104.7 /. 4.0) (Hdr.mean h);
  check_float "min" 0.5 (Hdr.min_value h);
  check_float "max" 100.0 (Hdr.max_value h);
  (* 1.2 lands in [1, 1.5); 3.0 in [3, 4). *)
  let lo0, hi0 = Hdr.bin_range h 0 in
  check_float "bin 0 lower" 1.0 lo0;
  check_float "bin 0 upper" 1.5 hi0;
  Alcotest.(check int) "1.2 counted in bin 0" 1 (Hdr.bin_value h 0);
  (match Hdr.bin_index h 3.0 with
  | Some i ->
    let l, u = Hdr.bin_range h i in
    Alcotest.(check bool) "3.0's bin contains it" true (l <= 3.0 && 3.0 < u)
  | None -> Alcotest.fail "3.0 is in range");
  Alcotest.(check bool) "out-of-range has no bin" true (Hdr.bin_index h 100.0 = None)

let hdr_empty_and_validation () =
  let h = Hdr.create ~lo:1.0 ~hi:8.0 () in
  Alcotest.(check bool) "empty mean is nan" true (Float.is_nan (Hdr.mean h));
  Alcotest.(check bool) "empty quantile is nan" true (Float.is_nan (Hdr.quantile h 0.5));
  Alcotest.check_raises "lo <= 0" (Invalid_argument "Hdr_histogram.create: lo <= 0")
    (fun () -> ignore (Hdr.create ~lo:0.0 ~hi:1.0 ()));
  Alcotest.check_raises "hi <= lo" (Invalid_argument "Hdr_histogram.create: hi <= lo")
    (fun () -> ignore (Hdr.create ~lo:2.0 ~hi:2.0 ()));
  Alcotest.check_raises "NaN observation"
    (Invalid_argument "Hdr_histogram.add: NaN observation") (fun () -> Hdr.add h nan);
  Alcotest.check_raises "q outside (0,1)"
    (Invalid_argument "Hdr_histogram.quantile: q outside (0,1)") (fun () ->
      ignore (Hdr.quantile h 1.0))

(* Relative bucket resolution: every in-range value must land in a bin
   whose width is at most value/sub_count * 2 (log-linear guarantee). *)
let hdr_resolution () =
  let sub_count = 32 in
  let h = Hdr.create ~sub_count ~lo:1e-3 ~hi:1e7 () in
  let g = rng () in
  for _ = 1 to 1000 do
    let x = 1e-3 *. exp (Statsched_prng.Rng.float g *. log 1e10) in
    let x = min x 9.9e6 in
    match Hdr.bin_index h x with
    | None -> Alcotest.fail (Printf.sprintf "%g should be in range" x)
    | Some i ->
      let l, u = Hdr.bin_range h i in
      Alcotest.(check bool)
        (Printf.sprintf "%g in its bin [%g, %g)" x l u)
        true
        (l <= x && x < u);
      Alcotest.(check bool)
        (Printf.sprintf "bin width %g fine enough at %g" (u -. l) x)
        true
        (u -. l <= 2.0 *. x /. float_of_int sub_count)
  done

(* Acceptance check: p99 of 1e5 exponential samples agrees with the exact
   empirical p99 to within one bucket width. *)
let hdr_quantile_exponential () =
  let n = 100_000 in
  let g = rng ~seed:11L () in
  let h = Hdr.create ~lo:1e-3 ~hi:1e3 () in
  let samples = Array.init n (fun _ -> Statsched_dist.Exponential.sample ~rate:1.0 g) in
  Array.iter (Hdr.add h) samples;
  (* Exp(1) puts ~n/1000 samples below lo = 1e-3; none above 1e3. *)
  Alcotest.(check int) "no overflow" 0 (Hdr.overflow h);
  Alcotest.(check bool) "underflow stays in the far-left tail" true
    (Hdr.underflow h < n / 500);
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  List.iter
    (fun q ->
      let exact =
        sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1))
      in
      let est = Hdr.quantile h q in
      let width =
        match Hdr.bin_index h exact with
        | Some i ->
          let l, u = Hdr.bin_range h i in
          u -. l
        | None -> Alcotest.fail "exact quantile outside histogram range"
      in
      Alcotest.(check bool)
        (Printf.sprintf "q=%.3f: |%.5g - %.5g| <= bucket width %.5g" q est exact
           width)
        true
        (abs_float (est -. exact) <= width))
    [ 0.5; 0.9; 0.99; 0.999 ]

let hdr_merge () =
  let layout () = Hdr.create ~sub_count:8 ~lo:0.01 ~hi:100.0 () in
  let a = layout () and b = layout () and both = layout () in
  let g = rng ~seed:5L () in
  for k = 1 to 2000 do
    let x = Statsched_dist.Exponential.sample ~rate:0.5 g in
    Hdr.add (if k mod 2 = 0 then a else b) x;
    Hdr.add both x
  done;
  Hdr.merge ~into:a b;
  Alcotest.(check int) "merged count" (Hdr.count both) (Hdr.count a);
  Alcotest.(check int) "merged underflow" (Hdr.underflow both) (Hdr.underflow a);
  Alcotest.(check int) "merged overflow" (Hdr.overflow both) (Hdr.overflow a);
  check_float ~eps:1e-9 "merged sum" (Hdr.sum both) (Hdr.sum a);
  check_float ~eps:0.0 "merged min" (Hdr.min_value both) (Hdr.min_value a);
  check_float ~eps:0.0 "merged max" (Hdr.max_value both) (Hdr.max_value a);
  for i = 0 to Hdr.bin_count both - 1 do
    Alcotest.(check int)
      (Printf.sprintf "bin %d identical" i)
      (Hdr.bin_value both i) (Hdr.bin_value a i)
  done;
  List.iter
    (fun q -> check_float ~eps:0.0 "merged quantile" (Hdr.quantile both q) (Hdr.quantile a q))
    [ 0.5; 0.9; 0.99 ];
  Alcotest.check_raises "layout mismatch"
    (Invalid_argument "Hdr_histogram.merge: layouts differ") (fun () ->
      Hdr.merge ~into:a (Hdr.create ~lo:1.0 ~hi:2.0 ()))

(* ------------------------------------------------------------------ *)
(* Registry + Prometheus exposition                                    *)

let registry_basic () =
  let r = Registry.create () in
  let c = Registry.counter r ~labels:[ ("computer", "0") ] "jobs_total" in
  Registry.inc c;
  Registry.inc_by c 2.0;
  check_float "counter value" 3.0 (Registry.counter_value c);
  let c' = Registry.counter r ~labels:[ ("computer", "0") ] "jobs_total" in
  Registry.inc c';
  check_float "same handle on re-registration" 4.0 (Registry.counter_value c);
  let g = Registry.gauge r "temperature" in
  Registry.set g 1.5;
  check_float "gauge value" 1.5 (Registry.gauge_value g);
  Alcotest.(check int) "two metrics" 2 (Registry.metric_count r);
  Alcotest.(check bool) "negative increment rejected" true
    (match Registry.inc_by c (-1.0) with
    | exception Invalid_argument _ -> true
    | () -> false);
  Alcotest.(check bool) "kind conflict rejected" true
    (match Registry.gauge r ~labels:[ ("computer", "0") ] "jobs_total" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "invalid metric name rejected" true
    (match Registry.counter r "bad name" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "invalid label name rejected" true
    (match Registry.counter r ~labels:[ ("le", "1"); ("0bad", "x") ] "ok_total" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let registry_prometheus_golden () =
  let r = Registry.create () in
  let c = Registry.counter r ~help:"Total frobs" ~labels:[ ("computer", "0") ] "frobs_total" in
  Registry.inc c;
  Registry.inc_by c 2.0;
  let g = Registry.gauge r "temp" in
  Registry.set g 1.5;
  let h = Registry.histogram r ~lo:1.0 ~hi:16.0 ~sub_count:2 "lat" in
  Hdr.add h 1.2;
  Hdr.add h 3.0;
  Hdr.add h 100.0;
  let expected =
    "# HELP frobs_total Total frobs\n\
     # TYPE frobs_total counter\n\
     frobs_total{computer=\"0\"} 3\n\
     # TYPE temp gauge\n\
     temp 1.5\n\
     # TYPE lat histogram\n\
     lat_bucket{le=\"1.5\"} 1\n\
     lat_bucket{le=\"4\"} 2\n\
     lat_bucket{le=\"+Inf\"} 3\n\
     lat_sum 104.2\n\
     lat_count 3\n"
  in
  Alcotest.(check string) "exposition text" expected (Registry.to_prometheus r)

let registry_family_grouping () =
  let r = Registry.create () in
  let c0 = Registry.counter r ~help:"per computer" ~labels:[ ("computer", "0") ] "x_total" in
  let mid = Registry.gauge r "y" in
  let c1 = Registry.counter r ~labels:[ ("computer", "1") ] "x_total" in
  Registry.inc c0;
  Registry.inc_by c1 5.0;
  Registry.set mid 2.0;
  let expected =
    "# HELP x_total per computer\n\
     # TYPE x_total counter\n\
     x_total{computer=\"0\"} 1\n\
     x_total{computer=\"1\"} 5\n\
     # TYPE y gauge\n\
     y 2\n"
  in
  Alcotest.(check string) "family members grouped under one TYPE" expected
    (Registry.to_prometheus r)

let registry_label_escaping () =
  let r = Registry.create () in
  let g = Registry.gauge r ~labels:[ ("path", "a\"b\\c\nd") ] "esc" in
  Registry.set g 1.0;
  Alcotest.(check string) "escaped label value"
    "# TYPE esc gauge\nesc{path=\"a\\\"b\\\\c\\nd\"} 1\n" (Registry.to_prometheus r)

(* ------------------------------------------------------------------ *)
(* Chrome trace events                                                 *)

let trace_event_golden () =
  let tr = Trace_event.create () in
  Trace_event.process_name tr ~pid:0 "jobs";
  Trace_event.complete tr ~cat:"job" ~name:"job" ~ts:1.0 ~dur:0.5 ~pid:0 ~tid:2
    ~args:[ ("id", Trace_event.Int 7); ("size", Trace_event.Num 2.5) ]
    ();
  Trace_event.instant tr ~name:"drop" ~ts:2.0 ~pid:1 ~tid:0 ();
  Trace_event.counter tr ~name:"queue" ~ts:3.0 ~pid:1 [ ("c0", 4.0) ];
  Alcotest.(check int) "event count" 4 (Trace_event.event_count tr);
  let expected =
    "{\"traceEvents\":[\
     {\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":0,\"args\":{\"name\":\"jobs\"}},\n\
     {\"name\":\"job\",\"cat\":\"job\",\"ph\":\"X\",\"ts\":1000000,\"dur\":500000,\"pid\":0,\"tid\":2,\"args\":{\"id\":7,\"size\":2.5}},\n\
     {\"name\":\"drop\",\"ph\":\"i\",\"ts\":2000000,\"pid\":1,\"tid\":0,\"s\":\"t\"},\n\
     {\"name\":\"queue\",\"ph\":\"C\",\"ts\":3000000,\"pid\":1,\"args\":{\"c0\":4}}\
     ],\"displayTimeUnit\":\"ms\"}\n"
  in
  Alcotest.(check string) "trace JSON" expected (Trace_event.to_string tr)

let trace_event_escaping () =
  let tr = Trace_event.create () in
  Trace_event.instant tr ~name:"a\"b\n" ~ts:0.0 ~pid:0 ~tid:0 ();
  let s = Trace_event.to_string tr in
  Alcotest.(check bool) "quotes and newlines escaped" true
    (String.length s > 0
    && String.index_opt s '\n' <> None
    &&
    let needle = "\"a\\\"b\\n\"" in
    let rec find i =
      if i + String.length needle > String.length s then false
      else if String.sub s i (String.length needle) = needle then true
      else find (i + 1)
    in
    find 0)

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)

let clock_monotone () =
  let t1 = Clock.now () in
  let t2 = Clock.now () in
  Alcotest.(check bool) "now is non-decreasing" true (t2 >= t1);
  Alcotest.(check bool) "elapsed is non-negative" true (Clock.elapsed ~since:t1 >= 0.0);
  Alcotest.(check bool) "elapsed clamps future origins" true
    (Clock.elapsed ~since:(t2 +. 1e9) = 0.0)

(* ------------------------------------------------------------------ *)
(* Telemetry never perturbs a run                                      *)

type observed = {
  result : Simulation.result;
  completion_order : int list;
}

let run_combo ?faults ~scheduler ~telemetry () =
  let speeds = Core.Speeds.table3 in
  let workload = Workload.paper_default ~rho:0.7 ~speeds in
  let cfg =
    Simulation.default_config ?faults ~horizon:40_000.0 ~warmup:10_000.0 ~speeds
      ~workload ~scheduler ()
  in
  let order = ref [] in
  let record job = order := job.Job.id :: !order in
  let result =
    match telemetry with
    | false -> Simulation.run ~on_completion:record cfg
    | true ->
      let t = Telemetry.create ~trace:true cfg in
      let r =
        Simulation.run
          ~on_dispatch:(Telemetry.on_dispatch t)
          ~on_completion:(fun job ->
            Telemetry.on_completion t job;
            record job)
          ~on_drop:(Telemetry.on_drop t)
          ~on_rate_change:(Telemetry.on_rate_change t)
          cfg
      in
      Telemetry.finalize t r;
      Alcotest.(check bool) "telemetry collected metrics" true
        (Telemetry.metric_count t > 0);
      Alcotest.(check bool) "telemetry collected trace events" true
        (Telemetry.trace_event_count t > 0);
      r
  in
  { result; completion_order = List.rev !order }

(* Acceptance criterion: a run with full telemetry (metrics + trace) is
   bit-identical to a bare run under the same seed, across static,
   dynamic, adaptive and faulty configurations. *)
let telemetry_bit_identity () =
  List.iter
    (fun (name, faults, scheduler) ->
      let plain = run_combo ?faults ~scheduler ~telemetry:false () in
      let instrumented = run_combo ?faults ~scheduler ~telemetry:true () in
      check_float ~eps:0.0
        (name ^ ": mean response time bit-identical")
        plain.result.Simulation.metrics.Core.Metrics.mean_response_time
        instrumented.result.Simulation.metrics.Core.Metrics.mean_response_time;
      check_float ~eps:0.0
        (name ^ ": mean response ratio bit-identical")
        plain.result.Simulation.metrics.Core.Metrics.mean_response_ratio
        instrumented.result.Simulation.metrics.Core.Metrics.mean_response_ratio;
      check_float ~eps:0.0
        (name ^ ": fairness bit-identical")
        plain.result.Simulation.metrics.Core.Metrics.fairness
        instrumented.result.Simulation.metrics.Core.Metrics.fairness;
      Alcotest.(check int)
        (name ^ ": same events executed")
        plain.result.Simulation.events_executed
        instrumented.result.Simulation.events_executed;
      Alcotest.(check int)
        (name ^ ": same arrivals")
        plain.result.Simulation.total_arrivals
        instrumented.result.Simulation.total_arrivals;
      Alcotest.(check int)
        (name ^ ": same heap high-water")
        plain.result.Simulation.heap_high_water
        instrumented.result.Simulation.heap_high_water;
      check_array ~eps:0.0
        (name ^ ": dispatch fractions bit-identical")
        plain.result.Simulation.dispatch_fractions
        instrumented.result.Simulation.dispatch_fractions;
      Alcotest.(check (list int))
        (name ^ ": completion order identical")
        plain.completion_order instrumented.completion_order)
    [
      ("ORR", None, Scheduler.static Core.Policy.orr);
      ("LeastLoad", None, Scheduler.least_load_paper);
      ("AdaptiveORR", None, Scheduler.adaptive_orr ());
      ( "ORR+drop-faults",
        Some (Fault.exponential ~on_failure:Fault.Drop ~mtbf:2000.0 ~mttr:50.0 ()),
        Scheduler.static Core.Policy.orr );
      ( "LeastLoad+resume-faults",
        Some (Fault.exponential ~on_failure:Fault.Resume ~mtbf:2000.0 ~mttr:50.0 ()),
        Scheduler.least_load_paper );
    ]

(* The progress heartbeat adds its own periodic events but must not
   change metrics or completion order. *)
let progress_preserves_metrics () =
  let speeds = Core.Speeds.table3 in
  let workload = Workload.paper_default ~rho:0.7 ~speeds in
  let cfg =
    Simulation.default_config ~horizon:40_000.0 ~warmup:10_000.0 ~speeds ~workload
      ~scheduler:(Scheduler.static Core.Policy.orr) ()
  in
  let order = ref [] in
  let plain = Simulation.run ~on_completion:(fun j -> order := j.Job.id :: !order) cfg in
  let plain_order = !order in
  order := [];
  let ticks = ref 0 in
  let with_progress =
    Simulation.run
      ~on_completion:(fun j -> order := j.Job.id :: !order)
      ~on_progress:
        ( 5_000.0,
          fun (p : Simulation.progress) ->
            incr ticks;
            Alcotest.(check bool) "progress time within horizon" true
              (p.Simulation.sim_time <= 40_000.0);
            Alcotest.(check bool) "monotone counters" true
              (p.Simulation.arrivals >= p.Simulation.completions
              && p.Simulation.measured <= p.Simulation.completions) )
      cfg
  in
  Alcotest.(check int) "heartbeat fired 8 times" 8 !ticks;
  check_float ~eps:0.0 "mean response time unchanged"
    plain.Simulation.metrics.Core.Metrics.mean_response_time
    with_progress.Simulation.metrics.Core.Metrics.mean_response_time;
  Alcotest.(check int) "same arrivals" plain.Simulation.total_arrivals
    with_progress.Simulation.total_arrivals;
  Alcotest.(check (list int)) "completion order unchanged" plain_order !order;
  Alcotest.(check bool) "heartbeat events counted" true
    (with_progress.Simulation.events_executed > plain.Simulation.events_executed)

let telemetry_fault_accounting () =
  let speeds = [| 1.0; 2.0 |] in
  let workload = Workload.paper_default ~rho:0.5 ~speeds in
  let cfg =
    Simulation.default_config
      ~faults:(Fault.exponential ~on_failure:Fault.Drop ~mtbf:1500.0 ~mttr:100.0 ())
      ~horizon:30_000.0 ~warmup:5_000.0 ~speeds ~workload
      ~scheduler:(Scheduler.static Core.Policy.wrr) ()
  in
  let t = Telemetry.create ~trace:true cfg in
  let result =
    Simulation.run
      ~on_dispatch:(Telemetry.on_dispatch t)
      ~on_completion:(Telemetry.on_completion t)
      ~on_drop:(Telemetry.on_drop t)
      ~on_rate_change:(Telemetry.on_rate_change t)
      cfg
  in
  Telemetry.finalize t result;
  let text = Registry.to_prometheus (Telemetry.registry t) in
  List.iter
    (fun needle ->
      let rec find i =
        if i + String.length needle > String.length text then false
        else if String.sub text i (String.length needle) = needle then true
        else find (i + 1)
      in
      Alcotest.(check bool) (needle ^ " exported") true (find 0))
    [
      "# TYPE statsched_jobs_dispatched_total counter";
      "# TYPE statsched_response_time_seconds histogram";
      "statsched_response_time_seconds_bucket";
      "# TYPE statsched_fault_rate_changes_total counter";
      "statsched_computer_down_seconds{computer=\"0\"}";
      "statsched_availability";
      "statsched_des_events_per_second";
      "statsched_des_heap_high_water";
      "statsched_dispatch_drift{computer=\"1\"}";
    ];
  (* Down spans were recorded and the trace is non-trivial. *)
  Alcotest.(check bool) "rate changes observed" true
    (match result.Simulation.fault_summary with
    | Some s -> s.Fault.failures > 0
    | None -> false);
  Alcotest.(check bool) "trace has job + fault events" true
    (Telemetry.trace_event_count t > 100)

let suite =
  [
    test "hdr: indexing, counts and ranges" hdr_basic;
    test "hdr: empty stats and validation" hdr_empty_and_validation;
    test "hdr: log-linear resolution bound" hdr_resolution;
    slow_test "hdr: quantiles vs exact on 1e5 exponential samples"
      hdr_quantile_exponential;
    test "hdr: merge is exact" hdr_merge;
    test "registry: handles, dedup and validation" registry_basic;
    test "registry: prometheus golden output" registry_prometheus_golden;
    test "registry: families share one TYPE header" registry_family_grouping;
    test "registry: label values escaped" registry_label_escaping;
    test "trace: chrome trace-event golden JSON" trace_event_golden;
    test "trace: string escaping" trace_event_escaping;
    test "clock: monotone and non-negative" clock_monotone;
    slow_test "telemetry: instrumented runs bit-identical" telemetry_bit_identity;
    slow_test "telemetry: progress heartbeat preserves the run"
      progress_preserves_metrics;
    slow_test "telemetry: fault accounting exported" telemetry_fault_accounting;
  ]
