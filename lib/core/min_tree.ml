(* Flat tournament (segment) tree over a fixed number of float leaves.

   Internal nodes hold exact copies of the minimum leaf value of their
   subtree — no arithmetic is performed on the values, so equality
   against the root is an exact test for "this subtree contains a
   minimal leaf".  That property is what lets [next_tied] enumerate the
   tied-minimum leaves in ascending order without any per-query
   allocation: the descent only enters subtrees whose stored minimum is
   [Float.equal] to the target.

   Each node additionally stores how many leaves of its subtree are
   [Float.equal] to its minimum, so the number of tied minima is O(1)
   to read ([min_count]) and the k-th tied leaf is a single O(log n)
   counted descent ([nth_tied]) — the uniform tie-break of a
   least-load dispatcher costs one RNG draw plus one descent instead of
   one draw per tied computer.

   Layout: one unboxed floatarray (values) and one int array (tie
   counts) of [2*cap] slots where [cap] is the smallest power of two
   >= n.  Node 1 is the root, node [i] has children [2i] and [2i+1],
   leaf [j] lives at [cap + j].  Padding leaves (indices >= n) stay at
   [+infinity] forever, so they never join a finite minimum's count. *)

type t = { tree : Float.Array.t; counts : int array; cap : int; n : int }

let create n =
  if n < 1 then invalid_arg "Min_tree.create: n < 1";
  let cap = ref 1 in
  while !cap < n do
    cap := !cap * 2
  done;
  let cap = !cap in
  let counts = Array.make (2 * cap) 1 in
  (* All leaves start equal (+inf), so an internal node's tie count is
     its subtree size. *)
  for i = cap - 1 downto 1 do
    counts.(i) <- counts.(2 * i) + counts.((2 * i) + 1)
  done;
  { tree = Float.Array.make (2 * cap) infinity; counts; cap; n }

let length t = t.n

let[@inline] get t i = Float.Array.unsafe_get t.tree (t.cap + i)

let[@inline] min_value t = Float.Array.unsafe_get t.tree 1

let[@inline] min_count t = Array.unsafe_get t.counts 1

(* Recompute node [p] from its children: exact copy of the smaller
   child's value; tie counts add when both sides share the minimum.
   Values are loads or +infinity, never NaN, so the three-way
   comparison is exhaustive. *)
let[@inline] pull_up t p =
  let l = Float.Array.unsafe_get t.tree (2 * p) in
  let r = Float.Array.unsafe_get t.tree ((2 * p) + 1) in
  let cl = Array.unsafe_get t.counts (2 * p) in
  let cr = Array.unsafe_get t.counts ((2 * p) + 1) in
  if l < r then begin
    Float.Array.unsafe_set t.tree p l;
    Array.unsafe_set t.counts p cl
  end
  else if r < l then begin
    Float.Array.unsafe_set t.tree p r;
    Array.unsafe_set t.counts p cr
  end
  else begin
    Float.Array.unsafe_set t.tree p l;
    Array.unsafe_set t.counts p (cl + cr)
  end

(* The spine walk takes no float arguments: in dev builds (-opaque, no
   cross-module inlining) a float parameter crossing a module boundary
   is boxed at every call — an allocation on every dispatch decision.
   Hot callers write the leaf into {!leaves} themselves (a primitive
   floatarray store) and call this; [set] packages the two for
   everyone else. *)
let[@schedsim.hot] refresh t i =
  let j = ref ((t.cap + i) lsr 1) in
  while !j >= 1 do
    pull_up t !j;
    j := !j lsr 1
  done

let leaves t = t.tree
let[@inline] leaf_pos t i = t.cap + i

(* O(log n): overwrite the leaf, then recompute the spine. *)
let[@inline] [@schedsim.hot] set t i v =
  Float.Array.unsafe_set t.tree (t.cap + i) v;
  refresh t i

let fill t v =
  for i = 0 to t.n - 1 do
    Float.Array.unsafe_set t.tree (t.cap + i) v
  done;
  for i = t.cap - 1 downto 1 do
    pull_up t i
  done

(* Smallest leaf index >= [from] whose value is [Float.equal] to [v]
   (callers pass the root minimum), or -1.  Classic segment-tree
   first-match descent: prune subtrees entirely below [from] and
   subtrees whose minimum differs from [v]; left child first keeps the
   enumeration ascending.  Recursion depth is log n and nothing
   allocates. *)
let rec find_from t v node lo hi from =
  if hi <= from then -1
  else if not (Float.equal (Float.Array.unsafe_get t.tree node) v) then -1
  else if hi - lo = 1 then lo
  else begin
    let mid = (lo + hi) lsr 1 in
    let left = find_from t v (2 * node) lo mid from in
    if left >= 0 then left else find_from t v ((2 * node) + 1) mid hi from
  end

let next_tied t ~from =
  if from >= t.n then -1
  else begin
    let m = min_value t in
    let i = find_from t m 1 0 t.cap from in
    if i >= t.n then -1 else i
  end

let first_tied t = next_tied t ~from:0

(* Counted descent to the k-th (0-indexed, ascending) tied-minimum
   leaf: at each node, the left subtree contributes its tie count iff
   its minimum equals the global one.  O(log n), allocation-free. *)
let[@schedsim.hot] nth_tied t ~k =
  if k < 0 || k >= min_count t then
    invalid_arg "Min_tree.nth_tied: k out of range";
  let v = min_value t in
  let node = ref 1 in
  let k = ref k in
  let lo = ref 0 in
  let hi = ref t.cap in
  while !hi - !lo > 1 do
    let l = 2 * !node in
    let lc =
      if Float.equal (Float.Array.unsafe_get t.tree l) v then
        Array.unsafe_get t.counts l
      else 0
    in
    let mid = (!lo + !hi) lsr 1 in
    if !k < lc then begin
      node := l;
      hi := mid
    end
    else begin
      k := !k - lc;
      node := l + 1;
      lo := mid
    end
  done;
  !lo
