open Test_util
module Core = Statsched_core
module Cluster = Statsched_cluster
module E = Statsched_experiments

let adaptive_name () =
  Alcotest.(check string) "name" "AdaptiveORR(T=10000)"
    (Cluster.Scheduler.name (Cluster.Scheduler.adaptive_orr ()));
  Alcotest.(check string) "custom period" "AdaptiveORR(T=500)"
    (Cluster.Scheduler.name (Cluster.Scheduler.adaptive_orr ~period:500.0 ()))

let adaptive_validation () =
  Alcotest.check_raises "period <= 0"
    (Invalid_argument "Scheduler.adaptive_orr: period <= 0") (fun () ->
      ignore (Cluster.Scheduler.adaptive_orr ~period:0.0 ()));
  Alcotest.check_raises "initial rho"
    (Invalid_argument "Scheduler.adaptive_orr: initial_rho outside (0,1)") (fun () ->
      ignore (Cluster.Scheduler.adaptive_orr ~initial_rho:1.0 ()));
  Alcotest.check_raises "safety"
    (Invalid_argument "Scheduler.adaptive_orr: safety <= 0") (fun () ->
      ignore (Cluster.Scheduler.adaptive_orr ~safety:0.0 ()))

(* The adaptive scheduler must converge: its final intended fractions
   should approach the oracle's optimized allocation once enough jobs
   have been observed. *)
let adaptive_converges_to_oracle_allocation () =
  let speeds = [| 1.0; 1.0; 8.0 |] in
  let rho = 0.6 in
  let workload = Cluster.Workload.poisson_exponential ~rho ~mean_size:1.0 ~speeds in
  let cfg =
    Cluster.Simulation.default_config ~horizon:100_000.0 ~speeds ~workload
      ~scheduler:(Cluster.Scheduler.adaptive_orr ~period:1_000.0 ~initial_rho:0.3 ())
      ()
  in
  let r = Cluster.Simulation.run cfg in
  let oracle = Core.Allocation.optimized ~rho speeds in
  match r.Cluster.Simulation.intended_fractions with
  | None -> Alcotest.fail "adaptive must expose final fractions"
  | Some final ->
    Array.iteri
      (fun i o ->
        (* within a few percent: the estimator sees ~60k jobs and the
           safety factor (+5%) shifts the allocation slightly *)
        check_float ~eps:0.05 (Printf.sprintf "alpha[%d] near oracle" i) o final.(i))
      oracle

let adaptive_performance_near_oracle () =
  let speeds = [| 1.0; 1.0; 8.0 |] in
  let rho = 0.5 in
  let workload = Cluster.Workload.poisson_exponential ~rho ~mean_size:1.0 ~speeds in
  let run scheduler =
    let cfg =
      Cluster.Simulation.default_config ~horizon:150_000.0 ~speeds ~workload ~scheduler
        ()
    in
    (Cluster.Simulation.run cfg).Cluster.Simulation.metrics
      .Core.Metrics.mean_response_ratio
  in
  let oracle = run (Cluster.Scheduler.static Core.Policy.orr) in
  let adaptive = run (Cluster.Scheduler.adaptive_orr ~period:2_000.0 ()) in
  let weighted = run (Cluster.Scheduler.static Core.Policy.wrr) in
  Alcotest.(check bool)
    (Printf.sprintf "adaptive %.3f within 15%% of oracle %.3f" adaptive oracle)
    true
    (adaptive < oracle *. 1.15);
  Alcotest.(check bool)
    (Printf.sprintf "adaptive %.3f clearly beats WRR %.3f" adaptive weighted)
    true
    (adaptive < weighted)

let adaptive_survives_bad_initial_guess () =
  (* Starting from a wildly wrong initial rho must not destabilise the
     run: the estimator corrects it after the first periods. *)
  let speeds = [| 1.0; 10.0 |] in
  let rho = 0.8 in
  let workload = Cluster.Workload.poisson_exponential ~rho ~mean_size:1.0 ~speeds in
  let run initial_rho =
    let cfg =
      Cluster.Simulation.default_config ~horizon:100_000.0 ~speeds ~workload
        ~scheduler:
          (Cluster.Scheduler.adaptive_orr ~period:1_000.0 ~initial_rho ())
        ()
    in
    (Cluster.Simulation.run cfg).Cluster.Simulation.metrics
      .Core.Metrics.mean_response_ratio
  in
  let from_low = run 0.05 in
  let from_high = run 0.95 in
  check_close ~rel:0.15 "initial guess washes out" from_low from_high

let suite =
  [
    test "adaptive: naming" adaptive_name;
    test "adaptive: parameter validation" adaptive_validation;
    slow_test "adaptive: allocation converges to oracle"
      adaptive_converges_to_oracle_allocation;
    slow_test "adaptive: performance near oracle, beats WRR"
      adaptive_performance_near_oracle;
    slow_test "adaptive: initial guess washes out" adaptive_survives_bad_initial_guess;
  ]

(* ------------------------------------------------------------------ *)
(* Stale least-load                                                    *)

let stale_name_and_validation () =
  Alcotest.(check string) "name" "StaleLeastLoad(T=100)"
    (Cluster.Scheduler.name (Cluster.Scheduler.stale_least_load ~poll_period:100.0 ()));
  Alcotest.(check string) "blind name" "StaleLeastLoad(T=100,blind)"
    (Cluster.Scheduler.name
       (Cluster.Scheduler.stale_least_load ~count_in_flight:false ~poll_period:100.0 ()));
  Alcotest.check_raises "period <= 0"
    (Invalid_argument "Scheduler.stale_least_load: poll_period <= 0") (fun () ->
      ignore (Cluster.Scheduler.stale_least_load ~poll_period:0.0 ()))

let stale_fresh_polls_close_to_least_load () =
  (* With a very short poll period the stale scheduler approximates full
     least-load. *)
  let speeds = [| 1.0; 10.0 |] in
  let workload = Cluster.Workload.poisson_exponential ~rho:0.6 ~mean_size:1.0 ~speeds in
  let run scheduler =
    let cfg =
      Cluster.Simulation.default_config ~horizon:80_000.0 ~speeds ~workload ~scheduler ()
    in
    (Cluster.Simulation.run cfg).Cluster.Simulation.metrics
      .Core.Metrics.mean_response_ratio
  in
  let fresh = run (Cluster.Scheduler.stale_least_load ~poll_period:0.1 ()) in
  let full = run Cluster.Scheduler.least_load_instant in
  check_close ~rel:0.15 "fresh polls ~ instant least-load" full fresh

let stale_polls_degrade_with_period () =
  (* Longer poll periods must not help; very stale info should be clearly
     worse than fresh. *)
  let speeds = [| 1.0; 1.0; 10.0 |] in
  let workload = Cluster.Workload.poisson_exponential ~rho:0.7 ~mean_size:1.0 ~speeds in
  let run period =
    let cfg =
      Cluster.Simulation.default_config ~horizon:80_000.0 ~speeds ~workload
        ~scheduler:(Cluster.Scheduler.stale_least_load ~poll_period:period ())
        ()
    in
    (Cluster.Simulation.run cfg).Cluster.Simulation.metrics
      .Core.Metrics.mean_response_ratio
  in
  let fresh = run 1.0 in
  let stale = run 5_000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "stale %.3f worse than fresh %.3f" stale fresh)
    true (stale > fresh)

let stale_blind_herds () =
  (* Without in-flight counting, every arrival between polls herds onto
     one computer: the blind variant must be worse than the counting one
     at a long poll period. *)
  let speeds = [| 1.0; 1.0; 1.0; 1.0 |] in
  let workload = Cluster.Workload.poisson_exponential ~rho:0.7 ~mean_size:1.0 ~speeds in
  let run count_in_flight =
    let cfg =
      Cluster.Simulation.default_config ~horizon:60_000.0 ~speeds ~workload
        ~scheduler:
          (Cluster.Scheduler.stale_least_load ~count_in_flight ~poll_period:500.0 ())
        ()
    in
    (Cluster.Simulation.run cfg).Cluster.Simulation.metrics
      .Core.Metrics.mean_response_time
  in
  let counting = run true in
  let blind = run false in
  Alcotest.(check bool)
    (Printf.sprintf "blind %.2f worse than counting %.2f" blind counting)
    true (blind > counting)

let stale_suite =
  [
    test "stale: naming and validation" stale_name_and_validation;
    slow_test "stale: fresh polls approximate least-load"
      stale_fresh_polls_close_to_least_load;
    slow_test "stale: staleness degrades performance" stale_polls_degrade_with_period;
    slow_test "stale: blind variant herds" stale_blind_herds;
  ]

let suite = suite @ stale_suite

(* ------------------------------------------------------------------ *)
(* Diurnal workload                                                    *)

let diurnal_validation () =
  let speeds = [| 1.0; 2.0 |] in
  Alcotest.check_raises "amplitude >= 1"
    (Invalid_argument "Workload.diurnal: amplitude outside [0, 1)") (fun () ->
      ignore (Cluster.Workload.diurnal ~rho:0.5 ~amplitude:1.0 ~day_length:100.0 ~speeds));
  Alcotest.check_raises "saturating peak"
    (Invalid_argument "Workload.diurnal: peak load saturates the system") (fun () ->
      ignore (Cluster.Workload.diurnal ~rho:0.8 ~amplitude:0.3 ~day_length:100.0 ~speeds));
  Alcotest.check_raises "bad day length"
    (Invalid_argument "Workload.diurnal: day_length <= 0") (fun () ->
      ignore (Cluster.Workload.diurnal ~rho:0.5 ~amplitude:0.2 ~day_length:0.0 ~speeds))

let diurnal_rate_modulation () =
  let speeds = [| 1.0; 2.0 |] in
  let w = Cluster.Workload.diurnal ~rho:0.5 ~amplitude:0.4 ~day_length:100.0 ~speeds in
  let base = Cluster.Workload.arrival_rate w in
  (* peak at a quarter day, trough at three quarters *)
  check_close ~rel:1e-9 "peak rate" (base *. 1.4) (Cluster.Workload.modulated_rate w 25.0);
  check_close ~rel:1e-9 "trough rate" (base *. 0.6) (Cluster.Workload.modulated_rate w 75.0);
  check_close ~rel:1e-9 "mean rate at day boundary" base
    (Cluster.Workload.modulated_rate w 100.0);
  (* stationary workloads report the base rate at any time *)
  let s = Cluster.Workload.paper_default ~rho:0.5 ~speeds in
  check_close ~rel:1e-9 "stationary" (Cluster.Workload.arrival_rate s)
    (Cluster.Workload.modulated_rate s 12345.0)

let diurnal_load_realised () =
  (* The realised mean utilisation over whole days must match the target
     mean despite the swings. *)
  let speeds = [| 2.0; 2.0 |] in
  let rho = 0.6 in
  let day = 5_000.0 in
  let w =
    let base = Cluster.Workload.poisson_exponential ~rho ~mean_size:1.0 ~speeds in
    {
      base with
      Cluster.Workload.modulation =
        Some (fun t -> 1.0 +. (0.3 *. sin (2.0 *. Float.pi *. t /. day)));
    }
  in
  let cfg =
    Cluster.Simulation.default_config ~horizon:(day *. 20.0) ~warmup:0.0 ~speeds
      ~workload:w ~scheduler:(Cluster.Scheduler.static Core.Policy.wrr) ()
  in
  let r = Cluster.Simulation.run cfg in
  let avg_util =
    Array.fold_left (fun acc pc -> acc +. pc.Cluster.Simulation.utilization) 0.0
      r.Cluster.Simulation.per_computer
    /. 2.0
  in
  check_close ~rel:0.08 "mean utilisation preserved" rho avg_util

let diurnal_windowed_adaptive_tracks () =
  (* Under strong swings the windowed estimator should do at least as
     well as the cumulative one (which averages the day away), and both
     must beat WRR. *)
  let speeds = [| 1.0; 1.0; 8.0 |] in
  let day = 20_000.0 in
  let workload =
    Cluster.Workload.diurnal ~rho:0.55 ~amplitude:0.35 ~day_length:day ~speeds
  in
  let run scheduler =
    let cfg =
      Cluster.Simulation.default_config ~horizon:(day *. 8.0) ~warmup:day ~speeds
        ~workload ~scheduler ()
    in
    (Cluster.Simulation.run cfg).Cluster.Simulation.metrics
      .Core.Metrics.mean_response_ratio
  in
  let windowed =
    run (Cluster.Scheduler.adaptive_orr ~period:(day /. 10.0) ~windowed:true ())
  in
  let wrr = run (Cluster.Scheduler.static Core.Policy.wrr) in
  Alcotest.(check bool)
    (Printf.sprintf "windowed adaptive %.3f beats WRR %.3f" windowed wrr)
    true (windowed < wrr)

let diurnal_suite =
  [
    test "diurnal: validation" diurnal_validation;
    test "diurnal: rate modulation shape" diurnal_rate_modulation;
    slow_test "diurnal: mean load realised" diurnal_load_realised;
    slow_test "diurnal: windowed adaptive beats WRR" diurnal_windowed_adaptive_tracks;
    test "adaptive: windowed naming" (fun () ->
        Alcotest.(check string) "name" "AdaptiveORR(T=100,window)"
          (Cluster.Scheduler.name
             (Cluster.Scheduler.adaptive_orr ~period:100.0 ~windowed:true ())));
  ]

let suite = suite @ diurnal_suite
