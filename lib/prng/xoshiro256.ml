type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
}

let create seed =
  let sm = Splitmix64.create seed in
  let s0 = Splitmix64.next sm in
  let s1 = Splitmix64.next sm in
  let s2 = Splitmix64.next sm in
  let s3 = Splitmix64.next sm in
  (* An all-zero state is a fixed point; this cannot happen from SplitMix64
     output in practice, but guard anyway. *)
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then { s0 = 1L; s1; s2; s3 }
  else { s0; s1; s2; s3 }

let copy g = { s0 = g.s0; s1 = g.s1; s2 = g.s2; s3 = g.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next g =
  let result = Int64.mul (rotl (Int64.mul g.s1 5L) 7) 9L in
  let t = Int64.shift_left g.s1 17 in
  g.s2 <- Int64.logxor g.s2 g.s0;
  g.s3 <- Int64.logxor g.s3 g.s1;
  g.s1 <- Int64.logxor g.s1 g.s2;
  g.s0 <- Int64.logxor g.s0 g.s3;
  g.s2 <- Int64.logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

let two_pow_53 = 9007199254740992.0

let next_float g =
  let bits53 = Int64.shift_right_logical (next g) 11 in
  Int64.to_float bits53 /. two_pow_53

(* Jump polynomial for 2^128 steps, from the reference implementation. *)
let jump_poly = [| 0x180EC6D33CFD0ABAL; 0xD5A61266F0C9392CL; 0xA9582618E03FC9AAL; 0x39ABDC4529B1661CL |]

let jump g =
  let t0 = ref 0L and t1 = ref 0L and t2 = ref 0L and t3 = ref 0L in
  Array.iter
    (fun word ->
      for b = 0 to 63 do
        if Int64.logand word (Int64.shift_left 1L b) <> 0L then begin
          t0 := Int64.logxor !t0 g.s0;
          t1 := Int64.logxor !t1 g.s1;
          t2 := Int64.logxor !t2 g.s2;
          t3 := Int64.logxor !t3 g.s3
        end;
        ignore (next g)
      done)
    jump_poly;
  g.s0 <- !t0;
  g.s1 <- !t1;
  g.s2 <- !t2;
  g.s3 <- !t3

let substream g k =
  if k < 0 then invalid_arg "Xoshiro256.substream: negative index";
  let h = copy g in
  for _ = 1 to k do
    jump h
  done;
  h
