(** Degenerate (constant) distribution.

    Useful as a control workload: deterministic job sizes or paced arrivals
    isolate the effect of the dispatching strategy from size variability. *)

val create : float -> Distribution.t
(** [create v] always samples [v].  Requires [v >= 0]. *)
