(** Periodic queue-length probing.

    Samples every computer's run-queue length at a fixed simulated-time
    cadence, producing the load time series behind phenomena the summary
    metrics can only hint at — the herd oscillations of stale-information
    scheduling, warm-up transients, diurnal swings.  Plug {!on_tick} into
    {!Simulation.run}. *)

type t

val create : unit -> t

val on_tick : t -> time:float -> queues:int array -> unit
(** The callback for {!Simulation.run}'s [on_tick] hook. *)

val sample_count : t -> int

val times : t -> float array
(** Sample instants, in order. *)

val series : t -> int -> int array
(** [series p i] is computer [i]'s queue-length series.

    @raise Invalid_argument if no samples were taken or [i] is out of
    range. *)

val total_series : t -> int array
(** Jobs in the whole system at each sample. *)

val peak : t -> int
(** Largest single-computer queue length observed. *)

val mean_queue : t -> int -> float
(** Sample average of computer [i]'s queue length — the unweighted mean
    over the sampling instants, {e not} a time-weighted average.  With
    the fixed cadence the two coincide only in the limit of dense
    sampling; for the true time average use
    {!Simulation.per_computer.mean_jobs}. *)

val write_csv : t -> string -> unit
(** Header [time,c0,c1,…]; one line per sample. *)
