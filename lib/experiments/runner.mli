(** Replication driver: one data point = several independent runs.

    Replication [k] uses RNG substream [k] of the experiment seed, so the
    runs are independent yet the whole experiment is reproducible from a
    single seed — and common random numbers hold across schedulers
    (scheduler A and B see the same arrival/size streams in replication
    [k]), which sharpens the comparisons exactly as in the paper. *)

type spec = {
  speeds : float array;
  workload : Statsched_cluster.Workload.t;
  scheduler : Statsched_cluster.Scheduler.kind;
  discipline : Statsched_cluster.Simulation.discipline;
  faults : Statsched_cluster.Fault.plan option;
      (** fault plan injected into every replication; [None] = reliable
          cluster *)
}

val make_spec :
  ?discipline:Statsched_cluster.Simulation.discipline ->
  ?faults:Statsched_cluster.Fault.plan ->
  speeds:float array ->
  workload:Statsched_cluster.Workload.t ->
  scheduler:Statsched_cluster.Scheduler.kind ->
  unit ->
  spec

type point = {
  label : string;  (** scheduler name *)
  mean_response_time : Statsched_stats.Confidence.interval;
  mean_response_ratio : Statsched_stats.Confidence.interval;
  fairness : Statsched_stats.Confidence.interval;
  median_ratio : float;  (** replication average of the per-run P² median *)
  p99_ratio : float;  (** replication average of the per-run P² p99 *)
  response_time_histogram : Statsched_obs.Hdr_histogram.t;
      (** per-replication response-time histograms pooled with the exact
          bucket-wise merge (identical layouts across replications) *)
  response_ratio_histogram : Statsched_obs.Hdr_histogram.t;
      (** same, for the response ratio *)
  pooled_median_ratio : float;
      (** median of the pooled ratio histogram — the quantile of all
          measured jobs at once, as opposed to [median_ratio]'s average
          of per-run point estimates *)
  pooled_p99_ratio : float;  (** p99 of the pooled ratio histogram *)
  dispatch_fractions : float array;  (** averaged over replications *)
  jobs_per_rep : float;
  availability : float;
      (** replication average of the capacity-weighted availability;
          [1.0] without a fault plan *)
  lost_jobs_per_rep : float;
      (** replication average of jobs lost to crashes ([Drop] policy) *)
}

val replicate :
  ?seed:int64 ->
  ?jobs:int ->
  scale:Config.scale ->
  spec ->
  Statsched_cluster.Simulation.result list
(** Run [scale.reps] independent replications, fanned out over [jobs]
    OCaml 5 domains ({!Statsched_par.Par.map}; default [jobs] is the
    [STATSCHED_JOBS] environment variable or the recommended domain
    count; [~jobs:1] runs in the calling domain).  Each replication is
    fully self-contained — engine, servers and RNG substreams are created
    inside the call — so the result list is {e bitwise identical} for
    every [jobs] (a test asserts this across schedulers, disciplines and
    fault plans), just faster on multicore.

    @raise Invalid_argument if [jobs < 1]. *)

val replicate_parallel :
  ?seed:int64 ->
  ?domains:int ->
  scale:Config.scale ->
  spec ->
  Statsched_cluster.Simulation.result list
(** [replicate ?jobs:domains] under its historical name.

    @raise Invalid_argument if [domains < 1]. *)

val measure_parallel :
  ?seed:int64 -> ?domains:int -> scale:Config.scale -> spec -> point
(** [point_of_results (replicate_parallel ...)]. *)

val point_of_results : Statsched_cluster.Simulation.result list -> point
(** Aggregate replication results into a data point with 95 % Student-t
    confidence intervals; the per-replication HDR histograms are pooled
    with the exact bucket-wise merge.

    @raise Invalid_argument on an empty list. *)

val measure : ?seed:int64 -> ?jobs:int -> scale:Config.scale -> spec -> point
(** [point_of_results (replicate ~scale spec)]. *)

val measure_wall :
  ?seed:int64 -> ?jobs:int -> scale:Config.scale -> spec -> point * float
(** {!measure} plus the wall-clock seconds the replication batch took
    (monotonic instrumentation clock) — the macro benchmark's
    reps-per-second probe. *)

type comparison = {
  label_a : string;
  label_b : string;
  ratio_diff : Statsched_stats.Confidence.interval;
      (** per-replication paired differences of the mean response ratio
          (A − B); negative means A is better *)
  relative_improvement : float;
      (** [1 − mean_A / mean_B] over all replications *)
  significant : bool;
      (** 0 lies outside the 95 % interval of the paired differences *)
}

val compare_paired :
  ?seed:int64 ->
  scale:Config.scale ->
  a:Statsched_cluster.Scheduler.kind ->
  b:Statsched_cluster.Scheduler.kind ->
  speeds:float array ->
  workload:Statsched_cluster.Workload.t ->
  unit ->
  comparison
(** Paired comparison under common random numbers: both schedulers see
    the identical arrival and size streams in each replication, so the
    per-replication differences cancel the workload noise — much tighter
    than comparing two independent confidence intervals.

    @raise Invalid_argument if [scale.reps < 2]. *)

val pp_comparison : Format.formatter -> comparison -> unit

val measure_to_precision :
  ?seed:int64 ->
  ?horizon:float ->
  ?warmup:float ->
  ?min_reps:int ->
  ?max_reps:int ->
  ?jobs:int ->
  target:float ->
  spec ->
  point
(** Sequential stopping: run replications (from [min_reps], default 3)
    until the mean response ratio's relative 95 % half-width falls below
    [target] (e.g. 0.05), or [max_reps] (default 30) is reached.  Uses
    substreams like {!replicate}, so the result for a given count is
    identical to a fixed-replication run.

    @raise Invalid_argument unless [0 < target] and
    [2 <= min_reps <= max_reps]. *)

val measure_single_run :
  ?seed:int64 ->
  ?batch_size:int ->
  horizon:float ->
  warmup:float ->
  spec ->
  point
(** Alternative methodology: one long run analysed by the method of batch
    means instead of independent replications ({!Statsched_stats.Batch_means}).
    Post-warm-up jobs are grouped into batches of [batch_size] (default
    10 000) consecutive completions; the confidence intervals for mean
    response time and ratio come from the batch means.  The fairness
    interval has a [nan] half-width (a population standard deviation has
    no batch-means analogue).  Cheaper than replications for a quick
    point estimate; the headline experiments keep the paper's
    replication methodology. *)
