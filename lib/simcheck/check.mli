(** A single simcheck verdict: one named invariant or theory comparison,
    a pass/fail bit, and a human-readable account of the numbers that
    decided it. *)

type t = { label : string; ok : bool; detail : string }

val v : label:string -> ok:bool -> detail:string -> t

val all_ok : t list -> bool

val failures : t list -> t list

val pp : Format.formatter -> t -> unit
(** ["[PASS] label — detail"]. *)

val pp_list : Format.formatter -> t list -> unit
(** One {!pp} line per check. *)
