(** Event-driven processor-sharing server.

    The paper's computers "apply preemptive round-robin processor
    scheduling" (Section 4.1); processor sharing is its exact fluid limit
    as the quantum goes to zero (Kleinrock Vol. II), and is also the model
    under which the optimized allocation is derived (Section 2.3).  The
    implementation uses the standard virtual-time formulation: virtual
    time advances at rate [speed / n(t)], a job of size [σ] arriving at
    virtual time [v] departs when virtual time reaches [v + σ], so the
    next departure is always the minimum over a heap — every arrival and
    departure costs O(log n) with no per-job bookkeeping updates.
    {!Rr_server} with a small quantum validates this model in the tests. *)

type t

val create :
  engine:Statsched_des.Engine.t ->
  speed:float ->
  on_departure:(Job.t -> unit) ->
  unit ->
  t
(** A PS server of relative [speed] attached to [engine].
    [on_departure] fires at each job completion, after the job's
    [completion] field is set.

    @raise Invalid_argument if [speed <= 0]. *)

val submit : t -> Job.t -> unit
(** Hand a job to the server at the current simulation time.  Sets the
    job's [start] field. *)

val in_system : t -> int
(** Jobs currently being served (PS serves all of them concurrently). *)

val mean_in_system : t -> float
(** Time-averaged number of jobs present since creation or
    {!reset_stats} — Little's [L]. *)

val utilization : t -> float
(** Time-averaged busy fraction since creation or {!reset_stats}. *)

val completed : t -> int

val work_done : t -> float
(** Service delivered since creation or {!reset_stats}, in speed-1
    seconds. *)

val reset_stats : t -> unit

val set_rate : t -> float -> unit
(** Fault hook: scale the service rate by the given factor from now on
    ([0] suspends the server, freezing every job's progress; [1] restores
    nominal speed).  See {!Server_intf.t.set_rate}.

    @raise Invalid_argument if the rate is negative. *)

val drain : t -> Job.t list
(** Fault hook: remove all jobs without completing them (their partial
    service is discarded).  See {!Server_intf.t.drain}. *)

val to_server : t -> Server_intf.t
