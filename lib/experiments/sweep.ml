let over_schedulers ?seed ?jobs ?faults ~scale ~schedulers ~speeds ~workload () =
  List.map
    (fun (name, scheduler) ->
      let spec = Runner.make_spec ?faults ~speeds ~workload ~scheduler () in
      (name, Runner.measure ?seed ?jobs ~scale spec))
    schedulers

type metric = [ `Time | `Ratio | `Fairness ]

let metric_name = function
  | `Time -> "mean response time"
  | `Ratio -> "mean response ratio"
  | `Fairness -> "fairness (std of response ratio)"

let cell_of metric point =
  let open Runner in
  Report.Interval
    (match metric with
    | `Time -> point.mean_response_time
    | `Ratio -> point.mean_response_ratio
    | `Fairness -> point.fairness)

let sweep_of_rows ~title ~xlabel ~metric rows =
  let columns =
    match rows with [] -> [] | (_, points) :: _ -> List.map fst points
  in
  {
    Report.title = Printf.sprintf "%s — %s" title (metric_name metric);
    xlabel;
    columns;
    rows =
      List.map
        (fun (x, points) -> (x, List.map (fun (_, p) -> cell_of metric p) points))
        rows;
  }
