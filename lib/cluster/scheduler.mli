(** Scheduler specifications for a simulation run.

    Either a static policy from the Table 2 matrix (optionally one of the
    ablation dispatch variants) or the Dynamic Least-Load baseline with
    its measurement/propagation delays (Section 4.2). *)

type kind =
  | Static of Statsched_core.Policy.t
      (** Allocation + dispatching, computed once from ρ and the speeds. *)
  | Static_custom of {
      label : string;
      make : rho:float -> speeds:float array -> rng:Statsched_prng.Rng.t ->
        Statsched_core.Dispatch.t;
    }
      (** Escape hatch for ablation dispatchers (no-guard round-robin,
          smooth WRR, …): build any dispatcher from the run parameters. *)
  | Least_load of {
      detection : Statsched_dist.Distribution.t;
          (** time for a computer to notice a departure; paper: U(0,1) s *)
      message_delay : Statsched_dist.Distribution.t;
          (** network delay of the load-update message; paper: Exp(mean 0.05 s) *)
      random_ties : bool;  (** break ties uniformly at random *)
      probe : int option;
          (** [Some d]: power-of-d-choices — probe only [d] random
              computers per decision; [None]: the paper's full Least-Load *)
    }

  | Sita of {
      params : Statsched_dist.Bounded_pareto.params;
          (** the size distribution the cutoffs are computed for *)
      small_to : [ `Fast | `Slow ];
    }
      (** SITA-E (Crovella et al., the paper's reference [5]): dedicate
          each computer to a contiguous job-size band with equal-load
          cutoffs.  {e Size-aware}: the dispatcher inspects each job's
          size, the knowledge the paper's static policies deliberately do
          without.  Cutoffs are built for the run's speed vector when the
          simulation starts. *)
  | Stale_least_load of {
      poll_period : float;
          (** seconds between polls that refresh the scheduler's view of
              every run-queue length *)
      count_in_flight : bool;
          (** whether the scheduler still increments its view on each
              dispatch between polls (mitigates herding); the classic
              stale-information pathology appears with [false] *)
    }
      (** Least-Load driven by periodically polled load information
          instead of per-event updates (Mitzenmacher's "useful-ness of
          old information" setting).  With a large [poll_period] every
          arrival in a window herds onto the computer that looked
          emptiest at the last poll — the ablation bench shows where
          static ORR overtakes it. *)
  | Jsq of { d : int; weighted : bool }
      (** Join-the-Shortest-Queue over [d] sampled computers
          (power-of-d-choices) with {e synchronous exact} queue
          information: departures update the scheduler's view
          immediately, no detection/message-delay events are scheduled.
          The many-server scaling baseline — O(d) work and zero
          allocation per decision, O(log n) with [d >= n] (the
          tournament-tree full-information case).  Contrast with
          {!Least_load}[{probe = Some d}], which models the paper's
          update lag.

          [weighted] (the default) draws the [d] probes speed-weighted
          via Walker's alias table and breaks exact load ties toward
          the faster computer — on heterogeneous clusters uniform
          probes mostly see the slow majority, which is what produced
          the ≈53 response ratio at n = 10² flagged in ROADMAP.md.
          [weighted = false] keeps the original uniform sampler
          (scenario name ["jsq-d-uniform"]) so old recorded runs stay
          replayable. *)
  | Jiq
      (** Join-Idle-Queue (see {!Statsched_core.Jiq}): idle computers
          report themselves, a decision pops the fastest idle stack in
          O(1) and falls back to speed-weighted random (alias table)
          when nothing is idle.  Synchronous updates, like {!Jsq}. *)
  | Adaptive of {
      period : float;
          (** seconds between re-estimations of ρ and recomputations of
              the optimized allocation *)
      initial_rho : float;
          (** utilisation assumed before the first re-estimation *)
      safety : float;
          (** multiplicative inflation of the estimate (the paper's
              Section 5.4 advice: "conservatively overestimate system
              load slightly"); 1.05 ≈ +5 % *)
      windowed : bool;
          (** [false] (default): cumulative averages since the start of
              the run — the paper's "long-run average is sufficient"
              regime.  [true]: estimate from the most recent period only,
              which tracks non-stationary (diurnal) load at the price of
              noisier estimates. *)
      dispatching : Statsched_core.Policy.dispatch_strategy;
    }
      (** Self-tuning ORR: estimates λ and the mean job size from the
          stream it has seen since the start of the run (cumulative
          averages — Section 5.4 argues long-run averages suffice) and
          periodically recomputes Algorithm 1.  No oracle knowledge of
          the offered load. *)

val static : Statsched_core.Policy.t -> kind

val adaptive_orr :
  ?period:float -> ?initial_rho:float -> ?safety:float -> ?windowed:bool -> unit -> kind
(** Adaptive ORR with defaults: recompute every 10 000 s, start from
    ρ̂ = 0.5, +5 % safety margin, cumulative estimator. *)

val stale_least_load : ?count_in_flight:bool -> poll_period:float -> unit -> kind
(** Least-Load on polled information (default [count_in_flight = true]).

    @raise Invalid_argument if [poll_period <= 0]. *)

val sita_paper : ?small_to:[ `Fast | `Slow ] -> unit -> kind
(** SITA-E for the paper's Bounded-Pareto job sizes (default
    [`Small_to:`Fast], which favours the mean response ratio). *)

val least_load_paper : kind
(** Least-Load with the paper's delays: detection U(0,1) s, message delay
    exponential with mean 0.05 s, random tie-breaking. *)

val least_load_instant : kind
(** Idealised Least-Load with zero-delay departure updates — an upper
    bound used in ablation benches to price the update latency. *)

val jsq : ?d:int -> ?weighted:bool -> unit -> kind
(** JSQ(d) with synchronous queue information (default [d = 2],
    speed-weighted probing; [~weighted:false] restores the uniform
    sampler for replay).

    @raise Invalid_argument if [d < 1]. *)

val jiq : kind
(** Join-Idle-Queue with synchronous idle reporting. *)

val two_choices : ?d:int -> unit -> kind
(** Power-of-d-choices (default [d = 2]) with the paper's update delays —
    a partial-information dynamic baseline between the static policies and
    full Least-Load. *)

val name : kind -> string
