(* Analysis orchestration: load units, build the whole-program call
   graph, run the per-unit rules and the interprocedural rules, filter
   through allow markers, then report markers that suppressed nothing
   (R10).  Baseline handling and exit codes live in the CLI. *)

type run = {
  diags : Diag.t list;  (* allow-filtered, sorted *)
  files_scanned : int;
  load_errors : int;  (* parse / typecheck failures: exit code 2 *)
}

let analyze ?build_dir roots =
  let loaded = Loader.load_roots ?build_dir roots in
  let program = Callgraph.build loaded.Loader.units in
  let allow_of =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (u : Callgraph.unit_ctx) ->
        Hashtbl.replace tbl u.info.Loader.src u.allow)
      program.Callgraph.units;
    fun src -> Hashtbl.find_opt tbl src
  in
  let acc = ref [] in
  let report (d : Diag.t) =
    let suppressed =
      match allow_of d.file with
      | Some t -> Source.allowed t ~line:d.line d.rule
      | None -> false
    in
    if not suppressed then acc := d :: !acc
  in
  (* Per-unit rules (R1-R6, R9). *)
  List.iter
    (fun (u : Callgraph.unit_ctx) ->
      Rules.run { Rules.program; unit = u; report })
    program.Callgraph.units;
  (* Interprocedural rules. *)
  Rules_flow.run_r7 program report;
  Rules_flow.run_r8 program report;
  (* R10: markers that suppressed nothing, now that every other rule has
     recorded its marker usage.  R10 diagnostics are deliberately not
     themselves allow-suppressible — escape hatches don't get escape
     hatches — but they can be baselined. *)
  List.iter
    (fun (u : Callgraph.unit_ctx) ->
      List.iter
        (fun (line, rule_word) ->
          acc :=
            {
              Diag.file = u.info.Loader.src;
              line;
              col = 0;
              rule = "R10";
              msg =
                Printf.sprintf
                  "stale marker: `schedlint: allow %s` suppresses nothing; \
                   delete it"
                  (String.uppercase_ascii rule_word);
            }
            :: !acc)
        (Source.stale u.allow))
    program.Callgraph.units;
  {
    diags = Diag.sort !acc;
    files_scanned = List.length loaded.Loader.units + loaded.Loader.errors;
    load_errors = loaded.Loader.errors;
  }
