(** Differential verification: seeded DES runs compared against the
    closed forms of {!Statsched_queueing.Theory} and
    {!Statsched_core.Mm1} within confidence bands ({!Band}).

    Cases are restricted to configurations where the closed forms are
    {e exact}: Poisson arrivals into a single server, or a static random
    dispatcher over a heterogeneous cluster (Poisson splitting makes each
    computer an independent M/G/1).  Covered: M/M/1-PS response, slowdown
    and number-in-system; M/G/1-PS insensitivity across deterministic,
    Weibull(0.5) and hyperexponential sizes; M/M/1- and M/G/1-FCFS by
    Pollaczek–Khinchine across three size SCVs; the equation-(3) system
    prediction for ORAN and WRAN with per-computer utilisations; and the
    Avi-Itzhak–Naor breakdown model through the fault injector. *)

val default_scale : Statsched_experiments.Config.scale
(** 6·10⁴ s horizon, first quarter discarded, 5 replications — chosen so
    the whole oracle tier stays well under a minute yet the 99.9 %
    confidence bands are a few percent wide. *)

val run :
  ?scale:Statsched_experiments.Config.scale ->
  ?seed:int64 ->
  ?jobs:int ->
  unit ->
  Check.t list
(** Run every differential case.  Failing checks carry a replayable
    [schedsim run] command in their detail.  [jobs] fans replications out
    over domains exactly as {!Statsched_experiments.Runner.replicate}
    (results are bit-identical for every value). *)
