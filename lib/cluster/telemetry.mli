(** Unified run telemetry: a metric registry plus an optional Chrome
    trace-event recorder, fed by the passive observer hooks of
    {!Simulation.run}.

    Construct one per run, pass its [on_*] callbacks to {!Simulation.run},
    then call {!finalize} with the result to close open spans and set the
    summary gauges.  Everything recorded here is derived from the
    simulation's own deterministic state — telemetry never draws random
    numbers or schedules events, so an instrumented run is bit-identical
    to an uninstrumented one under the same seed.  The only wall-clock
    reads ({!Statsched_obs.Clock}) happen in {!create} and {!finalize} and
    feed self-profiling gauges only.

    Exported metric names are listed in the README ("Observability"). *)

type t

val create : ?trace:bool -> ?journal:Statsched_obs.Journal.t -> Simulation.config -> t
(** [trace] (default false) additionally records per-job spans and
    computer up/down intervals for Perfetto; metrics are always on.
    [journal] tees every hook into a bounded structured run journal
    (dispatch/queue-depth/completion/drop/rate records, systematically
    sampled) — see {!Statsched_obs.Journal}. *)

val on_dispatch : t -> Statsched_queueing.Job.t -> unit
val on_completion : t -> Statsched_queueing.Job.t -> unit
val on_drop : t -> Statsched_queueing.Job.t -> unit
val on_rate_change : t -> time:float -> computer:int -> rate:float -> unit

val finalize : ?horizon:float -> t -> Simulation.result -> unit
(** Close any open capacity span at the horizon and set the end-of-run
    gauges (utilization, dispatch drift, availability, DES self-profiling,
    events per wall-clock second).  Call exactly once, after
    {!Simulation.run} returns.  [horizon] overrides the configured
    horizon as the run's end time — a {!Simulation.Driver} caller whose
    virtual clock stopped short of the cap passes the real end time so
    window-derived gauges stay truthful. *)

val registry : t -> Statsched_obs.Registry.t
(** The hot hooks count dispatches/completions/drops in flat integer
    shadows only; the exported counter cells are brought up to date on
    every read path ({!serve}'s [/metrics], {!write_metrics},
    {!finalize}).  Render this registry directly mid-run and the
    per-computer job counters may lag the shadows. *)

val histograms :
  t -> Statsched_obs.Hdr_histogram.t * Statsched_obs.Hdr_histogram.t
(** The registered response-time and response-ratio exporter histograms,
    for [Simulation.run ~metric_histograms:(Telemetry.histograms t)]:
    the run's collector then accumulates straight into the exported
    series (live scrapes read the collector's own tail distributions)
    and {!on_completion} skips its fallback per-completion update.
    Without this wiring the hooks fill the histograms themselves. *)

val metric_count : t -> int

val trace_event_count : t -> int
(** 0 when tracing is off. *)

val write_metrics : t -> string -> unit
(** Prometheus text exposition to a file. *)

val write_trace : t -> string -> unit
(** Chrome trace-event JSON to a file; no-op when tracing is off. *)

(** {2 Live observation}

    The live surface reads only what the passive hooks already maintain
    (plus {!Statsched_des.Engine.snapshot} when an engine was attached):
    serving never mutates simulation state, draws randomness, or
    schedules events, so a served run is bit-identical to an unserved
    one under the same seed. *)

val set_engine : t -> Statsched_des.Engine.t -> unit
(** Attach the run's DES engine so {!state_json} can report live
    simulation time and event counts.  Pass as
    [Simulation.run ~on_engine:(Telemetry.set_engine t)]. *)

val journal : t -> Statsched_obs.Journal.t option

val metrics_exposition : t -> string
(** Prometheus text exposition of {!registry}, with the counter shadows
    synced first — what {!serve}'s [/metrics] returns, exposed for
    servers (the [schedsimd] daemon) that mount it under their own
    routing. *)

val state_json : t -> string
(** One JSON object with run progress ([sim_time], [events_executed],
    [pending_events] — zero until {!set_engine}) and per-computer live
    gauges: current effective [rate], instantaneous [queue_depth]
    (dispatched − completed − dropped), cumulative dispatch/completion/
    drop counts, [busy_seconds] (completed work over nominal speed) and
    the derived whole-run [utilization], plus journal occupancy. *)

val serve : ?addr:string -> t -> port:int -> Statsched_obs.Http.t
(** Start the in-process telemetry server (background systhread; see
    {!Statsched_obs.Http}) answering [GET /metrics] (Prometheus text
    exposition of {!registry}), [GET /healthz] ([ok]) and [GET /state]
    ({!state_json}).  [port = 0] picks an ephemeral port; stop with
    {!Statsched_obs.Http.stop}. *)

val write_journal : ?horizon:float -> t -> Simulation.result -> string -> unit
(** Write the journal (atomically) with run-configuration [meta] lines
    and collector-side [summary] lines — mean response time/ratio,
    per-computer utilizations and dispatch fractions — so
    [tools/tracestat] can cross-validate the two against each other.
    No-op when the telemetry was created without a journal.  [horizon]
    overrides the configured horizon in the meta lines, as in
    {!finalize} — a drained daemon passes its final virtual time so the
    cross-validator's measurement window matches reality. *)
