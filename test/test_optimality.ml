open Test_util
module Core = Statsched_core
module Optimality = Core.Optimality
module Allocation = Core.Allocation
module Speeds = Core.Speeds
module Cluster = Statsched_cluster
module E = Statsched_experiments
module Rng = Statsched_prng.Rng

(* ------------------------------------------------------------------ *)
(* KKT verification                                                    *)

let gradient_known_values () =
  (* Two computers, speeds (1, 3), rho = 0.5 => lambda = 2.
     At alpha = (0.25, 0.75): dF/da_0 = 2*1/(1-0.5)^2 = 8,
     dF/da_1 = 2*3/(3-1.5)^2 = 8/3. *)
  let g =
    Optimality.gradient ~rho:0.5 ~speeds:[| 1.0; 3.0 |] ~alloc:[| 0.25; 0.75 |]
  in
  check_float ~eps:1e-12 "grad 0" 8.0 g.(0);
  check_float ~eps:1e-12 "grad 1" (8.0 /. 3.0) g.(1)

let gradient_saturated () =
  let g = Optimality.gradient ~rho:0.8 ~speeds:[| 1.0; 1.0 |] ~alloc:[| 1.0; 0.0 |] in
  check_float "saturated gradient" infinity g.(0)

let kkt_accepts_algorithm1 () =
  List.iter
    (fun rho ->
      List.iter
        (fun speeds ->
          let alloc = Allocation.optimized ~rho speeds in
          let v = Optimality.check ~rho ~speeds alloc in
          Alcotest.(check bool)
            (Printf.sprintf
               "optimal at rho=%.2f n=%d (stat %.2e dual %.2e feas %.2e)" rho
               (Array.length speeds) v.Optimality.stationarity_residual
               v.Optimality.dual_residual v.Optimality.feasibility_residual)
            true v.Optimality.optimal)
        [ Speeds.table1; Speeds.table3;
          Speeds.two_class ~n_fast:2 ~fast:20.0 ~n_slow:16 ~slow:1.0; [| 5.0 |] ])
    [ 0.05; 0.3; 0.7; 0.95 ]

let kkt_rejects_weighted () =
  (* Weighted allocation is NOT stationary on a heterogeneous system. *)
  let speeds = Speeds.table3 in
  let v = Optimality.check ~rho:0.5 ~speeds (Allocation.weighted speeds) in
  Alcotest.(check bool) "weighted not optimal" false v.Optimality.optimal;
  Alcotest.(check bool) "stationarity violated" true
    (v.Optimality.stationarity_residual > 1e-3)

let kkt_rejects_infeasible () =
  let speeds = [| 1.0; 1.0 |] in
  let v = Optimality.check ~rho:0.5 ~speeds [| 0.7; 0.7 |] in
  Alcotest.(check bool) "sum != 1 rejected" false v.Optimality.optimal;
  Alcotest.(check bool) "feasibility residual positive" true
    (v.Optimality.feasibility_residual > 0.1)

let kkt_rejects_naive_clamp_when_cutoff_active () =
  let speeds = Speeds.table3 in
  let rho = 0.1 in
  Alcotest.(check bool) "cutoff active" true (Allocation.optimized_cutoff ~rho speeds > 0);
  let naive = Allocation.optimized_naive_clamp ~rho speeds in
  let v = Optimality.check ~rho ~speeds naive in
  Alcotest.(check bool) "naive clamp fails KKT" false v.Optimality.optimal

let brute_force_two_agrees () =
  List.iter
    (fun (s0, s1, rho) ->
      let speeds = [| s0; s1 |] in
      let reference = Optimality.brute_force_two ~grid:200_000 ~rho speeds in
      let alg1 = Allocation.optimized ~rho speeds in
      check_float ~eps:1e-4
        (Printf.sprintf "alpha_0 at (%g,%g,rho=%g)" s0 s1 rho)
        reference.(0) alg1.(0))
    [ (1.0, 10.0, 0.7); (1.0, 10.0, 0.2); (2.0, 3.0, 0.5); (1.0, 1.0, 0.6);
      (1.0, 100.0, 0.9) ]

let brute_force_validation () =
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Optimality.brute_force_two: need exactly two computers")
    (fun () -> ignore (Optimality.brute_force_two ~rho:0.5 [| 1.0 |]))

let prop_kkt_accepts_algorithm1 =
  qcheck ~count:200 "Algorithm 1 satisfies KKT for random systems"
    QCheck2.Gen.(pair speeds_gen rho_gen)
    (fun (speeds, rho) ->
      let alloc = Core.Allocation.optimized ~rho speeds in
      (Optimality.check ~tol:1e-5 ~rho ~speeds alloc).Optimality.optimal)

let prop_parked_gradient_dominates =
  qcheck ~count:200 "parked computers have gradient >= multiplier"
    QCheck2.Gen.(pair speeds_gen (map (fun x -> 0.02 +. (0.3 *. x)) (float_bound_inclusive 1.0)))
    (fun (speeds, rho) ->
      let alloc = Core.Allocation.optimized ~rho speeds in
      let v = Optimality.check ~rho ~speeds alloc in
      v.Optimality.dual_residual <= 1e-5)

(* ------------------------------------------------------------------ *)
(* Power-of-d-choices                                                  *)

let sampled_degenerates_to_full () =
  let t = Core.Least_load.create Speeds.table1 in
  let g = rng () in
  (* d >= n: identical to full least-load selection. *)
  Alcotest.(check int) "full probe = select" (Core.Least_load.select t)
    (Core.Least_load.select_sampled ~rng:g t ~d:100)

let sampled_picks_best_of_probes () =
  let t = Core.Least_load.create [| 1.0; 1.0; 1.0 |] in
  (* Load computer 0 heavily; with d = 3 (all probed), never choose it. *)
  for _ = 1 to 5 do
    Core.Least_load.job_sent t 0
  done;
  let g = rng () in
  for _ = 1 to 200 do
    let i = Core.Least_load.select_sampled ~rng:g t ~d:3 in
    Alcotest.(check bool) "avoids the loaded machine" true (i = 1 || i = 2)
  done

let sampled_d1_is_uniform_random () =
  let t = Core.Least_load.create [| 1.0; 1.0; 1.0; 1.0 |] in
  let g = rng () in
  let c = Array.make 4 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let i = Core.Least_load.select_sampled ~rng:g t ~d:1 in
    c.(i) <- c.(i) + 1
  done;
  Array.iter
    (fun count ->
      Alcotest.(check bool) "d=1 uniform" true (abs (count - (n / 4)) < n / 40))
    c

let sampled_validation () =
  let t = Core.Least_load.create [| 1.0 |] in
  Alcotest.check_raises "d < 1" (Invalid_argument "Least_load.select_sampled: d < 1")
    (fun () -> ignore (Core.Least_load.select_sampled ~rng:(rng ()) t ~d:0));
  Alcotest.check_raises "weighted d < 1"
    (Invalid_argument "Least_load.select_weighted: d < 1") (fun () ->
      ignore (Core.Least_load.select_weighted ~rng:(rng ()) t ~d:0))

(* Regression (PR 10): uniform probing on a fast-minority cluster almost
   never sees the fast computers, so JSQ(d) piled work on the slow
   majority (the ROADMAP-flagged ≈53 response ratio at n=10²).  The
   speed-weighted sampler must probe — and hence select — the fast
   computers far more often.  Formulated against the uniform sampler
   this assertion fails, which is exactly the pre-fix behaviour. *)
let weighted_probes_see_fast_minority () =
  let n = 100 in
  (* 10% at speed 10, 90% at speed 1 — the scale-sweep configuration. *)
  let speeds = Array.init n (fun i -> if i < n / 10 then 10.0 else 1.0) in
  let count select =
    let t = Core.Least_load.create speeds in
    let g = rng () in
    let fast = ref 0 in
    let decisions = 2_000 in
    for _ = 1 to decisions do
      let i = select g t in
      if speeds.(i) > 1.0 then incr fast
    done;
    float_of_int !fast /. float_of_int decisions
  in
  let uniform = count (fun g t -> Core.Least_load.select_sampled ~rng:g t ~d:2) in
  let weighted = count (fun g t -> Core.Least_load.select_weighted ~rng:g t ~d:2) in
  (* All queues stay empty, so a probe set containing a fast computer
     always selects it (normalised load 0.1 vs 1.0).  Uniform d=2 finds
     one with P ≈ 0.19; weighted with P ≈ 0.78. *)
  Alcotest.(check bool)
    (Printf.sprintf "weighted fast-hit rate %.2f > 2x uniform %.2f" weighted
       uniform)
    true
    (weighted > 2.0 *. uniform);
  Alcotest.(check bool)
    (Printf.sprintf "weighted fast-hit rate %.2f > 0.6" weighted)
    true (weighted > 0.6)

let weighted_distinct_probes_and_ties () =
  (* All three computers tied at normalised load 1.0: speeds (1, 2, 4)
     with queues (0, 1, 3).  Whatever pair of distinct probes the
     sampler draws, the faster member must win the tie — computer 0
     (the slowest) can never be selected, because any pair containing
     it also contains a faster computer at equal load.  The uniform
     sampler keeps first-seen tie-breaking, so this pins the weighted
     path's faster-on-tie contract (it fails if run against
     select_sampled). *)
  let t = Core.Least_load.create [| 1.0; 2.0; 4.0 |] in
  Core.Least_load.job_sent t 1;
  for _ = 1 to 3 do
    Core.Least_load.job_sent t 2
  done;
  let g = rng () in
  let seen = Array.make 3 0 in
  for _ = 1 to 300 do
    let i = Core.Least_load.select_weighted ~rng:g t ~d:2 in
    seen.(i) <- seen.(i) + 1
  done;
  Alcotest.(check int) "slowest tied computer never wins" 0 seen.(0);
  Alcotest.(check bool) "both faster computers selected" true
    (seen.(1) > 0 && seen.(2) > 0)

let weighted_degenerates_to_full () =
  let t = Core.Least_load.create Speeds.table1 in
  let g = rng () in
  Alcotest.(check int) "full weighted probe = select" (Core.Least_load.select t)
    (Core.Least_load.select_weighted ~rng:g t ~d:100)

let weighted_respects_mask () =
  let t = Core.Least_load.create [| 1.0; 1.0; 1.0; 10.0 |] in
  (* The fast computer is down: weighted probing must never pick it,
     even though it carries ~77% of the alias table's mass (the
     rejection loop and the Fisher-Yates fallback both filter on
     availability). *)
  Core.Least_load.set_available t 3 false;
  let g = rng () in
  for _ = 1 to 200 do
    let i = Core.Least_load.select_weighted ~rng:g t ~d:2 in
    Alcotest.(check bool) "down computer never probed" true (i < 3)
  done

let walker_alias_frequencies () =
  let weights = [| 1.0; 2.0; 3.0; 4.0 |] in
  let a = Core.Walker_alias.create weights in
  Alcotest.(check int) "length" 4 (Core.Walker_alias.length a);
  let g = rng () in
  let n = 100_000 in
  let c = Array.make 4 0 in
  for _ = 1 to n do
    let i = Core.Walker_alias.draw a g in
    c.(i) <- c.(i) + 1
  done;
  Array.iteri
    (fun i count ->
      let expect = weights.(i) /. 10.0 *. float_of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "category %d: %d draws vs %.0f expected" i count expect)
        true
        (Float.abs (float_of_int count -. expect) < 0.05 *. float_of_int n))
    c;
  Alcotest.check_raises "empty" (Invalid_argument "Walker_alias.create: empty weight vector")
    (fun () -> ignore (Core.Walker_alias.create [||]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Walker_alias.create: negative or NaN weight") (fun () ->
      ignore (Core.Walker_alias.create [| 1.0; -1.0; 3.0 |]))

let decision_path_zero_alloc () =
  (* The JSQ(d)/JIQ/least-load decision paths must not allocate: at
     n = 10^4 over 10^7 jobs even one word per decision is 80 MB of
     minor-heap churn.  One warm pass first (index pools and idle
     stacks size themselves), then a measured pass under
     [Gc.minor_words]. *)
  let n = 10_000 in
  let speeds = E.Ext_scale.speeds_for n in
  let decisions = 10_000 in
  let measure name cycle =
    cycle ();
    let before = Gc.minor_words () in
    cycle ();
    let delta = Gc.minor_words () -. before in
    Alcotest.(check bool)
      (Printf.sprintf "%s allocated %.0f minor words over %d decisions" name
         delta decisions)
      true (delta <= 64.0)
  in
  let g = rng () in
  (* Pre-allocated option: building [Some g] at the call would charge
     the measurement two words per decision that the simulation's own
     call sites don't pay (they hoist it the same way). *)
  let rng_opt = Some g in
  let ll = Core.Least_load.create speeds in
  measure "least-load tree select" (fun () ->
      for _ = 1 to decisions do
        let s = Core.Least_load.select ?rng:rng_opt ll in
        Core.Least_load.job_sent ll s;
        Core.Least_load.departure_recorded ll s
      done);
  measure "jsq(d=2) sampled probe" (fun () ->
      for _ = 1 to decisions do
        let s = Core.Least_load.select_sampled ~rng:g ll ~d:2 in
        Core.Least_load.job_sent ll s;
        Core.Least_load.departure_recorded ll s
      done);
  measure "jsq(d=2) weighted probe" (fun () ->
      for _ = 1 to decisions do
        let s = Core.Least_load.select_weighted ~rng:g ll ~d:2 in
        Core.Least_load.job_sent ll s;
        Core.Least_load.departure_recorded ll s
      done);
  let jq = Core.Jiq.create speeds in
  measure "jiq idle-stack select" (fun () ->
      for _ = 1 to decisions do
        let s = Core.Jiq.select ~rng:g jq in
        Core.Jiq.job_sent jq s;
        Core.Jiq.departure_recorded jq s
      done)

let two_choices_between_static_and_full () =
  (* On a homogeneous cluster JSQ(2) should clearly beat random static
     dispatch and be beaten by (or match) full least-load. *)
  let speeds = Array.make 8 1.0 in
  let workload = Cluster.Workload.poisson_exponential ~rho:0.8 ~mean_size:1.0 ~speeds in
  let run scheduler =
    let cfg =
      Cluster.Simulation.default_config ~horizon:60_000.0 ~speeds ~workload ~scheduler ()
    in
    (Cluster.Simulation.run cfg).Cluster.Simulation.metrics
      .Core.Metrics.mean_response_time
  in
  let t_static = run (Cluster.Scheduler.static Core.Policy.wran) in
  let t_d2 = run (Cluster.Scheduler.two_choices ~d:2 ()) in
  let t_full = run Cluster.Scheduler.least_load_paper in
  Alcotest.(check bool)
    (Printf.sprintf "JSQ(2) %.3f < static random %.3f" t_d2 t_static)
    true (t_d2 < t_static);
  Alcotest.(check bool)
    (Printf.sprintf "full least-load %.3f <= JSQ(2) %.3f * 1.1" t_full t_d2)
    true (t_full <= t_d2 *. 1.1)

let two_choices_scheduler_name () =
  Alcotest.(check string) "name" "LeastLoad(d=2)"
    (Cluster.Scheduler.name (Cluster.Scheduler.two_choices ()));
  Alcotest.check_raises "d < 1" (Invalid_argument "Scheduler.two_choices: d < 1")
    (fun () -> ignore (Cluster.Scheduler.two_choices ~d:0 ()))

(* ------------------------------------------------------------------ *)
(* Extension experiment plumbing                                       *)

let tiny = { E.Config.horizon = 20_000.0; warmup = 5_000.0; reps = 2 }

let with_size_workload () =
  let speeds = Speeds.table3 in
  let size = Statsched_dist.Exponential.of_mean 76.8 in
  let w = Cluster.Workload.with_size ~rho:0.7 ~size speeds in
  check_close ~rel:1e-9 "utilisation hit" 0.7 (Cluster.Workload.utilization w ~speeds);
  check_close ~rel:1e-6 "default arrival cv 3" 3.0
    (Statsched_dist.Distribution.cv w.Cluster.Workload.interarrival);
  let w1 = Cluster.Workload.with_size ~rho:0.7 ~arrival_cv:1.0 ~size speeds in
  check_close ~rel:1e-9 "poisson option" 1.0
    (Statsched_dist.Distribution.cv w1.Cluster.Workload.interarrival)

let ext_sizes_same_mean () =
  List.iter
    (fun (label, d) ->
      check_close ~rel:0.002
        (Printf.sprintf "%s has mean 76.8" label)
        76.8
        (Statsched_dist.Distribution.mean d))
    (E.Ext_sizes.default_sizes ())

let ext_sizes_structure () =
  let rows =
    E.Ext_sizes.run ~scale:tiny
      ~sizes:
        [ ("det", Statsched_dist.Deterministic.create 76.8);
          ("exp", Statsched_dist.Exponential.of_mean 76.8) ]
      ()
  in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check int) "two schedulers" 2 (List.length r.E.Ext_sizes.points))
    rows;
  Alcotest.(check bool) "report renders" true
    (String.length (E.Ext_sizes.to_report rows) > 0)

let ext_burstiness_structure () =
  let rows =
    E.Ext_burstiness.run ~scale:tiny ~cvs:[ 1.0; 3.0 ]
      ~schedulers:[ ("WRR", Cluster.Scheduler.static Core.Policy.wrr) ]
      ()
  in
  Alcotest.(check int) "two cv rows" 2 (List.length rows);
  Alcotest.(check int) "two sweeps" 2 (List.length (E.Ext_burstiness.sweeps rows))

let ext_burstiness_monotone () =
  (* More bursty arrivals hurt: WRR's response ratio at CV 5 must exceed
     its value at CV 0.5. *)
  let scale = { E.Config.horizon = 60_000.0; warmup = 15_000.0; reps = 2 } in
  let rows =
    E.Ext_burstiness.run ~scale ~cvs:[ 0.5; 5.0 ]
      ~schedulers:[ ("WRR", Cluster.Scheduler.static Core.Policy.wrr) ]
      ()
  in
  let ratio cv =
    let points = List.assoc cv rows in
    (List.assoc "WRR" points).E.Runner.mean_response_ratio
      .Statsched_stats.Confidence.mean
  in
  Alcotest.(check bool)
    (Printf.sprintf "cv=5 (%.3f) worse than cv=0.5 (%.3f)" (ratio 5.0) (ratio 0.5))
    true
    (ratio 5.0 > ratio 0.5)

let suite =
  [
    test "kkt: gradient closed form" gradient_known_values;
    test "kkt: saturated gradient infinite" gradient_saturated;
    test "kkt: Algorithm 1 output passes (fixtures)" kkt_accepts_algorithm1;
    test "kkt: weighted allocation fails stationarity" kkt_rejects_weighted;
    test "kkt: infeasible allocation rejected" kkt_rejects_infeasible;
    test "kkt: naive clamp fails when cutoff active" kkt_rejects_naive_clamp_when_cutoff_active;
    slow_test "brute force two computers agrees with Algorithm 1" brute_force_two_agrees;
    test "brute force arity validation" brute_force_validation;
    prop_kkt_accepts_algorithm1;
    prop_parked_gradient_dominates;
    test "jsq(d): d >= n degenerates to full least-load" sampled_degenerates_to_full;
    test "jsq(d): picks best of probes" sampled_picks_best_of_probes;
    test "jsq(d): d=1 is uniform random" sampled_d1_is_uniform_random;
    test "jsq(d): validation" sampled_validation;
    test "jsq(d): weighted probes see the fast minority"
      weighted_probes_see_fast_minority;
    test "jsq(d): weighted tie-break prefers faster"
      weighted_distinct_probes_and_ties;
    test "jsq(d): weighted d >= n degenerates to full least-load"
      weighted_degenerates_to_full;
    test "jsq(d): weighted probing respects the availability mask"
      weighted_respects_mask;
    test "walker alias: frequencies and validation" walker_alias_frequencies;
    test "dispatchers: decision paths allocation-free at n=10^4"
      decision_path_zero_alloc;
    slow_test "jsq(2): between static random and full least-load"
      two_choices_between_static_and_full;
    test "jsq(d): scheduler naming and validation" two_choices_scheduler_name;
    test "workload: with_size parameterisation" with_size_workload;
    test "ext sizes: all distributions share the mean" ext_sizes_same_mean;
    slow_test "ext sizes: structure" ext_sizes_structure;
    slow_test "ext burstiness: structure" ext_burstiness_structure;
    slow_test "ext burstiness: burstiness hurts" ext_burstiness_monotone;
  ]

let ext_convergence_structure () =
  let rows =
    E.Ext_convergence.run ~reps:2 ~horizons:[ 10_000.0; 20_000.0 ] ~rho:0.7 ()
  in
  Alcotest.(check int) "two horizons" 2 (List.length rows);
  List.iter
    (fun (_, points) ->
      Alcotest.(check int) "three schedulers" 3 (List.length points))
    rows;
  Alcotest.(check bool) "report renders" true
    (String.length (E.Ext_convergence.to_report rows) > 0)

let convergence_suite =
  [ slow_test "ext convergence: structure" ext_convergence_structure ]

let suite = suite @ convergence_suite

let ablations_library () =
  (* Dispatch smoothness: structure + the headline ordering. *)
  let rows = E.Ablations.dispatch_smoothness () in
  Alcotest.(check int) "seven dispatchers" 7 (List.length rows);
  let dev name =
    (List.find (fun r -> r.E.Ablations.dispatcher = name) rows)
      .E.Ablations.mean_deviation
  in
  Alcotest.(check bool) "algorithm 2 smoother than random" true
    (dev "Algorithm 2 (paper)" < dev "random" /. 3.0);
  Alcotest.(check bool) "guard helps" true
    (dev "Algorithm 2 (paper)" <= dev "no first-assignment guard");
  Alcotest.(check bool) "report renders" true
    (String.length (E.Ablations.dispatch_smoothness_report rows) > 0);
  (* Interval-length sensitivity: round-robin always at or below random. *)
  let ivs = E.Ablations.interval_lengths () in
  Alcotest.(check int) "five lengths" 5 (List.length ivs);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "rr <= random at %g s" r.E.Ablations.interval_length)
        true
        (r.E.Ablations.round_robin_deviation <= r.E.Ablations.random_deviation))
    ivs

let ablations_disciplines () =
  let rows =
    E.Ablations.disciplines ~scale:{ E.Config.horizon = 30_000.0; warmup = 7_500.0; reps = 2 } ()
  in
  Alcotest.(check int) "five disciplines" 5 (List.length rows);
  let mean name =
    (List.find (fun r -> r.E.Ablations.model = name) rows).E.Ablations.response_time
      .Statsched_stats.Confidence.mean
  in
  (* PS and fine-quantum RR agree closely even at this tiny scale *)
  check_close ~rel:0.05 "PS ~ RR(0.01)" (mean "PS (fluid)") (mean "RR quantum 0.01");
  (* SRPT at least matches PS on mean response time *)
  Alcotest.(check bool) "SRPT <= PS" true
    (mean "SRPT (size-aware)" <= mean "PS (fluid)" *. 1.02)

let ablation_suite =
  [
    slow_test "ablations: dispatch + intervals library" ablations_library;
    slow_test "ablations: disciplines library" ablations_disciplines;
  ]

let suite = suite @ ablation_suite
