module Cluster = Statsched_cluster
module Core = Statsched_core

let default_fast_speeds = [ 1.0; 2.0; 4.0; 6.0; 8.0; 10.0; 12.0; 16.0; 20.0 ]

type t = (float * (string * Runner.point) list) list

let run ?(scale = Config.default_scale) ?seed ?jobs
    ?(fast_speeds = default_fast_speeds)
    ?(schedulers = Schedulers.with_least_load) () =
  List.map
    (fun fast ->
      let speeds = Core.Speeds.two_class ~n_fast:2 ~fast ~n_slow:16 ~slow:1.0 in
      let workload =
        Cluster.Workload.paper_default ~rho:Config.base_utilization ~speeds
      in
      (fast, Sweep.over_schedulers ?seed ?jobs ~scale ~schedulers ~speeds ~workload ()))
    fast_speeds

let sweeps t =
  List.map
    (fun metric ->
      Sweep.sweep_of_rows ~title:"Figure 3: effect of speed skewness"
        ~xlabel:"fast speed" ~metric t)
    [ `Time; `Ratio; `Fairness ]

let to_report t = String.concat "\n" (List.map Report.render_sweep (sweeps t))
