(** Empirical distribution (trace replay with resampling).

    Wraps a sample of observed values — e.g. job sizes from a recorded
    trace — as a distribution that resamples uniformly with replacement.
    This is the substitution point for proprietary traces: anything a user
    measures can be plugged into the simulator through this module. *)

val create : float array -> Distribution.t
(** [create xs] resamples uniformly from [xs]; mean/variance are the sample
    moments.

    @raise Invalid_argument if [xs] is empty or contains a negative value. *)

val of_sorted_quantiles : float array -> Distribution.t
(** [of_sorted_quantiles q] treats [q] as evenly spaced quantiles of the
    underlying distribution and samples by linear interpolation between
    adjacent quantiles (inverse-CDF table lookup).  [q] must be sorted
    non-decreasing, non-empty, and non-negative. *)
