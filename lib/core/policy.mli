(** Static scheduling policies — the Table 2 matrix.

    A policy pairs a workload allocation scheme with a job dispatching
    strategy.  The four combinations studied in the paper:

    {t | | weighted alloc | optimized alloc |
       | random dispatch | WRAN | ORAN |
       | round-robin dispatch | WRR | ORR |} *)

type allocation_scheme =
  | Weighted  (** [α_i ∝ s_i] (Section 2.1) *)
  | Optimized  (** Algorithm 1 at the estimated utilisation *)
  | Optimized_at of float
      (** Algorithm 1 with an explicitly (mis)estimated utilisation —
          the Figure 6 sensitivity experiments use
          [Optimized_at ((1. +. err) *. rho)] *)

type dispatch_strategy =
  | Random  (** Section 3.1 *)
  | Round_robin  (** Algorithm 2 *)

type t = { allocation : allocation_scheme; dispatching : dispatch_strategy }

val wran : t
val oran : t
val wrr : t
val orr : t

val orr_estimated : float -> t
(** [orr_estimated rho_hat]: ORR computed as if the utilisation were
    [rho_hat]. *)

val all_static : (string * t) list
(** The four paper policies with their canonical names. *)

val name : t -> string
(** "WRAN", "ORAN", "WRR", "ORR", or e.g. "ORR(+10%)@0.77" for estimated
    variants (the suffix shows the assumed utilisation). *)

val allocation_of : t -> rho:float -> float array -> float array
(** Compute the fractions this policy uses for speed vector [s] at true
    system utilisation [rho].  For [Optimized_at rho_hat] the assumed
    utilisation is clamped to (0, 1) — the paper notes ORR converges to
    WRR as the assumed utilisation approaches 100 %, and we take weighted
    allocation when [rho_hat >= 1]. *)

val dispatcher_of :
  t -> rng:Statsched_prng.Rng.t -> float array -> Dispatch.t
(** Build the dispatcher realising [alloc]; the [rng] is used only by
    random dispatching. *)
