(** Runtime invariant sanitizers for the cluster simulator.

    Pure observation hooks {!Simulation.run} calls when sanitizing is on
    (the [~sanitize] argument, [schedsim run --sanitize], or the
    [STATSCHED_SANITIZE] environment variable).  Checks never draw
    random numbers, schedule events or otherwise perturb a run, so a
    sanitized replication is bit-identical to an unsanitized one under
    the same seed (tested).  A violated invariant raises {!Violation}
    at the first observation point that sees it.

    Invariants checked:
    - {b clock monotonicity} — simulated time never moves backwards
      between observation points;
    - {b event-heap order} — the future-event list still satisfies its
      internal heap property ({!Statsched_des.Engine.heap_ordered});
    - {b job conservation} — arrived = completed + in-system + dropped
      at every departure and at the end of the run;
    - {b allocation feasibility} — every allocation the scheduler acts
      on has [Σ αᵢ = 1] and [αᵢλ < sᵢμ] (Theorem 1's stability
      condition), checked at computation time. *)

exception
  Violation of {
    invariant : string;  (** which checker fired, e.g. ["job-conservation"] *)
    message : string;  (** human-readable details *)
  }

val enabled_from_env : unit -> bool
(** [true] iff [STATSCHED_SANITIZE] is set to something other than [""],
    ["0"], ["false"], ["no"] or ["off"] (case-insensitive). *)

type t
(** Mutable counters and the last observed clock for one replication. *)

val create : unit -> t

val check_time : t -> now:float -> unit
(** Record an observation of the simulation clock.

    @raise Violation if [now] is NaN or precedes the last observation. *)

val check_engine : t -> Statsched_des.Engine.t -> unit
(** {!check_time} on [Engine.now] plus the event-heap order audit.

    @raise Violation on clock regression or a disordered heap. *)

val on_arrival : t -> unit
(** Count one job accepted into the system. *)

val on_completion : t -> unit
(** Count one job departing the system. *)

val on_drop : t -> unit
(** Count one job lost to a fault (the [Drop] on-failure policy). *)

val check_conservation : t -> in_system:int -> unit
(** Verify arrived = completed + [in_system] + dropped.

    @raise Violation when the books don't balance (a leaked or
    double-counted job). *)

val check_allocation :
  ?label:string ->
  ?saturation:bool ->
  rho:float ->
  speeds:float array ->
  float array ->
  unit
(** [check_allocation ~rho ~speeds alpha] verifies Theorem 1's
    feasibility conditions for an allocation the scheduler is about to
    use: every [αᵢ] finite and non-negative, [Σ αᵢ = 1] (within 1e-6),
    and [αᵢλ < sᵢμ] with [μ = 1], [λ = ρ·Σ sⱼ].  [label] names the
    computation site in the error message.

    [saturation] (default [true]) controls the [αᵢλ < sᵢμ] clause alone;
    pass [false] for allocations that are {e deliberately} computed from
    a mis-estimated load (Figure 6's sensitivity experiments saturate a
    computer on purpose) while still checking the probability-vector
    invariants.

    @raise Violation on any infeasibility. *)
