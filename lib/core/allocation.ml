let weighted s =
  Speeds.validate s;
  let sum = Speeds.total s in
  Array.map (fun x -> x /. sum) s

let check_rho rho =
  if not (0.0 < rho && rho < 1.0) then
    invalid_arg "Allocation: utilisation must satisfy 0 < rho < 1"

(* Suffix sums over the sorted speed vector: suffix_s.(i) = Σ_{j>=i} s_j,
   suffix_sqrt.(i) = Σ_{j>=i} √s_j.  Summing from the tail keeps the
   suffixes exact with respect to each other. *)
let suffixes sorted =
  let n = Array.length sorted in
  let suffix_s = Array.make (n + 1) 0.0 in
  let suffix_sqrt = Array.make (n + 1) 0.0 in
  for i = n - 1 downto 0 do
    suffix_s.(i) <- suffix_s.(i + 1) +. sorted.(i);
    suffix_sqrt.(i) <- suffix_sqrt.(i + 1) +. sqrt sorted.(i)
  done;
  (suffix_s, suffix_sqrt)

(* Theorem 2 condition at sorted index i (0-based): computer i is "too
   slow" when √s_i < (Σ_{j>=i} s_j − λ) / Σ_{j>=i} √s_j, with μ = 1. *)
let too_slow sorted suffix_s suffix_sqrt lambda i =
  sqrt sorted.(i) < (suffix_s.(i) -. lambda) /. suffix_sqrt.(i)

let cutoff_of_sorted sorted lambda =
  let suffix_s, suffix_sqrt = suffixes sorted in
  let n = Array.length sorted in
  (* Binary search for the largest index satisfying the condition, exactly
     as in Algorithm 1 (the satisfied indices are a prefix; see the
     footnote to Theorem 3). *)
  let lower = ref 0 and upper = ref (n - 1) in
  while !lower <= !upper do
    let mid = (!lower + !upper) / 2 in
    if too_slow sorted suffix_s suffix_sqrt lambda mid then lower := mid + 1
    else upper := mid - 1
  done;
  !lower

let prepare ~rho s =
  check_rho rho;
  Speeds.validate s;
  let lambda = rho *. Speeds.total s in
  let sorted, perm = Speeds.sort_with_permutation s in
  (lambda, sorted, perm)

let optimized_cutoff ~rho s =
  let lambda, sorted, _ = prepare ~rho s in
  cutoff_of_sorted sorted lambda

let cutoff_linear_scan ~rho s =
  let lambda, sorted, _ = prepare ~rho s in
  let suffix_s, suffix_sqrt = suffixes sorted in
  let n = Array.length sorted in
  let rec scan i =
    if i < n && too_slow sorted suffix_s suffix_sqrt lambda i then scan (i + 1) else i
  in
  scan 0

let optimized ~rho s =
  let lambda, sorted, perm = prepare ~rho s in
  let n = Array.length sorted in
  let m = cutoff_of_sorted sorted lambda in
  if m >= n then
    (* Impossible while rho < 1: the condition fails at the fastest
       computer because Σ_{j>=n-1} s_j − λ < s_{n-1}. *)
    invalid_arg "Allocation.optimized: cutoff removed every computer";
  let suffix_s, suffix_sqrt = suffixes sorted in
  (* α_i = (1/λ)(s_i − √s_i · (Σ' s_j − λ)/Σ' √s_j) over the surviving
     suffix (equation (5) with μ = 1). *)
  let scale = (suffix_s.(m) -. lambda) /. suffix_sqrt.(m) in
  let alpha_sorted =
    Array.init n (fun i ->
        if i < m then 0.0
        else (sorted.(i) -. (sqrt sorted.(i) *. scale)) /. lambda)
  in
  let alpha = Array.make n 0.0 in
  Array.iteri (fun k orig -> alpha.(orig) <- alpha_sorted.(k)) perm;
  alpha

let optimized_naive_clamp ~rho s =
  let lambda, _, _ = prepare ~rho s in
  let n = Array.length s in
  let sum_s = Speeds.total s in
  let sum_sqrt = Array.fold_left (fun acc x -> acc +. sqrt x) 0.0 s in
  let scale = (sum_s -. lambda) /. sum_sqrt in
  let raw = Array.map (fun si -> (si -. (sqrt si *. scale)) /. lambda) s in
  let clamped = Array.map (fun a -> max 0.0 a) raw in
  let total = Array.fold_left ( +. ) 0.0 clamped in
  if total <= 0.0 then weighted s
  else Array.init n (fun i -> clamped.(i) /. total)

let objective ~rho ~speeds ~alloc =
  check_rho rho;
  Speeds.validate speeds;
  if Array.length alloc <> Array.length speeds then
    invalid_arg "Allocation.objective: length mismatch";
  let lambda = rho *. Speeds.total speeds in
  let f = ref 0.0 in
  (try
     Array.iteri
       (fun i si ->
         let denom = si -. (alloc.(i) *. lambda) in
         if denom <= 0.0 then begin
           f := infinity;
           raise Exit
         end;
         f := !f +. (si /. denom))
       speeds
   with Exit -> ());
  !f

let theorem1_minimum ~rho s =
  check_rho rho;
  Speeds.validate s;
  let lambda = rho *. Speeds.total s in
  let sum_sqrt = Array.fold_left (fun acc x -> acc +. sqrt x) 0.0 s in
  sum_sqrt *. sum_sqrt /. (Speeds.total s -. lambda)

let is_feasible ?(tol = 1e-9) ~rho ~speeds alloc =
  check_rho rho;
  Array.length alloc = Array.length speeds
  && begin
       let lambda = rho *. Speeds.total speeds in
       let sum = Array.fold_left ( +. ) 0.0 alloc in
       abs_float (sum -. 1.0) <= tol
       && Array.for_all (fun a -> a >= -.tol) alloc
       && Array.for_all2 (fun a si -> (a *. lambda) < si) alloc speeds
     end
