(* Shared helpers for the test suite. *)

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.is_nan expected then
    Alcotest.(check bool) (msg ^ " (nan)") true (Float.is_nan actual)
  else if not (Float.is_finite expected) then
    Alcotest.(check bool) (msg ^ " (infinite)") true (expected = actual)
  else
    Alcotest.(check bool)
      (Printf.sprintf "%s: expected %.12g, got %.12g (eps %g)" msg expected actual eps)
      true
      (abs_float (expected -. actual) <= eps)

(* Relative tolerance comparison for simulation-vs-theory checks. *)
let check_close ?(rel = 0.05) msg expected actual =
  let err = abs_float (expected -. actual) /. max 1e-12 (abs_float expected) in
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected ~%.6g, got %.6g (rel err %.3g > %g)" msg expected
       actual err rel)
    true (err <= rel)

let check_array ?(eps = 1e-9) msg expected actual =
  Alcotest.(check int) (msg ^ ": length") (Array.length expected) (Array.length actual);
  Array.iteri (fun i e -> check_float ~eps (Printf.sprintf "%s[%d]" msg i) e actual.(i)) expected

let rng ?(seed = 7L) () = Statsched_prng.Rng.create ~seed ()

let test name f = Alcotest.test_case name `Quick f

let slow_test name f = Alcotest.test_case name `Slow f

let qcheck ?count name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ?count ~name gen prop)

(* Generator for a valid speed vector: 1-12 computers, speeds in [0.1, 32]. *)
let speeds_gen =
  QCheck2.Gen.(
    let speed = map (fun x -> 0.1 +. (31.9 *. x)) (float_bound_inclusive 1.0) in
    map Array.of_list (list_size (int_range 1 12) speed))

(* Utilisation strictly inside (0, 1), kept away from the edges. *)
let rho_gen = QCheck2.Gen.(map (fun x -> 0.02 +. (0.96 *. x)) (float_bound_inclusive 1.0))
