module Rng = Statsched_prng.Rng

let create ~shape ~scale =
  if shape <= 0.0 then invalid_arg "Weibull.create: shape <= 0";
  if scale <= 0.0 then invalid_arg "Weibull.create: scale <= 0";
  (* Γ-moments via log-gamma: small shapes need Γ(1 + 2/shape) at large
     arguments, where the product-form Lanczos overflowed prematurely
     (shape < ~0.0143 reported an infinite variance that is actually
     representable).  [expm1] keeps the variance accurate for large
     shapes too, where Γ(1+2/k) − Γ(1+1/k)² is a near-cancellation;
     Cauchy–Schwarz gives Γ(1+2/k) ≥ Γ(1+1/k)², so the exponent is ≤ 0
     and the result never goes negative. *)
  let lg1 = Special.log_gamma (1.0 +. (1.0 /. shape)) in
  let lg2 = Special.log_gamma (1.0 +. (2.0 /. shape)) in
  let mean = scale *. exp lg1 in
  let variance = -.(scale *. scale *. exp lg2 *. expm1 ((2.0 *. lg1) -. lg2)) in
  Distribution.make
    ~name:(Printf.sprintf "Weibull(%g,%g)" shape scale)
    ~mean ~variance
    (fun g -> scale *. ((-.log (1.0 -. Rng.float g)) ** (1.0 /. shape)))
