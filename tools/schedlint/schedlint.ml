(* schedlint — repo-specific static analysis for determinism & correctness.

   Parses every .ml file under the given roots (default: lib bin bench)
   with compiler-libs and enforces:

     R1  no Stdlib.Random outside lib/prng/ (determinism: all randomness
         must flow through the seeded, splittable Statsched_prng.Rng)
     R2  no wall-clock reads (Unix.time, Unix.gettimeofday, Sys.time) —
         simulated time comes from the DES engine only
     R3  no polymorphic equality on floats (a float literal or a
         [(e : float)] operand under [=]/[<>]), and no [==]/[!=] at all
     R4  no partial functions (List.hd, List.tl, Option.get, Obj.magic)
         in lib/
     R5  no top-level mutable state ([let x = ref ...] or
         [let x = Hashtbl.create ...] at module top) in lib/
     R6  no Domain.spawn outside lib/par/ (all parallelism goes through
         the Par domain pool so the determinism guarantee has a single
         point of proof)

   A diagnostic can be suppressed with a comment on the same line or the
   line directly above:  (* schedlint: allow R3 *)   (or "allow all").

   Exit codes: 0 clean, 1 violations found, 2 parse/IO error. *)

let usage = "schedlint [FILE-OR-DIR ...]   (default roots: lib bin bench)"

type diag = { file : string; line : int; col : int; rule : string; msg : string }

(* ------------------------------------------------------------------ *)
(* Path scoping                                                        *)

let components path =
  List.filter (fun c -> c <> "" && c <> ".") (String.split_on_char '/' path)

let in_lib file = List.mem "lib" (components file)

let in_prng file =
  let rec scan = function
    | "lib" :: "prng" :: _ -> true
    | _ :: rest -> scan rest
    | [] -> false
  in
  scan (components file)

let in_par file =
  let rec scan = function
    | "lib" :: "par" :: _ -> true
    | _ :: rest -> scan rest
    | [] -> false
  in
  scan (components file)

(* ------------------------------------------------------------------ *)
(* Escape hatch: "(* schedlint: allow R3 *)" on the offending line or
   the line directly above it.                                         *)

let contains_at haystack needle i =
  let n = String.length needle in
  i + n <= String.length haystack && String.sub haystack i n = needle

let find_substring haystack needle =
  let n = String.length haystack in
  let rec go i = if i >= n then None else if contains_at haystack needle i then Some i else go (i + 1) in
  go 0

let marker = "schedlint: allow"

(* [allows source] maps a 1-based line number to the rules allowed there. *)
let allows source =
  let tbl = Hashtbl.create 8 in
  let lines = String.split_on_char '\n' source in
  List.iteri
    (fun i line ->
      match find_substring line marker with
      | None -> ()
      | Some j ->
        let rest = String.sub line (j + String.length marker) (String.length line - j - String.length marker) in
        let words =
          String.split_on_char ' ' (String.map (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9') as c -> c | _ -> ' ') rest)
        in
        let rules =
          List.filter_map
            (fun w ->
              match String.lowercase_ascii w with
              | ("r1" | "r2" | "r3" | "r4" | "r5" | "r6" | "all") as r -> Some r
              | _ -> None)
            words
        in
        if rules <> [] then Hashtbl.replace tbl (i + 1) rules)
    lines;
  tbl

let allowed tbl ~line rule =
  let covers l =
    match Hashtbl.find_opt tbl l with
    | None -> false
    | Some rules -> List.mem "all" rules || List.mem (String.lowercase_ascii rule) rules
  in
  covers line || covers (line - 1)

(* ------------------------------------------------------------------ *)
(* AST checks                                                          *)

let flatten lid = try Longident.flatten lid with Misc.Fatal_error -> []

let drop_stdlib = function "Stdlib" :: rest -> rest | path -> path

let r2_banned =
  [
    ([ "Unix"; "time" ], "Unix.time");
    ([ "Unix"; "gettimeofday" ], "Unix.gettimeofday");
    ([ "Sys"; "time" ], "Sys.time");
  ]

let r4_banned =
  [
    ([ "List"; "hd" ], "List.hd");
    ([ "List"; "tl" ], "List.tl");
    ([ "Option"; "get" ], "Option.get");
    ([ "Obj"; "magic" ], "Obj.magic");
  ]

let rec is_floatish (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_constraint (_, { ptyp_desc = Ptyp_constr ({ txt; _ }, []); _ }) -> (
    match drop_stdlib (flatten txt) with [ "float" ] -> true | _ -> false)
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Lident ("~-." | "~+."); _ }; _ },
        [ (Asttypes.Nolabel, operand) ] ) ->
    is_floatish operand
  | _ -> false

let lint_structure ~file ~report structure =
  let pos_of (loc : Location.t) =
    (loc.loc_start.Lexing.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)
  in
  let check_expr iter (e : Parsetree.expression) =
    let line, col = pos_of e.pexp_loc in
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
      let path = drop_stdlib (flatten txt) in
      (match path with
      | "Random" :: _ when not (in_prng file) ->
        report { file; line; col; rule = "R1";
                 msg = "Stdlib.Random is non-deterministic here; draw from Statsched_prng.Rng" }
      | _ -> ());
      (match path with
      | [ "Domain"; "spawn" ] when not (in_par file) ->
        report { file; line; col; rule = "R6";
                 msg = "Domain.spawn outside lib/par; fan out through Statsched_par.Par.map" }
      | _ -> ());
      (match List.assoc_opt path r2_banned with
      | Some name ->
        report { file; line; col; rule = "R2";
                 msg = name ^ " reads the wall clock; simulated time comes from Engine.now" }
      | None -> ());
      (match List.assoc_opt path r4_banned with
      | Some name when in_lib file ->
        report { file; line; col; rule = "R4";
                 msg = name ^ " is partial; match explicitly or keep the invariant in the type" }
      | Some _ | None -> ());
      match path with
      | [ (("==" | "!=") as op) ] ->
        report { file; line; col; rule = "R3";
                 msg = "physical equality (" ^ op ^ ") outside physical-identity idioms" }
      | _ -> ())
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Lident (("=" | "<>") as op); _ }; _ },
          [ (Asttypes.Nolabel, a); (Asttypes.Nolabel, b) ] )
      when is_floatish a || is_floatish b ->
      report { file; line; col; rule = "R3";
               msg = "polymorphic " ^ op ^ " on a float; compare with a tolerance or Float.equal" }
    | _ -> ());
    Ast_iterator.default_iterator.expr iter e
  in
  let check_structure_item iter (si : Parsetree.structure_item) =
    (match si.pstr_desc with
    | Pstr_value (_, bindings) when in_lib file ->
      List.iter
        (fun (vb : Parsetree.value_binding) ->
          match vb.pvb_expr.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
            let line, col = pos_of vb.pvb_loc in
            match drop_stdlib (flatten txt) with
            | [ "ref" ] ->
              report { file; line; col; rule = "R5";
                       msg = "top-level mutable state (ref) in lib/; thread state through a record" }
            | [ "Hashtbl"; "create" ] ->
              report { file; line; col; rule = "R5";
                       msg = "top-level mutable state (Hashtbl) in lib/; thread state through a record" }
            | _ -> ())
          | _ -> ())
        bindings
    | _ -> ());
    Ast_iterator.default_iterator.structure_item iter si
  in
  let iterator =
    { Ast_iterator.default_iterator with expr = check_expr; structure_item = check_structure_item }
  in
  iterator.structure iterator structure

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file file =
  let source = read_file file in
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  let structure = Parse.implementation lexbuf in
  let allow_tbl = allows source in
  let diags = ref [] in
  let report d = if not (allowed allow_tbl ~line:d.line d.rule) then diags := d :: !diags in
  lint_structure ~file ~report structure;
  List.rev !diags

let rec collect_ml_files acc path =
  if Sys.is_directory path then
    let entries = Sys.readdir path in
    Array.sort compare entries;
    Array.fold_left
      (fun acc entry ->
        if entry = "" || entry.[0] = '.' || entry = "_build" then acc
        else collect_ml_files acc (Filename.concat path entry))
      acc entries
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let () =
  let args = match Array.to_list Sys.argv with _ :: rest -> rest | [] -> [] in
  (match args with
  | [ ("-h" | "-help" | "--help") ] ->
    print_endline usage;
    exit 0
  | _ -> ());
  let roots = if args = [] then [ "lib"; "bin"; "bench" ] else args in
  let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
  if missing <> [] then begin
    List.iter (fun r -> Printf.eprintf "schedlint: no such file or directory: %s\n" r) missing;
    exit 2
  end;
  let files = List.rev (List.fold_left collect_ml_files [] roots) in
  let parse_errors = ref 0 in
  let diags =
    List.concat_map
      (fun file ->
        match lint_file file with
        | diags -> diags
        | exception exn ->
          incr parse_errors;
          (try Location.report_exception Format.err_formatter exn
           with _ -> Printf.eprintf "schedlint: %s: %s\n" file (Printexc.to_string exn));
          [])
      files
  in
  let diags =
    List.sort
      (fun a b ->
        match compare a.file b.file with
        | 0 -> (match compare a.line b.line with 0 -> compare a.col b.col | c -> c)
        | c -> c)
      diags
  in
  List.iter
    (fun d -> Printf.printf "%s:%d:%d: [%s] %s\n" d.file d.line (d.col + 1) d.rule d.msg)
    diags;
  if !parse_errors > 0 then exit 2;
  if diags <> [] then begin
    Printf.eprintf "schedlint: %d violation%s in %d file%s scanned\n" (List.length diags)
      (if List.length diags = 1 then "" else "s")
      (List.length files)
      (if List.length files = 1 then "" else "s");
    exit 1
  end
