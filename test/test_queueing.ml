open Test_util
module Engine = Statsched_des.Engine
module Q = Statsched_queueing
module Job = Q.Job
module Rng = Statsched_prng.Rng

let job_basics () =
  let j = Job.create ~id:1 ~size:10.0 ~arrival:5.0 in
  Alcotest.(check bool) "not completed" false (Job.is_completed j);
  j.Job.completion <- 25.0;
  Alcotest.(check bool) "completed" true (Job.is_completed j);
  check_float "response time" 20.0 (Job.response_time j);
  check_float "response ratio" 2.0 (Job.response_ratio j)

let job_validation () =
  Alcotest.check_raises "size <= 0" (Invalid_argument "Job.create: size <= 0")
    (fun () -> ignore (Job.create ~id:1 ~size:0.0 ~arrival:0.0));
  Alcotest.check_raises "negative arrival" (Invalid_argument "Job.create: arrival < 0")
    (fun () -> ignore (Job.create ~id:1 ~size:1.0 ~arrival:(-1.0)));
  let j = Job.create ~id:1 ~size:1.0 ~arrival:0.0 in
  Alcotest.check_raises "response before completion"
    (Invalid_argument "Job.response_time: not completed") (fun () ->
      ignore (Job.response_time j))

(* Drive a server implementation with an explicit trace of
   (arrival_time, size) and return the completed jobs in completion
   order. *)
let drive ~make_server trace =
  let engine = Engine.create () in
  let completed = ref [] in
  let server = make_server ~engine ~on_departure:(fun j -> completed := j :: !completed) in
  List.iteri
    (fun i (at, size) ->
      ignore
        (Engine.schedule_at engine ~time:at (fun _ ->
             server.Q.Server_intf.submit (Job.create ~id:i ~size ~arrival:at))))
    trace;
  Engine.run engine;
  List.rev !completed

let ps ?(speed = 1.0) () ~engine ~on_departure =
  Q.Ps_server.to_server (Q.Ps_server.create ~engine ~speed ~on_departure ())

let rr ?(speed = 1.0) ?(quantum = 0.001) () ~engine ~on_departure =
  Q.Rr_server.to_server (Q.Rr_server.create ~engine ~speed ~quantum ~on_departure ())

let fcfs ?(speed = 1.0) () ~engine ~on_departure =
  Q.Fcfs_server.to_server (Q.Fcfs_server.create ~engine ~speed ~on_departure ())

let ps_lone_job () =
  (* A single job on an idle server finishes after size/speed. *)
  let jobs = drive ~make_server:(ps ~speed:2.0 ()) [ (1.0, 10.0) ] in
  match jobs with
  | [ j ] ->
    check_float ~eps:1e-9 "completion" 6.0 j.Job.completion;
    check_float ~eps:1e-9 "start" 1.0 j.Job.start
  | _ -> Alcotest.fail "expected one job"

let ps_two_equal_jobs_share () =
  (* Two size-10 jobs arriving together on speed 1: each runs at rate 1/2,
     both finish at t = 20. *)
  let jobs = drive ~make_server:(ps ()) [ (0.0, 10.0); (0.0, 10.0) ] in
  match jobs with
  | [ a; b ] ->
    check_float ~eps:1e-6 "first completion" 20.0 a.Job.completion;
    check_float ~eps:1e-6 "second completion" 20.0 b.Job.completion
  | _ -> Alcotest.fail "expected two jobs"

let ps_short_job_preempts () =
  (* Size-10 job at t=0; size-2 job at t=4.  From t=4 both share: the
     short job needs 2 units at rate 1/2 -> finishes at t=8.  The long job
     has 6 remaining at t=4, gets 2 by t=8, then runs alone: finishes at
     t=12. *)
  let jobs = drive ~make_server:(ps ()) [ (0.0, 10.0); (4.0, 2.0) ] in
  match List.sort (fun a b -> compare a.Job.completion b.Job.completion) jobs with
  | [ short; long ] ->
    check_float ~eps:1e-6 "short job completion" 8.0 short.Job.completion;
    check_float ~eps:1e-6 "long job completion" 12.0 long.Job.completion
  | _ -> Alcotest.fail "expected two jobs"

let ps_three_way_sharing () =
  (* Hand-computed: jobs (t=0, size 6), (t=0, size 3), (t=3, size 1).
     [0,3): two jobs at rate 1/2 -> remaining 4.5 and 1.5.
     [3,?): three jobs at rate 1/3. Job3 (1.0) finishes after 3 units:
     t=6; job2 has 1.5-1=0.5 left, finishes at 6 + 0.5*2 = 7; job1 has
     4.5-1-0.5=3 left at t=7... let me recompute: at t=6: job1 4.5-1=3.5,
     job2 0.5. [6,7): two jobs rate 1/2, job2 done at t=7, job1 3.0 left.
     [7,10): alone, done at t=10. *)
  let jobs = drive ~make_server:(ps ()) [ (0.0, 6.0); (0.0, 3.0); (3.0, 1.0) ] in
  let by_size s = List.find (fun j -> j.Job.size = s) jobs in
  check_float ~eps:1e-6 "size-1 job" 6.0 (by_size 1.0).Job.completion;
  check_float ~eps:1e-6 "size-3 job" 7.0 (by_size 3.0).Job.completion;
  check_float ~eps:1e-6 "size-6 job" 10.0 (by_size 6.0).Job.completion

let ps_work_conservation () =
  (* Work done equals total size once everything completes. *)
  let engine = Engine.create () in
  let server = Q.Ps_server.create ~engine ~speed:3.0 ~on_departure:(fun _ -> ()) () in
  let total = ref 0.0 in
  let g = rng () in
  for i = 1 to 200 do
    let at = Rng.float g *. 100.0 in
    let size = 0.1 +. (Rng.float g *. 5.0) in
    total := !total +. size;
    ignore
      (Engine.schedule_at engine ~time:at (fun _ ->
           Q.Ps_server.submit server (Job.create ~id:i ~size ~arrival:at)))
  done;
  Engine.run engine;
  Alcotest.(check int) "all jobs completed" 200 (Q.Ps_server.completed server);
  check_close ~rel:1e-6 "work conservation" !total (Q.Ps_server.work_done server);
  Alcotest.(check int) "server drained" 0 (Q.Ps_server.in_system server)

let ps_utilization () =
  (* One job of size 5 on speed 1, observed over [0, 10): utilization 0.5. *)
  let engine = Engine.create () in
  let server = Q.Ps_server.create ~engine ~speed:1.0 ~on_departure:(fun _ -> ()) () in
  ignore
    (Engine.schedule_at engine ~time:0.0 (fun _ ->
         Q.Ps_server.submit server (Job.create ~id:1 ~size:5.0 ~arrival:0.0)));
  Engine.run ~until:10.0 engine;
  check_float ~eps:1e-9 "busy half the time" 0.5 (Q.Ps_server.utilization server)

let ps_reset_stats () =
  let engine = Engine.create () in
  let server = Q.Ps_server.create ~engine ~speed:1.0 ~on_departure:(fun _ -> ()) () in
  ignore
    (Engine.schedule_at engine ~time:0.0 (fun _ ->
         Q.Ps_server.submit server (Job.create ~id:1 ~size:2.0 ~arrival:0.0)));
  Engine.run ~until:2.0 engine;
  Q.Ps_server.reset_stats server;
  Engine.run ~until:4.0 engine;
  Alcotest.(check int) "completed counter reset" 0 (Q.Ps_server.completed server);
  check_float ~eps:1e-9 "idle after reset" 0.0 (Q.Ps_server.utilization server)

let ps_invalid_speed () =
  let engine = Engine.create () in
  Alcotest.check_raises "speed <= 0" (Invalid_argument "Ps_server.create: speed <= 0")
    (fun () ->
      ignore (Q.Ps_server.create ~engine ~speed:0.0 ~on_departure:(fun _ -> ()) ()))

let fcfs_ordering () =
  (* FCFS: jobs complete strictly in arrival order. *)
  let jobs =
    drive ~make_server:(fcfs ~speed:2.0 ()) [ (0.0, 4.0); (0.5, 1.0); (1.0, 1.0) ]
  in
  match jobs with
  | [ a; b; c ] ->
    check_float ~eps:1e-9 "first done at 2" 2.0 a.Job.completion;
    check_float ~eps:1e-9 "second done at 2.5" 2.5 b.Job.completion;
    check_float ~eps:1e-9 "third done at 3" 3.0 c.Job.completion
  | _ -> Alcotest.fail "expected three jobs"

let fcfs_head_of_line_blocking () =
  (* The PS advantage the paper assumes: under FCFS a tiny job behind a
     huge one waits; under PS it overtakes. *)
  let trace = [ (0.0, 100.0); (1.0, 1.0) ] in
  let small_of jobs = List.find (fun j -> j.Job.size = 1.0) jobs in
  let fcfs_small = small_of (drive ~make_server:(fcfs ()) trace) in
  let ps_small = small_of (drive ~make_server:(ps ()) trace) in
  Alcotest.(check bool)
    (Printf.sprintf "PS %.1f beats FCFS %.1f for the small job"
       ps_small.Job.completion fcfs_small.Job.completion)
    true
    (ps_small.Job.completion < fcfs_small.Job.completion /. 10.0)

let rr_single_job () =
  let jobs = drive ~make_server:(rr ~speed:2.0 ~quantum:0.5 ()) [ (0.0, 10.0) ] in
  match jobs with
  | [ j ] -> check_float ~eps:1e-9 "runs at full speed alone" 5.0 j.Job.completion
  | _ -> Alcotest.fail "expected one job"

let rr_interleaving () =
  (* Two size-2 jobs, quantum 1, speed 1: slices A B A B; A done at t=3,
     B at t=4. *)
  let jobs = drive ~make_server:(rr ~quantum:1.0 ()) [ (0.0, 2.0); (0.0, 2.0) ] in
  match jobs with
  | [ a; b ] ->
    check_float ~eps:1e-9 "first job" 3.0 a.Job.completion;
    check_float ~eps:1e-9 "second job" 4.0 b.Job.completion
  | _ -> Alcotest.fail "expected two jobs"

let rr_converges_to_ps () =
  (* With a small quantum the RR completion times approach PS on the same
     trace. *)
  let g = rng () in
  let trace =
    List.init 40 (fun _ ->
        (Rng.float g *. 50.0, 0.5 +. (Rng.float g *. 4.0)))
  in
  let trace = List.sort compare trace in
  let ps_jobs = drive ~make_server:(ps ()) trace in
  let rr_jobs = drive ~make_server:(rr ~quantum:0.01 ()) trace in
  let completion_by_id jobs =
    let tbl = Hashtbl.create 64 in
    List.iter (fun j -> Hashtbl.replace tbl j.Job.id j.Job.completion) jobs;
    tbl
  in
  let ps_c = completion_by_id ps_jobs and rr_c = completion_by_id rr_jobs in
  Alcotest.(check int) "same job count" (List.length ps_jobs) (List.length rr_jobs);
  Hashtbl.iter
    (fun id pc ->
      let rc = Hashtbl.find rr_c id in
      Alcotest.(check bool)
        (Printf.sprintf "job %d: PS %.3f vs RR %.3f" id pc rc)
        true
        (abs_float (pc -. rc) < 0.6))
    ps_c

let rr_work_conservation () =
  let engine = Engine.create () in
  let server =
    Q.Rr_server.create ~engine ~speed:1.0 ~quantum:0.25 ~on_departure:(fun _ -> ()) ()
  in
  let total = ref 0.0 in
  for i = 1 to 50 do
    let size = 0.3 +. (0.1 *. float_of_int i) in
    total := !total +. size;
    ignore
      (Engine.schedule_at engine ~time:(float_of_int i) (fun _ ->
           Q.Rr_server.submit server (Job.create ~id:i ~size ~arrival:(float_of_int i))))
  done;
  Engine.run engine;
  Alcotest.(check int) "all complete" 50 (Q.Rr_server.completed server);
  check_close ~rel:1e-6 "work conserved" !total (Q.Rr_server.work_done server)

let server_intf_coercion () =
  let engine = Engine.create () in
  let s = Q.Ps_server.to_server (Q.Ps_server.create ~engine ~speed:2.5 ~on_departure:(fun _ -> ()) ()) in
  check_float "speed exposed" 2.5 s.Q.Server_intf.speed;
  Alcotest.(check string) "discipline" "PS" s.Q.Server_intf.discipline;
  let f = Q.Fcfs_server.to_server (Q.Fcfs_server.create ~engine ~speed:1.0 ~on_departure:(fun _ -> ()) ()) in
  Alcotest.(check string) "fcfs discipline" "FCFS" f.Q.Server_intf.discipline

(* M/G/1-PS insensitivity: mean response time depends on the size
   distribution only through its mean: T = 1/(mu - lambda).  Check for
   exponential sizes against theory. *)
let mm1_ps_theory ?(rho = 0.6) ?(horizon = 150_000.0) ~size_dist () =
  let engine = Engine.create () in
  let g = rng ~seed:99L () in
  let mean_size = Statsched_dist.Distribution.mean size_dist in
  let lambda = rho /. mean_size in
  let w = Statsched_stats.Welford.create () in
  let warmup = horizon /. 5.0 in
  let server =
    Q.Ps_server.create ~engine ~speed:1.0
      ~on_departure:(fun j ->
        if j.Job.arrival >= warmup then Statsched_stats.Welford.add w (Job.response_time j))
      ()
  in
  let id = ref 0 in
  let rec arrive () =
    let gap = Statsched_dist.Exponential.sample ~rate:lambda g in
    ignore
      (Engine.schedule engine ~delay:gap (fun e ->
           incr id;
           let size = Statsched_dist.Distribution.sample size_dist g in
           Q.Ps_server.submit server (Job.create ~id:!id ~size ~arrival:(Engine.now e));
           arrive ()))
  in
  arrive ();
  Engine.run ~until:horizon engine;
  let expected = mean_size /. (1.0 -. rho) in
  check_close ~rel:0.08 "M/G/1-PS mean response time" expected
    (Statsched_stats.Welford.mean w)

let theory_saturation_and_domain () =
  let module T = Q.Theory in
  let is_nan = Float.is_nan in
  (* rho >= 1: every mean diverges to +infinity, never a negative time. *)
  List.iter
    (fun lambda ->
      check_float "fcfs saturated" infinity
        (T.mm1_fcfs_response ~lambda ~mean_size:1.0 ~speed:1.0);
      check_float "pk saturated" infinity
        (T.mg1_fcfs_response ~lambda ~mean_size:1.0 ~scv:4.0 ~speed:1.0);
      check_float "ps saturated" infinity
        (T.mg1_ps_response ~lambda ~mean_size:1.0 ~speed:1.0);
      check_float "slowdown saturated" infinity
        (T.mg1_ps_mean_slowdown ~lambda ~mean_size:1.0 ~speed:1.0);
      check_float "L saturated" infinity
        (T.mm1_number_in_system ~lambda ~mean_size:1.0 ~speed:1.0))
    [ 1.0; 1.5; 40.0 ];
  (* Regression: out-of-domain inputs answered negative "times" before
     the audit (e.g. mean_size = -1 gave -1/3 here); they are nan now. *)
  Alcotest.(check bool) "negative mean size is nan" true
    (is_nan (T.mm1_fcfs_response ~lambda:2.0 ~mean_size:(-1.0) ~speed:1.0));
  Alcotest.(check bool) "negative lambda is nan" true
    (is_nan (T.mg1_ps_response ~lambda:(-0.5) ~mean_size:1.0 ~speed:1.0));
  Alcotest.(check bool) "zero speed is nan" true
    (is_nan (T.mm1_number_in_system ~lambda:0.5 ~mean_size:1.0 ~speed:0.0));
  Alcotest.(check bool) "negative scv is nan" true
    (is_nan (T.mg1_fcfs_response ~lambda:0.5 ~mean_size:1.0 ~scv:(-0.5) ~speed:1.0));
  Alcotest.(check bool) "nan lambda propagates" true
    (is_nan (T.mg1_ps_mean_slowdown ~lambda:nan ~mean_size:1.0 ~speed:1.0));
  (* An idle queue is fine: lambda = 0 gives the bare service time. *)
  check_float "lambda = 0 fcfs" 2.0
    (T.mm1_fcfs_response ~lambda:0.0 ~mean_size:2.0 ~speed:1.0);
  check_float "lambda = 0 L" 0.0
    (T.mm1_number_in_system ~lambda:0.0 ~mean_size:2.0 ~speed:1.0)

let theory_breakdown_degenerate () =
  let module T = Q.Theory in
  let at ~mtbf ~mttr =
    T.mm1_breakdown_response ~lambda:0.5 ~mean_size:1.0 ~speed:1.0 ~mtbf ~mttr
  in
  (* Regression: non-positive mtbf/mttr raised Invalid_argument before
     the audit; the module contract is now uniformly nan. *)
  List.iter
    (fun (mtbf, mttr) ->
      Alcotest.(check bool)
        (Printf.sprintf "mtbf=%g mttr=%g is nan" mtbf mttr)
        true
        (Float.is_nan (at ~mtbf ~mttr)))
    [ (0.0, 10.0); (-5.0, 10.0); (100.0, 0.0); (100.0, -1.0); (nan, 10.0); (100.0, nan) ];
  Alcotest.(check bool) "breakdown negative lambda is nan" true
    (Float.is_nan
       (T.mm1_breakdown_response ~lambda:(-1.0) ~mean_size:1.0 ~speed:1.0
          ~mtbf:100.0 ~mttr:10.0));
  (* Healthy inputs still give the Avi-Itzhak-Naor value, strictly above
     the reliable M/M/1. *)
  let broken = at ~mtbf:200.0 ~mttr:10.0 in
  Alcotest.(check bool) "breakdowns cost something" true (broken > 2.0);
  Alcotest.(check bool) "finite when stable" true (Float.is_finite broken)

let suite =
  [
    test "job: response metrics" job_basics;
    test "job: validation" job_validation;
    test "ps: lone job" ps_lone_job;
    test "ps: equal jobs share equally" ps_two_equal_jobs_share;
    test "ps: short job overtakes" ps_short_job_preempts;
    test "ps: three-way sharing trace" ps_three_way_sharing;
    test "ps: work conservation" ps_work_conservation;
    test "ps: utilization accounting" ps_utilization;
    test "ps: reset statistics" ps_reset_stats;
    test "ps: invalid speed" ps_invalid_speed;
    test "fcfs: completion order" fcfs_ordering;
    test "fcfs vs ps: head-of-line blocking" fcfs_head_of_line_blocking;
    test "rr: single job full speed" rr_single_job;
    test "rr: quantum interleaving" rr_interleaving;
    slow_test "rr: converges to ps as quantum -> 0" rr_converges_to_ps;
    test "rr: work conservation" rr_work_conservation;
    test "server interface coercion" server_intf_coercion;
    test "theory: saturation and domain edges" theory_saturation_and_domain;
    test "theory: degenerate breakdown inputs" theory_breakdown_degenerate;
    slow_test "m/m/1-ps matches theory" (fun () ->
        mm1_ps_theory ~size_dist:(Statsched_dist.Exponential.of_mean 2.0) ());
    slow_test "m/g/1-ps insensitivity (erlang sizes)" (fun () ->
        mm1_ps_theory ~size_dist:(Statsched_dist.Erlang.create ~k:3 ~rate:1.5) ());
    slow_test "m/g/1-ps insensitivity (hyperexponential sizes)" (fun () ->
        mm1_ps_theory
          ~size_dist:(Statsched_dist.Hyperexponential.fit_cv ~mean:2.0 ~cv:2.5)
          ());
  ]

(* ------------------------------------------------------------------ *)
(* SRPT server                                                         *)

let srpt ?(speed = 1.0) () ~engine ~on_departure =
  Q.Srpt_server.to_server (Q.Srpt_server.create ~engine ~speed ~on_departure ())

let srpt_lone_job () =
  let jobs = drive ~make_server:(srpt ~speed:2.0 ()) [ (1.0, 10.0) ] in
  match jobs with
  | [ j ] -> check_float ~eps:1e-9 "size/speed" 6.0 j.Job.completion
  | _ -> Alcotest.fail "expected one job"

let srpt_preemption_trace () =
  (* Size-10 at t=0; size-2 at t=3.  SRPT preempts (2 < 7 remaining):
     short done at t=5; long resumes, 7 left, done at t=12. *)
  let jobs = drive ~make_server:(srpt ()) [ (0.0, 10.0); (3.0, 2.0) ] in
  let by_size s = List.find (fun j -> j.Job.size = s) jobs in
  check_float ~eps:1e-9 "short job" 5.0 (by_size 2.0).Job.completion;
  check_float ~eps:1e-9 "long job" 12.0 (by_size 10.0).Job.completion

let srpt_no_preemption_when_larger () =
  (* Size-3 at t=0; size-5 at t=1: no preemption (5 > 2 remaining);
     first done at 3, second at 8. *)
  let jobs = drive ~make_server:(srpt ()) [ (0.0, 3.0); (1.0, 5.0) ] in
  let by_size s = List.find (fun j -> j.Job.size = s) jobs in
  check_float ~eps:1e-9 "runner unaffected" 3.0 (by_size 3.0).Job.completion;
  check_float ~eps:1e-9 "larger waits" 8.0 (by_size 5.0).Job.completion

let srpt_runs_smallest_remaining () =
  (* Three jobs together: completion order is by size. *)
  let jobs = drive ~make_server:(srpt ()) [ (0.0, 5.0); (0.0, 1.0); (0.0, 3.0) ] in
  let order = List.map (fun j -> j.Job.size) jobs in
  Alcotest.(check (list (float 0.0))) "smallest first" [ 1.0; 3.0; 5.0 ] order

let srpt_work_conservation () =
  let engine = Engine.create () in
  let server = Q.Srpt_server.create ~engine ~speed:2.0 ~on_departure:(fun _ -> ()) () in
  let g = rng () in
  let total = ref 0.0 in
  for i = 1 to 300 do
    let at = Rng.float g *. 200.0 in
    let size = 0.1 +. (Rng.float g *. 3.0) in
    total := !total +. size;
    ignore
      (Engine.schedule_at engine ~time:at (fun _ ->
           Q.Srpt_server.submit server (Job.create ~id:i ~size ~arrival:at)))
  done;
  Engine.run engine;
  Alcotest.(check int) "all complete" 300 (Q.Srpt_server.completed server);
  check_close ~rel:1e-6 "work conserved" !total (Q.Srpt_server.work_done server);
  Alcotest.(check int) "drained" 0 (Q.Srpt_server.in_system server)

let srpt_beats_ps_on_mean_response_time () =
  (* SRPT is optimal for mean response time: on the same arrival trace it
     must not lose to PS. *)
  let g = rng ~seed:77L () in
  let trace =
    List.sort compare
      (List.init 500 (fun _ ->
           (Rng.float g *. 2000.0, 0.2 +. (Rng.float g *. 6.0))))
  in
  let mean_rt jobs =
    List.fold_left (fun acc j -> acc +. Job.response_time j) 0.0 jobs
    /. float_of_int (List.length jobs)
  in
  let t_srpt = mean_rt (drive ~make_server:(srpt ()) trace) in
  let t_ps = mean_rt (drive ~make_server:(ps ()) trace) in
  Alcotest.(check bool)
    (Printf.sprintf "SRPT %.3f <= PS %.3f" t_srpt t_ps)
    true
    (t_srpt <= t_ps +. 1e-9)

let srpt_discipline_in_simulation () =
  let speeds = [| 2.0 |] in
  let workload =
    Statsched_cluster.Workload.paper_default ~rho:0.6 ~speeds
  in
  let run discipline =
    let cfg =
      Statsched_cluster.Simulation.default_config ~discipline ~horizon:200_000.0
        ~speeds ~workload
        ~scheduler:(Statsched_cluster.Scheduler.static Statsched_core.Policy.wrr) ()
    in
    (Statsched_cluster.Simulation.run cfg).Statsched_cluster.Simulation.metrics
      .Statsched_core.Metrics.mean_response_time
  in
  let t_srpt = run Statsched_cluster.Simulation.Srpt in
  let t_fcfs = run Statsched_cluster.Simulation.Fcfs in
  Alcotest.(check bool)
    (Printf.sprintf "SRPT %.1f crushes FCFS %.1f under heavy tails" t_srpt t_fcfs)
    true
    (t_srpt < t_fcfs /. 2.0)

let srpt_suite =
  [
    test "srpt: lone job" srpt_lone_job;
    test "srpt: preemption trace" srpt_preemption_trace;
    test "srpt: larger arrival does not preempt" srpt_no_preemption_when_larger;
    test "srpt: completion order by size" srpt_runs_smallest_remaining;
    test "srpt: work conservation" srpt_work_conservation;
    slow_test "srpt: never loses to ps on mean response time"
      srpt_beats_ps_on_mean_response_time;
    slow_test "srpt: crushes fcfs under heavy tails (simulation)"
      srpt_discipline_in_simulation;
  ]

let suite = suite @ srpt_suite
