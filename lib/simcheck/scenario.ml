module Core = Statsched_core
module Cluster = Statsched_cluster
module Dist = Statsched_dist
module E = Statsched_experiments

(* ------------------------------------------------------------------ *)
(* Schedulers (shared with bin/schedsim)                               *)

let scheduler_names =
  [ "wran"; "oran"; "wrr"; "orr"; "least-load"; "two-choices"; "adaptive-orr";
    "sita"; "jsq-d"; "jsq-d-uniform"; "jiq" ]

let scheduler_of_name ?(d = 2) name =
  match name with
  | "wran" -> Cluster.Scheduler.static Core.Policy.wran
  | "oran" -> Cluster.Scheduler.static Core.Policy.oran
  | "wrr" -> Cluster.Scheduler.static Core.Policy.wrr
  | "orr" -> Cluster.Scheduler.static Core.Policy.orr
  | "least-load" -> Cluster.Scheduler.least_load_paper
  | "two-choices" -> Cluster.Scheduler.two_choices ~d ()
  | "adaptive-orr" -> Cluster.Scheduler.adaptive_orr ()
  | "sita" -> Cluster.Scheduler.sita_paper ()
  | "jsq-d" -> Cluster.Scheduler.jsq ~d ()
  (* The pre-PR-10 uniform probe sampler, kept addressable so recorded
     counterexamples from older runs still replay bit-identically. *)
  | "jsq-d-uniform" -> Cluster.Scheduler.jsq ~d ~weighted:false ()
  | "jiq" -> Cluster.Scheduler.jiq
  | s -> invalid_arg ("unknown scheduler " ^ s)

(* ------------------------------------------------------------------ *)
(* Disciplines                                                         *)

let discipline_to_string = function
  | Cluster.Simulation.Ps -> "ps"
  | Cluster.Simulation.Fcfs -> "fcfs"
  | Cluster.Simulation.Srpt -> "srpt"
  | Cluster.Simulation.Rr q -> Printf.sprintf "rr:%g" q

let discipline_of_string s =
  match s with
  | "ps" -> Some Cluster.Simulation.Ps
  | "fcfs" -> Some Cluster.Simulation.Fcfs
  | "srpt" -> Some Cluster.Simulation.Srpt
  | _ -> (
    match String.split_on_char ':' s with
    | [ "rr"; q ] -> (
      match float_of_string_opt q with
      | Some q when q > 0.0 -> Some (Cluster.Simulation.Rr q)
      | _ -> None)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Size distributions                                                  *)

type size_dist =
  | Exp
  | Bp_paper
  | Weibull of float  (* shape *)
  | Lognormal of float  (* cv *)
  | Erlang of int  (* stages *)
  | Hyperexp of float  (* cv *)
  | Det

let size_dist_to_string = function
  | Exp -> "exp"
  | Bp_paper -> "bp"
  | Weibull k -> Printf.sprintf "weibull:%g" k
  | Lognormal cv -> Printf.sprintf "lognormal:%g" cv
  | Erlang k -> Printf.sprintf "erlang:%d" k
  | Hyperexp cv -> Printf.sprintf "hyperexp:%g" cv
  | Det -> "det"

let size_dist_of_string s =
  match s with
  | "exp" -> Some Exp
  | "bp" -> Some Bp_paper
  | "det" -> Some Det
  | _ -> (
    match String.split_on_char ':' s with
    | [ "weibull"; k ] -> (
      match float_of_string_opt k with
      | Some k when k > 0.0 -> Some (Weibull k)
      | _ -> None)
    | [ "lognormal"; cv ] -> (
      match float_of_string_opt cv with
      | Some cv when cv > 0.0 -> Some (Lognormal cv)
      | _ -> None)
    | [ "erlang"; k ] -> (
      match int_of_string_opt k with
      | Some k when k >= 1 -> Some (Erlang k)
      | _ -> None)
    | [ "hyperexp"; cv ] -> (
      match float_of_string_opt cv with
      | Some cv when cv >= 1.0 -> Some (Hyperexp cv)
      | _ -> None)
    | _ -> None)

let size_distribution ~mean = function
  | Exp -> Dist.Exponential.of_mean mean
  | Bp_paper -> Dist.Bounded_pareto.create_paper_default ()
  | Weibull shape ->
    (* E[X] = scale·Γ(1 + 1/shape); invert for the scale hitting [mean]. *)
    Dist.Weibull.create ~shape ~scale:(mean /. Dist.Special.gamma (1.0 +. (1.0 /. shape)))
  | Lognormal cv -> Dist.Lognormal.of_mean_cv ~mean ~cv
  | Erlang k -> Dist.Erlang.of_mean_cv ~mean ~cv:(1.0 /. sqrt (float_of_int k))
  | Hyperexp cv ->
    if cv <= 1.0 then Dist.Exponential.of_mean mean
    else Dist.Hyperexponential.fit_cv ~mean ~cv
  | Det -> Dist.Deterministic.create mean

(* ------------------------------------------------------------------ *)
(* Scenario                                                            *)

type faults = {
  mtbf : float;
  mttr : float;
  on_failure : Cluster.Fault.on_failure;
}

type t = {
  speeds : float array;
  rho : float;
  policy : string;
  d : int;  (** sample size for jsq-d / two-choices; ignored otherwise *)
  discipline : Cluster.Simulation.discipline;
  arrival_cv : float;
  size : size_dist;
  mean_size : float;
  faults : faults option;
  seed : int64;
}

let v ?(discipline = Cluster.Simulation.Ps) ?(arrival_cv = 1.0) ?(size = Exp)
    ?(mean_size = 1.0) ?faults ?(seed = 1L) ?(d = 2) ~speeds ~rho ~policy () =
  { speeds; rho; policy; d; discipline; arrival_cv; size; mean_size; faults; seed }

let workload t =
  Cluster.Workload.with_size ~rho:t.rho ~arrival_cv:t.arrival_cv
    ~size:(size_distribution ~mean:t.mean_size t.size)
    t.speeds

let fault_plan t =
  Option.map
    (fun f ->
      Cluster.Fault.exponential ~on_failure:f.on_failure ~mtbf:f.mtbf
        ~mttr:f.mttr ())
    t.faults

let spec t =
  E.Runner.make_spec ~discipline:t.discipline ?faults:(fault_plan t)
    ~speeds:t.speeds ~workload:(workload t)
    ~scheduler:(scheduler_of_name ~d:t.d t.policy) ()

let to_run_command ?scale ?horizon ?warmup t =
  let b = Buffer.create 128 in
  Buffer.add_string b "schedsim run";
  Printf.bprintf b " -s %s" (Core.Speeds.to_string t.speeds);
  Printf.bprintf b " -u %g" t.rho;
  Printf.bprintf b " -p %s" t.policy;
  if t.d <> 2 then Printf.bprintf b " --d %d" t.d;
  Printf.bprintf b " --discipline %s" (discipline_to_string t.discipline);
  Printf.bprintf b " --arrival-cv %g" t.arrival_cv;
  Printf.bprintf b " --size-dist %s" (size_dist_to_string t.size);
  Printf.bprintf b " --mean-size %g" t.mean_size;
  Printf.bprintf b " --seed %Ld" t.seed;
  (match scale with
  | None -> ()
  | Some s -> Printf.bprintf b " --scale %s" (E.Config.scale_name s));
  (match horizon with
  | None -> ()
  | Some h -> Printf.bprintf b " --horizon %g" h);
  (match warmup with
  | None -> ()
  | Some w -> Printf.bprintf b " --warmup %g" w);
  (match t.faults with
  | None -> ()
  | Some f ->
    Printf.bprintf b " --mtbf %g --mttr %g --on-failure %s" f.mtbf f.mttr
      (Cluster.Fault.on_failure_name f.on_failure));
  Buffer.add_string b " --sanitize";
  Buffer.contents b

let pp fmt t = Format.pp_print_string fmt (to_run_command t)
