(** Scheduler-as-a-service: the logic of the [schedsimd] daemon.

    A daemon wraps a {!Simulation.Driver} in [`External] arrival mode —
    jobs enter over HTTP rather than from a workload model — and drives
    its virtual clock from wall time (scaled by [time_scale]).  A
    {!Telemetry} instance rides the driver's observer hooks, so the
    [/metrics], [/state] and journal surfaces are exactly the ones batch
    runs export.

    Endpoints ({!handle_request}):
    - [POST /jobs] — body is one positive number, the job's service
      demand in seconds on a speed-1 computer.  Admission control: 202
      with [{"id","computer","time"}] when accepted, 429 once
      [backlog_limit] jobs are in the system, 503 while draining, 400 on
      an unparseable body.
    - [GET /state] — live per-computer gauges ({!Telemetry.state_json}).
    - [GET /metrics] — Prometheus text exposition.
    - [GET /healthz] — liveness probe.
    - [GET /policy] / [PUT /policy] — read / hot-swap the scheduling
      policy by name (see {!scheduler_of_name}); the swap re-runs the
      policy's construction (Algorithm 1 for the optimized statics)
      without disturbing in-flight jobs.  503 while draining.
    - [POST /drain] — stop admitting, run every in-flight job to
      completion, finalize the run (idempotent).

    Handlers are serialised by an internal mutex, so the pure
    {!handle_request} is safe to call from the HTTP accept thread and
    tests alike; {!serve} mounts it on {!Statsched_obs.Http}. *)

type t

val policy_names : string list
(** Names {!scheduler_of_name} accepts (without the [:d] suffix). *)

val scheduler_of_name : string -> (Scheduler.kind, string) result
(** Parse a policy name as used by the [schedsim] CLI — ["orr"],
    ["jsq-d"], ["jiq"], ... — with an optional [:d] probe-count suffix
    (["jsq-d:4"]).  [Error] carries a human-readable reason. *)

val create :
  ?journal:Statsched_obs.Journal.t ->
  ?time_scale:float ->
  ?backlog_limit:int ->
  ?clock:(unit -> float) ->
  Simulation.config ->
  t
(** Build a daemon over [cfg] (whose [horizon] acts only as the
    validation cap and journal metadata — the run actually ends at
    {!drain} time; use [warmup = 0] so every completion is measured).
    [time_scale] (default 1) is virtual seconds per wall second.
    [backlog_limit] (default 1000) bounds jobs in system before
    [POST /jobs] answers 429.  [clock] overrides the virtual-time
    source — tests inject a deterministic one; the default reads
    {!Statsched_obs.Clock} once per request.

    @raise Invalid_argument on a non-positive [time_scale] or
    [backlog_limit], or an infeasible [cfg] (per {!Simulation.run}). *)

val handle_request : t -> Statsched_obs.Http.request -> Statsched_obs.Http.response
(** Serve one request (see the endpoint table above).  Serialised by the
    daemon's mutex; advances the virtual clock before acting, so state
    reads are current.  Never raises: unknown paths are 404, wrong
    methods 405, handler-level failures 400. *)

val serve :
  ?addr:string -> ?read_timeout:float -> t -> port:int -> Statsched_obs.Http.t
(** Mount {!handle_request} on a {!Statsched_obs.Http.serve_requests}
    server (loopback by default; [port = 0] picks an ephemeral port). *)

val drain : t -> unit
(** [POST /drain] from the inside — the SIGTERM path.  Idempotent. *)

val is_drained : t -> bool

val result : t -> Simulation.result option
(** The finalized run after a drain; [None] before draining, and also
    when the daemon drained without ever measuring a completion (an
    empty run has no summary — {!Telemetry.write_journal} then has
    nothing to cross-validate and the journal carries no summary). *)

val write_journal : t -> string -> bool
(** Write the run journal with the drain time as the measurement-window
    end ({!Telemetry.write_journal} with the right [horizon]); [false]
    when there is no finalized result to cross-validate against (not
    drained yet, or nothing measured). *)

val telemetry : t -> Telemetry.t
val driver : t -> Simulation.Driver.t
val virtual_now : t -> float
val backlog : t -> int
(** Jobs currently in the system (the admission-control gauge). *)
