(** Speed vectors describing a heterogeneous cluster.

    Computer [i] has relative processing speed [s.(i) > 0]; with base-line
    service rate μ its actual service rate is [s.(i)·μ] (Section 2).
    Helpers construct the configurations the paper evaluates. *)

val validate : float array -> unit
(** @raise Invalid_argument if empty or any speed is non-positive or
    non-finite. *)

val total : float array -> float
(** Aggregate speed [Σ s_i]. *)

val two_class : n_fast:int -> fast:float -> n_slow:int -> slow:float -> float array
(** The Figure 3/4 configurations: [n_fast] computers of speed [fast]
    followed by [n_slow] of speed [slow].

    @raise Invalid_argument on non-positive counts/speeds (a count of 0 is
    allowed as long as the vector stays non-empty). *)

val of_counts : (float * int) list -> float array
(** [of_counts [(1.0, 5); (1.5, 4); …]] expands a speed/count table such as
    the paper's Table 3 into a flat vector, in the given order. *)

val table3 : float array
(** The paper's base configuration (Table 3): speeds 1.0×5, 1.5×4, 2.0×3,
    5.0×1, 10.0×1, 12.0×1 — 15 computers, aggregate speed 44. *)

val table1 : float array
(** The speed set of the paper's Table 1 example:
    1.0, 1.5, 2.0, 3.0, 5.0, 9.0, 10.0. *)

val of_string : string -> float array
(** Parse a compact speed-vector notation: comma-separated entries, each
    either a plain speed (["1.5"]) or a count-times-speed group
    (["4x1.5"]).  E.g. ["5x1.0,4x1.5,3x2.0,5.0,10,12"] is the paper's
    Table 3.  Whitespace around entries is ignored.

    @raise Invalid_argument on malformed input or invalid speeds. *)

val to_string : float array -> string
(** Render a speed vector in the {!of_string} notation, grouping equal
    adjacent speeds (["2x10,16x1"]). *)

val sort_with_permutation : float array -> float array * int array
(** [sort_with_permutation s] is [(sorted, perm)] with [sorted] ascending
    and [sorted.(k) = s.(perm.(k))].  The sort is stable, so equal speeds
    keep their original relative order. *)
