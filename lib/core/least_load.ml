module Rng = Statsched_prng.Rng

type t = { speeds : float array; queue : int array }

let create speeds =
  Speeds.validate speeds;
  { speeds = Array.copy speeds; queue = Array.make (Array.length speeds) 0 }

let normalized_load t i = float_of_int (t.queue.(i) + 1) /. t.speeds.(i)

let select ?rng t =
  let n = Array.length t.speeds in
  let best = ref (normalized_load t 0) in
  let ties = ref 1 in
  let chosen = ref 0 in
  for i = 1 to n - 1 do
    let l = normalized_load t i in
    if l < !best then begin
      best := l;
      chosen := i;
      ties := 1
    end
    else if l = !best then begin
      (* Reservoir sampling keeps each tied computer equally likely. *)
      incr ties;
      match rng with
      | Some g -> if Rng.int g !ties = 0 then chosen := i
      | None -> ()
    end
  done;
  !chosen

let select_sampled ~rng t ~d =
  if d < 1 then invalid_arg "Least_load.select_sampled: d < 1";
  let n = Array.length t.speeds in
  if d >= n then select ~rng t
  else begin
    (* Partial Fisher-Yates over an index pool: d distinct probes. *)
    let pool = Array.init n (fun i -> i) in
    let best = ref (-1) in
    let best_load = ref infinity in
    for k = 0 to d - 1 do
      let j = k + Rng.int rng (n - k) in
      let tmp = pool.(k) in
      pool.(k) <- pool.(j);
      pool.(j) <- tmp;
      let candidate = pool.(k) in
      let load = normalized_load t candidate in
      if load < !best_load then begin
        best_load := load;
        best := candidate
      end
    done;
    !best
  end

let job_sent t i = t.queue.(i) <- t.queue.(i) + 1

let departure_recorded t i = if t.queue.(i) > 0 then t.queue.(i) <- t.queue.(i) - 1

let load_index t i = t.queue.(i)

let set_load_index t i q =
  if q < 0 then invalid_arg "Least_load.set_load_index: negative queue length";
  t.queue.(i) <- q

let reset t = Array.fill t.queue 0 (Array.length t.queue) 0
