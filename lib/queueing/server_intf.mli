(** Uniform first-class view of a server.

    {!Ps_server}, {!Rr_server} and {!Fcfs_server} all coerce to this record
    so the cluster model can mix service disciplines per computer. *)

type t = {
  speed : float;  (** relative processing speed [s_i > 0] *)
  submit : Job.t -> unit;  (** hand a job to the server at the current simulation time *)
  in_system : unit -> int;  (** jobs currently queued or in service (run-queue length) *)
  mean_in_system : unit -> float;
      (** time-averaged number of jobs present since creation/reset — the
          [L] of Little's law ([L = λ·W]), which the integration tests
          verify against the collector's response times *)
  utilization : unit -> float;
      (** time-averaged fraction of time the server was delivering
          service since creation/reset (suspended time counts as idle) *)
  completed : unit -> int;  (** jobs departed so far *)
  work_done : unit -> float;  (** total service delivered, in speed-1 seconds *)
  reset_stats : unit -> unit;  (** discard utilisation/work statistics (end of warm-up) *)
  set_rate : float -> unit;
      (** fault hook: multiply the service rate by this factor from now
          on.  [0] suspends service entirely (jobs stay queued and keep
          their progress under preempt-resume disciplines); [1] restores
          nominal speed; intermediate values model degraded computers.
          Submissions are accepted while suspended. *)
  drain : unit -> Job.t list;
      (** fault hook: remove every job (queued or in service) without
          completing it and return them.  Partial service is discarded —
          a drained job restarts from scratch if resubmitted (there is no
          checkpointing).  Used by the crash policies (drop / requeue). *)
  discipline : string;  (** e.g. ["PS"], ["RR(q=0.01)"], ["FCFS"] *)
}
