let utilization ~lambda ~mean_size ~speed = lambda *. mean_size /. speed

let guard rho value = if rho >= 1.0 then infinity else value

let mm1_fcfs_response ~lambda ~mean_size ~speed =
  let rho = utilization ~lambda ~mean_size ~speed in
  guard rho (mean_size /. speed /. (1.0 -. rho))

let mg1_fcfs_response ~lambda ~mean_size ~scv ~speed =
  let rho = utilization ~lambda ~mean_size ~speed in
  let x = mean_size /. speed in
  (* E[S^2] = x^2 (1 + scv); waiting time = lambda E[S^2] / (2(1-rho)). *)
  guard rho (x +. (lambda *. x *. x *. (1.0 +. scv) /. (2.0 *. (1.0 -. rho))))

let mg1_ps_response ~lambda ~mean_size ~speed =
  let rho = utilization ~lambda ~mean_size ~speed in
  guard rho (mean_size /. speed /. (1.0 -. rho))

let mg1_ps_mean_slowdown ~lambda ~mean_size ~speed =
  let rho = utilization ~lambda ~mean_size ~speed in
  guard rho (1.0 /. (speed *. (1.0 -. rho)))

let mm1_number_in_system ~lambda ~mean_size ~speed =
  let rho = utilization ~lambda ~mean_size ~speed in
  guard rho (rho /. (1.0 -. rho))
