(* Two-band future-event list keyed by (time, seq), structure-of-arrays
   throughout.

   Near band: a binary min-heap across four parallel arrays — [times]
   (unboxed floatarray), [seqs], [slots] and [payloads].  Far band: an
   {e unsorted} append-only overflow holding every event at or beyond
   [boundary].  While the queue is small the far band is disabled
   ([boundary = +inf]) and this is exactly the PR 4 heap.  Once the
   heap outgrows [threshold] (the binary heap's comfort zone — at
   n = 10^4 computers the pending-event count tracks the cluster size),
   the boundary locks at the current maximum heap time and later adds
   beyond it become O(1) appends instead of O(log n) sifts, the
   calendar-queue idea with a single adaptive bucket.  When the heap
   drains, a slice of the far band (the earliest ~[threshold] events,
   found by a linear partition) is promoted and Floyd-heapified.  Pop
   order depends only on [(time, seq)], so banding cannot change
   simulation results — the qcheck oracle pins bit-exact equality with
   a sorted-list model with the band forced on.

   Ordering across the bands is safe by construction: far events have
   [time >= boundary], post-activation heap adds have
   [time < boundary], and the heap-resident events that {e equal} the
   boundary (possible only at activation) carry smaller sequence
   numbers than any far event, so draining the heap first is exactly
   FIFO order even on a time tie.

   Cancellation is a slot table, not the former sequence-number bitmap.
   The bitmap spanned [min stored seq, next seq), so one long-lived
   pending event made it grow with the {e total} event count — at
   n = 10^4 a fault run retained megabytes of dead bits.  A slot table
   is O(max concurrently stored) instead: every stored event owns a
   slot; [slot_seq.(slot) = seq] is the liveness test (sequence numbers
   are never reused); a handle packs [(generation lsl 32) lor slot] so
   a stale handle can never cancel the slot's next tenant. *)

type handle = int

let no_handle = -1

let[@inline] is_handle h = h >= 0

type 'a t = {
  (* near band: binary min-heap *)
  mutable times : Float.Array.t;
  mutable seqs : int array;
  mutable slots : int array;
  mutable payloads : 'a array;
  mutable len : int;  (* stored in the heap, including lazily-cancelled *)
  (* far band: unsorted events with time >= boundary *)
  mutable far_times : Float.Array.t;
  mutable far_seqs : int array;
  mutable far_slots : int array;
  mutable far_payloads : 'a array;
  mutable far_len : int;  (* stored in the far band, incl. cancelled *)
  mutable boundary : float;  (* +inf: banding off, everything heaps *)
  threshold : int;
  mutable live : int;  (* stored entries not yet fired or cancelled *)
  mutable next_seq : int;
  mutable hwm : int;  (* most live events ever pending at once *)
  mutable filler : 'a option;
      (* Written into vacated payload cells so popped entries become
         collectable immediately.  The type has no value to make one
         from until the first [add], whose payload is kept as the
         filler — so at most that one payload outlives its scheduling
         (until [clear]). *)
  (* slot table: liveness + handle generations, O(max stored) *)
  mutable slot_seq : int array;  (* seq of the tenant, -1 when free *)
  mutable slot_gen : int array;  (* bumped on free: stale handles miss *)
  mutable free_slots : int array;  (* stack of free slot ids *)
  mutable free_top : int;
  init_cap : int;
  last_time : Float.Array.t;  (* length 1: time of the last [pop_step] *)
  mutable last_payload : 'a array;  (* length <= 1: its payload *)
}

let default_threshold = 4096

let create ?(initial_capacity = 64) ?(ladder_threshold = default_threshold) () =
  if ladder_threshold < 1 then
    invalid_arg "Event_queue.create: ladder_threshold < 1";
  {
    times = Float.Array.make 0 0.0;
    seqs = [||];
    slots = [||];
    payloads = [||];
    len = 0;
    far_times = Float.Array.make 0 0.0;
    far_seqs = [||];
    far_slots = [||];
    far_payloads = [||];
    far_len = 0;
    boundary = infinity;
    threshold = ladder_threshold;
    live = 0;
    next_seq = 0;
    hwm = 0;
    filler = None;
    slot_seq = [||];
    slot_gen = [||];
    free_slots = [||];
    free_top = 0;
    init_cap = max 16 initial_capacity;
    last_time = Float.Array.make 1 Float.nan;
    last_payload = [||];
  }

let is_empty q = q.live = 0

let size q = q.live

let high_water q = q.hwm

(* -- slot table --------------------------------------------------------- *)

(* [slot_seq.(slot) = seq] iff the event that stored [(seq, slot)] is
   still pending: sequence numbers are unique for the queue's lifetime
   and a slot is freed (and its generation bumped) exactly when its
   tenant fires or is cancelled. *)
let[@inline] entry_dead q slot seq = Array.unsafe_get q.slot_seq slot <> seq

(* Amortised growth paths allocate on resize only, so they are excluded
   from the R8 zero-alloc proof obligation. *)
let[@schedsim.cold] grow_slots q =
  let cap = Array.length q.slot_seq in
  let ncap = max 64 (2 * cap) in
  let ns = Array.make ncap (-1) in
  Array.blit q.slot_seq 0 ns 0 cap;
  q.slot_seq <- ns;
  let ng = Array.make ncap 0 in
  Array.blit q.slot_gen 0 ng 0 cap;
  q.slot_gen <- ng;
  let nf = Array.make ncap 0 in
  Array.blit q.free_slots 0 nf 0 q.free_top;
  q.free_slots <- nf;
  (* Push the new slot ids descending so low slots are handed out
     first. *)
  for s = ncap - 1 downto cap do
    nf.(q.free_top) <- s;
    q.free_top <- q.free_top + 1
  done

let[@inline] alloc_slot q seq =
  if q.free_top = 0 then grow_slots q;
  q.free_top <- q.free_top - 1;
  let slot = Array.unsafe_get q.free_slots q.free_top in
  Array.unsafe_set q.slot_seq slot seq;
  slot

let[@inline] free_slot q slot =
  Array.unsafe_set q.slot_seq slot (-1);
  Array.unsafe_set q.slot_gen slot (Array.unsafe_get q.slot_gen slot + 1);
  Array.unsafe_set q.free_slots q.free_top slot;
  q.free_top <- q.free_top + 1

(* -- heap helpers ------------------------------------------------------- *)

(* Indices handed to [precedes] and the sift loops below are always
   < [q.len], so the int/payload arrays use unsafe accessors like the
   float array already does — the heap sifts are the simulator's
   hottest loops and the bounds checks are pure overhead there. *)
let[@inline] precedes q i j =
  let ti = Float.Array.unsafe_get q.times i
  and tj = Float.Array.unsafe_get q.times j in
  ti < tj
  || (Float.equal ti tj && Array.unsafe_get q.seqs i < Array.unsafe_get q.seqs j)

let blank q i =
  match q.filler with Some d -> q.payloads.(i) <- d | None -> ()

let[@schedsim.cold] register_filler q payload =
  (match q.filler with None -> q.filler <- Some payload | Some _ -> ());
  if Array.length q.last_payload = 0 then q.last_payload <- Array.make 1 payload

let[@schedsim.cold] ensure_capacity q payload =
  register_filler q payload;
  let cap = Float.Array.length q.times in
  if q.len = cap then begin
    let ncap = max q.init_cap (2 * cap) in
    let nt = Float.Array.make ncap 0.0 in
    Float.Array.blit q.times 0 nt 0 q.len;
    q.times <- nt;
    let ns = Array.make ncap 0 in
    Array.blit q.seqs 0 ns 0 q.len;
    q.seqs <- ns;
    let nsl = Array.make ncap 0 in
    Array.blit q.slots 0 nsl 0 q.len;
    q.slots <- nsl;
    let np = Array.make ncap payload in
    Array.blit q.payloads 0 np 0 q.len;
    (* Fill the unused tail with the filler so growth retains no payload
       beyond it. *)
    (match q.filler with
    | Some d -> Array.fill np q.len (ncap - q.len) d
    | None -> ());
    q.payloads <- np
  end

let[@schedsim.cold] ensure_far_capacity q payload =
  register_filler q payload;
  let cap = Float.Array.length q.far_times in
  if q.far_len = cap then begin
    let ncap = max q.init_cap (2 * cap) in
    let nt = Float.Array.make ncap 0.0 in
    Float.Array.blit q.far_times 0 nt 0 q.far_len;
    q.far_times <- nt;
    let ns = Array.make ncap 0 in
    Array.blit q.far_seqs 0 ns 0 q.far_len;
    q.far_seqs <- ns;
    let nsl = Array.make ncap 0 in
    Array.blit q.far_slots 0 nsl 0 q.far_len;
    q.far_slots <- nsl;
    let np = Array.make ncap payload in
    Array.blit q.far_payloads 0 np 0 q.far_len;
    (match q.filler with
    | Some d -> Array.fill np q.far_len (ncap - q.far_len) d
    | None -> ());
    q.far_payloads <- np
  end

(* Lock the band boundary at the current maximum heap time: events
   already stored keep their heap order, every later add at or beyond
   the boundary becomes an O(1) far-band append.  O(len) once per
   activation. *)
let[@schedsim.cold] activate_band q =
  let m = ref neg_infinity in
  for i = 0 to q.len - 1 do
    let t = Float.Array.unsafe_get q.times i in
    if t > !m then m := t
  done;
  q.boundary <- !m

let[@inline] [@schedsim.hot] add q ~time payload =
  if not (Float.is_finite time) then
    invalid_arg "Event_queue.add: non-finite time";
  let seq = q.next_seq in
  q.next_seq <- seq + 1;
  let slot = alloc_slot q seq in
  if time >= q.boundary then begin
    ensure_far_capacity q payload;
    let k = q.far_len in
    Float.Array.unsafe_set q.far_times k time;
    Array.unsafe_set q.far_seqs k seq;
    Array.unsafe_set q.far_slots k slot;
    Array.unsafe_set q.far_payloads k payload;
    q.far_len <- k + 1
  end
  else begin
    ensure_capacity q payload;
    (* Sift up with a hole: the new entry has the largest seq, so on a
       time tie it never precedes its parent (FIFO). *)
    let i = ref q.len in
    q.len <- q.len + 1;
    let sifting = ref true in
    while !sifting && !i > 0 do
      let p = (!i - 1) / 2 in
      let tp = Float.Array.unsafe_get q.times p in
      if time < tp then begin
        Float.Array.unsafe_set q.times !i tp;
        Array.unsafe_set q.seqs !i (Array.unsafe_get q.seqs p);
        Array.unsafe_set q.slots !i (Array.unsafe_get q.slots p);
        Array.unsafe_set q.payloads !i (Array.unsafe_get q.payloads p);
        i := p
      end
      else sifting := false
    done;
    Float.Array.unsafe_set q.times !i time;
    Array.unsafe_set q.seqs !i seq;
    Array.unsafe_set q.slots !i slot;
    Array.unsafe_set q.payloads !i payload;
    if q.len > q.threshold && Float.equal q.boundary infinity then
      activate_band q
  end;
  q.live <- q.live + 1;
  if q.live > q.hwm then q.hwm <- q.live;
  (Array.unsafe_get q.slot_gen slot lsl 32) lor slot

(* Remove the root, refilling the hole with the last entry sifted down. *)
let remove_root q =
  let last = q.len - 1 in
  q.len <- last;
  if last = 0 then blank q 0
  else begin
    let t = Float.Array.unsafe_get q.times last in
    let s = Array.unsafe_get q.seqs last in
    let sl = Array.unsafe_get q.slots last in
    let p = Array.unsafe_get q.payloads last in
    blank q last;
    let i = ref 0 in
    let sifting = ref true in
    while !sifting do
      let l = (2 * !i) + 1 in
      if l >= last then sifting := false
      else begin
        let r = l + 1 in
        let c = if r < last && precedes q r l then r else l in
        let tc = Float.Array.unsafe_get q.times c in
        if tc < t || (Float.equal tc t && Array.unsafe_get q.seqs c < s) then begin
          Float.Array.unsafe_set q.times !i tc;
          Array.unsafe_set q.seqs !i (Array.unsafe_get q.seqs c);
          Array.unsafe_set q.slots !i (Array.unsafe_get q.slots c);
          Array.unsafe_set q.payloads !i (Array.unsafe_get q.payloads c);
          i := c
        end
        else sifting := false
      end
    done;
    Float.Array.unsafe_set q.times !i t;
    Array.unsafe_set q.seqs !i s;
    Array.unsafe_set q.slots !i sl;
    Array.unsafe_set q.payloads !i p
  end

let swap q i j =
  let t = Float.Array.get q.times i in
  Float.Array.set q.times i (Float.Array.get q.times j);
  Float.Array.set q.times j t;
  let s = q.seqs.(i) in
  q.seqs.(i) <- q.seqs.(j);
  q.seqs.(j) <- s;
  let sl = q.slots.(i) in
  q.slots.(i) <- q.slots.(j);
  q.slots.(j) <- sl;
  let p = q.payloads.(i) in
  q.payloads.(i) <- q.payloads.(j);
  q.payloads.(j) <- p

let rec sift_down q i =
  let l = (2 * i) + 1 in
  if l < q.len then begin
    let r = l + 1 in
    let smallest = if r < q.len && precedes q r l then r else l in
    if precedes q smallest i then begin
      swap q i smallest;
      sift_down q smallest
    end
  end

(* Floyd's bottom-up heapify.  Pop order only depends on [(time, seq)],
   never on array layout, so rebuilding cannot change simulation
   results. *)
let heapify q =
  for i = (q.len / 2) - 1 downto 0 do
    sift_down q i
  done

(* Drop cancelled far-band entries in place. *)
let compact_far q =
  let j = ref 0 in
  for i = 0 to q.far_len - 1 do
    if not (entry_dead q (Array.unsafe_get q.far_slots i) (Array.unsafe_get q.far_seqs i))
    then begin
      Float.Array.unsafe_set q.far_times !j (Float.Array.unsafe_get q.far_times i);
      q.far_seqs.(!j) <- q.far_seqs.(i);
      q.far_slots.(!j) <- q.far_slots.(i);
      q.far_payloads.(!j) <- q.far_payloads.(i);
      incr j
    end
  done;
  let new_len = !j in
  (match q.filler with
  | Some d -> Array.fill q.far_payloads new_len (q.far_len - new_len) d
  | None -> ());
  q.far_len <- new_len

(* Heap drained but the far band is not: promote its earliest slice
   into the heap.  A small band moves wholesale (and the banding turns
   off until the heap outgrows the threshold again); a large one is
   partitioned around an interpolated pivot targeting ~threshold
   promotions, so each event is scanned O(far/threshold) times before
   it reaches the heap — a constant in the steady state, where the band
   holds a few multiples of the threshold.  A time-skewed band (pivot
   rounding to the minimum) degrades gracefully to promoting the
   minimal-time cohort, never to a stall. *)
let[@schedsim.cold] migrate q =
  compact_far q;
  if q.far_len = 0 then q.boundary <- infinity
  else begin
    let k = q.far_len in
    let tmin = ref infinity and tmax = ref neg_infinity in
    for i = 0 to k - 1 do
      let t = Float.Array.unsafe_get q.far_times i in
      if t < !tmin then tmin := t;
      if t > !tmax then tmax := t
    done;
    let move_all = k <= q.threshold || Float.equal !tmin !tmax in
    let pivot =
      if move_all then infinity
      else begin
        let frac = float_of_int q.threshold /. float_of_int k in
        let b = !tmin +. ((!tmax -. !tmin) *. frac) in
        (* Interpolation can round back onto the minimum when the span
           is tiny relative to its magnitude; promote the minimal-time
           cohort instead of looping. *)
        if b > !tmin then b else !tmin
      end
    in
    let promote_min_only = (not move_all) && Float.equal pivot !tmin in
    (* Partition: entries before the pivot move to the heap, the rest
       stay far (order within the band is irrelevant, it is unsorted). *)
    let j = ref 0 in
    let keep_min = ref infinity in
    for i = 0 to k - 1 do
      let t = Float.Array.unsafe_get q.far_times i in
      let promote =
        if promote_min_only then Float.equal t !tmin else t < pivot
      in
      if promote then begin
        let payload = q.far_payloads.(i) in
        ensure_capacity q payload;
        Float.Array.unsafe_set q.times q.len t;
        q.seqs.(q.len) <- q.far_seqs.(i);
        q.slots.(q.len) <- q.far_slots.(i);
        q.payloads.(q.len) <- payload;
        q.len <- q.len + 1
      end
      else begin
        if t < !keep_min then keep_min := t;
        Float.Array.unsafe_set q.far_times !j t;
        q.far_seqs.(!j) <- q.far_seqs.(i);
        q.far_slots.(!j) <- q.far_slots.(i);
        q.far_payloads.(!j) <- q.far_payloads.(i);
        incr j
      end
    done;
    (match q.filler with
    | Some d -> Array.fill q.far_payloads !j (k - !j) d
    | None -> ());
    q.far_len <- !j;
    q.boundary <-
      (if !j = 0 then infinity
       else if promote_min_only then
         (* Everything left is strictly above the promoted cohort; the
            kept minimum keeps both band-split inequalities strict. *)
         !keep_min
       else pivot);
    heapify q
  end

let[@schedsim.hot] rec pop_step q =
  if q.len = 0 then begin
    if q.far_len > 0 then begin
      migrate q;
      pop_step q
    end
    else begin
      q.boundary <- infinity;
      false
    end
  end
  else begin
    let time = Float.Array.unsafe_get q.times 0 in
    let seq = Array.unsafe_get q.seqs 0 in
    let slot = Array.unsafe_get q.slots 0 in
    let payload = Array.unsafe_get q.payloads 0 in
    remove_root q;
    if entry_dead q slot seq then pop_step q (* cancelled: skip *)
    else begin
      free_slot q slot;
      q.live <- q.live - 1;
      Float.Array.unsafe_set q.last_time 0 time;
      q.last_payload.(0) <- payload;
      true
    end
  end

let[@inline] last_time q = Float.Array.unsafe_get q.last_time 0

let[@inline] last_payload q = q.last_payload.(0)

let blank_last q =
  match q.filler with Some d -> q.last_payload.(0) <- d | None -> ()

let pop q =
  if pop_step q then begin
    let p = q.last_payload.(0) in
    (* Release the scratch slot so the popped payload does not outlive
       this call. *)
    blank_last q;
    Some (Float.Array.get q.last_time 0, p)
  end
  else None

(* Cold path of [next_time]: drop lazily-cancelled roots (migrating the
   far band in when the heap runs dry) until a live entry or emptiness
   surfaces. *)
let rec drop_done_roots q =
  if q.len = 0 then
    if q.far_len > 0 then begin
      migrate q;
      drop_done_roots q
    end
    else Float.nan
  else if entry_dead q (Array.unsafe_get q.slots 0) (Array.unsafe_get q.seqs 0)
  then begin
    remove_root q;
    drop_done_roots q
  end
  else Float.Array.unsafe_get q.times 0

(* Non-recursive so the common live-root case inlines into callers (the
   engine main loop and the PS reschedule path read this once per event)
   and the returned float stays unboxed there. *)
let[@inline] next_time q =
  if q.len = 0 then
    if q.far_len > 0 then drop_done_roots q else Float.nan
  else if entry_dead q (Array.unsafe_get q.slots 0) (Array.unsafe_get q.seqs 0)
  then drop_done_roots q
  else Float.Array.unsafe_get q.times 0

let peek_time q =
  let t = next_time q in
  if Float.is_nan t then None else Some t

(* -- cancellation ------------------------------------------------------- *)

(* Rebuild both bands from the entries still live.  Triggered when live
   entries fall under a quarter of the stored total, so the dead weight
   carried between compactions is O(live), independent of how large the
   queue once was. *)
let compact q =
  let j = ref 0 in
  for i = 0 to q.len - 1 do
    if not (entry_dead q q.slots.(i) q.seqs.(i)) then begin
      Float.Array.unsafe_set q.times !j (Float.Array.unsafe_get q.times i);
      q.seqs.(!j) <- q.seqs.(i);
      q.slots.(!j) <- q.slots.(i);
      q.payloads.(!j) <- q.payloads.(i);
      incr j
    end
  done;
  let new_len = !j in
  (match q.filler with
  | Some d -> Array.fill q.payloads new_len (q.len - new_len) d
  | None -> ());
  q.len <- new_len;
  heapify q;
  compact_far q;
  if q.len = 0 && q.far_len = 0 then q.boundary <- infinity

let cancel q h =
  (* O(1) via the slot table: a handle is valid exactly while its
     generation matches the slot's.  Freeing the slot is the lazy
     deletion — the stored entry is skipped when a pop or compaction
     reaches it. *)
  if h < 0 then false
  else begin
    let slot = h land 0xFFFFFFFF in
    let gen = h lsr 32 in
    if slot >= Array.length q.slot_gen then false
    else if Array.unsafe_get q.slot_gen slot <> gen then false
    else if Array.unsafe_get q.slot_seq slot < 0 then false
    else begin
      free_slot q slot;
      q.live <- q.live - 1;
      let stored = q.len + q.far_len in
      if stored >= 64 && q.live * 4 < stored then compact q;
      true
    end
  end

(* Audit the structural invariants over every stored entry (live or
   lazily cancelled): the heap property, and the band split — far
   entries at or beyond the boundary, heap entries not beyond it.
   O(n); meant for sanitizers and tests, not the hot path. *)
let heap_ordered q =
  let ok = ref true in
  for i = 1 to q.len - 1 do
    if precedes q i ((i - 1) / 2) then ok := false
  done;
  for i = 0 to q.len - 1 do
    if Float.Array.unsafe_get q.times i > q.boundary then ok := false
  done;
  for i = 0 to q.far_len - 1 do
    if Float.Array.unsafe_get q.far_times i < q.boundary then ok := false
  done;
  !ok

module Testing = struct
  let corrupt q =
    if q.len >= 2 then
      Float.Array.set q.times 0 (Float.Array.get q.times (q.len - 1) +. 1.0)

  let stored q = q.len + q.far_len

  let far_size q = q.far_len

  let band_active q = not (Float.equal q.boundary infinity)

  let slot_capacity q = Array.length q.slot_seq
end

let clear q =
  (* Release the backing arrays outright: truncating [len] alone kept
     every queued payload reachable for the queue's lifetime.  The slot
     table stays (it holds no payloads) with every occupied slot freed
     and its generation bumped, so handles from before the clear can
     never touch events scheduled after it. *)
  q.times <- Float.Array.make 0 0.0;
  q.seqs <- [||];
  q.slots <- [||];
  q.payloads <- [||];
  q.far_times <- Float.Array.make 0 0.0;
  q.far_seqs <- [||];
  q.far_slots <- [||];
  q.far_payloads <- [||];
  q.last_payload <- [||];
  q.len <- 0;
  q.far_len <- 0;
  q.live <- 0;
  q.filler <- None;
  q.boundary <- infinity;
  q.free_top <- 0;
  for s = Array.length q.slot_seq - 1 downto 0 do
    if q.slot_seq.(s) >= 0 then begin
      q.slot_seq.(s) <- -1;
      q.slot_gen.(s) <- q.slot_gen.(s) + 1
    end;
    q.free_slots.(q.free_top) <- s;
    q.free_top <- q.free_top + 1
  done
