module Confidence = Statsched_stats.Confidence

type t = {
  name : string;
  interval : Confidence.interval;
  theory : float;
  allowance : float;
  ok : bool;
}

let decide ~name ~theory ~bias interval =
  let allowance =
    interval.Confidence.half_width +. (bias *. abs_float theory)
  in
  let ok =
    if Float.is_nan theory || Float.is_nan interval.Confidence.mean then false
    else if Float.is_finite theory then
      abs_float (interval.Confidence.mean -. theory) <= allowance
    else
      (* An infinite prediction can only be "matched" by an estimate that
         also diverged; a finite estimate against an infinite theory (or
         vice versa) is a real disagreement. *)
      Float.equal interval.Confidence.mean theory
  in
  { name; interval; theory; allowance; ok }

let of_interval ?(bias = 0.01) ~name ~theory interval =
  decide ~name ~theory ~bias interval

let of_samples ?(confidence = 0.999) ?(bias = 0.01) ~name ~theory samples =
  let interval =
    (* A replication mean of +inf (saturated estimate) poisons Welford's
       running mean with inf - inf = nan; recognise the unanimous case
       directly so a diverged simulator can still match an infinite
       prediction.  Mixed finite/infinite replications stay nan — two
       replications of the same config disagreeing about stability is
       itself a bug worth failing on. *)
    if
      Array.length samples > 0
      && Array.for_all (fun x -> Float.equal x infinity) samples
    then
      {
        Confidence.mean = infinity;
        half_width = 0.0;
        confidence;
        replications = Array.length samples;
      }
    else Confidence.of_samples ~confidence samples
  in
  (* A single replication has no width estimate ([half_width = nan]); a
     nan allowance would silently pass everything, so fall back to the
     bias term alone. *)
  let interval =
    if Float.is_nan interval.Confidence.half_width then
      { interval with Confidence.half_width = 0.0 }
    else interval
  in
  decide ~name ~theory ~bias interval

let pp fmt b =
  Format.fprintf fmt "%s: simulated %a vs closed form %.6g (tolerance %.3g)"
    b.name Confidence.pp b.interval b.theory b.allowance

let to_check b =
  Check.v ~label:b.name ~ok:b.ok ~detail:(Format.asprintf "%a" pp b)
