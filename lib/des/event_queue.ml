type 'a entry = {
  time : float;
  seq : int;  (* insertion order, for FIFO ties and as cancellation id *)
  payload : 'a;
}

type handle = int

type 'a t = {
  mutable heap : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
  mutable hwm : int;  (* most live events ever pending at once *)
  mutable filler : 'a entry option;
      (* Written into vacated heap slots so popped entries (and their
         payloads) become collectable immediately.  The type has no value
         to make one from until the first [add], whose entry is kept as
         the filler — so at most that one entry outlives its scheduling
         (until [clear]). *)
  pending : (int, unit) Hashtbl.t;  (* seqs scheduled and not yet fired/cancelled *)
}

let create ?(initial_capacity = 64) () =
  {
    heap = [||];
    len = 0;
    next_seq = 0;
    hwm = 0;
    filler = None;
    pending = Hashtbl.create (max 16 initial_capacity);
  }

let is_empty q = Hashtbl.length q.pending = 0

let size q = Hashtbl.length q.pending

let precedes a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap q i j =
  let tmp = q.heap.(i) in
  q.heap.(i) <- q.heap.(j);
  q.heap.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if precedes q.heap.(i) q.heap.(parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 in
  if l < q.len then begin
    let r = l + 1 in
    let smallest = if r < q.len && precedes q.heap.(r) q.heap.(l) then r else l in
    if precedes q.heap.(smallest) q.heap.(i) then begin
      swap q i smallest;
      sift_down q smallest
    end
  end

let grow q entry =
  let cap = Array.length q.heap in
  if q.len = cap then begin
    let ncap = max 64 (2 * cap) in
    let nheap = Array.make ncap entry in
    Array.blit q.heap 0 nheap 0 q.len;
    q.heap <- nheap
  end

let add q ~time payload =
  if Float.is_nan time || abs_float time = infinity then
    invalid_arg "Event_queue.add: non-finite time";
  let entry = { time; seq = q.next_seq; payload } in
  q.next_seq <- q.next_seq + 1;
  grow q entry;
  q.heap.(q.len) <- entry;
  q.len <- q.len + 1;
  Hashtbl.add q.pending entry.seq ();
  let live = Hashtbl.length q.pending in
  if live > q.hwm then q.hwm <- live;
  sift_up q (q.len - 1);
  (match q.filler with None -> q.filler <- Some entry | Some _ -> ());
  entry.seq

let blank q i = match q.filler with Some d -> q.heap.(i) <- d | None -> ()

(* Rebuild the heap from the entries still pending (Floyd's bottom-up
   heapify).  Pop order only depends on [(time, seq)], never on array
   layout, so compaction cannot change simulation results. *)
let compact q =
  let j = ref 0 in
  for i = 0 to q.len - 1 do
    let e = q.heap.(i) in
    if Hashtbl.mem q.pending e.seq then begin
      q.heap.(!j) <- e;
      incr j
    end
  done;
  let new_len = !j in
  (match q.filler with
  | Some d -> Array.fill q.heap new_len (q.len - new_len) d
  | None -> ());
  q.len <- new_len;
  for i = (new_len / 2) - 1 downto 0 do
    sift_down q i
  done

let cancel q h =
  (* Lazy deletion: drop from the pending set now, skip at pop time.
     When cancellations pile up (live entries under a quarter of the
     heap) compact eagerly, otherwise a cancel-heavy workload holds on
     to arbitrarily many dead entries until pops reach them. *)
  if Hashtbl.mem q.pending h then begin
    Hashtbl.remove q.pending h;
    if q.len >= 64 && Hashtbl.length q.pending * 4 < q.len then compact q;
    true
  end
  else false

let pop_raw q =
  if q.len = 0 then None
  else begin
    let top = q.heap.(0) in
    q.len <- q.len - 1;
    if q.len > 0 then begin
      q.heap.(0) <- q.heap.(q.len);
      blank q q.len;
      sift_down q 0
    end
    else blank q 0;
    Some top
  end

let rec pop q =
  match pop_raw q with
  | None -> None
  | Some entry ->
    if Hashtbl.mem q.pending entry.seq then begin
      Hashtbl.remove q.pending entry.seq;
      Some (entry.time, entry.payload)
    end
    else pop q (* cancelled: skip *)

let rec peek_time q =
  if q.len = 0 then None
  else begin
    let top = q.heap.(0) in
    if Hashtbl.mem q.pending top.seq then Some top.time
    else begin
      ignore (pop_raw q);
      peek_time q
    end
  end

(* Audit the heap property over every stored entry (live or lazily
   cancelled): each parent must precede its children.  O(n); meant for
   sanitizers and tests, not the hot path. *)
let heap_ordered q =
  let ok = ref true in
  for i = 1 to q.len - 1 do
    if precedes q.heap.(i) q.heap.((i - 1) / 2) then ok := false
  done;
  !ok

module Testing = struct
  let corrupt q =
    if q.len >= 2 then
      q.heap.(0) <- { (q.heap.(0)) with time = q.heap.(q.len - 1).time +. 1.0 }
end

let clear q =
  (* Release the backing array outright: truncating [len] alone kept
     every queued entry — and payload — reachable for the queue's
     lifetime. *)
  q.heap <- [||];
  q.len <- 0;
  q.filler <- None;
  Hashtbl.reset q.pending

let high_water q = q.hwm
