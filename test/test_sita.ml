open Test_util
module Core = Statsched_core
module Sita = Core.Sita
module Bp = Statsched_dist.Bounded_pareto
module Cluster = Statsched_cluster

let prm = Bp.paper_default

let partial_mean_total () =
  (* The whole support integrates to the mean. *)
  check_close ~rel:1e-9 "full band = mean"
    (Bp.raw_moment prm 1)
    (Bp.partial_mean prm ~lo:prm.Bp.k ~hi:prm.Bp.p)

let partial_mean_additive () =
  let mid = 500.0 in
  let left = Bp.partial_mean prm ~lo:prm.Bp.k ~hi:mid in
  let right = Bp.partial_mean prm ~lo:mid ~hi:prm.Bp.p in
  check_close ~rel:1e-9 "bands add up" (Bp.raw_moment prm 1) (left +. right)

let partial_mean_alpha_not_one () =
  (* Consistency of the two analytic branches: a non-unit alpha band sum
     also equals its raw moment. *)
  let prm2 = { Bp.k = 1.0; p = 1000.0; alpha = 1.7 } in
  let mid = 30.0 in
  check_close ~rel:1e-9 "alpha=1.7 additive"
    (Bp.raw_moment prm2 1)
    (Bp.partial_mean prm2 ~lo:1.0 ~hi:mid +. Bp.partial_mean prm2 ~lo:mid ~hi:1000.0)

let partial_mean_clamps () =
  check_float ~eps:1e-12 "outside support is zero" 0.0
    (Bp.partial_mean prm ~lo:1.0 ~hi:5.0);
  Alcotest.check_raises "lo > hi" (Invalid_argument "Bounded_pareto.partial_mean: lo > hi")
    (fun () -> ignore (Bp.partial_mean prm ~lo:10.0 ~hi:5.0))

let cdf_basics () =
  check_float "below support" 0.0 (Bp.cdf prm 1.0);
  check_float "above support" 1.0 (Bp.cdf prm 1e9);
  let x = 100.0 in
  check_close ~rel:1e-9 "cdf/quantile roundtrip" x (Bp.quantile prm (Bp.cdf prm x))

let sita_equal_load_two () =
  (* Two equal computers: the cutoff splits the work in half. *)
  let t = Sita.build_bounded_pareto prm ~speeds:[| 1.0; 1.0 |] ~small_to:`Fast in
  let shares = Sita.expected_shares t prm in
  check_array ~eps:1e-6 "half/half" [| 0.5; 0.5 |] shares

let sita_speed_proportional_shares () =
  let speeds = Core.Speeds.table1 in
  let t = Sita.build_bounded_pareto prm ~speeds ~small_to:`Fast in
  let shares = Sita.expected_shares t prm in
  let total = Core.Speeds.total speeds in
  Array.iteri
    (fun i speed ->
      check_close ~rel:1e-5
        (Printf.sprintf "share of computer %d" i)
        (speed /. total)
        shares.(i))
    speeds

let sita_band_ordering () =
  let speeds = [| 1.0; 10.0 |] in
  (* small_to:`Fast: the fastest computer (index 1) serves band 0 *)
  let t = Sita.build_bounded_pareto prm ~speeds ~small_to:`Fast in
  Alcotest.(check int) "small jobs to fast" 1 (Sita.select t ~size:(prm.Bp.k +. 0.01));
  Alcotest.(check int) "large jobs to slow" 0 (Sita.select t ~size:(prm.Bp.p -. 1.0));
  let t2 = Sita.build_bounded_pareto prm ~speeds ~small_to:`Slow in
  Alcotest.(check int) "small jobs to slow" 0 (Sita.select t2 ~size:(prm.Bp.k +. 0.01))

let sita_cutoffs_monotone () =
  let t = Sita.build_bounded_pareto prm ~speeds:Core.Speeds.table3 ~small_to:`Fast in
  let c = Sita.cutoffs t in
  Alcotest.(check int) "n-1 cutoffs" 14 (Array.length c);
  for i = 1 to Array.length c - 1 do
    Alcotest.(check bool) "ascending" true (c.(i) >= c.(i - 1))
  done;
  Array.iter
    (fun x ->
      Alcotest.(check bool) "inside support" true (prm.Bp.k <= x && x <= prm.Bp.p))
    c

let sita_select_clamps () =
  let t = Sita.build_bounded_pareto prm ~speeds:[| 1.0; 1.0; 1.0 |] ~small_to:`Slow in
  let lo = Sita.select t ~size:0.0001 in
  let hi = Sita.select t ~size:1e12 in
  Alcotest.(check int) "tiny size -> first band's computer" (Sita.assignment t).(0) lo;
  Alcotest.(check int) "huge size -> last band's computer" (Sita.assignment t).(2) hi

let sita_empirical_matches_analytic () =
  (* Cutoffs built from a large sample should be close to the analytic
     ones. *)
  let g = rng () in
  let samples = Array.init 200_000 (fun _ -> Bp.sample prm g) in
  let speeds = [| 1.0; 1.0 |] in
  let analytic = Sita.build_bounded_pareto prm ~speeds ~small_to:`Fast in
  let empirical = Sita.build_empirical ~samples ~speeds ~small_to:`Fast in
  let ca = (Sita.cutoffs analytic).(0) and ce = (Sita.cutoffs empirical).(0) in
  check_close ~rel:0.15 "empirical cutoff near analytic" ca ce

let sita_empirical_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Sita.build_empirical: empty sample")
    (fun () -> ignore (Sita.build_empirical ~samples:[||] ~speeds:[| 1.0 |] ~small_to:`Fast));
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Sita.build_empirical: non-positive size") (fun () ->
      ignore (Sita.build_empirical ~samples:[| 1.0; 0.0 |] ~speeds:[| 1.0 |] ~small_to:`Fast))

let sita_simulation_balances_load () =
  (* End to end: under SITA-E every computer's utilisation approaches the
     offered rho (the equal-load property realised). *)
  let speeds = [| 1.0; 2.0; 4.0 |] in
  let workload = Cluster.Workload.paper_default ~rho:0.6 ~speeds in
  let cfg =
    Cluster.Simulation.default_config ~horizon:400_000.0 ~speeds ~workload
      ~scheduler:(Cluster.Scheduler.sita_paper ()) ()
  in
  let r = Cluster.Simulation.run cfg in
  Array.iteri
    (fun i pc ->
      check_close ~rel:0.25
        (Printf.sprintf "computer %d utilisation near 0.6" i)
        0.6 pc.Cluster.Simulation.utilization)
    r.Cluster.Simulation.per_computer

let sita_beats_wran_under_fcfs () =
  (* Crovella's setting: FCFS hosts and heavy-tailed sizes.  Size-aware
     banding must crush size-blind weighted random there. *)
  let speeds = [| 2.0; 2.0; 2.0; 2.0 |] in
  let workload = Cluster.Workload.paper_default ~rho:0.6 ~speeds in
  let run scheduler =
    let cfg =
      Cluster.Simulation.default_config ~discipline:Cluster.Simulation.Fcfs
        ~horizon:400_000.0 ~speeds ~workload ~scheduler ()
    in
    (Cluster.Simulation.run cfg).Cluster.Simulation.metrics
      .Core.Metrics.mean_response_ratio
  in
  let sita = run (Cluster.Scheduler.sita_paper ()) in
  let wran = run (Cluster.Scheduler.static Core.Policy.wran) in
  Alcotest.(check bool)
    (Printf.sprintf "SITA %.2f beats WRAN %.2f under FCFS" sita wran)
    true (sita < wran)

let sita_scheduler_name () =
  Alcotest.(check string) "name" "SITA-E(small->fast)"
    (Cluster.Scheduler.name (Cluster.Scheduler.sita_paper ()));
  Alcotest.(check string) "slow variant" "SITA-E(small->slow)"
    (Cluster.Scheduler.name (Cluster.Scheduler.sita_paper ~small_to:`Slow ()))

let prop_sita_shares_match_speeds =
  qcheck ~count:50 "SITA-E equal-load property on random systems"
    speeds_gen
    (fun speeds ->
      let t = Sita.build_bounded_pareto prm ~speeds ~small_to:`Fast in
      let shares = Sita.expected_shares t prm in
      let total = Core.Speeds.total speeds in
      Array.for_all2
        (fun share s -> abs_float (share -. (s /. total)) < 1e-4)
        shares speeds)

let suite =
  [
    test "partial mean: total equals mean" partial_mean_total;
    test "partial mean: additivity (alpha=1)" partial_mean_additive;
    test "partial mean: additivity (alpha=1.7)" partial_mean_alpha_not_one;
    test "partial mean: clamping and validation" partial_mean_clamps;
    test "cdf: basics and quantile roundtrip" cdf_basics;
    test "sita: equal-load cutoff for two equal computers" sita_equal_load_two;
    test "sita: shares proportional to speeds" sita_speed_proportional_shares;
    test "sita: band ordering by policy" sita_band_ordering;
    test "sita: cutoffs monotone inside support" sita_cutoffs_monotone;
    test "sita: selection clamps to extreme bands" sita_select_clamps;
    slow_test "sita: empirical cutoffs near analytic" sita_empirical_matches_analytic;
    test "sita: empirical validation" sita_empirical_validation;
    slow_test "sita: simulated utilisations equalised" sita_simulation_balances_load;
    slow_test "sita: beats WRAN under FCFS hosts" sita_beats_wran_under_fcfs;
    test "sita: scheduler naming" sita_scheduler_name;
    prop_sita_shares_match_speeds;
  ]

let ext_sita_structure () =
  let tiny = { Statsched_experiments.Config.horizon = 15_000.0; warmup = 3_750.0; reps = 2 } in
  let rows = Statsched_experiments.Ext_sita.run ~scale:tiny () in
  Alcotest.(check int) "PS and FCFS rows" 2 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check int) "five schedulers" 5
        (List.length r.Statsched_experiments.Ext_sita.points))
    rows;
  let disciplines = List.map (fun r -> r.Statsched_experiments.Ext_sita.discipline) rows in
  Alcotest.(check (list string)) "disciplines" [ "PS"; "FCFS" ] disciplines;
  Alcotest.(check bool) "report renders" true
    (String.length (Statsched_experiments.Ext_sita.to_report rows) > 0)

let ext_suite = [ slow_test "ext sita: structure" ext_sita_structure ]

let suite = suite @ ext_suite
