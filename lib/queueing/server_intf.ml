type t = {
  speed : float;
  submit : Job.t -> unit;
  in_system : unit -> int;
  mean_in_system : unit -> float;
  utilization : unit -> float;
  completed : unit -> int;
  work_done : unit -> float;
  reset_stats : unit -> unit;
  set_rate : float -> unit;
  drain : unit -> Job.t list;
  discipline : string;
}
