type t = Xoshiro256.t

let default_seed = 0x5EEDFACE5EEDL

let create ?(seed = default_seed) () = Xoshiro256.create seed

let of_xoshiro g = g

let copy = Xoshiro256.copy

let split g =
  let a = Xoshiro256.next g in
  let b = Xoshiro256.next g in
  Xoshiro256.create (Int64.logxor a (Int64.mul b 0x9E3779B97F4A7C15L))

let substream = Xoshiro256.substream

let[@inline] [@schedsim.hot] float g = Xoshiro256.next_float g

let uniform g a b =
  if a > b then invalid_arg "Rng.uniform: a > b";
  a +. ((b -. a) *. float g)

(* Rejection sampling to avoid modulo bias; the loop lives in
   {!Xoshiro256.next_int} fused with the state update so no boxed
   [int64] is allocated per draw. *)
let[@inline] [@schedsim.hot] int g n =
  if n <= 0 then invalid_arg "Rng.int: n <= 0";
  Xoshiro256.next_int g n

let bits64 = Xoshiro256.next

let[@inline] [@schedsim.hot] bits53 g = Xoshiro256.next_bits53 g

let bool g = Int64.logand (Xoshiro256.next g) 1L = 1L

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose_weighted g w =
  let n = Array.length w in
  if n = 0 then invalid_arg "Rng.choose_weighted: empty weights";
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    if w.(i) < 0.0 then invalid_arg "Rng.choose_weighted: negative weight";
    total := !total +. w.(i)
  done;
  if !total <= 0.0 then invalid_arg "Rng.choose_weighted: zero total weight";
  let x = float g *. !total in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. w.(i) in
      if x < acc then i else scan (i + 1) acc
  in
  scan 0 0.0
