let now () =
  (* schedlint: allow R2 — the single sanctioned wall-clock site *)
  Unix.gettimeofday ()

let elapsed ~since = max 0.0 (now () -. since)
