module Rng = Statsched_prng.Rng

(* Lanczos approximation for the Gamma function, needed for the analytic
   moments of the Weibull. *)
let gamma_fn =
  let coeffs =
    [|
      676.5203681218851; -1259.1392167224028; 771.32342877765313;
      -176.61502916214059; 12.507343278686905; -0.13857109526572012;
      9.9843695780195716e-6; 1.5056327351493116e-7;
    |]
  in
  let rec gamma z =
    if z < 0.5 then Float.pi /. (sin (Float.pi *. z) *. gamma (1.0 -. z))
    else begin
      let z = z -. 1.0 in
      let x = ref 0.99999999999980993 in
      Array.iteri (fun i c -> x := !x +. (c /. (z +. float_of_int i +. 1.0))) coeffs;
      let t = z +. float_of_int (Array.length coeffs) -. 0.5 in
      sqrt (2.0 *. Float.pi) *. (t ** (z +. 0.5)) *. exp (-.t) *. !x
    end
  in
  gamma

let create ~shape ~scale =
  if shape <= 0.0 then invalid_arg "Weibull.create: shape <= 0";
  if scale <= 0.0 then invalid_arg "Weibull.create: scale <= 0";
  let g1 = gamma_fn (1.0 +. (1.0 /. shape)) in
  let g2 = gamma_fn (1.0 +. (2.0 /. shape)) in
  let mean = scale *. g1 in
  let variance = scale *. scale *. (g2 -. (g1 *. g1)) in
  Distribution.make
    ~name:(Printf.sprintf "Weibull(%g,%g)" shape scale)
    ~mean ~variance
    (fun g -> scale *. ((-.log (1.0 -. Rng.float g)) ** (1.0 /. shape)))
