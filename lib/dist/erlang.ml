module Rng = Statsched_prng.Rng

let create ~k ~rate =
  if k <= 0 then invalid_arg "Erlang.create: k <= 0";
  if rate <= 0.0 then invalid_arg "Erlang.create: rate <= 0";
  let kf = float_of_int k in
  let sample g =
    (* Product-of-uniforms form: one log instead of k. *)
    let prod = ref 1.0 in
    for _ = 1 to k do
      prod := !prod *. (1.0 -. Rng.float g)
    done;
    -.log !prod /. rate
  in
  Distribution.make
    ~name:(Printf.sprintf "Erlang(%d,%g)" k rate)
    ~mean:(kf /. rate)
    ~variance:(kf /. (rate *. rate))
    sample

let of_mean_cv ~mean ~cv =
  if mean <= 0.0 then invalid_arg "Erlang.of_mean_cv: mean <= 0";
  if cv <= 0.0 || cv > 1.0 then invalid_arg "Erlang.of_mean_cv: need 0 < cv <= 1";
  let k = max 1 (int_of_float (Float.round (1.0 /. (cv *. cv)))) in
  create ~k ~rate:(float_of_int k /. mean)
