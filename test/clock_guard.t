The schedlint R2 rule bans wall-clock reads (Unix.time, Unix.gettimeofday,
Sys.time) from lib/, bin/ and bench/ so simulated time can never leak into
results. Self-profiling needs exactly one sanctioned escape hatch: Obs.Clock.
This fixture pins that the allow-R2 waiver exists nowhere else — adding a
second waiver must fail this test and force a review.

(-R rather than -r: the test sandbox materializes sources as symlinks.)

  $ grep -Rl 'schedlint: allow R2' ../lib ../bin ../bench | sort
  ../lib/obs/clock.ml
