module Rng = Statsched_prng.Rng

let sample_moments xs =
  let n = float_of_int (Array.length xs) in
  let mean = Array.fold_left ( +. ) 0.0 xs /. n in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0.0 xs /. n
  in
  (mean, var)

let check xs label =
  if Array.length xs = 0 then invalid_arg (label ^ ": empty sample");
  Array.iter (fun x -> if x < 0.0 then invalid_arg (label ^ ": negative value")) xs

let create xs =
  check xs "Empirical.create";
  let xs = Array.copy xs in
  let n = Array.length xs in
  let mean, variance = sample_moments xs in
  Distribution.make
    ~name:(Printf.sprintf "Empirical(n=%d)" n)
    ~mean ~variance
    (fun g -> xs.(Rng.int g n))

let of_sorted_quantiles q =
  check q "Empirical.of_sorted_quantiles";
  let n = Array.length q in
  for i = 1 to n - 1 do
    if q.(i) < q.(i - 1) then
      invalid_arg "Empirical.of_sorted_quantiles: not sorted"
  done;
  let q = Array.copy q in
  let mean, variance = sample_moments q in
  let sample g =
    if n = 1 then q.(0)
    else begin
      let u = Rng.float g *. float_of_int (n - 1) in
      let i = int_of_float u in
      let i = if i >= n - 1 then n - 2 else i in
      let frac = u -. float_of_int i in
      q.(i) +. (frac *. (q.(i + 1) -. q.(i)))
    end
  in
  Distribution.make
    ~name:(Printf.sprintf "QuantileTable(n=%d)" n)
    ~mean ~variance sample
