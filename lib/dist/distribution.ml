module Rng = Statsched_prng.Rng

type t = {
  name : string;
  mean : float;
  variance : float;
  sample : Rng.t -> float;
}

let name t = t.name
let mean t = t.mean
let variance t = t.variance
let std t = sqrt t.variance
let cv t = std t /. t.mean
let scv t = t.variance /. (t.mean *. t.mean)
let sample t g = t.sample g

let sample_array t g n = Array.init n (fun _ -> t.sample g)

let scaled t c =
  if c <= 0.0 then invalid_arg "Distribution.scaled: c <= 0";
  {
    name = Printf.sprintf "%g*%s" c t.name;
    mean = c *. t.mean;
    variance = c *. c *. t.variance;
    sample = (fun g -> c *. t.sample g);
  }

let make ~name ~mean ~variance sample = { name; mean; variance; sample }
