(** Fault-injection plans for the cluster simulator.

    Each computer can be driven by one or more {e failure processes}: an
    alternating renewal process drawn from {!Statsched_dist} distributions
    — an {e uptime} (time from recovery to the next event onset) followed
    by a {e downtime} (event duration).  An event either takes the
    computer down completely ([degrade = 0], a crash) or runs it at a
    fraction of its nominal speed ([0 < degrade < 1], a transient
    slowdown — CPU contention, thermal throttling, a noisy neighbour).

    Exponential uptimes/downtimes give the classic MTBF/MTTR model;
    {!Statsched_dist.Deterministic} gives periodic maintenance windows,
    and any trace can be replayed through
    {!Statsched_dist.Distribution.make} (trace-driven faults).

    What happens to jobs that are on the failed computer is the plan's
    {!on_failure} policy; how the {e scheduler} reacts is its
    {!reaction}.  Overlapping events on one computer compose by
    multiplying their degrade factors (any crash wins). *)

type on_failure =
  | Drop  (** in-flight jobs are lost (counted in {!Statsched_core.Metrics.t.lost_jobs}) *)
  | Requeue
      (** in-flight jobs go back to the central dispatcher and restart
          from scratch on the computer it picks (no checkpointing) *)
  | Resume  (** jobs stay queued and resume when the computer recovers *)

type reaction =
  | Oblivious  (** the scheduler keeps dispatching as if nothing happened *)
  | Blacklist
      (** static policies re-run Algorithm 1 over the surviving
          (effective-speed) sub-vector and dispatch over it; Least-Load
          variants mask failed computers out of their argmin *)

type process = {
  computers : int list option;  (** [None] = every computer *)
  uptime : Statsched_dist.Distribution.t;
  downtime : Statsched_dist.Distribution.t;
  degrade : float;  (** speed multiplier during the event; [0] = outage *)
}

type plan = {
  processes : process list;
  on_failure : on_failure;
  reaction : reaction;
}

type summary = {
  availability : float;
      (** capacity-weighted fraction of the measurement window the
          cluster was available: [1 − Σᵢ sᵢ·lostᵢ / (window·Σᵢ sᵢ)]
          where [lostᵢ] integrates [1 − rateᵢ(t)] *)
  failures : int;  (** number of up→down transitions over the whole run *)
  lost_jobs : int;  (** jobs dropped after warm-up (policy {!Drop}) *)
  downtime : float array;
      (** per-computer seconds of lost capacity (time-integral of
          [1 − rate]) inside the measurement window *)
}

val process :
  ?computers:int list ->
  ?degrade:float ->
  uptime:Statsched_dist.Distribution.t ->
  downtime:Statsched_dist.Distribution.t ->
  unit ->
  process
(** General constructor; [degrade] defaults to [0] (crash).

    @raise Invalid_argument if [degrade] is outside [0,1), a mean is
    non-positive, or the computer list is empty/negative. *)

val crashes : ?computers:int list -> mtbf:float -> mttr:float -> unit -> process
(** Exponential failures: up for [Exp(mtbf)], down for [Exp(mttr)]. *)

val slowdowns :
  ?computers:int list -> mtbf:float -> mttr:float -> factor:float -> unit -> process
(** Exponential transient degradation to [factor] of nominal speed. *)

val periodic :
  ?computers:int list -> ?degrade:float -> every:float -> duration:float -> unit -> process
(** Deterministic maintenance window: up [every] s, down [duration] s. *)

val plan : ?on_failure:on_failure -> ?reaction:reaction -> process list -> plan
(** Defaults: [Requeue], [Blacklist]. *)

val exponential :
  ?computers:int list ->
  ?on_failure:on_failure ->
  ?reaction:reaction ->
  mtbf:float ->
  mttr:float ->
  unit ->
  plan
(** One-liner for the CLI: a single {!crashes} process on all computers. *)

val none : plan
(** The empty plan — a simulation with [Some none] is bit-identical to
    one with no plan at all. *)

val is_none : plan -> bool

val validate : n:int -> plan -> unit
(** Check all computer indices against the cluster size.

    @raise Invalid_argument on an out-of-range index. *)

val on_failure_name : on_failure -> string
val on_failure_of_string : string -> on_failure option
val reaction_name : reaction -> string
val pp_summary : Format.formatter -> summary -> unit
