(* Tests for the simcheck verification subsystem itself: the band
   decision logic, the scenario string round-trips and replay commands,
   and the fuzzer's generator/shrinker/reporting machinery. *)

open Test_util
module S = Statsched_simcheck
module Cluster = Statsched_cluster
module Confidence = Statsched_stats.Confidence

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)

let band_decisions () =
  let samples = [| 1.0; 1.02; 0.98; 1.01; 0.99 |] in
  let ok = S.Band.of_samples ~name:"hit" ~theory:1.0 samples in
  Alcotest.(check bool) "estimate inside band passes" true ok.S.Band.ok;
  let off = S.Band.of_samples ~name:"miss" ~theory:2.0 samples in
  Alcotest.(check bool) "estimate far outside band fails" false off.S.Band.ok;
  (* The bias allowance admits a small systematic offset the t-interval
     alone would reject. *)
  let biased = S.Band.of_samples ~bias:1.1 ~name:"bias" ~theory:2.0 samples in
  Alcotest.(check bool) "bias allowance widens the band" true biased.S.Band.ok;
  (* An infinite prediction needs an infinite estimate... *)
  let sat = S.Band.of_samples ~name:"sat" ~theory:infinity samples in
  Alcotest.(check bool) "finite estimate vs infinite theory fails" false
    sat.S.Band.ok;
  let sat_ok =
    S.Band.of_samples ~name:"sat" ~theory:infinity [| infinity; infinity |]
  in
  Alcotest.(check bool) "infinite estimate vs infinite theory passes" true
    sat_ok.S.Band.ok;
  (* ...and nan on either side always fails. *)
  let nan_theory = S.Band.of_samples ~name:"nan" ~theory:nan samples in
  Alcotest.(check bool) "nan theory fails" false nan_theory.S.Band.ok;
  (* A single replication has no half-width; the bias term decides. *)
  let single = S.Band.of_samples ~name:"single" ~theory:1.0 [| 1.005 |] in
  Alcotest.(check bool) "single sample within bias passes" true single.S.Band.ok;
  let single_off = S.Band.of_samples ~name:"single" ~theory:1.0 [| 1.5 |] in
  Alcotest.(check bool) "single sample outside bias fails" false
    single_off.S.Band.ok

let check_verdicts () =
  let pass = S.Check.v ~label:"a" ~ok:true ~detail:"fine" in
  let fail = S.Check.v ~label:"b" ~ok:false ~detail:"broken" in
  Alcotest.(check bool) "all_ok" true (S.Check.all_ok [ pass ]);
  Alcotest.(check bool) "all_ok spots failure" false (S.Check.all_ok [ pass; fail ]);
  Alcotest.(check int) "failures filters" 1 (List.length (S.Check.failures [ pass; fail ]));
  let rendered = Format.asprintf "%a" S.Check.pp fail in
  Alcotest.(check bool) "pp shows FAIL" true (contains ~needle:"[FAIL]" rendered);
  Alcotest.(check bool) "pp shows label" true (contains ~needle:"b" rendered)

(* ------------------------------------------------------------------ *)

let scenario_round_trips () =
  List.iter
    (fun d ->
      match S.Scenario.(discipline_of_string (discipline_to_string d)) with
      | Some d' ->
        Alcotest.(check string) "discipline round-trip"
          (S.Scenario.discipline_to_string d)
          (S.Scenario.discipline_to_string d')
      | None -> Alcotest.fail "discipline failed to parse back")
    [ Cluster.Simulation.Ps; Cluster.Simulation.Fcfs; Cluster.Simulation.Srpt;
      Cluster.Simulation.Rr 0.25 ];
  List.iter
    (fun s ->
      match S.Scenario.(size_dist_of_string (size_dist_to_string s)) with
      | Some s' ->
        Alcotest.(check string) "size-dist round-trip"
          (S.Scenario.size_dist_to_string s)
          (S.Scenario.size_dist_to_string s')
      | None -> Alcotest.fail "size dist failed to parse back")
    [ S.Scenario.Exp; S.Scenario.Bp_paper; S.Scenario.Weibull 0.5;
      S.Scenario.Lognormal 2.0; S.Scenario.Erlang 4; S.Scenario.Hyperexp 2.0;
      S.Scenario.Det ];
  List.iter
    (fun bad ->
      Alcotest.(check bool)
        (Printf.sprintf "%S rejected" bad)
        true
        (Option.is_none (S.Scenario.size_dist_of_string bad)))
    [ "weibull:0"; "weibull:x"; "erlang:0"; "hyperexp:0.5"; "nope"; "rr:1" ];
  List.iter
    (fun bad ->
      Alcotest.(check bool)
        (Printf.sprintf "%S rejected" bad)
        true
        (Option.is_none (S.Scenario.discipline_of_string bad)))
    [ "rr:0"; "rr:-1"; "rr"; "lifo" ]

let scenario_size_means () =
  List.iter
    (fun (sd, mean) ->
      check_close ~rel:1e-9
        (S.Scenario.size_dist_to_string sd ^ " hits requested mean")
        mean
        (Statsched_dist.Distribution.mean (S.Scenario.size_distribution ~mean sd)))
    [ (S.Scenario.Exp, 10.0); (S.Scenario.Weibull 0.5, 10.0);
      (S.Scenario.Weibull 0.0125, 3.0); (S.Scenario.Lognormal 2.0, 76.8);
      (S.Scenario.Erlang 4, 5.0); (S.Scenario.Hyperexp 2.0, 50.0);
      (S.Scenario.Det, 10.0) ]

let scenario_replay_command () =
  let sc =
    S.Scenario.v ~discipline:(Cluster.Simulation.Rr 1.25) ~arrival_cv:3.0
      ~size:(S.Scenario.Weibull 0.5) ~mean_size:10.0
      ~faults:
        { S.Scenario.mtbf = 500.0; mttr = 20.0;
          on_failure = Cluster.Fault.Resume }
      ~seed:42L
      ~speeds:[| 1.0; 2.0 |]
      ~rho:0.7 ~policy:"oran" ()
  in
  let cmd = S.Scenario.to_run_command ~horizon:8000.0 ~warmup:2000.0 sc in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains ~needle cmd))
    [ "schedsim run"; "-s 1,2"; "-u 0.7"; "-p oran"; "--discipline rr:1.25";
      "--arrival-cv 3"; "--size-dist weibull:0.5"; "--mean-size 10";
      "--seed 42"; "--horizon 8000"; "--warmup 2000"; "--mtbf 500";
      "--mttr 20"; "--on-failure resume"; "--sanitize" ]

let scenario_scheduler_names () =
  List.iter
    (fun name -> ignore (S.Scenario.scheduler_of_name name))
    S.Scenario.scheduler_names;
  Alcotest.check_raises "unknown scheduler rejected"
    (Invalid_argument "unknown scheduler bogus") (fun () ->
      ignore (S.Scenario.scheduler_of_name "bogus"))

(* ------------------------------------------------------------------ *)

(* Every generated scenario must be runnable and clean at a tiny
   horizon: this is the fuzz property itself, registered in the suite at
   a small count so `dune runtest` exercises generator + property end to
   end (the @simcheck alias runs the bigger tiers). *)
let fuzz_property = QCheck_alcotest.to_alcotest (S.Fuzz.test ~count:10 ())

(* The reporting path: a deliberately false property over the same
   generator must shrink and print a replayable command. *)
let fuzz_reports_replayable_counterexample () =
  let t =
    QCheck2.Test.make ~count:5 ~name:"always-fails"
      ~print:(fun sc -> S.Scenario.to_run_command sc)
      S.Fuzz.scenario_gen
      (fun _ -> false)
  in
  match QCheck2.Test.check_exn ~rand:(Random.State.make [| 11 |] (* schedlint: allow R1: oracle for Rng.split independence *)) t with
  | () -> Alcotest.fail "false property passed"
  | exception QCheck2.Test.Test_fail (_, messages) ->
    Alcotest.(check bool) "counterexample is a replayable command" true
      (List.exists (contains ~needle:"schedsim run") messages)

(* A saturating configuration must be caught by the structural
   invariants, not crash the checker. *)
let fuzz_check_flags_bad_config () =
  let sc =
    S.Scenario.v ~speeds:[| 1.0 |] ~rho:0.5 ~policy:"orr" ~seed:3L
      ~mean_size:1.0 ()
  in
  (match S.Fuzz.check ~horizon:4000.0 ~warmup:1000.0 sc with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("clean config flagged: " ^ e));
  (* Horizon entirely inside the warm-up window: nothing is measured,
     which the invariants must surface as an error, not an exception. *)
  match S.Fuzz.check ~horizon:10.0 ~warmup:9.99 sc with
  | Ok () -> Alcotest.fail "degenerate window passed the invariants"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)

(* One pocket-sized differential case through the real Oracle path:
   tiny scale, so `dune runtest` proves the plumbing (replicate ->
   samples -> bands) without re-running the whole tier. *)
let oracle_smoke () =
  let scale = { Statsched_experiments.Config.horizon = 1.0e4; warmup = 2.5e3; reps = 3 } in
  let checks = S.Oracle.run ~scale ~seed:5L ~jobs:1 () in
  Alcotest.(check bool) "oracle produced checks" true (List.length checks > 20);
  List.iter
    (fun (c : S.Check.t) ->
      if not c.S.Check.ok then
        Alcotest.failf "oracle check failed at smoke scale: %s" c.S.Check.detail)
    checks

let metamorphic_smoke () =
  let scale = { Statsched_experiments.Config.horizon = 8.0e3; warmup = 2.0e3; reps = 3 } in
  let checks = S.Metamorphic.run ~scale ~seed:5L ~jobs:1 () in
  Alcotest.(check bool) "metamorphic produced checks" true (List.length checks > 30);
  List.iter
    (fun (c : S.Check.t) ->
      if not c.S.Check.ok then
        Alcotest.failf "metamorphic check failed at smoke scale: %s"
          c.S.Check.detail)
    checks

let suite =
  [
    test "simcheck: band decisions" band_decisions;
    test "simcheck: check verdicts" check_verdicts;
    test "simcheck: scenario round-trips" scenario_round_trips;
    test "simcheck: scenario size means" scenario_size_means;
    test "simcheck: replay command" scenario_replay_command;
    test "simcheck: scheduler names" scenario_scheduler_names;
    fuzz_property;
    test "simcheck: fuzz reports replayable counterexample"
      fuzz_reports_replayable_counterexample;
    test "simcheck: fuzz check flags degenerate config" fuzz_check_flags_bad_config;
    slow_test "simcheck: oracle smoke" oracle_smoke;
    slow_test "simcheck: metamorphic smoke" metamorphic_smoke;
  ]
