module Engine = Statsched_des.Engine
module Tally = Statsched_stats.Tally

type slot = { job : Job.t; mutable remaining : float }

type t = {
  engine : Engine.t;
  speed : float;
  quantum : float;
  on_departure : Job.t -> unit;
  queue : slot Queue.t;
  mutable serving : bool;
  busy : Tally.t;
  occupancy : Tally.t;
  mutable completed : int;
  mutable work : float;
  mutable n : int;
}

let create ~engine ~speed ~quantum ~on_departure () =
  if speed <= 0.0 then invalid_arg "Rr_server.create: speed <= 0";
  if quantum <= 0.0 then invalid_arg "Rr_server.create: quantum <= 0";
  {
    engine;
    speed;
    quantum;
    on_departure;
    queue = Queue.create ();
    serving = false;
    busy = Tally.create ~start_time:(Engine.now engine) ();
    occupancy = Tally.create ~start_time:(Engine.now engine) ();
    completed = 0;
    work = 0.0;
    n = 0;
  }

let in_system t = t.n

let note_occupancy t =
  Tally.update t.occupancy ~time:(Engine.now t.engine) ~value:(float_of_int t.n)

let rec start_next t =
  if Queue.is_empty t.queue then begin
    t.serving <- false;
    Tally.update t.busy ~time:(Engine.now t.engine) ~value:0.0
  end
  else begin
    t.serving <- true;
    Tally.update t.busy ~time:(Engine.now t.engine) ~value:1.0;
    let slot = Queue.pop t.queue in
    let slice = min t.quantum slot.remaining in
    let delay = slice /. t.speed in
    ignore
      (Engine.schedule t.engine ~delay (fun _ ->
           slot.remaining <- slot.remaining -. slice;
           t.work <- t.work +. slice;
           if slot.remaining <= 1e-12 *. slot.job.Job.size then begin
             slot.job.Job.completion <- Engine.now t.engine;
             t.completed <- t.completed + 1;
             t.n <- t.n - 1;
             note_occupancy t;
             t.on_departure slot.job
           end
           else Queue.push slot t.queue;
           start_next t))
  end

let submit t job =
  let now = Engine.now t.engine in
  if job.Job.start < 0.0 then job.Job.start <- now;
  Queue.push { job; remaining = job.Job.size } t.queue;
  t.n <- t.n + 1;
  note_occupancy t;
  if not t.serving then start_next t

let utilization t =
  Tally.advance t.busy ~time:(Engine.now t.engine);
  let u = Tally.time_average t.busy in
  if Float.is_nan u then 0.0 else u

let mean_in_system t =
  Tally.advance t.occupancy ~time:(Engine.now t.engine);
  let l = Tally.time_average t.occupancy in
  if Float.is_nan l then 0.0 else l

let completed t = t.completed

let work_done t = t.work

let reset_stats t =
  Tally.reset_at t.busy ~time:(Engine.now t.engine);
  note_occupancy t;
  Tally.reset_at t.occupancy ~time:(Engine.now t.engine);
  t.completed <- 0;
  t.work <- 0.0

let to_server t =
  {
    Server_intf.speed = t.speed;
    submit = submit t;
    in_system = (fun () -> in_system t);
    mean_in_system = (fun () -> mean_in_system t);
    utilization = (fun () -> utilization t);
    completed = (fun () -> completed t);
    work_done = (fun () -> work_done t);
    reset_stats = (fun () -> reset_stats t);
    discipline = Printf.sprintf "RR(q=%g)" t.quantum;
  }
