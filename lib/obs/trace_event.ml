type arg =
  | Str of string
  | Num of float
  | Int of int

type event = {
  name : string;
  cat : string;
  ph : string;
  ts : float;  (* microseconds *)
  dur : float option;  (* microseconds, complete events only *)
  pid : int;
  tid : int option;
  args : (string * arg) list;
}

(* Growable buffer, Buffer-style doubling (same idiom as Cluster.Trace). *)
type t = { mutable events : event array; mutable len : int }

let create () = { events = [||]; len = 0 }

let push t e =
  let cap = Array.length t.events in
  if t.len = cap then begin
    let ncap = max 256 (2 * cap) in
    let nevents = Array.make ncap e in
    Array.blit t.events 0 nevents 0 t.len;
    t.events <- nevents
  end;
  t.events.(t.len) <- e;
  t.len <- t.len + 1

let event_count t = t.len

let us seconds = seconds *. 1e6

let complete t ?(cat = "") ?(args = []) ~name ~ts ~dur ~pid ~tid () =
  push t
    { name; cat; ph = "X"; ts = us ts; dur = Some (us dur); pid; tid = Some tid; args }

let instant t ?(cat = "") ?(args = []) ~name ~ts ~pid ~tid () =
  push t { name; cat; ph = "i"; ts = us ts; dur = None; pid; tid = Some tid; args }

let counter t ?(cat = "") ~name ~ts ~pid values =
  let args = List.map (fun (k, v) -> (k, Num v)) values in
  push t { name; cat; ph = "C"; ts = us ts; dur = None; pid; tid = None; args }

let process_name t ~pid name =
  push t
    {
      name = "process_name";
      cat = "";
      ph = "M";
      ts = 0.0;
      dur = None;
      pid;
      tid = None;
      args = [ ("name", Str name) ];
    }

let thread_name t ~pid ~tid name =
  push t
    {
      name = "thread_name";
      cat = "";
      ph = "M";
      ts = 0.0;
      dur = None;
      pid;
      tid = Some tid;
      args = [ ("name", Str name) ];
    }

(* ------------------------------------------------------------------ *)
(* JSON rendering                                                      *)

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no Infinity/NaN literals; clamp the (instrumentation-only)
   oddball to 0 rather than emit an unparseable file. *)
let add_json_float buf x =
  if Float.is_nan x || Float.equal (abs_float x) infinity then Buffer.add_char buf '0'
  else if Float.is_integer x && abs_float x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" x)
  else Buffer.add_string buf (Printf.sprintf "%.12g" x)

let add_arg buf = function
  | Str s -> add_json_string buf s
  | Num x -> add_json_float buf x
  | Int i -> Buffer.add_string buf (string_of_int i)

let add_event buf e =
  Buffer.add_string buf "{\"name\":";
  add_json_string buf e.name;
  if e.cat <> "" then begin
    Buffer.add_string buf ",\"cat\":";
    add_json_string buf e.cat
  end;
  Buffer.add_string buf ",\"ph\":";
  add_json_string buf e.ph;
  Buffer.add_string buf ",\"ts\":";
  add_json_float buf e.ts;
  (match e.dur with
  | Some d ->
    Buffer.add_string buf ",\"dur\":";
    add_json_float buf d
  | None -> ());
  Buffer.add_string buf (Printf.sprintf ",\"pid\":%d" e.pid);
  (match e.tid with
  | Some tid -> Buffer.add_string buf (Printf.sprintf ",\"tid\":%d" tid)
  | None -> ());
  (match e.ph with
  | "i" -> Buffer.add_string buf ",\"s\":\"t\""
  | _ -> ());
  (match e.args with
  | [] -> ()
  | _ :: _ ->
    Buffer.add_string buf ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_json_string buf k;
        Buffer.add_char buf ':';
        add_arg buf v)
      e.args;
    Buffer.add_char buf '}');
  Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create (256 * (t.len + 2)) in
  Buffer.add_string buf "{\"traceEvents\":[";
  for i = 0 to t.len - 1 do
    if i > 0 then Buffer.add_string buf ",\n";
    add_event buf t.events.(i)
  done;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

let write_json t path =
  (* Temp-then-rename, same discipline as {!Registry.write_prometheus}:
     readers never observe a truncated trace. *)
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t));
  Sys.rename tmp path
