type t = {
  q : float;
  heights : float array;  (* marker heights, 5 *)
  positions : float array;  (* actual marker positions, 5 *)
  desired : float array;  (* desired marker positions *)
  increments : float array;  (* desired-position increments per observation *)
  mutable n : int;
  initial : float array;  (* first five observations *)
}

let create q =
  if not (0.0 < q && q < 1.0) then invalid_arg "P2_quantile.create: q outside (0,1)";
  {
    q;
    heights = Array.make 5 0.0;
    positions = [| 1.0; 2.0; 3.0; 4.0; 5.0 |];
    desired = [| 1.0; 1.0 +. (2.0 *. q); 1.0 +. (4.0 *. q); 3.0 +. (2.0 *. q); 5.0 |];
    increments = [| 0.0; q /. 2.0; q; (1.0 +. q) /. 2.0; 1.0 |];
    n = 0;
    initial = Array.make 5 0.0;
  }

let[@inline] parabolic t i d =
  let q = t.heights and pos = t.positions in
  q.(i)
  +. d
     /. (pos.(i + 1) -. pos.(i - 1))
     *. (((pos.(i) -. pos.(i - 1) +. d) *. (q.(i + 1) -. q.(i)) /. (pos.(i + 1) -. pos.(i)))
        +. ((pos.(i + 1) -. pos.(i) -. d) *. (q.(i) -. q.(i - 1)) /. (pos.(i) -. pos.(i - 1))))

let[@inline] linear t i d =
  let q = t.heights and pos = t.positions in
  q.(i) +. (d *. (q.(i + int_of_float d) -. q.(i)) /. (pos.(i + int_of_float d) -. pos.(i)))

let add t x =
  if t.n < 5 then begin
    t.initial.(t.n) <- x;
    t.n <- t.n + 1;
    if t.n = 5 then begin
      Array.sort Float.compare t.initial;
      Array.blit t.initial 0 t.heights 0 5
    end
  end
  else begin
    t.n <- t.n + 1;
    let q = t.heights and pos = t.positions in
    (* Find cell k such that heights.(k) <= x < heights.(k+1), adjusting ends. *)
    let k =
      if x < q.(0) then begin
        q.(0) <- x;
        0
      end
      else if x >= q.(4) then begin
        q.(4) <- x;
        3
      end
      else begin
        let rec find i = if i < 3 && x >= q.(i + 1) then find (i + 1) else i in
        find 0
      end
    in
    for i = k + 1 to 4 do
      pos.(i) <- pos.(i) +. 1.0
    done;
    for i = 0 to 4 do
      t.desired.(i) <- t.desired.(i) +. t.increments.(i)
    done;
    (* Adjust interior markers. *)
    for i = 1 to 3 do
      let d = t.desired.(i) -. pos.(i) in
      if
        (d >= 1.0 && pos.(i + 1) -. pos.(i) > 1.0)
        || (d <= -1.0 && pos.(i - 1) -. pos.(i) < -1.0)
      then begin
        let d = if d >= 0.0 then 1.0 else -1.0 in
        let candidate = parabolic t i d in
        let new_height =
          if q.(i - 1) < candidate && candidate < q.(i + 1) then candidate
          else linear t i d
        in
        q.(i) <- new_height;
        pos.(i) <- pos.(i) +. d
      end
    done
  end

let count t = t.n

let estimate t =
  if t.n = 0 then nan
  else if t.n < 5 then begin
    let sorted = Array.sub t.initial 0 t.n in
    Array.sort Float.compare sorted;
    (* Nearest-rank quantile: the ⌈q·n⌉-th order statistic.  Truncating
       q·(n−1) instead rounded every small-sample estimate toward the
       minimum (e.g. the 0.99-quantile of two observations came out as
       the smaller one). *)
    let idx = max 0 (min (t.n - 1) (int_of_float (ceil (t.q *. float_of_int t.n)) - 1)) in
    sorted.(idx)
  end
  else t.heights.(2)
