(* Interprocedural rules over the call graph.

   R7 — determinism taint.  A lib/ function that transitively reaches a
   non-deterministic sink (Stdlib.Random, the wall clock, Domain.spawn)
   outside the sanctioned zones (lib/prng, lib/par, Obs.Clock) breaks
   replayability even when the sink itself sits in an allow-marked
   helper elsewhere.  We propagate taint backwards from sinks along
   reverse call edges and report each tainted lib/ definition with the
   shortest call path to a sink.

   R8 — static zero-alloc.  Definitions carrying [@schedsim.hot] (and
   everything they transitively call inside the analysed program) must
   not contain allocating constructs.  [@schedsim.cold] stops the
   traversal (amortised growth paths).  The construct scan is
   conservative-but-practical: it mirrors what flambda-less OCaml
   actually boxes, including the Simplif unboxing of non-escaping local
   refs. *)

open Typedtree

type sink = { name : string; why : string }

let sinks =
  [
    { name = "Random."; why = "Stdlib.Random" };
    { name = "Unix.time"; why = "wall clock (Unix.time)" };
    { name = "Unix.gettimeofday"; why = "wall clock (Unix.gettimeofday)" };
    { name = "Sys.time"; why = "wall clock (Sys.time)" };
    { name = "Domain.spawn"; why = "Domain.spawn" };
  ]

let sink_of canon =
  let canon = Canon.strip_stdlib canon in
  List.find_opt
    (fun s ->
      if String.length s.name > 0 && s.name.[String.length s.name - 1] = '.'
      then Canon.starts_with ~prefix:s.name canon
      else String.equal s.name canon)
    sinks

let pos_of (loc : Location.t) =
  (loc.loc_start.Lexing.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)

let short canon =
  (* "Statsched_des.Engine.step" -> "Engine.step" for readable paths *)
  match String.rindex_opt canon '.' with
  | None -> canon
  | Some i -> (
    match String.rindex_from_opt canon (i - 1) '.' with
    | None -> canon
    | Some j -> String.sub canon (j + 1) (String.length canon - j - 1))

(* Defined functions render as "Module.fn"; the final sink keeps its
   full (stdlib-stripped) name so "Random.State.make" stays legible. *)
let path_to_string ?(program : Callgraph.t option) chain =
  let render c =
    match program with
    | Some p when not (Hashtbl.mem p.Callgraph.defs c) -> Canon.strip_stdlib c
    | _ -> short c
  in
  String.concat " -> " (List.map render chain)

(* ------------------------------------------------------------------ *)
(* R7: determinism taint *)

let allow_lookup program =
  let by_src = Hashtbl.create 16 in
  List.iter
    (fun (u : Callgraph.unit_ctx) ->
      Hashtbl.replace by_src u.info.Loader.src u.allow)
    program.Callgraph.units;
  fun src ~line rule ->
    match Hashtbl.find_opt by_src src with
    | Some t -> Source.allowed t ~line rule
    | None -> false

let run_r7 (program : Callgraph.t) report =
  let allowed = allow_lookup program in
  (* Seed: definitions that reference a sink directly.  A sink reference
     under an explicit `allow R7` marker is sanctioned; sanctioned zones
     (lib/prng, lib/par, Obs.Clock) never seed and never propagate. *)
  let taint : (string, string * string list) Hashtbl.t = Hashtbl.create 64 in
  (* canon -> (why, chain from this def down to the sink) *)
  Callgraph.iter_defs program (fun def ->
      if not (Source.taint_sanctioned def.Callgraph.src) then
        List.iter
          (fun (callee, loc) ->
            match sink_of callee with
            | Some s
              when (not (Hashtbl.mem taint def.Callgraph.canon))
                   && not
                        (allowed def.Callgraph.src
                           ~line:(fst (pos_of loc))
                           "R7") ->
              Hashtbl.add taint def.Callgraph.canon
                (s.why, [ def.Callgraph.canon; callee ])
            | _ -> ())
          def.Callgraph.refs);
  (* BFS along reverse edges: callers of tainted defs become tainted.
     iter_defs seeds in sorted order, so shortest chains are stable. *)
  let pending = Queue.create () in
  Callgraph.iter_defs program (fun def ->
      if Hashtbl.mem taint def.Callgraph.canon then Queue.add def pending);
  while not (Queue.is_empty pending) do
    let def = Queue.pop pending in
    let why, chain = Hashtbl.find taint def.Callgraph.canon in
    List.iter
      (fun ((caller : Callgraph.def), _loc) ->
        if
          (not (Hashtbl.mem taint caller.Callgraph.canon))
          && not (Source.taint_sanctioned caller.Callgraph.src)
        then begin
          Hashtbl.add taint caller.Callgraph.canon
            (why, caller.Callgraph.canon :: chain);
          Queue.add caller pending
        end)
      (Callgraph.callers_of program def.Callgraph.canon)
  done;
  Callgraph.iter_defs program (fun def ->
      if Source.in_lib def.Callgraph.src then
        match Hashtbl.find_opt taint def.Callgraph.canon with
        | Some (why, chain) ->
          let line, col = pos_of def.Callgraph.loc in
          report
            {
              Diag.file = def.Callgraph.src;
              line;
              col;
              rule = "R7";
              msg =
                Printf.sprintf
                  "%s reaches %s via %s; deterministic replay breaks \
                   (route through lib/prng, lib/par or Obs.Clock)"
                  (short def.Callgraph.canon)
                  why (path_to_string ~program chain);
            }
        | None -> ())

(* ------------------------------------------------------------------ *)
(* R8: static zero-alloc on [@schedsim.hot] paths *)

let hot_attr = "schedsim.hot"
let cold_attr = "schedsim.cold"

(* Calls that allocate no matter what the arguments are. *)
let allocating_calls =
  [
    "Array.make"; "Array.init"; "Array.copy"; "Array.append"; "Array.sub";
    "Array.to_list"; "Array.of_list"; "Array.map"; "Array.mapi";
    "List.map"; "List.mapi"; "List.rev"; "List.append"; "List.concat";
    "List.filter"; "List.init"; "List.sort"; "List.rev_map"; "List.rev_append";
    "Bytes.create"; "Bytes.make"; "Bytes.copy"; "Bytes.sub"; "Bytes.to_string";
    "Bytes.of_string"; "String.make"; "String.init"; "String.sub";
    "String.concat"; "String.cat"; "String.uppercase_ascii";
    "String.lowercase_ascii"; "String.map"; "String.split_on_char";
    "String.trim"; "string_of_int"; "string_of_float"; "string_of_bool";
    "float_of_string"; "int_of_string"; "Buffer.create"; "Buffer.contents";
    "Hashtbl.create"; "Hashtbl.copy"; "Hashtbl.fold"; "Queue.create";
    "Stack.create"; "ref"; "Atomic.make"; "Option.some"; "Option.map";
    "Result.ok"; "Result.error"; "Lazy.from_fun"; "Seq.map"; "Seq.filter";
    "Int64.to_string"; "Int64.of_string"; "Float.to_string";
    "Printexc.to_string"; "Format.asprintf"; "Filename.concat";
  ]

let allocating_prefixes = [ "Printf."; "Format."; "Scanf." ]

let is_allocating_call canon =
  List.mem canon allocating_calls
  || List.exists (fun p -> Canon.starts_with ~prefix:p canon) allocating_prefixes

(* Exception-raising helpers whose argument construction we ignore: the
   raise path is off the hot path by definition. *)
let raise_like =
  [
    "raise"; "raise_notrace"; "failwith"; "invalid_arg"; "assert_failure";
    "exit";
  ]

(* --- escape analysis for local refs ------------------------------- *)
(* A `let r = ref e in ...` where every occurrence of r is !r, r := _,
   incr/decr r or r.contents compiles to a mutable stack slot (Simplif
   unboxing); it does not allocate.  Any other use (passed to a
   function, returned, stored) makes the ref escape. *)

let nonescaping_refs (body : expression) =
  let candidates = Hashtbl.create 8 in (* stamp -> unit, refs bound by let *)
  let escaped = Hashtbl.create 8 in
  let deref_ops = [ "!"; ":="; "incr"; "decr" ] in
  let rec is_ref_alloc (e : expression) =
    match e.exp_desc with
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, [ (_, Some _) ]) ->
      String.equal (Path.last p) "ref"
    | _ -> false
  and expr_escapes parent_safe (e : expression) =
    (* Walk marking ident occurrences; parent_safe is true when this
       occurrence position is a sanctioned deref/assign argument. *)
    match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) ->
      if Hashtbl.mem candidates (Ident.unique_name id) && not parent_safe then
        Hashtbl.replace escaped (Ident.unique_name id) ()
    | Texp_let (_, vbs, cont) ->
      List.iter
        (fun (vb : value_binding) ->
          match (vb.vb_pat.pat_desc, is_ref_alloc vb.vb_expr) with
          | Tpat_var (id, _), true ->
            Hashtbl.replace candidates (Ident.unique_name id) ();
            (* still walk the ref payload *)
            (match vb.vb_expr.exp_desc with
            | Texp_apply (_, args) ->
              List.iter
                (function _, Some a -> expr_escapes false a | _ -> ())
                args
            | _ -> ())
          | _ -> expr_escapes false vb.vb_expr)
        vbs;
      expr_escapes false cont
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) ->
      let op = Path.last p in
      let safe_first = List.mem op deref_ops in
      List.iteri
        (fun i arg ->
          match arg with
          | _, Some a -> expr_escapes (safe_first && i = 0) a
          | _ -> ())
        args
    | Texp_field (inner, _, _) ->
      (* r.contents *)
      expr_escapes true inner
    | Texp_setfield (inner, _, _, v) ->
      expr_escapes true inner;
      expr_escapes false v
    | _ -> iter_children e
  and iter_children e =
    let expr _sub e' = expr_escapes false e' in
    let it = { Tast_iterator.default_iterator with expr } in
    Tast_iterator.default_iterator.expr it e
  in
  expr_escapes false body;
  fun (stamp : string) ->
    Hashtbl.mem candidates stamp && not (Hashtbl.mem escaped stamp)

(* --- the construct scan ------------------------------------------- *)

type alloc = { loc : Location.t; what : string }

let rec skip_function_spine (e : expression) =
  match e.exp_desc with
  | Texp_function { cases = [ { c_rhs; c_guard = None; _ } ]; _ } ->
    skip_function_spine c_rhs
  | _ -> e

let find_allocs (program : Callgraph.t) (ctx : Callgraph.unit_ctx)
    (def : Callgraph.def) =
  let acc = ref [] in
  let body = skip_function_spine def.Callgraph.body in
  let ref_ok = nonescaping_refs body in
  let add loc what = acc := { loc; what } :: !acc in
  let canon_of p =
    Canon.value ~aliases:ctx.Callgraph.aliases
      ~unit_name:ctx.Callgraph.info.Loader.unit_name p
  in
  let rec walk (e : expression) =
    match e.exp_desc with
    | Texp_function _ -> add e.exp_loc "closure allocation"
    | Texp_tuple _ ->
      add e.exp_loc "tuple allocation";
      children e
    | Texp_construct (_, cd, args) ->
      if args <> [] && not (format_constructor cd) then
        add e.exp_loc ("constructor " ^ cd.Types.cstr_name ^ " allocation");
      children e
    | Texp_variant (_, Some _) ->
      add e.exp_loc "polymorphic-variant allocation";
      children e
    | Texp_record _ ->
      add e.exp_loc "record allocation";
      children e
    | Texp_array _ ->
      add e.exp_loc "array literal allocation";
      children e
    | Texp_lazy _ -> add e.exp_loc "lazy allocation"
    | Texp_assert _ -> () (* assertion failure path is cold *)
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> apply e p args
    | Texp_let (_, vbs, cont) ->
      List.iter
        (fun (vb : value_binding) ->
          match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
          | ( Tpat_var (id, _),
              Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, ref_args) )
            when String.equal (Path.last p) "ref"
                 && ref_ok (Ident.unique_name id) ->
            (* unboxed local ref: scan only the payload *)
            List.iter (function _, Some a -> walk a | _ -> ()) ref_args
          | _ -> walk vb.vb_expr)
        vbs;
      walk cont
    | _ -> children e
  and apply e p args =
    let raw = Path.last p in
    if List.mem raw raise_like then () (* exception path: skip subtree *)
    else begin
      let canon = canon_of p in
      if is_allocating_call canon then
        add e.exp_loc ("call to allocating " ^ canon)
      else if String.equal raw "ref" then
        (* bare `ref e` not bound via the let pattern above: allocates *)
        add e.exp_loc "ref allocation"
      else begin
        (* Partial application of a known definition boxes a closure. *)
        (match Callgraph.find_def program canon with
        | Some callee when callee.Callgraph.arity > 0 ->
          let n_args =
            List.length (List.filter (fun (_, a) -> a <> None) args)
          in
          if n_args < callee.Callgraph.arity
             || List.exists (fun (_, a) -> a = None) args
          then
            add e.exp_loc
              ("partial application of " ^ short canon
             ^ " (closure allocation)")
        | _ -> ())
      end;
      List.iter (function _, Some a -> walk a | _ -> ()) args
    end
  and format_constructor (cd : Types.constructor_description) =
    (* Format-string literals elaborate to CamlinternalFormat
       constructors; flagging them is pure noise (the Printf call itself
       is already flagged). *)
    match Types.get_desc cd.Types.cstr_res with
    | Types.Tconstr (p, _, _) ->
      let s = Path.name p in
      Canon.starts_with ~prefix:"CamlinternalFormat" s
      || Canon.starts_with ~prefix:"Stdlib.format" s
      || Canon.starts_with ~prefix:"format" s
    | _ -> false
  and children e =
    match e.exp_desc with
    | Texp_tuple es | Texp_array es | Texp_construct (_, _, es) ->
      List.iter walk es
    | Texp_variant (_, Some e') -> walk e'
    | Texp_record { fields; extended_expression } ->
      (match extended_expression with Some e' -> walk e' | None -> ());
      Array.iter
        (function _, Overridden (_, e') -> walk e' | _ -> ())
        fields
    | _ ->
      let expr _sub e' = walk e' in
      let it = { Tast_iterator.default_iterator with expr } in
      Tast_iterator.default_iterator.expr it e
  in
  walk body;
  List.rev !acc

(* --- traversal from hot roots ------------------------------------- *)

let unit_of (program : Callgraph.t) src =
  List.find_opt
    (fun (u : Callgraph.unit_ctx) -> String.equal u.info.Loader.src src)
    program.Callgraph.units

let run_r8 (program : Callgraph.t) report =
  let roots = ref [] in
  Callgraph.iter_defs program (fun def ->
      if Callgraph.has_attr hot_attr def then roots := def :: !roots);
  let roots = List.rev !roots in
  let visited = Hashtbl.create 64 in
  let reported = Hashtbl.create 64 in
  let rec visit chain (def : Callgraph.def) =
    if Hashtbl.mem visited def.Callgraph.canon then ()
    else begin
      Hashtbl.add visited def.Callgraph.canon ();
      let chain = def.Callgraph.canon :: chain in
      (match unit_of program def.Callgraph.src with
      | Some ctx ->
        List.iter
          (fun (a : alloc) ->
            let line, col =
              ( a.loc.loc_start.Lexing.pos_lnum,
                a.loc.loc_start.pos_cnum - a.loc.loc_start.pos_bol )
            in
            let key = (def.Callgraph.src, line, col, a.what) in
            if not (Hashtbl.mem reported key) then begin
              Hashtbl.add reported key ();
              report
                {
                  Diag.file = def.Callgraph.src;
                  line;
                  col;
                  rule = "R8";
                  msg =
                    Printf.sprintf
                      "%s on hot path %s; [@schedsim.hot] code must not \
                       allocate"
                      a.what
                      (path_to_string ~program (List.rev chain));
                }
            end)
          (find_allocs program ctx def)
      | None -> ());
      (* Recurse into known callees unless marked cold. *)
      List.iter
        (fun (callee, _) ->
          match Callgraph.find_def program callee with
          | Some cd when not (Callgraph.has_attr cold_attr cd) ->
            visit chain cd
          | _ -> ())
        def.Callgraph.refs
    end
  in
  List.iter
    (fun root ->
      (* each root gets a fresh visited set so paths stay attributable;
         the reported table still dedups identical diagnostics *)
      Hashtbl.reset visited;
      visit [] root)
    roots
