(** Helpers shared by the figure experiments. *)

val over_schedulers :
  ?seed:int64 ->
  ?jobs:int ->
  ?faults:Statsched_cluster.Fault.plan ->
  scale:Config.scale ->
  schedulers:(string * Statsched_cluster.Scheduler.kind) list ->
  speeds:float array ->
  workload:Statsched_cluster.Workload.t ->
  unit ->
  (string * Runner.point) list
(** Measure every scheduler on the same cluster and workload.  Each
    scheduler sees identical arrival and size streams per replication
    (common random numbers), and the same fault plan when one is
    given.  [jobs] fans each scheduler's replications across domains
    (see {!Runner.replicate}); the output is identical for every
    [jobs]. *)

type metric = [ `Time | `Ratio | `Fairness ]

val metric_name : metric -> string

val cell_of : metric -> Runner.point -> Report.cell

val sweep_of_rows :
  title:string ->
  xlabel:string ->
  metric:metric ->
  (float * (string * Runner.point) list) list ->
  Report.sweep
(** Turn per-x scheduler measurements into a printable series table for
    one metric. *)
