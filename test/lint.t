schedlint enforces the repo's determinism & correctness rules (R1-R6) with
file:line:col diagnostics and exit code 1.  One fixture per rule, plus the
escape-hatch comment and the path scoping.

R1: Stdlib.Random is banned outside lib/prng/ (determinism):

  $ mkdir -p lib/prng bin
  $ cat > lib/r1.ml <<'EOF'
  > let roll () = Random.int 6
  > let seed () = Random.self_init ()
  > let qualified () = Stdlib.Random.float 1.0
  > EOF
  $ schedlint lib/r1.ml
  lib/r1.ml:1:15: [R1] Stdlib.Random is non-deterministic here; draw from Statsched_prng.Rng
  lib/r1.ml:2:15: [R1] Stdlib.Random is non-deterministic here; draw from Statsched_prng.Rng
  lib/r1.ml:3:20: [R1] Stdlib.Random is non-deterministic here; draw from Statsched_prng.Rng
  schedlint: 3 violations in 1 file scanned
  [1]

...but allowed inside lib/prng/ (the seeded RNG layer itself):

  $ cp lib/r1.ml lib/prng/r1.ml
  $ schedlint lib/prng/r1.ml

R2: wall-clock reads are banned (simulated time comes from the engine):

  $ cat > bin/r2.ml <<'EOF'
  > let now () = Unix.gettimeofday ()
  > let t0 = Unix.time
  > let cpu () = Sys.time ()
  > EOF
  $ schedlint bin/r2.ml
  bin/r2.ml:1:14: [R2] Unix.gettimeofday reads the wall clock; simulated time comes from Engine.now
  bin/r2.ml:2:10: [R2] Unix.time reads the wall clock; simulated time comes from Engine.now
  bin/r2.ml:3:14: [R2] Sys.time reads the wall clock; simulated time comes from Engine.now
  schedlint: 3 violations in 1 file scanned
  [1]

R3: no polymorphic equality on floats, no physical equality at all:

  $ cat > lib/r3.ml <<'EOF'
  > let is_zero x = x = 0.0
  > let not_one x = x <> 1.0
  > let annotated (x : float) y = (x : float) = y
  > let physical a b = a == b || a != b
  > let fine x = x < 0.5 && Float.equal x x
  > EOF
  $ schedlint lib/r3.ml
  lib/r3.ml:1:17: [R3] polymorphic = on a float; compare with a tolerance or Float.equal
  lib/r3.ml:2:17: [R3] polymorphic <> on a float; compare with a tolerance or Float.equal
  lib/r3.ml:3:31: [R3] polymorphic = on a float; compare with a tolerance or Float.equal
  lib/r3.ml:4:22: [R3] physical equality (==) outside physical-identity idioms
  lib/r3.ml:4:32: [R3] physical equality (!=) outside physical-identity idioms
  schedlint: 5 violations in 1 file scanned
  [1]

R4: partial functions are banned in lib/ (but tolerated in bin/):

  $ cat > lib/r4.ml <<'EOF'
  > let first xs = List.hd xs
  > let rest xs = List.tl xs
  > let force o = Option.get o
  > let cast x = Obj.magic x
  > EOF
  $ schedlint lib/r4.ml
  lib/r4.ml:1:16: [R4] List.hd is partial; match explicitly or keep the invariant in the type
  lib/r4.ml:2:15: [R4] List.tl is partial; match explicitly or keep the invariant in the type
  lib/r4.ml:3:15: [R4] Option.get is partial; match explicitly or keep the invariant in the type
  lib/r4.ml:4:14: [R4] Obj.magic is partial; match explicitly or keep the invariant in the type
  schedlint: 4 violations in 1 file scanned
  [1]
  $ cp lib/r4.ml bin/r4.ml
  $ schedlint bin/r4.ml

R5: no top-level mutable state in lib/ (locals and record fields are fine):

  $ cat > lib/r5.ml <<'EOF'
  > let counter = ref 0
  > let cache = Hashtbl.create 16
  > module Nested = struct
  >   let hidden = ref []
  > end
  > let local () = let r = ref 0 in incr r; !r
  > EOF
  $ schedlint lib/r5.ml
  lib/r5.ml:1:1: [R5] top-level mutable state (ref) in lib/; thread state through a record
  lib/r5.ml:2:1: [R5] top-level mutable state (Hashtbl) in lib/; thread state through a record
  lib/r5.ml:4:3: [R5] top-level mutable state (ref) in lib/; thread state through a record
  schedlint: 3 violations in 1 file scanned
  [1]

R6: raw Domain.spawn is banned outside lib/par/ — all parallelism goes
through the Par domain pool, so the bitwise-determinism guarantee of
parallel replication has a single point of proof (Domain.join and the
rest of the Domain API stay available for the pool's callers):

  $ cat > lib/r6.ml <<'EOF'
  > let fan_out f = Domain.spawn f
  > let join d = Domain.join d
  > let q f = Stdlib.Domain.spawn f
  > EOF
  $ schedlint lib/r6.ml
  lib/r6.ml:1:17: [R6] Domain.spawn outside lib/par; fan out through Statsched_par.Par.map
  lib/r6.ml:3:11: [R6] Domain.spawn outside lib/par; fan out through Statsched_par.Par.map
  schedlint: 2 violations in 1 file scanned
  [1]

...but allowed inside lib/par/ (the domain pool itself):

  $ mkdir -p lib/par
  $ cp lib/r6.ml lib/par/r6.ml
  $ schedlint lib/par/r6.ml

The escape hatch suppresses a named rule on the same line or the line
below the comment; other rules still fire:

  $ cat > lib/allow.ml <<'EOF'
  > let memo = Hashtbl.create 16 (* schedlint: allow R5 *)
  > (* schedlint: allow R3 *)
  > let is_zero x = x = 0.0
  > let still_bad x = x = 1.0
  > EOF
  $ schedlint lib/allow.ml
  lib/allow.ml:4:19: [R3] polymorphic = on a float; compare with a tolerance or Float.equal
  schedlint: 1 violation in 1 file scanned
  [1]

Directories are scanned recursively; a clean tree exits 0:

  $ cat > lib/clean.ml <<'EOF'
  > let near_zero x = abs_float x < 1e-9
  > let first = function [] -> None | x :: _ -> Some x
  > EOF
  $ rm lib/r1.ml lib/r3.ml lib/r4.ml lib/r5.ml lib/r6.ml lib/allow.ml bin/r2.ml bin/r4.ml
  $ schedlint lib bin

Unparseable input is a distinct failure (exit 2):

  $ echo 'let let let' > lib/broken.ml
  $ schedlint lib/broken.ml 2>/dev/null
  [2]

Missing roots are reported:

  $ schedlint no/such/dir
  schedlint: no such file or directory: no/such/dir
  [2]
