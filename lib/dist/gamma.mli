(** Gamma distribution.

    General-purpose positive distribution with shape [k] and scale [θ];
    interpolates smoothly between exponential-like ([k = 1]) and
    near-deterministic ([k] large) job sizes, complementing {!Erlang}
    (which is Gamma with integer shape). *)

val create : shape:float -> scale:float -> Distribution.t
(** Mean [k·θ], variance [k·θ²].  Sampling by Marsaglia–Tsang (2000) for
    [shape >= 1] and the Ahrens–Dieter boost for [shape < 1].

    @raise Invalid_argument if [shape <= 0] or [scale <= 0]. *)

val of_mean_cv : mean:float -> cv:float -> Distribution.t
(** Parameterise from mean and coefficient of variation:
    [shape = 1/cv²], [scale = mean·cv²].

    @raise Invalid_argument if [mean <= 0] or [cv <= 0]. *)
