type scale = { horizon : float; warmup : float; reps : int }

let quick = { horizon = 1.0e5; warmup = 2.5e4; reps = 2 }

let default_scale = { horizon = 4.0e5; warmup = 1.0e5; reps = 5 }

let paper = { horizon = 4.0e6; warmup = 1.0e6; reps = 10 }

let of_env () =
  let set v = match Sys.getenv_opt v with Some "" | None -> false | Some _ -> true in
  if set "FULL" then paper else if set "QUICK" then quick else default_scale

let equal_scale a b =
  Float.equal a.horizon b.horizon
  && Float.equal a.warmup b.warmup
  && Int.equal a.reps b.reps

let scale_name s =
  if equal_scale s paper then "paper"
  else if equal_scale s quick then "quick"
  else if equal_scale s default_scale then "default"
  else Printf.sprintf "custom(horizon=%g,reps=%d)" s.horizon s.reps

let default_seed = 20260705L

let base_utilization = 0.7
