open Test_util
module Dist = Statsched_dist
module D = Dist.Distribution
module Rng = Statsched_prng.Rng

(* Empirical moment check: sample n variates and compare against the
   distribution's analytic mean / CV.  Tolerances depend on tail weight. *)
let empirical_check ?(n = 200_000) ?(mean_rel = 0.03) ?(cv_rel = 0.1) d () =
  let g = rng () in
  let w = Statsched_stats.Welford.create () in
  for _ = 1 to n do
    Statsched_stats.Welford.add w (D.sample d g)
  done;
  check_close ~rel:mean_rel
    (D.name d ^ ": empirical mean")
    (D.mean d)
    (Statsched_stats.Welford.mean w);
  if Float.is_finite (D.variance d) && D.variance d > 0.0 then
    check_close ~rel:cv_rel
      (D.name d ^ ": empirical std")
      (D.std d)
      (Statsched_stats.Welford.std w)

let exponential_analytic () =
  let d = Dist.Exponential.create ~rate:0.25 in
  check_float "mean" 4.0 (D.mean d);
  check_float "variance" 16.0 (D.variance d);
  check_float "cv" 1.0 (D.cv d);
  check_float "scv" 1.0 (D.scv d)

let exponential_of_mean () =
  let d = Dist.Exponential.of_mean 76.8 in
  check_float ~eps:1e-12 "mean" 76.8 (D.mean d)

let exponential_errors () =
  Alcotest.check_raises "rate <= 0" (Invalid_argument "Exponential.create: rate <= 0")
    (fun () -> ignore (Dist.Exponential.create ~rate:0.0));
  Alcotest.check_raises "mean <= 0" (Invalid_argument "Exponential.of_mean: mean <= 0")
    (fun () -> ignore (Dist.Exponential.of_mean (-1.0)))

let exponential_positive () =
  let g = rng () in
  for _ = 1 to 10_000 do
    Alcotest.(check bool) "positive" true (Dist.Exponential.sample ~rate:2.0 g > 0.0)
  done

let hyper_balanced_fit () =
  let (p1, r1), (p2, r2) = Dist.Hyperexponential.branch_params ~mean:2.2 ~cv:3.0 in
  check_float ~eps:1e-12 "probabilities sum to 1" 1.0 (p1 +. p2);
  (* Balanced means: each branch contributes half the mean. *)
  check_float ~eps:1e-9 "branch 1 contributes mean/2" (2.2 /. 2.0) (p1 /. r1);
  check_float ~eps:1e-9 "branch 2 contributes mean/2" (2.2 /. 2.0) (p2 /. r2)

let hyper_analytic_moments () =
  let d = Dist.Hyperexponential.fit_cv ~mean:2.2 ~cv:3.0 in
  check_float ~eps:1e-9 "mean" 2.2 (D.mean d);
  check_float ~eps:1e-6 "cv" 3.0 (D.cv d)

let hyper_cv_one_degenerates () =
  let d = Dist.Hyperexponential.fit_cv ~mean:5.0 ~cv:1.0 in
  check_float ~eps:1e-12 "mean" 5.0 (D.mean d);
  check_float ~eps:1e-9 "cv" 1.0 (D.cv d)

let hyper_errors () =
  Alcotest.check_raises "cv < 1" (Invalid_argument "Hyperexponential.fit_cv: cv < 1")
    (fun () -> ignore (Dist.Hyperexponential.fit_cv ~mean:1.0 ~cv:0.5));
  Alcotest.check_raises "mean <= 0" (Invalid_argument "Hyperexponential.fit_cv: mean <= 0")
    (fun () -> ignore (Dist.Hyperexponential.fit_cv ~mean:0.0 ~cv:2.0));
  Alcotest.check_raises "probs not summing"
    (Invalid_argument "Hyperexponential.create: probabilities must sum to 1") (fun () ->
      ignore (Dist.Hyperexponential.create ~probs:[| 0.5; 0.4 |] ~rates:[| 1.0; 2.0 |]));
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Hyperexponential.create: non-positive rate") (fun () ->
      ignore (Dist.Hyperexponential.create ~probs:[| 0.5; 0.5 |] ~rates:[| 1.0; 0.0 |]))

let bp_paper_mean () =
  (* The paper quotes 76.8 s for B(10, 21600, 1). *)
  let d = Dist.Bounded_pareto.create_paper_default () in
  check_close ~rel:0.001 "mean 76.8" 76.8 (D.mean d)

let bp_moment_continuity () =
  (* The alpha = j logarithmic branch must agree with the limit of the
     general branch. *)
  let base = { Dist.Bounded_pareto.k = 10.0; p = 21600.0; alpha = 1.0 } in
  let exact = Dist.Bounded_pareto.raw_moment base 1 in
  let near = Dist.Bounded_pareto.raw_moment { base with alpha = 1.0 +. 1e-7 } 1 in
  check_close ~rel:1e-4 "alpha=1 matches alpha->1 limit" exact near

let bp_bounds () =
  let prm = Dist.Bounded_pareto.paper_default in
  let g = rng () in
  for _ = 1 to 50_000 do
    let x = Dist.Bounded_pareto.sample prm g in
    Alcotest.(check bool) "k <= x <= p" true (10.0 <= x && x <= 21600.0)
  done

let bp_quantile_monotone () =
  let prm = Dist.Bounded_pareto.paper_default in
  let prev = ref 0.0 in
  for i = 0 to 99 do
    let q = Dist.Bounded_pareto.quantile prm (float_of_int i /. 100.0) in
    Alcotest.(check bool) "monotone quantile" true (q >= !prev);
    prev := q
  done;
  check_float ~eps:1e-9 "quantile 0 = k" 10.0 (Dist.Bounded_pareto.quantile prm 0.0)

let bp_errors () =
  Alcotest.check_raises "k >= p" (Invalid_argument "Bounded_pareto: need 0 < k < p")
    (fun () ->
      Dist.Bounded_pareto.validate { Dist.Bounded_pareto.k = 5.0; p = 5.0; alpha = 1.0 });
  Alcotest.check_raises "alpha <= 0" (Invalid_argument "Bounded_pareto: need alpha > 0")
    (fun () ->
      Dist.Bounded_pareto.validate { Dist.Bounded_pareto.k = 1.0; p = 5.0; alpha = 0.0 })

let bp_heavy_tail () =
  (* With alpha = 1 a significant load fraction comes from the largest few
     percent of jobs: top 1% of sampled mass should exceed 15% of total. *)
  let prm = Dist.Bounded_pareto.paper_default in
  let g = rng () in
  let n = 100_000 in
  let xs = Array.init n (fun _ -> Dist.Bounded_pareto.sample prm g) in
  Array.sort compare xs;
  let total = Array.fold_left ( +. ) 0.0 xs in
  let top = ref 0.0 in
  for i = n - (n / 100) to n - 1 do
    top := !top +. xs.(i)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "top 1%% carries %.1f%% of load" (100.0 *. !top /. total))
    true
    (!top /. total > 0.15)

let uniform_analytic () =
  let d = Dist.Uniform_dist.create ~a:2.0 ~b:6.0 in
  check_float "mean" 4.0 (D.mean d);
  check_float ~eps:1e-12 "variance" (16.0 /. 12.0) (D.variance d)

let uniform_bounds () =
  let d = Dist.Uniform_dist.create ~a:0.0 ~b:1.0 in
  let g = rng () in
  for _ = 1 to 10_000 do
    let x = D.sample d g in
    Alcotest.(check bool) "in range" true (0.0 <= x && x < 1.0)
  done

let deterministic_constant () =
  let d = Dist.Deterministic.create 3.5 in
  let g = rng () in
  for _ = 1 to 100 do
    check_float "constant" 3.5 (D.sample d g)
  done;
  check_float "zero variance" 0.0 (D.variance d)

let erlang_analytic () =
  let d = Dist.Erlang.create ~k:4 ~rate:2.0 in
  check_float "mean" 2.0 (D.mean d);
  check_float "variance" 1.0 (D.variance d);
  check_float ~eps:1e-12 "cv = 1/sqrt k" 0.5 (D.cv d)

let erlang_of_mean_cv () =
  let d = Dist.Erlang.of_mean_cv ~mean:10.0 ~cv:0.5 in
  check_float ~eps:1e-9 "mean preserved" 10.0 (D.mean d);
  check_float ~eps:1e-9 "cv realised" 0.5 (D.cv d)

let lognormal_parameterisation () =
  let d = Dist.Lognormal.of_mean_cv ~mean:76.8 ~cv:2.0 in
  check_close ~rel:1e-9 "mean" 76.8 (D.mean d);
  check_close ~rel:1e-9 "cv" 2.0 (D.cv d)

let weibull_exponential_special_case () =
  (* shape = 1 is Exp(1/scale). *)
  let d = Dist.Weibull.create ~shape:1.0 ~scale:4.0 in
  check_close ~rel:1e-6 "mean" 4.0 (D.mean d);
  check_close ~rel:1e-6 "variance" 16.0 (D.variance d)

let empirical_resample () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let d = Dist.Empirical.create xs in
  check_float "mean" 2.5 (D.mean d);
  let g = rng () in
  for _ = 1 to 1000 do
    let x = D.sample d g in
    Alcotest.(check bool) "sampled from support" true (Array.exists (fun v -> v = x) xs)
  done

let empirical_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Empirical.create: empty sample")
    (fun () -> ignore (Dist.Empirical.create [||]));
  Alcotest.check_raises "negative" (Invalid_argument "Empirical.create: negative value")
    (fun () -> ignore (Dist.Empirical.create [| 1.0; -2.0 |]))

let quantile_table_interpolates () =
  let d = Dist.Empirical.of_sorted_quantiles [| 0.0; 10.0 |] in
  let g = rng () in
  for _ = 1 to 1000 do
    let x = D.sample d g in
    Alcotest.(check bool) "within table range" true (0.0 <= x && x <= 10.0)
  done

let quantile_table_unsorted () =
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Empirical.of_sorted_quantiles: not sorted") (fun () ->
      ignore (Dist.Empirical.of_sorted_quantiles [| 2.0; 1.0 |]))

let gamma_analytic () =
  let d = Dist.Gamma.create ~shape:3.0 ~scale:2.0 in
  check_float "mean" 6.0 (D.mean d);
  check_float "variance" 12.0 (D.variance d)

let gamma_of_mean_cv () =
  let d = Dist.Gamma.of_mean_cv ~mean:10.0 ~cv:0.7 in
  check_close ~rel:1e-9 "mean" 10.0 (D.mean d);
  check_close ~rel:1e-9 "cv" 0.7 (D.cv d)

let gamma_matches_erlang () =
  (* Integer shape: Gamma = Erlang, so the analytic moments coincide. *)
  let g = Dist.Gamma.create ~shape:4.0 ~scale:0.5 in
  let e = Dist.Erlang.create ~k:4 ~rate:2.0 in
  check_float ~eps:1e-12 "means equal" (D.mean e) (D.mean g);
  check_float ~eps:1e-12 "variances equal" (D.variance e) (D.variance g)

let gamma_errors () =
  Alcotest.check_raises "shape <= 0" (Invalid_argument "Gamma.create: shape <= 0")
    (fun () -> ignore (Dist.Gamma.create ~shape:0.0 ~scale:1.0))

let pareto_moments () =
  let d = Dist.Pareto.create ~k:2.0 ~alpha:3.0 in
  check_float ~eps:1e-12 "mean" 3.0 (D.mean d);
  check_float ~eps:1e-9 "variance" 3.0 (D.variance d);
  (* heavy regimes *)
  check_float "alpha=1.5: infinite variance" infinity
    (D.variance (Dist.Pareto.create ~k:1.0 ~alpha:1.5));
  check_float "alpha=0.9: infinite mean" infinity
    (D.mean (Dist.Pareto.create ~k:1.0 ~alpha:0.9))

let pareto_support () =
  let d = Dist.Pareto.create ~k:5.0 ~alpha:2.0 in
  let g = rng () in
  for _ = 1 to 10_000 do
    Alcotest.(check bool) "x >= k" true (D.sample d g >= 5.0)
  done

let mixture_moments () =
  (* 50/50 mix of Det(2) and Det(6): mean 4, variance = E[X^2]-16 = (4+36)/2-16 = 4. *)
  let d =
    Dist.Mixture.create
      [ (1.0, Dist.Deterministic.create 2.0); (1.0, Dist.Deterministic.create 6.0) ]
  in
  check_float ~eps:1e-12 "mean" 4.0 (D.mean d);
  check_float ~eps:1e-12 "variance" 4.0 (D.variance d)

let mixture_recovers_hyperexponential () =
  (* A mixture of exponentials must match the H2 closed form. *)
  let (p1, r1), (p2, r2) = Dist.Hyperexponential.branch_params ~mean:2.2 ~cv:3.0 in
  let mix =
    Dist.Mixture.create
      [ (p1, Dist.Exponential.create ~rate:r1); (p2, Dist.Exponential.create ~rate:r2) ]
  in
  let h2 = Dist.Hyperexponential.fit_cv ~mean:2.2 ~cv:3.0 in
  check_close ~rel:1e-9 "means agree" (D.mean h2) (D.mean mix);
  check_close ~rel:1e-9 "variances agree" (D.variance h2) (D.variance mix)

let mixture_sampling () =
  let d =
    Dist.Mixture.bimodal ~p_small:0.9
      ~small:(Dist.Deterministic.create 1.0)
      ~large:(Dist.Deterministic.create 100.0)
  in
  check_close ~rel:1e-9 "bimodal mean" 10.9 (D.mean d);
  let g = rng () in
  let n = 50_000 in
  let small = ref 0 in
  for _ = 1 to n do
    if D.sample d g = 1.0 then incr small
  done;
  check_close ~rel:0.02 "small fraction" 0.9 (float_of_int !small /. float_of_int n)

let mixture_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Mixture.create: empty mixture")
    (fun () -> ignore (Dist.Mixture.create []));
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Mixture.create: negative weight") (fun () ->
      ignore (Dist.Mixture.create [ (-1.0, Dist.Deterministic.create 1.0) ]));
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Mixture.bimodal: p_small outside [0,1]") (fun () ->
      ignore
        (Dist.Mixture.bimodal ~p_small:1.5
           ~small:(Dist.Deterministic.create 1.0)
           ~large:(Dist.Deterministic.create 2.0)))

let scaled_distribution () =
  let d = D.scaled (Dist.Exponential.of_mean 2.0) 3.0 in
  check_float ~eps:1e-12 "scaled mean" 6.0 (D.mean d);
  check_float ~eps:1e-12 "scaled variance" 36.0 (D.variance d);
  Alcotest.check_raises "c <= 0" (Invalid_argument "Distribution.scaled: c <= 0")
    (fun () -> ignore (D.scaled d 0.0))

let sample_array_length () =
  let d = Dist.Exponential.of_mean 1.0 in
  let g = rng () in
  Alcotest.(check int) "length" 17 (Array.length (D.sample_array d g 17))

let prop_hyper_moments =
  qcheck ~count:50 "H2 fit hits requested mean and cv"
    QCheck2.Gen.(pair (map (fun x -> 0.1 +. (10.0 *. x)) (float_bound_inclusive 1.0))
                   (map (fun x -> 1.0 +. (4.0 *. x)) (float_bound_inclusive 1.0)))
    (fun (mean, cv) ->
      let d = Dist.Hyperexponential.fit_cv ~mean ~cv in
      abs_float (D.mean d -. mean) < 1e-9 *. mean
      && abs_float (D.cv d -. cv) < 1e-6 *. cv)

let prop_bp_moment_positive =
  qcheck ~count:100 "bounded pareto moments positive and ordered"
    QCheck2.Gen.(
      triple
        (map (fun x -> 0.5 +. (10.0 *. x)) (float_bound_inclusive 1.0))
        (map (fun x -> 100.0 +. (10000.0 *. x)) (float_bound_inclusive 1.0))
        (map (fun x -> 0.2 +. (2.8 *. x)) (float_bound_inclusive 1.0)))
    (fun (k, p, alpha) ->
      let prm = { Dist.Bounded_pareto.k; p; alpha } in
      let m1 = Dist.Bounded_pareto.raw_moment prm 1 in
      let m2 = Dist.Bounded_pareto.raw_moment prm 2 in
      m1 > k && m1 < p && m2 >= m1 *. m1)

let log_gamma_known_values () =
  (* Γ(n) = (n−1)! — exact references computed by integer product. *)
  let fact n =
    let r = ref 1.0 in
    for i = 2 to n do r := !r *. float_of_int i done;
    !r
  in
  List.iter
    (fun n ->
      check_close ~rel:1e-12
        (Printf.sprintf "Gamma(%d) = %d!" n (n - 1))
        (fact (n - 1))
        (Dist.Special.gamma (float_of_int n)))
    [ 2; 5; 11; 21; 51; 101; 141; 161; 171 ];
  check_close ~rel:1e-12 "Gamma(1/2) = sqrt(pi)" (sqrt Float.pi)
    (Dist.Special.gamma 0.5);
  check_close ~rel:1e-12 "Gamma(3/2)" (0.5 *. sqrt Float.pi)
    (Dist.Special.gamma 1.5);
  (* Past the double range Γ is honestly infinite, not prematurely so. *)
  Alcotest.(check bool) "Gamma(180) overflows" true
    (Dist.Special.gamma 180.0 = infinity);
  Alcotest.(check bool) "log_gamma(180) stays finite" true
    (Float.is_finite (Dist.Special.log_gamma 180.0));
  Alcotest.(check bool) "z <= 0 is nan" true
    (Float.is_nan (Dist.Special.gamma 0.0) && Float.is_nan (Dist.Special.log_gamma (-2.5)))

let prop_log_gamma_recurrence =
  qcheck ~count:300 "log_gamma satisfies lnGamma(z+1) = ln z + lnGamma(z)"
    QCheck2.Gen.(map (fun x -> 0.05 +. (169.0 *. x)) (float_bound_inclusive 1.0))
    (fun z ->
      let lhs = Dist.Special.log_gamma (z +. 1.0) in
      let rhs = log z +. Dist.Special.log_gamma z in
      abs_float (lhs -. rhs) <= 1e-10 *. (1.0 +. abs_float rhs))

let weibull_small_shape_moments () =
  (* Regression: shape 0.0125 needs Γ(161) for the variance; the
     product-form Lanczos overflowed near Γ(141) and reported an
     infinite variance that is in fact representable. *)
  let d = Dist.Weibull.create ~shape:0.0125 ~scale:1.0 in
  Alcotest.(check bool) "variance finite at shape 0.0125" true
    (Float.is_finite (D.variance d));
  check_close ~rel:1e-10 "variance = Gamma(161) - Gamma(81)^2"
    (Dist.Special.gamma 161.0 -. (Dist.Special.gamma 81.0 ** 2.0))
    (D.variance d);
  (* Genuinely out-of-range moments still honestly report infinity. *)
  let tiny = Dist.Weibull.create ~shape:0.005 ~scale:1.0 in
  Alcotest.(check bool) "shape 0.005 variance is infinite" true
    (D.variance tiny = infinity)

let prop_weibull_gamma_relation =
  (* Analytic Γ relation at exactly-checkable points: for shape 1/m the
     mean is scale·Γ(1+m) = scale·m!, computable by integer product. *)
  qcheck ~count:100 "weibull mean = scale * m! for shape 1/m"
    QCheck2.Gen.(
      pair (int_range 1 50)
        (map (fun x -> 0.1 +. (5.0 *. x)) (float_bound_inclusive 1.0)))
    (fun (m, scale) ->
      let d = Dist.Weibull.create ~shape:(1.0 /. float_of_int m) ~scale in
      let fact =
        let r = ref 1.0 in
        for i = 2 to m do r := !r *. float_of_int i done;
        !r
      in
      abs_float (D.mean d -. (scale *. fact)) <= 1e-11 *. scale *. fact)

let prop_weibull_variance_nonnegative =
  (* Large shapes make Γ(1+2/k) − Γ(1+1/k)² a near-cancellation; the
     expm1 form must stay non-negative and finite. *)
  qcheck ~count:200 "weibull variance nonnegative across shapes"
    QCheck2.Gen.(
      pair (map (fun x -> 0.02 +. (60.0 *. x)) (float_bound_inclusive 1.0))
        (map (fun x -> 0.1 +. (10.0 *. x)) (float_bound_inclusive 1.0)))
    (fun (shape, scale) ->
      let d = Dist.Weibull.create ~shape ~scale in
      D.variance d >= 0.0 && not (Float.is_nan (D.variance d))
      && (shape < 0.012 || Float.is_finite (D.variance d)))

let weibull_small_shape_empirical_mean () =
  (* The corrected analytic mean agrees with the sample mean at a small
     shape (k = 0.5: mean = scale·Γ(3) = 2·scale). *)
  let d = Dist.Weibull.create ~shape:0.5 ~scale:3.0 in
  check_float ~eps:1e-12 "analytic mean" 6.0 (D.mean d);
  let g = rng ~seed:7L () in
  let n = 200_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do sum := !sum +. D.sample d g done;
  check_close ~rel:0.05 "sample mean near analytic" 6.0 (!sum /. float_of_int n)

let suite =
  [
    test "exponential: analytic moments" exponential_analytic;
    test "exponential: of_mean" exponential_of_mean;
    test "exponential: parameter validation" exponential_errors;
    test "exponential: samples positive" exponential_positive;
    slow_test "exponential: empirical moments"
      (empirical_check (Dist.Exponential.create ~rate:0.5));
    test "hyperexponential: balanced-means fit" hyper_balanced_fit;
    test "hyperexponential: analytic moments" hyper_analytic_moments;
    test "hyperexponential: cv=1 degenerates to exponential" hyper_cv_one_degenerates;
    test "hyperexponential: parameter validation" hyper_errors;
    slow_test "hyperexponential: empirical moments"
      (empirical_check ~cv_rel:0.15 (Dist.Hyperexponential.fit_cv ~mean:2.2 ~cv:3.0));
    test "bounded pareto: paper mean 76.8" bp_paper_mean;
    test "bounded pareto: moment continuity at alpha=j" bp_moment_continuity;
    test "bounded pareto: samples within bounds" bp_bounds;
    test "bounded pareto: quantile monotone" bp_quantile_monotone;
    test "bounded pareto: parameter validation" bp_errors;
    slow_test "bounded pareto: heavy tail" bp_heavy_tail;
    slow_test "bounded pareto: empirical mean"
      (empirical_check ~n:400_000 ~mean_rel:0.1 ~cv_rel:0.5
         (Dist.Bounded_pareto.create_paper_default ()));
    test "uniform: analytic moments" uniform_analytic;
    test "uniform: bounds" uniform_bounds;
    test "deterministic: constant" deterministic_constant;
    test "erlang: analytic moments" erlang_analytic;
    test "erlang: of_mean_cv" erlang_of_mean_cv;
    slow_test "erlang: empirical moments" (empirical_check (Dist.Erlang.create ~k:3 ~rate:1.5));
    test "lognormal: mean/cv parameterisation" lognormal_parameterisation;
    slow_test "lognormal: empirical moments"
      (empirical_check ~cv_rel:0.15 (Dist.Lognormal.of_mean_cv ~mean:10.0 ~cv:1.5));
    test "weibull: shape=1 is exponential" weibull_exponential_special_case;
    slow_test "weibull: empirical moments"
      (empirical_check (Dist.Weibull.create ~shape:1.5 ~scale:2.0));
    test "special: gamma known values" log_gamma_known_values;
    prop_log_gamma_recurrence;
    test "weibull: small-shape moments finite (regression)" weibull_small_shape_moments;
    prop_weibull_gamma_relation;
    prop_weibull_variance_nonnegative;
    slow_test "weibull: small-shape empirical mean" weibull_small_shape_empirical_mean;
    test "empirical: resampling support" empirical_resample;
    test "empirical: validation" empirical_errors;
    test "empirical: quantile table interpolation" quantile_table_interpolates;
    test "empirical: quantile table sorted check" quantile_table_unsorted;
    test "gamma: analytic moments" gamma_analytic;
    test "gamma: of_mean_cv" gamma_of_mean_cv;
    test "gamma: integer shape equals erlang" gamma_matches_erlang;
    test "gamma: validation" gamma_errors;
    slow_test "gamma: empirical moments (shape > 1)"
      (empirical_check (Dist.Gamma.create ~shape:2.5 ~scale:1.4));
    slow_test "gamma: empirical moments (shape < 1)"
      (empirical_check ~cv_rel:0.15 (Dist.Gamma.create ~shape:0.5 ~scale:2.0));
    test "pareto: moments incl. heavy regimes" pareto_moments;
    test "pareto: support" pareto_support;
    slow_test "pareto: empirical mean (alpha=3)"
      (empirical_check ~mean_rel:0.05 ~cv_rel:0.5 (Dist.Pareto.create ~k:2.0 ~alpha:3.0));
    test "mixture: moments by hand" mixture_moments;
    test "mixture: recovers hyperexponential" mixture_recovers_hyperexponential;
    test "mixture: bimodal sampling" mixture_sampling;
    test "mixture: validation" mixture_validation;
    test "distribution: scaled" scaled_distribution;
    test "distribution: sample_array" sample_array_length;
    prop_hyper_moments;
    prop_bp_moment_positive;
  ]
