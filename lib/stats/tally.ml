type t = {
  mutable value : float;
  mutable last_time : float;
  mutable start_time : float;
  mutable area : float;
}

let create ?(initial_value = 0.0) ?(start_time = 0.0) () =
  { value = initial_value; last_time = start_time; start_time; area = 0.0 }

let[@inline] advance t ~time =
  if time < t.last_time then invalid_arg "Tally.advance: time moved backwards";
  t.area <- t.area +. (t.value *. (time -. t.last_time));
  t.last_time <- time

let[@inline] [@schedsim.hot] update t ~time ~value =
  advance t ~time;
  t.value <- value

let time_average t =
  let elapsed = t.last_time -. t.start_time in
  if elapsed <= 0.0 then nan else t.area /. elapsed

let current_value t = t.value

let reset_at t ~time =
  if time < t.last_time then invalid_arg "Tally.reset_at: time moved backwards";
  t.last_time <- time;
  t.start_time <- time;
  t.area <- 0.0
