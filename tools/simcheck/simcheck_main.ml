(* simcheck — differential & metamorphic verification of the simulator.

   Sub-commands:
     oracle   seeded DES runs vs closed-form queueing theory
     meta     metamorphic relations (time scaling, permutations, ...)
     fuzz     random configurations vs structural invariants
     all      everything (what `dune build @simcheck` and CI run)

   Exit status 0 when every check passes, 1 otherwise; failures print a
   replayable `schedsim run` command and are also written to the file
   given by --out (or $SIMCHECK_OUT) for CI artifact upload. *)

open Cmdliner
module S = Statsched_simcheck
module E = Statsched_experiments

let fast_t =
  Arg.(
    value & flag
    & info [ "fast" ]
        ~doc:
          "Reduced-scale tier for CI: shorter horizons, fewer replications \
           and fuzz cases.  The confidence bands adapt to the scale, so the \
           checks stay calibrated, just statistically blunter.")

let seed_t =
  Arg.(
    value
    & opt int64 20260806L
    & info [ "seed" ] ~docv:"SEED" ~doc:"Root random seed for the seeded runs.")

let jobs_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Fan replications out over $(docv) OCaml domains (default: the \
           $(b,STATSCHED_JOBS) environment variable, else the machine's \
           recommended domain count).  Results are bit-identical for every \
           $(docv).")

let count_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "count" ] ~docv:"N"
        ~doc:"Number of fuzzed configurations (default 30, or 12 with --fast).")

let out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE"
        ~doc:
          "Write failing checks (with their replay commands) to $(docv).  \
           Defaults to the $(b,SIMCHECK_OUT) environment variable; no file is \
           written when neither is set or when everything passes.")

let scale_down (s : E.Config.scale) =
  { E.Config.horizon = s.E.Config.horizon /. 2.0;
    warmup = s.E.Config.warmup /. 2.0;
    reps = max 3 (s.E.Config.reps - 1) }

let oracle_checks ~fast ~seed ~jobs () =
  let scale =
    if fast then scale_down S.Oracle.default_scale else S.Oracle.default_scale
  in
  S.Oracle.run ~scale ~seed ?jobs ()

let meta_checks ~fast ~seed ~jobs () =
  let scale =
    if fast then scale_down S.Metamorphic.default_scale
    else S.Metamorphic.default_scale
  in
  S.Metamorphic.run ~scale ~seed ?jobs ()

let fuzz_checks ~fast ~seed ~count () =
  let count =
    match count with Some c -> c | None -> if fast then 12 else 30
  in
  S.Fuzz.run ~count ~seed:(Int64.to_int seed) ()

let report ~out checks elapsed =
  Format.printf "%a" S.Check.pp_list checks;
  let failures = S.Check.failures checks in
  Format.printf "simcheck: %d checks, %d failed (%.1f s)@."
    (List.length checks) (List.length failures) elapsed;
  let out =
    match out with Some _ -> out | None -> Sys.getenv_opt "SIMCHECK_OUT"
  in
  (match (failures, out) with
  | [], _ | _, None -> ()
  | _, Some path ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        List.iter
          (fun c -> output_string oc (Format.asprintf "%a@." S.Check.pp c))
          failures);
    Format.printf "wrote %d failing checks to %s@." (List.length failures) path);
  if S.Check.all_ok checks then 0 else 1

let tier_cmd name doc checks_of =
  let run fast seed jobs count out =
    let start = Statsched_obs.Clock.now () in
    let checks = checks_of ~fast ~seed ~jobs ~count () in
    report ~out checks (Statsched_obs.Clock.elapsed ~since:start)
  in
  let term =
    Term.(const run $ fast_t $ seed_t $ jobs_t $ count_t $ out_t)
  in
  Cmd.v (Cmd.info name ~doc) term

let oracle_cmd =
  tier_cmd "oracle"
    "Compare seeded simulator runs against closed-form queueing theory."
    (fun ~fast ~seed ~jobs ~count:_ () -> oracle_checks ~fast ~seed ~jobs ())

let meta_cmd =
  tier_cmd "meta" "Check metamorphic relations between simulator runs."
    (fun ~fast ~seed ~jobs ~count:_ () -> meta_checks ~fast ~seed ~jobs ())

let fuzz_cmd =
  tier_cmd "fuzz"
    "Fuzz random configurations against structural invariants."
    (fun ~fast ~seed ~jobs:_ ~count () -> fuzz_checks ~fast ~seed ~count ())

let all_cmd =
  tier_cmd "all" "Run every verification tier."
    (fun ~fast ~seed ~jobs ~count () ->
      oracle_checks ~fast ~seed ~jobs ()
      @ meta_checks ~fast ~seed ~jobs ()
      @ fuzz_checks ~fast ~seed ~count ())

let () =
  let doc = "differential & metamorphic verification of the schedsim simulator" in
  let info = Cmd.info "simcheck" ~version:"0.1.0" ~doc in
  exit (Cmd.eval' (Cmd.group ~default:Term.(const 2) info
                     [ oracle_cmd; meta_cmd; fuzz_cmd; all_cmd ]))
