type t = {
  id : int;
  size : float;
  arrival : float;
  mutable computer : int;
  mutable start : float;
  mutable completion : float;
}

let create ~id ~size ~arrival =
  if size <= 0.0 then invalid_arg "Job.create: size <= 0";
  if arrival < 0.0 then invalid_arg "Job.create: arrival < 0";
  { id; size; arrival; computer = -1; start = -1.0; completion = -1.0 }

let is_completed j = j.completion >= 0.0

let response_time j =
  if not (is_completed j) then invalid_arg "Job.response_time: not completed";
  j.completion -. j.arrival

let response_ratio j = response_time j /. j.size

let pp fmt j =
  Format.fprintf fmt "job#%d size=%.4g arr=%.4g comp=%.4g on=%d" j.id j.size
    j.arrival j.completion j.computer
