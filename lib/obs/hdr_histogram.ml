(* The float accumulators live in their own all-float record: OCaml
   stores such records flat, so the per-observation updates in [add]
   write raw doubles instead of boxing (a float field in the mixed outer
   record would allocate on every [<-]). *)
type acc = {
  mutable sum : float;
  mutable min_seen : float;
  mutable max_seen : float;
}

type t = {
  lo : float;
  hi : float;
  sub_count : int;
  (* When [sub_count] is a power of two, the shift that brings the top
     log2(sub_count) mantissa bits of r = x/lo into place (see
     [index_of]); -1 otherwise. *)
  sub_shift : int;
  counts : int array;
  mutable under : int;
  mutable over : int;
  mutable total : int;
  acc : acc;
}

let create ?(sub_count = 32) ~lo ~hi () =
  if not (lo > 0.0) then invalid_arg "Hdr_histogram.create: lo <= 0";
  if not (hi > lo) then invalid_arg "Hdr_histogram.create: hi <= lo";
  if sub_count <= 0 then invalid_arg "Hdr_histogram.create: sub_count <= 0";
  let octaves = max 1 (int_of_float (ceil (log (hi /. lo) /. log 2.0))) in
  let sub_shift =
    if sub_count land (sub_count - 1) <> 0 then -1
    else begin
      let log2 = ref 0 in
      while 1 lsl !log2 < sub_count do incr log2 done;
      52 - !log2
    end
  in
  {
    lo;
    hi;
    sub_count;
    sub_shift;
    counts = Array.make (octaves * sub_count) 0;
    under = 0;
    over = 0;
    total = 0;
    acc = { sum = 0.0; min_seen = infinity; max_seen = neg_infinity };
  }

let copy h =
  {
    h with
    counts = Array.copy h.counts;
    acc = { sum = h.acc.sum; min_seen = h.acc.min_seen; max_seen = h.acc.max_seen };
  }

let bin_count h = Array.length h.counts

(* Index of a value known to lie in [lo, hi).  With r = x/lo >= 1 the
   IEEE exponent field gives r = f·2^E, f in [1, 2): the octave is E and
   f-1 in [0, 1) locates the linear sub-bucket.  Reading the exponent
   straight from the bit pattern (instead of [Float.frexp], which
   allocates a tuple and a boxed mantissa per call) keeps [add]
   allocation-free; multiplying by the exact power 2^-E is lossless, so
   the bin is bit-identical to what frexp produced. *)
let[@inline] index_of h x =
  let r = x /. h.lo in
  let bits = Int64.bits_of_float r in
  let e = Int64.to_int (Int64.shift_right_logical bits 52) - 1023 in
  let sub =
    if h.sub_shift >= 0 then
      (* Power-of-two sub_count: with f = 1 + m/2^52 the sub-bucket
         floor((f-1)·sub_count) is exactly the top log2(sub_count)
         mantissa bits — same result as the float path below (the
         scaling there is exact), minus its long float↔int round-trip. *)
      Int64.to_int (Int64.shift_right_logical bits h.sub_shift)
      land (h.sub_count - 1)
    else begin
      let pow2_neg_e = Int64.float_of_bits (Int64.shift_left (Int64.of_int (1023 - e)) 52) in
      let frac = (r *. pow2_neg_e) -. 1.0 in
      min (h.sub_count - 1) (int_of_float (frac *. float_of_int h.sub_count))
    end
  in
  min (bin_count h - 1) ((e * h.sub_count) + sub)

let bin_index h x = if x < h.lo || x >= h.hi then None else Some (index_of h x)

(* [@inline] keeps the observation unboxed at the call site — [add] runs
   once or twice per completed job in telemetry hooks. *)
let[@inline] [@schedsim.hot] add h x =
  if Float.is_nan x then invalid_arg "Hdr_histogram.add: NaN observation";
  h.total <- h.total + 1;
  h.acc.sum <- h.acc.sum +. x;
  if x < h.acc.min_seen then h.acc.min_seen <- x;
  if x > h.acc.max_seen then h.acc.max_seen <- x;
  if x < h.lo then h.under <- h.under + 1
  else if x >= h.hi then h.over <- h.over + 1
  else begin
    (* x in [lo, hi) makes e >= 0 and sub >= 0, and [index_of] clamps to
       bin_count - 1, so i is a valid index. *)
    let i = index_of h x in
    Array.unsafe_set h.counts i (Array.unsafe_get h.counts i + 1)
  end

let count h = h.total
let underflow h = h.under
let overflow h = h.over
let sum h = h.acc.sum
let mean h = if h.total = 0 then nan else h.acc.sum /. float_of_int h.total
let min_value h = if h.total = 0 then nan else h.acc.min_seen
let max_value h = if h.total = 0 then nan else h.acc.max_seen

let bin_range h i =
  if i < 0 || i >= bin_count h then invalid_arg "Hdr_histogram.bin_range: index";
  let octave = i / h.sub_count and sub = i mod h.sub_count in
  let base = Float.ldexp h.lo octave in
  let w = base /. float_of_int h.sub_count in
  (base +. (float_of_int sub *. w), base +. (float_of_int (sub + 1) *. w))

let bin_value h i =
  if i < 0 || i >= bin_count h then invalid_arg "Hdr_histogram.bin_value: index";
  h.counts.(i)

let quantile h q =
  if not (0.0 < q && q < 1.0) then invalid_arg "Hdr_histogram.quantile: q outside (0,1)";
  if h.total = 0 then nan
  else begin
    let target = q *. float_of_int h.total in
    if target <= float_of_int h.under then h.lo
    else begin
      let acc = ref (float_of_int h.under) in
      let result = ref h.acc.max_seen in
      (try
         for i = 0 to bin_count h - 1 do
           let c = float_of_int h.counts.(i) in
           if c > 0.0 && !acc +. c >= target then begin
             let lo, hi = bin_range h i in
             let frac = (target -. !acc) /. c in
             result := lo +. (frac *. (hi -. lo));
             raise Exit
           end;
           acc := !acc +. c
         done
       with Exit -> ());
      !result
    end
  end

let same_layout a b =
  Float.equal a.lo b.lo && Float.equal a.hi b.hi && a.sub_count = b.sub_count

let merge ~into src =
  if not (same_layout into src) then invalid_arg "Hdr_histogram.merge: layouts differ";
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts;
  into.under <- into.under + src.under;
  into.over <- into.over + src.over;
  into.total <- into.total + src.total;
  into.acc.sum <- into.acc.sum +. src.acc.sum;
  if src.acc.min_seen < into.acc.min_seen then into.acc.min_seen <- src.acc.min_seen;
  if src.acc.max_seen > into.acc.max_seen then into.acc.max_seen <- src.acc.max_seen

let iter_nonempty h f =
  if h.under > 0 then f ~upper:h.lo ~count:h.under;
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        let _, upper = bin_range h i in
        f ~upper ~count:c
      end)
    h.counts
