(* Diagnostic rendering: text (the historical format), json, SARIF
   2.1.0 for code-scanning upload, and GitHub workflow commands for
   inline PR annotations. *)

type format = Text | Json | Sarif | Github

let format_of_string = function
  | "text" -> Some Text
  | "json" -> Some Json
  | "sarif" -> Some Sarif
  | "github" -> Some Github
  | _ -> None

(* --- json helpers (no external deps) ------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let str s = "\"" ^ json_escape s ^ "\""

(* --- text --------------------------------------------------------- *)

let emit_text oc diags =
  List.iter
    (fun (d : Diag.t) ->
      Printf.fprintf oc "%s:%d:%d: [%s] %s\n" d.file d.line d.col d.rule d.msg)
    diags

(* --- json --------------------------------------------------------- *)

let emit_json oc diags =
  let item (d : Diag.t) =
    Printf.sprintf
      "  { \"file\": %s, \"line\": %d, \"col\": %d, \"rule\": %s, \
       \"message\": %s }"
      (str d.file) d.line d.col (str d.rule) (str d.msg)
  in
  Printf.fprintf oc "[\n%s\n]\n" (String.concat ",\n" (List.map item diags))

(* --- sarif -------------------------------------------------------- *)

let sarif_rule (r : Diag.rule_info) =
  Printf.sprintf
    "          { \"id\": %s, \"name\": %s,\n\
    \            \"shortDescription\": { \"text\": %s },\n\
    \            \"help\": { \"text\": %s } }"
    (str r.id) (str r.name) (str r.short) (str r.help)

let sarif_result (d : Diag.t) =
  Printf.sprintf
    "        { \"ruleId\": %s, \"level\": \"error\",\n\
    \          \"message\": { \"text\": %s },\n\
    \          \"locations\": [ { \"physicalLocation\": {\n\
    \            \"artifactLocation\": { \"uri\": %s },\n\
    \            \"region\": { \"startLine\": %d, \"startColumn\": %d } } } ] }"
    (str d.rule) (str d.msg) (str d.file) d.line (max 1 (d.col + 1))

let emit_sarif oc diags =
  Printf.fprintf oc
    "{\n\
    \  \"$schema\": \
     \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n\
    \  \"version\": \"2.1.0\",\n\
    \  \"runs\": [ {\n\
    \    \"tool\": { \"driver\": {\n\
    \      \"name\": \"schedlint\",\n\
    \      \"informationUri\": \"https://example.invalid/schedlint\",\n\
    \      \"rules\": [\n%s\n\
    \      ] } },\n\
    \    \"results\": [\n%s\n\
    \    ]\n\
    \  } ]\n\
     }\n"
    (String.concat ",\n" (List.map sarif_rule Diag.registry))
    (String.concat ",\n" (List.map sarif_result diags))

(* --- github workflow commands ------------------------------------- *)

let gh_escape s =
  (* the workflow-command data encoding *)
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '%' -> Buffer.add_string b "%25"
      | '\n' -> Buffer.add_string b "%0A"
      | '\r' -> Buffer.add_string b "%0D"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let emit_github oc diags =
  List.iter
    (fun (d : Diag.t) ->
      Printf.fprintf oc "::error file=%s,line=%d,col=%d,title=schedlint %s::%s\n"
        d.file d.line (d.col + 1) d.rule
        (gh_escape (d.msg)))
    diags

(* ------------------------------------------------------------------ *)

let emit fmt oc diags =
  let diags = Diag.sort diags in
  match fmt with
  | Text -> emit_text oc diags
  | Json -> emit_json oc diags
  | Sarif -> emit_sarif oc diags
  | Github -> emit_github oc diags
