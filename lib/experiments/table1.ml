module Cluster = Statsched_cluster
module Core = Statsched_core

type result = {
  speeds : float array;
  measured_fractions : float array;
  paper_fractions : float array;
  weighted_fractions : float array;
}

let paper_percent = [| 0.29; 1.75; 3.84; 7.17; 14.59; 27.95; 30.90 |]

let run ?(scale = Config.default_scale) ?seed ?jobs () =
  let speeds = Core.Speeds.table1 in
  let workload =
    Cluster.Workload.paper_default ~rho:Config.base_utilization ~speeds
  in
  let spec =
    Runner.make_spec ~speeds ~workload ~scheduler:Cluster.Scheduler.least_load_paper ()
  in
  let point = Runner.measure ?seed ?jobs ~scale spec in
  {
    speeds;
    measured_fractions = point.Runner.dispatch_fractions;
    paper_fractions = Array.map (fun p -> p /. 100.0) paper_percent;
    weighted_fractions = Core.Allocation.weighted speeds;
  }

let to_report r =
  let open Report in
  let rows =
    List.init (Array.length r.speeds) (fun i ->
        [
          Float r.speeds.(i);
          Percent r.measured_fractions.(i);
          Percent r.paper_fractions.(i);
          Percent r.weighted_fractions.(i);
        ])
  in
  render
    ~header:[ "speed"; "measured %"; "paper %"; "speed-proportional %" ]
    ~rows
