type t = {
  mutable clock : float;
  queue : (t -> unit) Event_queue.t;
  mutable executed : int;
}

type event_handle = Event_queue.handle

exception Schedule_in_past of { now : float; requested : float }

let create ?(start_time = 0.0) () =
  { clock = start_time; queue = Event_queue.create (); executed = 0 }

let now e = e.clock

let schedule_at e ~time f =
  if time < e.clock then raise (Schedule_in_past { now = e.clock; requested = time });
  Event_queue.add e.queue ~time f

let schedule e ~delay f =
  if delay < 0.0 then
    raise (Schedule_in_past { now = e.clock; requested = e.clock +. delay });
  schedule_at e ~time:(e.clock +. delay) f

let cancel e h = Event_queue.cancel e.queue h

let pending_events e = Event_queue.size e.queue

let step e =
  match Event_queue.pop e.queue with
  | None -> false
  | Some (time, f) ->
    e.clock <- time;
    e.executed <- e.executed + 1;
    f e;
    true

let run ?until e =
  match until with
  | None -> while step e do () done
  | Some horizon ->
    let continue = ref true in
    while !continue do
      match Event_queue.peek_time e.queue with
      | Some t when t <= horizon -> ignore (step e)
      | Some _ | None -> continue := false
    done;
    if e.clock < horizon then e.clock <- horizon

let events_executed e = e.executed

let heap_ordered e = Event_queue.heap_ordered e.queue

let heap_high_water e = Event_queue.high_water e.queue

module Testing = struct
  let corrupt_heap e = Event_queue.Testing.corrupt e.queue
end

let every e ~period f =
  if period <= 0.0 then invalid_arg "Engine.every: period <= 0";
  let rec tick () =
    ignore
      (schedule e ~delay:period (fun e ->
           f e;
           tick ()))
  in
  tick ()
