(** Closed-form single-server queueing results.

    Companion formulas for the server models in this library, used to
    validate the simulators and to reason about the paper's modelling
    choices (why processor sharing keeps the response {e ratio} civil
    under heavy-tailed sizes while FCFS does not).

    All formulas are for a single server of rate [speed] fed by a Poisson
    stream of rate [lambda]; job sizes have mean [mean_size] (in speed-1
    seconds) and squared coefficient of variation [scv].

    Edge cases are uniform across the module: saturated systems
    ([ρ ≥ 1], including degraded capacity in
    {!mm1_breakdown_response}) return [infinity]; inputs outside the
    model's domain ([lambda < 0], [mean_size <= 0], [speed <= 0],
    [scv < 0], non-positive [mtbf]/[mttr], or any [nan]) return [nan].
    No formula ever returns a negative time, and none raises. *)

val utilization : lambda:float -> mean_size:float -> speed:float -> float
(** Offered load [ρ = λ·E\[S\]/speed]. *)

val mm1_fcfs_response : lambda:float -> mean_size:float -> speed:float -> float
(** M/M/1-FCFS mean response time: [E[S]/speed / (1 − ρ)]. *)

val mg1_fcfs_response :
  lambda:float -> mean_size:float -> scv:float -> speed:float -> float
(** M/G/1-FCFS mean response time by Pollaczek–Khinchine:
    [x̄ + λ·x̄²·(1+scv)/(2(1−ρ))] with [x̄ = E[S]/speed].  Grows linearly
    with the size variability — the formal reason FCFS collapses under
    Bounded-Pareto sizes. *)

val mg1_ps_response : lambda:float -> mean_size:float -> speed:float -> float
(** M/G/1-PS mean response time: [x̄/(1−ρ)] — {e insensitive} to the size
    distribution beyond its mean (Kleinrock Vol. II).  This insensitivity
    is what lets the paper derive allocations from an M/M/1 model and
    apply them to a Bounded-Pareto workload. *)

val mg1_ps_mean_slowdown : lambda:float -> mean_size:float -> speed:float -> float
(** Mean response ratio (slowdown) under PS: every job's conditional
    slowdown is [1/(speed(1−ρ))] per unit size over its own size — i.e.
    the expected response ratio is [1/(speed·(1−ρ))] independent of size. *)

val mm1_number_in_system : lambda:float -> mean_size:float -> speed:float -> float
(** Mean number of jobs in an M/M/1 (or M/G/1-PS) system: [ρ/(1−ρ)]. *)

val mm1_breakdown_response :
  lambda:float -> mean_size:float -> speed:float -> mtbf:float -> mttr:float -> float
(** Mean response time of an M/M/1 queue whose server suffers exponential
    breakdowns (mean up-time [mtbf]) repaired in exponential time (mean
    [mttr]), with breakdowns striking at all times and preempt-resume
    service — Avi-Itzhak & Naor (1963), Model A.  With [f = 1/mtbf],
    [r = 1/mttr], availability [A = r/(r+f)] and [μ = speed/mean_size]:

    [E[T] = 1/(μA − λ) + λf/(μ·r²·(1 − λ/(μA))) + f/(r(r+f))]

    Recovers [1/(μ−λ)] as [mtbf → ∞].  Returns [infinity] when
    [λ ≥ μA] (the degraded capacity cannot keep up) and [nan] when
    [mtbf] or [mttr] is non-positive or [nan] (a degenerate failure
    process has no steady state to speak of).  Validates the fault
    injector's [Resume] policy in the tests. *)
