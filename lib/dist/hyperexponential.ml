module Rng = Statsched_prng.Rng

let check_params probs rates =
  let n = Array.length probs in
  if n = 0 || Array.length rates <> n then
    invalid_arg "Hyperexponential.create: probs/rates length mismatch";
  let sum = Array.fold_left ( +. ) 0.0 probs in
  if abs_float (sum -. 1.0) > 1e-9 then
    invalid_arg "Hyperexponential.create: probabilities must sum to 1";
  Array.iter
    (fun p -> if p < 0.0 then invalid_arg "Hyperexponential.create: negative probability")
    probs;
  Array.iter
    (fun r -> if r <= 0.0 then invalid_arg "Hyperexponential.create: non-positive rate")
    rates

let moments probs rates =
  let n = Array.length probs in
  let mean = ref 0.0 and second = ref 0.0 in
  for i = 0 to n - 1 do
    mean := !mean +. (probs.(i) /. rates.(i));
    second := !second +. (2.0 *. probs.(i) /. (rates.(i) *. rates.(i)))
  done;
  (!mean, !second -. (!mean *. !mean))

(* Branch selection is a closed module-level function: a [let rec] inside
   [sample] would capture the per-call draw [u] and allocate a fresh
   closure on every sample. *)
let rec branch cum n u i = if i = n - 1 || u < cum.(i) then i else branch cum n u (i + 1)

let create ~probs ~rates =
  check_params probs rates;
  let probs = Array.copy probs and rates = Array.copy rates in
  let mean, variance = moments probs rates in
  let n = Array.length probs in
  (* Cumulative table for branch selection. *)
  let cum = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. probs.(i);
    cum.(i) <- !acc
  done;
  cum.(n - 1) <- 1.0;
  (* The workhorse case is the two-branch H2 (every [fit_cv] call):
     specialise it so the branch draw stays an unboxed local — the
     generic path boxes [u] to pass it to [branch]. *)
  let sample =
    if n = 2 then begin
      let c0 = cum.(0) and r0 = rates.(0) and r1 = rates.(1) in
      fun g ->
        let u = Rng.float g in
        Exponential.sample ~rate:(if u < c0 then r0 else r1) g
    end
    else
      fun g ->
        let u = Rng.float g in
        let i = branch cum n u 0 in
        Exponential.sample ~rate:rates.(i) g
  in
  Distribution.make
    ~name:(Printf.sprintf "H%d(mean=%g)" n mean)
    ~mean ~variance sample

let branch_params ~mean ~cv =
  if mean <= 0.0 then invalid_arg "Hyperexponential.fit_cv: mean <= 0";
  if cv < 1.0 then invalid_arg "Hyperexponential.fit_cv: cv < 1";
  let c2 = cv *. cv in
  let p1 = 0.5 *. (1.0 +. sqrt ((c2 -. 1.0) /. (c2 +. 1.0))) in
  let p2 = 1.0 -. p1 in
  let r1 = 2.0 *. p1 /. mean in
  let r2 = 2.0 *. p2 /. mean in
  ((p1, r1), (p2, r2))

let fit_cv ~mean ~cv =
  if cv > 1.0 then begin
    let (p1, r1), (p2, r2) = branch_params ~mean ~cv in
    let d = create ~probs:[| p1; p2 |] ~rates:[| r1; r2 |] in
    { d with Distribution.name = Printf.sprintf "H2(mean=%g,cv=%g)" mean cv }
  end
  else if cv < 1.0 then invalid_arg "Hyperexponential.fit_cv: cv < 1"
  else (* cv exactly 1: the H2 degenerates to the exponential *)
    Exponential.of_mean mean
