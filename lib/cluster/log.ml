let src = Logs.Src.create "statsched.cluster" ~doc:"Cluster simulation events"

module Log = (val Logs.src_log src : Logs.LOG)
