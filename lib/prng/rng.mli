(** Random-number streams for the simulator.

    A thin, allocation-free facade over {!Xoshiro256} exposing the primitive
    draws the rest of the library needs.  Every stochastic component of the
    simulator takes an explicit [Rng.t]; nothing reads hidden global state,
    so runs are reproducible from a single seed and replications use
    provably disjoint substreams. *)

type t
(** A mutable random stream. *)

val create : ?seed:int64 -> unit -> t
(** [create ~seed ()] makes a fresh stream.  Default seed is a fixed
    constant so that unseeded programs are still deterministic. *)

val of_xoshiro : Xoshiro256.t -> t
(** Wrap an existing generator (shares state). *)

val copy : t -> t
(** Independent snapshot of the current state. *)

val split : t -> t
(** [split g] returns a new stream independent of the future output of
    [g]: the child is seeded from two draws of [g].  Use for decoupling
    model components (arrivals vs. service vs. delays) within a run. *)

val substream : t -> int -> t
(** [substream g k] is replication stream [k]: [g] jumped ahead [k]×2{^128}
    draws.  [g] is unchanged.  See {!Xoshiro256.substream}. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val uniform : t -> float -> float -> float
(** [uniform g a b] is uniform in [\[a, b)].  [a <= b] required. *)

val int : t -> int -> int
(** [int g n] is uniform in [\[0, n)].  [n > 0] required. *)

val bits64 : t -> int64
(** 64 raw uniform bits. *)

val bits53 : t -> int
(** The top 53 bits of one draw as an immediate [int]: consumes the
    same stream position as {!float} and satisfies
    [float g = float_of_int (bits53 g) /. 2.{^53}].  For allocation-
    free threshold tests ([float g < p] reformulated as
    [bits53 g < ceil (p *. 2.{^53})], exact because scaling by a power
    of two is). *)

val bool : t -> bool
(** Fair coin flip. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose_weighted : t -> float array -> int
(** [choose_weighted g w] returns index [i] with probability
    [w.(i) /. sum w].  Weights must be non-negative with a positive sum.
    Linear scan; intended for small [n] (the dispatcher uses its own
    alias-free cumulative table for hot paths). *)
