(** P² online quantile estimation (Jain & Chlamtac, 1985).

    Estimates a single quantile of a stream in O(1) space with five
    markers and piecewise-parabolic interpolation.  Used to report median
    and tail response ratios without storing millions of per-job
    observations. *)

type t

val create : float -> t
(** [create q] estimates the [q]-quantile, [0 < q < 1].

    @raise Invalid_argument otherwise. *)

val add : t -> float -> unit

val count : t -> int

val estimate : t -> float
(** Current estimate.  Before five observations have been seen this is the
    exact sample quantile of what has arrived; [nan] when empty. *)
