(** Join-Idle-Queue dispatching state (Lu et al.; Gardner et al. for the
    heterogeneous treatment — see PAPERS.md).

    The scalable end of the dynamic-policy spectrum: instead of probing
    loads at dispatch time, computers report {e themselves} when they go
    idle.  The scheduler keeps intrusive idle stacks — one per speed
    class, fastest class preferred — so a decision is O(1): pop the top
    of the fastest non-empty stack, or fall back to speed-weighted
    random (Walker alias table, also O(1)) when nothing is idle.

    Like {!Least_load} this module is only the scheduler-side state
    machine; the cluster model wires departures and failures into it.
    All state is flat arrays indexed by computer — nothing on the
    decision path allocates. *)

type t

val create : float array -> t
(** [create speeds] starts with every computer idle and available.

    @raise Invalid_argument on an invalid speed vector. *)

val select : rng:Statsched_prng.Rng.t -> t -> int
(** Destination for the next job: the most recently idled computer of
    the fastest speed class with idle members; when no computer is idle,
    a speed-weighted random draw (two [rng] draws per attempt, redrawn
    up to 16 times to dodge unavailable computers, then first-available
    scan as a last resort).  Consumes randomness {e only} on the no-idle
    path.  Does not modify the state. *)

val job_sent : t -> int -> unit
(** Record a dispatch to computer [i]: removes it from the idle stack
    (if present) and increments its believed queue length. *)

val departure_recorded : t -> int -> unit
(** A job left computer [i]; when its believed queue reaches zero the
    computer pushes itself onto its class's idle stack (JIQ's one
    message per job).  Clamped at zero. *)

val set_available : t -> int -> bool -> unit
(** Availability for fault runs: a down computer leaves the idle stacks
    and stops being a fallback candidate; on recovery it re-joins the
    idle stack if its queue is empty. *)

val is_available : t -> int -> bool

val load_index : t -> int -> int
(** Believed queue length of computer [i]. *)

val idle_count : t -> int
(** Computers currently on an idle stack. *)

val reset : t -> unit
(** Queues to zero, every available computer back to idle. *)
