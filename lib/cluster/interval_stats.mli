(** Per-interval workload-allocation deviation (Figure 2).

    Splits the dispatch record into consecutive fixed-length intervals and
    computes, for each, the deviation Σ (α_i − α'_i)² between the intended
    fractions and the fractions of jobs actually dispatched during that
    interval. *)

type t

val create : expected:float array -> start:float -> interval:float -> n_intervals:int -> t
(** Observe [n_intervals] intervals of length [interval] seconds beginning
    at absolute simulation time [start].

    @raise Invalid_argument if [interval <= 0] or [n_intervals <= 0]. *)

val record : t -> time:float -> computer:int -> unit
(** Register a job dispatched to [computer] at absolute [time].  Dispatches
    outside the observation window are ignored. *)

val deviations : t -> float array
(** Deviation of each interval, in order. *)

val counts : t -> int array array
(** Per-interval per-computer dispatch counts ([n_intervals × n]). *)
