(** Event trace recording.

    Captures per-job dispatch and completion records from a simulation run
    for offline analysis (CSV export, replay through
    {!Statsched_dist.Empirical}, or custom post-processing).  Traces are
    append-only growable buffers; recording is O(1) amortised per event. *)

type dispatch_record = {
  time : float;
  job_id : int;
  computer : int;
  size : float;
}

type completion_record = {
  time : float;
  job_id : int;
  computer : int;
  response_time : float;
  response_ratio : float;
}

type t

val create : ?capacity:int -> unit -> t

val record_dispatch : t -> dispatch_record -> unit
val record_completion : t -> completion_record -> unit

val on_dispatch : t -> Statsched_queueing.Job.t -> unit
(** Observer for {!Simulation.run}'s [on_dispatch] hook. *)

val on_completion : t -> Statsched_queueing.Job.t -> unit
(** Observer for {!Simulation.run}'s [on_completion] hook. *)

val dispatches : t -> dispatch_record array
(** In recording order. *)

val completions : t -> completion_record array

val dispatch_count : t -> int
val completion_count : t -> int

val completed_sizes : t -> float array
(** Sizes of completed jobs — ready for {!Statsched_dist.Empirical.create}
    to replay a measured workload. *)

val write_csv : t -> string -> unit
(** [write_csv t path] writes both record kinds to [path] with a [kind]
    column ([dispatch]/[completion]) and a unified header:
    [kind,time,job_id,computer,size,response_time,response_ratio]
    (inapplicable fields empty). *)
