(** Recompute run statistics from a Chrome trace-event JSON file written
    by {!Statsched_obs.Trace_event} ([schedsim run --trace-out]).

    This is a purpose-built reader for that writer's output (one event
    object per line), not a general JSON parser. *)

type stats = {
  spans : int;  (** job spans found *)
  measured : int;  (** spans of measured (post-warm-up) jobs *)
  mean_response_time : float;  (** over measured spans, seconds *)
  mean_response_ratio : float;  (** over measured spans *)
  dispatch_counts : int array;  (** measured spans per computer lane *)
}

val of_string : string -> (stats, string) result
val of_file : string -> (stats, string) result
