(** Workload models: an arrival process paired with a job-size
    distribution.

    The paper's simulation workload (Section 4.1): Bounded-Pareto job
    sizes B(10 s, 21600 s, 1.0) — mean 76.8 s — and two-stage
    hyperexponential inter-arrival times with coefficient of variation 3.
    The arrival rate is always derived from a target system utilisation,
    [λ = ρ·μ·Σ s_i] with [μ = 1 / mean job size].

    A workload may additionally carry a {e rate modulation} — a positive
    function of simulated time scaling the instantaneous arrival rate —
    to model non-stationary (e.g. diurnal) load.  Sampled gaps are divided
    by the modulation factor at the sampling instant, so the long-run
    average rate equals the base rate whenever the modulation averages
    to 1. *)

type t = {
  interarrival : Statsched_dist.Distribution.t;
      (** base inter-arrival time distribution *)
  size : Statsched_dist.Distribution.t;
  modulation : (float -> float) option;
      (** optional instantaneous arrival-rate factor, [f(t) > 0];
          [None] means stationary *)
}

val create :
  ?modulation:(float -> float) ->
  interarrival:Statsched_dist.Distribution.t ->
  size:Statsched_dist.Distribution.t ->
  unit ->
  t

val arrival_rate : t -> float
(** Base (time-average, for mean-1 modulations) arrival rate:
    [1 / mean inter-arrival time]. *)

val mu : t -> float
(** Base-line service rate, [1 / mean job size]. *)

val utilization : t -> speeds:float array -> float
(** Offered system utilisation [λ / (μ Σ s_i)] at the base rate. *)

val paper_default : rho:float -> speeds:float array -> t
(** The Section 4.1 workload at target utilisation [rho]: BP(10,21600,1)
    sizes, H₂(CV=3) arrivals with rate [ρ·Σs / 76.8…].

    @raise Invalid_argument unless [0 < rho < 1]. *)

val poisson_exponential : rho:float -> mean_size:float -> speeds:float array -> t
(** The analytically tractable M/M workload used to validate the simulator
    against {!Statsched_core.Mm1}: Poisson arrivals, Exp sizes of the
    given mean. *)

val with_cv : rho:float -> arrival_cv:float -> speeds:float array -> t
(** Paper sizes but an arrival process of the given CV: hyperexponential
    for [cv > 1], Poisson for [cv = 1], Erlang for [cv < 1].  Used by the
    burstiness-sensitivity experiments. *)

val with_size :
  rho:float ->
  ?arrival_cv:float ->
  size:Statsched_dist.Distribution.t ->
  float array ->
  t
(** [with_size ~rho ~size speeds]: arbitrary job-size distribution with
    the arrival rate derived from its mean to hit utilisation [rho];
    arrival CV defaults to the paper's 3.  Used by the size-distribution
    sensitivity experiments (PS insensitivity check). *)

val diurnal :
  rho:float ->
  amplitude:float ->
  day_length:float ->
  speeds:float array ->
  t
(** Non-stationary variant of {!paper_default}: the instantaneous arrival
    rate is modulated by [1 + amplitude·sin(2πt/day_length)], so the load
    swings between [(1−a)·ρ] and [(1+a)·ρ] with mean [ρ].  Used by the
    robustness extension experiment (static allocations are computed for
    the {e mean} load; how badly do the swings hurt?).

    @raise Invalid_argument unless [0 <= amplitude < 1], [day_length > 0]
    and the peak load stays below saturation
    ([(1 + amplitude)·rho < 1]). *)

val modulated_rate : t -> float -> float
(** [modulated_rate w t] is the instantaneous arrival rate at simulated
    time [t] ([arrival_rate w] when unmodulated). *)

(** {2 Batched gap generation}

    The simulator's arrival loop reads inter-arrival gaps through a
    [gap_source], which pre-samples them from the arrivals stream a
    batch at a time into a flat float array.  The draws come from the
    same stream in the same order as one-at-a-time sampling, so
    simulation results are bit-identical; batching only removes the
    per-arrival closure call and boxed return.  Gaps are {e base} gaps:
    rate modulation is applied by the consumer at the scheduling
    instant. *)

type gap_source

val gap_source : ?batch:int -> t -> rng:Statsched_prng.Rng.t -> gap_source
(** A fresh source drawing from [t.interarrival] with the given stream.
    [batch] (default 256) gaps are pre-sampled per refill.

    @raise Invalid_argument if [batch < 1]. *)

val next_gap : gap_source -> float
(** The next base inter-arrival gap. *)
