open Test_util
module Core = Statsched_core
module Alloc_table = Core.Alloc_table
module Allocation = Core.Allocation
module Speeds = Core.Speeds
module E = Statsched_experiments
module Cluster = Statsched_cluster

(* ------------------------------------------------------------------ *)
(* Alloc_table                                                         *)

let table_exact_on_grid () =
  let t = Alloc_table.build ~grid:9 Speeds.table1 in
  let grid = Alloc_table.grid_points t in
  Array.iter
    (fun rho ->
      check_array ~eps:1e-12
        (Printf.sprintf "exact at grid rho=%.2f" rho)
        (Allocation.optimized ~rho Speeds.table1)
        (Alloc_table.lookup t ~rho))
    grid

let table_interpolation_feasible () =
  let t = Alloc_table.build ~grid:19 Speeds.table3 in
  List.iter
    (fun rho ->
      let alloc = Alloc_table.lookup t ~rho in
      let sum = Array.fold_left ( +. ) 0.0 alloc in
      check_float ~eps:1e-9 (Printf.sprintf "sums to 1 at %.3f" rho) 1.0 sum;
      Array.iter
        (fun a -> Alcotest.(check bool) "non-negative" true (a >= 0.0))
        alloc)
    [ 0.123; 0.456; 0.789; 0.031; 0.97 ]

let table_interpolation_accurate () =
  let t = Alloc_table.build ~grid:99 Speeds.table3 in
  (* Mid-range utilisations: tight accuracy. *)
  let err_mid = Alloc_table.max_interpolation_error ~lo:0.2 ~hi:0.95 t ~samples:500 in
  Alcotest.(check bool)
    (Printf.sprintf "mid-range error %.2e below 0.01" err_mid)
    true (err_mid < 0.01);
  (* Full range: the low-rho cutoff kinks dominate but stay bounded. *)
  let err_full = Alloc_table.max_interpolation_error t ~samples:500 in
  Alcotest.(check bool)
    (Printf.sprintf "full-range error %.2e below 0.05" err_full)
    true (err_full < 0.05)

let table_finer_grid_more_accurate () =
  let coarse = Alloc_table.build ~grid:9 Speeds.table3 in
  let fine = Alloc_table.build ~grid:199 Speeds.table3 in
  let e_coarse = Alloc_table.max_interpolation_error coarse ~samples:300 in
  let e_fine = Alloc_table.max_interpolation_error fine ~samples:300 in
  Alcotest.(check bool)
    (Printf.sprintf "finer grid wins (%.2e < %.2e)" e_fine e_coarse)
    true (e_fine < e_coarse)

let table_clamps_outside_grid () =
  let t = Alloc_table.build ~grid:9 [| 1.0; 2.0 |] in
  let grid = Alloc_table.grid_points t in
  let lowest = Alloc_table.lookup t ~rho:0.001 in
  check_array ~eps:1e-12 "clamps low"
    (Allocation.optimized ~rho:grid.(0) [| 1.0; 2.0 |])
    lowest

let table_validation () =
  Alcotest.check_raises "grid < 2" (Invalid_argument "Alloc_table.build: grid < 2")
    (fun () -> ignore (Alloc_table.build ~grid:1 [| 1.0 |]));
  let t = Alloc_table.build [| 1.0 |] in
  Alcotest.check_raises "rho out of range"
    (Invalid_argument "Alloc_table.lookup: rho outside (0,1)") (fun () ->
      ignore (Alloc_table.lookup t ~rho:1.0))

let table_report_rows () =
  let t = Alloc_table.build ~grid:9 [| 1.0; 4.0 |] in
  let rows = Alloc_table.to_report_rows t ~at:[ 0.3; 0.6 ] in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun (_, alloc) -> Alcotest.(check int) "two computers" 2 (Array.length alloc))
    rows

let prop_table_close_to_exact =
  qcheck ~count:50 "table lookup within 0.05 of exact optimizer"
    QCheck2.Gen.(pair speeds_gen rho_gen)
    (fun (speeds, rho) ->
      let t = Alloc_table.build ~grid:99 speeds in
      let approx = Alloc_table.lookup t ~rho in
      let exact = Allocation.optimized ~rho speeds in
      Array.for_all2 (fun a b -> abs_float (a -. b) < 0.05) approx exact)

(* ------------------------------------------------------------------ *)
(* CSV export                                                          *)

let csv_basic () =
  let csv =
    E.Report.render_csv
      ~header:[ "name"; "value" ]
      ~rows:[ [ E.Report.Text "plain"; E.Report.Float 1.5 ];
              [ E.Report.Text "with,comma"; E.Report.Int 2 ] ]
  in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "three lines" 3 (List.length lines);
  Alcotest.(check string) "header" "name,value" (List.hd lines);
  Alcotest.(check string) "quoted comma" "\"with,comma\",2" (List.nth lines 2)

let csv_quote_escaping () =
  let csv =
    E.Report.render_csv ~header:[ "x" ]
      ~rows:[ [ E.Report.Text "say \"hi\"" ] ]
  in
  Alcotest.(check bool) "doubled quotes" true
    (let needle = "\"say \"\"hi\"\"\"" in
     let h = String.length csv and n = String.length needle in
     let rec scan i = i + n <= h && (String.sub csv i n = needle || scan (i + 1)) in
     scan 0)

let csv_ragged_rejected () =
  Alcotest.check_raises "ragged" (Invalid_argument "Report.render_csv: ragged row")
    (fun () ->
      ignore (E.Report.render_csv ~header:[ "a"; "b" ] ~rows:[ [ E.Report.Int 1 ] ]))

let sweep_csv_halfwidths () =
  let interval mean half =
    {
      Statsched_stats.Confidence.mean;
      half_width = half;
      confidence = 0.95;
      replications = 5;
    }
  in
  let sweep =
    {
      E.Report.title = "t";
      xlabel = "x";
      columns = [ "A" ];
      rows = [ (1.0, [ E.Report.Interval (interval 2.5 0.25) ]) ];
    }
  in
  let csv = E.Report.sweep_to_csv sweep in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check string) "header with halfwidth column" "x,A,A_halfwidth"
    (List.hd lines);
  Alcotest.(check string) "data row" "1,2.5,0.25" (List.nth lines 1)

(* ------------------------------------------------------------------ *)
(* Deeper invariants                                                   *)

let prop_theorem2_condition_is_prefix =
  (* The footnote to Theorem 3: the set of sorted indices satisfying the
     "too slow" condition is contiguous from the left — this is what makes
     the binary search valid.  Verify directly on random systems. *)
  qcheck ~count:300 "theorem 2 condition indices form a prefix"
    QCheck2.Gen.(pair speeds_gen rho_gen)
    (fun (speeds, rho) ->
      let sorted, _ = Core.Speeds.sort_with_permutation speeds in
      let n = Array.length sorted in
      let lambda = rho *. Core.Speeds.total sorted in
      let suffix_s = Array.make (n + 1) 0.0 in
      let suffix_sqrt = Array.make (n + 1) 0.0 in
      for i = n - 1 downto 0 do
        suffix_s.(i) <- suffix_s.(i + 1) +. sorted.(i);
        suffix_sqrt.(i) <- suffix_sqrt.(i + 1) +. sqrt sorted.(i)
      done;
      let holds i = sqrt sorted.(i) < (suffix_s.(i) -. lambda) /. suffix_sqrt.(i) in
      let pattern = Array.init n holds in
      (* after the first false, everything must be false *)
      let ok = ref true in
      let seen_false = ref false in
      Array.iter
        (fun b ->
          if not b then seen_false := true else if !seen_false then ok := false)
        pattern;
      !ok)

let simulation_conserves_jobs () =
  (* Every arrival is either completed or still in some server when the
     horizon is reached. *)
  let speeds = [| 1.0; 3.0 |] in
  let workload = Cluster.Workload.paper_default ~rho:0.7 ~speeds in
  let completions = ref 0 in
  let cfg =
    Cluster.Simulation.default_config ~horizon:50_000.0 ~warmup:0.0 ~speeds ~workload
      ~scheduler:(Cluster.Scheduler.static Core.Policy.orr) ()
  in
  let r = Cluster.Simulation.run ~on_completion:(fun _ -> incr completions) cfg in
  let dispatched_total =
    Array.fold_left
      (fun acc pc -> acc + pc.Cluster.Simulation.dispatched)
      0 r.Cluster.Simulation.per_computer
  in
  Alcotest.(check int) "warmup 0: dispatched equals arrivals"
    r.Cluster.Simulation.total_arrivals dispatched_total;
  Alcotest.(check bool) "completions <= arrivals" true
    (!completions <= r.Cluster.Simulation.total_arrivals);
  (* with no warmup, measured jobs = completions *)
  Alcotest.(check int) "collector counted every completion" !completions
    r.Cluster.Simulation.metrics.Core.Metrics.jobs

let prop_simulation_deterministic =
  qcheck ~count:10 "simulation reproducible for any seed"
    QCheck2.Gen.int64
    (fun seed ->
      let speeds = [| 1.0; 2.0 |] in
      let workload =
        Cluster.Workload.poisson_exponential ~rho:0.5 ~mean_size:1.0 ~speeds
      in
      let run () =
        let cfg =
          Cluster.Simulation.default_config ~horizon:5_000.0 ~seed ~speeds ~workload
            ~scheduler:(Cluster.Scheduler.static Core.Policy.orr) ()
        in
        (Cluster.Simulation.run cfg).Cluster.Simulation.metrics
      in
      run () = run ())

let suite =
  [
    test "alloc table: exact on grid points" table_exact_on_grid;
    test "alloc table: interpolation stays feasible" table_interpolation_feasible;
    test "alloc table: interpolation accurate" table_interpolation_accurate;
    slow_test "alloc table: finer grid more accurate" table_finer_grid_more_accurate;
    test "alloc table: clamps outside grid" table_clamps_outside_grid;
    test "alloc table: validation" table_validation;
    test "alloc table: report rows" table_report_rows;
    prop_table_close_to_exact;
    test "csv: basic rendering and comma quoting" csv_basic;
    test "csv: quote escaping" csv_quote_escaping;
    test "csv: ragged rows rejected" csv_ragged_rejected;
    test "csv: sweep halfwidth columns" sweep_csv_halfwidths;
    prop_theorem2_condition_is_prefix;
    test "simulation: job conservation" simulation_conserves_jobs;
    prop_simulation_deterministic;
  ]

(* ------------------------------------------------------------------ *)
(* Paper claims + sequential runner                                    *)

let claims_structure () =
  let tiny = { E.Config.horizon = 20_000.0; warmup = 5_000.0; reps = 2 } in
  let inputs = E.Paper_claims.gather ~scale:tiny () in
  let outcomes = E.Paper_claims.evaluate inputs in
  Alcotest.(check int) "18 claims" 18 (List.length outcomes);
  (* unique ids *)
  let ids = List.map (fun o -> o.E.Paper_claims.id) outcomes in
  Alcotest.(check int) "unique ids" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  let report = E.Paper_claims.to_report outcomes in
  Alcotest.(check bool) "report counts" true
    (let needle = "/ 18 paper claims" in
     let h = String.length report and n = String.length needle in
     let rec scan i = i + n <= h && (String.sub report i n = needle || scan (i + 1)) in
     scan 0);
  (* even at this tiny scale the robust structural claims must hold *)
  let find id = List.find (fun o -> o.E.Paper_claims.id = id) outcomes in
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " passes even at tiny scale") true
        (find id).E.Paper_claims.pass)
    [ "T1/slow-starved"; "F2/rr-smoother"; "F3/optimized-wins-at-skew" ]

let precision_runner_converges () =
  let speeds = [| 1.0; 2.0 |] in
  let workload = Cluster.Workload.poisson_exponential ~rho:0.5 ~mean_size:1.0 ~speeds in
  let spec =
    E.Runner.make_spec ~speeds ~workload
      ~scheduler:(Cluster.Scheduler.static Core.Policy.wrr) ()
  in
  let point =
    E.Runner.measure_to_precision ~horizon:30_000.0 ~warmup:7_500.0 ~target:0.1
      ~max_reps:12 spec
  in
  let rhw =
    Statsched_stats.Confidence.relative_half_width point.E.Runner.mean_response_ratio
  in
  Alcotest.(check bool)
    (Printf.sprintf "rhw %.3f <= 0.1 or capped at 12 reps (%d)" rhw
       point.E.Runner.mean_response_ratio.Statsched_stats.Confidence.replications)
    true
    (rhw <= 0.1
    || point.E.Runner.mean_response_ratio.Statsched_stats.Confidence.replications = 12)

let precision_runner_validation () =
  let speeds = [| 1.0 |] in
  let workload = Cluster.Workload.poisson_exponential ~rho:0.5 ~mean_size:1.0 ~speeds in
  let spec =
    E.Runner.make_spec ~speeds ~workload
      ~scheduler:(Cluster.Scheduler.static Core.Policy.wrr) ()
  in
  Alcotest.check_raises "target <= 0"
    (Invalid_argument "Runner.measure_to_precision: target <= 0") (fun () ->
      ignore (E.Runner.measure_to_precision ~target:0.0 spec));
  Alcotest.check_raises "min reps"
    (Invalid_argument "Runner.measure_to_precision: need 2 <= min_reps <= max_reps")
    (fun () -> ignore (E.Runner.measure_to_precision ~min_reps:1 ~target:0.1 spec))

let late_suite =
  [
    slow_test "paper claims: structure and robust subset" claims_structure;
    slow_test "precision runner: converges or caps" precision_runner_converges;
    test "precision runner: validation" precision_runner_validation;
  ]

let suite = suite @ late_suite

(* ------------------------------------------------------------------ *)
(* Paired comparison                                                   *)

let paired_self_comparison_is_zero () =
  let speeds = [| 1.0; 2.0 |] in
  let workload = Cluster.Workload.poisson_exponential ~rho:0.5 ~mean_size:1.0 ~speeds in
  let scale = { E.Config.horizon = 20_000.0; warmup = 5_000.0; reps = 3 } in
  let c =
    E.Runner.compare_paired ~scale
      ~a:(Cluster.Scheduler.static Core.Policy.wrr)
      ~b:(Cluster.Scheduler.static Core.Policy.wrr)
      ~speeds ~workload ()
  in
  check_float ~eps:1e-12 "identical schedulers: zero difference" 0.0
    c.E.Runner.ratio_diff.Statsched_stats.Confidence.mean;
  Alcotest.(check bool) "not significant" false c.E.Runner.significant

let paired_orr_beats_wrr_significantly () =
  (* CRN makes even a modest horizon decisive on a skewed cluster. *)
  let speeds = [| 1.0; 1.0; 8.0 |] in
  let workload = Cluster.Workload.poisson_exponential ~rho:0.5 ~mean_size:1.0 ~speeds in
  let scale = { E.Config.horizon = 60_000.0; warmup = 15_000.0; reps = 5 } in
  let c =
    E.Runner.compare_paired ~scale
      ~a:(Cluster.Scheduler.static Core.Policy.orr)
      ~b:(Cluster.Scheduler.static Core.Policy.wrr)
      ~speeds ~workload ()
  in
  Alcotest.(check string) "labels" "ORR" c.E.Runner.label_a;
  Alcotest.(check bool)
    (Format.asprintf "significant improvement: %a" E.Runner.pp_comparison c)
    true
    (c.E.Runner.significant && c.E.Runner.relative_improvement > 0.0)

let paired_validation () =
  let speeds = [| 1.0 |] in
  let workload = Cluster.Workload.poisson_exponential ~rho:0.5 ~mean_size:1.0 ~speeds in
  Alcotest.check_raises "reps < 2"
    (Invalid_argument "Runner.compare_paired: need at least 2 replications") (fun () ->
      ignore
        (E.Runner.compare_paired
           ~scale:{ E.Config.horizon = 1_000.0; warmup = 0.0; reps = 1 }
           ~a:(Cluster.Scheduler.static Core.Policy.wrr)
           ~b:(Cluster.Scheduler.static Core.Policy.orr)
           ~speeds ~workload ()))

let paired_suite =
  [
    slow_test "paired comparison: self-difference is exactly zero"
      paired_self_comparison_is_zero;
    slow_test "paired comparison: ORR beats WRR significantly"
      paired_orr_beats_wrr_significantly;
    test "paired comparison: validation" paired_validation;
  ]

let suite = suite @ paired_suite

(* ------------------------------------------------------------------ *)
(* Markdown report                                                     *)

let md_report_structure () =
  let tiny = { E.Config.horizon = 20_000.0; warmup = 5_000.0; reps = 2 } in
  let inputs = E.Paper_claims.gather ~scale:tiny () in
  let doc = E.Md_report.generate ~scale:tiny ~inputs () in
  let contains needle =
    let h = String.length doc and n = String.length needle in
    let rec scan i = i + n <= h && (String.sub doc i n = needle || scan (i + 1)) in
    scan 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains needle))
    [
      "# statsched reproduction report";
      "## Table 1";
      "## Figure 2";
      "## Figure 3";
      "## Figure 4";
      "## Figure 5";
      "## Figure 6";
      "## Paper-claims scoreboard";
      "/ 18 paper claims reproduced";
      "| fast speed | WRAN |";
    ];
  (* round-trips through write *)
  let path = Filename.temp_file "statsched" ".md" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      E.Md_report.write ~path doc;
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      close_in ic;
      Alcotest.(check int) "written in full" (String.length doc) len)

let md_suite = [ slow_test "markdown report: structure" md_report_structure ]

let suite = suite @ md_suite

(* ------------------------------------------------------------------ *)
(* Parallel replication                                                *)

let parallel_equals_sequential () =
  let speeds = [| 1.0; 4.0 |] in
  let workload = Cluster.Workload.paper_default ~rho:0.6 ~speeds in
  let scale = { E.Config.horizon = 20_000.0; warmup = 5_000.0; reps = 4 } in
  let spec =
    E.Runner.make_spec ~speeds ~workload
      ~scheduler:(Cluster.Scheduler.static Core.Policy.orr) ()
  in
  let seq = E.Runner.replicate ~scale spec in
  let par = E.Runner.replicate_parallel ~domains:3 ~scale spec in
  Alcotest.(check int) "same count" (List.length seq) (List.length par);
  List.iter2
    (fun a b ->
      check_float "bitwise identical metrics"
        a.Cluster.Simulation.metrics.Core.Metrics.mean_response_ratio
        b.Cluster.Simulation.metrics.Core.Metrics.mean_response_ratio;
      Alcotest.(check int) "same arrivals" a.Cluster.Simulation.total_arrivals
        b.Cluster.Simulation.total_arrivals)
    seq par;
  (* the aggregated points agree too *)
  let p_seq = E.Runner.point_of_results seq in
  let p_par = E.Runner.measure_parallel ~domains:2 ~scale spec in
  check_float "aggregated mean equal"
    p_seq.E.Runner.mean_response_ratio.Statsched_stats.Confidence.mean
    p_par.E.Runner.mean_response_ratio.Statsched_stats.Confidence.mean

let parallel_validation () =
  let speeds = [| 1.0 |] in
  let workload = Cluster.Workload.poisson_exponential ~rho:0.5 ~mean_size:1.0 ~speeds in
  let spec =
    E.Runner.make_spec ~speeds ~workload
      ~scheduler:(Cluster.Scheduler.static Core.Policy.wrr) ()
  in
  Alcotest.check_raises "domains < 1"
    (Invalid_argument "Runner.replicate_parallel: domains < 1") (fun () ->
      ignore
        (E.Runner.replicate_parallel ~domains:0
           ~scale:{ E.Config.horizon = 1_000.0; warmup = 0.0; reps = 2 }
           spec))

let parallel_suite =
  [
    slow_test "parallel replication: identical to sequential" parallel_equals_sequential;
    test "parallel replication: validation" parallel_validation;
  ]

let suite = suite @ parallel_suite
