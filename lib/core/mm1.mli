(** Analytical M/M/1 (processor-sharing) performance model (Section 2.3).

    Each computer [i] receiving fraction [α_i] of a Poisson-[λ] stream of
    exponential-[μ] jobs behaves as an M/M/1-PS queue with service rate
    [s_i·μ].  Closed forms for the paper's metrics follow; these are used
    to derive and sanity-check the optimized allocation and to validate
    the simulator on the tractable workload. *)

val server_mean_response_time : mu:float -> lambda:float -> speed:float -> alpha:float -> float
(** [T̄_i = 1 / (s_i·μ − α_i·λ)]; [infinity] when saturated. *)

val server_mean_response_ratio : mu:float -> lambda:float -> speed:float -> alpha:float -> float
(** [R̄_i = μ / (s_i·μ − α_i·λ)]. *)

val server_utilization : mu:float -> lambda:float -> speed:float -> alpha:float -> float
(** [ρ_i = α_i·λ / (s_i·μ)]. *)

val mean_response_time : mu:float -> lambda:float -> speeds:float array -> alloc:float array -> float
(** System mean response time [T̄ = Σ α_i·T̄_i] (equation (3)). *)

val mean_response_ratio : mu:float -> lambda:float -> speeds:float array -> alloc:float array -> float
(** [R̄ = μ·T̄]. *)

val system_utilization : mu:float -> lambda:float -> speeds:float array -> float
(** [ρ = λ / (μ·Σ s_i)]. *)

val lambda_of_utilization : mu:float -> rho:float -> speeds:float array -> float
(** Arrival rate achieving system utilisation [rho]. *)

val theorem1_alloc : mu:float -> lambda:float -> speeds:float array -> float array
(** Equation (4): the unconstrained-sign optimiser
    [α_i = (1/λ)(s_iμ − √(s_iμ)·(Σ s_jμ − λ)/(Σ √(s_jμ)))].
    Fractions may be negative for very slow computers; {!Allocation.optimized}
    applies the Theorem 2 cutoff to make it feasible.  Sums to 1 always. *)

val predicted :
  mu:float -> rho:float -> speeds:float array -> alloc:float array ->
  [ `Mean_response_time | `Mean_response_ratio ] -> float
(** Convenience wrapper: predicted metric at system utilisation [rho]. *)
