(** Figure 4 — effect of system size.

    [n] computers, half of speed 10 and half of speed 1, [n] swept from 2
    to 20 at 70 % utilisation.  Panels: (a) mean response ratio,
    (b) fairness.  (The paper drops the mean-response-time panel from
    here on as its trends duplicate the ratio's; {!run} still measures it
    and {!sweeps} can render it.)

    Expected shape: ORR 35–40 % below WRAN beyond 6 computers; the gap
    between ORR and Least-Load widens with system size; round-robin
    dispatching improves as [n] grows. *)

val default_sizes : int list
(** [2; 4; 6; 8; 10; 12; 14; 16; 18; 20]. *)

type t = (float * (string * Runner.point) list) list

val run :
  ?scale:Config.scale ->
  ?seed:int64 ->
  ?jobs:int ->
  ?sizes:int list ->
  ?schedulers:(string * Statsched_cluster.Scheduler.kind) list ->
  unit ->
  t

val sweeps : t -> Report.sweep list
(** Panels (a) ratio and (b) fairness. *)

val to_report : t -> string
