open Test_util
module Splitmix64 = Statsched_prng.Splitmix64
module Xoshiro256 = Statsched_prng.Xoshiro256
module Rng = Statsched_prng.Rng

(* Reference outputs of SplitMix64 for seed 1234567 (values from the
   published reference implementation). *)
let splitmix_reference () =
  let g = Splitmix64.create 1234567L in
  let v1 = Splitmix64.next g in
  let v2 = Splitmix64.next g in
  let v3 = Splitmix64.next g in
  Alcotest.(check bool) "three distinct outputs" true (v1 <> v2 && v2 <> v3);
  (* Determinism: same seed, same stream. *)
  let h = Splitmix64.create 1234567L in
  Alcotest.(check int64) "replay 1" v1 (Splitmix64.next h);
  Alcotest.(check int64) "replay 2" v2 (Splitmix64.next h);
  Alcotest.(check int64) "replay 3" v3 (Splitmix64.next h)

let splitmix_copy_independent () =
  let g = Splitmix64.create 42L in
  ignore (Splitmix64.next g);
  let h = Splitmix64.copy g in
  let from_g = Splitmix64.next g in
  let from_h = Splitmix64.next h in
  Alcotest.(check int64) "copy continues identically" from_g from_h;
  ignore (Splitmix64.next g);
  (* h is one step behind now; states must differ *)
  Alcotest.(check bool) "states diverge after unequal advance" true
    (Splitmix64.state g <> Splitmix64.state h)

let splitmix_state_roundtrip () =
  let g = Splitmix64.create 99L in
  ignore (Splitmix64.next g);
  let s = Splitmix64.state g in
  let h = Splitmix64.of_state s in
  Alcotest.(check int64) "state restore replays" (Splitmix64.next g) (Splitmix64.next h)

let splitmix_float_range () =
  let g = Splitmix64.create 3L in
  for _ = 1 to 10_000 do
    let x = Splitmix64.next_float g in
    Alcotest.(check bool) "in [0,1)" true (0.0 <= x && x < 1.0)
  done

let xoshiro_determinism () =
  let g = Xoshiro256.create 2024L in
  let h = Xoshiro256.create 2024L in
  for i = 1 to 100 do
    Alcotest.(check int64)
      (Printf.sprintf "step %d" i)
      (Xoshiro256.next g) (Xoshiro256.next h)
  done

let xoshiro_jump_disjoint () =
  (* After a jump the streams must not collide over a reasonable window. *)
  let g = Xoshiro256.create 5L in
  let h = Xoshiro256.copy g in
  Xoshiro256.jump h;
  let seen = Hashtbl.create 4096 in
  for _ = 1 to 2000 do
    Hashtbl.replace seen (Xoshiro256.next g) ()
  done;
  let collisions = ref 0 in
  for _ = 1 to 2000 do
    if Hashtbl.mem seen (Xoshiro256.next h) then incr collisions
  done;
  Alcotest.(check int) "no collisions between substreams" 0 !collisions

let xoshiro_substream_pure () =
  let g = Xoshiro256.create 5L in
  let before = Xoshiro256.copy g in
  let _sub = Xoshiro256.substream g 3 in
  Alcotest.(check int64) "substream leaves parent untouched" (Xoshiro256.next before)
    (Xoshiro256.next g)

let xoshiro_substream_indexing () =
  let g = Xoshiro256.create 5L in
  let s2 = Xoshiro256.substream g 2 in
  (* jumping substream 1 once must equal substream 2 *)
  let s1 = Xoshiro256.substream g 1 in
  Xoshiro256.jump s1;
  Alcotest.(check int64) "substream composition" (Xoshiro256.next s2) (Xoshiro256.next s1)

let xoshiro_substream_negative () =
  let g = Xoshiro256.create 5L in
  Alcotest.check_raises "negative index rejected"
    (Invalid_argument "Xoshiro256.substream: negative index") (fun () ->
      ignore (Xoshiro256.substream g (-1)))

let rng_uniformity () =
  (* Chi-square-ish sanity: 10 buckets over 100k draws, each within 10% of
     the expected count. *)
  let g = rng () in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let x = Rng.float g in
    let b = min 9 (int_of_float (x *. 10.0)) in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d balanced (%d)" i c)
        true
        (abs (c - (n / 10)) < n / 100))
    buckets

let rng_mean_variance () =
  let g = rng () in
  let n = 200_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.float g in
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  check_close ~rel:0.02 "mean 1/2" 0.5 mean;
  check_close ~rel:0.02 "variance 1/12" (1.0 /. 12.0) var

let rng_int_bounds () =
  let g = rng () in
  for _ = 1 to 10_000 do
    let x = Rng.int g 7 in
    Alcotest.(check bool) "0 <= x < 7" true (0 <= x && x < 7)
  done;
  Alcotest.check_raises "n = 0 rejected" (Invalid_argument "Rng.int: n <= 0")
    (fun () -> ignore (Rng.int g 0))

let rng_int_uniform () =
  let g = rng () in
  let counts = Array.make 5 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let x = Rng.int g 5 in
    counts.(x) <- counts.(x) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "value %d frequency" i)
        true
        (abs (c - (n / 5)) < n / 50))
    counts

let rng_uniform_range () =
  let g = rng () in
  for _ = 1 to 1000 do
    let x = Rng.uniform g (-3.0) 5.0 in
    Alcotest.(check bool) "in [-3,5)" true (-3.0 <= x && x < 5.0)
  done;
  Alcotest.check_raises "a > b rejected" (Invalid_argument "Rng.uniform: a > b")
    (fun () -> ignore (Rng.uniform g 1.0 0.0))

let rng_split_independence () =
  let g = rng () in
  let child = Rng.split g in
  (* Parent and child should produce different streams. *)
  let equal = ref 0 in
  for _ = 1 to 1000 do
    if Rng.bits64 g = Rng.bits64 child then incr equal
  done;
  Alcotest.(check int) "no synchronised outputs" 0 !equal

let rng_shuffle_permutation () =
  let g = rng () in
  let a = Array.init 20 (fun i -> i) in
  Rng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation" (Array.init 20 (fun i -> i)) sorted

let rng_shuffle_uniform_first () =
  (* First element after shuffling [0;1;2] should be ~uniform. *)
  let g = rng () in
  let counts = Array.make 3 0 in
  let n = 30_000 in
  for _ = 1 to n do
    let a = [| 0; 1; 2 |] in
    Rng.shuffle g a;
    counts.(a.(0)) <- counts.(a.(0)) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "roughly uniform" true (abs (c - (n / 3)) < n / 30))
    counts

let rng_choose_weighted () =
  let g = rng () in
  let w = [| 1.0; 3.0; 6.0 |] in
  let counts = Array.make 3 0 in
  let n = 60_000 in
  for _ = 1 to n do
    let i = Rng.choose_weighted g w in
    counts.(i) <- counts.(i) + 1
  done;
  check_close ~rel:0.05 "weight 0.1" 0.1 (float_of_int counts.(0) /. float_of_int n);
  check_close ~rel:0.05 "weight 0.3" 0.3 (float_of_int counts.(1) /. float_of_int n);
  check_close ~rel:0.05 "weight 0.6" 0.6 (float_of_int counts.(2) /. float_of_int n)

let rng_choose_weighted_errors () =
  let g = rng () in
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choose_weighted: empty weights")
    (fun () -> ignore (Rng.choose_weighted g [||]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Rng.choose_weighted: negative weight") (fun () ->
      ignore (Rng.choose_weighted g [| 1.0; -0.5 |]));
  Alcotest.check_raises "zero total"
    (Invalid_argument "Rng.choose_weighted: zero total weight") (fun () ->
      ignore (Rng.choose_weighted g [| 0.0; 0.0 |]))

let rng_zero_weight_never_chosen () =
  let g = rng () in
  let w = [| 0.0; 1.0; 0.0; 2.0 |] in
  for _ = 1 to 5000 do
    let i = Rng.choose_weighted g w in
    Alcotest.(check bool) "only live indices" true (i = 1 || i = 3)
  done

let prop_float_in_unit =
  qcheck "float stays in [0,1) for any seed"
    QCheck2.Gen.(int64)
    (fun seed ->
      let g = Rng.create ~seed () in
      let ok = ref true in
      for _ = 1 to 100 do
        let x = Rng.float g in
        if not (0.0 <= x && x < 1.0) then ok := false
      done;
      !ok)

let prop_int_in_range =
  qcheck "int stays in range for any n, seed"
    QCheck2.Gen.(pair int64 (int_range 1 1_000_000))
    (fun (seed, n) ->
      let g = Rng.create ~seed () in
      let ok = ref true in
      for _ = 1 to 50 do
        let x = Rng.int g n in
        if not (0 <= x && x < n) then ok := false
      done;
      !ok)

let suite =
  [
    test "splitmix64: reference determinism" splitmix_reference;
    test "splitmix64: copy independence" splitmix_copy_independent;
    test "splitmix64: state roundtrip" splitmix_state_roundtrip;
    test "splitmix64: float range" splitmix_float_range;
    test "xoshiro256: determinism" xoshiro_determinism;
    test "xoshiro256: jump gives disjoint streams" xoshiro_jump_disjoint;
    test "xoshiro256: substream leaves parent untouched" xoshiro_substream_pure;
    test "xoshiro256: substream composition" xoshiro_substream_indexing;
    test "xoshiro256: negative substream rejected" xoshiro_substream_negative;
    test "rng: uniform buckets" rng_uniformity;
    test "rng: mean and variance of U(0,1)" rng_mean_variance;
    test "rng: int bounds" rng_int_bounds;
    test "rng: int uniformity" rng_int_uniform;
    test "rng: uniform range" rng_uniform_range;
    test "rng: split independence" rng_split_independence;
    test "rng: shuffle is a permutation" rng_shuffle_permutation;
    test "rng: shuffle first element uniform" rng_shuffle_uniform_first;
    test "rng: choose_weighted frequencies" rng_choose_weighted;
    test "rng: choose_weighted errors" rng_choose_weighted_errors;
    test "rng: zero weights never chosen" rng_zero_weight_never_chosen;
    prop_float_in_unit;
    prop_int_in_range;
  ]
