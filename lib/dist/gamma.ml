module Rng = Statsched_prng.Rng

let standard_normal g =
  let u1 = 1.0 -. Rng.float g in
  let u2 = Rng.float g in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

(* Marsaglia & Tsang's squeeze method for shape >= 1. *)
let rec sample_shape_ge1 ~shape g =
  let d = shape -. (1.0 /. 3.0) in
  let c = 1.0 /. sqrt (9.0 *. d) in
  let x = standard_normal g in
  let v = (1.0 +. (c *. x)) ** 3.0 in
  if v <= 0.0 then sample_shape_ge1 ~shape g
  else begin
    let u = Rng.float g in
    let x2 = x *. x in
    if u < 1.0 -. (0.0331 *. x2 *. x2) then d *. v
    else if log u < (0.5 *. x2) +. (d *. (1.0 -. v +. log v)) then d *. v
    else sample_shape_ge1 ~shape g
  end

let sample ~shape g =
  if shape >= 1.0 then sample_shape_ge1 ~shape g
  else begin
    (* Boost: Gamma(a) = Gamma(a+1) * U^(1/a). *)
    let u = 1.0 -. Rng.float g in
    sample_shape_ge1 ~shape:(shape +. 1.0) g *. (u ** (1.0 /. shape))
  end

let create ~shape ~scale =
  if shape <= 0.0 then invalid_arg "Gamma.create: shape <= 0";
  if scale <= 0.0 then invalid_arg "Gamma.create: scale <= 0";
  Distribution.make
    ~name:(Printf.sprintf "Gamma(%g,%g)" shape scale)
    ~mean:(shape *. scale)
    ~variance:(shape *. scale *. scale)
    (fun g -> scale *. sample ~shape g)

let of_mean_cv ~mean ~cv =
  if mean <= 0.0 then invalid_arg "Gamma.of_mean_cv: mean <= 0";
  if cv <= 0.0 then invalid_arg "Gamma.of_mean_cv: cv <= 0";
  let shape = 1.0 /. (cv *. cv) in
  create ~shape ~scale:(mean /. shape)
