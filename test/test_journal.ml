open Test_util
module Obs = Statsched_obs
module Journal = Obs.Journal
module Http = Obs.Http
module Core = Statsched_core
module Cluster = Statsched_cluster
module Workload = Cluster.Workload
module Simulation = Cluster.Simulation
module Scheduler = Cluster.Scheduler
module Fault = Cluster.Fault
module Telemetry = Cluster.Telemetry
module Job = Statsched_queueing.Job
module Journal_file = Tracestat_core.Journal_file
module Crossval = Tracestat_core.Crossval
module Band = Statsched_simcheck.Band

(* ------------------------------------------------------------------ *)
(* Bounded journal: sampling and compaction invariants                  *)

let journal_bounded_sampling () =
  let j = Journal.create ~capacity:16 () in
  Alcotest.(check int) "initial stride" 1 (Journal.stride j);
  for i = 0 to 999 do
    Journal.record_dispatch j ~id:i ~computer:(i mod 3) ~time:(float_of_int i)
  done;
  Alcotest.(check bool) "length bounded by capacity" true
    (Journal.length j <= Journal.capacity j);
  Alcotest.(check int) "every offer counted" 1000 (Journal.seen j Journal.Dispatch);
  let stride = Journal.stride j in
  Alcotest.(check bool) "stride grew under pressure" true (stride > 1);
  Alcotest.(check bool) "stride stays a power of two" true
    (stride land (stride - 1) = 0);
  (* Systematic sampling: after any number of compactions the retained
     dispatches are exactly the ordinals 0, stride, 2*stride, ... in
     recording order — a uniform sample, not an arbitrary subset. *)
  let ids = ref [] in
  Journal.iter j (function
    | Journal.Dispatch_r { id; _ } -> ids := id :: !ids
    | _ -> Alcotest.fail "journal holds only dispatch records");
  let ids = List.rev !ids in
  Alcotest.(check bool) "some records survive" true (ids <> []);
  List.iteri
    (fun k id ->
      Alcotest.(check int) (Printf.sprintf "record %d is ordinal %d" k (k * stride))
        (k * stride) id)
    ids;
  Alcotest.(check int) "kept agrees with length"
    (Journal.length j)
    (Journal.kept j Journal.Dispatch)

let journal_per_stream_sampling () =
  (* Mixed streams compact together but sample per stream: each kind
     keeps its own 0, stride, 2*stride... ordinals. *)
  let j = Journal.create ~capacity:32 () in
  for i = 0 to 499 do
    Journal.record_dispatch j ~id:i ~computer:0 ~time:(float_of_int i);
    Journal.record_completion j ~id:i ~computer:0 ~arrival:(float_of_int i)
      ~start:(float_of_int i)
      ~completion:(float_of_int (i + 1))
      ~size:1.0
  done;
  let stride = Journal.stride j in
  let check_ordinals name extract =
    let got = ref [] in
    Journal.iter j (fun r ->
        match extract r with Some id -> got := id :: !got | None -> ());
    List.iteri
      (fun k id ->
        Alcotest.(check int)
          (Printf.sprintf "%s record %d is ordinal %d" name k (k * stride))
          (k * stride) id)
      (List.rev !got)
  in
  check_ordinals "dispatch" (function
    | Journal.Dispatch_r { id; _ } -> Some id
    | _ -> None);
  check_ordinals "completion" (function
    | Journal.Completion_r { id; _ } -> Some id
    | _ -> None);
  Alcotest.(check int) "dispatch stream population" 500
    (Journal.seen j Journal.Dispatch);
  Alcotest.(check int) "completion stream population" 500
    (Journal.seen j Journal.Completion)

let journal_validation () =
  Alcotest.(check bool) "capacity < 16 rejected" true
    (match Journal.create ~capacity:8 () with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "sample_every < 1 rejected" true
    (match Journal.create ~sample_every:0 () with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let j = Journal.create ~capacity:16 () in
  Alcotest.(check bool) "malformed meta key rejected" true
    (match Journal.to_string ~meta:[ ("bad key", "v") ] j with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Checksum and on-disk format                                          *)

let journal_checksum_vectors () =
  (* Standard 64-bit FNV-1a test vectors. *)
  List.iter
    (fun (input, expected) ->
      Alcotest.(check string)
        (Printf.sprintf "fnv1a64 %S" input)
        expected
        (Printf.sprintf "%016Lx" (Journal.fnv1a64 input)))
    [
      ("", "cbf29ce484222325");
      ("a", "af63dc4c8601ec8c");
      ("foobar", "85944171f73967e8");
    ]

let sample_journal () =
  let j = Journal.create ~capacity:16 () in
  Journal.record_dispatch j ~id:0 ~computer:2 ~time:0.1;
  Journal.record_queue j ~depth:3 ~computer:2 ~time:0.1;
  Journal.record_completion j ~id:0 ~computer:2 ~arrival:0.1
    ~start:(1.0 /. 3.0) ~completion:1.0e-17 ~size:2.5;
  Journal.record_drop j ~id:1 ~computer:0 ~time:7.25;
  Journal.record_rate j ~computer:1 ~time:4096.0 ~rate:0.0;
  j

let journal_roundtrip () =
  let j = sample_journal () in
  let meta = [ ("scheduler", "orr"); ("seed", "7") ] in
  let summary = [ ("mean_response_time", "1.5") ] in
  let text = Journal.to_string ~meta ~summary j in
  match Journal_file.parse text with
  | Error _ -> Alcotest.fail "roundtrip parse failed"
  | Ok jf ->
    Alcotest.(check (list (pair string string))) "meta" meta jf.Journal_file.meta;
    Alcotest.(check (list (pair string string)))
      "summary" summary jf.Journal_file.summary;
    Alcotest.(check int) "stride" 1 jf.Journal_file.stride;
    Alcotest.(check int) "seen dispatch" 1 (Journal_file.seen_of jf "dispatch");
    Alcotest.(check int) "seen rate" 1 (Journal_file.seen_of jf "rate");
    Alcotest.(check int) "record count" 5 (Array.length jf.Journal_file.records);
    (* Floats survive serialisation bit-exactly (%.12g / %.17g fallback). *)
    let original = ref [] in
    Journal.iter j (fun r -> original := r :: !original);
    List.iteri
      (fun i r ->
        let same =
          match (r, jf.Journal_file.records.(i)) with
          | ( Journal.Completion_r
                { id; computer; arrival; start; completion; size },
              Journal.Completion_r p ) ->
            id = p.id && computer = p.computer
            && Float.equal arrival p.arrival
            && Float.equal start p.start
            && Float.equal completion p.completion
            && Float.equal size p.size
          | Journal.Dispatch_r { id; computer; time }, Journal.Dispatch_r p ->
            id = p.id && computer = p.computer && Float.equal time p.time
          | Journal.Queue_r { depth; computer; time }, Journal.Queue_r p ->
            depth = p.depth && computer = p.computer && Float.equal time p.time
          | Journal.Drop_r { id; computer; time }, Journal.Drop_r p ->
            id = p.id && computer = p.computer && Float.equal time p.time
          | Journal.Rate_r { computer; time; rate }, Journal.Rate_r p ->
            computer = p.computer && Float.equal time p.time
            && Float.equal rate p.rate
          | _ -> false
        in
        Alcotest.(check bool) (Printf.sprintf "record %d identical" i) true same)
      (List.rev !original)

let journal_corruption_detected () =
  let j = sample_journal () in
  let text = Journal.to_string j in
  let corrupt s =
    match Journal_file.parse s with
    | Error (Journal_file.Corrupt _) -> true
    | _ -> false
  in
  Alcotest.(check bool) "pristine journal parses" true
    (Result.is_ok (Journal_file.parse text));
  (* Flip one byte in the middle. *)
  let flipped = Bytes.of_string text in
  let mid = String.length text / 2 in
  Bytes.set flipped mid (if Bytes.get flipped mid = 'x' then 'y' else 'x');
  Alcotest.(check bool) "flipped byte caught by checksum" true
    (corrupt (Bytes.to_string flipped));
  (* Truncate: lose the checksum line. *)
  let no_checksum =
    String.sub text 0 (String.rindex_from text (String.length text - 2) '\n' + 1)
  in
  Alcotest.(check bool) "missing checksum caught" true (corrupt no_checksum);
  (* Record-count header disagreeing with the body. *)
  let miscounted =
    let body_lines = String.split_on_char '\n' text in
    let swapped =
      List.map
        (fun l -> if String.equal l "records 5" then "records 4" else l)
        body_lines
    in
    (* Re-checksum so only the count mismatch trips. *)
    let body =
      String.concat "\n"
        (List.filteri (fun i _ -> i < List.length swapped - 2) swapped)
      ^ "\n"
    in
    body ^ Printf.sprintf "checksum fnv1a64 %016Lx\n" (Journal.fnv1a64 body)
  in
  Alcotest.(check bool) "record count mismatch caught" true (corrupt miscounted);
  (* An honest file of a future version is Unsupported, not Corrupt. *)
  let v2 = "statsched-journal v2\n" in
  let v2 = v2 ^ Printf.sprintf "checksum fnv1a64 %016Lx\n" (Journal.fnv1a64 v2) in
  Alcotest.(check bool) "future version is Unsupported" true
    (match Journal_file.parse v2 with
    | Error (Journal_file.Unsupported _) -> true
    | _ -> false)

let journal_write_atomic () =
  let dir = Filename.temp_file "statsched-journal" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "run.journal" in
  let j = sample_journal () in
  Journal.write j path;
  Alcotest.(check bool) "journal written" true (Sys.file_exists path);
  Alcotest.(check bool) "no temp file left behind" true
    (not (Sys.file_exists (path ^ ".tmp")));
  (match Journal_file.load path with
  | Ok jf ->
    Alcotest.(check int) "written journal loads" 5
      (Array.length jf.Journal_file.records)
  | Error _ -> Alcotest.fail "written journal must load");
  Sys.remove path;
  Unix.rmdir dir

(* ------------------------------------------------------------------ *)
(* Hot path stays allocation-light                                      *)

let journal_recording_allocation () =
  (* Recording must not build per-record heap structure: the only
     allocation a call site may pay is the boxing of its float
     arguments (a few words), never an O(record) or O(capacity) cost.
     The loop below crosses several compactions. *)
  let j = Journal.create ~capacity:1024 () in
  let record i =
    let t = float_of_int i in
    Journal.record_completion j ~id:i ~computer:0 ~arrival:t ~start:t
      ~completion:t ~size:1.0
  in
  for i = 0 to 1023 do
    record i
  done;
  Gc.full_major ();
  let n = 8192 in
  let before = Gc.minor_words () in
  for i = 0 to n - 1 do
    record i
  done;
  let per_record = (Gc.minor_words () -. before) /. float_of_int n in
  if per_record > 16.0 then
    Alcotest.failf "journal recording allocates %.1f words/record (bound: 16)"
      per_record

let journal_sim_allocation () =
  (* End-to-end acceptance: the per-job allocation bound of the bare
     simulation (test_cluster) still holds with metric + journal
     telemetry attached and job-pool recycling on
     ([hooks_retain_jobs:false]). *)
  let speeds = Core.Speeds.table3 in
  let workload = Workload.paper_default ~rho:0.7 ~speeds in
  let cfg =
    Simulation.default_config ~horizon:2.0e4 ~warmup:5.0e3 ~seed:7L ~speeds
      ~workload ~scheduler:(Scheduler.static Core.Policy.orr) ()
  in
  let run () =
    let t =
      Telemetry.create ~journal:(Journal.create ~capacity:16384 ()) cfg
    in
    let r =
      Simulation.run ~sanitize:false ~hooks_retain_jobs:false
        ~metric_histograms:(Telemetry.histograms t)
        ~on_dispatch:(Telemetry.on_dispatch t)
        ~on_completion:(Telemetry.on_completion t)
        ~on_drop:(Telemetry.on_drop t) cfg
    in
    Telemetry.finalize t r;
    r
  in
  ignore (run ());
  Gc.full_major ();
  let before = Gc.minor_words () in
  let result = run () in
  let delta = Gc.minor_words () -. before in
  let jobs = float_of_int result.Simulation.total_arrivals in
  Alcotest.(check bool) "enough jobs to average over" true (jobs > 1_000.0);
  let per_job = delta /. jobs in
  if per_job > 120.0 then
    Alcotest.failf "journaled hot path allocates %.1f words/job (bound: 120)"
      per_job

(* ------------------------------------------------------------------ *)
(* HTTP server                                                          *)

let http_request ~port request =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let n = Unix.write_substring fd request 0 (String.length request) in
      Alcotest.(check int) "request fully written" (String.length request) n;
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        end
      in
      drain ();
      Buffer.contents buf)

let http_get ~port path =
  http_request ~port
    (Printf.sprintf "GET %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
       path)

let contains s needle =
  let ls = String.length s and ln = String.length needle in
  let rec go i =
    if i + ln > ls then false
    else if String.equal (String.sub s i ln) needle then true
    else go (i + 1)
  in
  go 0

let http_server_basics () =
  let server =
    Http.serve ~port:0 (fun path ->
        match path with
        | "/ping" -> Some (Http.text "pong")
        | "/data" -> Some (Http.json "{\"ok\":true}")
        | "/boom" -> failwith "handler bug"
        | _ -> None)
  in
  let port = Http.port server in
  Alcotest.(check bool) "ephemeral port assigned" true (port > 0);
  let ok = http_get ~port "/ping" in
  Alcotest.(check bool) "200 on a routed path" true (contains ok "200");
  Alcotest.(check bool) "body served" true (contains ok "pong");
  Alcotest.(check bool) "connection: close advertised" true
    (contains ok "Connection: close");
  let js = http_get ~port "/data" in
  Alcotest.(check bool) "json content type" true
    (contains js "application/json");
  (* Query strings are stripped before routing. *)
  Alcotest.(check bool) "query string ignored" true
    (contains (http_get ~port "/ping?x=1") "pong");
  Alcotest.(check bool) "404 on unknown path" true
    (contains (http_get ~port "/nope") "404");
  Alcotest.(check bool) "405 on non-GET" true
    (contains
       (http_request ~port "POST /ping HTTP/1.1\r\nHost: x\r\n\r\n")
       "405");
  Alcotest.(check bool) "400 on garbage" true
    (contains (http_request ~port "not http\r\n\r\n") "400");
  Alcotest.(check bool) "500 on a raising handler, server survives" true
    (contains (http_get ~port "/boom") "500");
  Alcotest.(check bool) "still serving after the 500" true
    (contains (http_get ~port "/ping") "pong");
  Http.stop server;
  Http.stop server;
  (* idempotent *)
  Alcotest.(check bool) "connections refused after stop" true
    (match http_get ~port "/ping" with
    | exception Unix.Unix_error _ -> true
    | response -> String.equal response "")

(* Regression (PR 10): the header scan must resume where the previous
   chunk's scan stopped (minus 3 bytes for a terminator straddling the
   boundary) instead of rescanning the whole buffer from offset 0 per
   chunk — the old behaviour was O(n^2) on fragmented headers. *)
let http_incremental_header_scan () =
  let find s ~from =
    Http.Testing.find_headers_end (Bytes.of_string s) ~len:(String.length s)
      ~from
  in
  Alcotest.(check int) "terminator at start" 0 (find "\r\n\r\nbody" ~from:0);
  Alcotest.(check int) "terminator mid-buffer" 5
    (find "GET /\r\n\r\nrest" ~from:0);
  Alcotest.(check int) "absent" (-1) (find "GET / HTTP/1.1\r\n" ~from:0);
  Alcotest.(check int) "negative from clamps to 0" 0
    (find "\r\n\r\n" ~from:(-7));
  (* The straddle case: the terminator's first 3 bytes arrive in chunk 1
     and its final byte in chunk 2.  Resuming at [prev_len - 3] finds
     it; resuming at [prev_len] (the naive "only scan new bytes") would
     not. *)
  let s = "GET / HTTP/1.1\r\n\r\n" in
  let prev_len = String.length s - 1 in
  Alcotest.(check int) "straddled terminator found from prev_len-3" 14
    (find s ~from:(prev_len - 3));
  Alcotest.(check int) "naive prev_len resume would miss it" (-1)
    (find s ~from:prev_len);
  (* End-to-end: a request with a multi-KiB header fed one byte at a
     time still parses (each byte is a separate chunk, so the resume
     path runs thousands of times). *)
  let seen = ref None in
  let server =
    Http.serve_requests ~port:0 (fun req ->
        seen := Some (req.Http.meth, req.Http.path, req.Http.body);
        Http.text "ok")
  in
  let port = Http.port server in
  Fun.protect
    ~finally:(fun () -> Http.stop server)
    (fun () ->
      let request =
        "POST /jobs HTTP/1.1\r\nHost: x\r\nX-Pad: "
        ^ String.make 4096 'p'
        ^ "\r\nContent-Length: 4\r\n\r\n2.25"
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
          String.iter
            (fun c ->
              ignore (Unix.write_substring fd (String.make 1 c) 0 1))
            request;
          let buf = Bytes.create 4096 in
          let n = Unix.read fd buf 0 (Bytes.length buf) in
          let response = Bytes.sub_string buf 0 n in
          Alcotest.(check bool) "byte-at-a-time request answered 200" true
            (contains response "200"));
      match !seen with
      | Some (meth, path, body) ->
        Alcotest.(check string) "method" "POST" meth;
        Alcotest.(check string) "path" "/jobs" path;
        Alcotest.(check string) "body" "2.25" body
      | None -> Alcotest.fail "handler never invoked")

(* Regression (PR 10): a client that connects and then goes silent used
   to park the sequential accept loop forever (slow-loris head-of-line
   blocking).  Now every connection read is bounded by a deadline: the
   staller gets a 408 and the next caller is served. *)
let http_read_timeout () =
  let server =
    Http.serve ~port:0 ~read_timeout:0.3 (fun path ->
        if String.equal path "/ping" then Some (Http.text "pong") else None)
  in
  let port = Http.port server in
  Fun.protect
    ~finally:(fun () -> Http.stop server)
    (fun () ->
      let stalled = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () ->
          try Unix.close stalled with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect stalled
            (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
          (* A partial request line, then silence. *)
          ignore (Unix.write_substring stalled "GET /pi" 0 7);
          let buf = Bytes.create 1024 in
          let n = Unix.read stalled buf 0 (Bytes.length buf) in
          let response = Bytes.sub_string buf 0 n in
          Alcotest.(check bool) "stalled connection answered 408" true
            (contains response "408"));
      (* The staller did not wedge the loop: a well-formed request right
         behind it is served normally. *)
      Alcotest.(check bool) "server alive after the staller" true
        (contains (http_get ~port "/ping") "pong"))

(* Method+body dispatch and the request-reader error paths. *)
let http_method_body_dispatch () =
  let server =
    Http.serve_requests ~port:0 ~read_timeout:0.5 (fun req ->
        Http.text
          (Printf.sprintf "%s %s [%s]" req.Http.meth req.Http.path
             req.Http.body))
  in
  let port = Http.port server in
  Fun.protect
    ~finally:(fun () -> Http.stop server)
    (fun () ->
      let put =
        http_request ~port
          "PUT /policy HTTP/1.1\r\nHost: x\r\ncontent-length: 9\r\n\r\nleast-load"
      in
      (* Note: Content-Length 9 truncates the 10-byte payload on purpose;
         the reader must honour the declared length, not the bytes sent. *)
      Alcotest.(check bool) "PUT with lowercase content-length" true
        (contains put "PUT /policy [least-loa]");
      let no_body = http_request ~port "DELETE /x HTTP/1.1\r\nHost: x\r\n\r\n" in
      Alcotest.(check bool) "no Content-Length means empty body" true
        (contains no_body "DELETE /x []");
      let bad_len =
        http_request ~port
          "POST /jobs HTTP/1.1\r\nContent-Length: nope\r\n\r\n"
      in
      Alcotest.(check bool) "unparseable content-length is a 400" true
        (contains bad_len "400");
      let huge =
        http_request ~port
          "POST /jobs HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n"
      in
      Alcotest.(check bool) "oversized declared body is a 413" true
        (contains huge "413");
      (* Client half-closes after "short": EOF before the declared
         length is a hard 400 (no point waiting out the deadline). *)
      let request =
        "POST /jobs HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort"
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
          ignore (Unix.write_substring fd request 0 (String.length request));
          Unix.shutdown fd Unix.SHUTDOWN_SEND;
          let buf = Bytes.create 1024 in
          let n = Unix.read fd buf 0 (Bytes.length buf) in
          Alcotest.(check bool) "truncated body is a 400" true
            (contains (Bytes.sub_string buf 0 n) "400")))

(* ------------------------------------------------------------------ *)
(* Live serving: mid-run answers, and no perturbation                   *)

let make_cfg ?faults ?(scheduler = Scheduler.static Core.Policy.orr) () =
  let speeds = Core.Speeds.table3 in
  let workload = Workload.paper_default ~rho:0.7 ~speeds in
  Simulation.default_config ?faults ~horizon:40_000.0 ~warmup:10_000.0 ~speeds
    ~workload ~scheduler ()

let serve_answers_mid_run () =
  let cfg = make_cfg () in
  let t = Telemetry.create ~journal:(Journal.create ()) cfg in
  let server = Telemetry.serve t ~port:0 in
  let port = Http.port server in
  let probes = ref 0 in
  let result =
    Simulation.run ~hooks_retain_jobs:false
      ~on_engine:(Telemetry.set_engine t)
      ~metric_histograms:(Telemetry.histograms t)
      ~on_dispatch:(Telemetry.on_dispatch t)
      ~on_completion:(Telemetry.on_completion t)
      ~on_drop:(Telemetry.on_drop t)
      ~on_progress:
        ( 10_000.0,
          fun (_ : Simulation.progress) ->
            (* The probe runs inside the simulation loop: the server
               thread answers while the run is provably mid-flight. *)
            incr probes;
            Alcotest.(check bool) "/healthz mid-run" true
              (contains (http_get ~port "/healthz") "ok");
            let state = http_get ~port "/state" in
            Alcotest.(check bool) "/state reports sim_time" true
              (contains state "\"sim_time\"");
            Alcotest.(check bool) "/state reports live engine counters" true
              (contains state "\"events_executed\"");
            Alcotest.(check bool) "/state reports journal occupancy" true
              (contains state "\"journal\"");
            let metrics = http_get ~port "/metrics" in
            Alcotest.(check bool) "/metrics is prometheus text" true
              (contains metrics "# TYPE statsched_jobs_dispatched_total counter") )
      cfg
  in
  Telemetry.finalize t result;
  Http.stop server;
  Alcotest.(check int) "probed mid-run" 4 !probes;
  Alcotest.(check bool) "run completed jobs" true
    (result.Simulation.total_arrivals > 1000)

(* Acceptance criterion: journaling + live serving leave the run
   bit-identical to a bare one under the same seed. *)
let serve_journal_bit_identity () =
  List.iter
    (fun (name, faults, scheduler) ->
      let order = ref [] in
      let record job = order := job.Job.id :: !order in
      let cfg = make_cfg ?faults ~scheduler () in
      let plain = Simulation.run ~on_completion:record cfg in
      let plain_order = List.rev !order in
      order := [];
      let t = Telemetry.create ~journal:(Journal.create ()) cfg in
      let server = Telemetry.serve t ~port:0 in
      let served =
        Simulation.run ~hooks_retain_jobs:false
          ~on_engine:(Telemetry.set_engine t)
          ~metric_histograms:(Telemetry.histograms t)
          ~on_dispatch:(Telemetry.on_dispatch t)
          ~on_completion:(fun job ->
            Telemetry.on_completion t job;
            record job)
          ~on_drop:(Telemetry.on_drop t)
          ~on_rate_change:(Telemetry.on_rate_change t)
          cfg
      in
      Telemetry.finalize t served;
      Http.stop server;
      check_float ~eps:0.0
        (name ^ ": mean response time bit-identical")
        plain.Simulation.metrics.Core.Metrics.mean_response_time
        served.Simulation.metrics.Core.Metrics.mean_response_time;
      check_float ~eps:0.0
        (name ^ ": mean response ratio bit-identical")
        plain.Simulation.metrics.Core.Metrics.mean_response_ratio
        served.Simulation.metrics.Core.Metrics.mean_response_ratio;
      Alcotest.(check int)
        (name ^ ": same events executed")
        plain.Simulation.events_executed served.Simulation.events_executed;
      Alcotest.(check int)
        (name ^ ": same arrivals")
        plain.Simulation.total_arrivals served.Simulation.total_arrivals;
      check_array ~eps:0.0
        (name ^ ": dispatch fractions bit-identical")
        plain.Simulation.dispatch_fractions served.Simulation.dispatch_fractions;
      Alcotest.(check (list int))
        (name ^ ": completion order identical")
        plain_order (List.rev !order))
    [
      ("ORR", None, Scheduler.static Core.Policy.orr);
      ( "LeastLoad+faults",
        Some (Fault.exponential ~on_failure:Fault.Drop ~mtbf:2000.0 ~mttr:50.0 ()),
        Scheduler.least_load_paper );
    ]

(* ------------------------------------------------------------------ *)
(* Cross-validation: journal vs collector, in process                   *)

let crossval_roundtrip () =
  let cfg = make_cfg ~scheduler:(Scheduler.static Core.Policy.orr) () in
  let t = Telemetry.create ~journal:(Journal.create ~capacity:262144 ()) cfg in
  let result =
    Simulation.run ~hooks_retain_jobs:false
      ~metric_histograms:(Telemetry.histograms t)
      ~on_dispatch:(Telemetry.on_dispatch t)
      ~on_completion:(Telemetry.on_completion t)
      ~on_drop:(Telemetry.on_drop t)
      ~on_rate_change:(Telemetry.on_rate_change t)
      cfg
  in
  Telemetry.finalize t result;
  let dir = Filename.temp_file "statsched-crossval" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "run.journal" in
  Telemetry.write_journal t result path;
  (match Journal_file.load path with
  | Error _ -> Alcotest.fail "journal must load"
  | Ok jf -> (
    match Crossval.validate jf with
    | Error reason -> Alcotest.failf "cross-validation unavailable: %s" reason
    | Ok report ->
      Alcotest.(check bool) "all bands pass" true report.Crossval.ok;
      Alcotest.(check bool) "covers response time, fractions, utilization" true
        (List.length report.Crossval.bands >= 4);
      List.iter
        (fun (b : Band.t) ->
          Alcotest.(check bool) (b.Band.name ^ " band passes") true b.Band.ok)
        report.Crossval.bands));
  (* Sanity: a corrupted copy of the same journal is flagged. *)
  let content = In_channel.with_open_bin path In_channel.input_all in
  let bad = Bytes.of_string content in
  let mid = Bytes.length bad / 2 in
  Bytes.set bad mid (if Bytes.get bad mid = '1' then '2' else '1');
  Alcotest.(check bool) "corrupted journal flagged" true
    (match Journal_file.parse (Bytes.to_string bad) with
    | Error (Journal_file.Corrupt _) -> true
    | _ -> false);
  Sys.remove path;
  Unix.rmdir dir

let suite =
  [
    test "journal: bounded capacity, systematic sampling" journal_bounded_sampling;
    test "journal: per-stream sampling survives compaction"
      journal_per_stream_sampling;
    test "journal: constructor and key validation" journal_validation;
    test "journal: fnv1a64 reference vectors" journal_checksum_vectors;
    test "journal: serialisation roundtrips bit-exactly" journal_roundtrip;
    test "journal: corruption and version skew detected"
      journal_corruption_detected;
    test "journal: atomic write leaves no temp file" journal_write_atomic;
    test "journal: recording stays allocation-light" journal_recording_allocation;
    slow_test "journal: per-job allocation bound holds with telemetry on"
      journal_sim_allocation;
    test "http: routing, errors and idempotent stop" http_server_basics;
    test "http: incremental header scan, byte-at-a-time"
      http_incremental_header_scan;
    test "http: stalled connection gets 408, loop survives"
      http_read_timeout;
    test "http: method+body dispatch and reader error paths"
      http_method_body_dispatch;
    slow_test "serve: endpoints answer mid-run" serve_answers_mid_run;
    slow_test "serve: journaled + served runs bit-identical"
      serve_journal_bit_identity;
    slow_test "crossval: journal agrees with collector in process"
      crossval_roundtrip;
  ]
