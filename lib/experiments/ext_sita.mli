(** Extension experiment: what is size-awareness worth?

    The paper's related work (reference [5], Crovella et al.) improves
    performance by assigning tasks based on their service demands —
    knowledge the paper's own policies deliberately avoid needing.  This
    experiment runs SITA-E head-to-head with the size-blind policies on
    the Table 3 cluster under both service disciplines:

    - under FCFS hosts (Crovella's setting) size-based banding isolates
      the huge jobs and should win big;
    - under processor sharing (this paper's setting) PS itself already
      protects small jobs, so the advantage of knowing sizes shrinks —
      which is precisely why the paper can afford size-blind policies. *)

type t = {
  discipline : string;
  points : (string * Runner.point) list;
}

val run :
  ?scale:Config.scale ->
  ?seed:int64 ->
  ?jobs:int ->
  ?speeds:float array ->
  ?rho:float ->
  unit ->
  t list
(** Two rows: PS and FCFS, each comparing WRAN, ORR, SITA-E (both band
    orders) and Least-Load. *)

val to_report : t list -> string
