let () =
  Alcotest.run "statsched"
    [
      ("prng", Test_prng.suite);
      ("dist", Test_dist.suite);
      ("des", Test_des.suite);
      ("stats", Test_stats.suite);
      ("queueing", Test_queueing.suite);
      ("allocation", Test_allocation.suite);
      ("dispatch", Test_dispatch.suite);
      ("core", Test_core_misc.suite);
      ("cluster", Test_cluster.suite);
      ("experiments", Test_experiments.suite);
      ("extensions", Test_extensions.suite);
      ("optimality", Test_optimality.suite);
      ("adaptive", Test_adaptive.suite);
      ("alloc-table", Test_alloc_table.suite);
      ("sita", Test_sita.suite);
      ("faults", Test_faults.suite);
      ("sanitize", Test_sanitize.suite);
      ("obs", Test_obs.suite);
      ("journal", Test_journal.suite);
      ("daemon", Test_daemon.suite);
      ("par", Test_par.suite);
      ("more", Test_more.suite);
      ("simcheck", Test_simcheck.suite);
      ("lint", Test_lint.suite);
    ]
