open Test_util
module Cluster = Statsched_cluster
module Core = Statsched_core
module Workload = Cluster.Workload
module Simulation = Cluster.Simulation
module Scheduler = Cluster.Scheduler
module Fault = Cluster.Fault
module Theory = Statsched_queueing.Theory
module Confidence = Statsched_stats.Confidence
module E = Statsched_experiments
module Runner = E.Runner

(* ------------------------------------------------------------------ *)
(* Plan construction and validation                                    *)

let plan_construction () =
  let p = Fault.exponential ~mtbf:1000.0 ~mttr:50.0 () in
  Alcotest.(check bool) "not none" false (Fault.is_none p);
  Alcotest.(check bool) "none is none" true (Fault.is_none Fault.none);
  Fault.validate ~n:4 p;
  let targeted = Fault.plan [ Fault.crashes ~computers:[ 3 ] ~mtbf:1.0 ~mttr:1.0 () ] in
  Fault.validate ~n:4 targeted;
  Alcotest.check_raises "out-of-range computer"
    (Invalid_argument "Fault.validate: computer 3 outside [0,3)") (fun () ->
      Fault.validate ~n:3 targeted);
  List.iter
    (fun p ->
      Alcotest.(check (option string))
        "policy name round-trips"
        (Some (Fault.on_failure_name p))
        (Option.map Fault.on_failure_name
           (Fault.on_failure_of_string (Fault.on_failure_name p))))
    [ Fault.Drop; Fault.Requeue; Fault.Resume ];
  Alcotest.(check bool) "unknown policy" true
    (Fault.on_failure_of_string "explode" = None);
  Alcotest.check_raises "degrade >= 1 rejected"
    (Invalid_argument "Fault.process: degrade outside [0,1)") (fun () ->
      ignore
        (Fault.process ~degrade:1.0
           ~uptime:(Statsched_dist.Exponential.of_mean 1.0)
           ~downtime:(Statsched_dist.Exponential.of_mean 1.0)
           ()))

(* ------------------------------------------------------------------ *)
(* Zero-fault plans must not perturb the simulator                     *)

let run_table3 ?faults ~scheduler () =
  let speeds = Core.Speeds.table3 in
  let workload = Workload.paper_default ~rho:0.7 ~speeds in
  let cfg =
    Simulation.default_config ?faults ~horizon:40_000.0 ~warmup:10_000.0
      ~speeds ~workload ~scheduler ()
  in
  Simulation.run cfg

let zero_fault_bit_identity () =
  List.iter
    (fun (name, scheduler) ->
      let base = run_table3 ~scheduler () in
      let with_empty_plan = run_table3 ~faults:Fault.none ~scheduler () in
      check_float ~eps:0.0
        (name ^ ": mean response time bit-identical")
        base.Simulation.metrics.Core.Metrics.mean_response_time
        with_empty_plan.Simulation.metrics.Core.Metrics.mean_response_time;
      check_float ~eps:0.0
        (name ^ ": fairness bit-identical")
        base.Simulation.metrics.Core.Metrics.fairness
        with_empty_plan.Simulation.metrics.Core.Metrics.fairness;
      Alcotest.(check int)
        (name ^ ": same event count")
        base.Simulation.events_executed with_empty_plan.Simulation.events_executed;
      Alcotest.(check int)
        (name ^ ": same arrivals")
        base.Simulation.total_arrivals with_empty_plan.Simulation.total_arrivals;
      check_array ~eps:0.0
        (name ^ ": dispatch fractions bit-identical")
        base.Simulation.dispatch_fractions
        with_empty_plan.Simulation.dispatch_fractions;
      Alcotest.(check bool)
        (name ^ ": per-computer stats identical")
        true
        (base.Simulation.per_computer = with_empty_plan.Simulation.per_computer);
      Alcotest.(check bool)
        (name ^ ": no fault summary")
        true
        (base.Simulation.fault_summary = None
        && with_empty_plan.Simulation.fault_summary = None);
      check_float ~eps:0.0 (name ^ ": availability is 1")
        1.0 base.Simulation.metrics.Core.Metrics.availability;
      Alcotest.(check int) (name ^ ": no lost jobs") 0
        base.Simulation.metrics.Core.Metrics.lost_jobs)
    [
      ("ORR", Scheduler.static Core.Policy.orr);
      ("LeastLoad", Scheduler.least_load_paper);
      ("AdaptiveORR", Scheduler.adaptive_orr ());
    ]

let faulty_run_is_deterministic () =
  let faults = Fault.exponential ~mtbf:2000.0 ~mttr:50.0 () in
  let a = run_table3 ~faults ~scheduler:(Scheduler.static Core.Policy.orr) () in
  let b = run_table3 ~faults ~scheduler:(Scheduler.static Core.Policy.orr) () in
  Alcotest.(check bool) "identical results under the same seed" true
    (a.Simulation.metrics = b.Simulation.metrics
    && a.Simulation.fault_summary = b.Simulation.fault_summary
    && a.Simulation.events_executed = b.Simulation.events_executed)

(* ------------------------------------------------------------------ *)
(* Deterministic availability accounting                               *)

let periodic_crash_accounting () =
  (* One computer, down 25 s out of every 125 s: failures at t = 100,
     225, ..., 975 -> 8 failures and exactly 200 s of lost capacity in
     the 1000 s window. *)
  let speeds = [| 1.0 |] in
  let workload = Workload.poisson_exponential ~rho:0.3 ~mean_size:1.0 ~speeds in
  let faults =
    Fault.plan ~on_failure:Fault.Resume
      [ Fault.periodic ~every:100.0 ~duration:25.0 () ]
  in
  let cfg =
    Simulation.default_config ~faults ~horizon:1000.0 ~warmup:0.0 ~speeds
      ~workload ~scheduler:(Scheduler.static Core.Policy.orr) ()
  in
  let r = Simulation.run cfg in
  match r.Simulation.fault_summary with
  | None -> Alcotest.fail "expected a fault summary"
  | Some s ->
    Alcotest.(check int) "failures" 8 s.Fault.failures;
    check_float ~eps:1e-9 "lost capacity" 200.0 s.Fault.downtime.(0);
    check_float ~eps:1e-12 "availability" 0.8 s.Fault.availability;
    Alcotest.(check int) "nothing lost under Resume" 0 s.Fault.lost_jobs;
    check_float ~eps:1e-12 "metrics agree with summary" 0.8
      r.Simulation.metrics.Core.Metrics.availability

let degrade_accounting () =
  (* Speed halved (degrade 0.5) for 100 s out of every 200 s: no
     up->down transition ever reaches rate 0, so no failures and no
     drained jobs, but half the capacity of the degraded windows is
     lost: 5 windows x 100 s x 0.5 = 250 s. *)
  let speeds = [| 1.0 |] in
  let workload = Workload.poisson_exponential ~rho:0.2 ~mean_size:1.0 ~speeds in
  let faults =
    Fault.plan ~on_failure:Fault.Drop
      [ Fault.periodic ~degrade:0.5 ~every:100.0 ~duration:100.0 () ]
  in
  let cfg =
    Simulation.default_config ~faults ~horizon:1000.0 ~warmup:0.0 ~speeds
      ~workload ~scheduler:(Scheduler.static Core.Policy.orr) ()
  in
  let r = Simulation.run cfg in
  match r.Simulation.fault_summary with
  | None -> Alcotest.fail "expected a fault summary"
  | Some s ->
    Alcotest.(check int) "a slowdown is not a failure" 0 s.Fault.failures;
    Alcotest.(check int) "no jobs lost" 0 s.Fault.lost_jobs;
    check_float ~eps:1e-9 "lost capacity" 250.0 s.Fault.downtime.(0);
    check_float ~eps:1e-12 "availability" 0.75 s.Fault.availability;
    Alcotest.(check bool) "jobs still complete" true
      (r.Simulation.metrics.Core.Metrics.jobs > 0)

let warmup_clipping () =
  (* A single outage entirely inside the warm-up period must not count
     against the measured window. *)
  let speeds = [| 1.0 |] in
  let workload = Workload.poisson_exponential ~rho:0.3 ~mean_size:1.0 ~speeds in
  let faults =
    Fault.plan ~on_failure:Fault.Resume
      [ Fault.periodic ~every:100.0 ~duration:50.0 ~computers:[ 0 ] () ]
  in
  (* down [100,150) then up again at 150; horizon 250 with warmup 200
     leaves a fault-free measured window... except the next outage at
     t=250 exactly touches the horizon. Use horizon 240. *)
  let cfg =
    Simulation.default_config ~faults ~horizon:240.0 ~warmup:200.0 ~speeds
      ~workload ~scheduler:(Scheduler.static Core.Policy.orr) ()
  in
  let r = Simulation.run cfg in
  match r.Simulation.fault_summary with
  | None -> Alcotest.fail "expected a fault summary"
  | Some s ->
    Alcotest.(check int) "failure still counted (whole run)" 1 s.Fault.failures;
    check_float ~eps:1e-9 "no lost capacity in window" 0.0 s.Fault.downtime.(0);
    check_float ~eps:1e-12 "availability 1 in window" 1.0 s.Fault.availability

(* ------------------------------------------------------------------ *)
(* In-flight-job policies                                              *)

let summary_of ~on_failure =
  let speeds = Core.Speeds.table3 in
  let workload = Workload.paper_default ~rho:0.7 ~speeds in
  let faults = Fault.exponential ~on_failure ~mtbf:2000.0 ~mttr:50.0 () in
  let cfg =
    Simulation.default_config ~faults ~horizon:40_000.0 ~warmup:10_000.0
      ~speeds ~workload ~scheduler:(Scheduler.static Core.Policy.orr) ()
  in
  let r = Simulation.run cfg in
  (r, Option.get r.Simulation.fault_summary)

let drop_loses_jobs () =
  let r, s = summary_of ~on_failure:Fault.Drop in
  Alcotest.(check bool) "failures occurred" true (s.Fault.failures > 0);
  Alcotest.(check bool) "jobs were lost" true (s.Fault.lost_jobs > 0);
  Alcotest.(check int) "metrics carry the count" s.Fault.lost_jobs
    r.Simulation.metrics.Core.Metrics.lost_jobs;
  Alcotest.(check bool) "availability below 1" true (s.Fault.availability < 1.0)

let requeue_and_resume_lose_nothing () =
  List.iter
    (fun on_failure ->
      let r, s = summary_of ~on_failure in
      Alcotest.(check bool) "failures occurred" true (s.Fault.failures > 0);
      Alcotest.(check int)
        (Fault.on_failure_name on_failure ^ " loses nothing")
        0 s.Fault.lost_jobs;
      Alcotest.(check bool) "still measures jobs" true
        (r.Simulation.metrics.Core.Metrics.jobs > 0))
    [ Fault.Requeue; Fault.Resume ]

(* ------------------------------------------------------------------ *)
(* Scheduler reactions                                                 *)

let dispatch_share_0 (r : Simulation.result) =
  let d = r.Simulation.dispatch_fractions in
  d.(0)

let blacklist_shifts_dispatch () =
  (* Two equal computers; computer 1 is down half the time.  With the
     blacklist reaction the static dispatcher re-runs Algorithm 1 on the
     survivors during outages, so computer 0's dispatch share rises well
     above 1/2; an oblivious scheduler keeps splitting evenly. *)
  let speeds = [| 1.0; 1.0 |] in
  let workload = Workload.poisson_exponential ~rho:0.5 ~mean_size:1.0 ~speeds in
  let run reaction =
    let faults =
      Fault.plan ~on_failure:Fault.Requeue ~reaction
        [ Fault.periodic ~computers:[ 1 ] ~every:500.0 ~duration:500.0 () ]
    in
    let cfg =
      Simulation.default_config ~faults ~horizon:20_000.0 ~warmup:1_000.0
        ~speeds ~workload ~scheduler:(Scheduler.static Core.Policy.orr) ()
    in
    Simulation.run cfg
  in
  let blacklisted = run Fault.Blacklist in
  let oblivious = run Fault.Oblivious in
  let share_b = dispatch_share_0 blacklisted in
  let share_o = dispatch_share_0 oblivious in
  Alcotest.(check bool)
    (Printf.sprintf "blacklist shifts load to the survivor (%.3f vs %.3f)"
       share_b share_o)
    true
    (share_b > 0.65 && share_b > share_o +. 0.1);
  Alcotest.(check bool) "oblivious keeps splitting evenly" true
    (abs_float (share_o -. 0.5) < 0.1)

let least_load_avoids_down_computer () =
  (* Computer 1 crashes at t=1000 and never recovers; Least-Load must
     never pick it afterwards, so every measured dispatch goes to 0. *)
  let speeds = [| 1.0; 1.0 |] in
  let workload = Workload.poisson_exponential ~rho:0.4 ~mean_size:1.0 ~speeds in
  let faults =
    Fault.plan ~on_failure:Fault.Requeue
      [ Fault.periodic ~computers:[ 1 ] ~every:1000.0 ~duration:1e9 () ]
  in
  let cfg =
    Simulation.default_config ~faults ~horizon:20_000.0 ~warmup:2_000.0
      ~speeds ~workload ~scheduler:Scheduler.least_load_paper ()
  in
  let r = Simulation.run cfg in
  Alcotest.(check int) "no measured dispatch to the dead computer" 0
    r.Simulation.per_computer.(1).Simulation.dispatched;
  Alcotest.(check bool) "survivor takes everything" true
    (r.Simulation.per_computer.(0).Simulation.dispatched > 0);
  Alcotest.(check int) "nothing lost under Requeue" 0
    (Option.get r.Simulation.fault_summary).Fault.lost_jobs

(* ------------------------------------------------------------------ *)
(* Analytic validation: M/M/1 with exponential breakdowns              *)

let mm1_breakdown_matches_theory () =
  (* Single FCFS computer, preempt-resume outages (Resume policy).
     Avi-Itzhak & Naor's Model A gives the exact mean response time;
     the simulated mean must agree within the replication CI (plus a
     small relative slack for the finite horizon). *)
  let speeds = [| 1.0 |] in
  let lambda = 0.5 and mean_size = 1.0 in
  let mtbf = 200.0 and mttr = 10.0 in
  let workload = Workload.poisson_exponential ~rho:0.5 ~mean_size ~speeds in
  let faults = Fault.exponential ~on_failure:Fault.Resume ~mtbf ~mttr () in
  let spec =
    Runner.make_spec ~discipline:Simulation.Fcfs ~faults ~speeds ~workload
      ~scheduler:(Scheduler.static Core.Policy.orr) ()
  in
  let scale = { E.Config.horizon = 400_000.0; warmup = 100_000.0; reps = 5 } in
  let point = Runner.measure ~scale spec in
  let theory =
    Theory.mm1_breakdown_response ~lambda ~mean_size ~speed:1.0 ~mtbf ~mttr
  in
  let ci = point.Runner.mean_response_time in
  let err = abs_float (ci.Confidence.mean -. theory) in
  let slack = ci.Confidence.half_width +. (0.05 *. theory) in
  Alcotest.(check bool)
    (Printf.sprintf "simulated %.4f vs analytic %.4f (err %.4f, slack %.4f)"
       ci.Confidence.mean theory err slack)
    true (err <= slack);
  Alcotest.(check bool) "availability near r/(r+f)" true
    (abs_float (point.Runner.availability -. (mtbf /. (mtbf +. mttr))) < 0.02)

let breakdown_theory_edge_cases () =
  (* Without failures the formula collapses to M/M/1. *)
  let plain =
    Theory.mm1_breakdown_response ~lambda:0.5 ~mean_size:1.0 ~speed:1.0
      ~mtbf:1e15 ~mttr:1e-3
  in
  check_close ~rel:1e-6 "mtbf -> infinity gives M/M/1" 2.0 plain;
  (* Saturated effective utilisation diverges. *)
  let saturated =
    Theory.mm1_breakdown_response ~lambda:0.9 ~mean_size:1.0 ~speed:1.0
      ~mtbf:10.0 ~mttr:10.0
  in
  Alcotest.(check bool) "rho_eff >= 1 diverges" true (saturated = infinity)

(* ------------------------------------------------------------------ *)
(* The sweep experiment plumbing                                       *)

let ext_faults_structure () =
  let tiny = { E.Config.horizon = 20_000.0; warmup = 5_000.0; reps = 2 } in
  let rows = E.Ext_faults.run ~scale:tiny ~mtbfs:[ 500.0; 50_000.0 ] () in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun (_, points) ->
      Alcotest.(check int) "five schedulers" 5 (List.length points);
      List.iter
        (fun (_, p) ->
          Alcotest.(check bool) "availability in (0,1]" true
            (p.Runner.availability > 0.0 && p.Runner.availability <= 1.0))
        points)
    rows;
  let avail mtbf =
    match List.assoc_opt mtbf rows with
    | Some ((_, p) :: _) -> p.Runner.availability
    | _ -> Alcotest.fail "missing row"
  in
  Alcotest.(check bool) "rarer failures -> higher availability" true
    (avail 50_000.0 > avail 500.0);
  let report = E.Ext_faults.to_report rows in
  Alcotest.(check bool) "report renders" true (String.length report > 200)

let suite =
  [
    test "fault: plan construction and validation" plan_construction;
    slow_test "fault: zero-fault plan is bit-identical" zero_fault_bit_identity;
    slow_test "fault: crashy run is deterministic" faulty_run_is_deterministic;
    test "fault: periodic crash accounting" periodic_crash_accounting;
    test "fault: degrade accounting" degrade_accounting;
    test "fault: warm-up clipping" warmup_clipping;
    slow_test "fault: drop loses jobs" drop_loses_jobs;
    slow_test "fault: requeue/resume lose nothing" requeue_and_resume_lose_nothing;
    slow_test "fault: blacklist shifts dispatch to survivors" blacklist_shifts_dispatch;
    slow_test "fault: least-load avoids a dead computer" least_load_avoids_down_computer;
    slow_test "fault: M/M/1 breakdown matches Avi-Itzhak-Naor" mm1_breakdown_matches_theory;
    test "fault: breakdown theory edge cases" breakdown_theory_edge_cases;
    slow_test "fault: ext-faults sweep structure" ext_faults_structure;
  ]
