(** First-come-first-served server.

    Not used by the paper's experiments (its machines time-share), but
    valuable as a contrast workload: under heavy-tailed sizes FCFS lets
    huge jobs block small ones, which magnifies the response-ratio metric
    and motivates the PS assumption.  Also the natural model for batch
    nodes in the examples. *)

type t

val create :
  engine:Statsched_des.Engine.t ->
  speed:float ->
  on_departure:(Job.t -> unit) ->
  unit ->
  t
(** @raise Invalid_argument if [speed <= 0]. *)

val submit : t -> Job.t -> unit
val in_system : t -> int
val mean_in_system : t -> float
val utilization : t -> float
val completed : t -> int
val work_done : t -> float
val reset_stats : t -> unit

val set_rate : t -> float -> unit
(** Fault hook: scale the service rate by the given factor from now on
    ([0] suspends the server; the in-service job keeps its progress).
    See {!Server_intf.t.set_rate}.

    @raise Invalid_argument if the rate is negative. *)

val drain : t -> Job.t list
(** Fault hook: remove all jobs without completing them (partial service
    of the in-service job is discarded).  See {!Server_intf.t.drain}. *)

val to_server : t -> Server_intf.t
