(** Online mean and variance (Welford's algorithm).

    Numerically stable single-pass accumulation; this is how every
    simulation metric (response time, response ratio, …) is collected
    without storing per-job observations. *)

type t
(** Mutable accumulator. *)

val create : unit -> t

val copy : t -> t

val reset : t -> unit

val add : t -> float -> unit
(** Accumulate one observation. *)

val merge : t -> t -> t
(** [merge a b] is a fresh accumulator equivalent to having observed both
    streams (Chan et al. parallel update). *)

val count : t -> int

val mean : t -> float
(** Mean of observations; [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance (n−1 denominator); [nan] when [count < 2]. *)

val population_variance : t -> float
(** Biased variance (n denominator); [nan] when empty.  The paper's
    "fairness" metric is the population standard deviation of the response
    ratio over all jobs. *)

val std : t -> float
(** [sqrt (variance t)]. *)

val population_std : t -> float
(** [sqrt (population_variance t)]. *)

val min_value : t -> float
val max_value : t -> float
