module Rng = Statsched_prng.Rng

(* [thresh.(i)] is [prob.(i)] lifted to the integer lattice of
   {!Rng.bits53}: column [i] wins its coin flip iff
   [bits53 < thresh.(i)].  Since [float g = bits53 g / 2^53] exactly
   and scaling a float by 2^53 only shifts its exponent,
   [bits53 < ceil (prob *. 2^53)] decides {e exactly} the same way as
   [Rng.float g < prob] on the same draw — but compares immediates, so
   a draw stays allocation-free (a boxed float return is 2 minor words,
   which the zero-alloc dispatch paths cannot afford). *)
type t = { thresh : int array; alias : int array }

let two_pow_53 = 9007199254740992.0

let create weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Walker_alias.create: empty weight vector";
  let total = Array.fold_left ( +. ) 0.0 weights in
  if not (total > 0.0) then
    invalid_arg "Walker_alias.create: weights must sum to a positive value";
  Array.iter
    (fun w ->
      if not (w >= 0.0) then
        invalid_arg "Walker_alias.create: negative or NaN weight")
    weights;
  let prob = Array.make n 1.0 in
  let alias = Array.make n 0 in
  let scaled = Array.map (fun w -> w *. float_of_int n /. total) weights in
  let small = ref [] and large = ref [] in
  Array.iteri
    (fun i p -> if p < 1.0 then small := i :: !small else large := i :: !large)
    scaled;
  let rec pair () =
    match (!small, !large) with
    | s :: srest, l :: lrest ->
      prob.(s) <- scaled.(s);
      alias.(s) <- l;
      scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.0;
      small := srest;
      if scaled.(l) < 1.0 then begin
        large := lrest;
        small := l :: !small
      end;
      pair ()
    | s :: rest, [] ->
      prob.(s) <- 1.0;
      small := rest;
      pair ()
    | [], l :: rest ->
      prob.(l) <- 1.0;
      large := rest;
      pair ()
    | [], [] -> ()
  in
  pair ();
  let thresh =
    Array.map (fun p -> int_of_float (Float.ceil (p *. two_pow_53))) prob
  in
  { thresh; alias }

let length t = Array.length t.thresh

(* Draw order is part of the contract (see .mli): one [Rng.int], then
   one 53-bit draw (the stream position [Rng.float] would use),
   whatever the outcome. *)
let[@inline] [@schedsim.hot] draw t rng =
  let n = Array.length t.thresh in
  let i = Rng.int rng n in
  if Rng.bits53 rng < Array.unsafe_get t.thresh i then i
  else Array.unsafe_get t.alias i
