module Cluster = Statsched_cluster
module Core = Statsched_core

let default_mtbfs = [ 250.0; 1000.0; 4000.0; 16000.0; 64000.0 ]

let default_mttr = 50.0

type t = (float * (string * Runner.point) list) list

let run ?(scale = Config.default_scale) ?seed ?jobs ?(speeds = Core.Speeds.table3)
    ?(mtbfs = default_mtbfs) ?(mttr = default_mttr)
    ?(on_failure = Cluster.Fault.Requeue) () =
  let workload =
    Cluster.Workload.paper_default ~rho:Config.base_utilization ~speeds
  in
  List.map
    (fun mtbf ->
      let faults = Cluster.Fault.exponential ~on_failure ~mtbf ~mttr () in
      ( mtbf,
        Sweep.over_schedulers ?seed ?jobs ~faults ~scale
          ~schedulers:Schedulers.with_least_load ~speeds ~workload () ))
    mtbfs

let availability_table t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "Cluster availability and lost jobs per replication (averaged):\n";
  List.iter
    (fun (mtbf, points) ->
      match points with
      | [] -> ()
      | (_, p) :: _ ->
        (* The fault plan — hence availability — is scheduler-independent;
           the first column is representative. *)
        Buffer.add_string buf
          (Printf.sprintf "  MTBF %8g s: availability %.4f, lost %.1f\n" mtbf
             p.Runner.availability p.Runner.lost_jobs_per_rep))
    t;
  Buffer.contents buf

let to_report t =
  Report.render_sweep
    (Sweep.sweep_of_rows
       ~title:"Extension: fault injection (Table 3, rho=0.7, exponential crashes)"
       ~xlabel:"MTBF per computer (s)" ~metric:`Time t)
  ^ "\n" ^ availability_table t
