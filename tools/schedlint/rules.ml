(* Per-unit rules over the typedtree: R1-R6 (ported from the original
   syntactic pass, now with resolved paths so module-alias laundering
   like [module R = Random] is caught) and R9 (typed float-compare).

   Interprocedural rules R7/R8 live in Rules_flow; stale-marker
   detection R10 in Driver (it needs every other rule's marker usage
   first). *)

open Typedtree

type ctx = {
  program : Callgraph.t;
  unit : Callgraph.unit_ctx;
  report : Diag.t -> unit;  (* marker filtering happens in the driver *)
}

let src ctx = ctx.unit.Callgraph.info.Loader.src

let pos_of (loc : Location.t) =
  (loc.loc_start.Lexing.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)

let diag ctx loc rule msg =
  let line, col = pos_of loc in
  ctx.report { Diag.file = src ctx; line; col; rule; msg }

let canon_of ctx p =
  Canon.strip_stdlib
    (Canon.path ~aliases:ctx.unit.Callgraph.aliases
       ~unit_name:ctx.unit.Callgraph.info.Loader.unit_name p)

(* ------------------------------------------------------------------ *)
(* Matching tables *)

let r2_banned = [ "Unix.time"; "Unix.gettimeofday"; "Sys.time" ]
let r4_banned = [ "List.hd"; "List.tl"; "Option.get"; "Obj.magic" ]

(* R5: constructors of top-level mutable state in lib/. *)
let r5_banned =
  [
    ("ref", "ref");
    ("Hashtbl.create", "Hashtbl");
    ("Array.make", "Array.make");
    ("Bytes.create", "Bytes");
    ("Buffer.create", "Buffer");
    ("Atomic.make", "Atomic");
  ]

(* R9: polymorphic operations whose first argument's type decides
   whether floats are reached. *)
let r9_ops =
  [
    "="; "<>"; "compare"; "Hashtbl.hash"; "List.mem"; "List.assoc";
    "List.assoc_opt"; "List.mem_assoc"; "List.remove_assoc"; "Array.mem";
    "List.sort_uniq";
  ]

(* ------------------------------------------------------------------ *)

let check_ident ctx (e : expression) p =
  let c = canon_of ctx p in
  let file = src ctx in
  if Canon.starts_with ~prefix:"Random." c && not (Source.in_prng file) then
    diag ctx e.exp_loc "R1"
      "Stdlib.Random is non-deterministic here; draw from Statsched_prng.Rng";
  if List.mem c r2_banned then
    diag ctx e.exp_loc "R2"
      (c ^ " reads the wall clock; simulated time comes from Engine.now");
  if String.equal c "Domain.spawn" && not (Source.in_par file) then
    diag ctx e.exp_loc "R6"
      "Domain.spawn outside lib/par; fan out through Statsched_par.Par.map";
  if List.mem c r4_banned && Source.in_lib file then
    diag ctx e.exp_loc "R4"
      (c ^ " is partial; match explicitly or keep the invariant in the type");
  (match c with
  | "==" | "!=" ->
    diag ctx e.exp_loc "R3"
      ("physical equality (" ^ c ^ ") outside physical-identity idioms")
  | _ -> ());
  if List.mem c r9_ops then begin
    match Typeexam.first_arg e.exp_type with
    | None -> ()
    | Some arg ->
      let canon p = canon_of ctx p in
      if Typeexam.is_unresolved arg then ()
      else if Typeexam.is_float ~canon arg then begin
        match c with
        | "=" | "<>" ->
          diag ctx e.exp_loc "R3"
            ("polymorphic " ^ c
           ^ " on a float; compare with a tolerance or Float.equal")
        | _ ->
          diag ctx e.exp_loc "R9"
            ("polymorphic " ^ c ^ " at type float; use Float.compare / \
              Float.equal or a float-aware structure")
      end
      else if
        Typeexam.contains_float
          ~find_decl:(Callgraph.find_decl ctx.program)
          ~canon arg
      then
        diag ctx e.exp_loc "R9"
          ("polymorphic " ^ c ^ " at a type containing floats ("
          ^ Typeexam.to_string arg
          ^ "); compare the float components with Float.compare/Float.equal")
  end

(* R5: top-level mutable state in lib/. *)
let check_structure_item ctx (si : structure_item) =
  match si.str_desc with
  | Tstr_value (_, vbs) when Source.in_lib (src ctx) ->
    List.iter
      (fun (vb : value_binding) ->
        match vb.vb_expr.exp_desc with
        | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) -> (
          match List.assoc_opt (canon_of ctx p) r5_banned with
          | Some what ->
            diag ctx vb.vb_loc "R5"
              ("top-level mutable state (" ^ what
             ^ ") in lib/; thread state through a record")
          | None -> ())
        | _ -> ())
      vbs
  | _ -> ()

let run ctx =
  let expr sub (e : expression) =
    (match e.exp_desc with
    | Texp_ident (p, _, _) -> check_ident ctx e p
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let structure_item sub si =
    check_structure_item ctx si;
    Tast_iterator.default_iterator.structure_item sub si
  in
  let iterator =
    { Tast_iterator.default_iterator with expr; structure_item }
  in
  iterator.structure iterator ctx.unit.Callgraph.info.Loader.structure
