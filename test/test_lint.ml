(* Golden-diagnostic unit tests for the schedlint analysis engine.

   Each case writes a small fixture tree under a temp directory, runs
   the Driver end to end (on-the-fly typechecking: the fixtures have no
   .cmt files) and compares the full rendered diagnostic list against a
   golden expectation.  Cram (test/lint.t) covers the CLI surface; these
   tests pin the analysis semantics at the API level, including the
   regressions named in the rule-engine rewrite. *)

module L = Schedlint_core

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* Build a one-file fixture tree rooted at a fresh temp dir; [rel] is
   the path under the root ("lib/foo.ml") that decides rule scoping. *)
let with_fixture rel contents f =
  let root = Filename.temp_file "schedlint_test" "" in
  Sys.remove root;
  Sys.mkdir root 0o755;
  let dir = Filename.concat root (Filename.dirname rel) in
  let rec mkdir_p d =
    if not (Sys.file_exists d) then begin
      mkdir_p (Filename.dirname d);
      Sys.mkdir d 0o755
    end
  in
  mkdir_p dir;
  write_file (Filename.concat root rel) contents;
  let cwd = Sys.getcwd () in
  Sys.chdir root;
  Fun.protect
    ~finally:(fun () ->
      Sys.chdir cwd;
      Sys.remove (Filename.concat root rel);
      (* remove the directories we created, deepest first *)
      let rec rmdirs d =
        if String.length d > String.length root then begin
          (try Sys.rmdir d with Sys_error _ -> ());
          rmdirs (Filename.dirname d)
        end
      in
      rmdirs dir;
      try Sys.rmdir root with Sys_error _ -> ())
    (fun () -> f rel)

let render (d : L.Diag.t) =
  Printf.sprintf "%d:%d %s %s" d.line d.col d.rule d.msg

let run_fixture rel contents =
  with_fixture rel contents (fun rel ->
      let run = L.Driver.analyze ~build_dir:"." [ rel ] in
      Alcotest.(check int) "no load errors" 0 run.L.Driver.load_errors;
      List.map render (L.Diag.sort run.L.Driver.diags))

let check_diags name expected actual =
  Alcotest.(check (list string)) name expected actual

(* ------------------------------------------------------------------ *)

let test_marker_merge () =
  (* Regression: two markers on one line used to collide in the
     line-indexed table, dropping all but the last marker's rules. *)
  let diags =
    run_fixture "lib/mm.ml"
      "let r = ref (1.0 = 2.0) (* schedlint: allow R5 *) (* schedlint: \
       allow R3 *)\n"
  in
  check_diags "merged markers suppress both rules" [] diags;
  (* and the merged list is order-preserving: R3 wins for the first
     marker even though R5 was scanned later *)
  let diags =
    run_fixture "lib/mm2.ml"
      "let both = (1.0 = 2.0) (* schedlint: allow R5 *) (* schedlint: allow \
       R2 *) && true\n"
  in
  check_diags "unrelated merged markers stay stale"
    [
      "1:0 R10 stale marker: `schedlint: allow R5` suppresses nothing; \
       delete it";
      "1:0 R10 stale marker: `schedlint: allow R2` suppresses nothing; \
       delete it";
      "1:16 R3 polymorphic = on a float; compare with a tolerance or \
       Float.equal";
    ]
    diags

let test_r5_extended () =
  let diags =
    run_fixture "lib/state.ml"
      "let a = Array.make 4 0\n\
       let b = Bytes.create 8\n\
       let c = Buffer.create 16\n\
       let d = Atomic.make 0\n\
       let ok () = Array.make 4 0\n"
  in
  check_diags "extended R5 constructors"
    [
      "1:0 R5 top-level mutable state (Array.make) in lib/; thread state \
       through a record";
      "2:0 R5 top-level mutable state (Bytes) in lib/; thread state through \
       a record";
      "3:0 R5 top-level mutable state (Buffer) in lib/; thread state \
       through a record";
      "4:0 R5 top-level mutable state (Atomic) in lib/; thread state \
       through a record";
    ]
    diags

let test_r7_taint_chain () =
  (* Chain three calls deep from the sink; every function on the chain
     is reported, shortest path first. *)
  let diags =
    run_fixture "lib/chain.ml"
      "let draw () = Random.int 9 (* schedlint: allow R1 *)\n\
       let mid () = draw () + 1\n\
       let top () = mid () * 2\n"
  in
  check_diags "taint chain three deep"
    [
      "1:0 R7 Chain.draw reaches Stdlib.Random via Chain.draw -> Random.int; \
       deterministic replay breaks (route through lib/prng, lib/par or \
       Obs.Clock)";
      "2:0 R7 Chain.mid reaches Stdlib.Random via Chain.mid -> Chain.draw -> \
       Random.int; deterministic replay breaks (route through lib/prng, \
       lib/par or Obs.Clock)";
      "3:0 R7 Chain.top reaches Stdlib.Random via Chain.top -> Chain.mid -> \
       Chain.draw -> Random.int; deterministic replay breaks (route through \
       lib/prng, lib/par or Obs.Clock)";
    ]
    diags

let test_r7_sanctioned () =
  (* `allow R7` at the sink clears the whole chain; lib/prng never
     carries taint at all. *)
  check_diags "allow R7 clears the chain" []
    (run_fixture "lib/ok.ml"
       "let draw () = Random.int 9 (* schedlint: allow R1 R7 *)\n\
        let top () = draw () + 1\n");
  check_diags "lib/prng is exempt" []
    (run_fixture "lib/prng/gen.ml" "let draw () = Random.int 9\n")

let test_r8_hidden_helper () =
  (* The allocation sits in an [@inline] helper: the hot function's own
     body is clean, only the interprocedural walk can see it. *)
  let diags =
    run_fixture "lib/hot.ml"
      "let[@inline] build x = Some x\n\
       let[@schedsim.hot] fetch x = match build x with Some v -> v | None \
       -> x\n"
  in
  check_diags "allocation behind inlined helper"
    [
      "1:23 R8 constructor Some allocation on hot path Hot.fetch -> \
       Hot.build; [@schedsim.hot] code must not allocate";
    ]
    diags

let test_r8_cold_stops () =
  check_diags "cold attribute stops traversal" []
    (run_fixture "lib/cold.ml"
       "let[@schedsim.cold] grow n = Array.make n 0\n\
        let[@schedsim.hot] hot n = if n > 3 then ignore (grow n)\n");
  (* ...but a direct allocation next to the cold call still counts *)
  let diags =
    run_fixture "lib/cold2.ml"
      "let[@schedsim.cold] grow n = Array.make n 0\n\
       let[@schedsim.hot] hot n = ignore (grow n); (n, n)\n"
  in
  check_diags "direct tuple next to cold call"
    [
      "2:44 R8 tuple allocation on hot path Cold2.hot; [@schedsim.hot] code \
       must not allocate";
    ]
    diags

let test_r8_nonescaping_ref () =
  check_diags "non-escaping ref is unboxed, not an allocation" []
    (run_fixture "lib/refok.ml"
       "let[@schedsim.hot] sum n =\n\
        \  let acc = ref 0 in\n\
        \  for i = 0 to n do acc := !acc + i done;\n\
        \  !acc\n");
  let diags =
    run_fixture "lib/refbad.ml"
      "let use r = !r\n\
       let[@schedsim.hot] leak n =\n\
       \  let acc = ref n in\n\
       \  use acc\n"
  in
  check_diags "escaping ref allocates"
    [
      "3:12 R8 call to allocating ref on hot path Refbad.leak; \
       [@schedsim.hot] code must not allocate";
    ]
    diags

let test_r9_record () =
  let diags =
    run_fixture "lib/pt.ml"
      "type point = { x : float; y : float }\n\
       type wrap = W of point | Z\n\
       let eq (a : wrap) b = a = b\n\
       let ok (a : int * string) b = a = b\n"
  in
  check_diags "float inside variant-of-record"
    [
      "3:24 R9 polymorphic = at a type containing floats (wrap); compare \
       the float components with Float.compare/Float.equal";
    ]
    diags

let test_r10_stale () =
  let diags =
    run_fixture "lib/stale.ml"
      "(* schedlint: allow R4 *)\nlet fine = 42\n"
  in
  check_diags "stale marker reported"
    [
      "1:0 R10 stale marker: `schedlint: allow R4` suppresses nothing; \
       delete it";
    ]
    diags;
  (* marker text inside a string literal is not a marker *)
  check_diags "quoted marker ignored" []
    (run_fixture "lib/quoted.ml"
       "let doc = \"use (* schedlint: allow R4 *) to suppress\"\n")

let test_alias_laundering () =
  let diags =
    run_fixture "bin/alias.ml"
      "module R = Random\nlet roll () = R.int 6\n"
  in
  check_diags "module alias does not launder Random"
    [
      "2:14 R1 Stdlib.Random is non-deterministic here; draw from \
       Statsched_prng.Rng";
    ]
    diags

let test_baseline_roundtrip () =
  let diags =
    [
      { L.Diag.file = "lib/a.ml"; line = 3; col = 1; rule = "R3"; msg = "m1" };
      { L.Diag.file = "lib/a.ml"; line = 9; col = 0; rule = "R3"; msg = "m1" };
      { L.Diag.file = "lib/b.ml"; line = 1; col = 0; rule = "R5"; msg = "m2" };
    ]
  in
  let path = Filename.temp_file "schedlint" ".baseline" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      L.Baseline.write path diags;
      let entries = L.Baseline.load path in
      Alcotest.(check int) "entries" 3 (List.length entries);
      (* same diags: all absorbed *)
      let r = L.Baseline.apply entries diags in
      Alcotest.(check int) "all absorbed" 3 r.L.Baseline.absorbed;
      Alcotest.(check int) "none fresh" 0 (List.length r.L.Baseline.fresh);
      Alcotest.(check int) "none unused" 0 (List.length r.L.Baseline.unused);
      (* count-based: a third copy of the duplicated diagnostic is fresh *)
      let extra =
        { L.Diag.file = "lib/a.ml"; line = 12; col = 0; rule = "R3"; msg = "m1" }
      in
      let r = L.Baseline.apply entries (extra :: diags) in
      Alcotest.(check int) "extra copy is fresh" 1
        (List.length r.L.Baseline.fresh);
      (* removing a diagnostic leaves its entry unused *)
      let r = L.Baseline.apply entries (List.tl diags) in
      Alcotest.(check int) "dropped diag leaves unused entry" 1
        (List.length r.L.Baseline.unused))

let suite =
  [
    Alcotest.test_case "marker merge regression" `Quick test_marker_merge;
    Alcotest.test_case "R5 extended constructors" `Quick test_r5_extended;
    Alcotest.test_case "R7 taint chain 3-deep" `Quick test_r7_taint_chain;
    Alcotest.test_case "R7 sanctioned sinks" `Quick test_r7_sanctioned;
    Alcotest.test_case "R8 alloc behind helper" `Quick test_r8_hidden_helper;
    Alcotest.test_case "R8 cold stops traversal" `Quick test_r8_cold_stops;
    Alcotest.test_case "R8 ref escape analysis" `Quick test_r8_nonescaping_ref;
    Alcotest.test_case "R9 float-bearing types" `Quick test_r9_record;
    Alcotest.test_case "R10 stale markers" `Quick test_r10_stale;
    Alcotest.test_case "alias laundering" `Quick test_alias_laundering;
    Alcotest.test_case "baseline roundtrip" `Quick test_baseline_roundtrip;
  ]
