open Test_util
module Core = Statsched_core
module Dispatch = Core.Dispatch
module Rng = Statsched_prng.Rng

let counts dispatcher n_computers n_arrivals =
  let c = Array.make n_computers 0 in
  for _ = 1 to n_arrivals do
    let i = Dispatch.select dispatcher in
    c.(i) <- c.(i) + 1
  done;
  c

(* Maximum over all prefixes of |count_i - t * alpha_i|. *)
let max_prefix_discrepancy dispatcher alpha n_arrivals =
  let n = Array.length alpha in
  let c = Array.make n 0 in
  let worst = ref 0.0 in
  for t = 1 to n_arrivals do
    let i = Dispatch.select dispatcher in
    c.(i) <- c.(i) + 1;
    for j = 0 to n - 1 do
      let d = abs_float (float_of_int c.(j) -. (float_of_int t *. alpha.(j))) in
      if d > !worst then worst := d
    done
  done;
  !worst

let paper_example_fractions = [| 0.125; 0.125; 0.25; 0.5 |]

let rr_paper_example_counts () =
  (* Over each full cycle of 8 arrivals the counts must be exactly
     proportional: 1,1,2,4. *)
  let d = Dispatch.round_robin paper_example_fractions in
  for cycle = 1 to 10 do
    let c = counts d 4 8 in
    Alcotest.(check (array int))
      (Printf.sprintf "cycle %d exact" cycle)
      [| 1; 1; 2; 4 |] c
  done

let rr_first_selection_largest_fraction () =
  let d = Dispatch.round_robin paper_example_fractions in
  Alcotest.(check int) "largest fraction first" 3 (Dispatch.select d)

let rr_paper_example_trace () =
  (* Regression: the exact decision sequence of Algorithm 2 on the
     Section 3.2 example (1/8, 1/8, 1/4, 1/2).  The per-cycle counts match
     the ideal split; the order is pinned here to catch silent changes. *)
  let d = Dispatch.round_robin paper_example_fractions in
  let seq = List.init 8 (fun _ -> Dispatch.select d) in
  Alcotest.(check (list int)) "first cycle" [ 3; 2; 3; 3; 0; 2; 3; 1 ] seq

let rr_uniform_degenerates_to_cycle () =
  (* With equal fractions Algorithm 2 is the traditional round-robin:
     every computer exactly once per cycle. *)
  let n = 5 in
  let d = Dispatch.round_robin (Array.make n (1.0 /. float_of_int n)) in
  for cycle = 1 to 20 do
    let seen = counts d n n in
    Alcotest.(check (array int))
      (Printf.sprintf "cycle %d covers all" cycle)
      (Array.make n 1) seen
  done

let rr_two_computers () =
  let d = Dispatch.round_robin [| 0.5; 0.5 |] in
  let seq = List.init 6 (fun _ -> Dispatch.select d) in
  (* strict alternation after the first pick *)
  (match seq with
  | a :: b :: c :: d' :: e :: f :: _ ->
    Alcotest.(check bool) "alternates" true
      (a <> b && b <> c && c <> d' && d' <> e && e <> f)
  | _ -> Alcotest.fail "short sequence");
  ()

let rr_long_run_fractions () =
  let alpha = [| 0.35; 0.22; 0.15; 0.12; 0.04; 0.04; 0.04; 0.04 |] in
  let d = Dispatch.round_robin alpha in
  let n = 100_000 in
  let c = counts d 8 n in
  Array.iteri
    (fun i count ->
      check_close ~rel:0.01
        (Printf.sprintf "computer %d long-run share" i)
        alpha.(i)
        (float_of_int count /. float_of_int n))
    c

let rr_bounded_discrepancy () =
  let alpha = paper_example_fractions in
  let d = Dispatch.round_robin alpha in
  let worst = max_prefix_discrepancy d alpha 10_000 in
  Alcotest.(check bool)
    (Printf.sprintf "max prefix discrepancy %.2f small" worst)
    true (worst <= 2.0)

let rr_zero_fraction_never_selected () =
  let d = Dispatch.round_robin [| 0.0; 0.5; 0.0; 0.5 |] in
  for _ = 1 to 1000 do
    let i = Dispatch.select d in
    Alcotest.(check bool) "only live computers" true (i = 1 || i = 3)
  done

let rr_reset () =
  let d = Dispatch.round_robin paper_example_fractions in
  let first_run = List.init 8 (fun _ -> Dispatch.select d) in
  Dispatch.reset d;
  let second_run = List.init 8 (fun _ -> Dispatch.select d) in
  Alcotest.(check (list int)) "reset replays" first_run second_run

let rr_single_computer () =
  let d = Dispatch.round_robin [| 1.0 |] in
  for _ = 1 to 100 do
    Alcotest.(check int) "only choice" 0 (Dispatch.select d)
  done

let rr_guard_staggers_small_fractions () =
  (* The guard spreads the first jobs of the four 0.04-fraction computers
     across the cycle; without it they bunch up early.  Measure the spread
     of first-selection times for computers 4..7. *)
  let alpha = [| 0.35; 0.22; 0.15; 0.12; 0.04; 0.04; 0.04; 0.04 |] in
  let first_times guard_d =
    let first = Array.make 8 (-1) in
    for t = 0 to 199 do
      let i = Dispatch.select guard_d in
      if first.(i) < 0 then first.(i) <- t
    done;
    first
  in
  let with_guard = first_times (Dispatch.round_robin alpha) in
  let without = first_times (Dispatch.round_robin_no_guard alpha) in
  let spread f =
    let small = Array.sub f 4 4 in
    Array.sort compare small;
    small.(3) - small.(0)
  in
  Alcotest.(check bool)
    (Printf.sprintf "guard spread %d > no-guard spread %d" (spread with_guard)
       (spread without))
    true
    (spread with_guard > spread without)

let rr_variants_same_longrun () =
  (* All Algorithm 2 variants realise the same long-run fractions. *)
  let alpha = [| 0.4; 0.3; 0.2; 0.1 |] in
  let n = 50_000 in
  List.iter
    (fun make ->
      let d = make alpha in
      let c = counts d 4 n in
      Array.iteri
        (fun i count ->
          check_close ~rel:0.02
            (Printf.sprintf "%s computer %d" (Dispatch.name d) i)
            alpha.(i)
            (float_of_int count /. float_of_int n))
        c)
    [ Dispatch.round_robin; Dispatch.round_robin_no_guard;
      Dispatch.round_robin_index_ties; Dispatch.smooth_weighted ]

(* Dyadic fraction vectors (every entry a power of two) by repeatedly
   halving a random entry: the regime where the lazy dispatcher's
   reassociated arithmetic is exact. *)
let dyadic_fractions_gen =
  QCheck2.Gen.(
    let* n = int_range 2 12 in
    let* picks = list_repeat (n - 1) (int_bound 1000) in
    let parts = ref [ 1.0 ] in
    List.iter
      (fun k ->
        let arr = Array.of_list !parts in
        let i = k mod Array.length arr in
        let half = arr.(i) /. 2.0 in
        arr.(i) <- half;
        parts := half :: Array.to_list arr)
      picks;
    return (Array.of_list !parts))

let rr_lazy_matches_eager_dyadic () =
  (* With power-of-two fractions every quantity in Algorithm 2 is a
     dyadic rational, so the lazy offset form computes the exact same
     reals and must be decision-for-decision identical to the eager
     O(n) version — including the guard-row tie cases. *)
  let cases =
    [ paper_example_fractions;
      [| 0.5; 0.5 |];
      [| 0.25; 0.25; 0.25; 0.25 |];
      [| 0.5; 0.25; 0.125; 0.0625; 0.0625 |];
      Array.make 8 0.125 ]
  in
  List.iter
    (fun alpha ->
      let eager = Dispatch.round_robin alpha in
      let lazy_d = Dispatch.round_robin_lazy alpha in
      for t = 1 to 10_000 do
        let e = Dispatch.select eager and l = Dispatch.select lazy_d in
        if e <> l then
          Alcotest.fail
            (Printf.sprintf "decision %d diverges: eager %d, lazy %d" t e l)
      done)
    cases

let prop_rr_lazy_dyadic_exact =
  qcheck ~count:100 "lazy ORR bit-identical to eager on dyadic fractions"
    dyadic_fractions_gen
    (fun alpha ->
      let eager = Dispatch.round_robin alpha in
      let lazy_d = Dispatch.round_robin_lazy alpha in
      let same = ref true in
      for _ = 1 to 2000 do
        if Dispatch.select eager <> Dispatch.select lazy_d then same := false
      done;
      !same)

let rr_lazy_longrun_and_discrepancy () =
  (* On arbitrary fractions the lazy form is its own dispatcher (rounding
     can reorder guard-row ties) but must keep Algorithm 2's guarantees:
     long-run shares and O(1) prefix discrepancy. *)
  let alpha = [| 0.35; 0.22; 0.15; 0.12; 0.04; 0.04; 0.04; 0.04 |] in
  let d = Dispatch.round_robin_lazy alpha in
  let n = 100_000 in
  let c = counts d 8 n in
  Array.iteri
    (fun i count ->
      check_close ~rel:0.01
        (Printf.sprintf "lazy computer %d long-run share" i)
        alpha.(i)
        (float_of_int count /. float_of_int n))
    c;
  let worst =
    max_prefix_discrepancy (Dispatch.round_robin_lazy alpha) alpha 20_000
  in
  Alcotest.(check bool)
    (Printf.sprintf "lazy max prefix discrepancy %.2f small" worst)
    true (worst <= 2.0)

let rr_lazy_reset_and_zero_fractions () =
  let d = Dispatch.round_robin_lazy [| 0.0; 0.5; 0.0; 0.25; 0.25 |] in
  let first_run = List.init 16 (fun _ -> Dispatch.select d) in
  List.iter
    (fun i ->
      Alcotest.(check bool) "only live computers" true (i = 1 || i = 3 || i = 4))
    first_run;
  Dispatch.reset d;
  let second_run = List.init 16 (fun _ -> Dispatch.select d) in
  Alcotest.(check (list int)) "reset replays" first_run second_run

let random_longrun_fractions () =
  let alpha = [| 0.5; 0.3; 0.2 |] in
  let d = Dispatch.random ~rng:(rng ()) alpha in
  let n = 100_000 in
  let c = counts d 3 n in
  Array.iteri
    (fun i count ->
      check_close ~rel:0.03
        (Printf.sprintf "random share %d" i)
        alpha.(i)
        (float_of_int count /. float_of_int n))
    c

let random_zero_fraction_never_selected () =
  let d = Dispatch.random ~rng:(rng ()) [| 0.0; 1.0; 0.0 |] in
  for _ = 1 to 1000 do
    Alcotest.(check int) "always live computer" 1 (Dispatch.select d)
  done

let rr_smoother_than_random () =
  (* The Figure 2 claim as a unit test: round-robin's prefix discrepancy is
     far below random's for the same fractions. *)
  let alpha = [| 0.35; 0.22; 0.15; 0.12; 0.04; 0.04; 0.04; 0.04 |] in
  let n = 20_000 in
  let rr = max_prefix_discrepancy (Dispatch.round_robin alpha) alpha n in
  let rand = max_prefix_discrepancy (Dispatch.random ~rng:(rng ()) alpha) alpha n in
  Alcotest.(check bool)
    (Printf.sprintf "rr %.1f << random %.1f" rr rand)
    true
    (rr < rand /. 5.0)

let smooth_wrr_exact_cycles () =
  let d = Dispatch.smooth_weighted [| 0.5; 0.25; 0.25 |] in
  let c = counts d 3 4 in
  Alcotest.(check (array int)) "one smooth cycle" [| 2; 1; 1 |] c

let strict_cycle_order () =
  let d = Dispatch.strict_cycle 3 in
  let seq = List.init 7 (fun _ -> Dispatch.select d) in
  Alcotest.(check (list int)) "cycling" [ 0; 1; 2; 0; 1; 2; 0 ] seq;
  Dispatch.reset d;
  Alcotest.(check int) "reset to start" 0 (Dispatch.select d)

let validation_errors () =
  Alcotest.check_raises "sum != 1" (Invalid_argument "Dispatch: fractions must sum to 1")
    (fun () -> ignore (Dispatch.round_robin [| 0.5; 0.4 |]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Dispatch: fractions must be non-negative and finite") (fun () ->
      ignore (Dispatch.round_robin [| 1.5; -0.5 |]));
  Alcotest.check_raises "empty" (Invalid_argument "Dispatch: empty fractions") (fun () ->
      ignore (Dispatch.random ~rng:(rng ()) [||]));
  Alcotest.check_raises "strict cycle n=0"
    (Invalid_argument "Dispatch.strict_cycle: n <= 0") (fun () ->
      ignore (Dispatch.strict_cycle 0))

let fractions_copied () =
  let alpha = [| 0.5; 0.5 |] in
  let d = Dispatch.round_robin alpha in
  alpha.(0) <- 99.0;
  check_array ~eps:0.0 "internal fractions unaffected" [| 0.5; 0.5 |]
    (Dispatch.fractions d)

(* Random fraction vector generator: Dirichlet-like via normalised
   exponentials, 2-8 computers. *)
let fractions_gen =
  QCheck2.Gen.(
    let* n = int_range 2 8 in
    let* raw = list_repeat n (map (fun u -> 0.05 +. u) (float_bound_inclusive 1.0)) in
    let arr = Array.of_list raw in
    let total = Array.fold_left ( +. ) 0.0 arr in
    (* exact renormalisation pass so the validator accepts it *)
    let alpha = Array.map (fun x -> x /. total) arr in
    let s = Array.fold_left ( +. ) 0.0 alpha in
    alpha.(0) <- alpha.(0) +. (1.0 -. s);
    return alpha)

let prop_rr_counts_near_expectation =
  qcheck ~count:100 "round-robin counts within 3 of N*alpha"
    fractions_gen
    (fun alpha ->
      let d = Dispatch.round_robin alpha in
      let n = 2000 in
      let c = counts d (Array.length alpha) n in
      Array.for_all2
        (fun count a -> abs_float (float_of_int count -. (float_of_int n *. a)) <= 3.0)
        c alpha)

let prop_rr_deterministic =
  qcheck ~count:50 "round-robin is deterministic"
    fractions_gen
    (fun alpha ->
      let d1 = Dispatch.round_robin alpha in
      let d2 = Dispatch.round_robin alpha in
      let same = ref true in
      for _ = 1 to 500 do
        if Dispatch.select d1 <> Dispatch.select d2 then same := false
      done;
      !same)

let prop_random_in_range =
  qcheck ~count:50 "random selects valid indices"
    fractions_gen
    (fun alpha ->
      let d = Dispatch.random ~rng:(rng ()) alpha in
      let ok = ref true in
      for _ = 1 to 500 do
        let i = Dispatch.select d in
        if i < 0 || i >= Array.length alpha then ok := false
      done;
      !ok)

let prop_smooth_wrr_bounded =
  qcheck ~count:100 "smooth WRR discrepancy bounded"
    fractions_gen
    (fun alpha ->
      let d = Dispatch.smooth_weighted alpha in
      max_prefix_discrepancy d alpha 1000 <= float_of_int (Array.length alpha))

let suite =
  [
    test "algorithm 2: paper example per-cycle counts" rr_paper_example_counts;
    test "algorithm 2: first pick is largest fraction" rr_first_selection_largest_fraction;
    test "algorithm 2: paper example decision trace" rr_paper_example_trace;
    test "algorithm 2: uniform fractions = classic round-robin"
      rr_uniform_degenerates_to_cycle;
    test "algorithm 2: two computers alternate" rr_two_computers;
    test "algorithm 2: long-run fractions realised" rr_long_run_fractions;
    test "algorithm 2: bounded prefix discrepancy" rr_bounded_discrepancy;
    test "algorithm 2: zero fractions never selected" rr_zero_fraction_never_selected;
    test "algorithm 2: reset replays" rr_reset;
    test "algorithm 2: single computer" rr_single_computer;
    test "algorithm 2: guard staggers small fractions" rr_guard_staggers_small_fractions;
    test "variants: identical long-run fractions" rr_variants_same_longrun;
    test "lazy ORR: bit-identical to eager on dyadic fractions"
      rr_lazy_matches_eager_dyadic;
    test "lazy ORR: long-run shares and bounded discrepancy"
      rr_lazy_longrun_and_discrepancy;
    test "lazy ORR: reset replays, zero fractions skipped"
      rr_lazy_reset_and_zero_fractions;
    prop_rr_lazy_dyadic_exact;
    test "random: long-run fractions" random_longrun_fractions;
    test "random: zero fractions never selected" random_zero_fraction_never_selected;
    test "round-robin far smoother than random" rr_smoother_than_random;
    test "smooth WRR: exact cycles" smooth_wrr_exact_cycles;
    test "strict cycle: order and reset" strict_cycle_order;
    test "validation errors" validation_errors;
    test "fractions are defensive copies" fractions_copied;
    prop_rr_counts_near_expectation;
    prop_rr_deterministic;
    prop_random_in_range;
    prop_smooth_wrr_bounded;
  ]
