let now () =
  (* schedlint: allow R2 — the single sanctioned wall-clock site *)
  Unix.gettimeofday ()

let elapsed ~since = max 0.0 (now () -. since)

let cpu () =
  (* schedlint: allow R2 — CPU-time flavour of the sanctioned clock *)
  Sys.time ()
