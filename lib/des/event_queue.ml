(* Structure-of-arrays binary min-heap keyed by (time, seq).

   Entry [i] lives across three parallel arrays: [times] (an unboxed
   floatarray), [seqs] and [payloads].  Compared with a heap of records
   this removes the per-event entry allocation, and replacing the old
   [pending : Hashtbl] with a [live] counter plus a cancellation bitmap
   makes [add]/[pop]/[size]/[is_empty] allocation-free — [size] and
   [is_empty] are a plain field read.

   The bitmap [done_bits] has one bit per sequence number at or above
   [base]; a set bit means the event already fired or was cancelled.
   [base] slides forward (whole bytes at a time so the window moves with
   a blit) whenever the low bits can no longer be referenced: when the
   queue empties, after compaction, and opportunistically instead of
   growing — so the window tracks the span of stored events rather than
   the total event count. *)

type handle = int

let no_handle = -1

let[@inline] is_handle h = h >= 0

type 'a t = {
  mutable times : Float.Array.t;
  mutable seqs : int array;
  mutable payloads : 'a array;
  mutable len : int;  (* stored entries, including lazily-cancelled ones *)
  mutable live : int;  (* stored entries not yet fired or cancelled *)
  mutable next_seq : int;
  mutable hwm : int;  (* most live events ever pending at once *)
  mutable filler : 'a option;
      (* Written into vacated payload slots so popped entries become
         collectable immediately.  The type has no value to make one from
         until the first [add], whose payload is kept as the filler — so
         at most that one payload outlives its scheduling (until
         [clear]). *)
  mutable done_bits : Bytes.t;  (* bit [seq - base]: fired or cancelled *)
  mutable base : int;  (* sequence number of bit 0; bits below are done *)
  init_cap : int;
  last_time : Float.Array.t;  (* length 1: time of the last [pop_step] *)
  mutable last_payload : 'a array;  (* length <= 1: its payload *)
}

let create ?(initial_capacity = 64) () =
  {
    times = Float.Array.make 0 0.0;
    seqs = [||];
    payloads = [||];
    len = 0;
    live = 0;
    next_seq = 0;
    hwm = 0;
    filler = None;
    done_bits = Bytes.create 0;
    base = 0;
    init_cap = max 16 initial_capacity;
    last_time = Float.Array.make 1 Float.nan;
    last_payload = [||];
  }

let is_empty q = q.live = 0

let size q = q.live

let high_water q = q.hwm

(* -- cancellation bitmap ------------------------------------------------ *)

(* Sequence numbers below [base] are always done; bits beyond the buffer
   are always clear (never marked).  [ensure_bit] keeps the invariant
   that every seq in [base, next_seq) has a byte, so the hot-path
   [mark_done] never allocates. *)

let[@inline] bit_done q seq =
  seq < q.base
  ||
  let i = seq - q.base in
  let byte = i lsr 3 in
  byte < Bytes.length q.done_bits
  && Char.code (Bytes.unsafe_get q.done_bits byte) land (1 lsl (i land 7)) <> 0

let mark_done q seq =
  let i = seq - q.base in
  let byte = i lsr 3 in
  Bytes.unsafe_set q.done_bits byte
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get q.done_bits byte) lor (1 lsl (i land 7))))

let min_stored_seq q =
  let m = ref q.next_seq in
  for i = 0 to q.len - 1 do
    if q.seqs.(i) < !m then m := q.seqs.(i)
  done;
  !m

(* Slide the window forward by [shift_bytes] whole bytes.  Only legal when
   every seq below the new base is done — callers pass a base at or below
   the minimum stored seq, and bits below the minimum stored seq are all
   set (their events fired or were cancelled). *)
let rebase_bytes q shift_bytes =
  if shift_bytes > 0 then begin
    let blen = Bytes.length q.done_bits in
    let keep = blen - min shift_bytes blen in
    if keep > 0 then Bytes.blit q.done_bits (blen - keep) q.done_bits 0 keep;
    Bytes.fill q.done_bits keep (blen - keep) '\000';
    q.base <- q.base + (shift_bytes lsl 3)
  end

let rebase_empty q =
  (* Queue drained: nothing stored, so every bit is reclaimable. *)
  let used = (q.next_seq - q.base + 7) lsr 3 in
  Bytes.fill q.done_bits 0 (min used (Bytes.length q.done_bits)) '\000';
  q.base <- q.next_seq

(* Amortised growth path: allocates on resize, so it is excluded from
   the R8 zero-alloc proof obligation. *)
let[@schedsim.cold] rec ensure_bit q seq =
  let byte = (seq - q.base) lsr 3 in
  let blen = Bytes.length q.done_bits in
  if byte >= blen then begin
    (* Prefer sliding the window over growing it, but only when that
       frees at least half the buffer — otherwise growth keeps the sweep
       over stored seqs amortized O(1) per add. *)
    let free_bytes = (min_stored_seq q - q.base) lsr 3 in
    if blen > 0 && 2 * free_bytes >= blen then rebase_bytes q free_bytes
    else begin
      let ncap = max 64 (max (byte + 1) (2 * blen)) in
      let nb = Bytes.make ncap '\000' in
      Bytes.blit q.done_bits 0 nb 0 blen;
      q.done_bits <- nb
    end;
    if (seq - q.base) lsr 3 >= Bytes.length q.done_bits then ensure_bit q seq
  end

(* -- heap helpers ------------------------------------------------------- *)

(* Indices handed to [precedes] and the sift loops below are always
   < [q.len], so the int/payload arrays use unsafe accessors like the
   float array already does — the heap sifts are the simulator's hottest
   loops and the bounds checks are pure overhead there. *)
let[@inline] precedes q i j =
  let ti = Float.Array.unsafe_get q.times i
  and tj = Float.Array.unsafe_get q.times j in
  ti < tj
  || (Float.equal ti tj && Array.unsafe_get q.seqs i < Array.unsafe_get q.seqs j)

let blank q i =
  match q.filler with Some d -> q.payloads.(i) <- d | None -> ()

let[@schedsim.cold] ensure_capacity q payload =
  (match q.filler with None -> q.filler <- Some payload | Some _ -> ());
  if Array.length q.last_payload = 0 then q.last_payload <- Array.make 1 payload;
  let cap = Float.Array.length q.times in
  if q.len = cap then begin
    let ncap = max q.init_cap (2 * cap) in
    let nt = Float.Array.make ncap 0.0 in
    Float.Array.blit q.times 0 nt 0 q.len;
    q.times <- nt;
    let ns = Array.make ncap 0 in
    Array.blit q.seqs 0 ns 0 q.len;
    q.seqs <- ns;
    let np = Array.make ncap payload in
    Array.blit q.payloads 0 np 0 q.len;
    (* Fill the unused tail with the filler so growth retains no payload
       beyond it. *)
    (match q.filler with
    | Some d -> Array.fill np q.len (ncap - q.len) d
    | None -> ());
    q.payloads <- np
  end

let[@inline] [@schedsim.hot] add q ~time payload =
  if not (Float.is_finite time) then
    invalid_arg "Event_queue.add: non-finite time";
  ensure_capacity q payload;
  let seq = q.next_seq in
  q.next_seq <- seq + 1;
  ensure_bit q seq;
  (* Sift up with a hole: the new entry has the largest seq, so on a time
     tie it never precedes its parent (FIFO). *)
  let i = ref q.len in
  q.len <- q.len + 1;
  let sifting = ref true in
  while !sifting && !i > 0 do
    let p = (!i - 1) / 2 in
    let tp = Float.Array.unsafe_get q.times p in
    if time < tp then begin
      Float.Array.unsafe_set q.times !i tp;
      Array.unsafe_set q.seqs !i (Array.unsafe_get q.seqs p);
      Array.unsafe_set q.payloads !i (Array.unsafe_get q.payloads p);
      i := p
    end
    else sifting := false
  done;
  Float.Array.unsafe_set q.times !i time;
  Array.unsafe_set q.seqs !i seq;
  Array.unsafe_set q.payloads !i payload;
  q.live <- q.live + 1;
  if q.live > q.hwm then q.hwm <- q.live;
  seq

(* Remove the root, refilling the hole with the last entry sifted down. *)
let remove_root q =
  let last = q.len - 1 in
  q.len <- last;
  if last = 0 then blank q 0
  else begin
    let t = Float.Array.unsafe_get q.times last in
    let s = Array.unsafe_get q.seqs last in
    let p = Array.unsafe_get q.payloads last in
    blank q last;
    let i = ref 0 in
    let sifting = ref true in
    while !sifting do
      let l = (2 * !i) + 1 in
      if l >= last then sifting := false
      else begin
        let r = l + 1 in
        let c = if r < last && precedes q r l then r else l in
        let tc = Float.Array.unsafe_get q.times c in
        if tc < t || (Float.equal tc t && Array.unsafe_get q.seqs c < s) then begin
          Float.Array.unsafe_set q.times !i tc;
          Array.unsafe_set q.seqs !i (Array.unsafe_get q.seqs c);
          Array.unsafe_set q.payloads !i (Array.unsafe_get q.payloads c);
          i := c
        end
        else sifting := false
      end
    done;
    Float.Array.unsafe_set q.times !i t;
    Array.unsafe_set q.seqs !i s;
    Array.unsafe_set q.payloads !i p
  end

let[@schedsim.hot] rec pop_step q =
  if q.len = 0 then begin
    rebase_empty q;
    false
  end
  else begin
    let time = Float.Array.unsafe_get q.times 0 in
    let seq = Array.unsafe_get q.seqs 0 in
    let payload = Array.unsafe_get q.payloads 0 in
    remove_root q;
    if bit_done q seq then pop_step q (* cancelled: skip *)
    else begin
      mark_done q seq;
      q.live <- q.live - 1;
      Float.Array.unsafe_set q.last_time 0 time;
      q.last_payload.(0) <- payload;
      true
    end
  end

let[@inline] last_time q = Float.Array.unsafe_get q.last_time 0

let[@inline] last_payload q = q.last_payload.(0)

let blank_last q =
  match q.filler with Some d -> q.last_payload.(0) <- d | None -> ()

let pop q =
  if pop_step q then begin
    let p = q.last_payload.(0) in
    (* Release the scratch slot so the popped payload does not outlive
       this call. *)
    blank_last q;
    Some (Float.Array.get q.last_time 0, p)
  end
  else None

(* Cold path of [next_time]: drop lazily-cancelled roots until a live
   entry (or emptiness) surfaces. *)
let rec drop_done_roots q =
  if q.len = 0 then Float.nan
  else if bit_done q (Array.unsafe_get q.seqs 0) then begin
    remove_root q;
    drop_done_roots q
  end
  else Float.Array.unsafe_get q.times 0

(* Non-recursive so the common live-root case inlines into callers (the
   engine main loop and the PS reschedule path read this once per event)
   and the returned float stays unboxed there. *)
let[@inline] next_time q =
  if q.len = 0 then Float.nan
  else if bit_done q (Array.unsafe_get q.seqs 0) then drop_done_roots q
  else Float.Array.unsafe_get q.times 0

let peek_time q =
  let t = next_time q in
  if Float.is_nan t then None else Some t

(* -- cancellation ------------------------------------------------------- *)

let swap q i j =
  let t = Float.Array.get q.times i in
  Float.Array.set q.times i (Float.Array.get q.times j);
  Float.Array.set q.times j t;
  let s = q.seqs.(i) in
  q.seqs.(i) <- q.seqs.(j);
  q.seqs.(j) <- s;
  let p = q.payloads.(i) in
  q.payloads.(i) <- q.payloads.(j);
  q.payloads.(j) <- p

let rec sift_down q i =
  let l = (2 * i) + 1 in
  if l < q.len then begin
    let r = l + 1 in
    let smallest = if r < q.len && precedes q r l then r else l in
    if precedes q smallest i then begin
      swap q i smallest;
      sift_down q smallest
    end
  end

(* Rebuild the heap from the entries still live (Floyd's bottom-up
   heapify).  Pop order only depends on [(time, seq)], never on array
   layout, so compaction cannot change simulation results. *)
let compact q =
  let j = ref 0 in
  for i = 0 to q.len - 1 do
    if not (bit_done q q.seqs.(i)) then begin
      Float.Array.unsafe_set q.times !j (Float.Array.unsafe_get q.times i);
      q.seqs.(!j) <- q.seqs.(i);
      q.payloads.(!j) <- q.payloads.(i);
      incr j
    end
  done;
  let new_len = !j in
  (match q.filler with
  | Some d -> Array.fill q.payloads new_len (q.len - new_len) d
  | None -> ());
  q.len <- new_len;
  for i = (new_len / 2) - 1 downto 0 do
    sift_down q i
  done;
  if new_len = 0 then rebase_empty q
  else begin
    let free_bytes = (min_stored_seq q - q.base) lsr 3 in
    rebase_bytes q free_bytes
  end

let cancel q h =
  (* Lazy deletion: set the done bit now, skip at pop time.  When
     cancellations pile up (live entries under a quarter of the heap)
     compact eagerly, otherwise a cancel-heavy workload holds on to
     arbitrarily many dead entries until pops reach them. *)
  if h < q.base || h >= q.next_seq || bit_done q h then false
  else begin
    mark_done q h;
    q.live <- q.live - 1;
    if q.len >= 64 && q.live * 4 < q.len then compact q;
    true
  end

(* Audit the heap property over every stored entry (live or lazily
   cancelled): each parent must precede its children.  O(n); meant for
   sanitizers and tests, not the hot path. *)
let heap_ordered q =
  let ok = ref true in
  for i = 1 to q.len - 1 do
    if precedes q i ((i - 1) / 2) then ok := false
  done;
  !ok

module Testing = struct
  let corrupt q =
    if q.len >= 2 then
      Float.Array.set q.times 0 (Float.Array.get q.times (q.len - 1) +. 1.0)
end

let clear q =
  (* Release the backing arrays outright: truncating [len] alone kept
     every queued payload reachable for the queue's lifetime. *)
  q.times <- Float.Array.make 0 0.0;
  q.seqs <- [||];
  q.payloads <- [||];
  q.last_payload <- [||];
  q.len <- 0;
  q.live <- 0;
  q.filler <- None;
  q.done_bits <- Bytes.create 0;
  q.base <- q.next_seq
