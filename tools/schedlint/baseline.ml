(* Baseline files for incremental adoption.

   A baseline is a text file of tab-separated [rule \t file \t message]
   lines (no line numbers, so pure code motion does not churn it).
   Matching is count-based: a baseline line absorbs at most one
   diagnostic with the same key, extra occurrences still fail, and
   baseline entries that absorb nothing are reported so the file
   shrinks as the tree gets cleaned up. *)

type entry = { rule : string; file : string; msg : string }

let key e = e.rule ^ "\t" ^ e.file ^ "\t" ^ e.msg
let key_of_diag (d : Diag.t) = d.rule ^ "\t" ^ d.file ^ "\t" ^ d.msg

let parse_line line =
  match String.split_on_char '\t' line with
  | rule :: file :: rest when rest <> [] ->
    Some { rule; file; msg = String.concat "\t" rest }
  | _ -> None

let load path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let entries = ref [] in
    (try
       while true do
         let line = input_line ic in
         let line = String.trim line in
         if line <> "" && not (Canon.starts_with ~prefix:"#" line) then
           match parse_line line with
           | Some e -> entries := e :: !entries
           | None ->
             Printf.eprintf "schedlint: %s: malformed baseline line: %s\n"
               path line
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !entries
  end

type filtered = {
  fresh : Diag.t list;  (* not absorbed by the baseline *)
  absorbed : int;
  unused : entry list;  (* baseline entries that matched nothing *)
}

let apply entries diags =
  let budget = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let k = key e in
      Hashtbl.replace budget k
        (1 + Option.value ~default:0 (Hashtbl.find_opt budget k)))
    entries;
  let absorbed = ref 0 in
  let fresh =
    List.filter
      (fun d ->
        let k = key_of_diag d in
        match Hashtbl.find_opt budget k with
        | Some n when n > 0 ->
          Hashtbl.replace budget k (n - 1);
          incr absorbed;
          false
        | _ -> true)
      diags
  in
  let unused =
    (* whatever budget remains absorbed nothing; consume as we report
       so a duplicated baseline line is only reported once per copy *)
    List.filter
      (fun e ->
        let k = key e in
        match Hashtbl.find_opt budget k with
        | Some n when n > 0 ->
          Hashtbl.replace budget k (n - 1);
          true
        | _ -> false)
      entries
  in
  { fresh; absorbed = !absorbed; unused }

let write path diags =
  let oc = open_out path in
  output_string oc
    "# schedlint baseline: rule<TAB>file<TAB>message, one per line.\n\
     # Regenerate with: schedlint --write-baseline <this file> <roots>\n";
  List.iter
    (fun (d : Diag.t) ->
      output_string oc (d.rule ^ "\t" ^ d.file ^ "\t" ^ d.msg ^ "\n"))
    (Diag.sort diags);
  close_out oc
