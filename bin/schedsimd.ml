(* schedsimd — the scheduler-as-a-service daemon.

   Wraps Cluster.Daemon (a Simulation.Driver in external-arrival mode
   plus Telemetry) in a long-running process: jobs arrive over HTTP
   (POST /jobs), the virtual clock tracks scaled wall time, and SIGTERM
   or POST /drain runs the backlog dry, finalizes the run and writes the
   journal before exit. *)

open Cmdliner
module Core = Statsched_core
module Cluster = Statsched_cluster

let speeds_arg =
  let parse s =
    try Ok (Core.Speeds.of_string s)
    with Invalid_argument _ ->
      Error (`Msg (Printf.sprintf "invalid speed list %S" s))
  in
  let print fmt s = Format.fprintf fmt "%s" (Core.Speeds.to_string s) in
  Arg.conv (parse, print)

let speeds_t =
  Arg.(
    value
    & opt speeds_arg Core.Speeds.table3
    & info [ "s"; "speeds" ] ~docv:"SPEEDS"
        ~doc:
          "Comma-separated computer speeds, with NxS groups allowed (e.g. \
           '1,1,2,10' or '5x1.0,4x1.5,1x12').  Default: the paper's Table 3 \
           configuration.")

let rho_t =
  Arg.(
    value
    & opt float 0.6
    & info [ "u"; "utilization" ] ~docv:"RHO"
        ~doc:
          "Offered utilisation the optimized allocations are computed for \
           (Algorithm 1's load estimate; the daemon does not generate \
           arrivals itself).")

let policy_t =
  Arg.(
    value
    & opt string "orr"
    & info [ "p"; "policy" ] ~docv:"POLICY"
        ~doc:
          (Printf.sprintf
             "Initial scheduling policy: %s.  Sampling dispatchers accept a \
              ':d' probe-count suffix (e.g. jsq-d:4).  Hot-swap at runtime \
              with PUT /policy."
             (String.concat ", " Cluster.Daemon.policy_names)))

let port_t =
  Arg.(
    value
    & opt int 8080
    & info [ "port" ] ~docv:"PORT"
        ~doc:
          "TCP port to listen on (127.0.0.1); 0 picks an ephemeral port \
           (printed on start-up).")

let time_scale_t =
  Arg.(
    value
    & opt float 1.0
    & info [ "time-scale" ] ~docv:"X"
        ~doc:
          "Virtual seconds per wall-clock second.  At 1000, a 2-second \
           job finishes in 2 ms of wall time — handy for exercising the \
           daemon quickly.")

let backlog_t =
  Arg.(
    value
    & opt int 1000
    & info [ "backlog-limit" ] ~docv:"N"
        ~doc:
          "Admission control: once $(docv) jobs are in the system, \
           POST /jobs answers 429 until completions free capacity.")

let seed_t =
  Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let horizon_t =
  Arg.(
    value
    & opt float 1.0e12
    & info [ "horizon" ] ~docv:"SECONDS"
        ~doc:
          "Virtual-time cap recorded in the run configuration (validation \
           and journal metadata only; the run actually ends at drain time).")

let journal_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:
          "Record a bounded structured run journal and write it to $(docv) \
           on drain (cross-validate with 'tracestat check').")

let journal_capacity_t =
  Arg.(
    value
    & opt int 65536
    & info [ "journal-capacity" ] ~docv:"N"
        ~doc:"Maximum records the journal retains (memory stays O($(docv))).")

let metrics_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write the final Prometheus exposition to $(docv) on drain.")

let run speeds rho policy port time_scale backlog_limit seed horizon
    journal_file journal_capacity metrics_out =
  match Cluster.Daemon.scheduler_of_name policy with
  | Error msg -> `Error (false, msg)
  | Ok scheduler ->
    let workload = Cluster.Workload.paper_default ~rho ~speeds in
    let cfg =
      Cluster.Simulation.default_config ~horizon ~warmup:0.0 ~seed ~speeds
        ~workload ~scheduler ()
    in
    let journal =
      Option.map
        (fun _ -> Statsched_obs.Journal.create ~capacity:journal_capacity ())
        journal_file
    in
    let daemon =
      Cluster.Daemon.create ?journal ~time_scale ~backlog_limit cfg
    in
    let server = Cluster.Daemon.serve daemon ~port in
    let bound = Statsched_obs.Http.port server in
    Printf.printf
      "schedsimd: %d computers, policy %s, %gx virtual time, backlog limit \
       %d\nschedsimd: listening on http://127.0.0.1:%d (POST /jobs, GET \
       /state, GET /metrics, PUT /policy, POST /drain)\n%!"
      (Array.length speeds)
      (Cluster.Scheduler.name scheduler)
      time_scale backlog_limit bound;
    let stop = Atomic.make false in
    let request_stop _ = Atomic.set stop true in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
    (* Park the main thread until SIGTERM/SIGINT or a client's
       POST /drain; the HTTP systhread does all the work. *)
    while not (Atomic.get stop || Cluster.Daemon.is_drained daemon) do
      Thread.delay 0.05
    done;
    Cluster.Daemon.drain daemon;
    Statsched_obs.Http.stop server;
    (match metrics_out with
    | Some path ->
      Cluster.Telemetry.write_metrics (Cluster.Daemon.telemetry daemon) path;
      Printf.printf "schedsimd: metrics -> %s\n" path
    | None -> ());
    (match journal_file with
    | Some path ->
      if Cluster.Daemon.write_journal daemon path then
        Printf.printf "schedsimd: journal -> %s\n" path
      else
        Printf.printf "schedsimd: no jobs measured, journal %s not written\n"
          path
    | None -> ());
    (match Cluster.Daemon.result daemon with
    | Some r ->
      let m = r.Cluster.Simulation.metrics in
      Printf.printf
        "schedsimd: drained at t=%.6g with %d jobs (mean response ratio \
         %.4f)\n"
        (Cluster.Daemon.virtual_now daemon)
        m.Core.Metrics.jobs m.Core.Metrics.mean_response_ratio
    | None -> Printf.printf "schedsimd: drained with no measured jobs\n");
    `Ok ()

let cmd =
  let doc = "serve the heterogeneous-cluster scheduler as a daemon" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the statsched dispatch engine as a long-lived service: jobs \
         are submitted over HTTP, dispatched by the configured policy \
         against a virtual clock derived from wall time, and observable \
         live through the same /metrics and /state surfaces batch runs \
         export.  SIGTERM (or POST /drain) drains in-flight jobs, \
         finalizes the run and writes the journal before exit.";
      `S Manpage.s_examples;
      `Pre
        "  schedsimd -s 5x1.0,4x1.5,1x12 -p jsq-d --time-scale 1000 \\\n\
        \      --port 8080 --journal run.journal\n\
         \  curl -d 2.5 http://127.0.0.1:8080/jobs\n\
         \  curl -X PUT -d jiq http://127.0.0.1:8080/policy\n\
         \  curl -X POST http://127.0.0.1:8080/drain";
    ]
  in
  let term =
    Term.(
      ret
        (const run $ speeds_t $ rho_t $ policy_t $ port_t $ time_scale_t
       $ backlog_t $ seed_t $ horizon_t $ journal_t $ journal_capacity_t
       $ metrics_out_t))
  in
  Cmd.v (Cmd.info "schedsimd" ~version:"0.1.0" ~doc ~man) term

let () = exit (Cmd.eval cmd)
