type stats = {
  spans : int;
  measured : int;
  mean_response_time : float;
  mean_response_ratio : float;
  dispatch_counts : int array;
}

(* Substring search; [String.index]-based, no regex dependency. *)
let find_sub s sub =
  let ls = String.length s and lsub = String.length sub in
  let rec go i =
    if i + lsub > ls then None
    else if String.equal (String.sub s i lsub) sub then Some i
    else go (i + 1)
  in
  go 0

let contains s sub = Option.is_some (find_sub s sub)

(* Numeric value following ["key":] in [line], read up to the next
   [,]/[}] delimiter. *)
let field_num line key =
  match find_sub line (Printf.sprintf "\"%s\":" key) with
  | None -> None
  | Some i ->
    let start = i + String.length key + 3 in
    let stop = ref start in
    let len = String.length line in
    while
      !stop < len
      && (match line.[!stop] with ',' | '}' -> false | _ -> true)
    do
      incr stop
    done;
    float_of_string_opt (String.sub line start (!stop - start))

let of_string content =
  let lines = String.split_on_char '\n' content in
  let spans = ref 0 in
  let measured = ref 0 in
  let rt_sum = ref 0.0 in
  let rr_sum = ref 0.0 in
  let counts = ref (Array.make 0 0) in
  let bump tid =
    let cur = !counts in
    if tid >= Array.length cur then begin
      let grown = Array.make (tid + 1) 0 in
      Array.blit cur 0 grown 0 (Array.length cur);
      counts := grown
    end;
    !counts.(tid) <- !counts.(tid) + 1
  in
  let malformed = ref None in
  List.iter
    (fun line ->
      if
        Option.is_none !malformed
        && contains line "\"ph\":\"X\""
        && contains line "\"cat\":\"job\""
      then
        match (field_num line "dur", field_num line "tid", field_num line "size")
        with
        | Some dur_us, Some tid, Some size ->
          incr spans;
          if contains line "\"measured\":\"yes\"" then begin
            incr measured;
            let rt = dur_us /. 1e6 in
            rt_sum := !rt_sum +. rt;
            rr_sum := !rr_sum +. (rt /. size);
            bump (int_of_float tid)
          end
        | _ -> malformed := Some line)
    lines;
  match !malformed with
  | Some line -> Error (Printf.sprintf "malformed job span: %s" (String.trim line))
  | None ->
    if !spans = 0 then Error "no job spans found (was the trace written with --trace-out?)"
    else
      let m = float_of_int (max 1 !measured) in
      Ok
        {
          spans = !spans;
          measured = !measured;
          mean_response_time = !rt_sum /. m;
          mean_response_ratio = !rr_sum /. m;
          dispatch_counts = !counts;
        }

let of_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | content -> of_string content
  | exception Sys_error m -> Error m
