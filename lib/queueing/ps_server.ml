module Engine = Statsched_des.Engine
module Event_queue = Statsched_des.Event_queue
module Tally = Statsched_stats.Tally

type t = {
  engine : Engine.t;
  speed : float;
  on_departure : Job.t -> unit;
  active : Job.t Event_queue.t;  (* keyed by virtual finish time *)
  mutable rate : float;  (* fault multiplier on speed; 0 = suspended *)
  mutable vclock : float;
  mutable last_update : float;
  mutable completion_ev : Engine.event_handle option;
  busy : Tally.t;
  occupancy : Tally.t;
  mutable completed : int;
  mutable work : float;
}

let create ~engine ~speed ~on_departure () =
  if speed <= 0.0 then invalid_arg "Ps_server.create: speed <= 0";
  {
    engine;
    speed;
    on_departure;
    active = Event_queue.create ();
    rate = 1.0;
    vclock = 0.0;
    last_update = Engine.now engine;
    completion_ev = None;
    busy = Tally.create ~start_time:(Engine.now engine) ();
    occupancy = Tally.create ~start_time:(Engine.now engine) ();
    completed = 0;
    work = 0.0;
  }

let in_system t = Event_queue.size t.active

(* Bring virtual time and work counters up to the current instant. *)
let advance t =
  let now = Engine.now t.engine in
  let n = in_system t in
  if n > 0 then begin
    let eff = t.speed *. t.rate in
    let elapsed = now -. t.last_update in
    t.vclock <- t.vclock +. (elapsed *. eff /. float_of_int n);
    t.work <- t.work +. (elapsed *. eff)
  end;
  t.last_update <- now

let eps t = 1e-9 *. (1.0 +. abs_float t.vclock)

let rec reschedule t =
  (match t.completion_ev with
  | Some h ->
    ignore (Engine.cancel t.engine h);
    t.completion_ev <- None
  | None -> ());
  Tally.update t.occupancy ~time:(Engine.now t.engine)
    ~value:(float_of_int (in_system t));
  (* [next_time] is NaN when no job is active; NaN compares false below,
     so the empty case falls through without allocating an option. *)
  let v_min = Event_queue.next_time t.active in
  if Float.is_nan v_min then
    Tally.update t.busy ~time:(Engine.now t.engine) ~value:0.0
  else begin
    let eff = t.speed *. t.rate in
    if eff > 0.0 then begin
      Tally.update t.busy ~time:(Engine.now t.engine) ~value:1.0;
      let n = float_of_int (in_system t) in
      let delay = max 0.0 ((v_min -. t.vclock) *. n /. eff) in
      t.completion_ev <- Some (Engine.schedule t.engine ~delay (fun _ -> on_completion t))
    end
    else
      (* Suspended: virtual time is frozen, no completion can occur. *)
      Tally.update t.busy ~time:(Engine.now t.engine) ~value:0.0
  end

and on_completion t =
  t.completion_ev <- None;
  advance t;
  let tol = eps t in
  let rec drain forced =
    let v_min = Event_queue.next_time t.active in
    (* NaN (empty queue) fails the comparison; [pop_step] guards the
       forced case. *)
    if forced || v_min <= t.vclock +. tol then
      if Event_queue.pop_step t.active then begin
        let job = Event_queue.last_payload t.active in
        job.Job.completion <- Engine.now t.engine;
        t.completed <- t.completed + 1;
        t.on_departure job;
        drain false
      end
  in
  (* Float round-off can leave the head a hair beyond the virtual clock;
     force at least one departure so the simulation always progresses. *)
  let head_ready = Event_queue.next_time t.active <= t.vclock +. tol in
  drain (not head_ready);
  reschedule t

let submit t job =
  advance t;
  let now = Engine.now t.engine in
  if job.Job.start < 0.0 then job.Job.start <- now;
  ignore (Event_queue.add t.active ~time:(t.vclock +. job.Job.size) job);
  Tally.update t.busy ~time:now ~value:1.0;
  reschedule t

let utilization t =
  Tally.advance t.busy ~time:(Engine.now t.engine);
  let u = Tally.time_average t.busy in
  if Float.is_nan u then 0.0 else u

let mean_in_system t =
  Tally.advance t.occupancy ~time:(Engine.now t.engine);
  let l = Tally.time_average t.occupancy in
  if Float.is_nan l then 0.0 else l

let completed t = t.completed

let work_done t =
  advance t;
  t.work

let set_rate t r =
  if r < 0.0 then invalid_arg "Ps_server.set_rate: rate < 0";
  advance t;
  t.rate <- r;
  reschedule t

let drain t =
  advance t;
  let rec take acc =
    match Event_queue.pop t.active with
    | Some (_, job) -> take (job :: acc)
    | None -> List.rev acc
  in
  let jobs = take [] in
  reschedule t;
  jobs

let reset_stats t =
  advance t;
  Tally.reset_at t.busy ~time:(Engine.now t.engine);
  Tally.update t.occupancy ~time:(Engine.now t.engine)
    ~value:(float_of_int (in_system t));
  Tally.reset_at t.occupancy ~time:(Engine.now t.engine);
  t.completed <- 0;
  t.work <- 0.0

let to_server t =
  {
    Server_intf.speed = t.speed;
    submit = submit t;
    in_system = (fun () -> in_system t);
    mean_in_system = (fun () -> mean_in_system t);
    utilization = (fun () -> utilization t);
    completed = (fun () -> completed t);
    work_done = (fun () -> work_done t);
    reset_stats = (fun () -> reset_stats t);
    set_rate = set_rate t;
    drain = (fun () -> drain t);
    discipline = "PS";
  }
