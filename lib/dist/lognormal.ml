module Rng = Statsched_prng.Rng

(* Box–Muller; we deliberately discard the second variate to keep the
   sampler stateless with respect to the stream. *)
let standard_normal g =
  let u1 = 1.0 -. Rng.float g in
  let u2 = Rng.float g in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let create ~mu ~sigma =
  if sigma <= 0.0 then invalid_arg "Lognormal.create: sigma <= 0";
  let s2 = sigma *. sigma in
  let mean = exp (mu +. (s2 /. 2.0)) in
  let variance = (exp s2 -. 1.0) *. exp ((2.0 *. mu) +. s2) in
  Distribution.make
    ~name:(Printf.sprintf "LogN(%g,%g)" mu sigma)
    ~mean ~variance
    (fun g -> exp (mu +. (sigma *. standard_normal g)))

let of_mean_cv ~mean ~cv =
  if mean <= 0.0 then invalid_arg "Lognormal.of_mean_cv: mean <= 0";
  if cv <= 0.0 then invalid_arg "Lognormal.of_mean_cv: cv <= 0";
  let s2 = log (1.0 +. (cv *. cv)) in
  create ~mu:(log mean -. (s2 /. 2.0)) ~sigma:(sqrt s2)
