open Test_util
module Obs = Statsched_obs
module Hdr = Obs.Hdr_histogram
module Registry = Obs.Registry
module Trace_event = Obs.Trace_event
module Clock = Obs.Clock
module Core = Statsched_core
module Cluster = Statsched_cluster
module Workload = Cluster.Workload
module Simulation = Cluster.Simulation
module Scheduler = Cluster.Scheduler
module Fault = Cluster.Fault
module Telemetry = Cluster.Telemetry
module Job = Statsched_queueing.Job

(* ------------------------------------------------------------------ *)
(* HDR histogram                                                       *)

let hdr_basic () =
  let h = Hdr.create ~sub_count:2 ~lo:1.0 ~hi:16.0 () in
  Alcotest.(check int) "8 bins (4 octaves x 2)" 8 (Hdr.bin_count h);
  Hdr.add h 1.2;
  Hdr.add h 3.0;
  Hdr.add h 0.5;
  (* underflow *)
  Hdr.add h 100.0;
  (* overflow *)
  Alcotest.(check int) "count includes out-of-range" 4 (Hdr.count h);
  Alcotest.(check int) "underflow" 1 (Hdr.underflow h);
  Alcotest.(check int) "overflow" 1 (Hdr.overflow h);
  check_float ~eps:1e-12 "sum" 104.7 (Hdr.sum h);
  check_float ~eps:1e-12 "mean" (104.7 /. 4.0) (Hdr.mean h);
  check_float "min" 0.5 (Hdr.min_value h);
  check_float "max" 100.0 (Hdr.max_value h);
  (* 1.2 lands in [1, 1.5); 3.0 in [3, 4). *)
  let lo0, hi0 = Hdr.bin_range h 0 in
  check_float "bin 0 lower" 1.0 lo0;
  check_float "bin 0 upper" 1.5 hi0;
  Alcotest.(check int) "1.2 counted in bin 0" 1 (Hdr.bin_value h 0);
  (match Hdr.bin_index h 3.0 with
  | Some i ->
    let l, u = Hdr.bin_range h i in
    Alcotest.(check bool) "3.0's bin contains it" true (l <= 3.0 && 3.0 < u)
  | None -> Alcotest.fail "3.0 is in range");
  Alcotest.(check bool) "out-of-range has no bin" true (Hdr.bin_index h 100.0 = None)

let hdr_empty_and_validation () =
  let h = Hdr.create ~lo:1.0 ~hi:8.0 () in
  Alcotest.(check bool) "empty mean is nan" true (Float.is_nan (Hdr.mean h));
  Alcotest.(check bool) "empty quantile is nan" true (Float.is_nan (Hdr.quantile h 0.5));
  Alcotest.check_raises "lo <= 0" (Invalid_argument "Hdr_histogram.create: lo <= 0")
    (fun () -> ignore (Hdr.create ~lo:0.0 ~hi:1.0 ()));
  Alcotest.check_raises "hi <= lo" (Invalid_argument "Hdr_histogram.create: hi <= lo")
    (fun () -> ignore (Hdr.create ~lo:2.0 ~hi:2.0 ()));
  Alcotest.check_raises "NaN observation"
    (Invalid_argument "Hdr_histogram.add: NaN observation") (fun () -> Hdr.add h nan);
  Alcotest.check_raises "q outside (0,1)"
    (Invalid_argument "Hdr_histogram.quantile: q outside (0,1)") (fun () ->
      ignore (Hdr.quantile h 1.0))

(* Relative bucket resolution: every in-range value must land in a bin
   whose width is at most value/sub_count * 2 (log-linear guarantee). *)
let hdr_resolution () =
  let sub_count = 32 in
  let h = Hdr.create ~sub_count ~lo:1e-3 ~hi:1e7 () in
  let g = rng () in
  for _ = 1 to 1000 do
    let x = 1e-3 *. exp (Statsched_prng.Rng.float g *. log 1e10) in
    let x = min x 9.9e6 in
    match Hdr.bin_index h x with
    | None -> Alcotest.fail (Printf.sprintf "%g should be in range" x)
    | Some i ->
      let l, u = Hdr.bin_range h i in
      Alcotest.(check bool)
        (Printf.sprintf "%g in its bin [%g, %g)" x l u)
        true
        (l <= x && x < u);
      Alcotest.(check bool)
        (Printf.sprintf "bin width %g fine enough at %g" (u -. l) x)
        true
        (u -. l <= 2.0 *. x /. float_of_int sub_count)
  done

(* Acceptance check: p99 of 1e5 exponential samples agrees with the exact
   empirical p99 to within one bucket width. *)
let hdr_quantile_exponential () =
  let n = 100_000 in
  let g = rng ~seed:11L () in
  let h = Hdr.create ~lo:1e-3 ~hi:1e3 () in
  let samples = Array.init n (fun _ -> Statsched_dist.Exponential.sample ~rate:1.0 g) in
  Array.iter (Hdr.add h) samples;
  (* Exp(1) puts ~n/1000 samples below lo = 1e-3; none above 1e3. *)
  Alcotest.(check int) "no overflow" 0 (Hdr.overflow h);
  Alcotest.(check bool) "underflow stays in the far-left tail" true
    (Hdr.underflow h < n / 500);
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  List.iter
    (fun q ->
      let exact =
        sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1))
      in
      let est = Hdr.quantile h q in
      let width =
        match Hdr.bin_index h exact with
        | Some i ->
          let l, u = Hdr.bin_range h i in
          u -. l
        | None -> Alcotest.fail "exact quantile outside histogram range"
      in
      Alcotest.(check bool)
        (Printf.sprintf "q=%.3f: |%.5g - %.5g| <= bucket width %.5g" q est exact
           width)
        true
        (abs_float (est -. exact) <= width))
    [ 0.5; 0.9; 0.99; 0.999 ]

let hdr_merge () =
  let layout () = Hdr.create ~sub_count:8 ~lo:0.01 ~hi:100.0 () in
  let a = layout () and b = layout () and both = layout () in
  let g = rng ~seed:5L () in
  for k = 1 to 2000 do
    let x = Statsched_dist.Exponential.sample ~rate:0.5 g in
    Hdr.add (if k mod 2 = 0 then a else b) x;
    Hdr.add both x
  done;
  Hdr.merge ~into:a b;
  Alcotest.(check int) "merged count" (Hdr.count both) (Hdr.count a);
  Alcotest.(check int) "merged underflow" (Hdr.underflow both) (Hdr.underflow a);
  Alcotest.(check int) "merged overflow" (Hdr.overflow both) (Hdr.overflow a);
  check_float ~eps:1e-9 "merged sum" (Hdr.sum both) (Hdr.sum a);
  check_float ~eps:0.0 "merged min" (Hdr.min_value both) (Hdr.min_value a);
  check_float ~eps:0.0 "merged max" (Hdr.max_value both) (Hdr.max_value a);
  for i = 0 to Hdr.bin_count both - 1 do
    Alcotest.(check int)
      (Printf.sprintf "bin %d identical" i)
      (Hdr.bin_value both i) (Hdr.bin_value a i)
  done;
  List.iter
    (fun q -> check_float ~eps:0.0 "merged quantile" (Hdr.quantile both q) (Hdr.quantile a q))
    [ 0.5; 0.9; 0.99 ];
  Alcotest.check_raises "layout mismatch"
    (Invalid_argument "Hdr_histogram.merge: layouts differ") (fun () ->
      Hdr.merge ~into:a (Hdr.create ~lo:1.0 ~hi:2.0 ()))

(* ------------------------------------------------------------------ *)
(* Registry + Prometheus exposition                                    *)

let registry_basic () =
  let r = Registry.create () in
  let c = Registry.counter r ~labels:[ ("computer", "0") ] "jobs_total" in
  Registry.inc c;
  Registry.inc_by c 2.0;
  check_float "counter value" 3.0 (Registry.counter_value c);
  let c' = Registry.counter r ~labels:[ ("computer", "0") ] "jobs_total" in
  Registry.inc c';
  check_float "same handle on re-registration" 4.0 (Registry.counter_value c);
  let g = Registry.gauge r "temperature" in
  Registry.set g 1.5;
  check_float "gauge value" 1.5 (Registry.gauge_value g);
  Alcotest.(check int) "two metrics" 2 (Registry.metric_count r);
  Alcotest.(check bool) "negative increment rejected" true
    (match Registry.inc_by c (-1.0) with
    | exception Invalid_argument _ -> true
    | () -> false);
  Alcotest.(check bool) "kind conflict rejected" true
    (match Registry.gauge r ~labels:[ ("computer", "0") ] "jobs_total" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "invalid metric name rejected" true
    (match Registry.counter r "bad name" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "invalid label name rejected" true
    (match Registry.counter r ~labels:[ ("le", "1"); ("0bad", "x") ] "ok_total" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let registry_prometheus_golden () =
  let r = Registry.create () in
  let c = Registry.counter r ~help:"Total frobs" ~labels:[ ("computer", "0") ] "frobs_total" in
  Registry.inc c;
  Registry.inc_by c 2.0;
  let g = Registry.gauge r "temp" in
  Registry.set g 1.5;
  let h = Registry.histogram r ~lo:1.0 ~hi:16.0 ~sub_count:2 "lat" in
  Hdr.add h 1.2;
  Hdr.add h 3.0;
  Hdr.add h 100.0;
  let expected =
    "# HELP frobs_total Total frobs\n\
     # TYPE frobs_total counter\n\
     frobs_total{computer=\"0\"} 3\n\
     # TYPE temp gauge\n\
     temp 1.5\n\
     # TYPE lat histogram\n\
     lat_bucket{le=\"1.5\"} 1\n\
     lat_bucket{le=\"4\"} 2\n\
     lat_bucket{le=\"+Inf\"} 3\n\
     lat_sum 104.2\n\
     lat_count 3\n"
  in
  Alcotest.(check string) "exposition text" expected (Registry.to_prometheus r)

let registry_family_grouping () =
  let r = Registry.create () in
  let c0 = Registry.counter r ~help:"per computer" ~labels:[ ("computer", "0") ] "x_total" in
  let mid = Registry.gauge r "y" in
  let c1 = Registry.counter r ~labels:[ ("computer", "1") ] "x_total" in
  Registry.inc c0;
  Registry.inc_by c1 5.0;
  Registry.set mid 2.0;
  let expected =
    "# HELP x_total per computer\n\
     # TYPE x_total counter\n\
     x_total{computer=\"0\"} 1\n\
     x_total{computer=\"1\"} 5\n\
     # TYPE y gauge\n\
     y 2\n"
  in
  Alcotest.(check string) "family members grouped under one TYPE" expected
    (Registry.to_prometheus r)

let registry_label_escaping () =
  let r = Registry.create () in
  let g = Registry.gauge r ~labels:[ ("path", "a\"b\\c\nd") ] "esc" in
  Registry.set g 1.0;
  Alcotest.(check string) "escaped label value"
    "# TYPE esc gauge\nesc{path=\"a\\\"b\\\\c\\nd\"} 1\n" (Registry.to_prometheus r)

let registry_reserved_suffixes () =
  let rejected f =
    match f () with exception Invalid_argument _ -> true | _ -> false
  in
  (* A histogram family owns its _bucket/_sum/_count series names. *)
  let r = Registry.create () in
  ignore (Registry.histogram r ~lo:1.0 ~hi:8.0 "lat");
  Alcotest.(check bool) "counter on histogram _bucket rejected" true
    (rejected (fun () -> Registry.counter r "lat_bucket"));
  Alcotest.(check bool) "gauge on histogram _sum rejected" true
    (rejected (fun () -> Registry.gauge r "lat_sum"));
  Alcotest.(check bool) "counter on histogram _count rejected" true
    (rejected (fun () -> Registry.counter r "lat_count"));
  (* ... and cannot be registered under names another metric shadows. *)
  let r = Registry.create () in
  ignore (Registry.counter r "x_sum");
  Alcotest.(check bool) "histogram shadowed by existing _sum rejected" true
    (rejected (fun () -> Registry.histogram r ~lo:1.0 ~hi:8.0 "x"));
  (* The bucket-boundary label is reserved on histograms only. *)
  let r = Registry.create () in
  Alcotest.(check bool) "le label on a histogram rejected" true
    (rejected (fun () ->
         Registry.histogram r ~labels:[ ("le", "0.5") ] ~lo:1.0 ~hi:8.0 "h"));
  ignore (Registry.counter r ~labels:[ ("le", "0.5") ] "c_total");
  (* A non-histogram _sum does not poison unrelated names, and a second
     label set of the same histogram family is still accepted. *)
  let r = Registry.create () in
  ignore (Registry.histogram r ~labels:[ ("computer", "0") ] ~lo:1.0 ~hi:8.0 "rt");
  ignore (Registry.histogram r ~labels:[ ("computer", "1") ] ~lo:1.0 ~hi:8.0 "rt");
  Alcotest.(check int) "family label sets coexist" 2 (Registry.metric_count r)

let registry_write_atomic () =
  let dir = Filename.temp_file "statsched-prom" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "metrics.prom" in
  let r = Registry.create () in
  let g = Registry.gauge r "up" in
  Registry.set g 1.0;
  Registry.write_prometheus r path;
  Alcotest.(check bool) "no temp file left behind" true
    (not (Sys.file_exists (path ^ ".tmp")));
  Alcotest.(check string) "file holds the exposition"
    (Registry.to_prometheus r)
    (In_channel.with_open_bin path In_channel.input_all);
  Sys.remove path;
  Unix.rmdir dir

(* ------------------------------------------------------------------ *)
(* Exposition grammar                                                   *)

(* Grammar-level lexer for the Prometheus text format (version 0.0.4):
   every line must be a HELP/TYPE comment or a sample
   [name{label="value",...} value], names must match the metric-name
   grammar, every sample's family must have exactly one TYPE line and it
   must precede the samples.  Returns the samples as
   [(name, labels, value)]. *)
let lex_exposition text =
  let is_name_start = function
    | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
    | _ -> false
  and is_name_char = function
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
    | _ -> false
  in
  let valid_name n =
    String.length n > 0 && is_name_start n.[0] && String.for_all is_name_char n
  in
  let typed = Hashtbl.create 16 in
  let samples = ref [] in
  let fail lineno what line =
    Alcotest.failf "exposition line %d: %s: %S" lineno what line
  in
  let lex_sample lineno line =
    let len = String.length line in
    let i = ref 0 in
    while !i < len && is_name_char line.[!i] do
      incr i
    done;
    let name = String.sub line 0 !i in
    if not (valid_name name) then fail lineno "invalid metric name" line;
    let labels = ref [] in
    if !i < len && Char.equal line.[!i] '{' then begin
      incr i;
      let fin = ref false in
      while not !fin do
        let start = !i in
        while !i < len && Char.equal line.[!i] '=' = false do
          incr i
        done;
        if !i >= len then fail lineno "unterminated label" line;
        let lname = String.sub line start (!i - start) in
        if not (valid_name lname) || String.contains lname ':' then
          fail lineno "invalid label name" line;
        incr i;
        if !i >= len || not (Char.equal line.[!i] '"') then
          fail lineno "label value not quoted" line;
        incr i;
        let buf = Buffer.create 16 in
        let closed = ref false in
        while not !closed do
          if !i >= len then fail lineno "unterminated label value" line;
          (match line.[!i] with
          | '\\' ->
            if !i + 1 >= len then fail lineno "dangling escape" line;
            (match line.[!i + 1] with
            | '\\' | '"' | 'n' -> Buffer.add_char buf line.[!i + 1]
            | _ -> fail lineno "invalid escape" line);
            i := !i + 1
          | '"' -> closed := true
          | c -> Buffer.add_char buf c);
          incr i
        done;
        labels := (lname, Buffer.contents buf) :: !labels;
        if !i < len && Char.equal line.[!i] ',' then incr i
        else if !i < len && Char.equal line.[!i] '}' then begin
          incr i;
          fin := true
        end
        else fail lineno "expected , or } after label" line
      done
    end;
    if !i >= len || not (Char.equal line.[!i] ' ') then
      fail lineno "expected space before value" line;
    let value_str = String.sub line (!i + 1) (len - !i - 1) in
    let value =
      match value_str with
      | "+Inf" -> infinity
      | "-Inf" -> neg_infinity
      | s -> (
        match float_of_string_opt s with
        | Some v -> v
        | None -> fail lineno "unparseable sample value" line)
    in
    if not (Hashtbl.mem typed name)
       && not
            (List.exists
               (fun suffix ->
                 match
                   if String.length name > String.length suffix
                      && String.equal
                           (String.sub name
                              (String.length name - String.length suffix)
                              (String.length suffix))
                           suffix
                   then
                     Some
                       (String.sub name 0
                          (String.length name - String.length suffix))
                   else None
                 with
                 | Some base -> Hashtbl.mem typed base
                 | None -> false)
               [ "_bucket"; "_sum"; "_count" ])
    then fail lineno "sample precedes its TYPE line" line;
    samples := (name, List.rev !labels, value) :: !samples
  in
  List.iteri
    (fun k line ->
      let lineno = k + 1 in
      if String.equal line "" then ()
      else if String.length line >= 7 && String.equal (String.sub line 0 7) "# HELP "
      then ()
      else if String.length line >= 7 && String.equal (String.sub line 0 7) "# TYPE "
      then begin
        match String.split_on_char ' ' line with
        | [ "#"; "TYPE"; name; kind ] ->
          if not (valid_name name) then fail lineno "invalid TYPE name" line;
          if not (List.mem kind [ "counter"; "gauge"; "histogram" ]) then
            fail lineno "unknown TYPE kind" line;
          if Hashtbl.mem typed name then fail lineno "duplicate TYPE" line;
          Hashtbl.add typed name kind
        | _ -> fail lineno "malformed TYPE line" line
      end
      else if String.length line >= 1 && Char.equal line.[0] '#' then
        fail lineno "unknown comment" line
      else lex_sample lineno line)
    (String.split_on_char '\n' text);
  List.rev !samples

(* Run the lexer over the full exposition of an instrumented run — every
   metric the telemetry layer exports must satisfy the grammar. *)
let exposition_grammar_full_run () =
  let speeds = Core.Speeds.table3 in
  let workload = Workload.paper_default ~rho:0.7 ~speeds in
  let cfg =
    Simulation.default_config
      ~faults:(Fault.exponential ~on_failure:Fault.Drop ~mtbf:2000.0 ~mttr:50.0 ())
      ~horizon:30_000.0 ~warmup:5_000.0 ~speeds ~workload
      ~scheduler:(Scheduler.static Core.Policy.orr) ()
  in
  let t = Telemetry.create cfg in
  let result =
    Simulation.run
      ~metric_histograms:(Telemetry.histograms t)
      ~on_dispatch:(Telemetry.on_dispatch t)
      ~on_completion:(Telemetry.on_completion t)
      ~on_drop:(Telemetry.on_drop t)
      ~on_rate_change:(Telemetry.on_rate_change t)
      cfg
  in
  Telemetry.finalize t result;
  let samples = lex_exposition (Registry.to_prometheus (Telemetry.registry t)) in
  Alcotest.(check bool) "a full run exports a rich exposition" true
    (List.length samples > 100);
  (* Histogram series obey the exposition contract: cumulative _bucket
     counts, strictly increasing finite [le] boundaries, a final +Inf
     bucket equal to _count. *)
  let bucket_groups = Hashtbl.create 8 in
  List.iter
    (fun (name, labels, value) ->
      let ln = String.length name in
      if ln > 7 && String.equal (String.sub name (ln - 7) 7) "_bucket" then begin
        let base = String.sub name 0 (ln - 7) in
        let le =
          match List.assoc_opt "le" labels with
          | Some "+Inf" -> infinity
          | Some s -> float_of_string s
          | None -> Alcotest.failf "bucket without le: %s" name
        in
        let others = List.remove_assoc "le" labels in
        let key = (base, others) in
        let prev =
          match Hashtbl.find_opt bucket_groups key with
          | Some l -> l
          | None -> []
        in
        Hashtbl.replace bucket_groups key ((le, value) :: prev)
      end)
    samples;
  Alcotest.(check bool) "histograms exported" true
    (Hashtbl.length bucket_groups > 0);
  Hashtbl.iter
    (fun (base, others) buckets ->
      let buckets = List.rev buckets in
      let rec check_monotone = function
        | (le1, c1) :: ((le2, c2) :: _ as tl) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: le strictly increasing (%g < %g)" base le1 le2)
            true (le1 < le2);
          Alcotest.(check bool)
            (Printf.sprintf "%s: cumulative counts (%g <= %g)" base c1 c2)
            true (c1 <= c2);
          check_monotone tl
        | _ -> ()
      in
      check_monotone buckets;
      (match List.rev buckets with
      | (le_last, c_last) :: _ ->
        Alcotest.(check bool) (base ^ ": last bucket is +Inf") true
          (Float.equal le_last infinity);
        let count =
          List.find_map
            (fun (name, labels, v) ->
              if String.equal name (base ^ "_count") && labels = others then
                Some v
              else None)
            samples
        in
        (match count with
        | Some c ->
          check_float ~eps:0.0 (base ^ ": +Inf bucket equals _count") c c_last
        | None -> Alcotest.failf "%s: histogram lacks _count" base)
      | [] -> Alcotest.failf "%s: empty bucket group" base))
    bucket_groups

(* Merged histograms must still expose a legal cumulative series. *)
let exposition_histogram_merge () =
  let r = Registry.create () in
  let h = Registry.histogram r ~lo:0.01 ~hi:100.0 ~sub_count:8 "merged" in
  let other = Hdr.create ~lo:0.01 ~hi:100.0 ~sub_count:8 () in
  let g = rng ~seed:3L () in
  for _ = 1 to 500 do
    Hdr.add h (Statsched_dist.Exponential.sample ~rate:0.5 g);
    Hdr.add other (Statsched_dist.Exponential.sample ~rate:2.0 g)
  done;
  Hdr.merge ~into:h other;
  let samples = lex_exposition (Registry.to_prometheus r) in
  let buckets =
    List.filter_map
      (fun (name, labels, v) ->
        if String.equal name "merged_bucket" then
          Some
            ( (match List.assoc_opt "le" labels with
              | Some "+Inf" -> infinity
              | Some s -> float_of_string s
              | None -> Alcotest.fail "bucket without le"),
              v )
        else None)
      samples
  in
  Alcotest.(check bool) "merge produced several buckets" true
    (List.length buckets > 2);
  let rec check = function
    | (le1, c1) :: ((le2, c2) :: _ as tl) ->
      Alcotest.(check bool)
        (Printf.sprintf "le %g < %g after merge" le1 le2)
        true (le1 < le2);
      Alcotest.(check bool)
        (Printf.sprintf "cumulative %g <= %g after merge" c1 c2)
        true (c1 <= c2);
      check tl
    | _ -> ()
  in
  check buckets;
  match List.rev buckets with
  | (le, c) :: _ ->
    Alcotest.(check bool) "last le is +Inf" true (Float.equal le infinity);
    check_float ~eps:0.0 "merged +Inf bucket counts all observations"
      (float_of_int (Hdr.count h))
      c
  | [] -> Alcotest.fail "no buckets"

let exposition_empty_histogram () =
  let r = Registry.create () in
  ignore (Registry.histogram r ~lo:1.0 ~hi:16.0 "idle");
  let expected =
    "# TYPE idle histogram\n\
     idle_bucket{le=\"+Inf\"} 0\n\
     idle_sum 0\n\
     idle_count 0\n"
  in
  Alcotest.(check string) "empty histogram exposes only the +Inf bucket"
    expected (Registry.to_prometheus r);
  (* And the lexer agrees it is well-formed. *)
  Alcotest.(check int) "three samples" 3
    (List.length (lex_exposition (Registry.to_prometheus r)))

(* ------------------------------------------------------------------ *)
(* Chrome trace events                                                 *)

let trace_event_golden () =
  let tr = Trace_event.create () in
  Trace_event.process_name tr ~pid:0 "jobs";
  Trace_event.complete tr ~cat:"job" ~name:"job" ~ts:1.0 ~dur:0.5 ~pid:0 ~tid:2
    ~args:[ ("id", Trace_event.Int 7); ("size", Trace_event.Num 2.5) ]
    ();
  Trace_event.instant tr ~name:"drop" ~ts:2.0 ~pid:1 ~tid:0 ();
  Trace_event.counter tr ~name:"queue" ~ts:3.0 ~pid:1 [ ("c0", 4.0) ];
  Alcotest.(check int) "event count" 4 (Trace_event.event_count tr);
  let expected =
    "{\"traceEvents\":[\
     {\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":0,\"args\":{\"name\":\"jobs\"}},\n\
     {\"name\":\"job\",\"cat\":\"job\",\"ph\":\"X\",\"ts\":1000000,\"dur\":500000,\"pid\":0,\"tid\":2,\"args\":{\"id\":7,\"size\":2.5}},\n\
     {\"name\":\"drop\",\"ph\":\"i\",\"ts\":2000000,\"pid\":1,\"tid\":0,\"s\":\"t\"},\n\
     {\"name\":\"queue\",\"ph\":\"C\",\"ts\":3000000,\"pid\":1,\"args\":{\"c0\":4}}\
     ],\"displayTimeUnit\":\"ms\"}\n"
  in
  Alcotest.(check string) "trace JSON" expected (Trace_event.to_string tr)

let trace_event_escaping () =
  let tr = Trace_event.create () in
  Trace_event.instant tr ~name:"a\"b\n" ~ts:0.0 ~pid:0 ~tid:0 ();
  let s = Trace_event.to_string tr in
  Alcotest.(check bool) "quotes and newlines escaped" true
    (String.length s > 0
    && String.index_opt s '\n' <> None
    &&
    let needle = "\"a\\\"b\\n\"" in
    let rec find i =
      if i + String.length needle > String.length s then false
      else if String.sub s i (String.length needle) = needle then true
      else find (i + 1)
    in
    find 0)

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)

let clock_monotone () =
  let t1 = Clock.now () in
  let t2 = Clock.now () in
  Alcotest.(check bool) "now is non-decreasing" true (t2 >= t1);
  Alcotest.(check bool) "elapsed is non-negative" true (Clock.elapsed ~since:t1 >= 0.0);
  Alcotest.(check bool) "elapsed clamps future origins" true
    (Clock.elapsed ~since:(t2 +. 1e9) = 0.0)

(* ------------------------------------------------------------------ *)
(* Telemetry never perturbs a run                                      *)

type observed = {
  result : Simulation.result;
  completion_order : int list;
}

let run_combo ?faults ~scheduler ~telemetry () =
  let speeds = Core.Speeds.table3 in
  let workload = Workload.paper_default ~rho:0.7 ~speeds in
  let cfg =
    Simulation.default_config ?faults ~horizon:40_000.0 ~warmup:10_000.0 ~speeds
      ~workload ~scheduler ()
  in
  let order = ref [] in
  let record job = order := job.Job.id :: !order in
  let result =
    match telemetry with
    | false -> Simulation.run ~on_completion:record cfg
    | true ->
      let t = Telemetry.create ~trace:true cfg in
      let r =
        Simulation.run
          ~metric_histograms:(Telemetry.histograms t)
          ~on_dispatch:(Telemetry.on_dispatch t)
          ~on_completion:(fun job ->
            Telemetry.on_completion t job;
            record job)
          ~on_drop:(Telemetry.on_drop t)
          ~on_rate_change:(Telemetry.on_rate_change t)
          cfg
      in
      Telemetry.finalize t r;
      Alcotest.(check bool) "telemetry collected metrics" true
        (Telemetry.metric_count t > 0);
      Alcotest.(check bool) "telemetry collected trace events" true
        (Telemetry.trace_event_count t > 0);
      r
  in
  { result; completion_order = List.rev !order }

(* Acceptance criterion: a run with full telemetry (metrics + trace) is
   bit-identical to a bare run under the same seed, across static,
   dynamic, adaptive and faulty configurations. *)
let telemetry_bit_identity () =
  List.iter
    (fun (name, faults, scheduler) ->
      let plain = run_combo ?faults ~scheduler ~telemetry:false () in
      let instrumented = run_combo ?faults ~scheduler ~telemetry:true () in
      check_float ~eps:0.0
        (name ^ ": mean response time bit-identical")
        plain.result.Simulation.metrics.Core.Metrics.mean_response_time
        instrumented.result.Simulation.metrics.Core.Metrics.mean_response_time;
      check_float ~eps:0.0
        (name ^ ": mean response ratio bit-identical")
        plain.result.Simulation.metrics.Core.Metrics.mean_response_ratio
        instrumented.result.Simulation.metrics.Core.Metrics.mean_response_ratio;
      check_float ~eps:0.0
        (name ^ ": fairness bit-identical")
        plain.result.Simulation.metrics.Core.Metrics.fairness
        instrumented.result.Simulation.metrics.Core.Metrics.fairness;
      Alcotest.(check int)
        (name ^ ": same events executed")
        plain.result.Simulation.events_executed
        instrumented.result.Simulation.events_executed;
      Alcotest.(check int)
        (name ^ ": same arrivals")
        plain.result.Simulation.total_arrivals
        instrumented.result.Simulation.total_arrivals;
      Alcotest.(check int)
        (name ^ ": same heap high-water")
        plain.result.Simulation.heap_high_water
        instrumented.result.Simulation.heap_high_water;
      check_array ~eps:0.0
        (name ^ ": dispatch fractions bit-identical")
        plain.result.Simulation.dispatch_fractions
        instrumented.result.Simulation.dispatch_fractions;
      Alcotest.(check (list int))
        (name ^ ": completion order identical")
        plain.completion_order instrumented.completion_order)
    [
      ("ORR", None, Scheduler.static Core.Policy.orr);
      ("LeastLoad", None, Scheduler.least_load_paper);
      ("AdaptiveORR", None, Scheduler.adaptive_orr ());
      ( "ORR+drop-faults",
        Some (Fault.exponential ~on_failure:Fault.Drop ~mtbf:2000.0 ~mttr:50.0 ()),
        Scheduler.static Core.Policy.orr );
      ( "LeastLoad+resume-faults",
        Some (Fault.exponential ~on_failure:Fault.Resume ~mtbf:2000.0 ~mttr:50.0 ()),
        Scheduler.least_load_paper );
    ]

(* The progress heartbeat adds its own periodic events but must not
   change metrics or completion order. *)
let progress_preserves_metrics () =
  let speeds = Core.Speeds.table3 in
  let workload = Workload.paper_default ~rho:0.7 ~speeds in
  let cfg =
    Simulation.default_config ~horizon:40_000.0 ~warmup:10_000.0 ~speeds ~workload
      ~scheduler:(Scheduler.static Core.Policy.orr) ()
  in
  let order = ref [] in
  let plain = Simulation.run ~on_completion:(fun j -> order := j.Job.id :: !order) cfg in
  let plain_order = !order in
  order := [];
  let ticks = ref 0 in
  let with_progress =
    Simulation.run
      ~on_completion:(fun j -> order := j.Job.id :: !order)
      ~on_progress:
        ( 5_000.0,
          fun (p : Simulation.progress) ->
            incr ticks;
            Alcotest.(check bool) "progress time within horizon" true
              (p.Simulation.sim_time <= 40_000.0);
            Alcotest.(check bool) "monotone counters" true
              (p.Simulation.arrivals >= p.Simulation.completions
              && p.Simulation.measured <= p.Simulation.completions) )
      cfg
  in
  Alcotest.(check int) "heartbeat fired 8 times" 8 !ticks;
  check_float ~eps:0.0 "mean response time unchanged"
    plain.Simulation.metrics.Core.Metrics.mean_response_time
    with_progress.Simulation.metrics.Core.Metrics.mean_response_time;
  Alcotest.(check int) "same arrivals" plain.Simulation.total_arrivals
    with_progress.Simulation.total_arrivals;
  Alcotest.(check (list int)) "completion order unchanged" plain_order !order;
  Alcotest.(check bool) "heartbeat events counted" true
    (with_progress.Simulation.events_executed > plain.Simulation.events_executed)

let telemetry_fault_accounting () =
  let speeds = [| 1.0; 2.0 |] in
  let workload = Workload.paper_default ~rho:0.5 ~speeds in
  let cfg =
    Simulation.default_config
      ~faults:(Fault.exponential ~on_failure:Fault.Drop ~mtbf:1500.0 ~mttr:100.0 ())
      ~horizon:30_000.0 ~warmup:5_000.0 ~speeds ~workload
      ~scheduler:(Scheduler.static Core.Policy.wrr) ()
  in
  let t = Telemetry.create ~trace:true cfg in
  let result =
    Simulation.run
      ~metric_histograms:(Telemetry.histograms t)
      ~on_dispatch:(Telemetry.on_dispatch t)
      ~on_completion:(Telemetry.on_completion t)
      ~on_drop:(Telemetry.on_drop t)
      ~on_rate_change:(Telemetry.on_rate_change t)
      cfg
  in
  Telemetry.finalize t result;
  let text = Registry.to_prometheus (Telemetry.registry t) in
  List.iter
    (fun needle ->
      let rec find i =
        if i + String.length needle > String.length text then false
        else if String.sub text i (String.length needle) = needle then true
        else find (i + 1)
      in
      Alcotest.(check bool) (needle ^ " exported") true (find 0))
    [
      "# TYPE statsched_jobs_dispatched_total counter";
      "# TYPE statsched_response_time_seconds histogram";
      "statsched_response_time_seconds_bucket";
      "# TYPE statsched_fault_rate_changes_total counter";
      "statsched_computer_down_seconds{computer=\"0\"}";
      "statsched_availability";
      "statsched_des_events_per_second";
      "statsched_des_heap_high_water";
      "statsched_dispatch_drift{computer=\"1\"}";
    ];
  (* Down spans were recorded and the trace is non-trivial. *)
  Alcotest.(check bool) "rate changes observed" true
    (match result.Simulation.fault_summary with
    | Some s -> s.Fault.failures > 0
    | None -> false);
  Alcotest.(check bool) "trace has job + fault events" true
    (Telemetry.trace_event_count t > 100)

let suite =
  [
    test "hdr: indexing, counts and ranges" hdr_basic;
    test "hdr: empty stats and validation" hdr_empty_and_validation;
    test "hdr: log-linear resolution bound" hdr_resolution;
    slow_test "hdr: quantiles vs exact on 1e5 exponential samples"
      hdr_quantile_exponential;
    test "hdr: merge is exact" hdr_merge;
    test "registry: handles, dedup and validation" registry_basic;
    test "registry: prometheus golden output" registry_prometheus_golden;
    test "registry: families share one TYPE header" registry_family_grouping;
    test "registry: label values escaped" registry_label_escaping;
    test "registry: histogram suffix collisions rejected" registry_reserved_suffixes;
    test "registry: prometheus file write is atomic" registry_write_atomic;
    slow_test "exposition: full-run output satisfies the grammar"
      exposition_grammar_full_run;
    test "exposition: merged histogram series stay cumulative"
      exposition_histogram_merge;
    test "exposition: empty histogram exposes only +Inf" exposition_empty_histogram;
    test "trace: chrome trace-event golden JSON" trace_event_golden;
    test "trace: string escaping" trace_event_escaping;
    test "clock: monotone and non-negative" clock_monotone;
    slow_test "telemetry: instrumented runs bit-identical" telemetry_bit_identity;
    slow_test "telemetry: progress heartbeat preserves the run"
      progress_preserves_metrics;
    slow_test "telemetry: fault accounting exported" telemetry_fault_accounting;
  ]
