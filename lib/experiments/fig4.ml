module Cluster = Statsched_cluster
module Core = Statsched_core

let default_sizes = [ 2; 4; 6; 8; 10; 12; 14; 16; 18; 20 ]

type t = (float * (string * Runner.point) list) list

let run ?(scale = Config.default_scale) ?seed ?jobs ?(sizes = default_sizes)
    ?(schedulers = Schedulers.with_least_load) () =
  List.map
    (fun n ->
      if n < 2 || n mod 2 <> 0 then
        invalid_arg "Fig4.run: sizes must be even and >= 2";
      let half = n / 2 in
      let speeds = Core.Speeds.two_class ~n_fast:half ~fast:10.0 ~n_slow:half ~slow:1.0 in
      let workload =
        Cluster.Workload.paper_default ~rho:Config.base_utilization ~speeds
      in
      ( float_of_int n,
        Sweep.over_schedulers ?seed ?jobs ~scale ~schedulers ~speeds ~workload () ))
    sizes

let sweeps t =
  List.map
    (fun metric ->
      Sweep.sweep_of_rows ~title:"Figure 4: effect of system size"
        ~xlabel:"computers" ~metric t)
    [ `Ratio; `Fairness ]

let to_report t = String.concat "\n" (List.map Report.render_sweep (sweeps t))
